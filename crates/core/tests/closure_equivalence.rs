//! The `CanonicalClosure` index must be *exact* — identical detections
//! to the naive all-pairs sweep — for **arbitrary, non-transitive**
//! homoglyph pair sets. Real confusable data is not transitive (a–b and
//! b–c listed without a–c), and that is precisely the case where the
//! previous neighbourhood-min canonical map lost true matches: the two
//! ends of a listed pair could pick different neighbourhood minima and
//! the candidate lookup skipped the reference before verification ever
//! ran. These tests build deliberately chain-shaped databases and pin
//! the equivalence.

use proptest::prelude::*;
use sham_confusables::UcDatabase;
use sham_core::{Detection, Detector, Indexing};
use sham_simchar::{pairs::Pair, DbSelection, HomoglyphDb, SimCharDb};

/// A detector over an explicit SimChar pair list (UC empty), so tests
/// control the exact shape of the pair graph.
fn detector_for(pairs: &[(char, char)], references: &[&str]) -> Detector {
    let simchar = SimCharDb::from_pairs(
        pairs
            .iter()
            .map(|&(a, b)| Pair { a: a as u32, b: b as u32, delta: 1 })
            .collect(),
        4,
    );
    Detector::new(
        HomoglyphDb::new(simchar, UcDatabase::default()),
        references.iter().map(|s| s.to_string()),
    )
}

fn idn(stem: &str) -> (String, String) {
    (stem.to_string(), format!("{stem}.com"))
}

/// The concrete chain the old neighbourhood-min map got wrong. Pairs
/// a–b and b–c (no a–c): the neighbourhood minimum of `c` is `b` while
/// the minimum of `b` is `a`, so "bb" and "cc" canonicalised to
/// different strings and the true match "bb" ≈ "cc" was never even
/// verified. The component closure puts a, b, c in one class, so the
/// candidate probe finds the reference and pairwise verification
/// confirms it.
#[test]
fn non_transitive_chain_detection_is_not_missed() {
    let d = detector_for(&[('a', 'b'), ('b', 'c')], &["cc"]);
    let idns = vec![idn("bb")];

    let naive = d.detect(&idns, DbSelection::Union, Indexing::Naive);
    assert_eq!(naive.len(), 1, "b–c is a listed pair, so bb ≈ cc must match");
    assert_eq!(&*naive[0].reference, "cc");

    let closure = d.detect(&idns, DbSelection::Union, Indexing::CanonicalClosure);
    assert_eq!(closure, naive, "closure index must find the chain match");

    // And the ends of the chain are still NOT a pair: a–c substitutions
    // must keep being rejected by verification.
    let negatives = vec![idn("aa")];
    assert!(d.detect(&negatives, DbSelection::Union, Indexing::CanonicalClosure).is_empty());
    assert!(d.detect(&negatives, DbSelection::Union, Indexing::Naive).is_empty());
}

/// The same non-transitivity arises inside UC alone: b→a and c→b chain
/// the prototypes without listing a–c.
#[test]
fn uc_prototype_chains_are_closed_too() {
    let uc = UcDatabase::from_mappings(
        sham_confusables::parse("0062 ; 0061 ; MA\n0063 ; 0062 ; MA\n").unwrap(),
    );
    let d = Detector::new(
        HomoglyphDb::new(SimCharDb::from_pairs(vec![], 4), uc),
        vec!["cc".to_string()],
    );
    let idns = vec![idn("bb"), idn("aa")];
    let naive = d.detect(&idns, DbSelection::Union, Indexing::Naive);
    let closure = d.detect(&idns, DbSelection::Union, Indexing::CanonicalClosure);
    // b–c is a UC pair (c's prototype is b); a–c is not.
    assert_eq!(naive.len(), 1);
    assert_eq!(naive[0].idn_unicode, "bb");
    assert_eq!(closure, naive);
}

/// Builds a spoof of `stem` by substituting, at mask-selected
/// positions, a deterministic partner from the pair adjacency — or,
/// when `break_one` is set, a character that is *no* partner, making
/// the spoof undetectable and exercising the rejecting path.
fn mutate(
    stem: &str,
    mask: u32,
    pick: u64,
    adjacency: &std::collections::HashMap<char, Vec<char>>,
    break_one: bool,
) -> String {
    let mut out: Vec<char> = stem.chars().collect();
    for (i, slot) in out.iter_mut().enumerate() {
        if mask & (1 << (i % 32)) == 0 {
            continue;
        }
        if break_one && i == 0 {
            // 'z' participates in no generated pair (alphabet is a–y).
            *slot = 'z';
        } else if let Some(partners) = adjacency.get(slot) {
            *slot = partners[(pick as usize + i) % partners.len()];
        }
    }
    out.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Adversarial equivalence: random pair graphs made of chains (by
    /// construction rarely transitive), random references, and corpora
    /// of chain-substituted spoofs, identical copies and broken spoofs
    /// — `CanonicalClosure` must produce exactly the detections of
    /// `Naive`, order included.
    #[test]
    fn closure_equals_naive_on_random_chain_graphs(
        raw_pairs in proptest::collection::vec((0u8..25, 0u8..25), 1..30),
        references in proptest::collection::vec("[a-h]{3,8}", 1..5),
        masks in proptest::collection::vec(any::<u32>(), 8..9),
        pick in any::<u64>(),
    ) {
        // Pair graph over 'a'..='y' ('z' stays pair-free for the
        // broken spoofs). Arbitrary chains: (x, x+1+k mod 25).
        let pairs: Vec<(char, char)> = raw_pairs
            .iter()
            .map(|&(x, k)| {
                let a = (b'a' + x) as char;
                let b = (b'a' + (x as usize + 1 + k as usize) as u8 % 25) as char;
                (a, b)
            })
            .filter(|(a, b)| a != b)
            .collect();
        prop_assume!(!pairs.is_empty());

        let mut adjacency: std::collections::HashMap<char, Vec<char>> =
            std::collections::HashMap::new();
        for &(a, b) in &pairs {
            adjacency.entry(a).or_default().push(b);
            adjacency.entry(b).or_default().push(a);
        }

        let refs: Vec<&str> = references.iter().map(String::as_str).collect();
        let d = detector_for(&pairs, &refs);

        // Corpus: per reference — a pair-substituted spoof, an identical
        // copy (never a homograph), and a broken spoof ('z' at pos 0).
        let mut idns = Vec::new();
        for (i, r) in references.iter().enumerate() {
            let mask = masks[i % masks.len()] | 1; // always touch pos 0
            idns.push(idn(&mutate(r, mask, pick, &adjacency, false)));
            idns.push(idn(r));
            idns.push(idn(&mutate(r, mask, pick, &adjacency, true)));
        }

        for selection in [DbSelection::Union, DbSelection::SimCharOnly] {
            let naive = d.detect(&idns, selection, Indexing::Naive);
            let closure = d.detect(&idns, selection, Indexing::CanonicalClosure);
            prop_assert_eq!(
                &closure, &naive,
                "closure and naive diverge on pairs {:?}", pairs
            );
            let bucket = d.detect(&idns, selection, Indexing::LengthBucket);
            prop_assert_eq!(&bucket, &naive);
        }
    }
}

/// Sanity: chain-closure candidates that fail verification stay
/// rejected — a long chain collapses everything into one component, but
/// only directly-listed pairs may substitute.
#[test]
fn closure_candidates_are_still_verified_pairwise() {
    // Chain a–b–c–d–e: one component, but a may only become b.
    let d = detector_for(&[('a', 'b'), ('b', 'c'), ('c', 'd'), ('d', 'e')], &["aaa"]);
    let idns = vec![idn("bbb"), idn("eee"), idn("bcb")];
    let hits = d.detect(&idns, DbSelection::Union, Indexing::CanonicalClosure);
    // Only "bbb" survives: e and c are in the component (candidates!)
    // but are not listed partners of a.
    let found: Vec<&str> = hits.iter().map(|h| h.idn_unicode.as_str()).collect();
    assert_eq!(found, vec!["bbb"]);
    let naive: Vec<Detection> = d.detect(&idns, DbSelection::Union, Indexing::Naive);
    assert_eq!(hits, naive);
}
