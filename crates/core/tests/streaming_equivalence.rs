//! Streaming ≡ batch: feeding a corpus to a [`DetectorSession`] in
//! *any* partition of batches — including empty batches, single-domain
//! batches and net-no-op reference diffs interleaved between them —
//! must fold into a [`FrameworkReport`] identical to one
//! `Framework::run` over the whole corpus, at every thread count.
//! Batch and streaming share one executor, and this suite pins that
//! they cannot drift apart.

use proptest::prelude::*;
use sham_confusables::UcDatabase;
use sham_core::{Framework, FrameworkReport};
use sham_punycode::DomainName;
use sham_simchar::{build, BuildConfig, Repertoire};
use std::sync::OnceLock;

const REFERENCES: &[&str] = &[
    "google", "amazon", "facebook", "apple", "paypal", "netflix", "coinbase",
    "alphabet", "microsoft", "cloudflare",
];

/// One shared framework for every case — the SimChar build is the
/// expensive part and the framework is read-only.
fn framework() -> &'static Framework {
    static FRAMEWORK: OnceLock<Framework> = OnceLock::new();
    FRAMEWORK.get_or_init(|| {
        let font = sham_glyph::SynthUnifont::v12();
        let result = build(
            &font,
            &BuildConfig {
                repertoire: Repertoire::Blocks(vec![
                    "Basic Latin",
                    "Latin-1 Supplement",
                    "Cyrillic",
                    "Greek and Coptic",
                ]),
                ..BuildConfig::default()
            },
        );
        Framework::new(
            result.db,
            UcDatabase::embedded(),
            REFERENCES.iter().map(|s| s.to_string()),
            "com",
        )
    })
}

/// A deterministic mixed corpus of `n` domains: lookalikes of the
/// references (Cyrillic substitutions at rotating positions), identical
/// copies, benign IDNs, plain ASCII names and wrong-TLD names.
fn corpus(n: usize) -> &'static [DomainName] {
    static CORPUS: OnceLock<Vec<DomainName>> = OnceLock::new();
    let all = CORPUS.get_or_init(|| {
        (0..20_000usize)
            .map(|i| {
                let name = match i % 5 {
                    0 | 3 => {
                        let target = REFERENCES[i % REFERENCES.len()];
                        let len = target.chars().count().max(1);
                        let stem: String = target
                            .chars()
                            .enumerate()
                            .map(|(pos, c)| {
                                if pos == i % len {
                                    match c {
                                        'a' => 'а',
                                        'e' => 'е',
                                        'o' => 'о',
                                        'c' => 'с',
                                        'p' => 'р',
                                        other => other,
                                    }
                                } else {
                                    c
                                }
                            })
                            .collect();
                        let ace = sham_punycode::ace::to_ascii(&stem).unwrap();
                        format!("{ace}.com")
                    }
                    1 => format!("{}.com", REFERENCES[i % REFERENCES.len()]),
                    2 => {
                        let ace = sham_punycode::ace::to_ascii(&format!("münchen-{i}")).unwrap();
                        format!("{ace}.com")
                    }
                    _ => format!("plain-ascii-{i}.{}", if i % 8 == 4 { "net" } else { "com" }),
                };
                DomainName::parse(&name).unwrap()
            })
            .collect()
    });
    &all[..n]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any batch partition of the corpus — empty batches included —
    /// yields the report of one `Framework::run`.
    #[test]
    fn any_batch_partition_matches_one_shot_run(
        n in 0usize..1_500,
        cuts in proptest::collection::vec(0usize..120, 0..12),
    ) {
        let fw = framework();
        let corpus = corpus(n);
        let expected = fw.run(corpus);

        let mut session = fw.session();
        let mut rest = corpus;
        for &cut in &cuts {
            let take = cut.min(rest.len());
            let (batch, tail) = rest.split_at(take);
            session.push_domains(batch); // `cut == 0` ⇒ an empty batch
            rest = tail;
        }
        session.push_domains(rest);
        prop_assert_eq!(session.into_report(), expected);
    }

    /// Interleaving reference diffs that net out to nothing — a
    /// trending stem rotates in after one batch and back out after a
    /// later one — leaves the final report equal to the batch run,
    /// while exercising the copy-on-write overlay mid-stream.
    #[test]
    fn net_noop_interleaved_diffs_preserve_equivalence(
        n in 1usize..1_200,
        cuts in proptest::collection::vec(1usize..120, 1..8),
    ) {
        let fw = framework();
        let corpus = corpus(n);
        let expected = fw.run(corpus);

        let trending = vec!["zzztrending".to_string()]; // matches nothing in the corpus
        let mut session = fw.session();
        let mut rest = corpus;
        for (i, &cut) in cuts.iter().enumerate() {
            let take = cut.min(rest.len());
            let (batch, tail) = rest.split_at(take);
            session.push_domains(batch);
            rest = tail;
            // Alternate add / remove so every diff is replayed (undone)
            // by the end: the session finishes on the base list.
            if i % 2 == 0 {
                session.apply_reference_diff(&trending, &[]);
            } else {
                session.apply_reference_diff(&[], &trending);
            }
        }
        if cuts.len() % 2 == 1 {
            session.apply_reference_diff(&[], &trending);
        }
        session.push_domains(rest);
        prop_assert_eq!(session.reference_count(), REFERENCES.len());
        prop_assert_eq!(session.into_report(), expected);
    }
}

/// The acceptance-criterion configuration, pinned exactly: the 20k
/// corpus in 64-domain batches equals `Framework::run`, at 1 and N
/// worker threads.
#[test]
fn twenty_k_corpus_in_64_domain_batches_at_every_thread_count() {
    let fw = framework();
    let corpus = corpus(20_000);

    let reference_report: FrameworkReport = {
        let _one = rayon::ThreadOverride::new(1);
        fw.run(corpus)
    };
    assert!(
        reference_report.detections.len() > 1_000,
        "corpus must be detection-rich ({} found)",
        reference_report.detections.len()
    );

    let hardware = std::thread::available_parallelism().map_or(4, |n| n.get().max(4));
    for threads in [1usize, hardware] {
        let _forced = rayon::ThreadOverride::new(threads);
        assert_eq!(fw.run(corpus), reference_report, "batch diverges at {threads} threads");
        let mut session = fw.session();
        for batch in corpus.chunks(64) {
            session.push_domains(batch);
        }
        assert_eq!(
            session.into_report(),
            reference_report,
            "streaming diverges at {threads} threads"
        );
    }
}

/// Overlay compaction is unobservable: a session that compacts after
/// every diff, one that compacts at the default threshold and one that
/// never compacts fold an identical churn-heavy stream — with *real*
/// diffs that change detections mid-stream — into identical reports.
#[test]
fn overlay_compaction_matches_no_compaction() {
    let fw = framework();
    let corpus = corpus(1_800);
    let segments: Vec<&[sham_punycode::DomainName]> = corpus.chunks(150).collect();

    let run = |threshold: usize| {
        let mut session = fw.session().with_compaction_threshold(threshold);
        for (i, segment) in segments.iter().enumerate() {
            session.push_domains(*segment);
            // Real churn: rotate a live reference out and a fresh stem
            // in, alternating, so removals tombstone entries that
            // genuinely carry detections.
            let target = REFERENCES[i % REFERENCES.len()].to_string();
            let trending = format!("trending-{i}");
            session.apply_reference_diff(
                std::slice::from_ref(&trending),
                std::slice::from_ref(&target),
            );
            session.apply_reference_diff(&[target], &[trending]);
        }
        (session.overlay_tombstones(), session.into_report())
    };

    let (eager_dead, eager) = run(1); // compact whenever half-dead
    let (default_dead, default) = run(sham_core::DEFAULT_COMPACTION_THRESHOLD);
    let (never_dead, never) = run(usize::MAX);
    assert_eq!(eager, never, "compaction changed the report");
    assert_eq!(default, never);
    assert!(eager.detections.len() > 50, "churn stream must stay detection-rich");
    // The no-compaction session really accumulated garbage the eager
    // one reclaimed — otherwise this test pins nothing.
    assert!(never_dead > eager_dead, "{never_dead} vs {eager_dead}");
    let _ = default_dead;
}

/// Real (non-no-op) diffs take effect exactly at their position in the
/// stream: earlier detections are kept, later batches see the edited
/// list — equivalent to running each segment against its then-current
/// reference list.
#[test]
fn real_diffs_apply_between_batches() {
    let fw = framework();
    let corpus = corpus(900);
    let (first, second) = corpus.split_at(450);

    let mut session = fw.session();
    session.push_domains(first);
    session.apply_reference_diff(&[], &["google".to_string()]);
    session.push_domains(second);
    let streamed = session.into_report();

    // Segment-wise expectation from two one-shot runs: the full list
    // for the first half, google removed for the second.
    let expected_first = fw.run(first);
    let shrunk = Framework::with_shared_index(fw.shared_index(), "com");
    let mut shrunk_session = shrunk.session();
    shrunk_session.apply_reference_diff(&[], &["google".to_string()]);
    shrunk_session.push_domains(second);
    let expected_second = shrunk_session.into_report();

    assert_eq!(
        streamed.total_domains,
        expected_first.total_domains + expected_second.total_domains
    );
    assert!(expected_second.detections.iter().all(|d| &*d.reference != "google"));
    let mut expected: Vec<_> = expected_first.detections;
    expected.extend(expected_second.detections);
    assert_eq!(streamed.detections, expected);
    assert!(streamed.detections.iter().any(|d| &*d.reference == "google"));
}
