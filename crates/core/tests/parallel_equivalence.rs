//! Parallel detection must be indistinguishable from sequential
//! detection: `Detector::detect` shards the IDN corpus across the
//! worker pool, and this suite pins the contract that every
//! (`Indexing`, thread count) combination produces the same detections
//! in the same order.

use sham_confusables::UcDatabase;
use sham_core::{Detection, Detector, Indexing};
use sham_glyph::SynthUnifont;
use sham_simchar::{build, BuildConfig, DbSelection, HomoglyphDb, Repertoire};

fn detector(references: Vec<String>) -> Detector {
    let font = SynthUnifont::v12();
    let result = build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Cyrillic",
                "Greek and Coptic",
            ]),
            ..BuildConfig::default()
        },
    );
    Detector::new(HomoglyphDb::new(result.db, UcDatabase::embedded()), references)
}

/// A deterministic mixed corpus: lookalikes of the references (Cyrillic
/// substitutions at rotating positions), identical copies, and benign
/// noise — several hundred IDNs so the corpus actually splits into
/// multiple shards.
fn corpus(references: &[String]) -> Vec<(String, String)> {
    let mut idns = Vec::new();
    for i in 0..600usize {
        let stem: String = match i % 3 {
            0 => {
                let target = &references[i % references.len()];
                let len = target.chars().count().max(1);
                target
                    .chars()
                    .enumerate()
                    .map(|(pos, c)| {
                        if pos == i % len {
                            match c {
                                'a' => 'а',
                                'e' => 'е',
                                'o' => 'о',
                                'c' => 'с',
                                'p' => 'р',
                                other => other,
                            }
                        } else {
                            c
                        }
                    })
                    .collect()
            }
            1 => references[i % references.len()].clone(),
            _ => format!("benign-{i}"),
        };
        let ace = sham_punycode::ace::to_ascii(&stem)
            .map(|l| format!("{l}.com"))
            .unwrap_or_else(|_| format!("{stem}.com"));
        idns.push((stem, ace));
    }
    idns
}

#[test]
fn detect_is_thread_count_invariant_for_all_indexings() {
    let references: Vec<String> = [
        "google", "amazon", "facebook", "apple", "paypal", "netflix", "coinbase",
        "alphabet", "microsoft", "cloudflare",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let d = detector(references.clone());
    let idns = corpus(&references);

    for indexing in [Indexing::Naive, Indexing::LengthBucket, Indexing::CanonicalClosure] {
        let sequential = {
            let _one = rayon::ThreadOverride::new(1);
            d.detect(&idns, DbSelection::Union, indexing)
        };
        assert!(
            !sequential.is_empty(),
            "corpus must produce detections under {indexing:?}"
        );
        let n = std::thread::available_parallelism().map_or(4, |n| n.get().max(4));
        for threads in [2usize, n] {
            let _forced = rayon::ThreadOverride::new(threads);
            let parallel = d.detect(&idns, DbSelection::Union, indexing);
            assert_eq!(
                parallel, sequential,
                "{indexing:?} diverges at {threads} threads"
            );
        }
    }
}

#[test]
fn indexing_strategies_agree_on_the_shared_corpus() {
    let references: Vec<String> =
        ["google", "amazon", "paypal"].iter().map(|s| s.to_string()).collect();
    let d = detector(references.clone());
    let idns = corpus(&references);

    let key = |v: &[Detection]| {
        let mut k: Vec<(String, String)> = v
            .iter()
            .map(|h| (h.idn_ascii.clone(), h.reference.to_string()))
            .collect();
        k.sort();
        k
    };
    let naive = key(&d.detect(&idns, DbSelection::Union, Indexing::Naive));
    let bucket = key(&d.detect(&idns, DbSelection::Union, Indexing::LengthBucket));
    let canon = key(&d.detect(&idns, DbSelection::Union, Indexing::CanonicalClosure));
    assert_eq!(naive, bucket);
    assert_eq!(naive, canon);
}
