//! Adaptive scheduling ≡ fixed scheduling: occupancy readings steer
//! *partitioning only* — shard sizes in `detect_append`, early flushes
//! in the router — so any occupancy history, however adversarial, must
//! fold into bit-identical reports at every thread count. This suite
//! drives the forced-occupancy hook ([`rayon::OccupancyOverride`], the
//! same mechanism `SHAM_OCC_PERTURB` installs from the environment)
//! through session and router runs and pins the reports against the
//! fixed 1-thread baseline. It also pins the observational contract of
//! [`ExecStats`]: report equality ignores it, accessors accumulate it.

use proptest::prelude::*;
use sham_core::{DetectionIndex, Framework, FrameworkReport, SessionRouter};
use sham_punycode::DomainName;
use sham_simchar::{build, BuildConfig, HomoglyphDb, Repertoire};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

const REFERENCES: &[&str] = &[
    "google", "amazon", "facebook", "apple", "paypal", "netflix", "coinbase",
];

const TLDS: &[&str] = &["com", "net", "org"];

/// Serialises every test in this binary: occupancy and thread
/// overrides are process-global, and the exec-stats assertions below
/// would observe a neighbouring test's forced occupancy.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// One shared index for every case — the SimChar build is the
/// expensive part and the index is immutable.
fn index() -> &'static Arc<DetectionIndex> {
    static INDEX: OnceLock<Arc<DetectionIndex>> = OnceLock::new();
    INDEX.get_or_init(|| {
        let font = sham_glyph::SynthUnifont::v12();
        let result = build(
            &font,
            &BuildConfig {
                repertoire: Repertoire::Blocks(vec![
                    "Basic Latin",
                    "Latin-1 Supplement",
                    "Cyrillic",
                ]),
                ..BuildConfig::default()
            },
        );
        DetectionIndex::shared(
            HomoglyphDb::new(result.db, sham_confusables::UcDatabase::embedded()),
            REFERENCES.iter().map(|s| s.to_string()),
        )
    })
}

fn framework() -> &'static Framework {
    static FRAMEWORK: OnceLock<Framework> = OnceLock::new();
    FRAMEWORK
        .get_or_init(|| Framework::with_shared_index(Arc::clone(index()), "com"))
}

/// Deterministic multi-TLD corpus: Cyrillic lookalikes of the
/// references, identical copies, benign IDNs and ASCII noise.
fn corpus(n: usize) -> &'static [DomainName] {
    static CORPUS: OnceLock<Vec<DomainName>> = OnceLock::new();
    let all = CORPUS.get_or_init(|| {
        (0..6_000usize)
            .map(|i| {
                let tld = TLDS[(i * 7 + i / 5) % TLDS.len()];
                let stem = match i % 4 {
                    0 | 3 => {
                        let target = REFERENCES[i % REFERENCES.len()];
                        let len = target.chars().count().max(1);
                        let lookalike: String = target
                            .chars()
                            .enumerate()
                            .map(|(pos, c)| {
                                if pos == i % len {
                                    match c {
                                        'a' => 'а',
                                        'e' => 'е',
                                        'o' => 'о',
                                        'c' => 'с',
                                        'p' => 'р',
                                        other => other,
                                    }
                                } else {
                                    c
                                }
                            })
                            .collect();
                        sham_punycode::ace::to_ascii(&lookalike).unwrap()
                    }
                    1 => REFERENCES[i % REFERENCES.len()].to_string(),
                    2 => sham_punycode::ace::to_ascii(&format!("münchen-{i}")).unwrap(),
                    _ => format!("plain-ascii-{i}"),
                };
                DomainName::parse(&format!("{stem}.{tld}")).unwrap()
            })
            .collect()
    });
    &all[..n]
}

/// The `.com` slice of the corpus (sessions are single-TLD).
fn com_corpus(n: usize) -> Vec<DomainName> {
    corpus(n)
        .iter()
        .filter(|d| d.tld() == "com")
        .cloned()
        .collect()
}

/// Fixed-scheduling ground truth: one 1-thread run, no occupancy
/// override installed.
fn baseline(domains: &[DomainName]) -> FrameworkReport {
    let _one = rayon::ThreadOverride::new(1);
    framework().run(domains)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any forced-occupancy sequence — rotating through the readings
    /// batch by batch — over any batch partition, at 1/2/4 threads,
    /// folds into the fixed-baseline report. Occupancy must be
    /// partitioning-only.
    #[test]
    fn forced_occupancy_never_changes_session_reports(
        n in 0usize..1_200,
        cuts in proptest::collection::vec(0usize..160, 0..10),
        occupancy in proptest::collection::vec(0usize..16, 1..8),
        threads_idx in 0usize..3,
    ) {
        let threads = [1usize, 2, 4][threads_idx];
        let _serial = guard();
        let domains = com_corpus(n);
        let expected = baseline(&domains);

        let _threads = rayon::ThreadOverride::new(threads);
        let _occ = rayon::OccupancyOverride::new(occupancy);
        let mut session = framework().session();
        let mut rest = &domains[..];
        for &cut in &cuts {
            let take = cut.min(rest.len());
            let (batch, tail) = rest.split_at(take);
            session.push_domains(batch);
            rest = tail;
        }
        session.push_domains(rest);
        prop_assert_eq!(session.into_report(), expected);
    }

    /// The router under forced occupancy — where the readings also
    /// steer adaptive early flushes — produces per-TLD reports equal
    /// to the fixed 1-thread baseline over each TLD's slice.
    #[test]
    fn forced_occupancy_never_changes_router_reports(
        n in 0usize..1_200,
        cuts in proptest::collection::vec(0usize..160, 0..10),
        occupancy in proptest::collection::vec(0usize..16, 1..8),
        threads_idx in 0usize..3,
    ) {
        let threads = [1usize, 2, 4][threads_idx];
        let _serial = guard();
        let domains = corpus(n);
        let expected: Vec<(String, FrameworkReport)> = {
            let _one = rayon::ThreadOverride::new(1);
            TLDS.iter()
                .map(|&tld| {
                    let slice: Vec<DomainName> =
                        domains.iter().filter(|d| d.tld() == tld).cloned().collect();
                    let fw = Framework::with_shared_index(Arc::clone(index()), tld);
                    (tld.to_string(), fw.run(&slice))
                })
                .collect()
        };

        let _threads = rayon::ThreadOverride::new(threads);
        let _occ = rayon::OccupancyOverride::new(occupancy);
        let mut router = SessionRouter::new(Arc::clone(index()));
        let mut rest = domains;
        for &cut in &cuts {
            let take = cut.min(rest.len());
            let (batch, tail) = rest.split_at(take);
            router.push_domains(batch);
            rest = tail;
        }
        router.push_domains(rest);
        let report = router.into_report();
        for (tld, batch) in &expected {
            match report.per_tld.iter().find(|lane| &lane.tld == tld) {
                Some(lane) => {
                    prop_assert_eq!(&lane.report, batch, "lane .{} diverged", tld)
                }
                None => prop_assert_eq!(batch.total_domains, 0),
            }
        }
        prop_assert_eq!(report.total_domains(), domains.len());
    }
}

/// Report equality is blind to `exec` — the same corpus run with
/// deliberately different partitioning (idle-fine vs busy-coarse
/// shards) compares equal while the recorded stats differ.
#[test]
fn report_equality_ignores_exec_stats() {
    let _serial = guard();
    let domains = com_corpus(2_000);
    let _threads = rayon::ThreadOverride::new(4);

    let fine = {
        let _idle = rayon::OccupancyOverride::new(vec![0]);
        framework().run(&domains)
    };
    let coarse = {
        let _busy = rayon::OccupancyOverride::new(vec![3]);
        framework().run(&domains)
    };
    assert_eq!(fine, coarse, "partitioning leaked into the results");
    assert!(
        fine.detections.len() > 100,
        "corpus must be detection-rich ({} found)",
        fine.detections.len()
    );
    assert!(
        fine.exec.shards > coarse.exec.shards,
        "idle scheduling should shard finer ({} vs {} shards)",
        fine.exec.shards,
        coarse.exec.shards,
    );
    assert!(fine.exec.min_shard_len < coarse.exec.min_shard_len);
}

/// `ExecStats` accumulate across a session's batches: every non-empty
/// push records one batch, 1-thread pushes are inline single shards,
/// and the router folds its lanes' stats into one accumulator.
#[test]
fn exec_stats_accumulate_across_batches_and_lanes() {
    let _serial = guard();
    let domains = com_corpus(1_500);

    // 1 thread: every batch is one inline shard of the batch's length.
    {
        let _one = rayon::ThreadOverride::new(1);
        let mut session = framework().session();
        let mut idn_batches = 0u64;
        for batch in domains.chunks(100) {
            session.push_domains(batch);
            if batch.iter().any(|d| d.is_idn()) {
                idn_batches += 1;
            }
        }
        let exec = session.exec_stats();
        assert_eq!(exec.batches, idn_batches);
        assert_eq!(exec.inline_batches, idn_batches);
        assert_eq!(exec.shards, idn_batches);
        assert_eq!(exec.max_workers, 1);
        assert!(exec.max_shard_len <= 100);
        assert_eq!(session.into_report().exec, exec);
    }

    // Router: the folded accumulator covers every lane's batches.
    {
        let _one = rayon::ThreadOverride::new(1);
        let all = corpus(1_500);
        let mut router = SessionRouter::new(Arc::clone(index()));
        router.push_domains(all);
        let report = router.into_report();
        let folded = report.exec();
        let per_lane: u64 = report.per_tld.iter().map(|l| l.report.exec.batches).sum();
        assert!(!folded.is_empty());
        assert_eq!(folded.batches, per_lane);
        assert_eq!(report.exec(), folded);
    }
}

/// The empty run records nothing: no batches, `is_empty`, and the
/// default accumulator round-trips through report merging unchanged.
#[test]
fn empty_runs_record_no_exec_stats() {
    let _serial = guard();
    let _one = rayon::ThreadOverride::new(1);
    let report = framework().run(&[]);
    assert!(report.exec.is_empty());
    assert_eq!(report.exec, sham_core::ExecStats::default());
}
