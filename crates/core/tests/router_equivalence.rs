//! Router ≡ per-TLD batch: demultiplexing an interleaved multi-TLD
//! feed through a [`SessionRouter`] — in *any* batching, with global
//! reference churn interleaved — must produce, per TLD, exactly the
//! report a one-shot `Framework::run` over that TLD's slice of the
//! feed produces, at every thread count. Routing, lane buffering and
//! the shared worker pool must all be unobservable in the results.

use proptest::prelude::*;
use sham_core::{DetectionIndex, Framework, RouterReport, SessionRouter};
use sham_punycode::DomainName;
use sham_simchar::{build, BuildConfig, HomoglyphDb, Repertoire};
use std::sync::{Arc, OnceLock};

const REFERENCES: &[&str] = &[
    "google", "amazon", "facebook", "apple", "paypal", "netflix", "coinbase",
    "alphabet", "microsoft", "cloudflare",
];

const TLDS: &[&str] = &["com", "net", "org"];

/// One shared index for every case — the SimChar build is the
/// expensive part and the index is immutable.
fn index() -> &'static Arc<DetectionIndex> {
    static INDEX: OnceLock<Arc<DetectionIndex>> = OnceLock::new();
    INDEX.get_or_init(|| {
        let font = sham_glyph::SynthUnifont::v12();
        let result = build(
            &font,
            &BuildConfig {
                repertoire: Repertoire::Blocks(vec![
                    "Basic Latin",
                    "Latin-1 Supplement",
                    "Cyrillic",
                    "Greek and Coptic",
                ]),
                ..BuildConfig::default()
            },
        );
        DetectionIndex::shared(
            HomoglyphDb::new(result.db, sham_confusables::UcDatabase::embedded()),
            REFERENCES.iter().map(|s| s.to_string()),
        )
    })
}

/// A deterministic interleaved multi-TLD corpus of `n` domains:
/// lookalikes of the references (Cyrillic substitutions at rotating
/// positions), identical copies, benign IDNs and plain ASCII names,
/// spread across the three TLDs in a fixed but non-periodic pattern.
fn corpus(n: usize) -> &'static [DomainName] {
    static CORPUS: OnceLock<Vec<DomainName>> = OnceLock::new();
    let all = CORPUS.get_or_init(|| {
        (0..12_000usize)
            .map(|i| {
                // Non-periodic TLD assignment so lookalike kinds and
                // TLDs decorrelate.
                let tld = TLDS[(i * 7 + i / 5) % TLDS.len()];
                let stem = match i % 5 {
                    0 | 3 => {
                        let target = REFERENCES[i % REFERENCES.len()];
                        let len = target.chars().count().max(1);
                        let lookalike: String = target
                            .chars()
                            .enumerate()
                            .map(|(pos, c)| {
                                if pos == i % len {
                                    match c {
                                        'a' => 'а',
                                        'e' => 'е',
                                        'o' => 'о',
                                        'c' => 'с',
                                        'p' => 'р',
                                        other => other,
                                    }
                                } else {
                                    c
                                }
                            })
                            .collect();
                        sham_punycode::ace::to_ascii(&lookalike).unwrap()
                    }
                    1 => REFERENCES[i % REFERENCES.len()].to_string(),
                    2 => sham_punycode::ace::to_ascii(&format!("münchen-{i}")).unwrap(),
                    _ => format!("plain-ascii-{i}"),
                };
                DomainName::parse(&format!("{stem}.{tld}")).unwrap()
            })
            .collect()
    });
    &all[..n]
}

/// The per-TLD ground truth: one `Framework::run` over each TLD's
/// slice of `domains`, in feed order.
fn per_tld_batch(domains: &[DomainName]) -> Vec<(String, sham_core::FrameworkReport)> {
    TLDS.iter()
        .map(|&tld| {
            let slice: Vec<DomainName> =
                domains.iter().filter(|d| d.tld() == tld).cloned().collect();
            let fw = Framework::with_shared_index(Arc::clone(index()), tld);
            (tld.to_string(), fw.run(&slice))
        })
        .collect()
}

/// Asserts a router report matches the per-TLD batch ground truth
/// (lanes for TLDs that saw no domain may be absent from the router).
fn assert_matches_batch(report: &RouterReport, domains: &[DomainName]) {
    let expected = per_tld_batch(domains);
    for (tld, batch) in &expected {
        match report.per_tld.iter().find(|lane| &lane.tld == tld) {
            Some(lane) => assert_eq!(&lane.report, batch, "lane .{tld} diverged"),
            None => assert_eq!(
                batch.total_domains, 0,
                "router silently dropped .{tld} domains"
            ),
        }
    }
    assert_eq!(report.total_domains(), domains.len());
    assert_eq!(report.unrouted_domains, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Any push partition of the interleaved feed, at any lane batch
    /// capacity, folds into the per-TLD batch reports.
    #[test]
    fn any_interleaving_matches_per_tld_batch_runs(
        n in 0usize..1_200,
        capacity in 1usize..200,
        cuts in proptest::collection::vec(0usize..120, 0..10),
    ) {
        let domains = corpus(n);
        let mut router =
            SessionRouter::new(Arc::clone(index())).with_batch_capacity(capacity);
        let mut rest = domains;
        for &cut in &cuts {
            let take = cut.min(rest.len());
            let (batch, tail) = rest.split_at(take);
            router.push_domains(batch); // cut == 0 ⇒ an empty push
            rest = tail;
        }
        router.push_domains(rest);
        assert_matches_batch(&router.into_report(), domains);
    }

    /// Global reference diffs that net out to nothing — applied at
    /// arbitrary points of the feed — leave every lane's final report
    /// equal to its batch run, while exercising each session's
    /// copy-on-write overlay (and, at low thresholds, its compaction).
    #[test]
    fn net_noop_global_churn_preserves_equivalence(
        n in 1usize..1_000,
        cuts in proptest::collection::vec(1usize..120, 1..8),
        compact_eagerly in 0usize..2,
    ) {
        let domains = corpus(n);
        let trending = vec!["zzztrending".to_string()];
        // Half the cases compact on every possible diff, half never —
        // the reports must be identical either way.
        let threshold = if compact_eagerly == 1 { 1 } else { usize::MAX };
        let mut router = SessionRouter::new(Arc::clone(index()))
            .with_batch_capacity(64)
            .with_compaction_threshold(threshold);
        let mut rest = domains;
        for (i, &cut) in cuts.iter().enumerate() {
            let take = cut.min(rest.len());
            let (batch, tail) = rest.split_at(take);
            router.push_domains(batch);
            rest = tail;
            if i % 2 == 0 {
                router.apply_reference_diff(&trending, &[]);
            } else {
                router.apply_reference_diff(&[], &trending);
            }
        }
        if cuts.len() % 2 == 1 {
            router.apply_reference_diff(&[], &trending);
        }
        router.push_domains(rest);
        let report = router.into_report();
        prop_assert!(report.reference_diffs >= cuts.len());
        assert_matches_batch(&report, domains);
    }
}

/// The acceptance-criterion configuration, pinned exactly: a 12k
/// interleaved 3-TLD feed routed domain-by-domain equals the per-TLD
/// batch runs, at 1 and N worker threads (the N-thread run drives
/// lane batches through the persistent pool).
#[test]
fn interleaved_feed_matches_batch_at_every_thread_count() {
    let domains = corpus(12_000);
    let sequential = {
        let _one = rayon::ThreadOverride::new(1);
        per_tld_batch(domains)
    };
    let detections: usize = sequential.iter().map(|(_, r)| r.detections.len()).sum();
    assert!(detections > 900, "corpus must be detection-rich ({detections} found)");

    let hardware = std::thread::available_parallelism().map_or(4, |n| n.get().max(4));
    for threads in [1usize, hardware] {
        let _forced = rayon::ThreadOverride::new(threads);
        let mut router =
            SessionRouter::new(Arc::clone(index())).with_batch_capacity(1_024);
        for domain in domains {
            router.push_domains(std::iter::once(domain));
        }
        let report = router.into_report();
        for (tld, batch) in &sequential {
            let lane = report
                .per_tld
                .iter()
                .find(|lane| &lane.tld == tld)
                .expect("every TLD saw traffic");
            assert_eq!(&lane.report, batch, ".{tld} diverges at {threads} threads");
        }
    }
}

/// A restricted lane set drops (and counts) foreign TLDs, and the
/// remaining lanes still match their batch runs exactly.
#[test]
fn restricted_lanes_stay_equivalent_and_count_unrouted() {
    let domains = corpus(2_000);
    let mut router = SessionRouter::new(Arc::clone(index()))
        .with_tlds(["com", "net"])
        .with_batch_capacity(97);
    router.push_domains(domains);
    let report = router.into_report();

    let org_count = domains.iter().filter(|d| d.tld() == "org").count();
    assert!(org_count > 0);
    assert_eq!(report.unrouted_domains, org_count);
    let expected = per_tld_batch(domains);
    for (tld, batch) in expected.iter().filter(|(tld, _)| tld != "org") {
        let lane = report.per_tld.iter().find(|lane| &lane.tld == tld).unwrap();
        assert_eq!(&lane.report, batch, "lane .{tld} diverged");
    }
}
