//! Byte-stream [`FeedSource`]s: zone master-file text and DNS
//! wire-format frames, straight off a `Read` transport.
//!
//! These are the "bytes off the wire" half of the ingest front-end
//! (the other half being replay feeds over pre-parsed
//! `ZoneEvent`s, e.g. the fault harness in `sham_workload`). Both
//! feeds share the robustness contract of [`FeedSource`]:
//!
//! * a record that fails to *parse* becomes [`FeedItem::Malformed`] —
//!   quarantined by the connector, never fatal, and never
//!   desynchronising (line framing and length-prefix framing both
//!   survive a bad payload);
//! * an I/O error becomes a typed [`FeedError`]
//!   ([`std::io::ErrorKind::WouldBlock`]/`TimedOut` → [`FeedError::Stall`],
//!   reset/aborted/broken-pipe/unexpected-EOF → [`FeedError::Disconnect`],
//!   anything else → [`FeedError::Io`]) and the feed stays resumable:
//!   buffered bytes are kept and the next pull continues where the
//!   transport left off.
//!
//! Consecutive records for one owner (a delegation's NS set, say)
//! yield a single [`IngestEvent::Registered`] — zone files list each
//! newly registered name as a run of records, and the detection
//! pipeline wants names, not records.

use crate::ingest::{FeedError, FeedItem, FeedSource, IngestEvent};
use sham_dns::zone::ZoneStreamParser;
use sham_dns::wire;
use std::collections::VecDeque;
use std::io::Read;

/// Chunk size per transport read.
const READ_CHUNK: usize = 4_096;

/// Maps an I/O error to the retry taxonomy.
fn map_io(error: &std::io::Error) -> FeedError {
    use std::io::ErrorKind;
    match error.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => FeedError::Stall,
        ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe
        | ErrorKind::UnexpectedEof => FeedError::Disconnect(error.to_string()),
        _ => FeedError::Io(error.to_string()),
    }
}

/// A master-file zone feed over any byte transport: reads chunks,
/// reassembles lines across chunk boundaries, and runs each line
/// through the incremental [`ZoneStreamParser`].
///
/// Non-UTF-8 bytes are decoded lossily (the replacement characters
/// then fail domain validation and quarantine like any other bad
/// line), so arbitrary binary garbage cannot wedge the feed.
pub struct ZoneTextFeed<R> {
    name: String,
    reader: R,
    parser: ZoneStreamParser,
    /// Unconsumed transport bytes (at most one partial line).
    carry: Vec<u8>,
    /// Parsed items awaiting delivery.
    pending: VecDeque<FeedItem>,
    last_owner: Option<String>,
    eof: bool,
}

impl<R: Read + Send> ZoneTextFeed<R> {
    /// A feed named `name` (reports/quarantine) parsing relative names
    /// against `origin`.
    pub fn new(name: impl Into<String>, origin: &str, reader: R) -> Self {
        ZoneTextFeed {
            name: name.into(),
            reader,
            parser: ZoneStreamParser::new(origin),
            carry: Vec::new(),
            pending: VecDeque::new(),
            last_owner: None,
            eof: false,
        }
    }

    /// Feeds one complete raw line to the parser, queueing the outcome.
    fn consume_line(&mut self, raw: &[u8]) {
        let line = String::from_utf8_lossy(raw);
        match self.parser.push_line(&line) {
            Ok(Some(record)) => {
                let owner = record.name.as_ascii().to_string();
                if self.last_owner.as_deref() != Some(owner.as_str()) {
                    self.last_owner = Some(owner);
                    self.pending
                        .push_back(FeedItem::Event(IngestEvent::Registered(record.name)));
                }
            }
            Ok(None) => {}
            Err(error) => self.pending.push_back(FeedItem::Malformed(error.to_string())),
        }
    }

    /// Splits the carry buffer at newlines, consuming complete lines.
    fn drain_carry_lines(&mut self) {
        while let Some(nl) = self.carry.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.carry.drain(..=nl).collect();
            self.consume_line(&line[..line.len() - 1]);
        }
    }
}

impl<R: Read + Send> FeedSource for ZoneTextFeed<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next(&mut self) -> Result<Option<FeedItem>, FeedError> {
        loop {
            if let Some(item) = self.pending.pop_front() {
                return Ok(Some(item));
            }
            if self.eof {
                return Ok(None);
            }
            let mut chunk = [0u8; READ_CHUNK];
            match self.reader.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    if !self.carry.is_empty() {
                        let tail = std::mem::take(&mut self.carry);
                        self.consume_line(&tail);
                    }
                }
                Ok(n) => {
                    self.carry.extend_from_slice(&chunk[..n]);
                    self.drain_carry_lines();
                }
                // Buffered bytes survive the error: the feed resumes
                // mid-line after the connector's backoff.
                Err(error) => return Err(map_io(&error)),
            }
        }
    }
}

/// A DNS wire-format feed over any byte transport: two-byte
/// big-endian length-prefixed messages (RFC 1035 §4.2.2 TCP framing,
/// the shape an AXFR-style zone transfer delivers), decoded with
/// [`sham_dns::wire::decode`]. Each answer record's owner name
/// becomes a registration (consecutive duplicates collapsed).
///
/// A frame that fails to decode is quarantined whole — the length
/// prefix is trusted for framing even when the payload is garbage, so
/// one corrupt message never desynchronises the stream.
pub struct WireMessageFeed<R> {
    name: String,
    reader: R,
    carry: Vec<u8>,
    pending: VecDeque<FeedItem>,
    last_owner: Option<String>,
    frames: u64,
    eof: bool,
}

impl<R: Read + Send> WireMessageFeed<R> {
    /// A feed named `name` over `reader`.
    pub fn new(name: impl Into<String>, reader: R) -> Self {
        WireMessageFeed {
            name: name.into(),
            reader,
            carry: Vec::new(),
            pending: VecDeque::new(),
            last_owner: None,
            frames: 0,
            eof: false,
        }
    }

    /// Decodes every complete frame sitting in the carry buffer.
    fn drain_carry_frames(&mut self) {
        loop {
            if self.carry.len() < 2 {
                return;
            }
            let len = u16::from_be_bytes([self.carry[0], self.carry[1]]) as usize;
            if self.carry.len() < 2 + len {
                return;
            }
            let frame: Vec<u8> = self.carry.drain(..2 + len).skip(2).collect();
            self.frames += 1;
            match wire::decode(&frame) {
                Ok(message) => {
                    for answer in message.answers {
                        let owner = answer.name.as_ascii().to_string();
                        if self.last_owner.as_deref() != Some(owner.as_str()) {
                            self.last_owner = Some(owner);
                            self.pending.push_back(FeedItem::Event(
                                IngestEvent::Registered(answer.name),
                            ));
                        }
                    }
                }
                Err(error) => self.pending.push_back(FeedItem::Malformed(format!(
                    "frame {}: {error:?}",
                    self.frames
                ))),
            }
        }
    }
}

impl<R: Read + Send> FeedSource for WireMessageFeed<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next(&mut self) -> Result<Option<FeedItem>, FeedError> {
        loop {
            if let Some(item) = self.pending.pop_front() {
                return Ok(Some(item));
            }
            if self.eof {
                return Ok(None);
            }
            let mut chunk = [0u8; READ_CHUNK];
            match self.reader.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    if !self.carry.is_empty() {
                        // EOF inside a frame: quarantine the stub.
                        let dropped = self.carry.len();
                        self.carry.clear();
                        self.pending.push_back(FeedItem::Malformed(format!(
                            "truncated frame at end of stream ({dropped} bytes)"
                        )));
                    }
                }
                Ok(n) => {
                    self.carry.extend_from_slice(&chunk[..n]);
                    self.drain_carry_frames();
                }
                Err(error) => return Err(map_io(&error)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_dns::records::{RecordData, RecordType};
    use sham_punycode::DomainName;

    fn names(feed: &mut dyn FeedSource) -> (Vec<String>, Vec<String>) {
        let mut registered = Vec::new();
        let mut malformed = Vec::new();
        while let Some(item) = feed.next().expect("in-memory feeds never error") {
            match item {
                FeedItem::Event(IngestEvent::Registered(d)) => {
                    registered.push(d.as_ascii().to_string())
                }
                FeedItem::Event(_) => {}
                FeedItem::Malformed(why) => malformed.push(why),
            }
        }
        (registered, malformed)
    }

    #[test]
    fn zone_text_feed_parses_dedups_and_quarantines() {
        let text = b"$ORIGIN com.\n\
                     google IN NS ns1.google.com.\n\
                     google IN NS ns2.google.com.\n\
                     broken IN A not-an-ip\n\
                     xn--ggle-55da 60 IN A 192.0.2.7\n\
                     tail IN NS ns.final.example.";
        let mut feed = ZoneTextFeed::new("zone", "com", &text[..]);
        let (registered, malformed) = names(&mut feed);
        // Two NS records, one owner; the final unterminated line still
        // parses at EOF.
        assert_eq!(registered, ["google.com", "xn--ggle-55da.com", "tail.com"]);
        assert_eq!(malformed.len(), 1);
        assert!(malformed[0].contains("bad IPv4"), "{}", malformed[0]);
        assert!(matches!(feed.next(), Ok(None)), "EOF is sticky");
    }

    #[test]
    fn wire_feed_decodes_frames_and_quarantines_garbage() {
        let answer = |name: &str| wire::Message {
            id: 1,
            response: true,
            rcode: wire::Rcode::NoError,
            questions: vec![],
            answers: vec![wire::WireAnswer {
                name: DomainName::parse(name).unwrap(),
                rtype: RecordType::A,
                ttl: 60,
                data: RecordData::A("192.0.2.9".parse().unwrap()),
            }],
        };
        let mut stream = Vec::new();
        for msg in [answer("alpha.com"), answer("beta.net")] {
            let bytes = wire::encode(&msg);
            stream.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
            stream.extend_from_slice(&bytes);
        }
        // A framed garbage payload, then a frame truncated by EOF.
        stream.extend_from_slice(&5u16.to_be_bytes());
        stream.extend_from_slice(b"junk!");
        stream.extend_from_slice(&40u16.to_be_bytes());
        stream.extend_from_slice(b"cut");

        let mut feed = WireMessageFeed::new("axfr", &stream[..]);
        let (registered, malformed) = names(&mut feed);
        assert_eq!(registered, ["alpha.com", "beta.net"]);
        assert_eq!(malformed.len(), 2, "{malformed:?}");
        assert!(malformed[0].contains("frame 3"));
        assert!(malformed[1].contains("truncated frame"));
    }
}
