//! Fault-tolerant zone-feed ingestion — the always-on front-end over
//! [`SessionRouter`].
//!
//! The paper's production story (§5: continuous scanning of newly
//! registered domains across TLD zone feeds) needs a service that
//! *degrades* instead of dying. This module runs connector threads —
//! one per [`FeedSource`] — that pull [`ZoneEvent`]-shaped items off
//! feeds and push them into per-TLD bounded queues, while a drainer
//! thread drives a `SessionRouter` (and through it the persistent
//! worker pool). Robustness is layered in explicitly:
//!
//! * **Bounded queues + backpressure** — every lane queue holds at
//!   most [`IngestConfig::queue_capacity`] names. A full lane either
//!   blocks the producing connector ([`Backpressure::Block`]) or sheds
//!   the name ([`Backpressure::Shed`]); both outcomes are counted per
//!   lane, so the final report accounts for every event.
//! * **Quarantine** — a malformed record never kills its connector:
//!   the connector counts it, samples it into a bounded quarantine
//!   ring, and moves on.
//! * **Retry / backoff / circuit** — a feed error is retried with
//!   capped exponential backoff plus deterministic jitter; after
//!   [`RetryPolicy::circuit_threshold`] *consecutive* failures the
//!   circuit opens and the feed is reported [`FeedOutcome::CircuitOpen`].
//! * **Panic isolation + lane lifecycle** — a worker panic during a
//!   lane flush poisons only that lane
//!   ([`SessionRouter::poison_lane`]); the batch is retried on a fresh
//!   lane and, if it panics again, counted as lost. Idle lanes are
//!   evicted by folding ([`SessionRouter::fold_lane`]); both folded
//!   and poisoned lanes reopen deterministically on their next domain
//!   with the full reference-diff history replayed.
//!
//! With no faults injected and a single feed, the final
//! [`IngestReport::router`] is **bit-identical** to replaying the same
//! events through a synchronous `SessionRouter` — queues, threads and
//! lane lifecycle are unobservable (pinned by `tests/ingest_faults.rs`
//! at 1 and N worker threads).
//!
//! Reference churn is ordered by a sequence barrier: the churn request
//! carries the global enqueue sequence number at submission; the
//! drainer flushes every pre-barrier name before applying the diff,
//! and the submitting connector blocks until it is applied, so churn
//! sits at exactly the same point of its feed's event order as in a
//! batch replay. (Events of *other* feeds may cross the barrier —
//! inter-feed order is undefined by construction.)
//!
//! [`ZoneEvent`]: IngestEvent

use crate::router::{RouterReport, SessionRouter, DEFAULT_ROUTER_BATCH};
use crate::index::DetectionIndex;
use serde::{Deserialize, Serialize};
use sham_punycode::DomainName;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// One parsed zone-feed event, the ingest-facing twin of
/// `sham_workload::ZoneEvent` (kept separate so `sham_core` does not
/// depend on the workload generator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestEvent {
    /// A newly registered domain.
    Registered(DomainName),
    /// Global reference-list churn: stems added to and removed from
    /// the popularity list.
    ReferenceChurn {
        /// Stems entering the reference list.
        added: Vec<String>,
        /// Stems leaving it.
        removed: Vec<String>,
    },
}

/// What a feed hands its connector per pull: a parsed event, or a
/// record that failed to parse (quarantined, never fatal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedItem {
    /// A well-formed event.
    Event(IngestEvent),
    /// A malformed record, with a human-readable reason.
    Malformed(String),
}

/// A feed-level failure (distinct from a malformed *record*): the pull
/// itself failed. The connector retries with backoff; enough
/// consecutive failures open the circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedError {
    /// The feed produced nothing within its deadline.
    Stall,
    /// The transport dropped mid-stream.
    Disconnect(String),
    /// Any other I/O-level failure.
    Io(String),
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedError::Stall => write!(f, "feed stalled"),
            FeedError::Disconnect(why) => write!(f, "feed disconnected: {why}"),
            FeedError::Io(why) => write!(f, "feed i/o error: {why}"),
        }
    }
}

impl std::error::Error for FeedError {}

/// A pull-based zone-event feed. `Ok(None)` is a clean end of stream;
/// `Err` is retried by the connector per its [`RetryPolicy`]. A feed
/// that returned `Err` must be resumable: the connector calls `next`
/// again after backing off.
pub trait FeedSource: Send {
    /// Stable feed name, used in reports and quarantine samples.
    fn name(&self) -> &str;
    /// Pulls the next item.
    fn next(&mut self) -> Result<Option<FeedItem>, FeedError>;
}

/// What a full lane queue does to the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backpressure {
    /// Block the connector until the drainer frees space (lossless).
    Block,
    /// Drop the name and count it (lossy, never blocks).
    Shed,
}

/// Retry/backoff/circuit parameters for feed-level errors.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First-retry delay; doubles per consecutive failure. `ZERO`
    /// disables sleeping (tests and benches).
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Consecutive failures that open the circuit (feed abandoned,
    /// reported as [`FeedOutcome::CircuitOpen`]).
    pub circuit_threshold: u32,
    /// Seed for the deterministic jitter stream (xorshift64).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(2),
            circuit_threshold: 8,
            jitter_seed: 0x5EED_1E55,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `failures` (1-based consecutive
    /// failure count): `min(cap, base · 2^(failures-1))` plus up to
    /// 50% deterministic jitter.
    fn delay(&self, failures: u32, jitter: &mut u64) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = failures.saturating_sub(1).min(20);
        let raw = self.base.saturating_mul(1u32 << exp);
        let capped = raw.min(self.cap);
        let nanos = capped.as_nanos() as u64;
        let spread = (nanos / 2).max(1);
        Duration::from_nanos(nanos + xorshift64(jitter) % spread)
    }
}

/// Configuration for an [`IngestService`].
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Per-lane queue bound.
    pub queue_capacity: usize,
    /// Default full-queue behaviour.
    pub backpressure: Backpressure,
    /// Per-TLD overrides of the default backpressure.
    pub lane_policies: Vec<(String, Backpressure)>,
    /// Names the drainer hands the router per flush (the router's own
    /// lane batching sits below this).
    pub batch_capacity: usize,
    /// Feed-level retry/backoff/circuit policy.
    pub retry: RetryPolicy,
    /// `Some` fixes the router's lane set (foreign TLDs count as
    /// unrouted); `None` auto-opens a lane per TLD seen.
    pub tlds: Option<Vec<String>>,
    /// `Some(n)`: a router lane idle for `n` consecutive drainer
    /// flushes (with an empty ingest queue) is folded — evicted into
    /// the banked report, reopening on its next domain.
    pub idle_fold_after: Option<u64>,
    /// Quarantine ring bound (samples beyond it are counted, the
    /// oldest sample is dropped).
    pub quarantine_capacity: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_capacity: 1_024,
            backpressure: Backpressure::Block,
            lane_policies: Vec::new(),
            batch_capacity: DEFAULT_ROUTER_BATCH,
            retry: RetryPolicy::default(),
            tlds: None,
            idle_fold_after: None,
            quarantine_capacity: 32,
        }
    }
}

/// One quarantined record: which feed, its position in that feed, and
/// why it failed to parse.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineSample {
    /// Producing feed's name.
    pub feed: String,
    /// 1-based item position within that feed.
    pub position: u64,
    /// Parse-failure detail.
    pub detail: String,
}

/// How a feed ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeedOutcome {
    /// Clean end of stream.
    Completed,
    /// Abandoned after `circuit_threshold` consecutive failures.
    CircuitOpen,
}

/// Per-feed outcome accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedReport {
    /// Feed name.
    pub name: String,
    /// Registration events delivered (enqueued, shed or blocked —
    /// every one of them lands in exactly one report bucket).
    pub registrations: u64,
    /// Reference-churn events delivered.
    pub churns: u64,
    /// Malformed records quarantined.
    pub quarantined: u64,
    /// Feed-level errors retried (consecutive failures that did not
    /// open the circuit).
    pub retries: u64,
    /// How the feed ended.
    pub outcome: FeedOutcome,
    /// The last feed-level error message, if any.
    pub last_error: Option<String>,
}

/// Per-lane queue/lifecycle accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneStats {
    /// The lane's TLD.
    pub tld: String,
    /// Names accepted into the queue.
    pub enqueued: u64,
    /// Names handed to the router (detected + clean + unrouted).
    pub routed: u64,
    /// Names dropped by shed backpressure.
    pub shed: u64,
    /// Times a connector blocked on this lane being full.
    pub blocked: u64,
    /// Worker panics that poisoned this lane.
    pub panics: u64,
    /// Idle evictions (folds) of this lane.
    pub folds: u64,
}

/// Final report of an ingest run: the router's detection report plus
/// the robustness ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestReport {
    /// The detection outcome — bit-identical to a batch
    /// `SessionRouter` replay when no fault sheds or loses events.
    pub router: RouterReport,
    /// Per-feed accounting, in feed order.
    pub feeds: Vec<FeedReport>,
    /// Per-lane accounting, sorted by TLD.
    pub lanes: Vec<LaneStats>,
    /// Sampled quarantined records (bounded ring; `quarantined` is the
    /// true total).
    pub quarantine: Vec<QuarantineSample>,
    /// Total malformed records quarantined.
    pub quarantined: u64,
    /// Total names dropped by shed backpressure.
    pub shed: u64,
    /// Names lost to a lane that panicked twice on the same batch.
    pub lost: u64,
    /// Worker panics isolated to a lane poison.
    pub lane_panics: u64,
    /// Idle-lane folds.
    pub lane_folds: u64,
}

impl IngestReport {
    /// Registration events accounted for by the pipeline: routed
    /// (detected + clean + unrouted) + shed + lost. Equals the number
    /// of registration events the feeds delivered — the invariant the
    /// fault suite pins.
    pub fn events_accounted(&self) -> u64 {
        self.router.total_domains() as u64 + self.shed + self.lost
    }

    /// Registration events the feeds delivered (sum over feeds).
    pub fn events_delivered(&self) -> u64 {
        self.feeds.iter().map(|f| f.registrations).sum()
    }

    /// Scheduling decisions aggregated across every router lane (see
    /// [`ExecStats`](crate::sched::ExecStats)).
    pub fn exec(&self) -> crate::sched::ExecStats {
        self.router.exec()
    }
}

/// Deterministic jitter stream (splitmix-free xorshift64; zero-proof).
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = (*state).max(0x9E37_79B9_7F4A_7C15);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// One lane's bounded queue. Entries carry the global enqueue
/// sequence number so churn barriers can order flushes against diffs.
struct LaneQueue {
    queue: VecDeque<(u64, DomainName)>,
    policy: Backpressure,
    stats: LaneStats,
}

/// A pending reference diff: applies once every name enqueued before
/// `barrier` has been flushed. `applied` releases the submitting
/// connector.
struct ChurnRequest {
    barrier: u64,
    added: Vec<String>,
    removed: Vec<String>,
    applied: Arc<AtomicBool>,
}

struct Inner {
    lanes: BTreeMap<String, LaneQueue>,
    churns: VecDeque<ChurnRequest>,
    seq: u64,
    live_connectors: usize,
    quarantine: VecDeque<QuarantineSample>,
    quarantined: u64,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signalled when new work (names, churn, connector exit) arrives;
    /// the drainer waits here.
    work: Condvar,
    /// Signalled when the drainer frees queue space or applies churn;
    /// blocked connectors wait here.
    space: Condvar,
}

impl Shared {
    /// Lock with poison recovery: a panicking thread must never wedge
    /// the whole service (panic isolation is the module's point).
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, Inner>, cv: &Condvar) -> MutexGuard<'a, Inner> {
        cv.wait(guard).unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Decrements `live_connectors` even if the connector unwinds, so the
/// drainer always observes termination.
struct ConnectorGuard<'a> {
    shared: &'a Shared,
}

impl Drop for ConnectorGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.live_connectors -= 1;
        drop(inner);
        self.shared.work.notify_all();
    }
}

/// What the drainer decided to do next (computed under the lock,
/// executed outside it).
enum Action {
    Flush { tld: String, batch: Vec<DomainName> },
    Churn { added: Vec<String>, removed: Vec<String>, applied: Arc<AtomicBool> },
    Done,
}

/// A pre-flush hook: called with `(tld, per-lane flush ordinal)`
/// before each router flush. The seam the deterministic fault harness
/// uses to force worker panics at exact coordinates.
pub type FlushHook = Arc<dyn Fn(&str, u64) + Send + Sync>;

/// The fault-tolerant ingestion service: connectors × bounded lanes ×
/// one router-driving drainer. See the module docs for the failure
/// semantics; see `tests/ingest_faults.rs` for the pinned invariants.
pub struct IngestService {
    index: Arc<DetectionIndex>,
    config: IngestConfig,
    /// Test/fault-injection seam: a panic here is handled exactly
    /// like a worker panic in the flush itself.
    flush_hook: Option<FlushHook>,
}

impl IngestService {
    /// A service over a shared detection index with the given config.
    pub fn new(index: Arc<DetectionIndex>, config: IngestConfig) -> Self {
        IngestService { index, config, flush_hook: None }
    }

    /// Installs a pre-flush hook, the seam the deterministic fault
    /// harness uses to force worker panics at exact `(lane, flush)`
    /// coordinates.
    pub fn with_flush_hook(mut self, hook: FlushHook) -> Self {
        self.flush_hook = Some(hook);
        self
    }

    /// Runs the feeds to completion (or circuit-open) and returns the
    /// final report, with every lane flushed. Never panics on feed
    /// faults, malformed records or worker panics.
    pub fn run(&self, feeds: Vec<Box<dyn FeedSource>>) -> IngestReport {
        let shared = Shared {
            inner: Mutex::new(Inner {
                lanes: BTreeMap::new(),
                churns: VecDeque::new(),
                seq: 0,
                live_connectors: feeds.len(),
                quarantine: VecDeque::new(),
                quarantined: 0,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        };

        let mut feed_reports: Vec<Option<FeedReport>> = Vec::new();
        let mut drain_outcome = DrainOutcome::default();

        std::thread::scope(|scope| {
            let handles: Vec<_> = feeds
                .into_iter()
                .enumerate()
                .map(|(idx, feed)| {
                    let shared = &shared;
                    let config = &self.config;
                    scope.spawn(move || run_connector(shared, config, feed, idx as u64))
                })
                .collect();

            drain_outcome = self.drain(&shared);

            feed_reports = handles
                .into_iter()
                .map(|h| h.join().ok())
                .collect();
        });

        let mut inner = shared.lock();
        let lanes: Vec<LaneStats> =
            inner.lanes.values().map(|lane| lane.stats.clone()).collect();
        let shed = lanes.iter().map(|l| l.shed).sum();
        let quarantine: Vec<QuarantineSample> = inner.quarantine.drain(..).collect();
        let quarantined = inner.quarantined;
        drop(inner);

        IngestReport {
            router: drain_outcome.report,
            feeds: feed_reports
                .into_iter()
                .map(|r| {
                    r.unwrap_or_else(|| FeedReport {
                        name: "<connector panicked>".to_string(),
                        registrations: 0,
                        churns: 0,
                        quarantined: 0,
                        retries: 0,
                        outcome: FeedOutcome::CircuitOpen,
                        last_error: Some("connector thread panicked".to_string()),
                    })
                })
                .collect(),
            lanes,
            quarantine,
            quarantined,
            shed,
            lost: drain_outcome.lost,
            lane_panics: drain_outcome.lane_panics,
            lane_folds: drain_outcome.lane_folds,
        }
    }

    /// The drainer: picks actions under the lock, drives the router
    /// outside it, isolates flush panics to lane poisons, and folds
    /// idle lanes.
    fn drain(&self, shared: &Shared) -> DrainOutcome {
        let mut router = match &self.config.tlds {
            Some(tlds) => SessionRouter::new(Arc::clone(&self.index))
                .with_tlds(tlds.iter().cloned())
                .with_batch_capacity(self.config.batch_capacity),
            None => SessionRouter::new(Arc::clone(&self.index))
                .with_batch_capacity(self.config.batch_capacity),
        };
        let mut outcome = DrainOutcome::default();
        // Per-lane flush ordinals (the fault harness's panic
        // coordinates) and the global flush clock for idle folding.
        let mut flush_ordinal: BTreeMap<String, u64> = BTreeMap::new();
        let mut last_flush: BTreeMap<String, u64> = BTreeMap::new();
        let mut flush_clock: u64 = 0;

        loop {
            match self.next_action(shared) {
                Action::Done => break,
                Action::Churn { added, removed, applied } => {
                    router.apply_reference_diff(&added, &removed);
                    applied.store(true, Ordering::Release);
                    shared.space.notify_all();
                }
                Action::Flush { tld, batch } => {
                    let ordinal = {
                        let slot = flush_ordinal.entry(tld.clone()).or_insert(0);
                        *slot += 1;
                        *slot
                    };
                    let hook = self.flush_hook.clone();
                    let first = catch_unwind(AssertUnwindSafe(|| {
                        if let Some(hook) = &hook {
                            hook(&tld, ordinal);
                        }
                        router.push_domains(batch.iter());
                        router.flush();
                    }));
                    let mut routed = batch.len() as u64;
                    if first.is_err() {
                        outcome.lane_panics += 1;
                        // The lane's unflushed state is suspect: poison
                        // it (pending discarded, durable report banked)
                        // and retry the batch once on a fresh lane.
                        router.poison_lane(&tld);
                        let retry = catch_unwind(AssertUnwindSafe(|| {
                            router.push_domains(batch.iter());
                            router.flush();
                        }));
                        if retry.is_err() {
                            router.poison_lane(&tld);
                            outcome.lost += batch.len() as u64;
                            routed = 0;
                        }
                        let mut inner = shared.lock();
                        if let Some(lane) = inner.lanes.get_mut(&tld) {
                            lane.stats.panics += 1;
                        }
                    }
                    {
                        let mut inner = shared.lock();
                        if let Some(lane) = inner.lanes.get_mut(&tld) {
                            lane.stats.routed += routed;
                        }
                    }
                    flush_clock += 1;
                    last_flush.insert(tld, flush_clock);
                    if let Some(idle_after) = self.config.idle_fold_after {
                        self.fold_idle_lanes(
                            shared,
                            &mut router,
                            &last_flush,
                            flush_clock,
                            idle_after,
                            &mut outcome,
                        );
                    }
                }
            }
        }
        outcome.report = router.into_report();
        outcome
    }

    /// Folds every open router lane idle for `idle_after` flush ticks
    /// whose ingest queue is empty. Folding is report-invariant (the
    /// lane reopens with diff history replayed), so the fold *timing*
    /// may be nondeterministic without the report being so.
    fn fold_idle_lanes(
        &self,
        shared: &Shared,
        router: &mut SessionRouter,
        last_flush: &BTreeMap<String, u64>,
        flush_clock: u64,
        idle_after: u64,
        outcome: &mut DrainOutcome,
    ) {
        let open: Vec<String> = router.tlds().map(|t| t.to_string()).collect();
        for tld in open {
            let idle = flush_clock.saturating_sub(last_flush.get(&tld).copied().unwrap_or(0));
            if idle < idle_after {
                continue;
            }
            let queue_empty = {
                let inner = shared.lock();
                inner.lanes.get(&tld).is_none_or(|lane| lane.queue.is_empty())
            };
            if queue_empty && router.fold_lane(&tld) {
                outcome.lane_folds += 1;
                let mut inner = shared.lock();
                if let Some(lane) = inner.lanes.get_mut(&tld) {
                    lane.stats.folds += 1;
                }
            }
        }
    }

    /// Blocks until the next drainer action is ready. Priorities:
    /// satisfy the front churn barrier (flush pre-barrier names, then
    /// apply), then drain the lane with the globally oldest name, then
    /// terminate once all connectors exited and everything is empty.
    fn next_action(&self, shared: &Shared) -> Action {
        let mut inner = shared.lock();
        loop {
            if let Some(front) = inner.churns.front() {
                let barrier = front.barrier;
                let lagging = inner
                    .lanes
                    .iter()
                    .find(|(_, lane)| {
                        lane.queue.front().is_some_and(|(seq, _)| *seq < barrier)
                    })
                    .map(|(tld, _)| tld.clone());
                match lagging {
                    Some(tld) => {
                        // Adaptive drain batch: the full configured
                        // capacity while the pool is busy, an earlier
                        // (smaller) flush when it is idle — see
                        // `crate::sched`. Batch size never affects the
                        // report, only dispatch granularity.
                        let cap = crate::sched::flush_capacity(self.config.batch_capacity);
                        let lane = inner.lanes.get_mut(&tld).expect("lane just found");
                        let mut batch = Vec::new();
                        while batch.len() < cap
                            && lane.queue.front().is_some_and(|(seq, _)| *seq < barrier)
                        {
                            batch.push(lane.queue.pop_front().expect("front checked").1);
                        }
                        shared.space.notify_all();
                        return Action::Flush { tld, batch };
                    }
                    None => {
                        let churn = inner.churns.pop_front().expect("front checked");
                        return Action::Churn {
                            added: churn.added,
                            removed: churn.removed,
                            applied: churn.applied,
                        };
                    }
                }
            }

            let oldest = inner
                .lanes
                .iter()
                .filter(|(_, lane)| !lane.queue.is_empty())
                .min_by_key(|(_, lane)| lane.queue.front().expect("nonempty").0)
                .map(|(tld, _)| tld.clone());
            if let Some(tld) = oldest {
                let cap = crate::sched::flush_capacity(self.config.batch_capacity);
                let lane = inner.lanes.get_mut(&tld).expect("lane just found");
                let take = lane.queue.len().min(cap);
                let batch: Vec<DomainName> =
                    lane.queue.drain(..take).map(|(_, name)| name).collect();
                shared.space.notify_all();
                return Action::Flush { tld, batch };
            }

            if inner.live_connectors == 0 {
                return Action::Done;
            }
            inner = shared.wait(inner, &shared.work);
        }
    }
}

#[derive(Default)]
struct DrainOutcome {
    report: RouterReport,
    lost: u64,
    lane_panics: u64,
    lane_folds: u64,
}

/// One connector: pulls `feed` to completion, enqueueing events,
/// quarantining malformed records, and retrying feed errors with
/// backoff until the circuit opens. A panicking feed is contained
/// (treated as an I/O error), so no input can take the service down.
fn run_connector(
    shared: &Shared,
    config: &IngestConfig,
    mut feed: Box<dyn FeedSource>,
    feed_index: u64,
) -> FeedReport {
    let _guard = ConnectorGuard { shared };
    let name = feed.name().to_string();
    let mut report = FeedReport {
        name: name.clone(),
        registrations: 0,
        churns: 0,
        quarantined: 0,
        retries: 0,
        outcome: FeedOutcome::Completed,
        last_error: None,
    };
    let mut consecutive: u32 = 0;
    let mut jitter = config
        .retry
        .jitter_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(feed_index);
    let mut position: u64 = 0;

    loop {
        let pulled = catch_unwind(AssertUnwindSafe(|| feed.next()))
            .unwrap_or_else(|_| Err(FeedError::Io("feed panicked".to_string())));
        match pulled {
            Ok(None) => {
                report.outcome = FeedOutcome::Completed;
                break;
            }
            Ok(Some(item)) => {
                consecutive = 0;
                position += 1;
                match item {
                    FeedItem::Event(IngestEvent::Registered(domain)) => {
                        report.registrations += 1;
                        enqueue(shared, config, domain);
                    }
                    FeedItem::Event(IngestEvent::ReferenceChurn { added, removed }) => {
                        report.churns += 1;
                        submit_churn(shared, added, removed);
                    }
                    FeedItem::Malformed(detail) => {
                        report.quarantined += 1;
                        quarantine(shared, config, &name, position, detail);
                    }
                }
            }
            Err(error) => {
                consecutive += 1;
                report.last_error = Some(error.to_string());
                if consecutive >= config.retry.circuit_threshold {
                    report.outcome = FeedOutcome::CircuitOpen;
                    break;
                }
                report.retries += 1;
                let delay = config.retry.delay(consecutive, &mut jitter);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
    }
    report
}

/// Backpressure policy for `tld`: the per-lane override, else the
/// config default.
fn policy_for(config: &IngestConfig, tld: &str) -> Backpressure {
    config
        .lane_policies
        .iter()
        .find(|(t, _)| t == tld)
        .map(|(_, p)| *p)
        .unwrap_or(config.backpressure)
}

/// Pushes one name into its lane queue, creating the lane on first
/// sight. A full lane blocks (counted once per push attempt) or sheds
/// per its policy.
fn enqueue(shared: &Shared, config: &IngestConfig, domain: DomainName) {
    let tld = domain.tld().to_string();
    let mut inner = shared.lock();
    let mut counted_block = false;
    loop {
        let seq = inner.seq;
        let lane = inner.lanes.entry(tld.clone()).or_insert_with(|| LaneQueue {
            queue: VecDeque::new(),
            policy: policy_for(config, &tld),
            stats: LaneStats {
                tld: tld.clone(),
                enqueued: 0,
                routed: 0,
                shed: 0,
                blocked: 0,
                panics: 0,
                folds: 0,
            },
        });
        if lane.queue.len() < config.queue_capacity {
            lane.queue.push_back((seq, domain));
            lane.stats.enqueued += 1;
            inner.seq += 1;
            drop(inner);
            shared.work.notify_all();
            return;
        }
        match lane.policy {
            Backpressure::Shed => {
                lane.stats.shed += 1;
                return;
            }
            Backpressure::Block => {
                if !counted_block {
                    lane.stats.blocked += 1;
                    counted_block = true;
                }
                inner = shared.wait(inner, &shared.space);
            }
        }
    }
}

/// Submits a reference diff behind a sequence barrier and blocks until
/// the drainer applies it, so later events of this feed are observed
/// post-diff — the same order a batch replay gives.
fn submit_churn(shared: &Shared, added: Vec<String>, removed: Vec<String>) {
    let applied = Arc::new(AtomicBool::new(false));
    {
        let mut inner = shared.lock();
        let barrier = inner.seq;
        inner.churns.push_back(ChurnRequest {
            barrier,
            added,
            removed,
            applied: Arc::clone(&applied),
        });
        drop(inner);
        shared.work.notify_all();
    }
    let mut inner = shared.lock();
    while !applied.load(Ordering::Acquire) {
        inner = shared.wait(inner, &shared.space);
    }
}

/// Counts a malformed record and samples it into the bounded ring.
fn quarantine(
    shared: &Shared,
    config: &IngestConfig,
    feed: &str,
    position: u64,
    detail: String,
) {
    let mut inner = shared.lock();
    inner.quarantined += 1;
    inner.quarantine.push_back(QuarantineSample {
        feed: feed.to_string(),
        position,
        detail,
    });
    while inner.quarantine.len() > config.quarantine_capacity.max(1) {
        inner.quarantine.pop_front();
    }
}
