//! Occupancy-driven execution policy + per-call execution statistics.
//!
//! The worker pool (vendored `rayon`) exposes two telemetry readings:
//! the live busy-worker gauge ([`rayon::busy_workers`]) and the full
//! [`rayon::PoolStats`] snapshot. This module turns the gauge into the
//! two partitioning decisions the hot paths make:
//!
//! * **Shard sizing** (`shard_len_for`) — `detect_append` splits a
//!   batch into shards for the pool. An *idle* pool gets fine shards
//!   (≈ 4 per worker) so every worker engages and a slow shard cannot
//!   serialise the tail; a *busy* pool gets fewer, larger shards sized
//!   to the workers actually free, so a batch arriving while another
//!   is in flight does not queue dozens of tiny jobs behind it.
//! * **Flush batching** (`flush_capacity`) — the router's lanes and
//!   the ingest drainer buffer events and flush them as one batch.
//!   When the pool is idle there is latency headroom to flush *early*
//!   (a quarter of the configured capacity), getting detections out
//!   sooner; when the pool is busy the full configured batch amortises
//!   the dispatch better than more, smaller flushes would.
//!
//! # Determinism
//!
//! Occupancy influences **partitioning only** — how many shards a
//! batch splits into and how many events a flush carries — never what
//! is computed. Shard outputs merge in corpus order (see
//! `vendor/rayon`'s in-order chunk merge) and streaming detection is
//! partition-invariant (see `crate::session`), so any occupancy
//! history, including the adversarial sequences the test hook
//! [`rayon::set_occupancy_override`] / `SHAM_OCC_PERTURB` injects,
//! yields bit-identical reports. The equivalence suites pin exactly
//! that.
//!
//! What the scheduler *chose* is still observable out of band:
//! [`ExecStats`] accumulates per-call decisions (batches, shards,
//! shard sizes, workers engaged) into every report — compared by
//! nothing (report equality ignores it), printed by ledgers.

use serde::{Deserialize, Serialize};

/// Minimum IDNs per shard — amortises the per-shard scratch buffers.
pub const MIN_SHARD_LEN: usize = 64;

/// Floor for adaptively shrunken flush batches: flushing fewer than
/// this many events per dispatch would spend more on dispatch than on
/// detection. Configured capacities at or below it are never adapted.
pub const MIN_FLUSH_BATCH: usize = 64;

/// Execution statistics of the detection calls behind one report:
/// what the adaptive scheduler chose, not what it computed. Purely
/// observational — [`FrameworkReport`](crate::FrameworkReport)
/// equality deliberately ignores this field, because partitioning
/// varies with occupancy and thread count while results must not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Detection batches executed (one per `detect_append` call with
    /// at least one IDN).
    pub batches: u64,
    /// Batches that ran inline on the calling thread (single shard).
    pub inline_batches: u64,
    /// Total shards dispatched across all batches.
    pub shards: u64,
    /// Smallest shard length chosen so far (0 until the first batch).
    pub min_shard_len: usize,
    /// Largest shard length chosen so far.
    pub max_shard_len: usize,
    /// Most workers engaged by a single batch.
    pub max_workers: usize,
}

impl ExecStats {
    /// Folds one executed batch into the totals.
    pub(crate) fn record(&mut self, shards: usize, shard_len: usize, workers: usize) {
        self.batches += 1;
        if workers <= 1 {
            self.inline_batches += 1;
        }
        self.shards += shards as u64;
        self.min_shard_len = if self.min_shard_len == 0 {
            shard_len
        } else {
            self.min_shard_len.min(shard_len)
        };
        self.max_shard_len = self.max_shard_len.max(shard_len);
        self.max_workers = self.max_workers.max(workers);
    }

    /// Folds another accumulator into this one (report merging).
    pub fn merge(&mut self, other: &ExecStats) {
        self.batches += other.batches;
        self.inline_batches += other.inline_batches;
        self.shards += other.shards;
        if other.min_shard_len != 0 {
            self.min_shard_len = if self.min_shard_len == 0 {
                other.min_shard_len
            } else {
                self.min_shard_len.min(other.min_shard_len)
            };
        }
        self.max_shard_len = self.max_shard_len.max(other.max_shard_len);
        self.max_workers = self.max_workers.max(other.max_workers);
    }

    /// True until the first batch is recorded.
    pub fn is_empty(&self) -> bool {
        self.batches == 0
    }
}

/// Shard length for a `len`-IDN batch at `threads` configured workers,
/// adapted to the observed pool occupancy:
///
/// * 1 thread → one shard (the caller runs it inline; splitting would
///   only add merge overhead);
/// * idle pool → ≈ 4 shards per worker (fine shards, full engagement,
///   skew-tolerant);
/// * busy pool → ≈ 2 shards per *free* worker (larger shards, less
///   queueing behind the in-flight work).
///
/// Never below [`MIN_SHARD_LEN`]. Occupancy is read once per call —
/// never per IDN — and affects partitioning only (see module docs).
pub(crate) fn shard_len_for(len: usize, threads: usize) -> usize {
    if threads <= 1 {
        return len.max(1);
    }
    // Clamp so at least one worker always counts as free: the reading
    // is advisory and may be stale (or forced by the test hook) — the
    // batch must still be schedulable.
    let busy = rayon::busy_workers().min(threads - 1);
    let free = threads - busy;
    let per_worker = if busy == 0 { 4 } else { 2 };
    len.div_ceil(free * per_worker).max(MIN_SHARD_LEN)
}

/// Effective flush batch for a configured lane capacity: the full
/// capacity when the pool is busy (or there is no pool), a quarter of
/// it — never below [`MIN_FLUSH_BATCH`] — when the pool is idle and
/// there is latency headroom to flush early. Adaptation only ever
/// *shrinks* the batch, so a configured capacity remains the upper
/// bound callers size their buffers by.
pub(crate) fn flush_capacity(configured: usize) -> usize {
    if configured <= MIN_FLUSH_BATCH {
        return configured.max(1);
    }
    if rayon::current_num_threads() <= 1 || rayon::busy_workers() > 0 {
        return configured;
    }
    (configured / 4).max(MIN_FLUSH_BATCH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge_track_extremes() {
        let mut a = ExecStats::default();
        assert!(a.is_empty());
        a.record(1, 500, 1);
        a.record(8, 64, 4);
        assert_eq!(a.batches, 2);
        assert_eq!(a.inline_batches, 1);
        assert_eq!(a.shards, 9);
        assert_eq!(a.min_shard_len, 64);
        assert_eq!(a.max_shard_len, 500);
        assert_eq!(a.max_workers, 4);

        let mut b = ExecStats::default();
        b.record(2, 32, 2);
        b.merge(&a);
        assert_eq!(b.batches, 3);
        assert_eq!(b.shards, 11);
        assert_eq!(b.min_shard_len, 32);
        assert_eq!(b.max_shard_len, 500);
        assert_eq!(b.max_workers, 4);

        // Merging an empty accumulator must not clobber the minimum.
        b.merge(&ExecStats::default());
        assert_eq!(b.min_shard_len, 32);
    }

    #[test]
    fn shard_len_single_thread_is_one_shard() {
        assert_eq!(shard_len_for(10_000, 1), 10_000);
        assert_eq!(shard_len_for(0, 1), 1);
    }

    #[test]
    fn shard_len_adapts_to_forced_occupancy() {
        // Serialise against other tests that force occupancy.
        let _guard = occupancy_guard();
        {
            let _idle = rayon::OccupancyOverride::new(vec![0]);
            // Idle, 4 threads: ~16 shards of 625.
            assert_eq!(shard_len_for(10_000, 4), 625);
        }
        {
            let _busy = rayon::OccupancyOverride::new(vec![3]);
            // 3 of 4 busy: 1 free worker, ~2 shards of 5 000.
            assert_eq!(shard_len_for(10_000, 4), 5_000);
        }
        {
            // Forced occupancy beyond the thread count clamps: one
            // worker always counts as free.
            let _swamped = rayon::OccupancyOverride::new(vec![64]);
            assert_eq!(shard_len_for(10_000, 4), 5_000);
        }
        {
            let _idle = rayon::OccupancyOverride::new(vec![0]);
            // The shard floor holds whatever the split says.
            assert_eq!(shard_len_for(100, 8), MIN_SHARD_LEN);
        }
    }

    #[test]
    fn flush_capacity_shrinks_only_when_idle() {
        let _guard = occupancy_guard();
        let _threads = rayon::ThreadOverride::new(2);
        {
            let _idle = rayon::OccupancyOverride::new(vec![0]);
            assert_eq!(flush_capacity(1_024), 256);
            assert_eq!(flush_capacity(160), MIN_FLUSH_BATCH);
            // At or below the floor: never adapted.
            assert_eq!(flush_capacity(64), 64);
            assert_eq!(flush_capacity(1), 1);
            assert_eq!(flush_capacity(0), 1);
        }
        {
            let _busy = rayon::OccupancyOverride::new(vec![1]);
            assert_eq!(flush_capacity(1_024), 1_024);
        }
        // Single-threaded: no pool to keep fed, full batches always.
        let _one = rayon::ThreadOverride::new(1);
        let _idle = rayon::OccupancyOverride::new(vec![0]);
        assert_eq!(flush_capacity(1_024), 1_024);
    }

    /// Serialises tests that install a global occupancy override
    /// (poison-tolerant, like the executor's own test guard).
    fn occupancy_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> =
            std::sync::OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
