//! The incremental streaming session layer.
//!
//! A [`DetectorSession`] is the production ingest surface: it holds a
//! clone of the shared immutable [`DetectionIndex`] and accepts work as
//! it arrives — zone-file diffs and newly-registered names in batches
//! of any size (including empty), plus reference-list churn as
//! incremental diffs — folding everything into the same
//! [`FrameworkReport`] a one-shot [`Framework::run`] produces. Batch
//! and streaming share one detection executor (`detect_append` in
//! `crate::algorithm`), so feeding a corpus in any partition of
//! batches yields detections identical to feeding it whole;
//! `Framework::run` is itself a thin wrapper over a session.
//!
//! Memory stays bounded by the largest single batch (one reused
//! extraction buffer, one reused match scratch) plus the accumulated
//! detections — the session never materialises the corpus.
//!
//! Reference diffs are copy-on-write: the first
//! [`DetectorSession::apply_reference_diff`] clones the index's
//! reference-set half (names, stems and candidate buckets — *not*
//! the flat character index, which stays shared) and subsequent diffs
//! edit that overlay incrementally — additions append and index one
//! entry, removals tombstone and leave the touched buckets.
//!
//! Tombstones are reclaimed by *compaction*: when the overlay's dead
//! entries both reach the session's threshold
//! ([`DetectorSession::with_compaction_threshold`], default
//! [`DEFAULT_COMPACTION_THRESHOLD`]) and outnumber the live ones, the
//! overlay is rebuilt over the survivors — so a long-lived session
//! under heavy reference churn stays bounded by its live reference
//! count instead of growing with the total churn history, while the
//! amortised per-diff cost stays O(1) (each rebuild at least halves
//! the table). Compaction preserves the
//! [`RefName`](crate::detection::RefName) handles that
//! already-emitted detections share, and is observable only through
//! [`DetectorSession::overlay_tombstones`] — detections are identical
//! with compaction on, off, or forced after every diff.
//!
//! [`Framework::run`]: crate::Framework::run

use crate::algorithm::{detect_append, DetectScratch, Indexing};
use crate::detection::Detection;
use crate::framework::FrameworkReport;
use crate::index::{DetectionIndex, ReferenceSet};
use crate::sched::ExecStats;
use sham_punycode::DomainName;
use sham_simchar::DbSelection;
use std::sync::Arc;

/// Default minimum number of tombstoned overlay entries before a
/// session considers compacting (they must also outnumber the live
/// entries — see [`DetectorSession::with_compaction_threshold`]).
pub const DEFAULT_COMPACTION_THRESHOLD: usize = 64;

/// A streaming detection session over a shared [`DetectionIndex`].
///
/// ```
/// use sham_core::{DetectionIndex, DetectorSession};
/// use sham_confusables::UcDatabase;
/// use sham_glyph::SynthUnifont;
/// use sham_punycode::DomainName;
/// use sham_simchar::{build, BuildConfig, HomoglyphDb, Repertoire};
///
/// let font = SynthUnifont::v12();
/// let simchar = build(&font, &BuildConfig {
///     repertoire: Repertoire::Blocks(vec!["Basic Latin", "Cyrillic"]),
///     ..BuildConfig::default()
/// }).db;
/// let index = DetectionIndex::shared(
///     HomoglyphDb::new(simchar, UcDatabase::embedded()),
///     vec!["google".to_string()],
/// );
/// let mut session = DetectorSession::new(index, "com");
/// // Feed zone-diff batches as they arrive…
/// session.push_domains(&[DomainName::parse("xn--ggle-55da.com").unwrap()]);
/// session.push_domains(&[]); // quiet poll intervals are fine
/// let report = session.into_report();
/// assert_eq!(&*report.detections[0].reference, "google");
/// ```
pub struct DetectorSession {
    index: Arc<DetectionIndex>,
    /// Copy-on-write reference overlay; `None` until the first diff.
    overlay: Option<ReferenceSet>,
    /// Minimum dead entries before overlay compaction can trigger.
    compact_min_dead: usize,
    tld: String,
    selection: DbSelection,
    indexing: Indexing,
    total_domains: usize,
    idn_count: usize,
    detections: Vec<Detection>,
    /// Scheduling decisions of the detection calls so far (shards,
    /// sizes, workers) — threaded into the report, ignored by report
    /// equality.
    exec: ExecStats,
    /// Reused extraction buffer — bounds `push_domains` memory by the
    /// batch size.
    batch: Vec<(String, String)>,
    /// Reused match scratch — steady-state streaming allocates nothing
    /// on the rejecting path.
    scratch: DetectScratch,
}

impl DetectorSession {
    /// Opens a session for `tld` over a shared index, with the
    /// framework defaults (union database, closure indexing).
    pub fn new(index: Arc<DetectionIndex>, tld: &str) -> Self {
        DetectorSession {
            index,
            overlay: None,
            compact_min_dead: DEFAULT_COMPACTION_THRESHOLD,
            tld: tld.to_string(),
            selection: DbSelection::Union,
            indexing: Indexing::CanonicalClosure,
            total_domains: 0,
            idn_count: 0,
            detections: Vec::new(),
            exec: ExecStats::default(),
            batch: Vec::new(),
            scratch: DetectScratch::default(),
        }
    }

    /// Switches the database selection for all subsequent pushes.
    pub fn with_selection(mut self, selection: DbSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Switches the candidate-generation strategy.
    pub fn with_indexing(mut self, indexing: Indexing) -> Self {
        self.indexing = indexing;
        self
    }

    /// Sets the overlay-compaction trigger: after a reference diff, the
    /// copy-on-write overlay is rebuilt over its live entries once the
    /// tombstone count reaches `min_dead` *and* the tombstones
    /// outnumber the live entries (so each compaction at least halves
    /// the table, keeping the amortised per-diff cost constant).
    /// `usize::MAX` disables compaction; `0` compacts whenever the
    /// table is at least half dead. Purely a memory/layout knob —
    /// detections are identical at every setting.
    pub fn with_compaction_threshold(mut self, min_dead: usize) -> Self {
        self.compact_min_dead = min_dead;
        self
    }

    /// The shared index this session reads.
    pub fn index(&self) -> &Arc<DetectionIndex> {
        &self.index
    }

    /// Number of references currently in force (base index minus
    /// removals plus additions).
    pub fn reference_count(&self) -> usize {
        match &self.overlay {
            Some(overlay) => overlay.live_count(),
            None => self.index.reference_count(),
        }
    }

    /// Feeds one batch of registered domain names (a zone-file diff):
    /// every name counts toward the corpus total, names of this
    /// session's TLD with an `xn--` label are decoded and matched
    /// immediately. Steps 1–3 of the pipeline, incrementally.
    pub fn push_domains<'a>(
        &mut self,
        domains: impl IntoIterator<Item = &'a DomainName>,
    ) {
        // Count and extract in one pass — the corpus itself is never
        // collected.
        let mut batch = std::mem::take(&mut self.batch);
        batch.clear();
        for d in domains {
            self.total_domains += 1;
            if d.tld() == self.tld && d.is_idn() {
                if let Some(stem) = d.unicode_without_tld() {
                    batch.push((stem, d.as_ascii().to_string()));
                }
            }
        }
        self.idn_count += batch.len();
        self.detect_batch(&batch);
        self.batch = batch;
    }

    /// Feeds one batch of pre-extracted IDNs `(unicode stem, full ACE
    /// name)` — a registration stream that is already IDN-only. Each
    /// entry counts as one domain and one IDN.
    pub fn push_idns(&mut self, idns: &[(String, String)]) {
        self.total_domains += idns.len();
        self.idn_count += idns.len();
        self.detect_batch(idns);
    }

    /// Scores one batch against the session's current reference view.
    fn detect_batch(&mut self, idns: &[(String, String)]) {
        let refs = match &self.overlay {
            Some(overlay) => overlay,
            None => self.index.refs(),
        };
        detect_append(
            self.index.db(),
            refs,
            idns,
            self.selection,
            self.indexing,
            &mut self.scratch,
            &mut self.detections,
            &mut self.exec,
        );
    }

    /// Scheduling decisions accumulated by this session's detection
    /// calls so far (also carried by the report's `exec` field).
    pub fn exec_stats(&self) -> ExecStats {
        self.exec
    }

    /// Applies reference-list churn: `removed` names leave the
    /// candidate indexes (every occurrence; unknown names are ignored),
    /// then `added` stems join. Later pushes see the edited list;
    /// detections already accumulated are untouched. The first diff
    /// clones the reference half of the shared index (copy-on-write);
    /// each diff after that is an incremental edit — no rebuild.
    pub fn apply_reference_diff(&mut self, added: &[String], removed: &[String]) {
        let overlay = self
            .overlay
            .get_or_insert_with(|| self.index.refs().clone());
        for name in removed {
            overlay.remove(name);
        }
        for name in added {
            overlay.add(self.index.db(), name);
        }
        // Reclaim tombstones once they dominate the table (and pass the
        // configured floor): heavy churn would otherwise grow the
        // overlay's names/stems vectors without bound.
        if overlay.dead_count() >= self.compact_min_dead
            && overlay.dead_count() >= overlay.live_count()
        {
            overlay.compact();
        }
    }

    /// Tombstoned entries currently held by the copy-on-write overlay
    /// (0 while no diff has been applied, and again right after a
    /// compaction). Diagnostic companion to
    /// [`DetectorSession::with_compaction_threshold`].
    pub fn overlay_tombstones(&self) -> usize {
        self.overlay.as_ref().map_or(0, ReferenceSet::dead_count)
    }

    /// Detections accumulated so far, in push order.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Folds the session state into a [`FrameworkReport`] snapshot
    /// without ending the session.
    pub fn report(&self) -> FrameworkReport {
        FrameworkReport {
            total_domains: self.total_domains,
            idn_count: self.idn_count,
            detections: self.detections.clone(),
            exec: self.exec,
        }
    }

    /// Ends the session, yielding its report without cloning the
    /// accumulated detections.
    pub fn into_report(self) -> FrameworkReport {
        FrameworkReport {
            total_domains: self.total_domains,
            idn_count: self.idn_count,
            detections: self.detections,
            exec: self.exec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::RefName;
    use sham_confusables::UcDatabase;
    use sham_glyph::SynthUnifont;
    use sham_simchar::{build, BuildConfig, HomoglyphDb, Repertoire};

    fn shared_index(refs: &[&str]) -> Arc<DetectionIndex> {
        let font = SynthUnifont::v12();
        let result = build(
            &font,
            &BuildConfig {
                repertoire: Repertoire::Blocks(vec![
                    "Basic Latin",
                    "Latin-1 Supplement",
                    "Cyrillic",
                ]),
                ..BuildConfig::default()
            },
        );
        DetectionIndex::shared(
            HomoglyphDb::new(result.db, UcDatabase::embedded()),
            refs.iter().map(|s| s.to_string()),
        )
    }

    fn idn(stem: &str) -> (String, String) {
        let ace = sham_punycode::ace::to_ascii(stem).unwrap();
        (stem.to_string(), format!("{ace}.com"))
    }

    #[test]
    fn batched_pushes_accumulate_in_order() {
        let index = shared_index(&["google", "paypal"]);
        let mut session = DetectorSession::new(Arc::clone(&index), "com");
        session.push_idns(&[idn("gооgle"), idn("benign")]);
        session.push_idns(&[]); // empty batches are fine
        session.push_idns(&[idn("pаypаl")]);
        let report = session.into_report();
        assert_eq!(report.total_domains, 3);
        assert_eq!(report.idn_count, 3);
        let refs: Vec<&str> =
            report.detections.iter().map(|d| &*d.reference).collect();
        assert_eq!(refs, ["google", "paypal"]);
    }

    #[test]
    fn reference_diff_changes_only_later_batches() {
        let index = shared_index(&["google", "paypal"]);
        let mut session = DetectorSession::new(Arc::clone(&index), "com");
        session.push_idns(&[idn("gооgle")]);
        assert_eq!(session.reference_count(), 2);

        // Remove google, add amazon: the already-recorded detection
        // stays; later batches see the edited list.
        session.apply_reference_diff(&["amazon".to_string()], &["google".to_string()]);
        assert_eq!(session.reference_count(), 2);
        session.push_idns(&[idn("gооgle"), idn("аmazon")]);

        let report = session.report();
        let refs: Vec<&str> =
            report.detections.iter().map(|d| &*d.reference).collect();
        assert_eq!(refs, ["google", "amazon"]);
        // The shared index itself is untouched by the session overlay.
        assert_eq!(index.reference_count(), 2);
        assert_eq!(&*index.reference(0), "google");
    }

    #[test]
    fn diff_before_any_push_acts_like_a_different_index() {
        let index = shared_index(&["google"]);
        let mut session = DetectorSession::new(index, "com")
            .with_indexing(Indexing::LengthBucket);
        session.apply_reference_diff(&[], &["google".to_string()]);
        session.push_idns(&[idn("gооgle")]);
        assert!(session.detections().is_empty());
        assert_eq!(session.reference_count(), 0);
    }

    #[test]
    fn compaction_triggers_at_the_threshold_and_keeps_detecting() {
        let index = shared_index(&["google", "paypal"]);
        let mut session = DetectorSession::new(Arc::clone(&index), "com")
            .with_compaction_threshold(4);
        // Churn a throwaway stem in and out: each cycle leaves one
        // tombstone (the `add` appends a fresh entry).
        for i in 0..3 {
            session.apply_reference_diff(&["trending".to_string()], &[]);
            session.apply_reference_diff(&[], &["trending".to_string()]);
            assert_eq!(session.overlay_tombstones(), i + 1, "cycle {i}");
        }
        // The 4th dead entry reaches the threshold and outnumbers the
        // 2 live references: the overlay compacts.
        session.apply_reference_diff(&["trending".to_string()], &[]);
        session.apply_reference_diff(&[], &["trending".to_string()]);
        assert_eq!(session.overlay_tombstones(), 0);
        assert_eq!(session.reference_count(), 2);
        // Detection against the compacted overlay still works, and the
        // emitted reference is still the shared index's allocation.
        session.push_idns(&[idn("gооgle")]);
        assert_eq!(session.detections().len(), 1);
        assert!(RefName::ptr_eq(&session.detections()[0].reference, &index.reference(0)));
    }

    #[test]
    fn push_domains_counts_and_filters_like_the_framework() {
        let index = shared_index(&["google"]);
        let mut session = DetectorSession::new(index, "com");
        let corpus: Vec<DomainName> = [
            "google.com",
            "xn--ggle-55da.com", // gооgle
            "ordinary.com",
            "xn--ggle-55da.net", // wrong TLD
        ]
        .iter()
        .map(|s| DomainName::parse(s).unwrap())
        .collect();
        session.push_domains(&corpus);
        let report = session.into_report();
        assert_eq!(report.total_domains, 4);
        assert_eq!(report.idn_count, 1);
        assert_eq!(report.detections.len(), 1);
    }
}
