//! Warning-UI data for the paper's proposed countermeasure (§7.2, Fig. 12).
//!
//! Instead of forcibly degrading an IDN to Punycode, the paper proposes a
//! UI that shows the Unicode form and *explains* the deception: which
//! character was replaced, by what, and from which script/block. This
//! module produces that explanation from a [`Detection`].

use crate::detection::Detection;
use serde::{Deserialize, Serialize};
use sham_unicode::{block_of, script_of, CodePoint};

/// A fully described character substitution, ready for rendering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HighlightedSubstitution {
    /// Position in the stem.
    pub position: usize,
    /// The lookalike character in the IDN.
    pub homoglyph: char,
    /// Its code point, formatted `U+XXXX`.
    pub homoglyph_code: String,
    /// Unicode block of the lookalike (e.g. `Lao`).
    pub homoglyph_block: String,
    /// Script of the lookalike.
    pub homoglyph_script: String,
    /// The original character it imitates.
    pub original: char,
    /// Its code point.
    pub original_code: String,
    /// Block of the original (typically `Basic Latin`).
    pub original_block: String,
}

/// The warning panel of Fig. 12.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Warning {
    /// The domain the user is visiting (Unicode form plus TLD).
    pub visiting: String,
    /// The domain it imitates.
    pub did_you_mean: String,
    /// Per-character explanations.
    pub substitutions: Vec<HighlightedSubstitution>,
}

impl Warning {
    /// Builds the warning for a detection within the given TLD.
    pub fn from_detection(detection: &Detection, tld: &str) -> Warning {
        let substitutions = detection
            .substitutions
            .iter()
            .map(|s| {
                let h_cp = CodePoint::from(s.homoglyph);
                let o_cp = CodePoint::from(s.original);
                HighlightedSubstitution {
                    position: s.position,
                    homoglyph: s.homoglyph,
                    homoglyph_code: h_cp.to_string(),
                    homoglyph_block: block_of(h_cp).map_or("Unknown", |b| b.name).to_string(),
                    homoglyph_script: script_of(h_cp).name().to_string(),
                    original: s.original,
                    original_code: o_cp.to_string(),
                    original_block: block_of(o_cp).map_or("Unknown", |b| b.name).to_string(),
                }
            })
            .collect();
        Warning {
            visiting: format!("{}.{}", detection.idn_unicode, tld),
            did_you_mean: format!("{}.{}", detection.reference, tld),
            substitutions,
        }
    }

    /// Renders the panel as plain text (the Fig. 12 layout).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "WARNING — use of homoglyph detected.");
        let _ = writeln!(s, "You are accessing {}.", self.visiting);
        let _ = writeln!(s, "Did you mean {}?", self.did_you_mean);
        for sub in &self.substitutions {
            let _ = writeln!(
                s,
                "  position {}: '{}' {} ({}) imitates '{}' {} ({})",
                sub.position,
                sub.homoglyph,
                sub.homoglyph_code,
                sub.homoglyph_block,
                sub.original,
                sub.original_code,
                sub.original_block,
            );
        }
        s
    }

    /// Marks the substituted positions in the stem with brackets, e.g.
    /// `g[օ][օ]gle` — the "highlighting the anomalous characters" use the
    /// abstract describes.
    pub fn emphasised_stem(&self, stem: &str) -> String {
        let marked: std::collections::HashSet<usize> =
            self.substitutions.iter().map(|s| s.position).collect();
        let mut out = String::new();
        for (i, c) in stem.chars().enumerate() {
            if marked.contains(&i) {
                out.push('[');
                out.push(c);
                out.push(']');
            } else {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::CharSubstitution;
    use sham_simchar::PairSource;

    fn fig12_detection() -> Detection {
        Detection {
            idn_unicode: "g\u{0ED0}\u{0ED0}gle".into(),
            idn_ascii: "xn--ggle-r9e2v.com".into(),
            reference: "google".into(),
            substitutions: vec![
                CharSubstitution {
                    position: 1,
                    original: 'o',
                    homoglyph: '\u{0ED0}',
                    source: Some(PairSource::Both),
                },
                CharSubstitution {
                    position: 2,
                    original: 'o',
                    homoglyph: '\u{0ED0}',
                    source: Some(PairSource::Both),
                },
            ],
        }
    }

    #[test]
    fn warning_names_lao_digit_zero_block() {
        let w = Warning::from_detection(&fig12_detection(), "com");
        assert_eq!(w.visiting, "g\u{0ED0}\u{0ED0}gle.com");
        assert_eq!(w.did_you_mean, "google.com");
        assert_eq!(w.substitutions[0].homoglyph_block, "Lao");
        assert_eq!(w.substitutions[0].homoglyph_code, "U+0ED0");
        assert_eq!(w.substitutions[0].original_block, "Basic Latin");
    }

    #[test]
    fn render_text_contains_fig12_lines() {
        let w = Warning::from_detection(&fig12_detection(), "com");
        let text = w.render_text();
        assert!(text.contains("use of homoglyph detected"));
        assert!(text.contains("Did you mean google.com?"));
        assert!(text.contains("U+0ED0"));
        assert!(text.contains("Lao"));
    }

    #[test]
    fn emphasis_brackets_substituted_positions() {
        let w = Warning::from_detection(&fig12_detection(), "com");
        assert_eq!(
            w.emphasised_stem("g\u{0ED0}\u{0ED0}gle"),
            "g[\u{0ED0}][\u{0ED0}]gle"
        );
    }
}
