//! GB-scale batch zone scanning: file → detections, overlapped I/O.
//!
//! This is the whole-`.com`-zone workload of the paper's §5 as one
//! streaming pipeline (the QUIC-Lab `domain_extractor` shape):
//!
//! ```text
//!  reader thread          calling thread
//!  ┌───────────┐  full   ┌───────────────────────────────────────┐
//!  │ chunked   │ ──────▶ │ byte-level line split (SWAR newline)  │
//!  │ File reads│  chunks │   └▶ ZoneStreamParser::scan_line      │
//!  │ recycled  │ ◀────── │       └▶ dedup (consecutive + window) │
//!  │ buffers   │  free   │           └▶ blacklist suffix filter  │
//!  └───────────┘  buffers│               └▶ SessionRouter batches│
//!                        └───────────────────────────────────────┘
//! ```
//!
//! * **Overlapped I/O** — a reader thread fills large recycled buffers
//!   and hands them over a bounded channel, so disk reads overlap
//!   parsing/detection and the parser never waits on a warm file
//!   (double-buffered: while one chunk is being scanned the next is
//!   being read).
//! * **Allocation-conscious scanning** — lines are split with a
//!   word-at-a-time newline scan over the chunk bytes and fed to
//!   [`ZoneStreamParser::scan_line`], which yields *borrowed* owner
//!   names; nothing is allocated for skipped, malformed, deduplicated
//!   or blacklisted lines. Only domains that survive the pre-stage are
//!   cloned into a router batch.
//! * **Pre-detection dedup** — zone dumps repeat each owner once per
//!   record (NS runs, glue); the scanner drops consecutive repeats for
//!   free (the parser's owner cache flags them) and catches
//!   out-of-order repeats with a bounded hash window.
//! * **Accounting invariant** — every parsed line is accounted for:
//!   `records + quarantined == routed + deduped + blacklisted +
//!   quarantined` per TLD ([`TldScanStats::is_accounted`]); the CLI and
//!   tests close the books on it.
//!
//! Batches flush into the [`SessionRouter`] at the occupancy-adaptive
//! [`flush_capacity`](crate::sched) mark — the same PR 9 policy the
//! ingest front-end uses, read once per flush, never per domain.

use crate::router::{RouterReport, SessionRouter};
use sham_dns::zone::{ZoneScan, ZoneStreamParser};
use sham_punycode::DomainName;
use sham_web::Blacklist;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::io::{self, Read};
use std::path::Path;
use std::sync::mpsc;
use std::time::Instant;

/// Tuning knobs for [`ZoneScanner`]. `Default` is sized for multi-GB
/// files on spinning or networked storage.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Bytes per read chunk (default 1 MiB; floored at 4 KiB).
    pub chunk_bytes: usize,
    /// Bounded-channel depth between reader and parser (default 4;
    /// floored at 2 so the pipeline is at least double-buffered).
    pub channel_depth: usize,
    /// Out-of-order dedup window: how many recent owner hashes are
    /// remembered (default 8192; 0 disables the window — consecutive
    /// dedup still applies).
    pub dedup_window: usize,
    /// Router batch size the pre-stage buffers toward; the effective
    /// flush mark adapts to pool occupancy (see [`crate::sched`]).
    pub batch_capacity: usize,
    /// Cap on quarantined-line samples kept for the report.
    pub quarantine_samples: usize,
    /// Suffix blacklists applied before detection; a domain matching
    /// any feed is counted and dropped.
    pub blacklists: Vec<Blacklist>,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            chunk_bytes: 1 << 20,
            channel_depth: 4,
            dedup_window: 8_192,
            batch_capacity: crate::router::DEFAULT_ROUTER_BATCH,
            quarantine_samples: 8,
            blacklists: Vec::new(),
        }
    }
}

/// Per-TLD accounting for one scan run. Every counter is in *lines*
/// except `bytes`; `records` are well-formed record lines only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TldScanStats {
    /// Bytes consumed from this TLD's files.
    pub bytes: u64,
    /// Raw lines seen (blank/comment/directive lines included).
    pub lines: u64,
    /// Well-formed record lines.
    pub records: u64,
    /// Malformed or non-UTF-8 lines, skipped and counted.
    pub quarantined: u64,
    /// Records dropped because the owner repeated the previous line's.
    pub dedup_consecutive: u64,
    /// Records dropped by the bounded out-of-order owner window.
    pub dedup_window: u64,
    /// Records dropped by a blacklist suffix match.
    pub blacklisted: u64,
    /// Owners handed to the router for detection.
    pub routed: u64,
    /// Wall-clock seconds spent scanning this TLD's files.
    pub elapsed_secs: f64,
}

impl TldScanStats {
    /// Lines that reached the record machine: records + quarantined.
    pub fn parsed(&self) -> u64 {
        self.records + self.quarantined
    }

    /// Records dropped by either dedup stage.
    pub fn deduped(&self) -> u64 {
        self.dedup_consecutive + self.dedup_window
    }

    /// The closing side of the books: routed + deduped + blacklisted
    /// + quarantined.
    pub fn accounted(&self) -> u64 {
        self.routed + self.deduped() + self.blacklisted + self.quarantined
    }

    /// The `records_accounted` invariant: every parsed line is routed,
    /// deduplicated, blacklisted, or quarantined — nothing vanishes.
    pub fn is_accounted(&self) -> bool {
        self.parsed() == self.accounted()
    }

    /// Folds another TLD's (or file's) counters into this one.
    pub fn merge(&mut self, other: &TldScanStats) {
        self.bytes += other.bytes;
        self.lines += other.lines;
        self.records += other.records;
        self.quarantined += other.quarantined;
        self.dedup_consecutive += other.dedup_consecutive;
        self.dedup_window += other.dedup_window;
        self.blacklisted += other.blacklisted;
        self.routed += other.routed;
        self.elapsed_secs += other.elapsed_secs;
    }
}

/// Everything a finished scan knows: the router's detection report plus
/// the scanner's own per-TLD accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanReport {
    /// Detection outcome (per-TLD lanes, detections, exec stats).
    pub router: RouterReport,
    /// Scanner-side accounting, keyed by TLD.
    pub per_tld: BTreeMap<String, TldScanStats>,
    /// First few quarantined-line diagnostics (bounded).
    pub quarantine_samples: Vec<String>,
    /// Files scanned.
    pub files: usize,
}

impl ScanReport {
    /// All TLD counters folded together.
    pub fn totals(&self) -> TldScanStats {
        let mut t = TldScanStats::default();
        for s in self.per_tld.values() {
            t.merge(s);
        }
        t
    }

    /// Total detections across all lanes.
    pub fn detection_count(&self) -> usize {
        self.router.detection_count()
    }

    /// Checks the accounting invariant on every TLD, naming the first
    /// TLD whose books don't close.
    pub fn verify_accounting(&self) -> Result<(), String> {
        for (tld, s) in &self.per_tld {
            if !s.is_accounted() {
                return Err(format!(
                    "accounting broken for .{tld}: parsed {} != accounted {} \
                     (routed {} + dedup {} + blacklisted {} + quarantined {})",
                    s.parsed(),
                    s.accounted(),
                    s.routed,
                    s.deduped(),
                    s.blacklisted,
                    s.quarantined
                ));
            }
        }
        Ok(())
    }
}

/// FNV-1a 64 over the owner's ACE bytes (already lowercase) — keys the
/// bounded dedup window.
#[inline]
fn owner_hash(owner: &DomainName) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in owner.as_ascii().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Word-at-a-time `\n` finder (SWAR: subtract-and-mask zero-byte
/// detection on 8-byte words) — the chunk splitter's inner loop.
#[inline]
fn find_newline(haystack: &[u8]) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let head_len = haystack.len() & !7;
    let mut i = 0;
    while i < head_len {
        let word = u64::from_le_bytes(haystack[i..i + 8].try_into().unwrap());
        let x = word ^ (LO * b'\n' as u64);
        let zero = x.wrapping_sub(LO) & !x & HI;
        if zero != 0 {
            return Some(i + (zero.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    haystack[head_len..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|p| head_len + p)
}

/// The streaming batch scanner. Feed it files (or any reader) with
/// [`scan_file`](Self::scan_file) / [`scan_reader`](Self::scan_reader),
/// then close the books with [`finish`](Self::finish).
pub struct ZoneScanner {
    router: SessionRouter,
    config: ScanConfig,
    stats: BTreeMap<String, TldScanStats>,
    quarantine: Vec<String>,
    window: VecDeque<u64>,
    window_set: HashSet<u64>,
    files: usize,
}

impl ZoneScanner {
    /// Wraps a configured router. The router's own batch capacity is
    /// respected; the scanner's `config.batch_capacity` governs the
    /// pre-stage buffer it pushes from.
    pub fn new(router: SessionRouter, config: ScanConfig) -> Self {
        ZoneScanner {
            router,
            config,
            stats: BTreeMap::new(),
            quarantine: Vec::new(),
            window: VecDeque::new(),
            window_set: HashSet::new(),
            files: 0,
        }
    }

    /// Scans one zone file; the TLD (fallback `$ORIGIN`) is `tld`.
    pub fn scan_file(&mut self, tld: &str, path: &Path) -> io::Result<()> {
        let file = std::fs::File::open(path)?;
        self.scan_reader(tld, file)
    }

    /// Scans one byte stream as `tld`'s zone. I/O errors abort this
    /// stream (already-scanned lines stay accounted); parse errors
    /// quarantine single lines and continue.
    pub fn scan_reader<R: Read + Send>(&mut self, tld: &str, reader: R) -> io::Result<()> {
        let started = Instant::now();
        let chunk_bytes = self.config.chunk_bytes.max(4096);
        let depth = self.config.channel_depth.max(2);

        // Full buffers flow one way, drained buffers flow back: the
        // reader recycles instead of allocating per chunk, and the
        // bounded channel is the backpressure that keeps at most
        // `depth` chunks in flight.
        let (full_tx, full_rx) = mpsc::sync_channel::<io::Result<Vec<u8>>>(depth);
        let (free_tx, free_rx) = mpsc::channel::<Vec<u8>>();
        for _ in 0..=depth {
            let _ = free_tx.send(Vec::with_capacity(chunk_bytes));
        }

        let mut parser = ZoneStreamParser::new(tld);
        let mut pending: Vec<DomainName> = Vec::new();
        let mut file_stats = TldScanStats::default();
        let mut carry: Vec<u8> = Vec::new();

        let result: io::Result<()> = std::thread::scope(|s| {
            s.spawn(move || {
                let mut reader = reader;
                'chunks: while let Ok(mut buf) = free_rx.recv() {
                    buf.resize(chunk_bytes, 0);
                    let n = loop {
                        match reader.read(&mut buf) {
                            Ok(n) => break n,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(e) => {
                                let _ = full_tx.send(Err(e));
                                break 'chunks;
                            }
                        }
                    };
                    if n == 0 {
                        break;
                    }
                    buf.truncate(n);
                    if full_tx.send(Ok(buf)).is_err() {
                        break;
                    }
                }
                // Dropping full_tx is the EOF signal.
            });

            for msg in full_rx.iter() {
                let buf = msg?;
                file_stats.bytes += buf.len() as u64;
                let mut rest: &[u8] = &buf;
                // Complete a line carried over from the previous chunk.
                if !carry.is_empty() {
                    match find_newline(rest) {
                        Some(nl) => {
                            carry.extend_from_slice(&rest[..nl]);
                            self.process_line(&mut parser, &mut pending, &mut file_stats, &carry);
                            carry.clear();
                            rest = &rest[nl + 1..];
                        }
                        None => {
                            carry.extend_from_slice(rest);
                            let _ = free_tx.send(buf);
                            continue;
                        }
                    }
                }
                while let Some(nl) = find_newline(rest) {
                    self.process_line(&mut parser, &mut pending, &mut file_stats, &rest[..nl]);
                    rest = &rest[nl + 1..];
                }
                carry.extend_from_slice(rest);
                let _ = free_tx.send(buf);
            }
            Ok(())
        });

        // A final unterminated line still counts.
        if result.is_ok() && !carry.is_empty() {
            let line = std::mem::take(&mut carry);
            self.process_line(&mut parser, &mut pending, &mut file_stats, &line);
        }
        if !pending.is_empty() {
            self.router.push_domains(&pending);
        }
        file_stats.elapsed_secs = started.elapsed().as_secs_f64();
        self.stats.entry(tld.to_string()).or_default().merge(&file_stats);
        self.files += 1;
        debug_assert!(
            self.stats[tld].is_accounted(),
            "scan accounting diverged for .{tld}"
        );
        result
    }

    /// One raw line through scan → dedup → blacklist → router batch.
    fn process_line(
        &mut self,
        parser: &mut ZoneStreamParser,
        pending: &mut Vec<DomainName>,
        stats: &mut TldScanStats,
        raw: &[u8],
    ) {
        stats.lines += 1;
        let raw = match raw.split_last() {
            Some((b'\r', head)) => head,
            _ => raw,
        };
        let text = match std::str::from_utf8(raw) {
            Ok(t) => t,
            Err(_) => {
                stats.quarantined += 1;
                self.sample_quarantine(parser.lines_seen() + 1, "invalid UTF-8");
                // Keep the parser's line numbering in step with the
                // file even though it never saw this line.
                let _ = parser.scan_line("");
                return;
            }
        };
        match parser.scan_line(text) {
            Ok(ZoneScan::Skip) => {}
            Err(e) => {
                stats.quarantined += 1;
                self.sample_quarantine(e.line, &e.message);
            }
            Ok(ZoneScan::Record { owner, new_owner }) => {
                stats.records += 1;
                if !new_owner {
                    stats.dedup_consecutive += 1;
                    return;
                }
                let hash = owner_hash(owner);
                if self.config.dedup_window > 0 {
                    if self.window_set.contains(&hash) {
                        stats.dedup_window += 1;
                        return;
                    }
                    if self.window.len() >= self.config.dedup_window {
                        if let Some(old) = self.window.pop_front() {
                            self.window_set.remove(&old);
                        }
                    }
                    self.window.push_back(hash);
                    self.window_set.insert(hash);
                }
                if self
                    .config
                    .blacklists
                    .iter()
                    .any(|bl| bl.contains_suffix(owner.as_ascii()))
                {
                    stats.blacklisted += 1;
                    return;
                }
                stats.routed += 1;
                pending.push(owner.clone());
                // Occupancy-adaptive flush mark, read per flush — the
                // PR 9 policy seam (never per domain).
                if pending.len() >= crate::sched::flush_capacity(self.config.batch_capacity) {
                    self.router.push_domains(pending.iter());
                    pending.clear();
                }
            }
        }
    }

    fn sample_quarantine(&mut self, line: usize, message: &str) {
        if self.quarantine.len() < self.config.quarantine_samples {
            self.quarantine.push(format!("line {line}: {message}"));
        }
    }

    /// Per-TLD accounting so far (books may still be open).
    pub fn stats(&self) -> &BTreeMap<String, TldScanStats> {
        &self.stats
    }

    /// Flushes every lane and closes the books.
    pub fn finish(mut self) -> ScanReport {
        self.router.flush();
        ScanReport {
            router: self.router.into_report(),
            per_tld: self.stats,
            quarantine_samples: self.quarantine,
            files: self.files,
        }
    }
}

/// Infers the TLD a zone file covers from its name: the stem up to the
/// first `.` (`com.zone`, `net.zone.txt` → `com`, `net`).
pub fn tld_from_path(path: &Path) -> Option<String> {
    let name = path.file_name()?.to_str()?;
    let stem = name.split('.').next()?;
    if stem.is_empty() {
        None
    } else {
        Some(stem.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetectionIndex;
    use sham_confusables::UcDatabase;
    use sham_glyph::SynthUnifont;
    use sham_simchar::{build, BuildConfig, HomoglyphDb, Repertoire};
    use std::sync::Arc;

    fn shared_index(refs: &[&str]) -> Arc<DetectionIndex> {
        let font = SynthUnifont::v12();
        let result = build(
            &font,
            &BuildConfig {
                repertoire: Repertoire::Blocks(vec!["Basic Latin", "Cyrillic"]),
                ..BuildConfig::default()
            },
        );
        DetectionIndex::shared(
            HomoglyphDb::new(result.db, UcDatabase::embedded()),
            refs.iter().map(|s| s.to_string()),
        )
    }

    #[test]
    fn find_newline_matches_naive_scan() {
        let cases: &[&[u8]] = &[
            b"",
            b"\n",
            b"no newline here at all, longer than a word",
            b"tail\n",
            b"\nhead",
            b"exactly8\nbytes",
            b"0123456789abcdef\nrest\n",
            b"short",
        ];
        for case in cases {
            assert_eq!(
                find_newline(case),
                case.iter().position(|&b| b == b'\n'),
                "on {case:?}"
            );
        }
        // Every offset within a couple of words.
        for pos in 0..24 {
            let mut v = vec![b'x'; 24];
            v[pos] = b'\n';
            assert_eq!(find_newline(&v), Some(pos));
        }
    }

    #[test]
    fn tld_inference_from_file_names() {
        assert_eq!(tld_from_path(Path::new("/tmp/com.zone")), Some("com".into()));
        assert_eq!(tld_from_path(Path::new("NET.zone.txt")), Some("net".into()));
        assert_eq!(tld_from_path(Path::new("dir/org")), Some("org".into()));
        assert_eq!(tld_from_path(Path::new(".hidden")), None);
    }

    #[test]
    fn scan_accounts_dedups_blacklists_and_detects() {
        let zone = "$ORIGIN com.\n\
                    $TTL 3600\n\
                    ; synthetic sample\n\
                    xn--ggle-55da IN NS ns1.parking.example.\n\
                    xn--ggle-55da IN NS ns2.parking.example.\n\
                    \tIN A 192.0.2.1\n\
                    benign IN A 192.0.2.2\n\
                    listed IN A 192.0.2.3\n\
                    sub.listed IN A 192.0.2.4\n\
                    broken IN A not-an-ip\n\
                    benign IN AAAA 2001:db8::1\n";
        let mut blacklist = Blacklist::new("test");
        blacklist.add("listed.com");
        let config = ScanConfig {
            dedup_window: 16,
            blacklists: vec![blacklist],
            chunk_bytes: 4096,
            ..ScanConfig::default()
        };
        let index = shared_index(&["google"]);
        let mut scanner = ZoneScanner::new(SessionRouter::new(index), config);
        scanner
            .scan_reader("com", zone.as_bytes())
            .expect("in-memory scan cannot fail I/O");
        let report = scanner.finish();
        report.verify_accounting().unwrap();

        let stats = &report.per_tld["com"];
        assert_eq!(stats.lines, 11);
        assert_eq!(stats.records, 7);
        assert_eq!(stats.quarantined, 1);
        // Same-owner NS run + continuation: 2 consecutive dedups; the
        // later `benign` repeat is caught by the window.
        assert_eq!(stats.dedup_consecutive, 2);
        assert_eq!(stats.dedup_window, 1);
        // `listed` and `sub.listed` both fall to the suffix match.
        assert_eq!(stats.blacklisted, 2);
        assert_eq!(stats.routed, 2);
        assert!(stats.is_accounted());
        // The lookalike owner is detected, the benign one is not.
        assert_eq!(report.detection_count(), 1);
    }

    #[test]
    fn chunk_size_does_not_change_the_outcome() {
        let mut zone = String::from("$ORIGIN net.\n");
        for i in 0..200 {
            zone.push_str(&format!("owner{i} IN A 192.0.2.{}\n", i % 250));
            zone.push_str(&format!("owner{i} IN NS ns.owner{i}.net.\n"));
        }
        // No trailing newline on the last line.
        zone.push_str("lastone IN A 192.0.2.9");

        let index = shared_index(&["google"]);
        let mut baseline = None;
        for chunk in [4096, 4099, 1 << 16] {
            let config = ScanConfig { chunk_bytes: chunk, ..ScanConfig::default() };
            let mut scanner = ZoneScanner::new(SessionRouter::new(Arc::clone(&index)), config);
            scanner.scan_reader("net", zone.as_bytes()).unwrap();
            let report = scanner.finish();
            report.verify_accounting().unwrap();
            let stats = report.per_tld["net"];
            assert_eq!(stats.routed, 201);
            assert_eq!(stats.dedup_consecutive, 200);
            match &baseline {
                None => baseline = Some(report.router.clone()),
                Some(b) => assert_eq!(b, &report.router, "chunk {chunk} diverged"),
            }
        }
    }
}
