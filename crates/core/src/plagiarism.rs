//! Homoglyph-obfuscated plagiarism detection — the paper's §9 claim that
//! "SimChar could be used for other promising security applications such
//! as detecting obfuscated plagiarism, which exploits Unicode
//! homoglyphs."
//!
//! The obfuscation trick: replace letters of copied text with homoglyphs
//! (Cyrillic `о`, Greek `ο`, …) so string matching and n-gram similarity
//! miss the copy while the text still reads identically. The detector
//! normalises text through the homoglyph database and reports both the
//! normalised form (for downstream similarity tools) and the per-word
//! obfuscation evidence.

use crate::revert::revert_char;
use serde::{Deserialize, Serialize};
use sham_simchar::HomoglyphDb;

/// One obfuscated word found in a text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObfuscatedWord {
    /// Word index in whitespace order.
    pub index: usize,
    /// The word as written.
    pub written: String,
    /// The de-obfuscated (normalised) form.
    pub normalised: String,
    /// Substituted characters: `(offset in word, written, normalised)`.
    pub substitutions: Vec<(usize, char, char)>,
}

/// A scan report over a text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlagiarismScan {
    /// Total words inspected.
    pub words: usize,
    /// Words containing at least one homoglyph substitution.
    pub obfuscated: Vec<ObfuscatedWord>,
    /// The whole text with every homoglyph mapped back to LDH.
    pub normalised_text: String,
}

impl PlagiarismScan {
    /// Fraction of words carrying obfuscation.
    pub fn obfuscation_rate(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.obfuscated.len() as f64 / self.words as f64
        }
    }
}

/// Normalises a single character: ASCII passes through (lowercased for
/// letters), homoglyphs map to their LDH twin, anything else stays.
fn normalise_char(db: &HomoglyphDb, c: char) -> (char, bool) {
    if c.is_ascii() {
        return (c, false);
    }
    match revert_char(db, c) {
        Some(ldh) => (ldh, true),
        None => (c, false),
    }
}

/// Scans `text` for homoglyph-obfuscated words.
pub fn scan_text(db: &HomoglyphDb, text: &str) -> PlagiarismScan {
    let mut obfuscated = Vec::new();
    let mut normalised_text = String::with_capacity(text.len());
    let mut words = 0usize;

    for (index, word) in text.split_whitespace().enumerate() {
        words += 1;
        let mut normalised = String::with_capacity(word.len());
        let mut substitutions = Vec::new();
        for (offset, c) in word.chars().enumerate() {
            let (n, was_homoglyph) = normalise_char(db, c);
            if was_homoglyph {
                substitutions.push((offset, c, n));
            }
            normalised.push(n);
        }
        if !substitutions.is_empty() {
            obfuscated.push(ObfuscatedWord {
                index,
                written: word.to_string(),
                normalised: normalised.clone(),
                substitutions,
            });
        }
        if index > 0 {
            normalised_text.push(' ');
        }
        normalised_text.push_str(&normalised);
    }

    PlagiarismScan { words, obfuscated, normalised_text }
}

/// Compares a suspect text against a source: the similarity of the raw
/// strings versus the similarity after homoglyph normalisation. A large
/// gap is the signature of homoglyph obfuscation. Similarity is Jaccard
/// over word sets (a stand-in for whatever similarity engine sits
/// downstream).
pub fn similarity_gap(db: &HomoglyphDb, source: &str, suspect: &str) -> (f64, f64) {
    let raw = jaccard(source, suspect);
    let normalised = jaccard(
        &scan_text(db, source).normalised_text,
        &scan_text(db, suspect).normalised_text,
    );
    (raw, normalised)
}

fn jaccard(a: &str, b: &str) -> f64 {
    let sa: std::collections::HashSet<&str> = a.split_whitespace().collect();
    let sb: std::collections::HashSet<&str> = b.split_whitespace().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_confusables::UcDatabase;
    use sham_glyph::SynthUnifont;
    use sham_simchar::{build, BuildConfig, Repertoire};
    use std::sync::OnceLock;

    fn db() -> &'static HomoglyphDb {
        static DB: OnceLock<HomoglyphDb> = OnceLock::new();
        DB.get_or_init(|| {
            let font = SynthUnifont::v12();
            let result = build(
                &font,
                &BuildConfig {
                    repertoire: Repertoire::Blocks(vec![
                        "Basic Latin",
                        "Latin-1 Supplement",
                        "Cyrillic",
                        "Greek and Coptic",
                    ]),
                    ..BuildConfig::default()
                },
            );
            HomoglyphDb::new(result.db, UcDatabase::embedded())
        })
    }

    #[test]
    fn detects_obfuscated_words() {
        // "the quick brоwn fox" with a Cyrillic о.
        let scan = scan_text(db(), "the quick brоwn fox");
        assert_eq!(scan.words, 4);
        assert_eq!(scan.obfuscated.len(), 1);
        let w = &scan.obfuscated[0];
        assert_eq!(w.written, "brоwn");
        assert_eq!(w.normalised, "brown");
        assert_eq!(w.substitutions.len(), 1);
        assert_eq!(w.substitutions[0].0, 2);
        assert_eq!(scan.normalised_text, "the quick brown fox");
    }

    #[test]
    fn clean_text_reports_nothing() {
        let scan = scan_text(db(), "perfectly ordinary sentence");
        assert!(scan.obfuscated.is_empty());
        assert_eq!(scan.obfuscation_rate(), 0.0);
        assert_eq!(scan.normalised_text, "perfectly ordinary sentence");
    }

    #[test]
    fn genuine_accents_are_flagged_but_preserved_in_evidence() {
        // é is a homoglyph of e in SimChar; normalisation maps it, and
        // the evidence keeps the original for human review.
        let scan = scan_text(db(), "café culture");
        assert_eq!(scan.obfuscated.len(), 1);
        assert_eq!(scan.obfuscated[0].written, "café");
        assert_eq!(scan.obfuscated[0].normalised, "cafe");
    }

    #[test]
    fn similarity_gap_exposes_obfuscated_copy() {
        let source = "rust gives memory safety without garbage collection";
        // The plagiarist swaps homoglyphs into half the words.
        let suspect = "rust givеs mеmory safеty without garbagе collеction";
        let (raw, normalised) = similarity_gap(db(), source, suspect);
        assert!(raw < 0.5, "raw similarity {raw}");
        assert!(normalised > 0.99, "normalised similarity {normalised}");
    }

    #[test]
    fn unrelated_texts_stay_dissimilar_after_normalisation() {
        let (raw, normalised) =
            similarity_gap(db(), "completely different words", "about other topics entirely");
        assert_eq!(raw, 0.0);
        assert_eq!(normalised, 0.0);
    }
}
