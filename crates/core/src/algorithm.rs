//! Algorithm 1 — IDN homograph detection.
//!
//! For every reference domain name `r` and every registered IDN `x` of the
//! same character length (both with the TLD removed), the characters are
//! compared position by position: equal characters pass; unequal
//! characters pass only if the homoglyph database lists them as a pair;
//! anything else rejects `x` for this reference (paper §3.1, Fig. 2).
//!
//! Three execution strategies are provided; `CanonicalClosure` is the
//! default, the other two remain as ablation baselines for the
//! `detection_variants` bench:
//!
//! * [`Indexing::Naive`] — compare every (reference, IDN) combination.
//! * [`Indexing::LengthBucket`] — the paper's optimisation: only compare
//!   strings of equal length.
//! * [`Indexing::CanonicalClosure`] — map every character to the
//!   representative of its **connected component** in the homoglyph
//!   pair graph (union-find over SimChar ∪ UC, precomputed in
//!   [`HomoglyphDb`]'s flat index) and look references up by the hash
//!   of the representative string.
//!
//! # Why the closure index is exact
//!
//! Under Algorithm 1, an IDN `x` matches a reference `r` only if at
//! every position the characters are equal or a listed homoglyph pair.
//! Either way the two characters lie in the same connected component of
//! the pair graph, so `rep(x[i]) == rep(r[i])` at every position and
//! the representative strings — hence their hashes — are equal. Probing
//! the hash index with `rep(x)` therefore returns a candidate set that
//! contains **every** true match (no false negatives), for *arbitrary*
//! pair sets: transitivity is never assumed, which matters because real
//! confusable data is famously non-transitive (a–b and b–c listed
//! without a–c). Hash collisions or component over-approximation can
//! only add candidates, and every candidate is re-verified with the
//! exact pairwise test — so no false positives either. A
//! neighbourhood-based canonical map (the previous `CanonicalHash`
//! strategy) lacks the first property: on a non-transitive chain the
//! two ends of a listed pair can pick different representatives and a
//! true match is skipped before verification.
//!
//! # Execution
//!
//! All index structures (length buckets, closure-hash index) are built
//! eagerly at construction, so [`Detector::detect`] takes `&self` and
//! shards the IDN corpus across the worker pool (the vendored `rayon`
//! executor). Each shard reuses two scratch buffers — the interned
//! `u32` stem and the substitution list — so the rejecting path of the
//! inner test performs no per-candidate heap allocation; `String`s are
//! only materialised for actual detections. Shards are merged in corpus
//! order, so results are identical to a sequential run at every thread
//! count. Per-character work is hash-free: component representatives
//! come from the flat interner (two array reads), and the pairwise
//! re-verification probes the CSR adjacency (one binary search).

use crate::detection::{CharSubstitution, Detection};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use sham_simchar::{DbSelection, HomoglyphDb};
use std::collections::HashMap;

/// Candidate-generation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Indexing {
    /// All pairs.
    Naive,
    /// Bucket by string length (the paper's approach).
    LengthBucket,
    /// Hash by union-find component representatives — exact for
    /// arbitrary (including non-transitive) pair sets, and the default.
    CanonicalClosure,
}

/// The homograph detector: a homoglyph database plus a reference list,
/// with every index built eagerly so detection itself is read-only.
pub struct Detector {
    db: HomoglyphDb,
    /// Reference stems interned to code points once at construction.
    references: Vec<Vec<u32>>,
    reference_names: Vec<String>,
    /// Closure-hash → reference indices (for `CanonicalClosure`).
    closure_index: HashMap<u64, Vec<usize>>,
    /// Stem length → reference indices (for `LengthBucket`).
    by_len: HashMap<usize, Vec<usize>>,
}

impl Detector {
    /// Builds a detector for `references` (TLD-stripped ASCII stems,
    /// e.g. `"google"`).
    pub fn new(db: HomoglyphDb, references: impl IntoIterator<Item = String>) -> Self {
        let reference_names: Vec<String> = references.into_iter().collect();
        let references: Vec<Vec<u32>> = reference_names
            .iter()
            .map(|r| r.chars().map(|c| c as u32).collect())
            .collect();
        let mut closure_index: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut by_len: HashMap<usize, Vec<usize>> = HashMap::new();
        for (idx, r) in references.iter().enumerate() {
            closure_index
                .entry(closure_hash(&db, r))
                .or_default()
                .push(idx);
            by_len.entry(r.len()).or_default().push(idx);
        }
        Detector { db, references, reference_names, closure_index, by_len }
    }

    /// The underlying homoglyph database.
    pub fn db(&self) -> &HomoglyphDb {
        &self.db
    }

    /// Reference stems.
    pub fn references(&self) -> &[String] {
        &self.reference_names
    }

    /// The inner character-by-character test of Algorithm 1, in its
    /// allocation-conscious form: fills `subs` (cleared first) and
    /// returns whether `idn` is a homograph of `reference`. The
    /// rejecting path touches only the reused buffer.
    fn matches_into(
        &self,
        reference: &[u32],
        idn: &[u32],
        selection: DbSelection,
        subs: &mut Vec<CharSubstitution>,
    ) -> bool {
        subs.clear();
        if reference.len() != idn.len() {
            return false;
        }
        for (pos, (&rc, &xc)) in reference.iter().zip(idn.iter()).enumerate() {
            if rc == xc {
                continue;
            }
            // One combined probe: membership under `selection` plus the
            // full-union attribution the Detection record carries.
            let Some(source) = self.db.pair_source_with(rc, xc, selection) else {
                return false;
            };
            subs.push(CharSubstitution {
                position: pos,
                original: char::from_u32(rc).unwrap_or('\u{FFFD}'),
                homoglyph: char::from_u32(xc).unwrap_or('\u{FFFD}'),
                source: Some(source),
            });
        }
        // An IDN equal to the reference (no substitutions) is the
        // reference itself, not a homograph.
        !subs.is_empty()
    }

    /// The inner test of Algorithm 1. Returns the substitutions when
    /// `idn` is a homograph of `reference`. Convenience wrapper around
    /// the buffer-reusing form the detection loop uses.
    pub fn matches(
        &self,
        reference: &[char],
        idn: &[char],
        selection: DbSelection,
    ) -> Option<Vec<CharSubstitution>> {
        let r: Vec<u32> = reference.iter().map(|&c| c as u32).collect();
        let x: Vec<u32> = idn.iter().map(|&c| c as u32).collect();
        let mut subs = Vec::new();
        self.matches_into(&r, &x, selection, &mut subs).then_some(subs)
    }

    /// Runs detection over `idns` (Unicode stems, TLD removed) with the
    /// given database selection and indexing strategy. The corpus is
    /// sharded across the worker pool; output order and content are
    /// identical to a sequential run.
    pub fn detect(
        &self,
        idns: &[(String, String)], // (unicode stem, full ACE name)
        selection: DbSelection,
        indexing: Indexing,
    ) -> Vec<Detection> {
        if idns.is_empty() {
            return Vec::new();
        }
        let threads = rayon::current_num_threads().max(1);
        // Shards of ≥ 64 IDNs amortise the per-shard scratch buffers;
        // ~4 shards per worker keeps the pool load-balanced.
        let shard_len = idns.len().div_ceil(threads * 4).max(64);
        let shards: Vec<&[(String, String)]> = idns.chunks(shard_len).collect();
        let outs: Vec<Vec<Detection>> = shards
            .par_iter()
            .map(|shard| self.detect_shard(shard, selection, indexing))
            .collect();
        let mut out = Vec::with_capacity(outs.iter().map(Vec::len).sum());
        for v in outs {
            out.extend(v);
        }
        out
    }

    /// Sequential detection over one shard, with shard-local scratch.
    fn detect_shard(
        &self,
        idns: &[(String, String)],
        selection: DbSelection,
        indexing: Indexing,
    ) -> Vec<Detection> {
        let mut out = Vec::new();
        let mut stem = Vec::new();
        let mut subs = Vec::new();
        for (unicode, ace) in idns {
            stem.clear();
            stem.extend(unicode.chars().map(|c| c as u32));
            match indexing {
                Indexing::Naive => {
                    for (ref_idx, r) in self.references.iter().enumerate() {
                        if self.matches_into(r, &stem, selection, &mut subs) {
                            self.emit(ref_idx, unicode, ace, &subs, &mut out);
                        }
                    }
                }
                Indexing::LengthBucket => {
                    let Some(bucket) = self.by_len.get(&stem.len()) else { continue };
                    for &ref_idx in bucket {
                        let r = &self.references[ref_idx];
                        if self.matches_into(r, &stem, selection, &mut subs) {
                            self.emit(ref_idx, unicode, ace, &subs, &mut out);
                        }
                    }
                }
                Indexing::CanonicalClosure => {
                    let h = closure_hash(&self.db, &stem);
                    let Some(candidates) = self.closure_index.get(&h) else { continue };
                    for &ref_idx in candidates {
                        let r = &self.references[ref_idx];
                        if self.matches_into(r, &stem, selection, &mut subs) {
                            self.emit(ref_idx, unicode, ace, &subs, &mut out);
                        }
                    }
                }
            }
        }
        out
    }

    /// Materialises a [`Detection`] — the only place the hot loop clones
    /// `String`s, reached exclusively after a confirmed match.
    fn emit(
        &self,
        ref_idx: usize,
        stem: &str,
        ace: &str,
        subs: &[CharSubstitution],
        out: &mut Vec<Detection>,
    ) {
        out.push(Detection {
            idn_unicode: stem.to_string(),
            idn_ascii: ace.to_string(),
            reference: self.reference_names[ref_idx].clone(),
            substitutions: subs.to_vec(),
        });
    }
}

/// FNV-1a over the union-find component representatives of a stem. Two
/// stems that match under Algorithm 1 have pairwise same-component
/// characters, so they hash identically — see the module docs for the
/// soundness argument. Each representative is two array reads in the
/// flat interner; no per-character hashing.
fn closure_hash(db: &HomoglyphDb, stem: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &cp in stem {
        h ^= u64::from(db.rep_of(cp));
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_confusables::UcDatabase;
    use sham_glyph::SynthUnifont;
    use sham_simchar::{build, BuildConfig, Repertoire};

    fn detector(refs: &[&str]) -> Detector {
        let font = SynthUnifont::v12();
        let result = build(
            &font,
            &BuildConfig {
                repertoire: Repertoire::Blocks(vec![
                    "Basic Latin",
                    "Latin-1 Supplement",
                    "Cyrillic",
                    "Greek and Coptic",
                    "Armenian",
                ]),
                ..BuildConfig::default()
            },
        );
        let db = HomoglyphDb::new(result.db, UcDatabase::embedded());
        Detector::new(db, refs.iter().map(|s| s.to_string()))
    }

    fn idn(stem: &str) -> (String, String) {
        let ace = sham_punycode::ace::to_ascii(stem).unwrap();
        (stem.to_string(), format!("{ace}.com"))
    }

    #[test]
    fn paper_figure2_example() {
        // gоогle with Armenian օ (U+0585): the paper's Fig. 2 left side.
        let d = detector(&["google", "facebook"]);
        let idns = vec![idn("gօօgle")];
        let hits = d.detect(&idns, DbSelection::Union, Indexing::LengthBucket);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].reference, "google");
        assert_eq!(hits[0].substitutions.len(), 2);
        assert_eq!(hits[0].substitutions[0].original, 'o');
        assert_eq!(hits[0].substitutions[0].homoglyph, 'օ');
    }

    #[test]
    fn figure2_negative_example() {
        // "gocaié" (right side of Fig. 2) is not a homograph of google.
        let d = detector(&["google"]);
        let hits = d.detect(&[idn("gocaié")], DbSelection::Union, Indexing::LengthBucket);
        assert!(hits.is_empty());
    }

    #[test]
    fn length_mismatch_is_skipped() {
        let d = detector(&["google"]);
        let hits = d.detect(&[idn("gооgl")], DbSelection::Union, Indexing::LengthBucket);
        assert!(hits.is_empty());
    }

    #[test]
    fn identical_string_is_not_a_homograph() {
        let d = detector(&["google"]);
        let hits = d.detect(
            &[("google".to_string(), "google.com".to_string())],
            DbSelection::Union,
            Indexing::LengthBucket,
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn all_indexing_strategies_agree() {
        let d = detector(&["google", "amazon", "facebook", "apple"]);
        let idns = vec![
            idn("gооgle"),  // Cyrillic o's
            idn("аmazon"),  // Cyrillic a
            idn("fаcebook"),
            idn("аpple"),
            idn("banana"),  // no reference
            idn("gοοgle"),  // Greek omicrons
        ];
        let naive = d.detect(&idns, DbSelection::Union, Indexing::Naive);
        let bucket = d.detect(&idns, DbSelection::Union, Indexing::LengthBucket);
        let canon = d.detect(&idns, DbSelection::Union, Indexing::CanonicalClosure);
        let key = |v: &[Detection]| {
            let mut k: Vec<(String, String)> = v
                .iter()
                .map(|h| (h.idn_unicode.clone(), h.reference.clone()))
                .collect();
            k.sort();
            k
        };
        assert_eq!(key(&naive), key(&bucket));
        assert_eq!(key(&naive), key(&canon));
        assert_eq!(naive.len(), 5);
    }

    #[test]
    fn db_selection_changes_detections() {
        // é is a SimChar-only homoglyph of e (UC does not list accents).
        let d = detector(&["facebook"]);
        let idns = vec![idn("facébook")];
        assert_eq!(d.detect(&idns, DbSelection::Union, Indexing::LengthBucket).len(), 1);
        assert_eq!(d.detect(&idns, DbSelection::SimCharOnly, Indexing::LengthBucket).len(), 1);
        assert!(d.detect(&idns, DbSelection::UcOnly, Indexing::LengthBucket).is_empty());
    }

    #[test]
    fn selection_gates_membership_but_source_keeps_union_attribution() {
        // Cyrillic о/o is attested by both databases: selecting only one
        // component must still record the pair as `Both` (Fig. 12's
        // warning UI names every attesting source).
        use sham_simchar::PairSource;
        let d = detector(&["google"]);
        for selection in [DbSelection::UcOnly, DbSelection::SimCharOnly] {
            let hits = d.detect(&[idn("gооgle")], selection, Indexing::LengthBucket);
            assert_eq!(hits.len(), 1);
            assert!(hits[0]
                .substitutions
                .iter()
                .all(|s| s.source == Some(PairSource::Both)));
        }
    }

    #[test]
    fn multiple_references_can_match_one_idn() {
        let d = detector(&["ab", "ab"]);
        // Both (identical) references match; detection reports both.
        let idns = vec![idn("аb")]; // Cyrillic а
        let hits = d.detect(&idns, DbSelection::Union, Indexing::Naive);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn substitution_positions_are_recorded() {
        let d = detector(&["paypal"]);
        let hits = d.detect(&[idn("pаypаl")], DbSelection::Union, Indexing::LengthBucket);
        assert_eq!(hits.len(), 1);
        let positions: Vec<usize> =
            hits[0].substitutions.iter().map(|s| s.position).collect();
        assert_eq!(positions, vec![1, 4]);
    }

    #[test]
    fn matches_wrapper_agrees_with_detect() {
        let d = detector(&["google"]);
        let reference: Vec<char> = "google".chars().collect();
        let lookalike: Vec<char> = "gооgle".chars().collect();
        let subs = d
            .matches(&reference, &lookalike, DbSelection::Union)
            .expect("lookalike must match");
        assert_eq!(subs.len(), 2);
        assert!(d.matches(&reference, &reference, DbSelection::Union).is_none());
    }
}
