//! Algorithm 1 — IDN homograph detection.
//!
//! For every reference domain name `r` and every registered IDN `x` of the
//! same character length (both with the TLD removed), the characters are
//! compared position by position: equal characters pass; unequal
//! characters pass only if the homoglyph database lists them as a pair;
//! anything else rejects `x` for this reference (paper §3.1, Fig. 2).
//!
//! Three execution strategies are provided; `CanonicalClosure` is the
//! default, the other two remain as ablation baselines for the
//! `detection_variants` bench:
//!
//! * [`Indexing::Naive`] — compare every (reference, IDN) combination.
//! * [`Indexing::LengthBucket`] — the paper's optimisation: only compare
//!   strings of equal length.
//! * [`Indexing::CanonicalClosure`] — map every character to the
//!   representative of its **connected component** in the homoglyph
//!   pair graph (union-find over SimChar ∪ UC, precomputed in
//!   [`HomoglyphDb`]'s flat index) and look references up by the hash
//!   of the representative string.
//!
//! # Why the closure index is exact
//!
//! Under Algorithm 1, an IDN `x` matches a reference `r` only if at
//! every position the characters are equal or a listed homoglyph pair.
//! Either way the two characters lie in the same connected component of
//! the pair graph, so `rep(x[i]) == rep(r[i])` at every position and
//! the representative strings — hence their hashes — are equal. Probing
//! the hash index with `rep(x)` therefore returns a candidate set that
//! contains **every** true match (no false negatives), for *arbitrary*
//! pair sets: transitivity is never assumed, which matters because real
//! confusable data is famously non-transitive (a–b and b–c listed
//! without a–c). Hash collisions or component over-approximation can
//! only add candidates, and every candidate is re-verified with the
//! exact pairwise test — so no false positives either. A
//! neighbourhood-based canonical map (the previous `CanonicalHash`
//! strategy) lacks the first property: on a non-transitive chain the
//! two ends of a listed pair can pick different representatives and a
//! true match is skipped before verification.
//!
//! # Execution
//!
//! All index structures live in the shared immutable
//! [`DetectionIndex`] (see [`crate::index`]), so [`Detector`] is a
//! cheap handle: `detect` takes `&self` and shards the IDN corpus
//! across the worker pool (the vendored `rayon` executor). Each shard
//! reuses two scratch buffers — the interned `u32` stem and the
//! substitution list — so the rejecting path of the inner test performs
//! no per-candidate heap allocation; `String`s are only materialised
//! for actual detections, and even then the reference name is an `Arc`
//! handle copy, not a clone. Shards are merged in corpus order, so
//! results are identical to a sequential run at every thread count.
//! Batches at or below one shard run inline on the calling thread with
//! caller-provided scratch — the path [`DetectorSession`] takes for
//! every streamed batch, so streaming pays no spawn/merge overhead.
//! Per-character work is hash-free: component representatives come from
//! the flat interner (two array reads), and the pairwise
//! re-verification probes the CSR adjacency (one binary search).
//!
//! [`DetectorSession`]: crate::DetectorSession

use crate::detection::{CharSubstitution, Detection, RefName};
use crate::index::{closure_hash, DetectionIndex, ReferenceSet};
use crate::sched::ExecStats;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use sham_simchar::{DbSelection, HomoglyphDb};
use std::sync::Arc;

/// Candidate-generation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Indexing {
    /// All pairs.
    Naive,
    /// Bucket by string length (the paper's approach).
    LengthBucket,
    /// Hash by union-find component representatives — exact for
    /// arbitrary (including non-transitive) pair sets, and the default.
    CanonicalClosure,
}

/// The homograph detector: a handle on a shared [`DetectionIndex`]
/// (homoglyph database + fully-indexed reference list). Detection is
/// read-only, so one index serves any number of detectors, frameworks
/// and sessions concurrently.
#[derive(Clone)]
pub struct Detector {
    index: Arc<DetectionIndex>,
}

impl Detector {
    /// Builds a detector for `references` (TLD-stripped ASCII stems,
    /// e.g. `"google"`), constructing a private [`DetectionIndex`].
    pub fn new(db: HomoglyphDb, references: impl IntoIterator<Item = String>) -> Self {
        Detector { index: DetectionIndex::shared(db, references) }
    }

    /// Wraps an existing shared index — the multi-pipeline form: build
    /// the index once, hand clones of the `Arc` to every detector.
    pub fn from_index(index: Arc<DetectionIndex>) -> Self {
        Detector { index }
    }

    /// The shared index this detector reads.
    pub fn index(&self) -> &Arc<DetectionIndex> {
        &self.index
    }

    /// The underlying homoglyph database.
    pub fn db(&self) -> &HomoglyphDb {
        self.index.db()
    }

    /// Number of references in the index.
    pub fn reference_count(&self) -> usize {
        self.index.reference_count()
    }

    /// Reference `idx`'s name handle (insertion order).
    pub fn reference(&self, idx: usize) -> RefName {
        self.index.reference(idx)
    }

    /// The inner test of Algorithm 1. Returns the substitutions when
    /// `idn` is a homograph of `reference`. Convenience wrapper around
    /// the buffer-reusing form the detection loop uses.
    pub fn matches(
        &self,
        reference: &[char],
        idn: &[char],
        selection: DbSelection,
    ) -> Option<Vec<CharSubstitution>> {
        let r: Vec<u32> = reference.iter().map(|&c| c as u32).collect();
        let x: Vec<u32> = idn.iter().map(|&c| c as u32).collect();
        let mut subs = Vec::new();
        matches_into(self.db(), &r, &x, selection, &mut subs).then_some(subs)
    }

    /// Runs detection over `idns` (Unicode stems, TLD removed) with the
    /// given database selection and indexing strategy. The corpus is
    /// sharded across the worker pool; output order and content are
    /// identical to a sequential run.
    pub fn detect(
        &self,
        idns: &[(String, String)], // (unicode stem, full ACE name)
        selection: DbSelection,
        indexing: Indexing,
    ) -> Vec<Detection> {
        let mut out = Vec::new();
        let mut scratch = DetectScratch::default();
        let mut exec = ExecStats::default();
        detect_append(
            self.db(),
            self.index.refs(),
            idns,
            selection,
            indexing,
            &mut scratch,
            &mut out,
            &mut exec,
        );
        out
    }
}

/// Reused per-shard working memory: the interned `u32` stem of the IDN
/// under test and the substitution list of the inner loop. Sessions
/// hold one across their whole lifetime, so steady-state streaming
/// allocates nothing on the rejecting path.
#[derive(Debug, Default)]
pub(crate) struct DetectScratch {
    stem: Vec<u32>,
    subs: Vec<CharSubstitution>,
}

/// The inner character-by-character test of Algorithm 1, in its
/// allocation-conscious form: fills `subs` (cleared first) and returns
/// whether `idn` is a homograph of `reference`. The rejecting path
/// touches only the reused buffer.
fn matches_into(
    db: &HomoglyphDb,
    reference: &[u32],
    idn: &[u32],
    selection: DbSelection,
    subs: &mut Vec<CharSubstitution>,
) -> bool {
    subs.clear();
    if reference.len() != idn.len() {
        return false;
    }
    for (pos, (&rc, &xc)) in reference.iter().zip(idn.iter()).enumerate() {
        if rc == xc {
            continue;
        }
        // One combined probe: membership under `selection` plus the
        // full-union attribution the Detection record carries.
        let Some(source) = db.pair_source_with(rc, xc, selection) else {
            return false;
        };
        subs.push(CharSubstitution {
            position: pos,
            original: char::from_u32(rc).unwrap_or('\u{FFFD}'),
            homoglyph: char::from_u32(xc).unwrap_or('\u{FFFD}'),
            source: Some(source),
        });
    }
    // An IDN equal to the reference (no substitutions) is the
    // reference itself, not a homograph.
    !subs.is_empty()
}

/// The shared detection executor: scores `idns` against `refs` and
/// appends detections (in corpus order) to `out`. Batch `detect`,
/// `Framework::run` and the streaming session all funnel through here,
/// so the two ingestion modes cannot diverge. A corpus larger than one
/// shard fans out across the worker pool; smaller batches run inline
/// with the caller's scratch. The shard size adapts to the observed
/// pool occupancy (see [`crate::sched`]) — partitioning only, the
/// output is bit-identical at every occupancy and thread count — and
/// the decision taken is recorded into `exec`.
#[allow(clippy::too_many_arguments)] // internal funnel: every caller threads the same context
pub(crate) fn detect_append(
    db: &HomoglyphDb,
    refs: &ReferenceSet,
    idns: &[(String, String)],
    selection: DbSelection,
    indexing: Indexing,
    scratch: &mut DetectScratch,
    out: &mut Vec<Detection>,
    exec: &mut ExecStats,
) {
    if idns.is_empty() {
        return;
    }
    let threads = rayon::current_num_threads().max(1);
    let shard_len = crate::sched::shard_len_for(idns.len(), threads);
    if idns.len() <= shard_len {
        exec.record(1, idns.len(), 1);
        detect_shard(db, refs, idns, selection, indexing, scratch, out);
        return;
    }
    let shard_count = idns.len().div_ceil(shard_len);
    exec.record(shard_count, shard_len, threads.min(shard_count));
    // Shard by index range straight over the input slice — no per-call
    // `Vec<&[_]>` of subslices; only the per-shard outputs allocate.
    let outs: Vec<Vec<Detection>> = idns
        .par_chunks(shard_len)
        .map(|shard| {
            let mut scratch = DetectScratch::default();
            let mut hits = Vec::new();
            detect_shard(db, refs, shard, selection, indexing, &mut scratch, &mut hits);
            hits
        })
        .collect();
    out.reserve(outs.iter().map(Vec::len).sum());
    for v in outs {
        out.extend(v);
    }
}

/// Sequential detection over one shard with caller-provided scratch.
fn detect_shard(
    db: &HomoglyphDb,
    refs: &ReferenceSet,
    idns: &[(String, String)],
    selection: DbSelection,
    indexing: Indexing,
    scratch: &mut DetectScratch,
    out: &mut Vec<Detection>,
) {
    let DetectScratch { stem, subs } = scratch;
    let try_candidate = |ref_idx: u32,
                             stem: &[u32],
                             subs: &mut Vec<CharSubstitution>,
                             unicode: &str,
                             ace: &str,
                             out: &mut Vec<Detection>| {
        let r = refs.stem(ref_idx);
        if matches_into(db, r, stem, selection, subs) {
            out.push(Detection {
                idn_unicode: unicode.to_string(),
                idn_ascii: ace.to_string(),
                reference: refs.name(ref_idx),
                substitutions: subs.clone(),
            });
        }
    };
    for (unicode, ace) in idns {
        stem.clear();
        stem.extend(unicode.chars().map(|c| c as u32));
        match indexing {
            Indexing::Naive => {
                for ref_idx in refs.all_indices() {
                    try_candidate(ref_idx, stem, subs, unicode, ace, out);
                }
            }
            Indexing::LengthBucket => {
                for ref_idx in refs.len_candidates(stem.len()) {
                    try_candidate(ref_idx, stem, subs, unicode, ace, out);
                }
            }
            Indexing::CanonicalClosure => {
                let h = closure_hash(db, stem);
                for ref_idx in refs.closure_candidates(h) {
                    try_candidate(ref_idx, stem, subs, unicode, ace, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_confusables::UcDatabase;
    use sham_glyph::SynthUnifont;
    use sham_simchar::{build, BuildConfig, Repertoire};

    fn detector(refs: &[&str]) -> Detector {
        let font = SynthUnifont::v12();
        let result = build(
            &font,
            &BuildConfig {
                repertoire: Repertoire::Blocks(vec![
                    "Basic Latin",
                    "Latin-1 Supplement",
                    "Cyrillic",
                    "Greek and Coptic",
                    "Armenian",
                ]),
                ..BuildConfig::default()
            },
        );
        let db = HomoglyphDb::new(result.db, UcDatabase::embedded());
        Detector::new(db, refs.iter().map(|s| s.to_string()))
    }

    fn idn(stem: &str) -> (String, String) {
        let ace = sham_punycode::ace::to_ascii(stem).unwrap();
        (stem.to_string(), format!("{ace}.com"))
    }

    #[test]
    fn paper_figure2_example() {
        // gоогle with Armenian օ (U+0585): the paper's Fig. 2 left side.
        let d = detector(&["google", "facebook"]);
        let idns = vec![idn("gօօgle")];
        let hits = d.detect(&idns, DbSelection::Union, Indexing::LengthBucket);
        assert_eq!(hits.len(), 1);
        assert_eq!(&*hits[0].reference, "google");
        assert_eq!(hits[0].substitutions.len(), 2);
        assert_eq!(hits[0].substitutions[0].original, 'o');
        assert_eq!(hits[0].substitutions[0].homoglyph, 'օ');
    }

    #[test]
    fn figure2_negative_example() {
        // "gocaié" (right side of Fig. 2) is not a homograph of google.
        let d = detector(&["google"]);
        let hits = d.detect(&[idn("gocaié")], DbSelection::Union, Indexing::LengthBucket);
        assert!(hits.is_empty());
    }

    #[test]
    fn length_mismatch_is_skipped() {
        let d = detector(&["google"]);
        let hits = d.detect(&[idn("gооgl")], DbSelection::Union, Indexing::LengthBucket);
        assert!(hits.is_empty());
    }

    #[test]
    fn identical_string_is_not_a_homograph() {
        let d = detector(&["google"]);
        let hits = d.detect(
            &[("google".to_string(), "google.com".to_string())],
            DbSelection::Union,
            Indexing::LengthBucket,
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn all_indexing_strategies_agree() {
        let d = detector(&["google", "amazon", "facebook", "apple"]);
        let idns = vec![
            idn("gооgle"),  // Cyrillic o's
            idn("аmazon"),  // Cyrillic a
            idn("fаcebook"),
            idn("аpple"),
            idn("banana"),  // no reference
            idn("gοοgle"),  // Greek omicrons
        ];
        let naive = d.detect(&idns, DbSelection::Union, Indexing::Naive);
        let bucket = d.detect(&idns, DbSelection::Union, Indexing::LengthBucket);
        let canon = d.detect(&idns, DbSelection::Union, Indexing::CanonicalClosure);
        let key = |v: &[Detection]| {
            let mut k: Vec<(String, String)> = v
                .iter()
                .map(|h| (h.idn_unicode.clone(), h.reference.to_string()))
                .collect();
            k.sort();
            k
        };
        assert_eq!(key(&naive), key(&bucket));
        assert_eq!(key(&naive), key(&canon));
        assert_eq!(naive.len(), 5);
    }

    #[test]
    fn db_selection_changes_detections() {
        // é is a SimChar-only homoglyph of e (UC does not list accents).
        let d = detector(&["facebook"]);
        let idns = vec![idn("facébook")];
        assert_eq!(d.detect(&idns, DbSelection::Union, Indexing::LengthBucket).len(), 1);
        assert_eq!(d.detect(&idns, DbSelection::SimCharOnly, Indexing::LengthBucket).len(), 1);
        assert!(d.detect(&idns, DbSelection::UcOnly, Indexing::LengthBucket).is_empty());
    }

    #[test]
    fn selection_gates_membership_but_source_keeps_union_attribution() {
        // Cyrillic о/o is attested by both databases: selecting only one
        // component must still record the pair as `Both` (Fig. 12's
        // warning UI names every attesting source).
        use sham_simchar::PairSource;
        let d = detector(&["google"]);
        for selection in [DbSelection::UcOnly, DbSelection::SimCharOnly] {
            let hits = d.detect(&[idn("gооgle")], selection, Indexing::LengthBucket);
            assert_eq!(hits.len(), 1);
            assert!(hits[0]
                .substitutions
                .iter()
                .all(|s| s.source == Some(PairSource::Both)));
        }
    }

    #[test]
    fn multiple_references_can_match_one_idn() {
        let d = detector(&["ab", "ab"]);
        // Both (identical) references match; detection reports both.
        let idns = vec![idn("аb")]; // Cyrillic а
        let hits = d.detect(&idns, DbSelection::Union, Indexing::Naive);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn substitution_positions_are_recorded() {
        let d = detector(&["paypal"]);
        let hits = d.detect(&[idn("pаypаl")], DbSelection::Union, Indexing::LengthBucket);
        assert_eq!(hits.len(), 1);
        let positions: Vec<usize> =
            hits[0].substitutions.iter().map(|s| s.position).collect();
        assert_eq!(positions, vec![1, 4]);
    }

    #[test]
    fn matches_wrapper_agrees_with_detect() {
        let d = detector(&["google"]);
        let reference: Vec<char> = "google".chars().collect();
        let lookalike: Vec<char> = "gооgle".chars().collect();
        let subs = d
            .matches(&reference, &lookalike, DbSelection::Union)
            .expect("lookalike must match");
        assert_eq!(subs.len(), 2);
        assert!(d.matches(&reference, &reference, DbSelection::Union).is_none());
    }

    #[test]
    fn detectors_share_one_index() {
        let d = detector(&["google"]);
        let d2 = Detector::from_index(Arc::clone(d.index()));
        assert!(Arc::ptr_eq(d.index(), d2.index()));
        let hits = d2.detect(&[idn("gооgle")], DbSelection::Union, Indexing::CanonicalClosure);
        assert_eq!(hits.len(), 1);
        // The detection's reference name is a handle on the shared
        // index's name arena, not a fresh String.
        assert!(RefName::ptr_eq(&hits[0].reference, &d.reference(0)));
    }
}
