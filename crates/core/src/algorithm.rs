//! Algorithm 1 — IDN homograph detection.
//!
//! For every reference domain name `r` and every registered IDN `x` of the
//! same character length (both with the TLD removed), the characters are
//! compared position by position: equal characters pass; unequal
//! characters pass only if the homoglyph database lists them as a pair;
//! anything else rejects `x` for this reference (paper §3.1, Fig. 2).
//!
//! Three execution strategies are provided for the `detection_variants`
//! ablation bench:
//!
//! * [`Indexing::Naive`] — compare every (reference, IDN) combination.
//! * [`Indexing::LengthBucket`] — the paper's optimisation: only compare
//!   strings of equal length.
//! * [`Indexing::CanonicalHash`] — additionally canonicalise every
//!   character to a representative of its homoglyph equivalence class and
//!   look references up by canonical string hash (exact for pair sets
//!   that form transitive classes, which both UC prototypes and the
//!   visual-class geometry of SynthUnifont produce; candidates are always
//!   re-verified with the pairwise test, so no false positives).

use crate::detection::{CharSubstitution, Detection};
use serde::{Deserialize, Serialize};
use sham_simchar::{DbSelection, HomoglyphDb};
use std::collections::HashMap;

/// Candidate-generation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Indexing {
    /// All pairs.
    Naive,
    /// Bucket by string length (the paper's approach).
    LengthBucket,
    /// Length bucket + canonical-representative hashing.
    CanonicalHash,
}

/// The homograph detector: a homoglyph database plus a reference list.
pub struct Detector {
    db: HomoglyphDb,
    references: Vec<Vec<char>>,
    reference_names: Vec<String>,
    /// canonical representative per code point (lazy, for CanonicalHash).
    canon: HashMap<u32, u32>,
    canon_index: HashMap<u64, Vec<usize>>,
}

impl Detector {
    /// Builds a detector for `references` (TLD-stripped ASCII stems,
    /// e.g. `"google"`).
    pub fn new(db: HomoglyphDb, references: impl IntoIterator<Item = String>) -> Self {
        let reference_names: Vec<String> = references.into_iter().collect();
        let references = reference_names.iter().map(|r| r.chars().collect()).collect();
        let mut d = Detector {
            db,
            references,
            reference_names,
            canon: HashMap::new(),
            canon_index: HashMap::new(),
        };
        d.build_canonical_index();
        d
    }

    /// The underlying homoglyph database.
    pub fn db(&self) -> &HomoglyphDb {
        &self.db
    }

    /// Reference stems.
    pub fn references(&self) -> &[String] {
        &self.reference_names
    }

    /// Canonical representative of a code point: the smallest member of
    /// its homoglyph neighbourhood (code point itself included). ASCII
    /// letters are the smallest members of their classes by construction,
    /// so canonicalisation maps homoglyphs onto their ASCII targets.
    fn canonical(&mut self, cp: u32) -> u32 {
        if let Some(&c) = self.canon.get(&cp) {
            return c;
        }
        let mut min = cp;
        for h in self.db.homoglyphs_of(cp) {
            min = min.min(h);
        }
        self.canon.insert(cp, min);
        min
    }

    fn canonical_hash(&mut self, chars: &[char]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &c in chars {
            let canon = self.canonical(c as u32);
            h ^= u64::from(canon);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    fn build_canonical_index(&mut self) {
        let refs = self.references.clone();
        for (idx, r) in refs.iter().enumerate() {
            let h = self.canonical_hash(r);
            self.canon_index.entry(h).or_default().push(idx);
        }
    }

    /// The inner character-by-character test of Algorithm 1. Returns the
    /// substitutions when `idn` is a homograph of `reference`.
    pub fn matches(
        &self,
        reference: &[char],
        idn: &[char],
        selection: DbSelection,
    ) -> Option<Vec<CharSubstitution>> {
        if reference.len() != idn.len() {
            return None;
        }
        let mut subs = Vec::new();
        for (pos, (&rc, &xc)) in reference.iter().zip(idn.iter()).enumerate() {
            if rc == xc {
                continue;
            }
            if self.db.is_pair_with(rc as u32, xc as u32, selection) {
                subs.push(CharSubstitution {
                    position: pos,
                    original: rc,
                    homoglyph: xc,
                    source: self.db.source_of(rc as u32, xc as u32),
                });
            } else {
                return None;
            }
        }
        // An IDN equal to the reference (no substitutions) is the
        // reference itself, not a homograph.
        if subs.is_empty() {
            None
        } else {
            Some(subs)
        }
    }

    /// Runs detection over `idns` (Unicode stems, TLD removed) with the
    /// given database selection and indexing strategy.
    pub fn detect(
        &mut self,
        idns: &[(String, String)], // (unicode stem, full ACE name)
        selection: DbSelection,
        indexing: Indexing,
    ) -> Vec<Detection> {
        match indexing {
            Indexing::Naive => self.detect_naive(idns, selection),
            Indexing::LengthBucket => self.detect_bucketed(idns, selection),
            Indexing::CanonicalHash => self.detect_canonical(idns, selection),
        }
    }

    fn emit(
        &self,
        ref_idx: usize,
        stem: &str,
        ace: &str,
        subs: Vec<CharSubstitution>,
        out: &mut Vec<Detection>,
    ) {
        out.push(Detection {
            idn_unicode: stem.to_string(),
            idn_ascii: ace.to_string(),
            reference: self.reference_names[ref_idx].clone(),
            substitutions: subs,
        });
    }

    fn detect_naive(&self, idns: &[(String, String)], selection: DbSelection) -> Vec<Detection> {
        let mut out = Vec::new();
        for (stem, ace) in idns {
            let chars: Vec<char> = stem.chars().collect();
            for (ref_idx, r) in self.references.iter().enumerate() {
                if let Some(subs) = self.matches(r, &chars, selection) {
                    self.emit(ref_idx, stem, ace, subs, &mut out);
                }
            }
        }
        out
    }

    fn detect_bucketed(&self, idns: &[(String, String)], selection: DbSelection) -> Vec<Detection> {
        // Bucket references by length once; compare each IDN only against
        // same-length references (the paper's Algorithm 1 loop shape).
        let mut by_len: HashMap<usize, Vec<usize>> = HashMap::new();
        for (idx, r) in self.references.iter().enumerate() {
            by_len.entry(r.len()).or_default().push(idx);
        }
        let mut out = Vec::new();
        for (stem, ace) in idns {
            let chars: Vec<char> = stem.chars().collect();
            let Some(bucket) = by_len.get(&chars.len()) else { continue };
            for &ref_idx in bucket {
                if let Some(subs) = self.matches(&self.references[ref_idx], &chars, selection) {
                    self.emit(ref_idx, stem, ace, subs, &mut out);
                }
            }
        }
        out
    }

    fn detect_canonical(
        &mut self,
        idns: &[(String, String)],
        selection: DbSelection,
    ) -> Vec<Detection> {
        let mut out = Vec::new();
        for (stem, ace) in idns {
            let chars: Vec<char> = stem.chars().collect();
            let h = self.canonical_hash(&chars);
            let Some(candidates) = self.canon_index.get(&h).cloned() else { continue };
            for ref_idx in candidates {
                let r = self.references[ref_idx].clone();
                if let Some(subs) = self.matches(&r, &chars, selection) {
                    self.emit(ref_idx, stem, ace, subs, &mut out);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_confusables::UcDatabase;
    use sham_glyph::SynthUnifont;
    use sham_simchar::{build, BuildConfig, Repertoire};

    fn detector(refs: &[&str]) -> Detector {
        let font = SynthUnifont::v12();
        let result = build(
            &font,
            &BuildConfig {
                repertoire: Repertoire::Blocks(vec![
                    "Basic Latin",
                    "Latin-1 Supplement",
                    "Cyrillic",
                    "Greek and Coptic",
                    "Armenian",
                ]),
                ..BuildConfig::default()
            },
        );
        let db = HomoglyphDb::new(result.db, UcDatabase::embedded());
        Detector::new(db, refs.iter().map(|s| s.to_string()))
    }

    fn idn(stem: &str) -> (String, String) {
        let ace = sham_punycode::ace::to_ascii(stem).unwrap();
        (stem.to_string(), format!("{ace}.com"))
    }

    #[test]
    fn paper_figure2_example() {
        // gоогle with Armenian օ (U+0585): the paper's Fig. 2 left side.
        let mut d = detector(&["google", "facebook"]);
        let idns = vec![idn("gօօgle")];
        let hits = d.detect(&idns, DbSelection::Union, Indexing::LengthBucket);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].reference, "google");
        assert_eq!(hits[0].substitutions.len(), 2);
        assert_eq!(hits[0].substitutions[0].original, 'o');
        assert_eq!(hits[0].substitutions[0].homoglyph, 'օ');
    }

    #[test]
    fn figure2_negative_example() {
        // "gocaié" (right side of Fig. 2) is not a homograph of google.
        let mut d = detector(&["google"]);
        let hits = d.detect(&[idn("gocaié")], DbSelection::Union, Indexing::LengthBucket);
        assert!(hits.is_empty());
    }

    #[test]
    fn length_mismatch_is_skipped() {
        let mut d = detector(&["google"]);
        let hits = d.detect(&[idn("gооgl")], DbSelection::Union, Indexing::LengthBucket);
        assert!(hits.is_empty());
    }

    #[test]
    fn identical_string_is_not_a_homograph() {
        let mut d = detector(&["google"]);
        let hits = d.detect(
            &[("google".to_string(), "google.com".to_string())],
            DbSelection::Union,
            Indexing::LengthBucket,
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn all_indexing_strategies_agree() {
        let mut d = detector(&["google", "amazon", "facebook", "apple"]);
        let idns = vec![
            idn("gооgle"),  // Cyrillic o's
            idn("аmazon"),  // Cyrillic a
            idn("fаcebook"),
            idn("аpple"),
            idn("banana"),  // no reference
            idn("gοοgle"),  // Greek omicrons
        ];
        let naive = d.detect(&idns, DbSelection::Union, Indexing::Naive);
        let bucket = d.detect(&idns, DbSelection::Union, Indexing::LengthBucket);
        let canon = d.detect(&idns, DbSelection::Union, Indexing::CanonicalHash);
        let key = |v: &[Detection]| {
            let mut k: Vec<(String, String)> = v
                .iter()
                .map(|h| (h.idn_unicode.clone(), h.reference.clone()))
                .collect();
            k.sort();
            k
        };
        assert_eq!(key(&naive), key(&bucket));
        assert_eq!(key(&naive), key(&canon));
        assert_eq!(naive.len(), 5);
    }

    #[test]
    fn db_selection_changes_detections() {
        // é is a SimChar-only homoglyph of e (UC does not list accents).
        let mut d = detector(&["facebook"]);
        let idns = vec![idn("facébook")];
        assert_eq!(d.detect(&idns, DbSelection::Union, Indexing::LengthBucket).len(), 1);
        assert_eq!(d.detect(&idns, DbSelection::SimCharOnly, Indexing::LengthBucket).len(), 1);
        assert!(d.detect(&idns, DbSelection::UcOnly, Indexing::LengthBucket).is_empty());
    }

    #[test]
    fn multiple_references_can_match_one_idn() {
        let mut d = detector(&["ab", "ab"]);
        // Both (identical) references match; detection reports both.
        let idns = vec![idn("аb")]; // Cyrillic а
        let hits = d.detect(&idns, DbSelection::Union, Indexing::Naive);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn substitution_positions_are_recorded() {
        let mut d = detector(&["paypal"]);
        let hits = d.detect(&[idn("pаypаl")], DbSelection::Union, Indexing::LengthBucket);
        assert_eq!(hits.len(), 1);
        let positions: Vec<usize> =
            hits[0].substitutions.iter().map(|s| s.position).collect();
        assert_eq!(positions, vec![1, 4]);
    }
}
