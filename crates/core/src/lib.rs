//! ShamFinder — the IDN homograph detection framework (paper §3).
//!
//! This crate is the paper's primary contribution: given a homoglyph
//! database (SimChar ∪ UC, from `sham-simchar`) and a reference list of
//! popular domains, it detects registered IDN homographs, pinpoints the
//! differential characters, reverts homographs to their original domains,
//! and models the browser display policies the paper critiques.
//!
//! * [`algorithm`] — Algorithm 1 with three candidate-generation
//!   strategies (naive / length-bucketed / canonical-closure, the
//!   last being the exact union-find component index and the default).
//! * [`index`] — the shared immutable index layer: [`DetectionIndex`]
//!   (flat pair index + fully-indexed reference list) built once and
//!   shared behind an `Arc` by every framework, detector and session.
//! * [`session`] — the incremental streaming layer:
//!   [`DetectorSession`] ingests zone-diff batches and reference-list
//!   churn, folding into the same report as a batch run.
//! * [`router`] — the multi-TLD fan-out: [`SessionRouter`]
//!   demultiplexes one interleaved feed into per-TLD sessions sharing
//!   one index and merges their reports deterministically.
//! * [`ingest`] — the fault-tolerant always-on front-end:
//!   [`IngestService`] runs connector threads over [`FeedSource`]s
//!   into bounded per-lane queues (block/shed backpressure), with
//!   malformed-record quarantine, retry/backoff/circuit-open on feed
//!   errors, worker-panic isolation and idle-lane folding — draining
//!   into a `SessionRouter` whose no-fault output is bit-identical to
//!   a batch replay.
//! * [`feeds`] — byte-stream feed sources: master-file text
//!   ([`ZoneTextFeed`]) and length-prefixed DNS wire frames
//!   ([`WireMessageFeed`]) off any `Read` transport.
//! * [`sched`] — the occupancy-driven execution policy: shard sizing
//!   and flush batching adapt to the worker pool's observed occupancy
//!   (partitioning only — outputs stay bit-identical), with
//!   [`ExecStats`] recording the decisions into every report.
//! * [`framework`] — the Steps 1–3 pipeline of Fig. 1 (a one-shot
//!   wrapper over a session).
//! * [`revert`] — §6.4's homograph-to-original reverting.
//! * [`highlight`] — the Fig. 12 warning-UI data.
//! * [`policy`] — Chrome/Firefox-style display policy simulation.
//! * [`registry`] — per-TLD inclusion-based IDN tables (§2.1).
//! * [`plagiarism`] — homoglyph-obfuscated plagiarism detection, the
//!   §9 application of SimChar.
//!
//! # Example
//!
//! ```
//! use sham_core::{Framework, DbSelection};
//! use sham_confusables::UcDatabase;
//! use sham_glyph::SynthUnifont;
//! use sham_punycode::DomainName;
//! use sham_simchar::{build, BuildConfig, Repertoire};
//!
//! let font = SynthUnifont::v12();
//! let simchar = build(&font, &BuildConfig {
//!     repertoire: Repertoire::Blocks(vec!["Basic Latin", "Cyrillic"]),
//!     ..BuildConfig::default()
//! }).db;
//! let fw = Framework::new(
//!     simchar,
//!     UcDatabase::embedded(),
//!     vec!["google".to_string()],
//!     "com",
//! );
//! let corpus = vec![DomainName::parse("xn--ggle-55da.com").unwrap()];
//! let report = fw.run(&corpus);
//! assert_eq!(&*report.detections[0].reference, "google");
//! ```

pub mod algorithm;
pub mod detection;
pub mod feeds;
pub mod framework;
pub mod highlight;
pub mod index;
pub mod ingest;
pub mod plagiarism;
pub mod policy;
pub mod registry;
pub mod revert;
pub mod router;
pub mod scan;
pub mod sched;
pub mod session;

pub use algorithm::{Detector, Indexing};
pub use detection::{CharSubstitution, Detection, RefName};
pub use feeds::{WireMessageFeed, ZoneTextFeed};
pub use framework::{Framework, FrameworkReport};
pub use index::{reference_digest, reference_section_summary, DetectionIndex, ReferenceSet};
pub use ingest::{
    Backpressure, FeedError, FeedItem, FeedOutcome, FeedReport, FeedSource, FlushHook,
    IngestConfig, IngestEvent, IngestReport, IngestService, LaneStats, QuarantineSample,
    RetryPolicy,
};
pub use router::{RouterReport, SessionRouter, TldReport};
pub use scan::{ScanConfig, ScanReport, TldScanStats, ZoneScanner};
pub use sched::ExecStats;
pub use session::{DetectorSession, DEFAULT_COMPACTION_THRESHOLD};
pub use highlight::{HighlightedSubstitution, Warning};
pub use policy::{bypasses_policy, display, Display, Policy};
pub use plagiarism::{scan_text, similarity_gap, PlagiarismScan};
pub use registry::IdnTable;
pub use revert::{revert_char, revert_stem, Reverted};

// Re-export the database selection so framework users need not depend on
// sham-simchar directly.
pub use sham_simchar::DbSelection;

// Re-export the executor's telemetry surface so CLI/servers can read
// pool occupancy and counters without depending on the vendored
// executor crate directly.
pub use rayon::{busy_workers, pool_stats, PoolStats};
