//! Browser IDN display-policy model (paper §2.2 and §7.2).
//!
//! After the 2017 disclosure, Chrome and Firefox began displaying an IDN
//! as Punycode whenever its label mixes scripts suspiciously. The paper
//! points out two gaps: (1) forced Punycode destroys usability and hides
//! the *reason* from the user; (2) Latin+CJK mixes are still displayed in
//! Unicode, and whole-script (non-Latin) homographs pass entirely. This
//! module models those policies so the gaps are measurable.

use serde::{Deserialize, Serialize};
use sham_punycode::DomainName;
use sham_unicode::scripts_in;
use sham_unicode::Script;

/// How a browser renders an IDN in the address bar.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Display {
    /// Shown in Unicode form.
    Unicode(String),
    /// Degraded to Punycode (ACE) form.
    Punycode(String),
}

/// The display policies modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Pre-2017 behaviour: always display Unicode.
    Legacy,
    /// Post-2017 Chrome/Firefox-style mixed-script rule: a label mixing
    /// Latin with a non-CJK script is shown as Punycode; single-script
    /// labels and Latin+CJK mixes are shown in Unicode.
    MixedScriptPunycode,
}

/// Evaluates how `domain` is displayed under `policy`.
pub fn display(domain: &DomainName, policy: Policy) -> Display {
    let unicode = match domain.to_unicode() {
        Ok(u) => u,
        // Garbage ACE labels always degrade to the wire form.
        Err(_) => return Display::Punycode(domain.as_ascii().to_string()),
    };
    match policy {
        Policy::Legacy => Display::Unicode(unicode),
        Policy::MixedScriptPunycode => {
            for label in unicode.split('.') {
                if label_is_suspicious(label) {
                    return Display::Punycode(domain.as_ascii().to_string());
                }
            }
            Display::Unicode(unicode)
        }
    }
}

/// The mixed-script test applied per label.
fn label_is_suspicious(label: &str) -> bool {
    let scripts = scripts_in(label);
    if scripts.len() <= 1 {
        return false;
    }
    let has_latin = scripts.contains(&Script::Latin);
    if !has_latin {
        // Non-Latin mixes (e.g. Han + Katakana) pass in real browsers —
        // the weakness the paper's §2.2 工業大学/エ業大学 example shows.
        return false;
    }
    // Latin + CJK is a conventional (Japanese) combination and passes.
    scripts
        .iter()
        .any(|s| *s != Script::Latin && !s.is_cjk())
}

/// True when the displayed form would fool a user looking for
/// `reference`: the domain renders in Unicode and is not the reference
/// itself. Used by the measurement study to count policy bypasses.
pub fn bypasses_policy(domain: &DomainName, policy: Policy) -> bool {
    matches!(display(domain, policy), Display::Unicode(_))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn legacy_always_unicode() {
        let dom = d("gооgle.com"); // Latin + Cyrillic
        assert!(matches!(display(&dom, Policy::Legacy), Display::Unicode(_)));
    }

    #[test]
    fn latin_cyrillic_mix_degrades() {
        let dom = d("gооgle.com");
        match display(&dom, Policy::MixedScriptPunycode) {
            Display::Punycode(p) => assert!(p.starts_with("xn--")),
            other => panic!("expected punycode, got {other:?}"),
        }
    }

    #[test]
    fn pure_cyrillic_whole_script_passes() {
        // An all-Cyrillic lookalike is single-script: browsers display it.
        let dom = d("фасебоок.com");
        assert!(bypasses_policy(&dom, Policy::MixedScriptPunycode));
    }

    #[test]
    fn latin_cjk_mix_passes() {
        // The paper's §2.2 point: Latin+CJK renders in Unicode.
        let dom = d("tokyo大学.com");
        assert!(bypasses_policy(&dom, Policy::MixedScriptPunycode));
    }

    #[test]
    fn non_latin_homograph_passes() {
        // エ業大学 (Katakana エ replacing 工): Han + Katakana mix, no
        // Latin — current policies show it in Unicode.
        let dom = d("エ業大学.com");
        assert!(bypasses_policy(&dom, Policy::MixedScriptPunycode));
    }

    #[test]
    fn accent_only_label_is_single_script_and_passes() {
        // facébook is all-Latin: the 2017 rules do not degrade it.
        let dom = d("facébook.com");
        assert!(bypasses_policy(&dom, Policy::MixedScriptPunycode));
    }

    #[test]
    fn ascii_domains_always_unicode() {
        let dom = d("example.com");
        assert!(matches!(
            display(&dom, Policy::MixedScriptPunycode),
            Display::Unicode(u) if u == "example.com"
        ));
    }
}
