//! Reverting a detected homograph to its original domain (paper §6.4).
//!
//! Starting from a reference list misses homographs of unpopular domains.
//! But given a malicious IDN, the homoglyph database can be inverted:
//! replace every non-LDH character with its Basic Latin homoglyph and
//! recover the most plausible original ASCII domain. The paper uses this
//! to attribute 91 malicious IDNs to targets outside the Alexa top-1k.

use sham_simchar::HomoglyphDb;
use sham_unicode::is_ldh;

/// Outcome of a revert attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reverted {
    /// Every character mapped to LDH; the candidate original stem.
    Original(String),
    /// Some characters had no LDH homoglyph; the partial mapping with
    /// un-revertable characters kept as-is.
    Partial(String, Vec<char>),
}

impl Reverted {
    /// The reverted stem regardless of completeness.
    pub fn stem(&self) -> &str {
        match self {
            Reverted::Original(s) | Reverted::Partial(s, _) => s,
        }
    }

    /// True when the revert was complete.
    pub fn is_complete(&self) -> bool {
        matches!(self, Reverted::Original(_))
    }
}

/// Best LDH substitute for a single character: the smallest ASCII
/// homoglyph (ASCII letters sort below every other candidate, and the
/// visual classes anchor on ASCII, so "smallest ASCII" is the prototype).
pub fn revert_char(db: &HomoglyphDb, c: char) -> Option<char> {
    if is_ldh(c) {
        return Some(c.to_ascii_lowercase());
    }
    db.homoglyphs_of(c as u32)
        .into_iter()
        .filter_map(char::from_u32)
        .filter(|&h| is_ldh(h))
        .min()
}

/// Reverts a Unicode stem to its candidate original ASCII stem.
pub fn revert_stem(db: &HomoglyphDb, stem: &str) -> Reverted {
    let mut out = String::with_capacity(stem.len());
    let mut failed = Vec::new();
    for c in stem.chars() {
        if c == '.' || c == '-' {
            out.push(c);
            continue;
        }
        match revert_char(db, c) {
            Some(ascii) => out.push(ascii),
            None => {
                out.push(c);
                failed.push(c);
            }
        }
    }
    if failed.is_empty() {
        Reverted::Original(out)
    } else {
        Reverted::Partial(out, failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_confusables::UcDatabase;
    use sham_glyph::SynthUnifont;
    use sham_simchar::{build, BuildConfig, Repertoire};

    fn db() -> HomoglyphDb {
        let font = SynthUnifont::v12();
        let result = build(
            &font,
            &BuildConfig {
                repertoire: Repertoire::Blocks(vec![
                    "Basic Latin",
                    "Latin-1 Supplement",
                    "Cyrillic",
                    "Armenian",
                    "Lao",
                ]),
                ..BuildConfig::default()
            },
        );
        HomoglyphDb::new(result.db, UcDatabase::embedded())
    }

    #[test]
    fn reverts_cyrillic_spoof() {
        let db = db();
        let r = revert_stem(&db, "gооgle"); // Cyrillic о
        assert_eq!(r, Reverted::Original("google".to_string()));
    }

    #[test]
    fn reverts_accented_spoof() {
        let db = db();
        let r = revert_stem(&db, "facébook");
        assert_eq!(r, Reverted::Original("facebook".to_string()));
    }

    #[test]
    fn reverts_paper_fig12_lao_zero() {
        let db = db();
        let r = revert_stem(&db, "g\u{0ED0}\u{0ED0}gle");
        assert_eq!(r, Reverted::Original("google".to_string()));
    }

    #[test]
    fn ascii_passes_through_lowercased() {
        let db = db();
        assert_eq!(revert_stem(&db, "plain-name"), Reverted::Original("plain-name".into()));
    }

    #[test]
    fn unrevertable_chars_are_reported() {
        let db = db();
        // 工 has no LDH homoglyph in this small build.
        match revert_stem(&db, "工business") {
            Reverted::Partial(stem, failed) => {
                assert_eq!(failed, vec!['工']);
                assert!(stem.ends_with("business"));
            }
            other => panic!("expected partial revert, got {other:?}"),
        }
    }

    #[test]
    fn revert_char_prefers_ascii_letters() {
        let db = db();
        assert_eq!(revert_char(&db, 'о'), Some('o')); // Cyrillic
        assert_eq!(revert_char(&db, 'օ'), Some('o')); // Armenian
        assert_eq!(revert_char(&db, 'x'), Some('x'));
        assert_eq!(revert_char(&db, 'X'), Some('x'));
    }
}
