//! Multi-TLD session routing — one interleaved zone feed, many
//! per-TLD detection sessions.
//!
//! A production zone-diff feed rarely carries a single TLD: registrars
//! and zone providers publish interleaved streams where `.com`, `.net`
//! and country-code registrations arrive mixed together (the paper's
//! §5 corpora are per-TLD, but its monitoring story spans them). A
//! [`SessionRouter`] demultiplexes such a stream into one
//! [`DetectorSession`] per TLD, all `Arc`-sharing a single
//! [`DetectionIndex`] — the homoglyph database and indexed reference
//! list are built once for the whole fleet, never per TLD.
//!
//! Routing buffers registrations per TLD and flushes each buffer as a
//! batch once it fills (or when a reference diff / report boundary
//! forces it), so even a feed trickling in single events drives
//! multi-shard batches through the shared worker pool instead of
//! per-domain detection calls. Because streaming detection is
//! partition-invariant (see `crate::session`), buffering is
//! unobservable in the results: the router's per-TLD reports are
//! *identical* to running each TLD's events through its own one-shot
//! [`Framework::run`](crate::Framework::run).
//!
//! Reference churn is global — popularity lists are not per-TLD — so
//! [`SessionRouter::apply_reference_diff`] flushes every lane (pending
//! registrations were observed under the pre-diff list) and then
//! applies the diff to every session.
//!
//! Reports merge deterministically: lanes are kept sorted by TLD, and
//! [`RouterReport`] lists per-TLD reports in that order with each
//! lane's detections in its own event order.
//!
//! Lanes have a *lifecycle*: [`SessionRouter::fold_lane`] flushes a
//! lane, folds its report into the final aggregate and closes it (the
//! ingest front-end evicts idle lanes this way, so a junk TLD cannot
//! leak a lane forever), and [`SessionRouter::poison_lane`] does the
//! same after a worker panic, discarding the unflushed buffer whose
//! fate is unknown. Either way the next domain of that TLD (if the
//! lane set permits it) reopens a fresh lane — and because the router
//! records every reference diff it has applied and replays that
//! history into each newly opened session, a reopened (or late-opened)
//! lane sees exactly the reference view a lane open from the start
//! would: folding and reopening are unobservable in the final report.

use crate::algorithm::Indexing;
use crate::detection::Detection;
use crate::framework::FrameworkReport;
use crate::index::DetectionIndex;
use crate::session::DetectorSession;
use serde::{Deserialize, Serialize};
use sham_punycode::DomainName;
use sham_simchar::DbSelection;
use std::sync::Arc;

/// Registrations buffered per lane before a batch flush. Batches of
/// this size shard across the worker pool; the value matches the
/// zone-diff granularity the `phishing_hunt` example ingests.
pub const DEFAULT_ROUTER_BATCH: usize = 1_024;

/// One TLD's slice of the router: its session plus the pending
/// registration buffer awaiting the next batch flush.
struct RouterLane {
    tld: String,
    session: DetectorSession,
    pending: Vec<DomainName>,
}

/// One TLD's slice of a [`RouterReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TldReport {
    /// The lane's TLD (`"com"`, `"net"`, …).
    pub tld: String,
    /// The same report a one-shot `Framework::run` over this TLD's
    /// events would produce.
    pub report: FrameworkReport,
}

/// Aggregate outcome of a routed multi-TLD feed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RouterReport {
    /// Per-TLD reports, sorted by TLD name.
    pub per_tld: Vec<TldReport>,
    /// Domains dropped because their TLD is outside the configured
    /// lane set (always 0 for an auto-opening router).
    pub unrouted_domains: usize,
    /// Reference diffs applied across the fleet.
    pub reference_diffs: usize,
}

impl RouterReport {
    /// Total domains seen, unrouted ones included.
    pub fn total_domains(&self) -> usize {
        self.unrouted_domains
            + self.per_tld.iter().map(|t| t.report.total_domains).sum::<usize>()
    }

    /// Total IDNs matched across all lanes.
    pub fn idn_count(&self) -> usize {
        self.per_tld.iter().map(|t| t.report.idn_count).sum()
    }

    /// Total detections across all lanes.
    pub fn detection_count(&self) -> usize {
        self.per_tld.iter().map(|t| t.report.detections.len()).sum()
    }

    /// All detections in deterministic order: lanes sorted by TLD, each
    /// lane's detections in its own event order.
    pub fn detections(&self) -> impl Iterator<Item = &Detection> {
        self.per_tld.iter().flat_map(|t| t.report.detections.iter())
    }

    /// Scheduling decisions aggregated across every lane (see
    /// [`ExecStats`](crate::sched::ExecStats) — observational, ignored
    /// by report equality).
    pub fn exec(&self) -> crate::sched::ExecStats {
        let mut total = crate::sched::ExecStats::default();
        for lane in &self.per_tld {
            total.merge(&lane.report.exec);
        }
        total
    }
}

/// Demultiplexes one interleaved registration stream into per-TLD
/// [`DetectorSession`]s over a shared [`DetectionIndex`].
///
/// ```
/// use sham_core::{DetectionIndex, SessionRouter};
/// use sham_confusables::UcDatabase;
/// use sham_glyph::SynthUnifont;
/// use sham_punycode::DomainName;
/// use sham_simchar::{build, BuildConfig, HomoglyphDb, Repertoire};
///
/// let font = SynthUnifont::v12();
/// let simchar = build(&font, &BuildConfig {
///     repertoire: Repertoire::Blocks(vec!["Basic Latin", "Cyrillic"]),
///     ..BuildConfig::default()
/// }).db;
/// let index = DetectionIndex::shared(
///     HomoglyphDb::new(simchar, UcDatabase::embedded()),
///     vec!["google".to_string()],
/// );
/// // One index, any number of TLD lanes — opened on first sight.
/// let mut router = SessionRouter::new(index);
/// let feed: Vec<DomainName> = [
///     "xn--ggle-55da.com", // gооgle under .com
///     "ordinary.net",
///     "xn--ggle-55da.net", // …and under .net
/// ].iter().map(|s| DomainName::parse(s)).collect::<Result<_, _>>()?;
/// router.push_domains(&feed);
/// let report = router.into_report();
/// assert_eq!(report.per_tld.len(), 2);
/// assert_eq!(report.detection_count(), 2);
/// assert_eq!(report.per_tld[0].tld, "com");
/// # Ok::<(), sham_punycode::PunycodeError>(())
/// ```
pub struct SessionRouter {
    index: Arc<DetectionIndex>,
    selection: DbSelection,
    indexing: Indexing,
    compact_min_dead: Option<usize>,
    /// Lanes sorted by TLD (binary-searched on every routed domain).
    lanes: Vec<RouterLane>,
    /// When false, a domain whose TLD has no lane is counted as
    /// unrouted instead of opening one — unless the TLD is in
    /// `allowed` (a folded or poisoned lane of the fixed set reopens).
    auto_open: bool,
    /// The fixed lane set, sorted, when built via `with_tlds`.
    allowed: Option<Vec<String>>,
    /// Reports of lanes closed by `fold_lane` / `poison_lane`, in
    /// close order; merged back per TLD at report time.
    folded: Vec<TldReport>,
    /// Every reference diff applied so far, replayed into any lane
    /// opened (or reopened) later so late lanes see the same
    /// reference view as lanes open from the start.
    diff_history: Vec<(Vec<String>, Vec<String>)>,
    batch_capacity: usize,
    unrouted: usize,
    reference_diffs: usize,
}

impl SessionRouter {
    /// Opens a router that creates a lane for every TLD it encounters,
    /// with the framework defaults (union database, closure indexing).
    pub fn new(index: Arc<DetectionIndex>) -> Self {
        SessionRouter {
            index,
            selection: DbSelection::Union,
            indexing: Indexing::CanonicalClosure,
            compact_min_dead: None,
            lanes: Vec::new(),
            auto_open: true,
            allowed: None,
            folded: Vec::new(),
            diff_history: Vec::new(),
            batch_capacity: DEFAULT_ROUTER_BATCH,
            unrouted: 0,
            reference_diffs: 0,
        }
    }

    /// Restricts the router to a fixed lane set: the given TLDs are
    /// opened immediately and domains of any other TLD are counted as
    /// unrouted instead of detected. TLDs of the set whose lane was
    /// later folded or poisoned reopen on their next domain.
    pub fn with_tlds<I, S>(mut self, tlds: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut allowed = Vec::new();
        for tld in tlds {
            let tld = tld.into();
            if let Err(at) = self.lane_position(&tld) {
                let session = self.open_session(&tld);
                self.lanes.insert(at, RouterLane {
                    tld: tld.clone(),
                    session,
                    pending: Vec::new(),
                });
            }
            allowed.push(tld);
        }
        allowed.sort();
        allowed.dedup();
        self.allowed = Some(allowed);
        self.auto_open = false;
        self
    }

    /// Switches the database selection for every (current and future)
    /// lane. Builder-phase only, like the other `with_*` knobs: lanes
    /// preopened by [`SessionRouter::with_tlds`] are reopened with the
    /// new configuration (they have no accumulated state yet).
    pub fn with_selection(mut self, selection: DbSelection) -> Self {
        self.selection = selection;
        self.reopen_lanes();
        self
    }

    /// Switches the candidate-generation strategy for every lane.
    pub fn with_indexing(mut self, indexing: Indexing) -> Self {
        self.indexing = indexing;
        self.reopen_lanes();
        self
    }

    /// Sets every lane's overlay-compaction threshold (see
    /// [`DetectorSession::with_compaction_threshold`]).
    pub fn with_compaction_threshold(mut self, min_dead: usize) -> Self {
        self.compact_min_dead = Some(min_dead);
        self.reopen_lanes();
        self
    }

    /// Re-creates every lane's session with the current configuration.
    fn reopen_lanes(&mut self) {
        let index = Arc::clone(&self.index);
        let (selection, indexing, compact) =
            (self.selection, self.indexing, self.compact_min_dead);
        let history = std::mem::take(&mut self.diff_history);
        for lane in &mut self.lanes {
            let mut session =
                Self::make_session(&index, selection, indexing, compact, &lane.tld);
            for (added, removed) in &history {
                session.apply_reference_diff(added, removed);
            }
            lane.session = session;
        }
        self.diff_history = history;
    }

    /// Sets how many registrations a lane buffers before flushing them
    /// as one batch (1 disables buffering). This is the *upper* bound:
    /// when the worker pool is idle the router flushes earlier (see
    /// [`crate::sched`]) to trade batch amortisation for latency.
    /// Batching is unobservable in the report either way — it only
    /// controls how much work each detection call hands the pool.
    pub fn with_batch_capacity(mut self, capacity: usize) -> Self {
        self.batch_capacity = capacity.max(1);
        self
    }

    /// The shared index every lane reads.
    pub fn index(&self) -> &Arc<DetectionIndex> {
        &self.index
    }

    /// The TLDs with an open lane, sorted.
    pub fn tlds(&self) -> impl Iterator<Item = &str> {
        self.lanes.iter().map(|l| l.tld.as_str())
    }

    /// Index of the lane for `tld`, or the insertion point.
    fn lane_position(&self, tld: &str) -> Result<usize, usize> {
        self.lanes.binary_search_by(|lane| lane.tld.as_str().cmp(tld))
    }

    /// A fresh session configured like this router's lanes, with every
    /// reference diff applied so far replayed into it — a lane opened
    /// (or reopened) mid-feed sees the same reference view as one open
    /// from the start.
    fn open_session(&self, tld: &str) -> DetectorSession {
        let mut session = Self::make_session(
            &self.index,
            self.selection,
            self.indexing,
            self.compact_min_dead,
            tld,
        );
        for (added, removed) in &self.diff_history {
            session.apply_reference_diff(added, removed);
        }
        session
    }

    /// Whether a domain of `tld` may open a lane right now: always for
    /// an auto-opening router, and for a fixed lane set exactly when
    /// the TLD belongs to it (a folded/poisoned lane reopening).
    fn lane_permitted(&self, tld: &str) -> bool {
        self.auto_open
            || self.allowed.as_ref().is_some_and(|set| {
                set.binary_search_by(|t| t.as_str().cmp(tld)).is_ok()
            })
    }

    /// [`SessionRouter::open_session`] with the configuration passed
    /// explicitly, so callers holding disjoint borrows of the router
    /// (lane mutation during reopen) can still use it.
    fn make_session(
        index: &Arc<DetectionIndex>,
        selection: DbSelection,
        indexing: Indexing,
        compact_min_dead: Option<usize>,
        tld: &str,
    ) -> DetectorSession {
        let session = DetectorSession::new(Arc::clone(index), tld)
            .with_selection(selection)
            .with_indexing(indexing);
        match compact_min_dead {
            Some(min_dead) => session.with_compaction_threshold(min_dead),
            None => session,
        }
    }

    /// Routes one slice of the interleaved feed: each domain joins its
    /// TLD's lane (opened on first sight unless the lane set is fixed),
    /// and any lane whose buffer reaches capacity flushes as one batch.
    pub fn push_domains<'a>(&mut self, domains: impl IntoIterator<Item = &'a DomainName>) {
        // Adapt the flush trigger to the pool occupancy once per call
        // (never per domain — this is the 1M+ events/s hot path): an
        // idle pool flushes earlier for latency, a busy one amortises
        // full batches. Partitioning only — the report is identical at
        // any capacity (see `batching_is_unobservable`).
        let capacity = crate::sched::flush_capacity(self.batch_capacity);
        for domain in domains {
            let at = match self.lane_position(domain.tld()) {
                Ok(at) => at,
                Err(at) if self.lane_permitted(domain.tld()) => {
                    let tld = domain.tld().to_string();
                    let session = self.open_session(&tld);
                    self.lanes.insert(at, RouterLane { tld, session, pending: Vec::new() });
                    at
                }
                Err(_) => {
                    self.unrouted += 1;
                    continue;
                }
            };
            let lane = &mut self.lanes[at];
            lane.pending.push(domain.clone());
            if lane.pending.len() >= capacity {
                lane.session.push_domains(lane.pending.iter());
                lane.pending.clear();
            }
        }
    }

    /// Flushes every lane's pending registrations through its session.
    pub fn flush(&mut self) {
        for lane in &mut self.lanes {
            if !lane.pending.is_empty() {
                lane.session.push_domains(lane.pending.iter());
                lane.pending.clear();
            }
        }
    }

    /// Applies global reference churn to the whole fleet: pending
    /// registrations are flushed first (they were observed under the
    /// pre-diff list), then every lane's session takes the diff.
    pub fn apply_reference_diff(&mut self, added: &[String], removed: &[String]) {
        self.flush();
        for lane in &mut self.lanes {
            lane.session.apply_reference_diff(added, removed);
        }
        self.diff_history.push((added.to_vec(), removed.to_vec()));
        self.reference_diffs += 1;
    }

    /// Folds one lane: flushes its pending registrations, closes its
    /// session and banks the report, which report-time merging adds
    /// back into that TLD's aggregate. The ingest front-end evicts
    /// idle lanes this way; the next domain of the TLD (if permitted)
    /// reopens a fresh lane with the diff history replayed, so folding
    /// is unobservable in the final report. Returns `false` if no lane
    /// for `tld` is open.
    pub fn fold_lane(&mut self, tld: &str) -> bool {
        let Ok(at) = self.lane_position(tld) else { return false };
        let mut lane = self.lanes.remove(at);
        if !lane.pending.is_empty() {
            lane.session.push_domains(lane.pending.iter());
            lane.pending.clear();
        }
        self.folded.push(TldReport { tld: lane.tld, report: lane.session.into_report() });
        true
    }

    /// Poisons one lane after a worker panic: the pending buffer —
    /// whose fate inside the panicking flush is unknown — is
    /// *discarded* (its size is returned so the caller can account the
    /// loss), and whatever the session durably ingested before the
    /// panic is banked like a fold. Returns `None` if no lane for
    /// `tld` is open.
    pub fn poison_lane(&mut self, tld: &str) -> Option<usize> {
        let Ok(at) = self.lane_position(tld) else { return None };
        let lane = self.lanes.remove(at);
        let dropped = lane.pending.len();
        self.folded.push(TldReport { tld: lane.tld, report: lane.session.into_report() });
        Some(dropped)
    }

    /// Merges banked (folded/poisoned) lane reports with the live
    /// ones: grouped per TLD in sorted order, counts summed and
    /// detections concatenated in close-then-live order — the
    /// chronological event order for that TLD, hence identical to an
    /// unfolded run.
    fn merge_reports(folded: Vec<TldReport>, live: Vec<TldReport>) -> Vec<TldReport> {
        use std::collections::btree_map::Entry;
        let mut merged: std::collections::BTreeMap<String, FrameworkReport> =
            std::collections::BTreeMap::new();
        for part in folded.into_iter().chain(live) {
            match merged.entry(part.tld) {
                Entry::Vacant(slot) => {
                    slot.insert(part.report);
                }
                Entry::Occupied(mut slot) => {
                    let report = slot.get_mut();
                    report.total_domains += part.report.total_domains;
                    report.idn_count += part.report.idn_count;
                    report.detections.extend(part.report.detections);
                    report.exec.merge(&part.report.exec);
                }
            }
        }
        merged.into_iter().map(|(tld, report)| TldReport { tld, report }).collect()
    }

    /// Flushes and folds the current state into a [`RouterReport`]
    /// without ending the router.
    pub fn report(&mut self) -> RouterReport {
        self.flush();
        let live = self
            .lanes
            .iter()
            .map(|lane| TldReport { tld: lane.tld.clone(), report: lane.session.report() })
            .collect();
        RouterReport {
            per_tld: Self::merge_reports(self.folded.clone(), live),
            unrouted_domains: self.unrouted,
            reference_diffs: self.reference_diffs,
        }
    }

    /// Ends the router, yielding the final report without cloning the
    /// accumulated detections.
    pub fn into_report(mut self) -> RouterReport {
        self.flush();
        let live = self
            .lanes
            .into_iter()
            .map(|lane| TldReport { tld: lane.tld, report: lane.session.into_report() })
            .collect();
        RouterReport {
            per_tld: Self::merge_reports(self.folded, live),
            unrouted_domains: self.unrouted,
            reference_diffs: self.reference_diffs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::RefName;
    use sham_confusables::UcDatabase;
    use sham_glyph::SynthUnifont;
    use sham_simchar::{build, BuildConfig, HomoglyphDb, Repertoire};

    fn shared_index(refs: &[&str]) -> Arc<DetectionIndex> {
        let font = SynthUnifont::v12();
        let result = build(
            &font,
            &BuildConfig {
                repertoire: Repertoire::Blocks(vec![
                    "Basic Latin",
                    "Latin-1 Supplement",
                    "Cyrillic",
                ]),
                ..BuildConfig::default()
            },
        );
        DetectionIndex::shared(
            HomoglyphDb::new(result.db, UcDatabase::embedded()),
            refs.iter().map(|s| s.to_string()),
        )
    }

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).expect("test domain literal must parse")
    }

    #[test]
    fn routes_by_tld_and_reports_in_sorted_order() {
        let index = shared_index(&["google", "paypal"]);
        let mut router = SessionRouter::new(Arc::clone(&index)).with_batch_capacity(2);
        router.push_domains(&[
            name("xn--ggle-55da.net"), // gооgle under .net
            name("ordinary.com"),
            name("xn--pypal-4ve.org"), // pаypal under .org
            name("xn--ggle-55da.com"),
            name("benign.net"),
        ]);
        let report = router.into_report();
        let tlds: Vec<&str> = report.per_tld.iter().map(|t| t.tld.as_str()).collect();
        assert_eq!(tlds, ["com", "net", "org"]);
        assert_eq!(report.total_domains(), 5);
        assert_eq!(report.idn_count(), 3);
        assert_eq!(report.detection_count(), 3);
        assert_eq!(report.unrouted_domains, 0);
        // Per-lane counts see only that TLD's slice of the feed.
        assert_eq!(report.per_tld[0].report.total_domains, 2);
        assert_eq!(report.per_tld[1].report.total_domains, 2);
        assert_eq!(report.per_tld[2].report.total_domains, 1);
        // Every lane's detections hold handles on the one shared index.
        for d in report.detections() {
            assert!(RefName::ptr_eq(&d.reference, &index.reference(0))
                || RefName::ptr_eq(&d.reference, &index.reference(1)));
        }
    }

    #[test]
    fn fixed_lane_set_counts_unrouted_domains() {
        let index = shared_index(&["google"]);
        let mut router = SessionRouter::new(index).with_tlds(["com", "net"]);
        router.push_domains(&[
            name("xn--ggle-55da.com"),
            name("xn--ggle-55da.xyz"), // no lane: dropped, counted
            name("plain.net"),
        ]);
        let report = router.report();
        assert_eq!(report.per_tld.len(), 2);
        assert_eq!(report.unrouted_domains, 1);
        assert_eq!(report.total_domains(), 3);
        assert_eq!(report.detection_count(), 1);
    }

    #[test]
    fn global_reference_diff_reaches_every_lane() {
        let index = shared_index(&["google", "amazon"]);
        let mut router = SessionRouter::new(index);
        let com = name("xn--ggle-55da.com");
        let net = name("xn--ggle-55da.net");
        router.push_domains(&[com.clone(), net.clone()]);
        // Drop google fleet-wide; later lookalikes miss on every lane.
        router.apply_reference_diff(&[], &["google".to_string()]);
        router.push_domains(&[com, net]);
        let report = router.into_report();
        assert_eq!(report.reference_diffs, 1);
        assert_eq!(report.detection_count(), 2);
        for lane in &report.per_tld {
            assert_eq!(lane.report.detections.len(), 1, "{}", lane.tld);
        }
    }

    #[test]
    fn folding_and_reopening_is_unobservable() {
        let index = shared_index(&["google", "paypal"]);
        let feed: Vec<DomainName> = (0..30)
            .map(|i| match i % 3 {
                0 => name("xn--ggle-55da.com"),
                1 => name("xn--pypal-4ve.net"),
                _ => name("ordinary.com"),
            })
            .collect();
        let plain = {
            let mut router =
                SessionRouter::new(Arc::clone(&index)).with_batch_capacity(4);
            router.push_domains(&feed);
            router.into_report()
        };
        // Fold every open lane after each third of the feed; lanes
        // reopen on their next domain. The report must not notice.
        let mut router = SessionRouter::new(Arc::clone(&index)).with_batch_capacity(4);
        for (i, domain) in feed.iter().enumerate() {
            router.push_domains(std::iter::once(domain));
            if i % 10 == 9 {
                for tld in ["com", "net"] {
                    router.fold_lane(tld);
                }
            }
        }
        assert_eq!(router.into_report(), plain);
    }

    #[test]
    fn folded_lane_reopens_with_diff_history_replayed() {
        let index = shared_index(&["google", "paypal"]);
        let mut router = SessionRouter::new(index);
        router.push_domains(&[name("xn--ggle-55da.com")]);
        router.apply_reference_diff(&[], &["google".to_string()]);
        assert!(router.fold_lane("com"));
        assert!(!router.fold_lane("com"), "already folded");
        // The reopened lane must observe the pre-fold diff: google is
        // gone, so the same lookalike no longer detects.
        router.push_domains(&[name("xn--ggle-55da.com"), name("xn--pypal-4ve.com")]);
        let report = router.into_report();
        assert_eq!(report.per_tld.len(), 1);
        assert_eq!(report.per_tld[0].report.total_domains, 3);
        let targets: Vec<&str> =
            report.detections().map(|d| d.reference.as_ref()).collect();
        assert_eq!(targets, ["google", "paypal"], "pre-diff hit, then post-diff miss");
    }

    #[test]
    fn poisoned_lane_discards_pending_and_banks_the_rest() {
        let index = shared_index(&["google"]);
        let mut router = SessionRouter::new(Arc::clone(&index))
            .with_tlds(["com", "net"])
            .with_batch_capacity(100);
        // Two flushed (capacity never reached ⇒ flush explicitly),
        // then two stuck in the pending buffer a panic invalidated.
        router.push_domains(&[name("xn--ggle-55da.com"), name("ordinary.com")]);
        router.flush();
        router.push_domains(&[name("benign.com"), name("xn--ggle-55da.com")]);
        assert_eq!(router.poison_lane("com"), Some(2));
        assert_eq!(router.poison_lane("com"), None, "lane already closed");
        // The fixed lane set still permits .com, so the TLD reopens.
        router.push_domains(&[name("xn--ggle-55da.com"), name("foreign.xyz")]);
        let report = router.into_report();
        let com = &report.per_tld[0];
        assert_eq!(com.tld, "com");
        assert_eq!(com.report.total_domains, 3, "2 banked + 1 reopened, 2 dropped");
        assert_eq!(com.report.detections.len(), 2);
        assert_eq!(report.unrouted_domains, 1, ".xyz stays outside the fixed set");
    }

    #[test]
    fn batching_is_unobservable() {
        let index = shared_index(&["google", "paypal"]);
        let feed: Vec<DomainName> = (0..40)
            .map(|i| match i % 4 {
                0 => name("xn--ggle-55da.com"),
                1 => name("xn--pypal-4ve.net"),
                2 => name("ordinary.com"),
                _ => name("plain.net"),
            })
            .collect();
        let run = |capacity: usize| {
            let mut router =
                SessionRouter::new(Arc::clone(&index)).with_batch_capacity(capacity);
            for domain in &feed {
                router.push_domains(std::iter::once(domain));
            }
            router.into_report()
        };
        let single = run(1);
        assert_eq!(single.detection_count(), 20);
        for capacity in [3, 7, 1_024] {
            assert_eq!(run(capacity), single, "capacity {capacity} diverges");
        }
    }
}
