//! Per-TLD IDN registration policies (paper §2.1).
//!
//! ICANN's 2003 guidelines require registries to use an *inclusion-based*
//! approach: each TLD publishes an IANA IDN table listing exactly the
//! code points it permits. The paper's motivating observation is the
//! asymmetry this creates — `.jp` limits IDN to LDH + kana + a CJK subset
//! so `ácm.jp` cannot exist, while `.com` permits 97 blocks and therefore
//! admits homoglyphs from dozens of scripts.
//!
//! This module models that mechanism with representative tables for the
//! TLDs the paper names, and answers the question the attacker (and the
//! defender) asks: *which homographs of this label are registrable under
//! this TLD?*

use serde::{Deserialize, Serialize};
use sham_unicode::{block_of, is_pvalid, CodePoint};

/// An inclusion-based registry policy: a TLD plus the Unicode blocks its
/// IANA IDN table draws from. LDH characters are always permitted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdnTable {
    /// The TLD this table governs.
    pub tld: String,
    /// Permitted Unicode blocks (by published block name).
    pub blocks: Vec<String>,
}

impl IdnTable {
    /// The `.com` policy: effectively every PVALID script (the paper:
    /// "characters across 97 different Unicode blocks can be used").
    pub fn com() -> IdnTable {
        IdnTable {
            tld: "com".into(),
            blocks: sham_unicode::blocks::BLOCKS
                .iter()
                .map(|b| b.name.to_string())
                .collect(),
        }
    }

    /// The `.jp` policy (paper §2.1): LDH, Hiragana, Katakana and a CJK
    /// subset — no Latin-lookalike scripts at all.
    pub fn jp() -> IdnTable {
        IdnTable {
            tld: "jp".into(),
            blocks: vec![
                "Hiragana".into(),
                "Katakana".into(),
                "Katakana Phonetic Extensions".into(),
                "CJK Unified Ideographs".into(),
                "CJK Unified Ideographs Extension A".into(),
            ],
        }
    }

    /// A `.de`-style policy: Latin with the German/European additions.
    pub fn de() -> IdnTable {
        IdnTable {
            tld: "de".into(),
            blocks: vec![
                "Latin-1 Supplement".into(),
                "Latin Extended-A".into(),
                "Latin Extended-B".into(),
                "Latin Extended Additional".into(),
            ],
        }
    }

    /// The Cyrillic `рф` ccTLD (paper §7.1): Cyrillic only.
    pub fn rf() -> IdnTable {
        IdnTable {
            tld: "xn--p1ai".into(),
            blocks: vec!["Cyrillic".into(), "Cyrillic Supplement".into()],
        }
    }

    /// A Korean policy: Hangul plus CJK.
    pub fn kr() -> IdnTable {
        IdnTable {
            tld: "kr".into(),
            blocks: vec![
                "Hangul Syllables".into(),
                "Hangul Jamo".into(),
                "CJK Unified Ideographs".into(),
            ],
        }
    }

    /// All built-in tables.
    pub fn builtin() -> Vec<IdnTable> {
        vec![Self::com(), Self::jp(), Self::de(), Self::rf(), Self::kr()]
    }

    /// True when the single character may appear in a registered label
    /// under this TLD: either LDH, or PVALID inside a permitted block.
    pub fn permits_char(&self, c: char) -> bool {
        if sham_unicode::is_ldh(c) {
            return c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-';
        }
        let cp = CodePoint::from(c);
        if !is_pvalid(cp) {
            return false;
        }
        block_of(cp).is_some_and(|b| self.blocks.iter().any(|name| name == b.name))
    }

    /// True when the whole label is registrable under this TLD.
    pub fn permits_label(&self, label: &str) -> bool {
        !label.is_empty()
            && !label.starts_with('-')
            && !label.ends_with('-')
            && label.chars().all(|c| self.permits_char(c))
    }

    /// Filters homoglyph candidates for `c` down to the registrable ones.
    /// This is the per-TLD attack surface: under `.jp` the Latin letters
    /// have zero candidates, under `.com` dozens.
    pub fn registrable_homoglyphs(
        &self,
        db: &sham_simchar::HomoglyphDb,
        c: char,
    ) -> Vec<char> {
        db.homoglyphs_of(c as u32)
            .into_iter()
            .filter_map(char::from_u32)
            .filter(|&h| !h.is_ascii() && self.permits_char(h))
            .collect()
    }

    /// Counts the registrable single-substitution homographs of `label`
    /// under this TLD — the number the paper's §2.1 argument predicts to
    /// be large for `.com` and zero for a Latin label under `.jp`.
    pub fn homograph_surface(&self, db: &sham_simchar::HomoglyphDb, label: &str) -> usize {
        label
            .chars()
            .map(|c| self.registrable_homoglyphs(db, c).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_confusables::UcDatabase;
    use sham_glyph::SynthUnifont;
    use sham_simchar::{build, BuildConfig, HomoglyphDb, Repertoire};
    use std::sync::OnceLock;

    fn db() -> &'static HomoglyphDb {
        static DB: OnceLock<HomoglyphDb> = OnceLock::new();
        DB.get_or_init(|| {
            let font = SynthUnifont::v12();
            let result = build(
                &font,
                &BuildConfig {
                    repertoire: Repertoire::Blocks(vec![
                        "Basic Latin",
                        "Latin-1 Supplement",
                        "Cyrillic",
                        "Greek and Coptic",
                        "Katakana",
                        "CJK Unified Ideographs",
                    ]),
                    ..BuildConfig::default()
                },
            );
            HomoglyphDb::new(result.db, UcDatabase::embedded())
        })
    }

    #[test]
    fn jp_rejects_latin_homoglyph_labels() {
        let jp = IdnTable::jp();
        // The paper's exact claim: ácm.jp cannot be registered.
        assert!(!jp.permits_label("ácm"));
        assert!(!jp.permits_label("gооgle")); // Cyrillic о
        // Plain LDH and Japanese labels are fine.
        assert!(jp.permits_label("acm"));
        assert!(jp.permits_label("さくら"));
        assert!(jp.permits_label("工業大学"));
    }

    #[test]
    fn com_admits_what_jp_rejects() {
        let com = IdnTable::com();
        assert!(com.permits_label("ácm"));
        assert!(com.permits_label("gооgle"));
        assert!(com.permits_label("工業大学"));
    }

    #[test]
    fn rf_is_cyrillic_only() {
        let rf = IdnTable::rf();
        assert!(rf.permits_label("пример"));
        // LDH ASCII is always permitted at the protocol level.
        assert!(rf.permits_label("example"));
        assert!(rf.permits_label("abv123"));
        assert!(!rf.permits_label("日本")); // Han not in the table
        assert!(!rf.permits_label("münchen")); // Latin-1 not in the table
    }

    #[test]
    fn homograph_surface_matches_paper_asymmetry() {
        let db = db();
        let com = IdnTable::com();
        let jp = IdnTable::jp();
        let surface_com = com.homograph_surface(db, "google");
        let surface_jp = jp.homograph_surface(db, "google");
        assert!(surface_com > 10, "com surface = {surface_com}");
        assert_eq!(surface_jp, 0, "jp must offer no Latin homoglyphs");
        // But a Japanese brand IS attackable under both: 工 ↔ エ.
        let surface_jp_cjk = jp.homograph_surface(db, "工業大学");
        assert!(surface_jp_cjk >= 1, "jp CJK surface = {surface_jp_cjk}");
    }

    #[test]
    fn uppercase_never_registrable() {
        for table in IdnTable::builtin() {
            assert!(!table.permits_label("Google"), "{}", table.tld);
            assert!(!table.permits_label("-lead"), "{}", table.tld);
            assert!(!table.permits_label(""), "{}", table.tld);
        }
    }

    #[test]
    fn de_permits_exactly_latin_extensions() {
        let de = IdnTable::de();
        assert!(de.permits_label("münchen"));
        assert!(de.permits_label("straße"));
        assert!(!de.permits_label("gооgle")); // Cyrillic blocked
        assert!(!de.permits_label("さくら"));
    }
}
