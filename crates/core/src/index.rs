//! The shared immutable index layer.
//!
//! [`DetectionIndex`] bundles everything Algorithm 1 needs that is
//! *corpus-independent*: the homoglyph database with its flat pair
//! index (interner + rep table + CSR, built in `sham_simchar`) and the
//! reference-list side — a flat [`ReferenceSet`]. It is built once and
//! never mutated, so any number of per-TLD [`Framework`]s and
//! streaming [`DetectorSession`]s share one build behind an `Arc`
//! instead of each cloning `HomoglyphDb` (PR 3 made per-IDN detection
//! so cheap that those clones had become a dominant cost).
//!
//! The reference set uses the same interned-CSR idiom as the pair
//! index: a name-byte arena with an offset table (names are
//! [`RefName`] handles into it), a stem arena with an offset table,
//! and the two candidate indexes as **sorted runs** — `(closure_hash,
//! ref_idx)` pairs sorted by hash with a prefix-offset accelerator,
//! and length-grouped `ref_idx` runs behind a direct length-offset
//! table — instead of `HashMap<_, Vec<u32>>`. Flat arrays make the
//! set *mountable*: [`DetectionIndex::write_snapshot`] appends it to
//! the v3 pair-index snapshot as a reference section, and
//! [`DetectionIndex::from_snapshot`] restores it with one checksum
//! pass plus length-prefixed pointer fixups — no per-entry allocation
//! and no re-hashing, which is what makes a fleet of workers
//! cold-start in well under a millisecond instead of rebuilding 10k
//! references each (`detector_10k_refs` vs `detector_10k_refs_mount`
//! in BENCH_detection.json).
//!
//! Sessions that need reference-list churn take a copy-on-write clone
//! of the reference-set half only — the flat character index, by far
//! the larger structure, is never duplicated. Churn edits overlay the
//! flat base: additions index into small side maps, removals tombstone,
//! and compaction rebuilds the flat layout over the survivors.
//!
//! [`Framework`]: crate::Framework
//! [`DetectorSession`]: crate::DetectorSession

use crate::detection::RefName;
use sham_confusables::UcDatabase;
use sham_simchar::{FlatPairIndex, HomoglyphDb, SimCharDb};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// FNV-1a offset basis shared by [`closure_hash`] and
/// [`reference_digest`].
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over the union-find component representatives of a stem. Two
/// stems that match under Algorithm 1 have pairwise same-component
/// characters, so they hash identically — see the soundness argument
/// in [`crate::algorithm`]. Each representative is two array reads in
/// the flat interner; no per-character hashing.
pub(crate) fn closure_hash(db: &HomoglyphDb, stem: &[u32]) -> u64 {
    let mut h: u64 = FNV_OFFSET;
    for &cp in stem {
        h ^= u64::from(db.rep_of(cp));
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds `bytes` into a running FNV-1a state.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digest identifying a reference list: FNV-1a over the names in
/// order (length-prefixed, count-terminated, so list boundaries are
/// unambiguous). Recorded in the snapshot's reference section and
/// recomputed from an expected list to detect a *stale reference
/// list* the same way [`sham_simchar::SourceFingerprint`] detects a
/// stale font build or confusables revision.
pub fn reference_digest<'a>(names: impl IntoIterator<Item = &'a str>) -> u64 {
    let mut h = FNV_OFFSET;
    let mut count: u32 = 0;
    for name in names {
        h = fnv1a(h, &(name.len() as u32).to_le_bytes());
        h = fnv1a(h, name.as_bytes());
        count = count.wrapping_add(1);
    }
    fnv1a(h, &count.to_le_bytes())
}

/// Recorded digest and reference count of a serialized reference
/// section (its first two fields), without mounting it — what
/// `shamfinder index stat` prints.
pub fn reference_section_summary(section: &[u8]) -> io::Result<(u64, u32)> {
    let mut cur = Cursor { bytes: section, at: 0 };
    Ok((cur.u64("list digest")?, cur.u32("reference count")?))
}

/// The reference-list half of the detection index, in the flat
/// mount-friendly layout described in the [module docs](self):
/// name/stem arenas plus offset tables, and sorted candidate runs over
/// the *base* entries (`0..base_len`). Inside a [`DetectionIndex`]
/// every entry is a base entry and alive; a
/// [`DetectorSession`](crate::DetectorSession) applying reference
/// diffs edits its own clone incrementally — added references append
/// and index into the side maps, removed references tombstone (probes
/// filter on the alive bitmap), with no rebuild of the surviving
/// entries.
#[derive(Debug, Clone)]
pub struct ReferenceSet {
    /// Base name storage: one shared arena holding entries
    /// `0..name_offsets.len() - 1` back to back. Handles are
    /// materialised on demand ([`ReferenceSet::name`]) — a mount never
    /// allocates or reference-counts 10k `RefName`s up front.
    name_arena: Arc<str>,
    /// Entry `i`'s name is `name_arena[name_offsets[i]..name_offsets[i + 1]]`
    /// while `i < name_offsets.len() - 1`.
    name_offsets: Vec<u32>,
    /// Names of entries past the arena (session-appended, or survivors
    /// of a [`ReferenceSet::flatten`]), each an arena handle of its
    /// own.
    owned_names: Vec<RefName>,
    /// All stems' code points, concatenated.
    stem_arena: Vec<u32>,
    /// Entry `i`'s stem is `stem_arena[stem_offsets[i]..stem_offsets[i + 1]]`.
    stem_offsets: Vec<u32>,
    /// Closure hash of each stem, kept so removal needs no re-hash.
    hashes: Vec<u64>,
    /// False for references removed by a session diff.
    alive: Vec<bool>,
    /// Number of alive references.
    live: usize,
    /// Entries `0..base_len` are covered by the sorted runs below;
    /// later (session-appended) entries live in the side maps.
    base_len: u32,
    /// Sorted closure-run keys, parallel to `closure_refs`: the
    /// `(closure_hash, ref_idx)` pairs in ascending order.
    closure_keys: Vec<u64>,
    /// Reference index of each closure-run entry.
    closure_refs: Vec<u32>,
    /// Hash-prefix accelerator: bucket `p` (the top bits of the hash)
    /// covers `closure_keys[closure_prefix[p]..closure_prefix[p + 1]]`.
    /// Derived, never serialized — one counting pass at mount.
    closure_prefix: Vec<u32>,
    /// How far a hash is shifted right to get its prefix bucket.
    closure_shift: u32,
    /// Stems of length `l` are `len_refs[len_offsets[l]..len_offsets[l + 1]]`
    /// (ascending index); lengths past the table are empty.
    len_offsets: Vec<u32>,
    /// Length-grouped reference indices.
    len_refs: Vec<u32>,
    /// Closure-hash side map for session-appended entries.
    extra_closure: HashMap<u64, Vec<u32>>,
    /// Length side map for session-appended entries.
    extra_len: HashMap<usize, Vec<u32>>,
    /// Name → indices, built lazily on the first removal so heavy-churn
    /// sessions don't pay a linear scan per removed name — and never
    /// built at all on the construction/mount fast paths.
    name_map: Option<HashMap<String, Vec<u32>>>,
}

impl ReferenceSet {
    fn empty() -> ReferenceSet {
        ReferenceSet {
            name_arena: Arc::from(""),
            name_offsets: vec![0],
            owned_names: Vec::new(),
            stem_arena: Vec::new(),
            stem_offsets: vec![0],
            hashes: Vec::new(),
            alive: Vec::new(),
            live: 0,
            base_len: 0,
            closure_keys: Vec::new(),
            closure_refs: Vec::new(),
            closure_prefix: Vec::new(),
            closure_shift: 63,
            len_offsets: Vec::new(),
            len_refs: Vec::new(),
            extra_closure: HashMap::new(),
            extra_len: HashMap::new(),
            name_map: None,
        }
    }

    /// Builds the set over `references` in order: one arena pass
    /// (names concatenated into one shared allocation, not one `Arc`
    /// each), then one sort per candidate index — no per-reference map
    /// insertions.
    pub fn build(db: &HomoglyphDb, references: impl IntoIterator<Item = String>) -> ReferenceSet {
        let mut set = ReferenceSet::empty();
        let mut arena = String::new();
        for name in references {
            let start = set.stem_arena.len();
            set.stem_arena.extend(name.chars().map(|c| c as u32));
            set.hashes.push(closure_hash(db, &set.stem_arena[start..]));
            set.stem_offsets.push(set.stem_arena.len() as u32);
            arena.push_str(&name);
            set.name_offsets.push(arena.len() as u32);
        }
        set.name_arena = Arc::from(arena);
        let n = set.name_offsets.len() - 1;
        set.alive = vec![true; n];
        set.live = n;
        set.base_len = n as u32;
        set.rebuild_base_indexes();
        set
    }

    /// Recomputes the sorted candidate runs over `0..base_len`
    /// (assumed to be every entry). Sorting by `(hash, idx)` keeps
    /// same-hash candidates in ascending-index order — the insertion
    /// order the bucket maps used to preserve, so detections are
    /// emitted identically.
    fn rebuild_base_indexes(&mut self) {
        let n = self.base_len as usize;
        debug_assert_eq!(n, self.total());
        let mut pairs: Vec<(u64, u32)> =
            self.hashes.iter().enumerate().map(|(i, &h)| (h, i as u32)).collect();
        pairs.sort_unstable();
        self.closure_keys = pairs.iter().map(|&(k, _)| k).collect();
        self.closure_refs = pairs.iter().map(|&(_, i)| i).collect();
        self.rebuild_closure_prefix();

        // Length runs by counting sort — naturally ascending-index
        // within each length bucket.
        let max_len = (0..n).map(|i| self.stem_len(i)).max().unwrap_or(0);
        let mut offsets = vec![0u32; max_len + 2];
        for i in 0..n {
            offsets[self.stem_len(i) + 1] += 1;
        }
        for l in 0..max_len + 1 {
            offsets[l + 1] += offsets[l];
        }
        let mut refs = vec![0u32; n];
        let mut cursor = offsets.clone();
        for i in 0..n {
            let l = self.stem_len(i);
            refs[cursor[l] as usize] = i as u32;
            cursor[l] += 1;
        }
        self.len_offsets = offsets;
        self.len_refs = refs;
    }

    /// Rebuilds the hash-prefix offset table over the (sorted)
    /// closure-run keys: one counting pass, two flat allocations —
    /// the only index work a snapshot mount performs. Probes then
    /// narrow to a near-singleton key range with two array reads
    /// instead of a full binary search (or a SipHash map probe).
    fn rebuild_closure_prefix(&mut self) {
        let n = self.closure_keys.len();
        // ~2 expected entries per bucket, capped at 64k buckets.
        let bits = ((n.max(2) - 1).ilog2() + 1).min(16);
        let shift = 64 - bits;
        let buckets = 1usize << bits;
        let mut prefix = vec![0u32; buckets + 1];
        for &k in &self.closure_keys {
            prefix[((k >> shift) as usize) + 1] += 1;
        }
        for b in 0..buckets {
            prefix[b + 1] += prefix[b];
        }
        self.closure_shift = shift;
        self.closure_prefix = prefix;
    }

    /// Appends one reference, indexing it in the side maps. O(1)
    /// amortised — the sorted base runs are untouched.
    pub(crate) fn add(&mut self, db: &HomoglyphDb, name: &str) {
        let idx = self.total() as u32;
        let start = self.stem_arena.len();
        self.stem_arena.extend(name.chars().map(|c| c as u32));
        let hash = closure_hash(db, &self.stem_arena[start..]);
        let len = self.stem_arena.len() - start;
        self.stem_offsets.push(self.stem_arena.len() as u32);
        self.hashes.push(hash);
        self.extra_closure.entry(hash).or_default().push(idx);
        self.extra_len.entry(len).or_default().push(idx);
        if let Some(map) = &mut self.name_map {
            map.entry(name.to_string()).or_default().push(idx);
        }
        self.owned_names.push(RefName::new(name));
        self.alive.push(true);
        self.live += 1;
    }

    /// Removes every reference named `name` (duplicates included) by
    /// tombstoning it, returning how many were removed. Candidate
    /// probes filter on the alive bitmap, so no run or side map is
    /// edited. The first removal builds the name→indices map (one
    /// pass); every later removal — the heavy-churn steady state — is
    /// a single map probe instead of a scan over all names.
    pub(crate) fn remove(&mut self, name: &str) -> usize {
        let arena_count = self.name_offsets.len() - 1;
        let (name_arena, name_offsets, owned) =
            (&self.name_arena, &self.name_offsets, &self.owned_names);
        let map = self.name_map.get_or_insert_with(|| {
            let mut map: HashMap<String, Vec<u32>> =
                HashMap::with_capacity(arena_count + owned.len());
            for i in 0..arena_count + owned.len() {
                let n = if i < arena_count {
                    &name_arena[name_offsets[i] as usize..name_offsets[i + 1] as usize]
                } else {
                    owned[i - arena_count].as_str()
                };
                map.entry(n.to_string()).or_default().push(i as u32);
            }
            map
        });
        let mut removed = 0;
        for &i in map.get(name).map(Vec::as_slice).unwrap_or(&[]) {
            if self.alive[i as usize] {
                self.alive[i as usize] = false;
                removed += 1;
            }
        }
        self.live -= removed;
        removed
    }

    /// Number of alive references.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Total number of entries, tombstoned ones included.
    pub(crate) fn total(&self) -> usize {
        self.alive.len()
    }

    /// Number of tombstoned entries still occupying table slots.
    pub(crate) fn dead_count(&self) -> usize {
        self.total() - self.live
    }

    /// True when every entry is alive and covered by the sorted base
    /// runs — the canonical layout snapshots are written from.
    fn is_flat(&self) -> bool {
        self.dead_count() == 0 && self.base_len as usize == self.total()
    }

    /// Rebuilds the flat layout over the surviving references, in their
    /// original relative order: arenas re-laid-out densely, side maps
    /// absorbed into fresh sorted base runs, tombstones dropped. The
    /// surviving [`RefName`] handles are *cloned* (arena handle
    /// copies), so detections already emitted stay valid and still
    /// share storage with the rebuilt set.
    fn flatten(&mut self) {
        let mut names = Vec::with_capacity(self.live);
        let mut stem_offsets = Vec::with_capacity(self.live + 1);
        stem_offsets.push(0u32);
        let mut stem_arena = Vec::new();
        let mut hashes = Vec::with_capacity(self.live);
        for i in 0..self.total() {
            if !self.alive[i] {
                continue;
            }
            names.push(self.name(i as u32));
            let (lo, hi) =
                (self.stem_offsets[i] as usize, self.stem_offsets[i + 1] as usize);
            stem_arena.extend_from_slice(&self.stem_arena[lo..hi]);
            stem_offsets.push(stem_arena.len() as u32);
            hashes.push(self.hashes[i]);
        }
        // Survivors keep their existing arena handles (the old shared
        // arena stays alive through them); the rebuilt set has no base
        // arena of its own until the next serialization re-lays one.
        self.name_arena = Arc::from("");
        self.name_offsets = vec![0];
        self.owned_names = names;
        self.stem_arena = stem_arena;
        self.stem_offsets = stem_offsets;
        self.hashes = hashes;
        self.live = self.owned_names.len();
        self.alive = vec![true; self.live];
        self.base_len = self.live as u32;
        self.extra_closure = HashMap::new();
        self.extra_len = HashMap::new();
        self.name_map = None;
        self.rebuild_base_indexes();
    }

    /// Drops tombstoned entries by rebuilding the flat layout
    /// ([`ReferenceSet::flatten`]); a fully-alive set is left alone. A
    /// long-lived session with heavy reference churn calls this when
    /// the dead fraction passes its threshold, bounding the otherwise
    /// ever-growing arenas.
    pub(crate) fn compact(&mut self) {
        if self.dead_count() == 0 {
            return;
        }
        self.flatten();
    }

    /// Whether reference `idx` is alive (not removed by a diff).
    #[inline]
    pub(crate) fn is_alive(&self, idx: u32) -> bool {
        self.alive[idx as usize]
    }

    /// All alive reference indices — the `Naive` strategy's candidate
    /// set.
    pub(crate) fn all_indices(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.total() as u32).filter(|&i| self.is_alive(i))
    }

    /// The base-run range holding closure hash `h`: two prefix-table
    /// reads narrow to a near-singleton key range, then a binary
    /// search inside it (usually over 0–2 entries) pins the bounds.
    fn closure_base_range(&self, h: u64) -> std::ops::Range<usize> {
        if self.closure_prefix.is_empty() {
            return 0..0;
        }
        let p = (h >> self.closure_shift) as usize;
        let (lo, hi) = (self.closure_prefix[p] as usize, self.closure_prefix[p + 1] as usize);
        let keys = &self.closure_keys[lo..hi];
        let start = lo + keys.partition_point(|&k| k < h);
        let end = lo + keys.partition_point(|&k| k <= h);
        start..end
    }

    /// Alive candidate indices whose stems share closure hash `h`, in
    /// ascending index order (base run first, then session-appended
    /// entries — which always carry larger indices).
    #[inline]
    pub(crate) fn closure_candidates(&self, h: u64) -> impl Iterator<Item = u32> + '_ {
        self.closure_refs[self.closure_base_range(h)]
            .iter()
            .copied()
            .chain(self.extra_closure.get(&h).into_iter().flatten().copied())
            .filter(move |&i| self.alive[i as usize])
    }

    /// Alive candidate indices whose stems have length `len`, in
    /// ascending index order.
    #[inline]
    pub(crate) fn len_candidates(&self, len: usize) -> impl Iterator<Item = u32> + '_ {
        let base = if len + 1 < self.len_offsets.len() {
            self.len_offsets[len] as usize..self.len_offsets[len + 1] as usize
        } else {
            0..0
        };
        self.len_refs[base]
            .iter()
            .copied()
            .chain(self.extra_len.get(&len).into_iter().flatten().copied())
            .filter(move |&i| self.alive[i as usize])
    }

    /// Entry `idx`'s interned stem.
    #[inline]
    pub(crate) fn stem(&self, idx: u32) -> &[u32] {
        let (lo, hi) = (
            self.stem_offsets[idx as usize] as usize,
            self.stem_offsets[idx as usize + 1] as usize,
        );
        &self.stem_arena[lo..hi]
    }

    /// Stem length of entry `i`.
    #[inline]
    fn stem_len(&self, i: usize) -> usize {
        (self.stem_offsets[i + 1] - self.stem_offsets[i]) as usize
    }

    /// Entry `idx`'s name handle, materialised on demand: an arena
    /// slice handle for base entries, a clone of the owned handle
    /// otherwise — one `Arc` count bump either way, no string copy.
    #[inline]
    pub(crate) fn name(&self, idx: u32) -> RefName {
        let i = idx as usize;
        let arena_count = self.name_offsets.len() - 1;
        if i < arena_count {
            RefName::slice_of(&self.name_arena, self.name_offsets[i], self.name_offsets[i + 1])
        } else {
            self.owned_names[i - arena_count].clone()
        }
    }

    /// Entry `idx`'s name as a plain borrow — for digesting,
    /// serializing and map building, where no handle is needed.
    fn name_str(&self, idx: usize) -> &str {
        let arena_count = self.name_offsets.len() - 1;
        if idx < arena_count {
            &self.name_arena[self.name_offsets[idx] as usize..self.name_offsets[idx + 1] as usize]
        } else {
            self.owned_names[idx - arena_count].as_str()
        }
    }

    /// Serializes the set into the v3 snapshot's reference section:
    /// the list digest, then the name arena, stem arena, hashes and
    /// both sorted candidate runs as length-derivable flat arrays (see
    /// the format table in `docs/ARCHITECTURE.md`). The write is
    /// canonical — a non-flat set (tombstones or session-appended
    /// entries) is flattened into a temporary first, so a mount never
    /// sees overlay state.
    pub(crate) fn to_section_bytes(&self) -> Vec<u8> {
        if !self.is_flat() {
            let mut flat = self.clone();
            flat.flatten();
            return flat.to_section_bytes();
        }
        let n = self.total();
        // A set whose names all live in the base arena (built or
        // mounted, never churned) serializes that arena as is; only
        // owned names force a re-lay.
        let mut laid: Option<(Vec<u32>, String)> = None;
        let (name_offsets, arena): (&[u32], &str) = if self.owned_names.is_empty() {
            (&self.name_offsets, &self.name_arena)
        } else {
            let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
            let mut arena = String::new();
            offsets.push(0);
            for i in 0..n {
                arena.push_str(self.name_str(i));
                offsets.push(arena.len() as u32);
            }
            let (offsets, arena) = laid.insert((offsets, arena));
            (offsets, arena)
        };
        let digest = reference_digest((0..n).map(|i| self.name_str(i)));

        let push_u32s = |out: &mut Vec<u8>, vals: &[u32]| {
            for &v in vals {
                out.extend_from_slice(&v.to_le_bytes());
            }
        };
        let push_u64s = |out: &mut Vec<u8>, vals: &[u64]| {
            for &v in vals {
                out.extend_from_slice(&v.to_le_bytes());
            }
        };
        let mut out = Vec::with_capacity(
            8 + 4
                + 4 * (name_offsets.len() + self.stem_offsets.len() + 3)
                + arena.len()
                + 4 * (self.stem_arena.len() + self.closure_refs.len())
                + 8 * (self.hashes.len() + self.closure_keys.len())
                + 4 * (self.len_offsets.len() + self.len_refs.len()),
        );
        out.extend_from_slice(&digest.to_le_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        push_u32s(&mut out, name_offsets);
        out.extend_from_slice(&(arena.len() as u32).to_le_bytes());
        out.extend_from_slice(arena.as_bytes());
        push_u32s(&mut out, &self.stem_offsets);
        out.extend_from_slice(&(self.stem_arena.len() as u32).to_le_bytes());
        push_u32s(&mut out, &self.stem_arena);
        push_u64s(&mut out, &self.hashes);
        push_u64s(&mut out, &self.closure_keys);
        push_u32s(&mut out, &self.closure_refs);
        out.extend_from_slice(&(self.len_offsets.len() as u32).to_le_bytes());
        push_u32s(&mut out, &self.len_offsets);
        push_u32s(&mut out, &self.len_refs);
        out
    }

    /// Mounts a reference section written by
    /// [`ReferenceSet::to_section_bytes`], returning the set and the
    /// recorded list digest. The section's checksum was already
    /// verified by the snapshot framing; this parses the flat arrays
    /// (pointer fixups, one `Arc` for the whole name arena — no
    /// per-entry allocation, no re-hashing) and structurally validates
    /// them, naming the offending subsection on rejection, so a
    /// corrupted-but-checksummed section can never panic detection
    /// later.
    pub(crate) fn from_section_bytes(bytes: &[u8]) -> io::Result<(ReferenceSet, u64)> {
        let bad = |msg: &str| {
            io::Error::new(io::ErrorKind::InvalidData, format!("reference section: {msg}"))
        };
        let mut cur = Cursor { bytes, at: 0 };
        let digest = cur.u64("list digest")?;
        let n = cur.u32("reference count")? as usize;
        let name_offsets = cur.u32s(n + 1, "name offsets")?;
        let arena_len = cur.u32("name arena")? as usize;
        let arena_bytes = cur.take(arena_len, "name arena")?;
        let stem_offsets = cur.u32s(n + 1, "stem offsets")?;
        let stem_total = cur.u32("stem arena")? as usize;
        let stem_arena = cur.u32s(stem_total, "stem arena")?;
        let hashes = cur.u64s(n, "closure hashes")?;
        let closure_keys = cur.u64s(n, "closure runs")?;
        let closure_refs = cur.u32s(n, "closure runs")?;
        let len_offsets_len = cur.u32("length runs")? as usize;
        let len_offsets = cur.u32s(len_offsets_len, "length runs")?;
        let len_refs = cur.u32s(n, "length runs")?;
        if cur.at != bytes.len() {
            return Err(bad("trailing bytes after the last section"));
        }
        // Name arena: valid UTF-8, offsets monotone within it and on
        // char boundaries — then ONE allocation backs every name.
        let arena_str = std::str::from_utf8(arena_bytes)
            .map_err(|_| bad("`name arena` section is not valid UTF-8"))?;
        if name_offsets.first() != Some(&0)
            || name_offsets.windows(2).any(|w| w[0] > w[1])
            || name_offsets.last().copied() != Some(arena_len as u32)
            || name_offsets.iter().any(|&o| !arena_str.is_char_boundary(o as usize))
        {
            return Err(bad("inconsistent `name offsets` section"));
        }
        if stem_offsets.first() != Some(&0)
            || stem_offsets.windows(2).any(|w| w[0] > w[1])
            || stem_offsets.last().copied() != Some(stem_arena.len() as u32)
        {
            return Err(bad("inconsistent `stem offsets` section"));
        }
        let stem_len =
            |i: usize| (stem_offsets[i + 1] - stem_offsets[i]) as usize;
        // Closure runs: strictly increasing `(key, idx)` pairs whose
        // key matches the entry's recorded hash. Strict order plus the
        // hash tie makes the run a permutation of `0..n` — every entry
        // probed exactly once.
        for j in 0..n {
            let (k, i) = (closure_keys[j], closure_refs[j]);
            if i as usize >= n || hashes[i as usize] != k {
                return Err(bad("inconsistent `closure runs` section"));
            }
            if j > 0 && (closure_keys[j - 1], closure_refs[j - 1]) >= (k, i) {
                return Err(bad("unsorted `closure runs` section"));
            }
        }
        // Length runs: a monotone offset table over ascending-index
        // buckets whose entries actually have that stem length (which
        // likewise forces a permutation).
        if len_offsets.first() != Some(&0)
            || len_offsets.windows(2).any(|w| w[0] > w[1])
            || len_offsets.last().copied() != Some(n as u32)
        {
            return Err(bad("inconsistent `length runs` section"));
        }
        for l in 0..len_offsets.len().saturating_sub(1) {
            let (lo, hi) = (len_offsets[l] as usize, len_offsets[l + 1] as usize);
            for j in lo..hi {
                let i = len_refs[j] as usize;
                if i >= n || stem_len(i) != l || (j > lo && len_refs[j - 1] >= len_refs[j]) {
                    return Err(bad("inconsistent `length runs` section"));
                }
            }
        }

        let mut set = ReferenceSet {
            name_arena: Arc::from(arena_str),
            name_offsets,
            owned_names: Vec::new(),
            stem_arena,
            stem_offsets,
            hashes,
            alive: vec![true; n],
            live: n,
            base_len: n as u32,
            closure_keys,
            closure_refs,
            closure_prefix: Vec::new(),
            closure_shift: 63,
            len_offsets,
            len_refs,
            extra_closure: HashMap::new(),
            extra_len: HashMap::new(),
            name_map: None,
        };
        set.rebuild_closure_prefix();
        Ok((set, digest))
    }
}

/// Bounds-checked little-endian reader over a reference section.
/// Every rejection names the subsection it was reading, and every
/// allocation is sized from bytes actually present — a forged count on
/// a short section is a truncation error, not an OOM.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, count: usize, what: &str) -> io::Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(count)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("reference section: truncated `{what}` section"),
                )
            })?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u32(&mut self, what: &str) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn u32s(&mut self, count: usize, what: &str) -> io::Result<Vec<u32>> {
        Ok(self
            .take(count * 4, what)?
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
            .collect())
    }

    fn u64s(&mut self, count: usize, what: &str) -> io::Result<Vec<u64>> {
        Ok(self
            .take(count * 8, what)?
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
            .collect())
    }
}

/// The immutable index layer: one homoglyph database (with its flat
/// pair index) plus one fully-indexed reference list. Build it once
/// with [`DetectionIndex::shared`] — or mount it in microseconds with
/// [`DetectionIndex::from_snapshot_file`] — and hand the `Arc` to
/// every [`Framework`](crate::Framework), [`Detector`](crate::Detector)
/// and [`DetectorSession`](crate::DetectorSession) that scores against
/// the same references — nothing here is ever mutated after
/// construction.
#[derive(Debug)]
pub struct DetectionIndex {
    db: HomoglyphDb,
    refs: ReferenceSet,
}

impl DetectionIndex {
    /// Builds the index for `references` (TLD-stripped ASCII stems,
    /// e.g. `"google"`).
    pub fn new(db: HomoglyphDb, references: impl IntoIterator<Item = String>) -> Self {
        let refs = ReferenceSet::build(&db, references);
        DetectionIndex { db, refs }
    }

    /// [`DetectionIndex::new`] wrapped for sharing: the form every
    /// multi-pipeline deployment wants.
    pub fn shared(
        db: HomoglyphDb,
        references: impl IntoIterator<Item = String>,
    ) -> Arc<Self> {
        Arc::new(DetectionIndex::new(db, references))
    }

    /// The underlying homoglyph database.
    pub fn db(&self) -> &HomoglyphDb {
        &self.db
    }

    /// Number of references in the index.
    pub fn reference_count(&self) -> usize {
        self.refs.total()
    }

    /// Reference `idx`'s name handle (insertion order), materialised
    /// on demand — the index holds one shared name arena, not a
    /// handle per entry.
    pub fn reference(&self, idx: usize) -> RefName {
        self.refs.name(idx as u32)
    }

    /// The indexed reference set.
    pub(crate) fn refs(&self) -> &ReferenceSet {
        &self.refs
    }

    /// Digest of the current reference list — the identity recorded in
    /// snapshots and compared by [`DetectionIndex::expect_references`].
    pub fn reference_digest(&self) -> u64 {
        reference_digest((0..self.refs.total()).map(|i| self.refs.name_str(i)))
    }

    /// Writes the whole index — pair index *and* reference set — as
    /// one v3 snapshot: the flat reference layout becomes the file's
    /// reference section, keyed by the same source fingerprint. The
    /// file also loads as a plain pair-index snapshot
    /// ([`sham_simchar::HomoglyphDb::from_snapshot_file`] ignores the
    /// section).
    pub fn write_snapshot(&self, writer: &mut impl Write) -> io::Result<()> {
        let section = self.refs.to_section_bytes();
        self.db.flat().write_with_section(writer, Some(&section))
    }

    /// [`DetectionIndex::write_snapshot`] to a file, rejections
    /// prefixed with the path.
    pub fn write_snapshot_file(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let path = path.as_ref();
        let named =
            |e: io::Error| io::Error::new(e.kind(), format!("{}: {e}", path.display()));
        let file = std::fs::File::create(path).map_err(named)?;
        let mut writer = io::BufWriter::new(file);
        self.write_snapshot(&mut writer).map_err(named)?;
        writer.into_inner().map_err(|e| named(e.into_error()))?.sync_all().map_err(named)
    }

    /// Cold-starts a full detection index from a v3 snapshot: one
    /// checksum pass over each half, the pair index's flat arrays
    /// restored as in [`sham_simchar::HomoglyphDb::from_snapshot_file`],
    /// and the reference set mounted with pointer fixups only — no
    /// per-reference allocation, no re-hashing, no sorting. The
    /// snapshot's source fingerprint is verified against the supplied
    /// databases first (rejecting stale font builds / confusables
    /// revisions by name); use [`DetectionIndex::expect_references`]
    /// to additionally pin the reference list.
    pub fn from_snapshot(
        reader: &mut impl Read,
        simchar: impl Into<Arc<SimCharDb>>,
        uc: impl Into<Arc<UcDatabase>>,
    ) -> io::Result<DetectionIndex> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        DetectionIndex::from_snapshot_bytes(&bytes, simchar, uc)
    }

    /// [`DetectionIndex::from_snapshot`] over an in-memory snapshot —
    /// the zero-copy mount path every other mount entry point funnels
    /// through. Both halves are checksummed and parsed directly from
    /// sub-slices of `bytes`
    /// ([`sham_simchar::FlatPairIndex::read_with_section_bytes`]), so
    /// the only allocations are the mounted arrays themselves.
    pub fn from_snapshot_bytes(
        bytes: &[u8],
        simchar: impl Into<Arc<SimCharDb>>,
        uc: impl Into<Arc<UcDatabase>>,
    ) -> io::Result<DetectionIndex> {
        let (flat, section) = FlatPairIndex::read_with_section_bytes(bytes)?;
        let Some(section) = section else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "snapshot has no reference section (a pair-only file): rebuild it \
                 with `shamfinder index build --with-refs`",
            ));
        };
        let db = HomoglyphDb::from_prebuilt(simchar, uc, flat)?;
        let (refs, _digest) = ReferenceSet::from_section_bytes(section)?;
        Ok(DetectionIndex { db, refs })
    }

    /// [`DetectionIndex::from_snapshot`] over a file on disk,
    /// rejections prefixed with the path.
    pub fn from_snapshot_file(
        path: impl AsRef<std::path::Path>,
        simchar: impl Into<Arc<SimCharDb>>,
        uc: impl Into<Arc<UcDatabase>>,
    ) -> io::Result<DetectionIndex> {
        let path = path.as_ref();
        let named =
            |e: io::Error| io::Error::new(e.kind(), format!("{}: {e}", path.display()));
        let bytes = std::fs::read(path).map_err(named)?;
        DetectionIndex::from_snapshot_bytes(&bytes, simchar, uc).map_err(named)
    }

    /// Verifies the mounted reference list against the list the
    /// deployment expects, completing the three-way staleness check
    /// (font build and confusables revision are covered by the source
    /// fingerprint at mount): a mismatch is rejected naming the
    /// *reference list* as the stale half.
    pub fn expect_references<'a>(
        &self,
        expected: impl IntoIterator<Item = &'a str>,
    ) -> io::Result<()> {
        let mounted = self.reference_digest();
        let want = reference_digest(expected);
        if mounted != want {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "stale reference section: mounted reference-list digest \
                     {mounted:#018x} does not match the supplied list's digest \
                     {want:#018x} — mismatched: reference list. Rebuild the \
                     snapshot with `shamfinder index build --with-refs`."
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_confusables::UcDatabase;
    use sham_simchar::SimCharDb;

    fn db() -> HomoglyphDb {
        use sham_simchar::Pair;
        HomoglyphDb::new(
            SimCharDb::from_pairs(vec![Pair { a: 'o' as u32, b: 0x043E, delta: 1 }], 4),
            UcDatabase::from_mappings(Vec::new()),
        )
    }

    fn closure_of(set: &ReferenceSet, h: u64) -> Vec<u32> {
        set.closure_candidates(h).collect()
    }

    fn len_of(set: &ReferenceSet, len: usize) -> Vec<u32> {
        set.len_candidates(len).collect()
    }

    fn all_names(set: &ReferenceSet) -> Vec<String> {
        (0..set.total()).map(|i| set.name_str(i).to_string()).collect()
    }

    #[test]
    fn add_then_remove_round_trips_the_candidates() {
        let db = db();
        let mut set =
            ReferenceSet::build(&db, ["goo".to_string(), "foo".to_string(), "goo".to_string()]);
        assert_eq!(set.live_count(), 3);
        assert_eq!(len_of(&set, 3).len(), 3);

        // Removing a duplicated name tombstones every occurrence.
        assert_eq!(set.remove("goo"), 2);
        assert_eq!(set.live_count(), 1);
        assert_eq!(len_of(&set, 3), vec![1]);
        assert!(!set.is_alive(0) && set.is_alive(1) && !set.is_alive(2));
        assert_eq!(set.remove("goo"), 0); // already gone
        assert_eq!(set.remove("absent"), 0);

        // Re-adding after removal indexes the new entry normally.
        set.add(&db, "goo");
        assert_eq!(set.live_count(), 2);
        assert_eq!(len_of(&set, 3), vec![1, 3]);
        assert_eq!(set.all_indices().collect::<Vec<_>>(), vec![1, 3]);
        // And the lazily-built name map tracked the new entry: another
        // removal finds it without a scan.
        assert_eq!(set.remove("goo"), 1);
        assert_eq!(len_of(&set, 3), vec![1]);
    }

    #[test]
    fn compaction_drops_tombstones_and_preserves_name_handles() {
        let db = db();
        let mut set = ReferenceSet::build(
            &db,
            ["goo".to_string(), "foo".to_string(), "bar".to_string(), "goo".to_string()],
        );
        let foo_handle = set.name(1);
        set.remove("goo");
        set.remove("bar");
        assert_eq!(set.dead_count(), 3);

        set.compact();
        assert_eq!(set.dead_count(), 0);
        assert_eq!(set.live_count(), 1);
        assert_eq!(set.total(), 1);
        // The surviving name is the same allocation, not a copy.
        assert!(RefName::ptr_eq(&set.name(0), &foo_handle));
        // Candidate runs were re-indexed over the dense layout.
        assert_eq!(len_of(&set, 3), vec![0]);
        assert_eq!(set.all_indices().collect::<Vec<_>>(), vec![0]);
        let stem: Vec<u32> = "foo".chars().map(|c| c as u32).collect();
        assert_eq!(closure_of(&set, closure_hash(&db, &stem)), vec![0]);

        // Add-after-compact keeps working (fresh dense indices).
        set.add(&db, "goo");
        assert_eq!(set.live_count(), 2);
        assert_eq!(len_of(&set, 3), vec![0, 1]);
        // Compacting a fully-alive set is a no-op.
        set.compact();
        assert_eq!(set.live_count(), 2);
    }

    #[test]
    fn closure_candidates_group_same_component_stems() {
        let db = db();
        let set = ReferenceSet::build(&db, ["oo".to_string(), "xx".to_string()]);
        // Cyrillic оо shares o's component, so it hashes into oo's bucket.
        let spoof: Vec<u32> = "оо".chars().map(|c| c as u32).collect();
        let h = closure_hash(&db, &spoof);
        assert_eq!(closure_of(&set, h), vec![0]);
        assert!(closure_of(&set, 0xDEAD_BEEF).is_empty());
    }

    #[test]
    fn detection_index_is_shareable() {
        let index = DetectionIndex::shared(db(), ["google".to_string()]);
        let clone = Arc::clone(&index);
        assert_eq!(clone.reference_count(), 1);
        assert_eq!(&*clone.reference(0), "google");
        assert!(Arc::ptr_eq(&index, &clone));
    }

    #[test]
    fn reference_section_round_trips() {
        let db = db();
        let names =
            ["google", "paypal", "oo", "google"].map(String::from).to_vec();
        let set = ReferenceSet::build(&db, names.clone());
        let bytes = set.to_section_bytes();
        let (back, digest) = ReferenceSet::from_section_bytes(&bytes).unwrap();
        assert_eq!(digest, reference_digest(names.iter().map(String::as_str)));
        assert_eq!(all_names(&back), all_names(&set));
        assert_eq!(back.live_count(), set.live_count());
        // One arena backs every mounted name.
        let (first, last) = (back.name(0), back.name(3));
        assert!(Arc::ptr_eq(first.arena(), last.arena()));
        // Candidate probes agree with the freshly built set.
        let spoof: Vec<u32> = "оо".chars().map(|c| c as u32).collect();
        let h = closure_hash(&db, &spoof);
        assert_eq!(closure_of(&back, h), closure_of(&set, h));
        for len in 0..10 {
            assert_eq!(len_of(&back, len), len_of(&set, len), "len {len}");
        }
        // Serializing the mounted set reproduces the exact bytes.
        assert_eq!(back.to_section_bytes(), bytes);
        // The empty set round-trips too.
        let empty = ReferenceSet::build(&db, Vec::new());
        let (back, _) = ReferenceSet::from_section_bytes(&empty.to_section_bytes()).unwrap();
        assert_eq!(back.live_count(), 0);
    }

    #[test]
    fn non_flat_sets_serialize_canonically() {
        let db = db();
        let mut churned =
            ReferenceSet::build(&db, ["goo".to_string(), "foo".to_string()]);
        churned.remove("goo");
        churned.add(&db, "bar");
        // Tombstone + overlay entry: the write flattens to survivors.
        let (back, digest) = ReferenceSet::from_section_bytes(&churned.to_section_bytes()).unwrap();
        assert_eq!(
            all_names(&back),
            ["foo", "bar"]
        );
        assert_eq!(digest, reference_digest(["foo", "bar"]));
        // ...and equals the digest a straight build would record.
        let rebuilt = ReferenceSet::build(&db, ["foo".to_string(), "bar".to_string()]);
        let (_, fresh_digest) = ReferenceSet::from_section_bytes(&rebuilt.to_section_bytes()).unwrap();
        assert_eq!(digest, fresh_digest);
    }

    #[test]
    fn mount_rejects_inconsistent_sections() {
        let db = db();
        let set = ReferenceSet::build(&db, ["goo".to_string(), "zap".to_string()]);
        let bytes = set.to_section_bytes();

        // Truncation at every offset: always Err, never a panic.
        for cut in 0..bytes.len() {
            let err = ReferenceSet::from_section_bytes(&bytes[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut {cut}");
        }
        // Trailing garbage is rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(ReferenceSet::from_section_bytes(&long).is_err());

        // A closure run pointing at the wrong hash names itself.
        let mut bad = bytes.clone();
        // Locate the first closure-run key: 8 (digest) + 4 (count) +
        // 12 (name offsets) + 4 + 6 (arena "goozap") + 12 (stem
        // offsets) + 4 + 24 (stem arena) + 16 (hashes) = 90.
        bad[90] ^= 0x01;
        let err = ReferenceSet::from_section_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("closure runs"), "{err}");

        // Invalid UTF-8 in the name arena names itself.
        let mut bad = bytes.clone();
        bad[24] = 0xFF; // first arena byte (8 + 4 + 12)
        let err = ReferenceSet::from_section_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("name arena"), "{err}");
    }

    #[test]
    fn reference_digest_identifies_the_list() {
        let digest = reference_digest(["google", "paypal"]);
        assert_eq!(digest, reference_digest(["google", "paypal"]));
        // Order, content, and boundaries all matter.
        assert_ne!(digest, reference_digest(["paypal", "google"]));
        assert_ne!(digest, reference_digest(["google"]));
        assert_ne!(digest, reference_digest(["googlepaypal"]));
        assert_ne!(digest, reference_digest(["google", "paypal", ""]));
    }

    #[test]
    fn removal_scales_by_map_not_scan() {
        // Behavioural pin for the lazy name map: duplicates tombstone,
        // later adds of the same name are found by later removes.
        let db = db();
        let mut set = ReferenceSet::build(
            &db,
            (0..100).map(|i| format!("ref{}", i % 10)), // 10× duplicated
        );
        assert_eq!(set.remove("ref3"), 10);
        assert_eq!(set.live_count(), 90);
        set.add(&db, "ref3");
        assert_eq!(set.remove("ref3"), 1);
        assert_eq!(set.remove("ref3"), 0);
        assert_eq!(set.live_count(), 90);
    }
}
