//! The shared immutable index layer.
//!
//! [`DetectionIndex`] bundles everything Algorithm 1 needs that is
//! *corpus-independent*: the homoglyph database with its flat pair
//! index (interner + rep table + CSR, built in `sham_simchar`) and the
//! reference-list side — interned stems, `Arc<str>` names, the
//! closure-hash candidate index and the length buckets. It is built
//! once and never mutated, so any number of per-TLD [`Framework`]s and
//! streaming [`DetectorSession`]s share one build behind an `Arc`
//! instead of each cloning `HomoglyphDb` (PR 3 made per-IDN detection
//! so cheap that those clones had become a dominant cost).
//!
//! Sessions that need reference-list churn take a copy-on-write clone
//! of the reference-set half only — the flat character index, by far
//! the larger structure, is never duplicated.
//!
//! [`Framework`]: crate::Framework
//! [`DetectorSession`]: crate::DetectorSession

use sham_simchar::HomoglyphDb;
use std::collections::HashMap;
use std::sync::Arc;

/// FNV-1a over the union-find component representatives of a stem. Two
/// stems that match under Algorithm 1 have pairwise same-component
/// characters, so they hash identically — see the soundness argument
/// in [`crate::algorithm`]. Each representative is two array reads in
/// the flat interner; no per-character hashing.
pub(crate) fn closure_hash(db: &HomoglyphDb, stem: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &cp in stem {
        h ^= u64::from(db.rep_of(cp));
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The reference-list half of the detection index: interned stems,
/// shared names, and the two candidate indexes (closure hash and
/// length buckets). Inside a [`DetectionIndex`] every entry is alive;
/// a [`DetectorSession`](crate::DetectorSession) applying reference
/// diffs edits its own clone incrementally — added references append,
/// removed references tombstone and leave the candidate buckets, with
/// no rebuild of the surviving entries.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReferenceSet {
    /// Reference names; detections hold cheap `Arc` clones of these.
    pub(crate) names: Vec<Arc<str>>,
    /// The same stems interned to code points.
    pub(crate) stems: Vec<Vec<u32>>,
    /// Closure hash of each stem, kept so removal needs no re-hash.
    hashes: Vec<u64>,
    /// False for references removed by a session diff.
    alive: Vec<bool>,
    /// Number of alive references.
    live: usize,
    /// Closure-hash → reference indices (for `CanonicalClosure`).
    closure_index: HashMap<u64, Vec<u32>>,
    /// Stem length → reference indices (for `LengthBucket`).
    by_len: HashMap<usize, Vec<u32>>,
}

impl ReferenceSet {
    /// Builds the set by adding every reference in order.
    pub(crate) fn build(
        db: &HomoglyphDb,
        references: impl IntoIterator<Item = String>,
    ) -> ReferenceSet {
        let mut set = ReferenceSet::default();
        for name in references {
            set.add(db, &name);
        }
        set
    }

    /// Appends one reference, indexing it under its closure hash,
    /// length bucket and name. O(1) amortised — existing entries are
    /// untouched.
    pub(crate) fn add(&mut self, db: &HomoglyphDb, name: &str) {
        let idx = self.names.len() as u32;
        let name: Arc<str> = Arc::from(name);
        let stem: Vec<u32> = name.chars().map(|c| c as u32).collect();
        let hash = closure_hash(db, &stem);
        self.closure_index.entry(hash).or_default().push(idx);
        self.by_len.entry(stem.len()).or_default().push(idx);
        self.names.push(name);
        self.stems.push(stem);
        self.hashes.push(hash);
        self.alive.push(true);
        self.live += 1;
    }

    /// Removes every reference named `name` (duplicates included) from
    /// the candidate indexes and tombstones it, returning how many were
    /// removed. Name lookup is a linear scan — churn events are rare
    /// next to registrations, and skipping a name→index map keeps
    /// construction (the per-reference hot path) lean; the candidate
    /// edits themselves touch only the affected buckets.
    pub(crate) fn remove(&mut self, name: &str) -> usize {
        let mut removed = 0;
        for i in 0..self.names.len() {
            if !self.alive[i] || &*self.names[i] != name {
                continue;
            }
            let idx = i as u32;
            self.alive[i] = false;
            removed += 1;
            self.live -= 1;
            if let Some(bucket) = self.closure_index.get_mut(&self.hashes[i]) {
                bucket.retain(|&r| r != idx);
                if bucket.is_empty() {
                    self.closure_index.remove(&self.hashes[i]);
                }
            }
            let len = self.stems[i].len();
            if let Some(bucket) = self.by_len.get_mut(&len) {
                bucket.retain(|&r| r != idx);
                if bucket.is_empty() {
                    self.by_len.remove(&len);
                }
            }
        }
        removed
    }

    /// Number of alive references.
    pub(crate) fn live_count(&self) -> usize {
        self.live
    }

    /// Number of tombstoned entries still occupying table slots.
    pub(crate) fn dead_count(&self) -> usize {
        self.names.len() - self.live
    }

    /// Rebuilds the set with tombstoned entries dropped: names, stems,
    /// hashes and both candidate indexes are re-laid-out over the
    /// surviving references only, in their original relative order.
    /// The surviving `Arc<str>` names are *moved* (handle clones), so
    /// detections already emitted — which hold their own `Arc` clones —
    /// stay valid and still share storage with the compacted set. A
    /// long-lived session with heavy reference churn calls this when
    /// the dead fraction passes its threshold, bounding the otherwise
    /// ever-growing names/stems vectors.
    pub(crate) fn compact(&mut self) {
        if self.dead_count() == 0 {
            return;
        }
        let mut compacted = ReferenceSet::default();
        compacted.names.reserve(self.live);
        compacted.stems.reserve(self.live);
        compacted.hashes.reserve(self.live);
        for i in 0..self.names.len() {
            if !self.alive[i] {
                continue;
            }
            let idx = compacted.names.len() as u32;
            // Survivors keep their closure hash — no re-hash — and the
            // candidate buckets are rebuilt with the new dense indices.
            compacted.closure_index.entry(self.hashes[i]).or_default().push(idx);
            compacted.by_len.entry(self.stems[i].len()).or_default().push(idx);
            compacted.names.push(Arc::clone(&self.names[i]));
            compacted.stems.push(std::mem::take(&mut self.stems[i]));
            compacted.hashes.push(self.hashes[i]);
            compacted.alive.push(true);
            compacted.live += 1;
        }
        *self = compacted;
    }

    /// Whether reference `idx` is alive (not removed by a diff).
    #[inline]
    pub(crate) fn is_alive(&self, idx: u32) -> bool {
        self.alive[idx as usize]
    }

    /// All reference indices (alive filter applied by the caller — the
    /// `Naive` strategy's candidate set).
    pub(crate) fn all_indices(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.names.len() as u32).filter(|&i| self.is_alive(i))
    }

    /// Candidate indices whose stems share closure hash `h`.
    #[inline]
    pub(crate) fn closure_bucket(&self, h: u64) -> &[u32] {
        self.closure_index.get(&h).map_or(&[], Vec::as_slice)
    }

    /// Candidate indices whose stems have length `len`.
    #[inline]
    pub(crate) fn len_bucket(&self, len: usize) -> &[u32] {
        self.by_len.get(&len).map_or(&[], Vec::as_slice)
    }
}

/// The immutable index layer: one homoglyph database (with its flat
/// pair index) plus one fully-indexed reference list. Build it once
/// with [`DetectionIndex::shared`] and hand the `Arc` to every
/// [`Framework`](crate::Framework), [`Detector`](crate::Detector) and
/// [`DetectorSession`](crate::DetectorSession) that scores against the
/// same references — nothing here is ever mutated after construction.
pub struct DetectionIndex {
    db: HomoglyphDb,
    refs: ReferenceSet,
}

impl DetectionIndex {
    /// Builds the index for `references` (TLD-stripped ASCII stems,
    /// e.g. `"google"`).
    pub fn new(db: HomoglyphDb, references: impl IntoIterator<Item = String>) -> Self {
        let refs = ReferenceSet::build(&db, references);
        DetectionIndex { db, refs }
    }

    /// [`DetectionIndex::new`] wrapped for sharing: the form every
    /// multi-pipeline deployment wants.
    pub fn shared(
        db: HomoglyphDb,
        references: impl IntoIterator<Item = String>,
    ) -> Arc<Self> {
        Arc::new(DetectionIndex::new(db, references))
    }

    /// The underlying homoglyph database.
    pub fn db(&self) -> &HomoglyphDb {
        &self.db
    }

    /// Reference stems, in insertion order.
    pub fn references(&self) -> &[Arc<str>] {
        &self.refs.names
    }

    /// The indexed reference set.
    pub(crate) fn refs(&self) -> &ReferenceSet {
        &self.refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_confusables::UcDatabase;
    use sham_simchar::SimCharDb;

    fn db() -> HomoglyphDb {
        use sham_simchar::Pair;
        HomoglyphDb::new(
            SimCharDb::from_pairs(
                vec![Pair { a: 'o' as u32, b: 0x043E, delta: 1 }],
                4,
            ),
            UcDatabase::default(),
        )
    }

    #[test]
    fn add_then_remove_round_trips_the_buckets() {
        let db = db();
        let mut set =
            ReferenceSet::build(&db, ["goo".to_string(), "foo".to_string(), "goo".to_string()]);
        assert_eq!(set.live_count(), 3);
        assert_eq!(set.len_bucket(3).len(), 3);

        // Removing a duplicated name tombstones every occurrence.
        assert_eq!(set.remove("goo"), 2);
        assert_eq!(set.live_count(), 1);
        assert_eq!(set.len_bucket(3), &[1]);
        assert!(!set.is_alive(0) && set.is_alive(1) && !set.is_alive(2));
        assert_eq!(set.remove("goo"), 0); // already gone
        assert_eq!(set.remove("absent"), 0);

        // Re-adding after removal indexes the new entry normally.
        set.add(&db, "goo");
        assert_eq!(set.live_count(), 2);
        assert_eq!(set.len_bucket(3), &[1, 3]);
        assert_eq!(set.all_indices().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn compaction_drops_tombstones_and_preserves_name_handles() {
        let db = db();
        let mut set = ReferenceSet::build(
            &db,
            ["goo".to_string(), "foo".to_string(), "bar".to_string(), "goo".to_string()],
        );
        let foo_handle = Arc::clone(&set.names[1]);
        set.remove("goo");
        set.remove("bar");
        assert_eq!(set.dead_count(), 3);

        set.compact();
        assert_eq!(set.dead_count(), 0);
        assert_eq!(set.live_count(), 1);
        assert_eq!(set.names.len(), 1);
        assert_eq!(set.stems.len(), 1);
        // The surviving name is the same allocation, not a copy.
        assert!(Arc::ptr_eq(&set.names[0], &foo_handle));
        // Buckets were re-indexed over the dense layout.
        assert_eq!(set.len_bucket(3), &[0]);
        assert_eq!(set.all_indices().collect::<Vec<_>>(), vec![0]);
        let stem: Vec<u32> = "foo".chars().map(|c| c as u32).collect();
        assert_eq!(set.closure_bucket(closure_hash(&db, &stem)), &[0]);

        // Add-after-compact keeps working (fresh dense indices).
        set.add(&db, "goo");
        assert_eq!(set.live_count(), 2);
        assert_eq!(set.len_bucket(3), &[0, 1]);
        // Compacting a fully-alive set is a no-op.
        set.compact();
        assert_eq!(set.live_count(), 2);
    }

    #[test]
    fn closure_buckets_group_same_component_stems() {
        let db = db();
        let set = ReferenceSet::build(&db, ["oo".to_string(), "xx".to_string()]);
        // Cyrillic оо shares o's component, so it hashes into oo's bucket.
        let spoof: Vec<u32> = "оо".chars().map(|c| c as u32).collect();
        let h = closure_hash(&db, &spoof);
        assert_eq!(set.closure_bucket(h), &[0]);
        assert!(set.closure_bucket(0xDEAD_BEEF).is_empty());
    }

    #[test]
    fn detection_index_is_shareable() {
        let index = DetectionIndex::shared(db(), ["google".to_string()]);
        let clone = Arc::clone(&index);
        assert_eq!(clone.references().len(), 1);
        assert_eq!(&*clone.references()[0], "google");
        assert!(Arc::ptr_eq(&index, &clone));
    }
}
