//! Detection result types shared across the framework.

use serde::{Deserialize, Error, Serialize, Value};
use sham_simchar::PairSource;
use std::fmt;
use std::sync::Arc;

/// A reference-name handle: one byte range of a shared name arena.
///
/// Detections used to carry a per-name `Arc<str>`; that costs one
/// allocation per reference at construction time, which is fine when
/// the list is built once but dominates a snapshot *mount* (10k names
/// ≈ 455µs of allocator time against a sub-500µs cold-start budget).
/// A `RefName` instead points into an arena: names materialised from a
/// snapshot all share one `Arc<str>` allocation, names added
/// individually get their own single-name arena. Cloning is an `Arc`
/// handle copy either way, so emitting a detection still never copies
/// string bytes.
///
/// Equality, ordering and hashing are by string content;
/// [`RefName::ptr_eq`] is the sharing check (`Arc::ptr_eq` plus the
/// range).
#[derive(Debug, Clone)]
pub struct RefName {
    arena: Arc<str>,
    start: u32,
    end: u32,
}

impl RefName {
    /// A handle owning its own single-name arena.
    pub fn new(name: &str) -> RefName {
        RefName { arena: Arc::from(name), start: 0, end: name.len() as u32 }
    }

    /// A handle on `arena[start..end]` — both offsets must be char
    /// boundaries (the snapshot mount validates them before calling).
    pub(crate) fn slice_of(arena: &Arc<str>, start: u32, end: u32) -> RefName {
        debug_assert!(
            arena.is_char_boundary(start as usize) && arena.is_char_boundary(end as usize)
        );
        RefName { arena: Arc::clone(arena), start, end }
    }

    /// The name itself.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.arena[self.start as usize..self.end as usize]
    }

    /// True when both handles view the same range of the same arena
    /// allocation — the "no string bytes were copied" assertion, the
    /// `RefName` analogue of `Arc::ptr_eq`.
    pub fn ptr_eq(a: &RefName, b: &RefName) -> bool {
        Arc::ptr_eq(&a.arena, &b.arena) && a.start == b.start && a.end == b.end
    }

    /// The backing arena allocation — for arena-sharing assertions.
    #[cfg(test)]
    pub(crate) fn arena(&self) -> &Arc<str> {
        &self.arena
    }
}

impl std::ops::Deref for RefName {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for RefName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for RefName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq for RefName {
    fn eq(&self, other: &RefName) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for RefName {}

impl PartialEq<str> for RefName {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for RefName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialOrd for RefName {
    fn partial_cmp(&self, other: &RefName) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RefName {
    fn cmp(&self, other: &RefName) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for RefName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl From<&str> for RefName {
    fn from(name: &str) -> RefName {
        RefName::new(name)
    }
}

impl From<String> for RefName {
    fn from(name: String) -> RefName {
        RefName::new(&name)
    }
}

impl Serialize for RefName {
    fn serialize(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for RefName {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(RefName::new(s)),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

/// One substituted character inside a detected homograph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharSubstitution {
    /// Character position in the stem (0-based).
    pub position: usize,
    /// The reference (original) character.
    pub original: char,
    /// The visually similar character found in the IDN.
    pub homoglyph: char,
    /// Which database attests the pair.
    pub source: Option<PairSource>,
}

/// A detected IDN homograph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// Unicode stem of the IDN (TLD removed), e.g. `gօօgle`.
    pub idn_unicode: String,
    /// Full registered name in ACE form, e.g. `xn--ggle-0nda8c.com`.
    pub idn_ascii: String,
    /// The targeted reference stem, e.g. `google` — a [`RefName`]
    /// handle on the shared [`DetectionIndex`](crate::DetectionIndex)
    /// name arena, so materialising a detection never clones the
    /// reference string.
    pub reference: RefName,
    /// The differential characters — the pinpointing capability the paper
    /// highlights as ShamFinder's advantage over image-based detectors.
    pub substitutions: Vec<CharSubstitution>,
}

impl Detection {
    /// Number of substituted positions.
    pub fn substitution_count(&self) -> usize {
        self.substitutions.len()
    }

    /// True when every substitution is attested by SimChar alone —
    /// detections prior work (UC-based) would have missed.
    pub fn simchar_exclusive(&self) -> bool {
        self.substitutions
            .iter()
            .all(|s| s.source == Some(PairSource::SimChar))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simchar_exclusive_logic() {
        let base = Detection {
            idn_unicode: "facébook".into(),
            idn_ascii: "xn--facbook-dya.com".into(),
            reference: "facebook".into(),
            substitutions: vec![CharSubstitution {
                position: 3,
                original: 'e',
                homoglyph: 'é',
                source: Some(PairSource::SimChar),
            }],
        };
        assert!(base.simchar_exclusive());
        assert_eq!(base.substitution_count(), 1);

        let mut mixed = base.clone();
        mixed.substitutions.push(CharSubstitution {
            position: 0,
            original: 'f',
            homoglyph: 'ф',
            source: Some(PairSource::Both),
        });
        assert!(!mixed.simchar_exclusive());
    }

    #[test]
    fn refname_slices_share_one_arena() {
        let arena: Arc<str> = Arc::from("googlepaypal");
        let google = RefName::slice_of(&arena, 0, 6);
        let paypal = RefName::slice_of(&arena, 6, 12);
        assert_eq!(&*google, "google");
        assert_eq!(paypal.as_str(), "paypal");
        assert_eq!(google.to_string(), "google");
        // Content equality vs sharing identity.
        assert_eq!(google, RefName::new("google"));
        assert!(!RefName::ptr_eq(&google, &RefName::new("google")));
        assert!(RefName::ptr_eq(&google, &google.clone()));
        assert!(!RefName::ptr_eq(&google, &paypal));
        // Hash/ord follow content: usable as map keys.
        let mut seen = std::collections::HashMap::new();
        seen.insert(google.clone(), 1);
        assert_eq!(seen.get(&RefName::new("google")), Some(&1));
        assert!(google < paypal);
        // Serde round-trips by content.
        let json = serde_json::to_string(&google).unwrap();
        let back: RefName = serde_json::from_str(&json).unwrap();
        assert_eq!(back, google);
    }

    #[test]
    fn serializes_to_json() {
        let d = Detection {
            idn_unicode: "gօօgle".into(),
            idn_ascii: "xn--ggle-0nda8c.com".into(),
            reference: "google".into(),
            substitutions: vec![],
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: Detection = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
