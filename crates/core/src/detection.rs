//! Detection result types shared across the framework.

use serde::{Deserialize, Serialize};
use sham_simchar::PairSource;
use std::sync::Arc;

/// One substituted character inside a detected homograph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharSubstitution {
    /// Character position in the stem (0-based).
    pub position: usize,
    /// The reference (original) character.
    pub original: char,
    /// The visually similar character found in the IDN.
    pub homoglyph: char,
    /// Which database attests the pair.
    pub source: Option<PairSource>,
}

/// A detected IDN homograph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// Unicode stem of the IDN (TLD removed), e.g. `gօօgle`.
    pub idn_unicode: String,
    /// Full registered name in ACE form, e.g. `xn--ggle-0nda8c.com`.
    pub idn_ascii: String,
    /// The targeted reference stem, e.g. `google` — an `Arc` handle on
    /// the shared [`DetectionIndex`](crate::DetectionIndex) name, so
    /// materialising a detection never clones the reference string.
    pub reference: Arc<str>,
    /// The differential characters — the pinpointing capability the paper
    /// highlights as ShamFinder's advantage over image-based detectors.
    pub substitutions: Vec<CharSubstitution>,
}

impl Detection {
    /// Number of substituted positions.
    pub fn substitution_count(&self) -> usize {
        self.substitutions.len()
    }

    /// True when every substitution is attested by SimChar alone —
    /// detections prior work (UC-based) would have missed.
    pub fn simchar_exclusive(&self) -> bool {
        self.substitutions
            .iter()
            .all(|s| s.source == Some(PairSource::SimChar))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simchar_exclusive_logic() {
        let base = Detection {
            idn_unicode: "facébook".into(),
            idn_ascii: "xn--facbook-dya.com".into(),
            reference: "facebook".into(),
            substitutions: vec![CharSubstitution {
                position: 3,
                original: 'e',
                homoglyph: 'é',
                source: Some(PairSource::SimChar),
            }],
        };
        assert!(base.simchar_exclusive());
        assert_eq!(base.substitution_count(), 1);

        let mut mixed = base.clone();
        mixed.substitutions.push(CharSubstitution {
            position: 0,
            original: 'f',
            homoglyph: 'ф',
            source: Some(PairSource::Both),
        });
        assert!(!mixed.simchar_exclusive());
    }

    #[test]
    fn serializes_to_json() {
        let d = Detection {
            idn_unicode: "gօօgle".into(),
            idn_ascii: "xn--ggle-0nda8c.com".into(),
            reference: "google".into(),
            substitutions: vec![],
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: Detection = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
