//! The end-to-end ShamFinder pipeline (paper Fig. 1).
//!
//! * **Step 1** — collect registered domain names for a TLD (zone files or
//!   domain lists; the caller supplies the iterator).
//! * **Step 2** — extract IDNs: names with an `xn--` label.
//! * **Step 3** — match the IDNs against a reference list of popular
//!   domains using the homoglyph database (Algorithm 1).
//!
//! [`Framework::run`] is a thin one-shot wrapper over the streaming
//! [`DetectorSession`]: it opens a session, pushes the whole corpus as
//! one batch, and folds the report — so batch and streaming ingestion
//! share a single code path and cannot diverge. Several per-TLD
//! frameworks can share one immutable [`DetectionIndex`] via
//! [`Framework::with_shared_index`] instead of each rebuilding (or
//! cloning) the homoglyph database.

use crate::algorithm::{Detector, Indexing};
use crate::detection::Detection;
use crate::index::DetectionIndex;
use crate::sched::ExecStats;
use crate::session::DetectorSession;
use serde::{Deserialize, Serialize};
use sham_confusables::UcDatabase;
use sham_punycode::DomainName;
use sham_simchar::{DbSelection, HomoglyphDb, SimCharDb};
use std::sync::Arc;

/// Pipeline outcome.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FrameworkReport {
    /// Step 1: domains inspected.
    pub total_domains: usize,
    /// Step 2: IDNs among them.
    pub idn_count: usize,
    /// Step 3: detections.
    pub detections: Vec<Detection>,
    /// How the detection calls behind this report were scheduled
    /// (batches, shards, workers engaged) — observational only, and
    /// deliberately **ignored by equality**: partitioning varies with
    /// pool occupancy and thread count while results must not, so two
    /// reports of the same corpus compare equal whatever the scheduler
    /// chose.
    pub exec: ExecStats,
}

/// Equality covers the *results* (counts and detections), never the
/// `exec` scheduling trace — see the field's documentation. Keeping
/// this manual is what lets every equivalence suite `assert_eq!` whole
/// reports across thread counts and forced occupancy histories.
impl PartialEq for FrameworkReport {
    fn eq(&self, other: &Self) -> bool {
        self.total_domains == other.total_domains
            && self.idn_count == other.idn_count
            && self.detections == other.detections
    }
}

impl FrameworkReport {
    /// IDN share of the corpus (Table 6's percentage column).
    pub fn idn_fraction(&self) -> f64 {
        if self.total_domains == 0 {
            0.0
        } else {
            self.idn_count as f64 / self.total_domains as f64
        }
    }
}

/// The configured pipeline.
pub struct Framework {
    detector: Detector,
    tld: String,
    selection: DbSelection,
    indexing: Indexing,
}

impl Framework {
    /// Assembles the framework from its components. `references` are
    /// popular-domain stems for the TLD (Alexa-style, TLD removed).
    pub fn new(
        simchar: SimCharDb,
        uc: UcDatabase,
        references: impl IntoIterator<Item = String>,
        tld: &str,
    ) -> Self {
        Framework::with_shared_index(
            DetectionIndex::shared(HomoglyphDb::new(simchar, uc), references),
            tld,
        )
    }

    /// Cold-starts the framework from a v3 full-index snapshot written
    /// by [`DetectionIndex::write_snapshot_file`]: the pair index and
    /// the reference set are both mounted (checksum pass + pointer
    /// fixups, no rebuild) — see [`DetectionIndex::from_snapshot_file`]
    /// for the staleness checks applied.
    pub fn from_snapshot_file(
        path: impl AsRef<std::path::Path>,
        simchar: impl Into<std::sync::Arc<SimCharDb>>,
        uc: impl Into<std::sync::Arc<UcDatabase>>,
        tld: &str,
    ) -> std::io::Result<Self> {
        let index = DetectionIndex::from_snapshot_file(path, simchar, uc)?;
        Ok(Framework::with_shared_index(Arc::new(index), tld))
    }

    /// Assembles a framework over an existing shared index — the
    /// multi-TLD form: build the index once, hand `Arc` clones to one
    /// framework per TLD pipeline.
    pub fn with_shared_index(index: Arc<DetectionIndex>, tld: &str) -> Self {
        Framework {
            detector: Detector::from_index(index),
            tld: tld.to_string(),
            selection: DbSelection::Union,
            indexing: Indexing::CanonicalClosure,
        }
    }

    /// An `Arc` handle on this framework's index, for sharing with
    /// further frameworks and sessions.
    pub fn shared_index(&self) -> Arc<DetectionIndex> {
        Arc::clone(self.detector.index())
    }

    /// Opens a streaming [`DetectorSession`] with this framework's TLD,
    /// selection and indexing, over the same shared index.
    pub fn session(&self) -> DetectorSession {
        DetectorSession::new(self.shared_index(), &self.tld)
            .with_selection(self.selection)
            .with_indexing(self.indexing)
    }

    /// Switches the database selection (Tables 8 and 14 compare UC-only,
    /// SimChar-only and the union).
    pub fn with_selection(mut self, selection: DbSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Switches the candidate-generation strategy. The default is
    /// [`Indexing::CanonicalClosure`] — exact for arbitrary pair sets
    /// and orders of magnitude faster than length bucketing; `Naive`
    /// and `LengthBucket` remain as ablation baselines.
    pub fn with_indexing(mut self, indexing: Indexing) -> Self {
        self.indexing = indexing;
        self
    }

    /// The configured candidate-generation strategy.
    pub fn indexing(&self) -> Indexing {
        self.indexing
    }

    /// Access to the inner detector (for revert/highlight helpers).
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Step 2: extracts the IDNs of this TLD as
    /// `(unicode stem, full ACE name)` pairs.
    pub fn extract_idns<'a>(
        &self,
        domains: impl IntoIterator<Item = &'a DomainName>,
    ) -> Vec<(String, String)> {
        domains
            .into_iter()
            .filter(|d| d.tld() == self.tld && d.is_idn())
            .filter_map(|d| {
                d.unicode_without_tld()
                    .map(|stem| (stem, d.as_ascii().to_string()))
            })
            .collect()
    }

    /// Runs Steps 1–3 over a domain corpus: one streaming session fed
    /// the whole corpus as a single batch. Counting and IDN extraction
    /// happen in one pass over the iterator (the corpus is never
    /// re-materialised), and detection shards across the worker pool;
    /// the framework itself is read-only while running.
    pub fn run<'a>(
        &self,
        domains: impl IntoIterator<Item = &'a DomainName>,
    ) -> FrameworkReport {
        let mut session = self.session();
        session.push_domains(domains);
        session.into_report()
    }

    /// Runs Step 3 only, on pre-extracted IDNs (used by the timing
    /// benchmark of §4.2 to isolate matching cost).
    pub fn detect_only(&self, idns: &[(String, String)]) -> Vec<Detection> {
        self.detector.detect(idns, self.selection, self.indexing)
    }

    /// Runs Step 3 with an explicit database selection, leaving the
    /// configured default untouched (Tables 8/14 sweep selections).
    pub fn detect_only_with(
        &self,
        idns: &[(String, String)],
        selection: DbSelection,
    ) -> Vec<Detection> {
        self.detector.detect(idns, selection, self.indexing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_glyph::SynthUnifont;
    use sham_simchar::{build, BuildConfig, Repertoire};

    fn framework(refs: &[&str]) -> Framework {
        let font = SynthUnifont::v12();
        let result = build(
            &font,
            &BuildConfig {
                repertoire: Repertoire::Blocks(vec![
                    "Basic Latin",
                    "Latin-1 Supplement",
                    "Cyrillic",
                ]),
                ..BuildConfig::default()
            },
        );
        Framework::new(
            result.db,
            UcDatabase::embedded(),
            refs.iter().map(|s| s.to_string()),
            "com",
        )
    }

    fn corpus() -> Vec<DomainName> {
        [
            "google.com",
            "xn--ggle-55da.com",    // gооgle (Cyrillic о)
            "xn--facbook-dya.com",  // facébook
            "ordinary.com",
            "xn--fiq228c.com",      // 中文 — IDN, not a homograph
            "xn--ggle-55da.net",    // wrong TLD
        ]
        .iter()
        .map(|s| DomainName::parse(s).unwrap())
        .collect()
    }

    #[test]
    fn full_pipeline_counts_and_detects() {
        let fw = framework(&["google", "facebook"]);
        let corpus = corpus();
        let report = fw.run(&corpus);
        assert_eq!(report.total_domains, 6);
        assert_eq!(report.idn_count, 3); // the three .com IDNs
        assert_eq!(report.detections.len(), 2);
        let refs: Vec<&str> =
            report.detections.iter().map(|d| &*d.reference).collect();
        assert!(refs.contains(&"google"));
        assert!(refs.contains(&"facebook"));
        assert!((report.idn_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn extract_idns_respects_tld() {
        let fw = framework(&["google"]);
        let corpus = corpus();
        let idns = fw.extract_idns(&corpus);
        assert_eq!(idns.len(), 3);
        assert!(idns.iter().all(|(_, ace)| ace.ends_with(".com")));
    }

    #[test]
    fn uc_only_selection_misses_accent_homograph() {
        let corpus = corpus();
        let uc_only =
            framework(&["google", "facebook"]).with_selection(DbSelection::UcOnly);
        let report = uc_only.run(&corpus);
        // UC lists Cyrillic о→o but not é→e: only the google homograph.
        assert_eq!(report.detections.len(), 1);
        assert_eq!(&*report.detections[0].reference, "google");
    }

    #[test]
    fn shared_index_frameworks_and_sessions_agree_with_run() {
        let fw = framework(&["google", "facebook"]);
        let corpus = corpus();
        let batch = fw.run(&corpus);

        // A second framework over the same Arc (e.g. another TLD
        // pipeline) reuses the build; no HomoglyphDb clone happens.
        let fw2 = Framework::with_shared_index(fw.shared_index(), "com");
        assert_eq!(fw2.run(&corpus), batch);

        // A streaming session fed one domain at a time folds into the
        // identical report.
        let mut session = fw.session();
        for d in &corpus {
            session.push_domains(std::iter::once(d));
        }
        assert_eq!(session.into_report(), batch);
    }

    #[test]
    fn empty_corpus_yields_empty_report() {
        let fw = framework(&["google"]);
        let report = fw.run(&[]);
        assert_eq!(report.total_domains, 0);
        assert_eq!(report.idn_count, 0);
        assert!(report.detections.is_empty());
        assert_eq!(report.idn_fraction(), 0.0);
    }
}
