//! The UC database type: prototype lookup, skeletons and pair queries.

use crate::format::Mapping;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The UC (Unicode confusables) database.
///
/// Maps each source code point to its prototype sequence. Two strings are
/// confusable when their skeletons — the fixpoint of prototype mapping —
/// are equal (TR39 §4).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UcDatabase {
    map: BTreeMap<u32, Vec<u32>>,
}

impl UcDatabase {
    /// Builds a database from parsed mappings. Later duplicates of a
    /// source are ignored (first wins, as in the published file).
    pub fn from_mappings(mappings: impl IntoIterator<Item = Mapping>) -> Self {
        let mut map = BTreeMap::new();
        for m in mappings {
            map.entry(m.source).or_insert(m.target);
        }
        UcDatabase { map }
    }

    /// The embedded curated + generated dataset (see [`crate::data`]).
    pub fn embedded() -> Self {
        Self::from_mappings(crate::data::embedded_mappings())
    }

    /// Number of mapping entries ("homoglyph pairs" in Table 1).
    pub fn pair_count(&self) -> usize {
        self.map.len()
    }

    /// All code points mentioned (sources and targets) — the "characters"
    /// count of Table 1.
    pub fn char_set(&self) -> BTreeSet<u32> {
        let mut set = BTreeSet::new();
        for (&src, targets) in &self.map {
            set.insert(src);
            set.extend(targets.iter().copied());
        }
        set
    }

    /// Prototype sequence for `cp`, if listed as a source.
    pub fn prototype(&self, cp: u32) -> Option<&[u32]> {
        self.map.get(&cp).map(Vec::as_slice)
    }

    /// Iterates `(source, prototype)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (u32, &[u32])> {
        self.map.iter().map(|(&s, t)| (s, t.as_slice()))
    }

    /// TR39 skeleton: maps every character to its prototype, repeatedly,
    /// until a fixpoint (with a depth guard against accidental cycles).
    pub fn skeleton(&self, s: &str) -> String {
        let mut current: Vec<u32> = s.chars().map(|c| c as u32).collect();
        for _ in 0..8 {
            let mut next = Vec::with_capacity(current.len());
            let mut changed = false;
            for &cp in &current {
                match self.map.get(&cp) {
                    Some(proto) if proto.as_slice() != [cp] => {
                        next.extend_from_slice(proto);
                        changed = true;
                    }
                    _ => next.push(cp),
                }
            }
            current = next;
            if !changed {
                break;
            }
        }
        current
            .into_iter()
            .map(|v| char::from_u32(v).unwrap_or('\u{FFFD}'))
            .collect()
    }

    /// True when the two strings are confusable per TR39 (equal skeletons).
    pub fn confusable(&self, a: &str, b: &str) -> bool {
        self.skeleton(a) == self.skeleton(b)
    }

    /// True when the single code points form a listed homoglyph pair: one
    /// maps to the other, or both map to the same prototype. This is the
    /// per-character check Algorithm 1 performs.
    pub fn is_pair(&self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        // Borrowed slice comparisons only — this sits in the detector's
        // per-candidate rejecting path, which must not allocate.
        match (self.map.get(&a), self.map.get(&b)) {
            (Some(pa), Some(pb)) => pa == pb || pa.as_slice() == [b] || pb.as_slice() == [a],
            (Some(pa), None) => pa.as_slice() == [b],
            (None, Some(pb)) => pb.as_slice() == [a],
            (None, None) => false,
        }
    }

    /// Restricts the database to sources (and single-char targets) that
    /// satisfy `keep` — used to compute UC ∩ IDNA (Table 1).
    pub fn filter(&self, mut keep: impl FnMut(u32) -> bool) -> UcDatabase {
        let map = self
            .map
            .iter()
            .filter(|(&src, targets)| keep(src) && targets.iter().all(|&t| keep(t)))
            .map(|(&s, t)| (s, t.clone()))
            .collect();
        UcDatabase { map }
    }

    /// Homoglyphs of a given prototype character: every source whose
    /// prototype is exactly `[proto]`.
    pub fn homoglyphs_of(&self, proto: u32) -> Vec<u32> {
        self.map
            .iter()
            .filter(|(_, t)| t.as_slice() == [proto])
            .map(|(&s, _)| s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse;

    fn small() -> UcDatabase {
        UcDatabase::from_mappings(
            parse(
                "0430 ; 0061 ; MA\n\
                 03B1 ; 0061 ; MA\n\
                 0441 ; 0063 ; MA\n\
                 FB01 ; 0066 0069 ; MA\n",
            )
            .unwrap(),
        )
    }

    #[test]
    fn prototype_lookup() {
        let db = small();
        assert_eq!(db.prototype(0x0430), Some(&[0x61u32][..]));
        assert_eq!(db.prototype(0x61), None);
    }

    #[test]
    fn skeleton_maps_to_fixpoint() {
        let db = small();
        assert_eq!(db.skeleton("са"), "ca"); // Cyrillic es + a
        assert_eq!(db.skeleton("ﬁn"), "fin"); // ligature expands
        assert_eq!(db.skeleton("plain"), "plain");
    }

    #[test]
    fn confusable_strings() {
        let db = small();
        assert!(db.confusable("са", "ca"));
        assert!(db.confusable("а", "α")); // both map to a
        assert!(!db.confusable("ca", "co"));
    }

    #[test]
    fn is_pair_symmetric_and_irreflexive() {
        let db = small();
        assert!(db.is_pair(0x0430, 0x61));
        assert!(db.is_pair(0x61, 0x0430));
        assert!(db.is_pair(0x0430, 0x03B1)); // shared prototype
        assert!(!db.is_pair(0x61, 0x61));
        assert!(!db.is_pair(0x0430, 0x63));
    }

    #[test]
    fn filter_restricts_both_sides() {
        let db = small();
        let filtered = db.filter(|cp| cp != 0x61);
        // 0441 -> 0063 and the fi ligature survive; both a-mappings drop.
        assert_eq!(filtered.pair_count(), 2);
    }

    #[test]
    fn homoglyphs_of_collects_sources() {
        let db = small();
        let mut h = db.homoglyphs_of(0x61);
        h.sort();
        assert_eq!(h, vec![0x03B1, 0x0430]);
    }

    #[test]
    fn embedded_shape_matches_table1() {
        let db = UcDatabase::embedded();
        let total_chars = db.char_set().len();
        let idna = db.filter(|cp| {
            sham_unicode::is_pvalid(sham_unicode::CodePoint(cp))
        });
        let idna_chars = idna.char_set().len();
        // Table 1 structure: most UC characters are NOT IDNA-permitted.
        assert!(total_chars > 900, "total = {total_chars}");
        assert!(idna_chars < total_chars / 3, "idna = {idna_chars} of {total_chars}");
        assert!(idna.pair_count() > 50);
    }

    #[test]
    fn skeleton_handles_unmapped_supplementary() {
        let db = small();
        assert_eq!(db.skeleton("a\u{1F600}"), "a\u{1F600}");
    }
}
