//! UTS #39 §5.2 restriction levels and whole-script confusable checks.
//!
//! Browsers implement the paper's §2.2 display decisions in terms of the
//! Unicode security mechanisms this module models: a label is assigned
//! the most restrictive level it satisfies, and spoof checkers flag
//! labels that are whole-script confusable with a reference (the
//! all-Cyrillic `фасебоок` case single-level mixed-script rules miss).

use serde::{Deserialize, Serialize};
use sham_unicode::{script_of, CodePoint, Script};

/// UTS #39 restriction levels, most to least restrictive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RestrictionLevel {
    /// All characters are ASCII.
    AsciiOnly,
    /// A single script (plus Common/Inherited).
    SingleScript,
    /// Latin may mix with Han-based recommended combinations
    /// (Han + Hiragana + Katakana; Han + Bopomofo; Han + Hangul).
    HighlyRestrictive,
    /// Latin plus one other recommended script, except Cyrillic or Greek.
    ModeratelyRestrictive,
    /// Any mixture of recommended scripts.
    MinimallyRestrictive,
    /// Everything else.
    Unrestricted,
}

impl RestrictionLevel {
    /// Display name as in UTS #39.
    pub fn name(self) -> &'static str {
        match self {
            RestrictionLevel::AsciiOnly => "ASCII-Only",
            RestrictionLevel::SingleScript => "Single Script",
            RestrictionLevel::HighlyRestrictive => "Highly Restrictive",
            RestrictionLevel::ModeratelyRestrictive => "Moderately Restrictive",
            RestrictionLevel::MinimallyRestrictive => "Minimally Restrictive",
            RestrictionLevel::Unrestricted => "Unrestricted",
        }
    }
}

/// Resolved script set of a label: scripts excluding Common/Inherited.
fn script_set(label: &str) -> Vec<Script> {
    let mut out: Vec<Script> = Vec::new();
    for c in label.chars() {
        let s = script_of(CodePoint::from(c));
        if s == Script::Common || s == Script::Inherited {
            continue;
        }
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out.sort();
    out
}

/// True when the set is one of the Han-based combinations Highly
/// Restrictive permits alongside Latin.
fn is_han_combination(non_latin: &[Script]) -> bool {
    let set: std::collections::BTreeSet<Script> = non_latin.iter().copied().collect();
    if !set.contains(&Script::Han) {
        return false;
    }
    set.iter().all(|s| {
        matches!(
            s,
            Script::Han | Script::Hiragana | Script::Katakana | Script::Bopomofo | Script::Hangul
        )
    })
}

/// Computes the most restrictive level `label` satisfies.
pub fn restriction_level(label: &str) -> RestrictionLevel {
    if label.is_ascii() {
        return RestrictionLevel::AsciiOnly;
    }
    let scripts = script_set(label);
    if scripts.len() <= 1 {
        return RestrictionLevel::SingleScript;
    }
    let has_latin = scripts.contains(&Script::Latin);
    let non_latin: Vec<Script> =
        scripts.iter().copied().filter(|&s| s != Script::Latin).collect();

    if has_latin && is_han_combination(&non_latin) {
        return RestrictionLevel::HighlyRestrictive;
    }
    // Kana/Han mixes without Latin are single-language text and also
    // highly restrictive.
    if !has_latin && is_han_combination(&scripts) {
        return RestrictionLevel::HighlyRestrictive;
    }
    if has_latin
        && non_latin.len() == 1
        && !matches!(non_latin[0], Script::Cyrillic | Script::Greek)
        && non_latin[0] != Script::Unknown
    {
        return RestrictionLevel::ModeratelyRestrictive;
    }
    if !scripts.contains(&Script::Unknown) {
        return RestrictionLevel::MinimallyRestrictive;
    }
    RestrictionLevel::Unrestricted
}

/// True when every character of `label` maps (via this database's
/// prototypes) into `target_script` — TR39's *whole-script confusable*
/// test. `фасебоок` is single-script Cyrillic yet whole-script
/// confusable with Latin.
pub fn whole_script_confusable(
    db: &crate::UcDatabase,
    label: &str,
    target_script: Script,
) -> bool {
    let mut mapped_any = false;
    for c in label.chars() {
        let s = script_of(CodePoint::from(c));
        if s == Script::Common || s == Script::Inherited {
            continue;
        }
        if s == target_script {
            continue;
        }
        // The character must have a prototype in the target script.
        let Some(proto) = db.prototype(c as u32) else { return false };
        let lands_in_target = proto.iter().all(|&p| {
            CodePoint::new(p)
                .map(|cp| {
                    let ps = script_of(cp);
                    ps == target_script || ps == Script::Common
                })
                .unwrap_or(false)
        });
        if !lands_in_target {
            return false;
        }
        mapped_any = true;
    }
    mapped_any
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UcDatabase;

    #[test]
    fn ascii_and_single_script() {
        assert_eq!(restriction_level("example"), RestrictionLevel::AsciiOnly);
        assert_eq!(restriction_level("пример"), RestrictionLevel::SingleScript);
        assert_eq!(restriction_level("日本語"), RestrictionLevel::SingleScript);
        assert_eq!(restriction_level("münchen"), RestrictionLevel::SingleScript);
    }

    #[test]
    fn han_combinations_are_highly_restrictive() {
        assert_eq!(
            restriction_level("tokyo東京"),
            RestrictionLevel::HighlyRestrictive
        );
        assert_eq!(
            restriction_level("東京タワー"),
            RestrictionLevel::HighlyRestrictive
        );
        assert_eq!(
            restriction_level("latin한국漢字"),
            RestrictionLevel::HighlyRestrictive
        );
    }

    #[test]
    fn latin_plus_other_script() {
        // Latin + Thai: moderately restrictive.
        assert_eq!(
            restriction_level("shopไทย"),
            RestrictionLevel::ModeratelyRestrictive
        );
        // Latin + Cyrillic: explicitly NOT moderately restrictive —
        // this is the homograph mix (gооgle).
        assert_eq!(
            restriction_level("gооgle"),
            RestrictionLevel::MinimallyRestrictive
        );
        // Latin + Greek likewise.
        assert_eq!(
            restriction_level("gοοgle"),
            RestrictionLevel::MinimallyRestrictive
        );
    }

    #[test]
    fn whole_script_cyrillic_lookalike_is_flagged() {
        let db = UcDatabase::embedded();
        // All-Cyrillic string built from Latin-confusable letters:
        // every character has a Latin prototype.
        assert!(whole_script_confusable(&db, "сосо", Script::Latin));
        assert!(whole_script_confusable(&db, "хосе", Script::Latin));
        // Ordinary Cyrillic text contains letters with no Latin twin.
        assert!(!whole_script_confusable(&db, "привет", Script::Latin));
        // Pure Latin is not *confusable with* Latin — nothing maps.
        assert!(!whole_script_confusable(&db, "plain", Script::Latin));
    }

    #[test]
    fn levels_order_by_severity() {
        assert!(RestrictionLevel::AsciiOnly < RestrictionLevel::SingleScript);
        assert!(RestrictionLevel::SingleScript < RestrictionLevel::HighlyRestrictive);
        assert!(
            RestrictionLevel::ModeratelyRestrictive < RestrictionLevel::MinimallyRestrictive
        );
    }
}
