//! Parser and writer for the Unicode TR39 `confusables.txt` format.
//!
//! Each data line maps a *source* code point to its *prototype* (target)
//! sequence:
//!
//! ```text
//! 0430 ;  0061 ;  MA  # ( а → a ) CYRILLIC SMALL LETTER A → LATIN SMALL LETTER A
//! ```
//!
//! Fields are semicolon separated: source code point, target code point
//! sequence (space separated), mapping type (`MA` in the published file),
//! then an optional `#` comment. Blank lines and full-line comments are
//! skipped. The parser is tolerant of the BOM and of variable whitespace,
//! matching the real file.

use std::fmt::Write as _;

/// One confusable mapping: `source` looks like the `target` sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// Source code point.
    pub source: u32,
    /// Prototype sequence (almost always a single code point).
    pub target: Vec<u32>,
    /// Mapping class from the file (`MA` = "mixed-script confusable").
    pub class: String,
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line where the error occurred.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "confusables.txt line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn parse_hex(field: &str, line: usize) -> Result<u32, ParseError> {
    u32::from_str_radix(field.trim(), 16).map_err(|_| ParseError {
        line,
        message: format!("bad code point {field:?}"),
    })
}

/// Parses the full text of a confusables file.
pub fn parse(text: &str) -> Result<Vec<Mapping>, ParseError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_start_matches('\u{FEFF}');
        let data = match line.find('#') {
            Some(pos) => &line[..pos],
            None => line,
        };
        let data = data.trim();
        if data.is_empty() {
            continue;
        }
        let mut fields = data.split(';');
        let source = fields.next().ok_or_else(|| ParseError {
            line: line_no,
            message: "missing source field".into(),
        })?;
        let target = fields.next().ok_or_else(|| ParseError {
            line: line_no,
            message: "missing target field".into(),
        })?;
        let class = fields.next().unwrap_or("MA").trim().to_string();

        let source = parse_hex(source, line_no)?;
        let mut target_seq = Vec::new();
        for part in target.split_whitespace() {
            target_seq.push(parse_hex(part, line_no)?);
        }
        if target_seq.is_empty() {
            return Err(ParseError { line: line_no, message: "empty target sequence".into() });
        }
        out.push(Mapping { source, target: target_seq, class });
    }
    Ok(out)
}

/// Serialises mappings back to the file format (with names omitted).
pub fn write(mappings: &[Mapping]) -> String {
    let mut s = String::new();
    s.push_str("# confusables data (ShamFinder reproduction)\n");
    for m in mappings {
        let mut target = String::new();
        for (i, t) in m.target.iter().enumerate() {
            if i > 0 {
                target.push(' ');
            }
            let _ = write!(target, "{t:04X}");
        }
        let _ = writeln!(s, "{:04X} ;\t{} ;\t{}", m.source, target, m.class);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_real_format_lines() {
        let text = "\u{FEFF}# header comment\n\
                    \n\
                    0430 ;\t0061 ;\tMA\t# ( а → a ) CYRILLIC SMALL LETTER A\n\
                    FB01 ;  0066 0069 ; MA # ligature fi\n";
        let maps = parse(text).unwrap();
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].source, 0x0430);
        assert_eq!(maps[0].target, vec![0x0061]);
        assert_eq!(maps[0].class, "MA");
        assert_eq!(maps[1].target, vec![0x0066, 0x0069]);
    }

    #[test]
    fn rejects_bad_hex() {
        let err = parse("XYZ ; 0061 ; MA\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("bad code point"));
    }

    #[test]
    fn rejects_empty_target() {
        let err = parse("0430 ;  ; MA\n").unwrap_err();
        assert!(err.message.contains("empty target"));
    }

    #[test]
    fn missing_class_defaults_to_ma() {
        let maps = parse("0430 ; 0061\n").unwrap();
        assert_eq!(maps[0].class, "MA");
    }

    #[test]
    fn round_trip() {
        let maps = vec![
            Mapping { source: 0x0430, target: vec![0x61], class: "MA".into() },
            Mapping { source: 0xFB01, target: vec![0x66, 0x69], class: "MA".into() },
        ];
        let text = write(&maps);
        assert_eq!(parse(&text).unwrap(), maps);
    }

    #[test]
    fn comment_only_file_is_empty() {
        assert!(parse("# nothing\n# here\n").unwrap().is_empty());
    }
}
