//! UC — the Unicode TR39 confusables database substrate.
//!
//! The paper uses the consortium-maintained `confusables.txt` ("UC") as
//! one half of its homoglyph database (§3.2). This crate implements the
//! file format ([`format`](mod@format)), embeds a curated subset of the real mappings
//! plus the file's large mechanical families ([`data`]), and exposes the
//! database operations the detector needs ([`db`]): prototype lookup,
//! TR39 skeletons, and per-character pair queries.
//!
//! # Example
//!
//! ```
//! use sham_confusables::UcDatabase;
//!
//! let uc = UcDatabase::embedded();
//! // The 2002 homograph-attack letters: Cyrillic с and о.
//! assert!(uc.confusable("miсrоsоft", "microsoft"));
//! assert!(uc.is_pair('о' as u32, 'o' as u32));
//! ```

pub mod data;
pub mod db;
pub mod format;
pub mod restriction;

pub use db::UcDatabase;
pub use restriction::{restriction_level, whole_script_confusable, RestrictionLevel};
pub use format::{parse, write, Mapping, ParseError};
