//! Embedded UC (confusables) data.
//!
//! The real `confusables.txt` ships ~6,300 mappings maintained by hand by
//! the Unicode consortium. This module embeds a curated subset of those
//! mappings (the cross-script letter prototypes that matter for IDN
//! spoofing, including every pair the paper prints) in the original file
//! format, and programmatically extends it with the large mechanical
//! families of the real file — the Mathematical Alphanumeric Symbols and
//! the Halfwidth/Fullwidth Forms — which give UC its characteristic
//! shape: most UC characters are *not* IDNA-permitted (Table 1: 9,605
//! chars total, only 980 ∩ IDNA).

use crate::format::{parse, Mapping};

/// Curated mappings in `confusables.txt` format.
///
/// Sources: well-known TR39 letter prototypes. The lowercase entries are
/// PVALID and thus participate in IDN homograph detection; the uppercase
/// block at the end is DISALLOWED for IDN and exists to model the real
/// file's breadth.
pub const CURATED: &str = "\
# Curated confusables subset (TR39 format).
# Lowercase cross-script prototypes.
0430 ;\t0061 ;\tMA\t# ( \u{0430} -> a ) CYRILLIC SMALL A
0251 ;\t0061 ;\tMA\t# ( \u{0251} -> a ) LATIN SMALL ALPHA
03B1 ;\t0061 ;\tMA\t# ( \u{03B1} -> a ) GREEK SMALL ALPHA
0253 ;\t0062 ;\tMA\t# ( \u{0253} -> b ) LATIN SMALL B WITH HOOK
0441 ;\t0063 ;\tMA\t# ( \u{0441} -> c ) CYRILLIC SMALL ES
03F2 ;\t0063 ;\tMA\t# ( \u{03F2} -> c ) GREEK LUNATE SIGMA
1D04 ;\t0063 ;\tMA\t# ( \u{1D04} -> c ) LATIN SMALL CAPITAL C
0501 ;\t0064 ;\tMA\t# ( \u{0501} -> d ) CYRILLIC SMALL KOMI DE
0257 ;\t0064 ;\tMA\t# ( \u{0257} -> d ) LATIN SMALL D WITH HOOK
0435 ;\t0065 ;\tMA\t# ( \u{0435} -> e ) CYRILLIC SMALL IE
04BD ;\t0065 ;\tMA\t# ( \u{04BD} -> e ) CYRILLIC SMALL ABKHASIAN CHE
0192 ;\t0066 ;\tMA\t# ( \u{0192} -> f ) LATIN SMALL F WITH HOOK
03DD ;\t0066 ;\tMA\t# ( \u{03DD} -> f ) GREEK SMALL DIGAMMA
0261 ;\t0067 ;\tMA\t# ( \u{0261} -> g ) LATIN SMALL SCRIPT G
0581 ;\t0067 ;\tMA\t# ( \u{0581} -> g ) ARMENIAN SMALL CO
04BB ;\t0068 ;\tMA\t# ( \u{04BB} -> h ) CYRILLIC SMALL SHHA
0570 ;\t0068 ;\tMA\t# ( \u{0570} -> h ) ARMENIAN SMALL HO
0131 ;\t0069 ;\tMA\t# ( \u{0131} -> i ) LATIN SMALL DOTLESS I
0456 ;\t0069 ;\tMA\t# ( \u{0456} -> i ) CYRILLIC SMALL BYELORUSSIAN-UKRAINIAN I
03B9 ;\t0069 ;\tMA\t# ( \u{03B9} -> i ) GREEK SMALL IOTA
0269 ;\t0069 ;\tMA\t# ( \u{0269} -> i ) LATIN SMALL IOTA
0458 ;\t006A ;\tMA\t# ( \u{0458} -> j ) CYRILLIC SMALL JE
03F3 ;\t006A ;\tMA\t# ( \u{03F3} -> j ) GREEK LETTER YOT
03BA ;\t006B ;\tMA\t# ( \u{03BA} -> k ) GREEK SMALL KAPPA
043A ;\t006B ;\tMA\t# ( \u{043A} -> k ) CYRILLIC SMALL KA
04CF ;\t006C ;\tMA\t# ( \u{04CF} -> l ) CYRILLIC SMALL PALOCHKA
01C0 ;\t006C ;\tMA\t# ( \u{01C0} -> l ) LATIN LETTER DENTAL CLICK
0627 ;\t006C ;\tMA\t# ( \u{0627} -> l ) ARABIC LETTER ALEF
05D5 ;\t006C ;\tMA\t# ( \u{05D5} -> l ) HEBREW LETTER VAV
0661 ;\t006C ;\tMA\t# ( \u{0661} -> l ) ARABIC-INDIC DIGIT ONE
06F1 ;\t006C ;\tMA\t# ( \u{06F1} -> l ) EXTENDED ARABIC-INDIC DIGIT ONE
2113 ;\t006C ;\tMA\t# ( \u{2113} -> l ) SCRIPT SMALL L
0271 ;\t006D ;\tMA\t# ( \u{0271} -> m ) LATIN SMALL M WITH HOOK
217F ;\t006D ;\tMA\t# ( \u{217F} -> m ) SMALL ROMAN NUMERAL 1000
0578 ;\t006E ;\tMA\t# ( \u{0578} -> n ) ARMENIAN SMALL VO
057C ;\t006E ;\tMA\t# ( \u{057C} -> n ) ARMENIAN SMALL RA
0273 ;\t006E ;\tMA\t# ( \u{0273} -> n ) LATIN SMALL N WITH RETROFLEX HOOK
043E ;\t006F ;\tMA\t# ( \u{043E} -> o ) CYRILLIC SMALL O
03BF ;\t006F ;\tMA\t# ( \u{03BF} -> o ) GREEK SMALL OMICRON
0585 ;\t006F ;\tMA\t# ( \u{0585} -> o ) ARMENIAN SMALL OH
05E1 ;\t006F ;\tMA\t# ( \u{05E1} -> o ) HEBREW LETTER SAMEKH
0665 ;\t006F ;\tMA\t# ( \u{0665} -> o ) ARABIC-INDIC DIGIT FIVE
06F5 ;\t006F ;\tMA\t# ( \u{06F5} -> o ) EXTENDED ARABIC-INDIC DIGIT FIVE
0966 ;\t006F ;\tMA\t# ( \u{0966} -> o ) DEVANAGARI DIGIT ZERO
0A66 ;\t006F ;\tMA\t# ( \u{0A66} -> o ) GURMUKHI DIGIT ZERO
0AE6 ;\t006F ;\tMA\t# ( \u{0AE6} -> o ) GUJARATI DIGIT ZERO
0B66 ;\t006F ;\tMA\t# ( \u{0B66} -> o ) ORIYA DIGIT ZERO
0BE6 ;\t006F ;\tMA\t# ( \u{0BE6} -> o ) TAMIL DIGIT ZERO
0C66 ;\t006F ;\tMA\t# ( \u{0C66} -> o ) TELUGU DIGIT ZERO
0CE6 ;\t006F ;\tMA\t# ( \u{0CE6} -> o ) KANNADA DIGIT ZERO
0D66 ;\t006F ;\tMA\t# ( \u{0D66} -> o ) MALAYALAM DIGIT ZERO
0E50 ;\t006F ;\tMA\t# ( \u{0E50} -> o ) THAI DIGIT ZERO
0ED0 ;\t006F ;\tMA\t# ( \u{0ED0} -> o ) LAO DIGIT ZERO
101D ;\t006F ;\tMA\t# ( \u{101D} -> o ) MYANMAR LETTER WA
3007 ;\t006F ;\tMA\t# ( \u{3007} -> o ) IDEOGRAPHIC NUMBER ZERO
0440 ;\t0070 ;\tMA\t# ( \u{0440} -> p ) CYRILLIC SMALL ER
03C1 ;\t0070 ;\tMA\t# ( \u{03C1} -> p ) GREEK SMALL RHO
0580 ;\t0070 ;\tMA\t# ( \u{0580} -> p ) ARMENIAN SMALL REH
051B ;\t0071 ;\tMA\t# ( \u{051B} -> q ) CYRILLIC SMALL QA
0563 ;\t0071 ;\tMA\t# ( \u{0563} -> q ) ARMENIAN SMALL GIM
0433 ;\t0072 ;\tMA\t# ( \u{0433} -> r ) CYRILLIC SMALL GHE
027C ;\t0072 ;\tMA\t# ( \u{027C} -> r ) LATIN SMALL R WITH LONG LEG
0455 ;\t0073 ;\tMA\t# ( \u{0455} -> s ) CYRILLIC SMALL DZE
0282 ;\t0073 ;\tMA\t# ( \u{0282} -> s ) LATIN SMALL S WITH HOOK
03C4 ;\t0074 ;\tMA\t# ( \u{03C4} -> t ) GREEK SMALL TAU
0442 ;\t0074 ;\tMA\t# ( \u{0442} -> t ) CYRILLIC SMALL TE
057D ;\t0075 ;\tMA\t# ( \u{057D} -> u ) ARMENIAN SMALL SEH
03C5 ;\t0075 ;\tMA\t# ( \u{03C5} -> u ) GREEK SMALL UPSILON
028B ;\t0075 ;\tMA\t# ( \u{028B} -> u ) LATIN SMALL V WITH HOOK
118D8 ;\t0075 ;\tMA\t# ( \u{118D8} -> u ) WARANG CITI SMALL PU (paper Fig. 11)
03BD ;\t0076 ;\tMA\t# ( \u{03BD} -> v ) GREEK SMALL NU
0475 ;\t0076 ;\tMA\t# ( \u{0475} -> v ) CYRILLIC SMALL IZHITSA
2174 ;\t0076 ;\tMA\t# ( \u{2174} -> v ) SMALL ROMAN NUMERAL FIVE
051D ;\t0077 ;\tMA\t# ( \u{051D} -> w ) CYRILLIC SMALL WE
0461 ;\t0077 ;\tMA\t# ( \u{0461} -> w ) CYRILLIC SMALL OMEGA
03C9 ;\t0077 ;\tMA\t# ( \u{03C9} -> w ) GREEK SMALL OMEGA
0561 ;\t0077 ;\tMA\t# ( \u{0561} -> w ) ARMENIAN SMALL AYB
0445 ;\t0078 ;\tMA\t# ( \u{0445} -> x ) CYRILLIC SMALL HA
03C7 ;\t0078 ;\tMA\t# ( \u{03C7} -> x ) GREEK SMALL CHI
0443 ;\t0079 ;\tMA\t# ( \u{0443} -> y ) CYRILLIC SMALL U
04AF ;\t0079 ;\tMA\t# ( \u{04AF} -> y ) CYRILLIC SMALL STRAIGHT U
0263 ;\t0079 ;\tMA\t# ( \u{0263} -> y ) LATIN SMALL GAMMA
03B3 ;\t0079 ;\tMA\t# ( \u{03B3} -> y ) GREEK SMALL GAMMA
028F ;\t0079 ;\tMA\t# ( \u{028F} -> y ) LATIN SMALL CAPITAL Y (paper Fig. 11)
10E7 ;\t0079 ;\tMA\t# ( \u{10E7} -> y ) GEORGIAN LETTER QAR
118DC ;\t0079 ;\tMA\t# ( \u{118DC} -> y ) WARANG CITI SMALL HAR (paper Fig. 11)
0290 ;\t007A ;\tMA\t# ( \u{0290} -> z ) LATIN SMALL Z WITH RETROFLEX HOOK
01B6 ;\t007A ;\tMA\t# ( \u{01B6} -> z ) LATIN SMALL Z WITH STROKE
# Digit prototypes.
0437 ;\t0033 ;\tMA\t# ( \u{0437} -> 3 ) CYRILLIC SMALL ZE
04E1 ;\t0033 ;\tMA\t# ( \u{04E1} -> 3 ) CYRILLIC SMALL ABKHASIAN DZE
0431 ;\t0036 ;\tMA\t# ( \u{0431} -> 6 ) CYRILLIC SMALL BE
# Intra-CJK prototypes (Table 4: CJK is UC's largest IDNA block).
30A8 ;\t5DE5 ;\tMA\t# ( \u{30A8} -> \u{5DE5} ) KATAKANA E -> CJK GONG
30CB ;\t4E8C ;\tMA\t# ( \u{30CB} -> \u{4E8C} ) KATAKANA NI -> CJK TWO
30AB ;\t529B ;\tMA\t# ( \u{30AB} -> \u{529B} ) KATAKANA KA -> CJK POWER
30ED ;\t53E3 ;\tMA\t# ( \u{30ED} -> \u{53E3} ) KATAKANA RO -> CJK MOUTH
4E36 ;\t4E35 ;\tMA\t# CJK stroke variants
5713 ;\t5726 ;\tMA\t# CJK round variants
# Thai/Lao cross-script.
0E01 ;\t0E81 ;\tMA\t# THAI KO KAI -> LAO KO
0E14 ;\t0E94 ;\tMA\t# THAI DO DEK -> LAO DO
# Warang Citi small letters: TR39 maps several to Latin lowercase even
# though the glyphs differ considerably (the paper's Figure 11 point).
118C1 ;\t0061 ;\tMA\t# WARANG CITI SMALL A
118C3 ;\t0065 ;\tMA\t# WARANG CITI SMALL E -> e
118C5 ;\t006F ;\tMA\t# WARANG CITI SMALL O -> o
118C7 ;\t0069 ;\tMA\t# WARANG CITI SMALL I -> i
118CC ;\t0073 ;\tMA\t# WARANG CITI SMALL S -> s
118CE ;\t0076 ;\tMA\t# WARANG CITI SMALL V -> v
118D1 ;\t0067 ;\tMA\t# WARANG CITI SMALL G -> g
118D4 ;\t006E ;\tMA\t# WARANG CITI SMALL N -> n
118D6 ;\t0063 ;\tMA\t# WARANG CITI SMALL C -> c
118DF ;\t007A ;\tMA\t# WARANG CITI SMALL Z
# (118D8 -> u and 118DC -> y are listed with the letter prototypes above.)
# Uppercase prototypes (DISALLOWED for IDN; modelled for UC breadth).
0410 ;\t0041 ;\tMA\t# CYRILLIC CAPITAL A
0391 ;\t0041 ;\tMA\t# GREEK CAPITAL ALPHA
0412 ;\t0042 ;\tMA\t# CYRILLIC CAPITAL VE
0392 ;\t0042 ;\tMA\t# GREEK CAPITAL BETA
0421 ;\t0043 ;\tMA\t# CYRILLIC CAPITAL ES
03F9 ;\t0043 ;\tMA\t# GREEK CAPITAL LUNATE SIGMA
0415 ;\t0045 ;\tMA\t# CYRILLIC CAPITAL IE
0395 ;\t0045 ;\tMA\t# GREEK CAPITAL EPSILON
041D ;\t0048 ;\tMA\t# CYRILLIC CAPITAL EN
0397 ;\t0048 ;\tMA\t# GREEK CAPITAL ETA
0406 ;\t0049 ;\tMA\t# CYRILLIC CAPITAL BYELORUSSIAN-UKRAINIAN I
0399 ;\t0049 ;\tMA\t# GREEK CAPITAL IOTA
0408 ;\t004A ;\tMA\t# CYRILLIC CAPITAL JE
041A ;\t004B ;\tMA\t# CYRILLIC CAPITAL KA
039A ;\t004B ;\tMA\t# GREEK CAPITAL KAPPA
041C ;\t004D ;\tMA\t# CYRILLIC CAPITAL EM
039C ;\t004D ;\tMA\t# GREEK CAPITAL MU
039D ;\t004E ;\tMA\t# GREEK CAPITAL NU
041E ;\t004F ;\tMA\t# CYRILLIC CAPITAL O
039F ;\t004F ;\tMA\t# GREEK CAPITAL OMICRON
0420 ;\t0050 ;\tMA\t# CYRILLIC CAPITAL ER
03A1 ;\t0050 ;\tMA\t# GREEK CAPITAL RHO
0405 ;\t0053 ;\tMA\t# CYRILLIC CAPITAL DZE
0422 ;\t0054 ;\tMA\t# CYRILLIC CAPITAL TE
03A4 ;\t0054 ;\tMA\t# GREEK CAPITAL TAU
0425 ;\t0058 ;\tMA\t# CYRILLIC CAPITAL HA
03A7 ;\t0058 ;\tMA\t# GREEK CAPITAL CHI
03A5 ;\t0059 ;\tMA\t# GREEK CAPITAL UPSILON
0396 ;\t005A ;\tMA\t# GREEK CAPITAL ZETA
";

/// Generates the Mathematical Alphanumeric Symbols family: 26 styled
/// upper + 26 styled lower per style block, each mapping to its ASCII
/// prototype (real TR39 content, generated instead of listed).
pub fn math_alphanumeric() -> Vec<Mapping> {
    // (block start, prototype start, count)
    const STYLES: &[(u32, u32, u32)] = &[
        (0x1D400, 0x41, 26), // bold upper
        (0x1D41A, 0x61, 26), // bold lower
        (0x1D434, 0x41, 26), // italic upper
        (0x1D44E, 0x61, 26), // italic lower
        (0x1D468, 0x41, 26), // bold italic upper
        (0x1D482, 0x61, 26), // bold italic lower
        (0x1D49C, 0x41, 26), // script upper
        (0x1D4B6, 0x61, 26), // script lower
        (0x1D4D0, 0x41, 26), // bold script upper
        (0x1D4EA, 0x61, 26), // bold script lower
        (0x1D504, 0x41, 26), // fraktur upper
        (0x1D51E, 0x61, 26), // fraktur lower
        (0x1D538, 0x41, 26), // double-struck upper
        (0x1D552, 0x61, 26), // double-struck lower
        (0x1D56C, 0x41, 26), // bold fraktur upper
        (0x1D586, 0x61, 26), // bold fraktur lower
        (0x1D5A0, 0x41, 26), // sans upper
        (0x1D5BA, 0x61, 26), // sans lower
        (0x1D5D4, 0x41, 26), // sans bold upper
        (0x1D5EE, 0x61, 26), // sans bold lower
        (0x1D608, 0x41, 26), // sans italic upper
        (0x1D622, 0x61, 26), // sans italic lower
        (0x1D63C, 0x41, 26), // sans bold italic upper
        (0x1D656, 0x61, 26), // sans bold italic lower
        (0x1D670, 0x41, 26), // monospace upper
        (0x1D68A, 0x61, 26), // monospace lower
        (0x1D7CE, 0x30, 10), // bold digits
        (0x1D7D8, 0x30, 10), // double-struck digits
        (0x1D7E2, 0x30, 10), // sans digits
        (0x1D7EC, 0x30, 10), // sans bold digits
        (0x1D7F6, 0x30, 10), // monospace digits
    ];
    let mut out = Vec::new();
    for &(start, proto, count) in STYLES {
        for i in 0..count {
            out.push(Mapping {
                source: start + i,
                target: vec![proto + i],
                class: "MA".to_string(),
            });
        }
    }
    out
}

/// Generates the Halfwidth/Fullwidth Forms family (real TR39 content).
pub fn fullwidth_forms() -> Vec<Mapping> {
    let mut out = Vec::new();
    for i in 0..26 {
        out.push(Mapping { source: 0xFF21 + i, target: vec![0x41 + i], class: "MA".into() });
        out.push(Mapping { source: 0xFF41 + i, target: vec![0x61 + i], class: "MA".into() });
    }
    for i in 0..10 {
        out.push(Mapping { source: 0xFF10 + i, target: vec![0x30 + i], class: "MA".into() });
    }
    out
}

/// All embedded mappings: curated text + generated families.
pub fn embedded_mappings() -> Vec<Mapping> {
    let mut out = parse(CURATED).expect("embedded curated data must parse");
    out.extend(math_alphanumeric());
    out.extend(fullwidth_forms());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curated_data_parses() {
        let maps = parse(CURATED).unwrap();
        assert!(maps.len() > 100, "only {} curated mappings", maps.len());
    }

    #[test]
    fn paper_pairs_present() {
        let maps = parse(CURATED).unwrap();
        let has = |s: u32, t: u32| maps.iter().any(|m| m.source == s && m.target == vec![t]);
        assert!(has(0x0430, 0x61)); // Cyrillic a (Gabrilovich 2002)
        assert!(has(0x0585, 0x6F)); // Fig. 2
        assert!(has(0x0ED0, 0x6F)); // Fig. 12
        assert!(has(0x118D8, 0x75)); // Fig. 11
        assert!(has(0x118DC, 0x79)); // Fig. 11
        assert!(has(0x028F, 0x79)); // Fig. 11
        assert!(has(0x30A8, 0x5DE5)); // §2.2 non-Latin homograph
    }

    #[test]
    fn generated_families_have_expected_sizes() {
        assert_eq!(math_alphanumeric().len(), 26 * 26 + 5 * 10);
        assert_eq!(fullwidth_forms().len(), 62);
    }

    #[test]
    fn embedded_total_scale() {
        let all = embedded_mappings();
        // Hundreds of mappings — an order of magnitude below the real
        // 6,296, but with the same PVALID/DISALLOWED split (Table 1).
        assert!(all.len() > 800, "{}", all.len());
        assert!(all.len() < 3000);
    }

    #[test]
    fn no_duplicate_sources() {
        let all = embedded_mappings();
        let mut seen = std::collections::HashSet::new();
        for m in &all {
            assert!(seen.insert(m.source), "duplicate source U+{:04X}", m.source);
        }
    }
}
