//! SimChar — the paper's automatically-constructed homoglyph database.
//!
//! The key technical contribution of ShamFinder (paper §3.3): render every
//! IDNA-permitted character with a Unicode font, detect glyph pairs whose
//! pixel difference Δ is at most θ = 4, drop sparse glyphs, and use the
//! result — together with the consortium's UC list — as the homoglyph
//! database behind IDN homograph detection.
//!
//! * [`builder`] — the three-step construction with per-step timings
//!   (Table 5) and repertoire selection.
//! * [`pairs`] — brute-force (paper-faithful) and exact accelerated
//!   pairwise strategies.
//! * [`db`] — the [`SimCharDb`] type with the paper's Table 3/4 profiles
//!   and text/JSON serialization.
//! * [`homodb`] — [`HomoglyphDb`], the UC ∪ SimChar union the detector
//!   consults.
//!
//! # Example
//!
//! ```
//! use sham_simchar::{build, BuildConfig, Repertoire};
//! use sham_glyph::SynthUnifont;
//!
//! let font = SynthUnifont::v12();
//! let config = BuildConfig {
//!     repertoire: Repertoire::Blocks(vec!["Basic Latin", "Cyrillic"]),
//!     ..BuildConfig::default()
//! };
//! let result = build(&font, &config);
//! assert!(result.db.is_pair('a' as u32, 0x0430)); // a ↔ Cyrillic а
//! ```

pub mod builder;
pub mod db;
pub mod flat;
pub mod homodb;
pub mod pairs;

pub use builder::{
    build, neighbours_at, update_build, BuildConfig, BuildResult, BuildTimings, Repertoire,
    DEFAULT_THETA, SPARSE_MIN_PIXELS,
};
pub use db::SimCharDb;
pub use flat::{CharInterner, FlatPairIndex, SnapshotSection, SnapshotStat, SourceFingerprint};
pub use homodb::{DbSelection, HomoglyphDb, PairSource};
pub use pairs::{find_pairs, find_pairs_ssim, Pair, Strategy};
