//! Flat interned pair index — the detection hot path's data layout.
//!
//! [`HomoglyphDb`](crate::HomoglyphDb) answers two queries inside
//! Algorithm 1's inner loop: *is `(a, b)` a homoglyph pair (and which
//! database attests it)?* and *which equivalence component does a code
//! point belong to?* Both used to go through per-character hash probes;
//! this module replaces them with three flat arrays built once at
//! construction:
//!
//! * [`CharInterner`] — a two-level page table over the code-point
//!   space. Looking a code point up is two array reads (page, then
//!   slot) and no hashing; code points outside the pair universe
//!   resolve to `None` on the first or second read.
//! * a **union-find component closure** over the full pair universe
//!   (SimChar ∪ UC). Every listed pair `(a, b)` — from either source —
//!   unions the two endpoints, so two code points end in the same
//!   component exactly when a chain of listed pairs connects them.
//!   Unlike a "canonical map" that picks one neighbour per character,
//!   the closure is sound for **arbitrary, non-transitive** pair sets:
//!   if an IDN matches a reference under Algorithm 1, every unequal
//!   character position is a listed pair, hence in one component, hence
//!   the two stems hash identically by component representative. The
//!   per-symbol representative (the smallest code point of the
//!   component) is precomputed into a dense `Vec<u32>`.
//! * a **CSR adjacency** (offset array + neighbour array + attribution
//!   array) holding every pair edge of the union with its
//!   [`PairSource`]. A pair probe interns both endpoints and binary
//!   searches one sorted neighbour row — no `u64` key packing, no hash
//!   set.
//!
//! The closure spans the *union* universe on purpose: a pair admitted
//! under any [`DbSelection`](crate::DbSelection) is an edge of the
//! union graph, so component-representative hashing remains a sound
//! candidate filter for every selection (candidates are always
//! re-verified pairwise, so over-approximation never produces false
//! positives).

use crate::db::SimCharDb;
use crate::homodb::PairSource;
use sham_confusables::UcDatabase;
use std::collections::HashMap;
use std::io::{self, Read, Write};

/// Code points per interner page (one second-level array chunk).
const PAGE_SIZE: u32 = 256;
/// Number of first-level pages covering the whole code-point space.
const PAGE_COUNT: usize = (0x11_0000 / PAGE_SIZE) as usize;
/// First-level sentinel: page holds no interned code points.
const NO_PAGE: u32 = u32::MAX;

/// Dense code-point → symbol interner: a two-level page table over the
/// code-point space. `symbol` is two array indexations; pages are only
/// materialised where the universe actually has characters, so the
/// structure stays a few tens of kilobytes even though it addresses all
/// of Unicode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharInterner {
    /// First level: page → base offset into `slots`, or [`NO_PAGE`].
    page_table: Vec<u32>,
    /// Second level: `PAGE_SIZE`-entry chunks; `0` = absent, else
    /// symbol + 1.
    slots: Vec<u32>,
    /// Symbol → code point (the inverse mapping).
    cps: Vec<u32>,
}

impl Default for CharInterner {
    fn default() -> Self {
        CharInterner { page_table: vec![NO_PAGE; PAGE_COUNT], slots: Vec::new(), cps: Vec::new() }
    }
}

impl CharInterner {
    /// Interns `cp`, returning its (new or existing) symbol.
    pub fn intern(&mut self, cp: u32) -> u32 {
        let page = (cp / PAGE_SIZE) as usize;
        assert!(page < PAGE_COUNT, "code point {cp:#X} outside Unicode");
        if self.page_table[page] == NO_PAGE {
            self.page_table[page] = self.slots.len() as u32;
            self.slots.resize(self.slots.len() + PAGE_SIZE as usize, 0);
        }
        let slot = self.page_table[page] as usize + (cp % PAGE_SIZE) as usize;
        if self.slots[slot] == 0 {
            self.cps.push(cp);
            self.slots[slot] = self.cps.len() as u32; // symbol + 1
        }
        self.slots[slot] - 1
    }

    /// Symbol of `cp`, if interned. Two array reads, no hashing.
    #[inline]
    pub fn symbol(&self, cp: u32) -> Option<u32> {
        let base = *self.page_table.get((cp / PAGE_SIZE) as usize)?;
        if base == NO_PAGE {
            return None;
        }
        let s = self.slots[base as usize + (cp % PAGE_SIZE) as usize];
        s.checked_sub(1)
    }

    /// Code point of a symbol.
    #[inline]
    pub fn code_point(&self, symbol: u32) -> u32 {
        self.cps[symbol as usize]
    }

    /// Number of interned code points.
    pub fn len(&self) -> usize {
        self.cps.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.cps.is_empty()
    }
}

/// Union-find over symbols, with path halving. Only used during
/// construction; the result is flattened into the dense `rep` table.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Edge tag bits during construction.
const TAG_SIMCHAR: u8 = 1;
const TAG_UC: u8 = 2;

/// Identity of the two source databases a [`FlatPairIndex`] was built
/// from, recorded in the snapshot header so a serialized index can be
/// checked against the databases it is loaded for.
///
/// * `font` digests the SimChar side: θ plus every `(a, b, Δ)` pair —
///   anything that changes when the font (or the build repertoire /
///   threshold) changes, since SimChar pairs are a pure function of
///   the rendered glyphs.
/// * `unicode` digests the UC side: every `(source, prototype)` entry —
///   the identity of the confusables.txt revision, i.e. the Unicode
///   version the database models.
///
/// A snapshot whose fingerprint differs from the databases it is
/// mounted on is *stale* (built from another font release or another
/// confusables revision) and must be rejected, not trusted — see
/// [`crate::HomoglyphDb::from_prebuilt`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceFingerprint {
    /// FNV-1a over the SimChar build (θ and the pair list).
    pub font: u64,
    /// FNV-1a over the UC mapping entries.
    pub unicode: u64,
}

impl SourceFingerprint {
    /// Digests the two component databases. Deterministic: SimChar
    /// pairs iterate in sorted order and the UC map is a `BTreeMap`.
    pub fn of(simchar: &SimCharDb, uc: &UcDatabase) -> SourceFingerprint {
        let mix = |h: u64, v: u32| fnv1a_update(h, &v.to_le_bytes());
        let mut font = mix(FNV_OFFSET, simchar.theta());
        for (a, b, delta) in simchar.pairs() {
            font = mix(font, a);
            font = mix(font, b);
            font = mix(font, u32::from(delta));
        }
        let mut unicode = FNV_OFFSET;
        for (source, proto) in uc.entries() {
            unicode = mix(unicode, source);
            unicode = mix(unicode, proto.len() as u32);
            for &cp in proto {
                unicode = mix(unicode, cp);
            }
        }
        SourceFingerprint { font, unicode }
    }
}

/// The flat pair index over SimChar ∪ UC: interner, component
/// representatives, and CSR adjacency with per-edge attribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlatPairIndex {
    interner: CharInterner,
    /// Symbol → representative code point (smallest of its component).
    rep: Vec<u32>,
    /// CSR offsets: symbol `s`'s neighbours live at
    /// `neighbours[offsets[s] .. offsets[s + 1]]`, sorted.
    offsets: Vec<u32>,
    /// Neighbour symbols, grouped per source symbol.
    neighbours: Vec<u32>,
    /// Attribution parallel to `neighbours`.
    sources: Vec<PairSource>,
    /// Identity of the source databases, carried through snapshots.
    fingerprint: SourceFingerprint,
}

impl FlatPairIndex {
    /// Builds the index from the two component databases.
    ///
    /// The pair universe is exactly the union of the databases' pair
    /// relations: every SimChar `(a, b, Δ)` entry, and every UC pair —
    /// two code points whose prototype sequences are equal, or where
    /// one is listed with the other as its single-character prototype.
    pub fn build(simchar: &SimCharDb, uc: &UcDatabase) -> FlatPairIndex {
        // 1. Collect tagged edges `(lo, hi, tags)` over code points.
        let mut edges: Vec<(u32, u32, u8)> = Vec::new();
        let mut push = |a: u32, b: u32, tag: u8| {
            if a != b {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                edges.push((lo, hi, tag));
            }
        };
        for (a, b, _) in simchar.pairs() {
            push(a, b, TAG_SIMCHAR);
        }
        // UC: group sources by prototype sequence. Members of one group
        // are pairwise confusable; a single-character prototype is
        // additionally confusable with each of its sources.
        let mut groups: HashMap<&[u32], Vec<u32>> = HashMap::new();
        for (src, proto) in uc.entries() {
            groups.entry(proto).or_default().push(src);
        }
        for (proto, members) in &groups {
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    push(a, b, TAG_UC);
                }
            }
            if let &&[p] = proto {
                for &m in members {
                    push(m, p, TAG_UC);
                }
            }
        }
        // 2. Canonicalise: sort and OR the tags of duplicate edges.
        edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let mut merged: Vec<(u32, u32, u8)> = Vec::with_capacity(edges.len());
        for (a, b, tag) in edges {
            match merged.last_mut() {
                Some(last) if last.0 == a && last.1 == b => last.2 |= tag,
                _ => merged.push((a, b, tag)),
            }
        }

        // 3. Intern every endpoint (sorted edge order ⇒ deterministic
        //    symbol numbering) and union the components.
        let mut interner = CharInterner::default();
        for &(a, b, _) in &merged {
            interner.intern(a);
            interner.intern(b);
        }
        let n = interner.len();
        let mut dsu = Dsu::new(n);
        for &(a, b, _) in &merged {
            let (sa, sb) = (interner.symbol(a).unwrap(), interner.symbol(b).unwrap());
            dsu.union(sa, sb);
        }
        // Representative = smallest code point of the component.
        let mut root_min = vec![u32::MAX; n];
        for s in 0..n as u32 {
            let root = dsu.find(s) as usize;
            root_min[root] = root_min[root].min(interner.code_point(s));
        }
        let rep: Vec<u32> = (0..n as u32).map(|s| root_min[dsu.find(s) as usize]).collect();

        // 4. CSR adjacency: double each edge, sort by (from, to), scan
        //    into offset / neighbour / source arrays.
        let mut directed: Vec<(u32, u32, PairSource)> = Vec::with_capacity(merged.len() * 2);
        for &(a, b, tag) in &merged {
            let (sa, sb) = (interner.symbol(a).unwrap(), interner.symbol(b).unwrap());
            let source = match tag {
                TAG_SIMCHAR => PairSource::SimChar,
                TAG_UC => PairSource::Uc,
                _ => PairSource::Both,
            };
            directed.push((sa, sb, source));
            directed.push((sb, sa, source));
        }
        directed.sort_unstable_by_key(|&(from, to, _)| (from, to));
        let mut offsets = vec![0u32; n + 1];
        for &(from, _, _) in &directed {
            offsets[from as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let neighbours: Vec<u32> = directed.iter().map(|&(_, to, _)| to).collect();
        let sources: Vec<PairSource> = directed.iter().map(|&(_, _, s)| s).collect();

        FlatPairIndex {
            interner,
            rep,
            offsets,
            neighbours,
            sources,
            fingerprint: SourceFingerprint::of(simchar, uc),
        }
    }

    /// The interner over the pair universe.
    pub fn interner(&self) -> &CharInterner {
        &self.interner
    }

    /// Identity of the source databases this index was built from
    /// (restored verbatim from a snapshot on load).
    pub fn fingerprint(&self) -> SourceFingerprint {
        self.fingerprint
    }

    /// Component representative of `cp`: the smallest code point
    /// reachable from it through listed pairs, or `cp` itself when it
    /// participates in no pair. Two array reads plus one table read.
    #[inline]
    pub fn rep_of(&self, cp: u32) -> u32 {
        match self.interner.symbol(cp) {
            Some(s) => self.rep[s as usize],
            None => cp,
        }
    }

    /// Full-union attribution of the pair `(a, b)`, or `None` when
    /// neither database lists it. One binary search over a CSR row.
    #[inline]
    pub fn pair_source(&self, a: u32, b: u32) -> Option<PairSource> {
        if a == b {
            return None;
        }
        let sa = self.interner.symbol(a)?;
        let sb = self.interner.symbol(b)?;
        let (lo, hi) = (self.offsets[sa as usize] as usize, self.offsets[sa as usize + 1] as usize);
        let row = &self.neighbours[lo..hi];
        row.binary_search(&sb).ok().map(|i| self.sources[lo + i])
    }

    /// Number of code points in the pair universe.
    pub fn char_count(&self) -> usize {
        self.interner.len()
    }

    /// Number of undirected pair edges.
    pub fn pair_count(&self) -> usize {
        self.neighbours.len() / 2
    }

    /// Number of connected components of the pair graph.
    pub fn component_count(&self) -> usize {
        self.component_sizes().len()
    }

    /// Sizes of the connected components of the pair graph (number of
    /// code points per component), sorted descending. The union-find
    /// closure can glue long confusable chains into one component —
    /// sound (candidates are re-verified) but each giant component
    /// costs verification work, so pathological databases should be
    /// visible in the `repro` diagnostics rather than silent.
    pub fn component_sizes(&self) -> Vec<u32> {
        let mut by_rep: HashMap<u32, u32> = HashMap::new();
        for &rep in &self.rep {
            *by_rep.entry(rep).or_insert(0) += 1;
        }
        let mut sizes: Vec<u32> = by_rep.into_values().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }

    /// Writes the index as a versioned, checksummed binary snapshot —
    /// [`FlatPairIndex::write_with_section`] without a reference
    /// section.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        self.write_with_section(writer, None)
    }

    /// Writes the v3 snapshot — see the format table in
    /// `docs/ARCHITECTURE.md`. Layout: an 8-byte magic, a little-endian
    /// `u32` format version, the source fingerprint (font digest and
    /// UC digest, both `u64` — see [`SourceFingerprint`]), the
    /// pair-payload length (`u64`) and a word-chunked FNV-1a checksum
    /// (`u64`) over the fingerprint fields and the pair payload (so a
    /// corrupted fingerprint fails the checksum instead of
    /// masquerading as a stale snapshot), then the length and checksum
    /// of the optional *reference section* (both zero when absent),
    /// followed by the six `u32` array sections and the attribution
    /// byte section (each length-prefixed) and finally the
    /// reference-section bytes verbatim. Everything is flat arrays
    /// already, so serialization is a linear copy.
    ///
    /// The reference section is opaque at this layer: `sham_core`
    /// serializes its flat `ReferenceSet` into it, keyed by the same
    /// fingerprint, so one file cold-starts a whole `DetectionIndex`.
    /// An empty slice is treated as absent.
    pub fn write_with_section(
        &self,
        writer: &mut impl Write,
        extra: Option<&[u8]>,
    ) -> io::Result<()> {
        let mut payload = Vec::with_capacity(
            4 * (self.interner.page_table.len()
                + self.interner.slots.len()
                + self.interner.cps.len()
                + self.rep.len()
                + self.offsets.len()
                + self.neighbours.len())
                + self.sources.len()
                + 7 * 4,
        );
        for section in [
            &self.interner.page_table,
            &self.interner.slots,
            &self.interner.cps,
            &self.rep,
            &self.offsets,
            &self.neighbours,
        ] {
            payload.extend_from_slice(&(section.len() as u32).to_le_bytes());
            for &v in section {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        payload.extend_from_slice(&(self.sources.len() as u32).to_le_bytes());
        payload.extend(self.sources.iter().map(|s| match s {
            PairSource::SimChar => 0u8,
            PairSource::Uc => 1,
            PairSource::Both => 2,
        }));

        let digest = snapshot_checksum(&self.fingerprint, &payload);
        let extra = extra.unwrap_or(&[]);
        let extra_digest = if extra.is_empty() { 0 } else { fnv1a_lanes(extra) };

        writer.write_all(SNAPSHOT_MAGIC)?;
        writer.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        writer.write_all(&self.fingerprint.font.to_le_bytes())?;
        writer.write_all(&self.fingerprint.unicode.to_le_bytes())?;
        writer.write_all(&(payload.len() as u64).to_le_bytes())?;
        writer.write_all(&digest.to_le_bytes())?;
        writer.write_all(&(extra.len() as u64).to_le_bytes())?;
        writer.write_all(&extra_digest.to_le_bytes())?;
        writer.write_all(&payload)?;
        writer.write_all(extra)
    }

    /// Reads a snapshot written by [`FlatPairIndex::write_to`] (or any
    /// `write_with_section` output — the reference section, when
    /// present, is read past and dropped). Accepts both the current v3
    /// layout and the 44-byte-header v2 layout of earlier releases.
    pub fn read_from(reader: &mut impl Read) -> io::Result<FlatPairIndex> {
        FlatPairIndex::read_with_section(reader).map(|(idx, _)| idx)
    }

    /// Reads a snapshot together with its optional reference section,
    /// rejecting wrong magic, unsupported versions, truncated payloads
    /// and checksum mismatches with [`io::ErrorKind::InvalidData`].
    /// A successful load is structurally revalidated (section lengths
    /// must be mutually consistent), so a corrupted-but-checksummed
    /// file cannot produce out-of-bounds panics later. The reference
    /// section comes back verbatim (`None` on v2 files and on v3 files
    /// written without one); its own checksum has already been
    /// verified, but its internal layout is the caller's to parse.
    pub fn read_with_section(
        reader: &mut impl Read,
    ) -> io::Result<(FlatPairIndex, Option<Vec<u8>>)> {
        let header = SnapshotHeader::read_from(reader)?;
        let payload = header.read_pair_payload(reader)?;
        let extra = header.read_reference_section(reader)?;
        Ok((FlatPairIndex::parse_payload(&payload, header.fingerprint)?, extra))
    }

    /// [`FlatPairIndex::read_with_section`] over an in-memory snapshot
    /// — the zero-copy mount path. The header is parsed in place, both
    /// checksums run directly over sub-slices of `bytes`, and the
    /// reference section comes back as a *borrow* of the input: no
    /// intermediate payload buffer is allocated or copied, which is
    /// most of the difference between a mount and a read on a
    /// memory-mapped or already-resident snapshot. Bytes past the end
    /// of the framed sections are ignored, exactly as a streaming read
    /// leaves them unconsumed.
    pub fn read_with_section_bytes(
        bytes: &[u8],
    ) -> io::Result<(FlatPairIndex, Option<&[u8]>)> {
        let (header, rest) = SnapshotHeader::parse(bytes)?;
        let (payload, extra) = header.split_sections(rest)?;
        Ok((FlatPairIndex::parse_payload(payload, header.fingerprint)?, extra))
    }

    /// [`FlatPairIndex::read_with_section`] over a file on disk, with
    /// every rejection prefixed with the file's path (the
    /// [`FlatPairIndex::read_from_path`] convention).
    pub fn read_with_section_path(
        path: impl AsRef<std::path::Path>,
    ) -> io::Result<(FlatPairIndex, Option<Vec<u8>>)> {
        let path = path.as_ref();
        let named =
            |e: io::Error| io::Error::new(e.kind(), format!("{}: {e}", path.display()));
        let mut file = std::fs::File::open(path).map_err(named)?;
        FlatPairIndex::read_with_section(&mut io::BufReader::new(&mut file)).map_err(named)
    }

    /// Parses and structurally revalidates one checksum-verified pair
    /// payload.
    fn parse_payload(
        payload: &[u8],
        fingerprint: SourceFingerprint,
    ) -> io::Result<FlatPairIndex> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut cursor = 0usize;
        let mut read_u32s = |payload: &[u8], section: &str| -> io::Result<Vec<u32>> {
            let count = read_len(payload, &mut cursor, section)?;
            // Bound the allocation by bytes actually present — the
            // checksum is forgeable, so a section count must never
            // size a buffer beyond the payload it claims to describe.
            let end = count
                .checked_mul(4)
                .and_then(|bytes| cursor.checked_add(bytes))
                .filter(|&end| end <= payload.len())
                .ok_or_else(|| bad(&format!("truncated `{section}` section")))?;
            let out = payload[cursor..end]
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .collect();
            cursor = end;
            Ok(out)
        };
        let page_table = read_u32s(payload, "interner page table")?;
        let slots = read_u32s(payload, "interner slots")?;
        let cps = read_u32s(payload, "interner code points")?;
        let rep = read_u32s(payload, "component representatives")?;
        let offsets = read_u32s(payload, "CSR offsets")?;
        let neighbours = read_u32s(payload, "CSR neighbours")?;
        let source_count = read_len(payload, &mut cursor, "pair attribution")?;
        let source_bytes = payload
            .get(cursor..cursor + source_count)
            .ok_or_else(|| bad("truncated `pair attribution` section"))?;
        let sources: Vec<PairSource> = source_bytes
            .iter()
            .map(|&b| match b {
                0 => Ok(PairSource::SimChar),
                1 => Ok(PairSource::Uc),
                2 => Ok(PairSource::Both),
                other => Err(bad(&format!("invalid PairSource tag {other}"))),
            })
            .collect::<io::Result<_>>()?;
        cursor += source_count;
        if cursor != payload.len() {
            return Err(bad("trailing bytes after the last section"));
        }

        // Structural consistency: the arrays must describe one coherent
        // interner + rep table + CSR. Each check names the section it
        // convicts, so a rejected file says *what* is inconsistent.
        let n = cps.len();
        let inconsistent = |section: &str| {
            bad(&format!("inconsistent FlatPairIndex snapshot: `{section}` section"))
        };
        if page_table.len() != PAGE_COUNT
            || page_table
                .iter()
                .any(|&base| base != NO_PAGE && base as usize + PAGE_SIZE as usize > slots.len())
        {
            return Err(inconsistent("interner page table"));
        }
        if slots.len() % PAGE_SIZE as usize != 0 || slots.iter().any(|&s| s as usize > n) {
            return Err(inconsistent("interner slots"));
        }
        if rep.len() != n {
            return Err(inconsistent("component representatives"));
        }
        // A `Default` index has no offsets row at all; a built one
        // always has n + 1 entries.
        if !(offsets.len() == n + 1 || (n == 0 && offsets.is_empty()))
            || offsets.first().is_some_and(|&f| f != 0)
            || offsets.windows(2).any(|w| w[0] > w[1])
            || offsets.last().is_some_and(|&l| l as usize != neighbours.len())
        {
            return Err(inconsistent("CSR offsets"));
        }
        if neighbours.iter().any(|&s| s as usize >= n.max(1)) {
            return Err(inconsistent("CSR neighbours"));
        }
        if sources.len() != neighbours.len() {
            return Err(inconsistent("pair attribution"));
        }

        Ok(FlatPairIndex {
            interner: CharInterner { page_table, slots, cps },
            rep,
            offsets,
            neighbours,
            sources,
            fingerprint,
        })
    }

    /// [`FlatPairIndex::read_from`] over a file on disk, with every
    /// rejection — open failure, truncation, checksum mismatch, any
    /// named-section inconsistency — prefixed with the file's path, so
    /// an operator staring at a multi-snapshot deployment knows *which*
    /// file to rebuild and *which* section convicted it.
    pub fn read_from_path(path: impl AsRef<std::path::Path>) -> io::Result<FlatPairIndex> {
        let path = path.as_ref();
        let named = |e: io::Error| {
            io::Error::new(e.kind(), format!("{}: {e}", path.display()))
        };
        let mut file = std::fs::File::open(path).map_err(named)?;
        FlatPairIndex::read_from(&mut io::BufReader::new(&mut file)).map_err(named)
    }

    /// Inspects a v3 snapshot without mounting it: header fields, per-
    /// section sizes, both checksums, and the raw reference section
    /// (already checksum-verified) for the caller to break down
    /// further. Both checksums are verified and the pair payload is
    /// structurally revalidated, so a corrupt file is reported with
    /// the same named-section errors as a load. Older versions get a
    /// readable rejection instead of a partial report.
    pub fn snapshot_stat(reader: &mut impl Read) -> io::Result<SnapshotStat> {
        let header = SnapshotHeader::read_from(reader)?;
        if header.version != SNAPSHOT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "version {} FlatPairIndex snapshot: `index stat` reads the \
                     v{SNAPSHOT_VERSION} full-index layout — rebuild the file with \
                     `shamfinder index build`",
                    header.version
                ),
            ));
        }
        let payload = header.read_pair_payload(reader)?;
        let idx = FlatPairIndex::parse_payload(&payload, header.fingerprint)?;
        let reference_section = header.read_reference_section(reader)?;
        let u32s = |name, v: &Vec<u32>| SnapshotSection {
            name,
            elements: v.len(),
            bytes: 4 + 4 * v.len(),
        };
        let sections = vec![
            u32s("interner page table", &idx.interner.page_table),
            u32s("interner slots", &idx.interner.slots),
            u32s("interner code points", &idx.interner.cps),
            u32s("component representatives", &idx.rep),
            u32s("CSR offsets", &idx.offsets),
            u32s("CSR neighbours", &idx.neighbours),
            SnapshotSection {
                name: "pair attribution",
                elements: idx.sources.len(),
                bytes: 4 + idx.sources.len(),
            },
        ];
        Ok(SnapshotStat {
            version: header.version,
            fingerprint: header.fingerprint,
            pair_payload_bytes: header.payload_len,
            pair_checksum: header.checksum,
            sections,
            reference_bytes: header.extra_len,
            reference_checksum: header.extra_checksum,
            reference_section,
        })
    }

    /// [`FlatPairIndex::snapshot_stat`] over a file on disk, rejections
    /// prefixed with the file's path.
    pub fn snapshot_stat_path(
        path: impl AsRef<std::path::Path>,
    ) -> io::Result<SnapshotStat> {
        let path = path.as_ref();
        let named =
            |e: io::Error| io::Error::new(e.kind(), format!("{}: {e}", path.display()));
        let mut file = std::fs::File::open(path).map_err(named)?;
        FlatPairIndex::snapshot_stat(&mut io::BufReader::new(&mut file)).map_err(named)
    }
}

/// One pair-payload section as reported by
/// [`FlatPairIndex::snapshot_stat`].
#[derive(Debug, Clone)]
pub struct SnapshotSection {
    /// The section's name — the same string load errors convict by.
    pub name: &'static str,
    /// Element count (array entries, not bytes).
    pub elements: usize,
    /// On-disk footprint including the length prefix.
    pub bytes: usize,
}

/// A parsed v3 snapshot header plus section inventory — everything
/// `shamfinder index stat` prints, without mounting the index.
#[derive(Debug, Clone)]
pub struct SnapshotStat {
    /// Format version (always the current `SNAPSHOT_VERSION`; older
    /// files are rejected with a readable error instead).
    pub version: u32,
    /// The recorded source fingerprint (both digests).
    pub fingerprint: SourceFingerprint,
    /// Pair-payload length in bytes.
    pub pair_payload_bytes: u64,
    /// Checksum over fingerprint + pair payload (the v3
    /// interleaved-lane FNV-1a fold).
    pub pair_checksum: u64,
    /// Per-section inventory of the pair payload.
    pub sections: Vec<SnapshotSection>,
    /// Reference-section length in bytes (0 = absent).
    pub reference_bytes: u64,
    /// Reference-section checksum (0 = absent).
    pub reference_checksum: u64,
    /// The verified reference-section bytes, for callers that can
    /// parse its layout (`sham_core`).
    pub reference_section: Option<Vec<u8>>,
}

/// The fixed-size snapshot header: 44 bytes in v2, 60 in v3 (the two
/// reference-section fields were appended).
struct SnapshotHeader {
    version: u32,
    fingerprint: SourceFingerprint,
    payload_len: u64,
    checksum: u64,
    extra_len: u64,
    extra_checksum: u64,
}

impl SnapshotHeader {
    fn read_from(reader: &mut impl Read) -> io::Result<SnapshotHeader> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != SNAPSHOT_MAGIC {
            return Err(bad("not a FlatPairIndex snapshot (bad magic)".into()));
        }
        let mut word = [0u8; 4];
        reader.read_exact(&mut word)?;
        let version = u32::from_le_bytes(word);
        if version != SNAPSHOT_VERSION_V2 && version != SNAPSHOT_VERSION {
            return Err(bad(format!(
                "unsupported FlatPairIndex snapshot version {version} \
                 (expected {SNAPSHOT_VERSION_V2} or {SNAPSHOT_VERSION})"
            )));
        }
        let mut long = [0u8; 8];
        let mut read_u64 = |reader: &mut dyn Read| -> io::Result<u64> {
            reader.read_exact(&mut long)?;
            Ok(u64::from_le_bytes(long))
        };
        let font = read_u64(reader)?;
        let unicode = read_u64(reader)?;
        let payload_len = read_u64(reader)?;
        let checksum = read_u64(reader)?;
        let (extra_len, extra_checksum) = if version >= SNAPSHOT_VERSION {
            (read_u64(reader)?, read_u64(reader)?)
        } else {
            (0, 0)
        };
        Ok(SnapshotHeader {
            version,
            fingerprint: SourceFingerprint { font, unicode },
            payload_len,
            checksum,
            extra_len,
            extra_checksum,
        })
    }

    /// Reads and checksum-verifies the pair payload. The length field
    /// itself is outside the checksum, so it must not size any
    /// allocation: reading through `take` grows the buffer only as
    /// bytes actually arrive — a corrupt huge length on a short file
    /// becomes a truncation error, not an OOM.
    fn read_pair_payload(&self, reader: &mut impl Read) -> io::Result<Vec<u8>> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        // Reserving exactly `payload_len` would let a forged length
        // demand an arbitrary allocation; a capped reserve avoids the
        // doubling-realloc copies for every honest snapshot while a
        // forged length still only costs the cap before it surfaces as
        // a truncation error.
        let mut payload = Vec::with_capacity(self.payload_len.min(PREALLOC_CAP) as usize);
        reader.by_ref().take(self.payload_len).read_to_end(&mut payload)?;
        if payload.len() as u64 != self.payload_len {
            return Err(bad("truncated FlatPairIndex snapshot payload"));
        }
        self.verify_pair_checksum(&payload)?;
        Ok(payload)
    }

    /// Checks the recorded pair-payload checksum against `payload`.
    fn verify_pair_checksum(&self, payload: &[u8]) -> io::Result<()> {
        // v2 chained the checksum byte-at-a-time; v3 switched to the
        // interleaved-lane fold (~30× less of the mount budget on the
        // same bytes).
        let digest = if self.version >= SNAPSHOT_VERSION {
            snapshot_checksum(&self.fingerprint, payload)
        } else {
            let mut digest = FNV_OFFSET;
            digest = fnv1a_update(digest, &self.fingerprint.font.to_le_bytes());
            digest = fnv1a_update(digest, &self.fingerprint.unicode.to_le_bytes());
            fnv1a_update(digest, payload)
        };
        if digest != self.checksum {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "FlatPairIndex snapshot checksum mismatch".to_string(),
            ));
        }
        Ok(())
    }

    /// Checks the recorded reference-section checksum against `extra`.
    fn verify_extra_checksum(&self, extra: &[u8]) -> io::Result<()> {
        if fnv1a_lanes(extra) != self.extra_checksum {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "`reference section` checksum mismatch".to_string(),
            ));
        }
        Ok(())
    }

    /// Reads and checksum-verifies the optional reference section.
    fn read_reference_section(&self, reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if self.extra_len == 0 {
            return Ok(None);
        }
        // Same capped reserve as the pair payload.
        let mut extra = Vec::with_capacity(self.extra_len.min(PREALLOC_CAP) as usize);
        reader.by_ref().take(self.extra_len).read_to_end(&mut extra)?;
        if extra.len() as u64 != self.extra_len {
            return Err(bad("truncated `reference section`"));
        }
        self.verify_extra_checksum(&extra)?;
        Ok(Some(extra))
    }

    /// Parses the header from the front of an in-memory snapshot,
    /// returning it together with the bytes that follow. Same
    /// rejections as [`SnapshotHeader::read_from`].
    fn parse(bytes: &[u8]) -> io::Result<(SnapshotHeader, &[u8])> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if bytes.len() < 12 {
            return Err(bad("truncated FlatPairIndex snapshot header".into()));
        }
        if &bytes[..8] != SNAPSHOT_MAGIC {
            return Err(bad("not a FlatPairIndex snapshot (bad magic)".into()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SNAPSHOT_VERSION_V2 && version != SNAPSHOT_VERSION {
            return Err(bad(format!(
                "unsupported FlatPairIndex snapshot version {version} \
                 (expected {SNAPSHOT_VERSION_V2} or {SNAPSHOT_VERSION})"
            )));
        }
        let header_len = if version >= SNAPSHOT_VERSION { 60 } else { 44 };
        if bytes.len() < header_len {
            return Err(bad("truncated FlatPairIndex snapshot header".into()));
        }
        let u64_at =
            |offset: usize| u64::from_le_bytes(bytes[offset..offset + 8].try_into().unwrap());
        let (extra_len, extra_checksum) =
            if version >= SNAPSHOT_VERSION { (u64_at(44), u64_at(52)) } else { (0, 0) };
        Ok((
            SnapshotHeader {
                version,
                fingerprint: SourceFingerprint { font: u64_at(12), unicode: u64_at(20) },
                payload_len: u64_at(28),
                checksum: u64_at(36),
                extra_len,
                extra_checksum,
            },
            &bytes[header_len..],
        ))
    }

    /// Splits `rest` (the bytes after the header) into the
    /// checksum-verified pair payload and optional reference section,
    /// borrowing both — the zero-copy counterpart of
    /// [`SnapshotHeader::read_pair_payload`] +
    /// [`SnapshotHeader::read_reference_section`].
    fn split_sections<'a>(&self, rest: &'a [u8]) -> io::Result<(&'a [u8], Option<&'a [u8]>)> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let payload = rest
            .get(..self.payload_len as usize)
            .ok_or_else(|| bad("truncated FlatPairIndex snapshot payload"))?;
        self.verify_pair_checksum(payload)?;
        if self.extra_len == 0 {
            return Ok((payload, None));
        }
        let extra = rest[payload.len()..]
            .get(..self.extra_len as usize)
            .ok_or_else(|| bad("truncated `reference section`"))?;
        self.verify_extra_checksum(extra)?;
        Ok((payload, Some(extra)))
    }
}

/// Snapshot magic: identifies a serialized [`FlatPairIndex`].
const SNAPSHOT_MAGIC: &[u8; 8] = b"SHAMFIDX";
/// Snapshot format version; bumped on any layout change.
/// Version 2 added the [`SourceFingerprint`] header fields; version 3
/// added the optional reference section (length + checksum in the
/// header, bytes after the pair payload) and switched the checksums to
/// the interleaved-lane FNV-1a fold. v2 files still load.
const SNAPSHOT_VERSION: u32 = 3;
/// The previous, still-readable format version.
const SNAPSHOT_VERSION_V2: u32 = 2;

/// FNV-1a offset basis — the checksum chain's initial state.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Largest up-front buffer reservation a snapshot header field may
/// cause (the read itself is still bounded by bytes actually present).
const PREALLOC_CAP: u64 = 8 << 20;

/// Folds `bytes` into a running FNV-1a state byte-at-a-time — the v2
/// checksum chain, kept for reading old snapshots.
fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Folds `bytes` into a running FNV-1a state one little-endian `u64`
/// word at a time (trailing partial word byte-wise). ~8× cheaper per
/// byte than [`fnv1a_update`], but still a serial multiply chain —
/// [`fnv1a_lanes`] is the bulk digest. Chaining calls is only
/// concatenation-equivalent when every piece but the last is a
/// multiple of 8 bytes.
fn fnv1a_words(mut h: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h ^= u64::from_le_bytes(chunk.try_into().unwrap());
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    fnv1a_update(h, chunks.remainder())
}

/// The v3 bulk digest: four FNV-1a word lanes interleaved over the
/// input (lane `j` folds words `j, j + 4, j + 8, …`), trailing bytes
/// and the four lane states folded into one word chain at the end.
/// FNV's multiply chain is serial — each step waits on the previous
/// multiply — so a plain word fold caps out near one word per multiply
/// latency; four independent lanes keep four multiplies in flight,
/// which matters because both checksum passes run on every cold-start
/// mount of a megabyte-scale snapshot. Word order still matters both
/// within and across lanes (the final fold consumes lane states in
/// order), so swapped or moved words are detected as reliably as in
/// the single chain.
fn fnv1a_lanes(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut lanes = [FNV_OFFSET; 4];
    let mut chunks = bytes.chunks_exact(32);
    for chunk in &mut chunks {
        for (lane, word) in lanes.iter_mut().zip(chunk.chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(word.try_into().unwrap());
            *lane = lane.wrapping_mul(PRIME);
        }
    }
    let mut h = FNV_OFFSET;
    for lane in lanes {
        h ^= lane;
        h = h.wrapping_mul(PRIME);
    }
    fnv1a_words(h, chunks.remainder())
}

/// The v3 pair-payload checksum: both fingerprint digests and the
/// [`fnv1a_lanes`] payload digest folded into one FNV-1a chain.
fn snapshot_checksum(fingerprint: &SourceFingerprint, payload: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    for word in [fingerprint.font, fingerprint.unicode, fnv1a_lanes(payload)] {
        h ^= word;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Reads one little-endian `u32` length prefix at `*cursor`, naming
/// `section` in the rejection when the prefix itself is cut off.
fn read_len(payload: &[u8], cursor: &mut usize, section: &str) -> io::Result<usize> {
    let end = *cursor + 4;
    let bytes = payload.get(*cursor..end).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("truncated length prefix of `{section}` section"),
        )
    })?;
    *cursor = end;
    Ok(u32::from_le_bytes(bytes.try_into().unwrap()) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::Pair;
    use sham_confusables::parse;

    fn simchar(pairs: &[(u32, u32)]) -> SimCharDb {
        SimCharDb::from_pairs(
            pairs.iter().map(|&(a, b)| Pair { a, b, delta: 1 }).collect(),
            4,
        )
    }

    #[test]
    fn interner_round_trips_and_rejects_absent() {
        let mut i = CharInterner::default();
        let s1 = i.intern('a' as u32);
        let s2 = i.intern(0x1F600); // supplementary plane
        assert_ne!(s1, s2);
        assert_eq!(i.intern('a' as u32), s1); // idempotent
        assert_eq!(i.symbol('a' as u32), Some(s1));
        assert_eq!(i.symbol(0x1F600), Some(s2));
        assert_eq!(i.code_point(s2), 0x1F600);
        assert_eq!(i.symbol('b' as u32), None); // same page, not interned
        assert_eq!(i.symbol(0x4E00), None); // page never materialised
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn closure_joins_non_transitive_chains() {
        // a–b and b–c listed, a–c NOT listed: the component closure
        // still puts all three in one class…
        let idx = FlatPairIndex::build(
            &simchar(&[('a' as u32, 'b' as u32), ('b' as u32, 'c' as u32)]),
            &UcDatabase::default(),
        );
        assert_eq!(idx.rep_of('a' as u32), 'a' as u32);
        assert_eq!(idx.rep_of('b' as u32), 'a' as u32);
        assert_eq!(idx.rep_of('c' as u32), 'a' as u32);
        assert_eq!(idx.component_count(), 1);
        // …while the pair relation itself stays non-transitive.
        assert!(idx.pair_source('a' as u32, 'c' as u32).is_none());
        assert!(idx.pair_source('a' as u32, 'b' as u32).is_some());
        assert!(idx.pair_source('c' as u32, 'b' as u32).is_some());
    }

    #[test]
    fn rep_is_identity_outside_the_universe() {
        let idx = FlatPairIndex::build(&simchar(&[(1, 2)]), &UcDatabase::default());
        assert_eq!(idx.rep_of(0x4E00), 0x4E00);
        assert_eq!(idx.rep_of(7), 7);
    }

    #[test]
    fn attribution_matches_edge_origin() {
        // o–օ from SimChar only, o–ο from UC only, o–о from both.
        let sim = simchar(&[('o' as u32, 0x0585), ('o' as u32, 0x043E)]);
        let uc = UcDatabase::from_mappings(
            parse("043E ; 006F ; MA\n03BF ; 006F ; MA\n").unwrap(),
        );
        let idx = FlatPairIndex::build(&sim, &uc);
        assert_eq!(idx.pair_source('o' as u32, 0x0585), Some(PairSource::SimChar));
        assert_eq!(idx.pair_source('o' as u32, 0x03BF), Some(PairSource::Uc));
        assert_eq!(idx.pair_source('o' as u32, 0x043E), Some(PairSource::Both));
        // Symmetric, irreflexive, absent pairs rejected.
        assert_eq!(idx.pair_source(0x0585, 'o' as u32), Some(PairSource::SimChar));
        assert_eq!(idx.pair_source('o' as u32, 'o' as u32), None);
        assert_eq!(idx.pair_source('o' as u32, 'q' as u32), None);
        // Shared-prototype UC mates are a pair; all of it is one class.
        assert_eq!(idx.pair_source(0x043E, 0x03BF), Some(PairSource::Uc));
        assert_eq!(idx.component_count(), 1);
        assert_eq!(idx.rep_of(0x03BF), 'o' as u32);
    }

    #[test]
    fn multi_char_prototypes_pair_their_sources_only() {
        // Two sources sharing the multi-char prototype "fi" are a pair
        // with each other but with neither 'f' nor 'i'.
        let uc = UcDatabase::from_mappings(
            parse("FB01 ; 0066 0069 ; MA\nA101 ; 0066 0069 ; MA\n").unwrap(),
        );
        let idx = FlatPairIndex::build(&simchar(&[]), &uc);
        assert_eq!(idx.pair_source(0xFB01, 0xA101), Some(PairSource::Uc));
        assert_eq!(idx.pair_source(0xFB01, 'f' as u32), None);
        assert_eq!(idx.rep_of('f' as u32), 'f' as u32);
    }

    #[test]
    fn component_sizes_match_structure() {
        // Components {10,20,30} and {40,50}: sizes [3, 2], descending.
        let idx = FlatPairIndex::build(
            &simchar(&[(10, 20), (20, 30), (40, 50)]),
            &UcDatabase::default(),
        );
        assert_eq!(idx.component_sizes(), vec![3, 2]);
        assert_eq!(idx.component_count(), 2);
        assert!(FlatPairIndex::default().component_sizes().is_empty());
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let idx = FlatPairIndex::build(
            &simchar(&[('o' as u32, 0x0585), ('o' as u32, 0x043E), (10, 20)]),
            &UcDatabase::from_mappings(
                parse("043E ; 006F ; MA\n03BF ; 006F ; MA\n").unwrap(),
            ),
        );
        let mut bytes = Vec::new();
        idx.write_to(&mut bytes).unwrap();
        let back = FlatPairIndex::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, idx);
        // Serializing the loaded index reproduces the exact bytes.
        let mut again = Vec::new();
        back.write_to(&mut again).unwrap();
        assert_eq!(again, bytes);
        // The empty index round-trips too.
        let mut empty = Vec::new();
        FlatPairIndex::default().write_to(&mut empty).unwrap();
        assert_eq!(
            FlatPairIndex::read_from(&mut empty.as_slice()).unwrap(),
            FlatPairIndex::default()
        );
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let idx = FlatPairIndex::build(&simchar(&[(1, 2), (2, 3)]), &UcDatabase::default());
        let mut bytes = Vec::new();
        idx.write_to(&mut bytes).unwrap();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        let err = FlatPairIndex::read_from(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // Wrong version.
        let mut bad = bytes.clone();
        bad[8] = 99;
        let err = FlatPairIndex::read_from(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");

        // Flipped payload byte → checksum mismatch.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let err = FlatPairIndex::read_from(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncation → read error before any parsing.
        let mut truncated = &bytes[..bytes.len() / 2];
        assert!(FlatPairIndex::read_from(&mut truncated).is_err());

        // The payload-length field (LE u64 at offset 28..36, after the
        // 16-byte fingerprint) is outside the checksum: a flipped high
        // byte claims an enormous payload. It must surface as a clean
        // truncation error — never a huge up-front allocation or a
        // panic.
        let mut bad = bytes.clone();
        bad[35] ^= 0x80;
        let err = FlatPairIndex::read_from(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        // A flipped *fingerprint* byte (offsets 12..28) is plain file
        // corruption, not a version mismatch: it must fail the
        // checksum here, never reach the staleness check with rebuild
        // advice.
        for at in [12usize, 27] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            let err = FlatPairIndex::read_from(&mut bad.as_slice()).unwrap_err();
            assert!(err.to_string().contains("checksum"), "offset {at}: {err}");
        }

        // Likewise a forged section count (checksum recomputed so
        // parsing reaches it) must be bounds-checked against the bytes
        // actually present before it sizes any buffer. The payload
        // starts at offset 60; its first u32 is the page_table count.
        let mut forged = bytes.clone();
        forged[60..64].copy_from_slice(&u32::MAX.to_le_bytes());
        let fp = SourceFingerprint {
            font: u64::from_le_bytes(forged[12..20].try_into().unwrap()),
            unicode: u64::from_le_bytes(forged[20..28].try_into().unwrap()),
        };
        let digest = snapshot_checksum(&fp, &forged[60..]);
        forged[36..44].copy_from_slice(&digest.to_le_bytes());
        let err = FlatPairIndex::read_from(&mut forged.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("truncated `interner page table` section"),
            "{err}"
        );
    }

    #[test]
    fn rejections_name_the_offending_section() {
        let idx = FlatPairIndex::build(&simchar(&[(1, 2), (2, 3)]), &UcDatabase::default());
        let mut bytes = Vec::new();
        idx.write_to(&mut bytes).unwrap();
        // Payload layout: sections start at offset 60, each a u32 count
        // then count u32s. Walk to each section's count, forge it, and
        // re-checksum so parsing reaches the structural check.
        let reload = |bytes: &[u8]| FlatPairIndex::read_from(&mut &bytes[..]);
        let section_offsets = {
            let mut at = 60usize;
            let mut offs = Vec::new();
            for _ in 0..6 {
                offs.push(at);
                let count =
                    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
                at += 4 + 4 * count;
            }
            offs.push(at); // attribution count
            offs
        };
        let reseal = |bytes: &mut Vec<u8>| {
            let fp = SourceFingerprint {
                font: u64::from_le_bytes(bytes[12..20].try_into().unwrap()),
                unicode: u64::from_le_bytes(bytes[20..28].try_into().unwrap()),
            };
            let digest = snapshot_checksum(&fp, &bytes[60..]);
            bytes[36..44].copy_from_slice(&digest.to_le_bytes());
        };
        for (i, section) in [
            "interner page table",
            "interner slots",
            "interner code points",
            "component representatives",
            "CSR offsets",
            "CSR neighbours",
            "pair attribution",
        ]
        .iter()
        .enumerate()
        {
            // Oversized count → a truncation naming the section.
            let mut forged = bytes.clone();
            forged[section_offsets[i]..section_offsets[i] + 4]
                .copy_from_slice(&u32::MAX.to_le_bytes());
            reseal(&mut forged);
            let err = reload(&forged).unwrap_err();
            assert!(err.to_string().contains(section), "section {section}: {err}");
        }
        // A structurally inconsistent (but well-framed) section names
        // itself too: point a rep entry nowhere by shrinking the rep
        // count to 0 while keeping the code-point section non-empty.
        let rep_at = section_offsets[3];
        let rep_count =
            u32::from_le_bytes(bytes[rep_at..rep_at + 4].try_into().unwrap()) as usize;
        let mut forged = bytes.clone();
        forged[rep_at..rep_at + 4].copy_from_slice(&0u32.to_le_bytes());
        forged.drain(rep_at + 4..rep_at + 4 + 4 * rep_count);
        reseal(&mut forged);
        // The removed bytes shrink the payload; fix the length header.
        let new_len = (forged.len() - 60) as u64;
        forged[28..36].copy_from_slice(&new_len.to_le_bytes());
        reseal(&mut forged);
        let err = reload(&forged).unwrap_err();
        assert!(
            err.to_string().contains("component representatives"),
            "{err}"
        );
    }

    #[test]
    fn path_loader_names_the_file_in_every_rejection() {
        let dir = std::env::temp_dir().join("shamfinder-flat-test");
        std::fs::create_dir_all(&dir).unwrap();

        // Open failure names the missing file.
        let missing = dir.join("does-not-exist.idx");
        let err = FlatPairIndex::read_from_path(&missing).unwrap_err();
        assert!(err.to_string().contains("does-not-exist.idx"), "{err}");

        // A corrupt file names both the file and the reason.
        let idx = FlatPairIndex::build(&simchar(&[(1, 2)]), &UcDatabase::default());
        let mut bytes = Vec::new();
        idx.write_to(&mut bytes).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let corrupt = dir.join("corrupt.idx");
        std::fs::write(&corrupt, &bytes).unwrap();
        let err = FlatPairIndex::read_from_path(&corrupt).unwrap_err();
        assert!(err.to_string().contains("corrupt.idx"), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");

        // And a good file loads identically through the path API.
        bytes[last] ^= 0x01;
        let good = dir.join("good.idx");
        std::fs::write(&good, &bytes).unwrap();
        assert_eq!(FlatPairIndex::read_from_path(&good).unwrap(), idx);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_identifies_the_sources() {
        let sim = simchar(&[(1, 2), (2, 3)]);
        let uc = UcDatabase::from_mappings(parse("043E ; 006F ; MA\n").unwrap());
        let fp = SourceFingerprint::of(&sim, &uc);
        // Deterministic, and sensitive to each half independently.
        assert_eq!(fp, SourceFingerprint::of(&sim, &uc));
        let other_font = SourceFingerprint::of(&simchar(&[(1, 2), (2, 4)]), &uc);
        assert_eq!(other_font.unicode, fp.unicode);
        assert_ne!(other_font.font, fp.font);
        let other_uc = SourceFingerprint::of(
            &sim,
            &UcDatabase::from_mappings(parse("03BF ; 006F ; MA\n").unwrap()),
        );
        assert_eq!(other_uc.font, fp.font);
        assert_ne!(other_uc.unicode, fp.unicode);
        // θ alone changes the font digest (same pair list).
        let retuned = SimCharDb::from_pairs(
            [(1u32, 2u32), (2, 3)].iter().map(|&(a, b)| Pair { a, b, delta: 1 }).collect(),
            7,
        );
        assert_ne!(SourceFingerprint::of(&retuned, &uc).font, fp.font);
    }

    #[test]
    fn snapshot_carries_the_fingerprint() {
        let sim = simchar(&[('o' as u32, 0x043E)]);
        let uc = UcDatabase::from_mappings(parse("043E ; 006F ; MA\n").unwrap());
        let idx = FlatPairIndex::build(&sim, &uc);
        assert_eq!(idx.fingerprint(), SourceFingerprint::of(&sim, &uc));
        let mut bytes = Vec::new();
        idx.write_to(&mut bytes).unwrap();
        let back = FlatPairIndex::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.fingerprint(), idx.fingerprint());
    }

    /// Rewrites v3 snapshot bytes into the 44-byte-header v2 layout
    /// (reference section dropped, byte-wise checksum), for
    /// backward-compat tests.
    fn downgrade_to_v2(v3: &[u8]) -> Vec<u8> {
        let mut v2 = Vec::with_capacity(v3.len() - 16);
        v2.extend_from_slice(&v3[..44]);
        let payload_len =
            u64::from_le_bytes(v3[28..36].try_into().unwrap()) as usize;
        v2.extend_from_slice(&v3[60..60 + payload_len]);
        v2[8..12].copy_from_slice(&2u32.to_le_bytes());
        let digest = fnv1a_update(fnv1a_update(FNV_OFFSET, &v2[12..28]), &v2[44..]);
        v2[36..44].copy_from_slice(&digest.to_le_bytes());
        v2
    }

    #[test]
    fn v2_snapshots_still_load() {
        let idx = FlatPairIndex::build(
            &simchar(&[('o' as u32, 0x043E), (1, 2)]),
            &UcDatabase::from_mappings(parse("043E ; 006F ; MA\n").unwrap()),
        );
        let mut v3 = Vec::new();
        idx.write_with_section(&mut v3, Some(b"reference bytes")).unwrap();
        let v2 = downgrade_to_v2(&v3);
        assert_eq!(FlatPairIndex::read_from(&mut v2.as_slice()).unwrap(), idx);
        // The section-aware reader reports the absence, not an error.
        let (back, section) =
            FlatPairIndex::read_with_section(&mut v2.as_slice()).unwrap();
        assert_eq!(back, idx);
        assert!(section.is_none());
        // A corrupted v2 payload still fails its (byte-wise) checksum.
        let mut bad = v2.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let err = FlatPairIndex::read_from(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn reference_section_round_trips_and_rejects_corruption() {
        let idx = FlatPairIndex::build(&simchar(&[(1, 2), (2, 3)]), &UcDatabase::default());
        let section: Vec<u8> = (0u16..600).flat_map(u16::to_le_bytes).collect();
        let mut bytes = Vec::new();
        idx.write_with_section(&mut bytes, Some(&section)).unwrap();

        // Both halves come back; the plain reader skips the section.
        let (back, got) = FlatPairIndex::read_with_section(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, idx);
        assert_eq!(got.as_deref(), Some(&section[..]));
        assert_eq!(FlatPairIndex::read_from(&mut bytes.as_slice()).unwrap(), idx);

        // No section (or an empty one) reads back as None.
        let mut plain = Vec::new();
        idx.write_to(&mut plain).unwrap();
        let (_, none) = FlatPairIndex::read_with_section(&mut plain.as_slice()).unwrap();
        assert!(none.is_none());
        let mut empty = Vec::new();
        idx.write_with_section(&mut empty, Some(&[])).unwrap();
        assert_eq!(empty, plain);

        // A flipped section byte fails the section checksum — the pair
        // half is untouched, so the error names the reference section.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let err = FlatPairIndex::read_with_section(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("`reference section` checksum"), "{err}");

        // Truncation inside the section names it too.
        let cut = bytes.len() - 7;
        let err = FlatPairIndex::read_with_section(&mut &bytes[..cut]).unwrap_err();
        assert!(err.to_string().contains("truncated `reference section`"), "{err}");
    }

    #[test]
    fn snapshot_stat_inventories_the_file() {
        let idx = FlatPairIndex::build(&simchar(&[(1, 2), (2, 3)]), &UcDatabase::default());
        let section = vec![0xABu8; 96];
        let mut bytes = Vec::new();
        idx.write_with_section(&mut bytes, Some(&section)).unwrap();

        let stat = FlatPairIndex::snapshot_stat(&mut bytes.as_slice()).unwrap();
        assert_eq!(stat.version, SNAPSHOT_VERSION);
        assert_eq!(stat.fingerprint, idx.fingerprint());
        assert_eq!(stat.reference_bytes, 96);
        assert_eq!(stat.reference_section.as_deref(), Some(&section[..]));
        assert_ne!(stat.reference_checksum, 0);
        // The section inventory accounts for the whole pair payload.
        let total: usize = stat.sections.iter().map(|s| s.bytes).sum();
        assert_eq!(total as u64, stat.pair_payload_bytes);
        assert_eq!(bytes.len() as u64, 60 + stat.pair_payload_bytes + 96);
        // Header checksum field matches the reported one.
        assert_eq!(
            u64::from_le_bytes(bytes[36..44].try_into().unwrap()),
            stat.pair_checksum
        );

        // Sectionless files stat too; old versions get a readable error.
        let mut plain = Vec::new();
        idx.write_to(&mut plain).unwrap();
        let stat = FlatPairIndex::snapshot_stat(&mut plain.as_slice()).unwrap();
        assert_eq!(stat.reference_bytes, 0);
        assert!(stat.reference_section.is_none());
        let v2 = downgrade_to_v2(&plain);
        let err = FlatPairIndex::snapshot_stat(&mut v2.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version 2"), "{err}");
        assert!(err.to_string().contains("index build"), "{err}");
        let mut v1 = v2.clone();
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        let err = FlatPairIndex::snapshot_stat(&mut v1.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unsupported"), "{err}");
        // Corruption surfaces with the load path's named errors.
        let mut bad = bytes.clone();
        bad[61] ^= 0x01;
        let err = FlatPairIndex::snapshot_stat(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn counts_are_consistent() {
        let idx = FlatPairIndex::build(
            &simchar(&[(10, 20), (20, 30), (40, 50)]),
            &UcDatabase::default(),
        );
        assert_eq!(idx.char_count(), 5);
        assert_eq!(idx.pair_count(), 3);
        assert_eq!(idx.component_count(), 2);
        assert_eq!(idx.rep_of(30), 10);
        assert_eq!(idx.rep_of(50), 40);
    }
}
