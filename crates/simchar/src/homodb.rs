//! The unified homoglyph database: UC ∪ SimChar.
//!
//! ShamFinder's detector consults both databases (paper Fig. 2): a
//! character pair is a homoglyph pair if either SimChar (pixel evidence)
//! or UC (consortium curation) lists it. The union also records *which*
//! source matched — the paper's Table 8/14 compare detection under
//! UC-only, SimChar-only and the union, and the warning UI (Fig. 12)
//! names the source.
//!
//! All pair queries are answered by the [`FlatPairIndex`] built once at
//! construction: interning both code points (two array reads each) and
//! binary-searching one CSR neighbour row. The component databases are
//! kept only for their own richer APIs (profiles, skeletons, per-pair
//! Δ) — the hot path never touches them.

use crate::db::SimCharDb;
use crate::flat::{FlatPairIndex, SourceFingerprint};
use serde::{Deserialize, Serialize};
use sham_confusables::UcDatabase;
use std::collections::BTreeSet;
use std::io;
use std::sync::Arc;

/// Which database(s) attest a homoglyph pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairSource {
    /// Only SimChar lists the pair.
    SimChar,
    /// Only UC lists the pair.
    Uc,
    /// Both databases list it.
    Both,
}

/// Which component databases to consult — the experimental knob behind
/// Tables 8 and 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DbSelection {
    /// UC only (the prior work's configuration, Quinkert et al.).
    UcOnly,
    /// SimChar only.
    SimCharOnly,
    /// UC ∪ SimChar (ShamFinder's configuration).
    Union,
}

/// The combined homoglyph database.
///
/// The component databases are held behind [`Arc`]s: every constructor
/// takes `impl Into<Arc<_>>`, so existing owned-value callers compile
/// unchanged while a fleet of workers mounting snapshots over one
/// shared SimChar build + confusables table passes `Arc` clones and
/// pays two refcount bumps per mount instead of two deep copies.
#[derive(Debug, Clone)]
pub struct HomoglyphDb {
    simchar: Arc<SimCharDb>,
    uc: Arc<UcDatabase>,
    /// Flat interned view of the union pair relation: interner,
    /// component representatives, CSR adjacency with attribution.
    flat: FlatPairIndex,
}

impl HomoglyphDb {
    /// Combines a SimChar build with a UC database, building the flat
    /// pair index (interner + union-find closure + CSR) eagerly.
    pub fn new(
        simchar: impl Into<Arc<SimCharDb>>,
        uc: impl Into<Arc<UcDatabase>>,
    ) -> Self {
        let (simchar, uc) = (simchar.into(), uc.into());
        let flat = FlatPairIndex::build(&simchar, &uc);
        HomoglyphDb { simchar, uc, flat }
    }

    /// Assembles the database around a prebuilt flat index — typically
    /// one loaded with [`FlatPairIndex::read_from`] from a snapshot
    /// produced earlier by [`FlatPairIndex::write_to`] — skipping the
    /// interner/union-find/CSR construction entirely.
    ///
    /// The snapshot's recorded [`SourceFingerprint`] is checked against
    /// the component databases actually supplied: a *stale* snapshot —
    /// built from a different font release (SimChar digest mismatch) or
    /// a different confusables revision (UC digest mismatch) — is
    /// rejected with a descriptive [`io::ErrorKind::InvalidData`]
    /// error instead of trusted, because its pair universe would answer
    /// queries for databases the process is not running.
    pub fn from_prebuilt(
        simchar: impl Into<Arc<SimCharDb>>,
        uc: impl Into<Arc<UcDatabase>>,
        flat: FlatPairIndex,
    ) -> io::Result<Self> {
        let (simchar, uc) = (simchar.into(), uc.into());
        let expected = SourceFingerprint::of(&simchar, &uc);
        let recorded = flat.fingerprint();
        if recorded != expected {
            let mut stale = Vec::new();
            if recorded.font != expected.font {
                stale.push("SimChar/font build");
            }
            if recorded.unicode != expected.unicode {
                stale.push("UC confusables revision");
            }
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "stale FlatPairIndex snapshot: recorded source fingerprint \
                     (font {:#018x}, unicode {:#018x}) does not match the supplied \
                     databases (font {:#018x}, unicode {:#018x}) — mismatched: {}. \
                     Rebuild the snapshot with `shamfinder index build`.",
                    recorded.font,
                    recorded.unicode,
                    expected.font,
                    expected.unicode,
                    stale.join(" and "),
                ),
            ));
        }
        Ok(HomoglyphDb { simchar, uc, flat })
    }

    /// Loads a [`FlatPairIndex`] snapshot from `path` and mounts it on
    /// the supplied component databases — [`FlatPairIndex::read_from_path`]
    /// followed by [`HomoglyphDb::from_prebuilt`], with the staleness
    /// rejection also prefixed by the file's path. Every error out of
    /// this function — unreadable file, truncated or inconsistent
    /// section (named), checksum mismatch, stale fingerprint — says
    /// which file it is talking about.
    pub fn from_snapshot_file(
        path: impl AsRef<std::path::Path>,
        simchar: impl Into<Arc<SimCharDb>>,
        uc: impl Into<Arc<UcDatabase>>,
    ) -> io::Result<Self> {
        let path = path.as_ref();
        let flat = FlatPairIndex::read_from_path(path)?;
        HomoglyphDb::from_prebuilt(simchar, uc, flat)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))
    }

    /// The SimChar component.
    pub fn simchar(&self) -> &SimCharDb {
        &self.simchar
    }

    /// The SimChar component's shared handle — clone this to mount
    /// further snapshots without copying the database.
    pub fn simchar_shared(&self) -> Arc<SimCharDb> {
        Arc::clone(&self.simchar)
    }

    /// The UC component.
    pub fn uc(&self) -> &UcDatabase {
        &self.uc
    }

    /// The UC component's shared handle.
    pub fn uc_shared(&self) -> Arc<UcDatabase> {
        Arc::clone(&self.uc)
    }

    /// The flat pair index over the union universe.
    pub fn flat(&self) -> &FlatPairIndex {
        &self.flat
    }

    /// Component representative of `cp` under the union-find closure of
    /// the pair graph (identity for code points in no pair). The basis
    /// of the `CanonicalClosure` candidate index in `sham_core`.
    #[inline]
    pub fn rep_of(&self, cp: u32) -> u32 {
        self.flat.rep_of(cp)
    }

    /// Tests a character pair under the given selection.
    pub fn is_pair_with(&self, a: u32, b: u32, selection: DbSelection) -> bool {
        self.pair_source_with(a, b, selection).is_some()
    }

    /// Tests a pair under the full union.
    pub fn is_pair(&self, a: u32, b: u32) -> bool {
        self.flat.pair_source(a, b).is_some()
    }

    /// Combined membership test and attribution in a single probe.
    /// Returns the **full union** attribution (matching
    /// [`HomoglyphDb::source_of`]) when the pair is attested by a
    /// component that `selection` admits, `None` otherwise — so
    /// `pair_source_with(a, b, s).is_some() == is_pair_with(a, b, s)`.
    /// This is the detector's inner-loop query: one CSR row probe,
    /// then a selection gate on the stored attribution.
    #[inline]
    pub fn pair_source_with(
        &self,
        a: u32,
        b: u32,
        selection: DbSelection,
    ) -> Option<PairSource> {
        let source = self.flat.pair_source(a, b)?;
        let admitted = match selection {
            DbSelection::Union => true,
            DbSelection::UcOnly => matches!(source, PairSource::Uc | PairSource::Both),
            DbSelection::SimCharOnly => {
                matches!(source, PairSource::SimChar | PairSource::Both)
            }
        };
        admitted.then_some(source)
    }

    /// Attribution for a pair, or `None` when neither database lists it.
    pub fn source_of(&self, a: u32, b: u32) -> Option<PairSource> {
        self.flat.pair_source(a, b)
    }

    /// All candidate substitutions for `cp` under the union: SimChar
    /// partners plus UC prototype relatives.
    pub fn homoglyphs_of(&self, cp: u32) -> BTreeSet<u32> {
        let mut out: BTreeSet<u32> = self
            .simchar
            .homoglyphs_of(cp)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        if let Some(proto) = self.uc.prototype(cp) {
            if proto.len() == 1 {
                out.insert(proto[0]);
                out.extend(self.uc.homoglyphs_of(proto[0]));
            }
        }
        out.extend(self.uc.homoglyphs_of(cp));
        out.remove(&cp);
        out
    }

    /// Summary counts: `(simchar pairs, uc pairs, union character count)`.
    pub fn stats(&self) -> (usize, usize, usize) {
        let mut chars: BTreeSet<u32> = self.simchar.chars().collect();
        chars.extend(self.uc.char_set());
        (self.simchar.pair_count(), self.uc.pair_count(), chars.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::Pair;
    use sham_confusables::parse;

    fn db() -> HomoglyphDb {
        let simchar = SimCharDb::from_pairs(
            vec![
                Pair { a: 'o' as u32, b: 0x0585, delta: 1 }, // SimChar-only
                Pair { a: 'o' as u32, b: 0x043E, delta: 0 }, // both
            ],
            4,
        );
        let uc = UcDatabase::from_mappings(
            parse("043E ; 006F ; MA\n03BF ; 006F ; MA\n").unwrap(), // UC: о→o, ο→o
        );
        HomoglyphDb::new(simchar, uc)
    }

    #[test]
    fn union_covers_both_sources() {
        let db = db();
        assert!(db.is_pair('o' as u32, 0x0585)); // SimChar only
        assert!(db.is_pair('o' as u32, 0x03BF)); // UC only
        assert!(db.is_pair('o' as u32, 0x043E)); // both
        assert!(!db.is_pair('o' as u32, 'e' as u32));
    }

    #[test]
    fn selection_restricts_sources() {
        let db = db();
        assert!(!db.is_pair_with('o' as u32, 0x0585, DbSelection::UcOnly));
        assert!(db.is_pair_with('o' as u32, 0x0585, DbSelection::SimCharOnly));
        assert!(!db.is_pair_with('o' as u32, 0x03BF, DbSelection::SimCharOnly));
        assert!(db.is_pair_with('o' as u32, 0x03BF, DbSelection::UcOnly));
    }

    #[test]
    fn pair_source_with_agrees_with_split_probes() {
        // The combined probe must behave exactly like is_pair_with
        // followed by source_of, for every selection and pair kind.
        let db = db();
        let cases = [
            ('o' as u32, 0x0585), // SimChar only
            ('o' as u32, 0x03BF), // UC only
            ('o' as u32, 0x043E), // both
            ('o' as u32, 'q' as u32), // neither
            ('o' as u32, 'o' as u32), // identical
        ];
        for selection in [DbSelection::UcOnly, DbSelection::SimCharOnly, DbSelection::Union] {
            for &(a, b) in &cases {
                let combined = db.pair_source_with(a, b, selection);
                assert_eq!(
                    combined.is_some(),
                    db.is_pair_with(a, b, selection),
                    "membership mismatch for {a:#X},{b:#X} under {selection:?}"
                );
                if combined.is_some() {
                    assert_eq!(
                        combined,
                        db.source_of(a, b),
                        "attribution mismatch for {a:#X},{b:#X} under {selection:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn from_prebuilt_accepts_matching_and_rejects_stale_snapshots() {
        let db = db();
        let (sim, uc) = (db.simchar().clone(), db.uc().clone());

        // Round trip against the same sources: accepted, identical
        // answers.
        let mut bytes = Vec::new();
        db.flat().write_to(&mut bytes).unwrap();
        let flat = FlatPairIndex::read_from(&mut bytes.as_slice()).unwrap();
        let mounted = HomoglyphDb::from_prebuilt(sim.clone(), uc.clone(), flat).unwrap();
        assert!(mounted.is_pair('o' as u32, 0x0585));

        // A snapshot from a different font build: rejected, naming the
        // stale half.
        let other_sim = SimCharDb::from_pairs(
            vec![Pair { a: 'o' as u32, b: 0x0585, delta: 1 }],
            4,
        );
        let stale = FlatPairIndex::read_from(&mut bytes.as_slice()).unwrap();
        let err = HomoglyphDb::from_prebuilt(other_sim, uc.clone(), stale).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("stale"), "{err}");
        assert!(err.to_string().contains("SimChar/font build"), "{err}");

        // A snapshot from a different confusables revision likewise.
        let other_uc = UcDatabase::from_mappings(parse("03BF ; 006F ; MA\n").unwrap());
        let stale = FlatPairIndex::read_from(&mut bytes.as_slice()).unwrap();
        let err = HomoglyphDb::from_prebuilt(sim, other_uc, stale).unwrap_err();
        assert!(err.to_string().contains("UC confusables revision"), "{err}");
    }

    #[test]
    fn snapshot_file_mount_names_the_file() {
        let db = db();
        let dir = std::env::temp_dir().join("shamfinder-homodb-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pairs.idx");
        let mut bytes = Vec::new();
        db.flat().write_to(&mut bytes).unwrap();
        std::fs::write(&path, &bytes).unwrap();

        // Matching sources: mounts cleanly from disk.
        let mounted = HomoglyphDb::from_snapshot_file(
            &path,
            db.simchar().clone(),
            db.uc().clone(),
        )
        .unwrap();
        assert!(mounted.is_pair('o' as u32, 0x0585));

        // Stale sources: rejected naming the file AND the stale half.
        let other_sim = SimCharDb::from_pairs(
            vec![Pair { a: 'o' as u32, b: 0x0585, delta: 1 }],
            4,
        );
        let err =
            HomoglyphDb::from_snapshot_file(&path, other_sim, db.uc().clone()).unwrap_err();
        assert!(err.to_string().contains("pairs.idx"), "{err}");
        assert!(err.to_string().contains("SimChar/font build"), "{err}");

        // Unreadable file: rejected naming the file.
        let missing = dir.join("missing.idx");
        let err = HomoglyphDb::from_snapshot_file(
            &missing,
            db.simchar().clone(),
            db.uc().clone(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("missing.idx"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn source_attribution() {
        let db = db();
        assert_eq!(db.source_of('o' as u32, 0x0585), Some(PairSource::SimChar));
        assert_eq!(db.source_of('o' as u32, 0x03BF), Some(PairSource::Uc));
        assert_eq!(db.source_of('o' as u32, 0x043E), Some(PairSource::Both));
        assert_eq!(db.source_of('o' as u32, 'q' as u32), None);
    }

    #[test]
    fn homoglyphs_union() {
        let db = db();
        let h = db.homoglyphs_of('o' as u32);
        assert!(h.contains(&0x0585));
        assert!(h.contains(&0x043E));
        assert!(h.contains(&0x03BF));
        assert!(!h.contains(&('o' as u32)));
        // Reverse direction: homoglyphs of Cyrillic o include Latin o via
        // the UC prototype and omicron via the shared prototype.
        let h = db.homoglyphs_of(0x043E);
        assert!(h.contains(&('o' as u32)));
        assert!(h.contains(&0x03BF));
    }

    #[test]
    fn stats_count_union_chars() {
        let (sim_pairs, uc_pairs, chars) = db().stats();
        assert_eq!(sim_pairs, 2);
        assert_eq!(uc_pairs, 2);
        assert_eq!(chars, 4); // o, о, ο, օ
    }
}
