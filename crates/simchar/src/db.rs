//! The SimChar database: pair storage, profiles and serialization.

use crate::pairs::Pair;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The SimChar homoglyph database (paper §3.3–3.4): the set of
/// IDNA-permitted character pairs whose glyphs differ by at most θ pixels,
/// after sparse elimination.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimCharDb {
    theta: u32,
    /// Canonicalised pairs (a < b) with their Δ.
    pairs: Vec<(u32, u32, u8)>,
    /// Adjacency: code point → (partner, Δ), partner-sorted so
    /// membership is a binary search. Detection-rate queries go through
    /// the flat CSR index of [`crate::HomoglyphDb`] instead.
    #[serde(skip)]
    adjacency: BTreeMap<u32, Vec<(u32, u8)>>,
}

impl SimCharDb {
    /// Builds the database from detected pairs.
    pub fn from_pairs(pairs: Vec<Pair>, theta: u32) -> Self {
        let mut db = SimCharDb {
            theta,
            pairs: pairs.iter().map(|p| (p.a, p.b, p.delta)).collect(),
            adjacency: BTreeMap::new(),
        };
        db.pairs.sort_unstable();
        db.pairs.dedup();
        db.rebuild_adjacency();
        db
    }

    fn rebuild_adjacency(&mut self) {
        self.adjacency.clear();
        for &(a, b, d) in &self.pairs {
            self.adjacency.entry(a).or_default().push((b, d));
            self.adjacency.entry(b).or_default().push((a, d));
        }
        for partners in self.adjacency.values_mut() {
            partners.sort_unstable();
        }
    }

    /// The θ this database was built with.
    pub fn theta(&self) -> u32 {
        self.theta
    }

    /// Number of homoglyph pairs (Table 1: 13,208 for the paper's font).
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of distinct characters participating in at least one pair
    /// (Table 1: 12,686 for the paper's font).
    pub fn char_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Iterates all pairs as `(a, b, delta)` with `a < b`.
    pub fn pairs(&self) -> impl Iterator<Item = (u32, u32, u8)> + '_ {
        self.pairs.iter().copied()
    }

    /// All characters participating in pairs.
    pub fn chars(&self) -> impl Iterator<Item = u32> + '_ {
        self.adjacency.keys().copied()
    }

    /// True when `(a, b)` is a listed homoglyph pair: a binary search
    /// of `a`'s partner-sorted adjacency row.
    pub fn is_pair(&self, a: u32, b: u32) -> bool {
        self.adjacency
            .get(&a)
            .is_some_and(|row| row.binary_search_by_key(&b, |&(p, _)| p).is_ok())
    }

    /// Homoglyphs of `cp`, sorted by Δ then code point.
    pub fn homoglyphs_of(&self, cp: u32) -> Vec<(u32, u8)> {
        let mut v = self.adjacency.get(&cp).cloned().unwrap_or_default();
        v.sort_by_key(|&(p, d)| (d, p));
        v
    }

    /// Per-letter homoglyph counts for the Basic Latin lowercase letters —
    /// the paper's Table 3 (SimChar column).
    pub fn latin_profile(&self) -> Vec<(char, usize)> {
        let mut out: Vec<(char, usize)> = ('a'..='z')
            .map(|c| (c, self.adjacency.get(&(c as u32)).map_or(0, Vec::len)))
            .collect();
        out.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        out
    }

    /// Character counts per Unicode block — the paper's Table 4. Returns
    /// `(block name, characters in pairs)` sorted descending.
    pub fn block_profile(&self) -> Vec<(&'static str, usize)> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for &cp in self.adjacency.keys() {
            if let Some(block) = sham_unicode::block_of(sham_unicode::CodePoint(cp)) {
                *counts.entry(block.name).or_default() += 1;
            }
        }
        let mut out: Vec<(&'static str, usize)> = counts.into_iter().collect();
        out.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(y.0)));
        out
    }

    /// Intersection size with another character set (Table 1's
    /// `SimChar ∩ UC` row): characters present in both.
    pub fn chars_in_common(&self, other: &BTreeSet<u32>) -> usize {
        self.adjacency.keys().filter(|cp| other.contains(cp)).count()
    }

    /// Serialises to the compact text format:
    /// `SIMCHAR v1 theta=<θ>` header then `AAAA BBBB d` lines.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("SIMCHAR v1 theta={}\n", self.theta);
        for &(a, b, d) in &self.pairs {
            let _ = writeln!(s, "{a:04X} {b:04X} {d}");
        }
        s
    }

    /// Parses the compact text format.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty SimChar file")?;
        let theta = header
            .strip_prefix("SIMCHAR v1 theta=")
            .ok_or_else(|| format!("bad header {header:?}"))?
            .trim()
            .parse::<u32>()
            .map_err(|e| format!("bad theta: {e}"))?;
        let mut pairs = Vec::new();
        for (no, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut f = line.split_whitespace();
            let parse_cp = |s: Option<&str>| -> Result<u32, String> {
                u32::from_str_radix(s.ok_or(format!("line {}: short line", no + 2))?, 16)
                    .map_err(|e| format!("line {}: {e}", no + 2))
            };
            let a = parse_cp(f.next())?;
            let b = parse_cp(f.next())?;
            let d: u8 = f
                .next()
                .ok_or(format!("line {}: missing delta", no + 2))?
                .parse()
                .map_err(|e| format!("line {}: {e}", no + 2))?;
            pairs.push(Pair { a, b, delta: d });
        }
        Ok(SimCharDb::from_pairs(pairs, theta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimCharDb {
        SimCharDb::from_pairs(
            vec![
                Pair { a: 'o' as u32, b: 0x043E, delta: 0 },
                Pair { a: 'o' as u32, b: 0x0585, delta: 1 },
                Pair { a: 'e' as u32, b: 0x0435, delta: 0 },
                Pair { a: 0xAC01, b: 0xAC02, delta: 2 },
                Pair { a: 0xAC01, b: 0xAC04, delta: 4 },
            ],
            4,
        )
    }

    #[test]
    fn counts() {
        let db = sample();
        assert_eq!(db.pair_count(), 5);
        // o, о, օ, e, е, AC01, AC02, AC04.
        assert_eq!(db.char_count(), 8);
        assert_eq!(db.theta(), 4);
    }

    #[test]
    fn is_pair_symmetric() {
        let db = sample();
        assert!(db.is_pair('o' as u32, 0x043E));
        assert!(db.is_pair(0x043E, 'o' as u32));
        assert!(!db.is_pair('o' as u32, 0x0435));
    }

    #[test]
    fn homoglyphs_sorted_by_delta() {
        let db = sample();
        let h = db.homoglyphs_of('o' as u32);
        assert_eq!(h, vec![(0x043E, 0), (0x0585, 1)]);
        assert!(db.homoglyphs_of('q' as u32).is_empty());
    }

    #[test]
    fn latin_profile_ranks_by_count() {
        let db = sample();
        let profile = db.latin_profile();
        assert_eq!(profile[0], ('o', 2));
        assert_eq!(profile[1], ('e', 1));
        // All 26 letters are reported.
        assert_eq!(profile.len(), 26);
    }

    #[test]
    fn block_profile_counts_chars() {
        let db = sample();
        let profile = db.block_profile();
        let get = |name: &str| profile.iter().find(|(n, _)| *n == name).map(|&(_, c)| c);
        assert_eq!(get("Hangul Syllables"), Some(3));
        assert_eq!(get("Cyrillic"), Some(2));
        assert_eq!(get("Basic Latin"), Some(2));
        assert_eq!(get("Armenian"), Some(1));
    }

    #[test]
    fn text_round_trip() {
        let db = sample();
        let text = db.to_text();
        let parsed = SimCharDb::from_text(&text).unwrap();
        assert_eq!(parsed.pair_count(), db.pair_count());
        assert_eq!(parsed.theta(), db.theta());
        assert!(parsed.is_pair('o' as u32, 0x0585));
    }

    #[test]
    fn text_parse_rejects_garbage() {
        assert!(SimCharDb::from_text("").is_err());
        assert!(SimCharDb::from_text("WRONG HEADER\n").is_err());
        assert!(SimCharDb::from_text("SIMCHAR v1 theta=4\nZZZZ\n").is_err());
        assert!(SimCharDb::from_text("SIMCHAR v1 theta=4\n0041 0042\n").is_err());
    }

    #[test]
    fn json_round_trip_rebuilds_adjacency() {
        let db = sample();
        let json = serde_json::to_string(&db).unwrap();
        let mut back: SimCharDb = serde_json::from_str(&json).unwrap();
        back.rebuild_adjacency();
        assert!(back.is_pair('o' as u32, 0x043E));
    }

    #[test]
    fn duplicate_pairs_are_collapsed() {
        let db = SimCharDb::from_pairs(
            vec![
                Pair { a: 1, b: 2, delta: 3 },
                Pair { a: 1, b: 2, delta: 3 },
            ],
            4,
        );
        assert_eq!(db.pair_count(), 1);
    }
}
