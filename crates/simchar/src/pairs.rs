//! Pairwise glyph-comparison strategies.
//!
//! Step II of the SimChar construction compares every pair of rendered
//! glyphs and keeps those with Δ ≤ θ. The paper brute-forces the ~1.4
//! billion pairs of its 52,457 glyphs in 10.9 hours on 15 cores
//! (Table 5). This module implements that baseline plus two exact
//! accelerations, benchmarked against each other in the
//! `pairwise_strategies` ablation:
//!
//! * [`Strategy::BruteForce`] — the paper's algorithm, verbatim.
//! * [`Strategy::PixelCountPrune`] — sort by ink count; `|#a − #b| > θ`
//!   implies `Δ > θ`, so only a sliding window needs full comparison.
//! * [`Strategy::BandedIndex`] — split each bitmap into θ+1 horizontal
//!   bands; by pigeonhole, `Δ ≤ θ` forces at least one *identical* band,
//!   so hashing bands yields a candidate set with no false negatives.

use rayon::prelude::*;
use sham_glyph::Bitmap;
use std::collections::{HashMap, HashSet};

/// A detected homoglyph pair: the two code points (ordered `a < b`) and
/// their pixel difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pair {
    /// Smaller code point.
    pub a: u32,
    /// Larger code point.
    pub b: u32,
    /// Pixel difference Δ (≤ θ).
    pub delta: u8,
}

/// Pairwise comparison strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// All `n·(n−1)/2` comparisons (the paper's approach).
    BruteForce,
    /// Ink-count window pruning (exact).
    PixelCountPrune,
    /// Banded signature index (exact).
    BandedIndex,
}

/// Finds all pairs whose SSIM is at least `min_ssim` — the perceptual
/// alternative the paper considered and rejected (§3.3). SSIM admits no
/// pigeonhole shortcut, so this is always a brute-force sweep; the
/// `delta_vs_ssim` bench quantifies the cost gap. The recorded `delta`
/// of each pair is still the pixel difference, for comparability.
pub fn find_pairs_ssim(glyphs: &[(u32, Bitmap)], min_ssim: f64) -> Vec<Pair> {
    let mut pairs: Vec<Pair> = (0..glyphs.len())
        .into_par_iter()
        .flat_map_iter(|i| {
            let (cp_i, ref g_i) = glyphs[i];
            glyphs[i + 1..].iter().filter_map(move |&(cp_j, ref g_j)| {
                (sham_glyph::metrics::ssim(g_i, g_j) >= min_ssim).then(|| {
                    make_pair(cp_i, cp_j, g_i.delta(g_j).min(255))
                })
            })
        })
        .collect();
    pairs.sort();
    pairs.dedup();
    pairs
}

/// Finds all pairs with `Δ ≤ theta` among `glyphs` using `strategy`.
/// Results are sorted and identical across strategies.
pub fn find_pairs(glyphs: &[(u32, Bitmap)], theta: u32, strategy: Strategy) -> Vec<Pair> {
    let mut pairs = match strategy {
        Strategy::BruteForce => brute_force(glyphs, theta),
        Strategy::PixelCountPrune => pixel_count_prune(glyphs, theta),
        Strategy::BandedIndex => banded_index(glyphs, theta),
    };
    pairs.sort();
    pairs.dedup();
    pairs
}

fn make_pair(a: u32, b: u32, delta: u32) -> Pair {
    let (a, b) = if a < b { (a, b) } else { (b, a) };
    Pair { a, b, delta: delta as u8 }
}

fn brute_force(glyphs: &[(u32, Bitmap)], theta: u32) -> Vec<Pair> {
    // Parallelise over the first index, mirroring the paper's
    // multi-process split of the outer loop.
    (0..glyphs.len())
        .into_par_iter()
        .flat_map_iter(|i| {
            let (cp_i, ref g_i) = glyphs[i];
            glyphs[i + 1..].iter().filter_map(move |&(cp_j, ref g_j)| {
                let d = g_i.delta(g_j);
                (d <= theta).then(|| make_pair(cp_i, cp_j, d))
            })
        })
        .collect()
}

fn pixel_count_prune(glyphs: &[(u32, Bitmap)], theta: u32) -> Vec<Pair> {
    let mut order: Vec<usize> = (0..glyphs.len()).collect();
    let counts: Vec<u32> = glyphs.iter().map(|(_, g)| g.popcount()).collect();
    order.sort_by_key(|&i| counts[i]);

    let counts_ref = &counts;
    let order_ref = &order;
    order
        .par_iter()
        .enumerate()
        .flat_map_iter(move |(rank, &i)| {
            let (cp_i, ref g_i) = glyphs[i];
            let ci = counts_ref[i];
            order_ref[rank + 1..]
                .iter()
                .take_while(move |&&j| counts_ref[j] <= ci + theta)
                .filter_map(move |&j| {
                    let (cp_j, ref g_j) = glyphs[j];
                    let d = g_i.delta(g_j);
                    (d <= theta).then(|| make_pair(cp_i, cp_j, d))
                })
        })
        .collect()
}

fn banded_index(glyphs: &[(u32, Bitmap)], theta: u32) -> Vec<Pair> {
    let bands = (theta as usize) + 1;
    // Bucket glyph indices by (band position, band content hash).
    let mut buckets: HashMap<(usize, u64), Vec<usize>> = HashMap::new();
    for (idx, (_, g)) in glyphs.iter().enumerate() {
        for (band, sig) in g.band_signatures(bands).into_iter().enumerate() {
            buckets.entry((band, sig)).or_default().push(idx);
        }
    }
    let counts: Vec<u32> = glyphs.iter().map(|(_, g)| g.popcount()).collect();

    let groups: Vec<Vec<usize>> =
        buckets.into_values().filter(|members| members.len() >= 2).collect();

    let counts_ref = &counts;
    let candidate_pairs: HashSet<(usize, usize)> = groups
        .par_iter()
        .flat_map_iter(move |members| {
            members.iter().enumerate().flat_map(move |(k, &i)| {
                members[k + 1..].iter().filter_map(move |&j| {
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    // Cheap ink-count prefilter inside large groups.
                    if counts_ref[lo].abs_diff(counts_ref[hi]) > theta {
                        None
                    } else {
                        Some((lo, hi))
                    }
                })
            })
        })
        .collect();

    candidate_pairs
        .into_par_iter()
        .filter_map(|(i, j)| {
            let (cp_i, ref g_i) = glyphs[i];
            let (cp_j, ref g_j) = glyphs[j];
            let d = g_i.delta(g_j);
            (d <= theta).then(|| make_pair(cp_i, cp_j, d))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_glyph::scriptgen::{perturb, stroke_glyph, Region};

    /// A deterministic corpus with planted near-pairs.
    fn corpus() -> Vec<(u32, Bitmap)> {
        let mut out = Vec::new();
        for i in 0..120u32 {
            let base = stroke_glyph(u64::from(i / 3) * 977, Region::LETTER, 5);
            // Each triple shares a base: member 0 exact, member 1 at
            // distance 2, member 2 at distance 7 (outside θ = 4).
            let g = match i % 3 {
                0 => base,
                1 => perturb(base, u64::from(i) + 5000, 2),
                _ => perturb(base, u64::from(i) + 9000, 7),
            };
            out.push((0x4000 + i, g));
        }
        out
    }

    #[test]
    fn strategies_agree_exactly() {
        let glyphs = corpus();
        for theta in [0u32, 2, 4, 6] {
            let brute = find_pairs(&glyphs, theta, Strategy::BruteForce);
            let prune = find_pairs(&glyphs, theta, Strategy::PixelCountPrune);
            let banded = find_pairs(&glyphs, theta, Strategy::BandedIndex);
            assert_eq!(brute, prune, "prune disagrees at theta={theta}");
            assert_eq!(brute, banded, "banded disagrees at theta={theta}");
        }
    }

    #[test]
    fn strategies_are_thread_count_invariant() {
        // The executor merges per-chunk buffers in base order, so every
        // strategy must return byte-identical pair lists at any worker
        // count — this is the contract the determinism section of
        // docs/ARCHITECTURE.md documents.
        let glyphs = corpus();
        let baseline: Vec<Vec<Pair>> = {
            let _one = rayon::ThreadOverride::new(1);
            [Strategy::BruteForce, Strategy::PixelCountPrune, Strategy::BandedIndex]
                .iter()
                .map(|&s| find_pairs(&glyphs, 4, s))
                .collect()
        };
        for threads in [2usize, 5] {
            let _forced = rayon::ThreadOverride::new(threads);
            for (i, &s) in [Strategy::BruteForce, Strategy::PixelCountPrune, Strategy::BandedIndex]
                .iter()
                .enumerate()
            {
                assert_eq!(
                    find_pairs(&glyphs, 4, s),
                    baseline[i],
                    "{s:?} diverges at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn planted_pairs_are_found() {
        let glyphs = corpus();
        let pairs = find_pairs(&glyphs, 4, Strategy::BandedIndex);
        // Every triple contributes the (member0, member1) pair at Δ=2.
        let found: HashSet<(u32, u32)> = pairs.iter().map(|p| (p.a, p.b)).collect();
        for t in 0..40u32 {
            let a = 0x4000 + t * 3;
            let b = a + 1;
            assert!(found.contains(&(a, b)), "missing planted pair {a:X},{b:X}");
        }
        for p in &pairs {
            assert!(p.delta <= 4);
        }
    }

    #[test]
    fn theta_zero_finds_only_identical() {
        let base = stroke_glyph(1, Region::LETTER, 5);
        let glyphs = vec![(1u32, base), (2u32, base), (3u32, perturb(base, 9, 1))];
        let pairs = find_pairs(&glyphs, 0, Strategy::BruteForce);
        assert_eq!(pairs, vec![Pair { a: 1, b: 2, delta: 0 }]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(find_pairs(&[], 4, Strategy::BandedIndex).is_empty());
        let one = vec![(7u32, stroke_glyph(3, Region::LETTER, 4))];
        assert!(find_pairs(&one, 4, Strategy::BandedIndex).is_empty());
    }

    #[test]
    fn pair_ordering_is_canonical() {
        let base = stroke_glyph(11, Region::LETTER, 5);
        let glyphs = vec![(9u32, base), (3u32, base)];
        let pairs = find_pairs(&glyphs, 0, Strategy::PixelCountPrune);
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].a < pairs[0].b);
    }

    #[test]
    fn ssim_sweep_finds_identical_and_near_pairs() {
        let glyphs = corpus();
        let pairs = find_pairs_ssim(&glyphs, 0.97);
        assert!(!pairs.is_empty());
        // Identical glyphs (triple member 0 shares a base with nothing at
        // SSIM 1.0 except... each triple's members differ; the planted
        // Δ=2 pairs have SSIM close to 1 and must appear.
        let delta_pairs = find_pairs(&glyphs, 2, Strategy::BruteForce);
        for p in &delta_pairs {
            if p.delta == 0 {
                assert!(pairs.contains(p), "identical pair missing from SSIM sweep");
            }
        }
    }

    #[test]
    fn ssim_and_delta_databases_overlap_but_differ() {
        // The ablation claim: thresholded SSIM and thresholded Δ broadly
        // agree on near-identical glyphs but are not the same criterion.
        let glyphs = corpus();
        let by_delta: HashSet<(u32, u32)> =
            find_pairs(&glyphs, 4, Strategy::BruteForce).iter().map(|p| (p.a, p.b)).collect();
        let by_ssim: HashSet<(u32, u32)> =
            find_pairs_ssim(&glyphs, 0.95).iter().map(|p| (p.a, p.b)).collect();
        let overlap = by_delta.intersection(&by_ssim).count();
        assert!(overlap > 0);
        assert!(
            overlap * 2 >= by_delta.len().min(by_ssim.len()),
            "criteria should broadly agree: overlap {overlap}, delta {}, ssim {}",
            by_delta.len(),
            by_ssim.len()
        );
    }
}
