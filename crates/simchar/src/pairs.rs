//! Pairwise glyph-comparison strategies.
//!
//! Step II of the SimChar construction compares every pair of rendered
//! glyphs and keeps those with Δ ≤ θ. The paper brute-forces the ~1.4
//! billion pairs of its 52,457 glyphs in 10.9 hours on 15 cores
//! (Table 5). This module implements that baseline plus two exact
//! accelerations, benchmarked against each other in the
//! `pairwise_strategies` ablation:
//!
//! * [`Strategy::BruteForce`] — the paper's algorithm, verbatim.
//! * [`Strategy::PixelCountPrune`] — sort by ink count; `|#a − #b| > θ`
//!   implies `Δ > θ`, so only a sliding window needs full comparison.
//! * [`Strategy::BandedIndex`] — split each bitmap into θ+1 horizontal
//!   bands; by pigeonhole, `Δ ≤ θ` forces at least one *identical* band,
//!   so hashing bands yields a candidate set with no false negatives.
//!
//! Every strategy compares bitmaps with [`Bitmap::delta_capped`], which
//! abandons the row scan the moment the running difference exceeds θ —
//! almost every candidate pair blows past θ within the first few of the
//! 32 rows, so the capped metric does a fraction of the XOR/popcount
//! work of the full Δ.

use rayon::prelude::*;
use sham_glyph::Bitmap;

/// A detected homoglyph pair: the two code points (ordered `a < b`) and
/// their pixel difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pair {
    /// Smaller code point.
    pub a: u32,
    /// Larger code point.
    pub b: u32,
    /// Pixel difference Δ (≤ θ).
    pub delta: u8,
}

/// Pairwise comparison strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// All `n·(n−1)/2` comparisons (the paper's approach).
    BruteForce,
    /// Ink-count window pruning (exact).
    PixelCountPrune,
    /// Banded signature index (exact).
    BandedIndex,
}

/// Finds all pairs whose SSIM is at least `min_ssim` — the perceptual
/// alternative the paper considered and rejected (§3.3). SSIM admits no
/// pigeonhole shortcut, so this is always a brute-force sweep; the
/// `delta_vs_ssim` bench quantifies the cost gap. The recorded `delta`
/// of each pair is still the pixel difference, for comparability.
pub fn find_pairs_ssim(glyphs: &[(u32, Bitmap)], min_ssim: f64) -> Vec<Pair> {
    let mut pairs: Vec<Pair> = (0..glyphs.len())
        .into_par_iter()
        .flat_map_iter(|i| {
            let (cp_i, ref g_i) = glyphs[i];
            glyphs[i + 1..]
                .iter()
                .filter(move |(_, g_j)| sham_glyph::metrics::ssim(g_i, g_j) >= min_ssim)
                .map(move |&(cp_j, ref g_j)| make_pair(cp_i, cp_j, g_i.delta(g_j).min(255)))
        })
        .collect();
    pairs.sort();
    pairs.dedup();
    pairs
}

/// Finds all pairs with `Δ ≤ theta` among `glyphs` using `strategy`.
/// Results are sorted and identical across strategies.
pub fn find_pairs(glyphs: &[(u32, Bitmap)], theta: u32, strategy: Strategy) -> Vec<Pair> {
    let mut pairs = match strategy {
        Strategy::BruteForce => brute_force(glyphs, theta),
        Strategy::PixelCountPrune => pixel_count_prune(glyphs, theta),
        Strategy::BandedIndex => banded_index(glyphs, theta),
    };
    pairs.sort();
    pairs.dedup();
    pairs
}

fn make_pair(a: u32, b: u32, delta: u32) -> Pair {
    let (a, b) = if a < b { (a, b) } else { (b, a) };
    Pair { a, b, delta: delta as u8 }
}

fn brute_force(glyphs: &[(u32, Bitmap)], theta: u32) -> Vec<Pair> {
    // Parallelise over the first index, mirroring the paper's
    // multi-process split of the outer loop.
    (0..glyphs.len())
        .into_par_iter()
        .flat_map_iter(|i| {
            let (cp_i, ref g_i) = glyphs[i];
            glyphs[i + 1..].iter().filter_map(move |&(cp_j, ref g_j)| {
                g_i.delta_capped(g_j, theta).map(|d| make_pair(cp_i, cp_j, d))
            })
        })
        .collect()
}

fn pixel_count_prune(glyphs: &[(u32, Bitmap)], theta: u32) -> Vec<Pair> {
    let mut order: Vec<usize> = (0..glyphs.len()).collect();
    let counts: Vec<u32> = glyphs.iter().map(|(_, g)| g.popcount()).collect();
    order.sort_by_key(|&i| counts[i]);

    let counts_ref = &counts;
    let order_ref = &order;
    order
        .par_iter()
        .enumerate()
        .flat_map_iter(move |(rank, &i)| {
            let (cp_i, ref g_i) = glyphs[i];
            let ci = counts_ref[i];
            order_ref[rank + 1..]
                .iter()
                .take_while(move |&&j| counts_ref[j] <= ci + theta)
                .filter_map(move |&j| {
                    let (cp_j, ref g_j) = glyphs[j];
                    g_i.delta_capped(g_j, theta).map(|d| make_pair(cp_i, cp_j, d))
                })
        })
        .collect()
}

fn banded_index(glyphs: &[(u32, Bitmap)], theta: u32) -> Vec<Pair> {
    let bands = (theta as usize) + 1;
    let counts: Vec<u32> = glyphs.iter().map(|(_, g)| g.popcount()).collect();

    // All band signatures, flat (`glyph × band`), kept for the
    // first-shared-band dedup below.
    let sigs: Vec<u64> = glyphs
        .iter()
        .flat_map(|(_, g)| g.band_signatures(bands))
        .collect();

    // Group glyph indices by (band position, band content): sort keyed
    // tuples and cut equal runs. No hash map — grouping is one sort,
    // and group order is deterministic by construction.
    let mut keyed: Vec<(u32, u64, u32)> = Vec::with_capacity(glyphs.len() * bands);
    for (idx, _) in glyphs.iter().enumerate() {
        for band in 0..bands {
            keyed.push((band as u32, sigs[idx * bands + band], idx as u32));
        }
    }
    keyed.sort_unstable();
    let mut groups: Vec<(u32, Vec<u32>)> = Vec::new(); // (band, members)
    let mut start = 0usize;
    while start < keyed.len() {
        let (band, sig, _) = keyed[start];
        let mut end = start + 1;
        while end < keyed.len() && (keyed[end].0, keyed[end].1) == (band, sig) {
            end += 1;
        }
        if end - start >= 2 {
            let mut members: Vec<u32> =
                keyed[start..end].iter().map(|&(_, _, i)| i).collect();
            // Pre-sort by ink count: the in-group prefilter becomes a
            // `take_while` over a sorted run (`counts[j] > counts[i] + θ`
            // ends the scan) instead of a per-pair `abs_diff` test.
            members.sort_unstable_by_key(|&i| (counts[i as usize], i));
            groups.push((band, members));
        }
        start = end;
    }

    // Each group yields its candidate list in order; a pair sharing k
    // identical bands would appear in k groups, so it is claimed by the
    // *first* shared band only (a ≤ θ-word signature comparison) and
    // every candidate is verified exactly once — no global candidate
    // barrier at all. `find_pairs` sorts the merged result.
    let counts_ref = &counts;
    let sigs_ref = &sigs;
    groups
        .par_iter()
        .flat_map_iter(move |&(band, ref members)| {
            members.iter().enumerate().flat_map(move |(k, &i)| {
                let ci = counts_ref[i as usize];
                members[k + 1..]
                    .iter()
                    .take_while(move |&&j| counts_ref[j as usize] <= ci + theta)
                    .filter_map(move |&j| {
                        let (i, j) = (i as usize, j as usize);
                        let first_shared = (0..band as usize)
                            .all(|b| sigs_ref[i * bands + b] != sigs_ref[j * bands + b]);
                        if !first_shared {
                            return None; // an earlier band owns this pair
                        }
                        let (cp_i, ref g_i) = glyphs[i];
                        let (cp_j, ref g_j) = glyphs[j];
                        g_i.delta_capped(g_j, theta).map(|d| make_pair(cp_i, cp_j, d))
                    })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_glyph::scriptgen::{perturb, stroke_glyph, Region};
    use std::collections::HashSet;

    /// A deterministic corpus with planted near-pairs.
    fn corpus() -> Vec<(u32, Bitmap)> {
        let mut out = Vec::new();
        for i in 0..120u32 {
            let base = stroke_glyph(u64::from(i / 3) * 977, Region::LETTER, 5);
            // Each triple shares a base: member 0 exact, member 1 at
            // distance 2, member 2 at distance 7 (outside θ = 4).
            let g = match i % 3 {
                0 => base,
                1 => perturb(base, u64::from(i) + 5000, 2),
                _ => perturb(base, u64::from(i) + 9000, 7),
            };
            out.push((0x4000 + i, g));
        }
        out
    }

    #[test]
    fn strategies_agree_exactly() {
        let glyphs = corpus();
        for theta in [0u32, 2, 4, 6] {
            let brute = find_pairs(&glyphs, theta, Strategy::BruteForce);
            let prune = find_pairs(&glyphs, theta, Strategy::PixelCountPrune);
            let banded = find_pairs(&glyphs, theta, Strategy::BandedIndex);
            assert_eq!(brute, prune, "prune disagrees at theta={theta}");
            assert_eq!(brute, banded, "banded disagrees at theta={theta}");
        }
    }

    #[test]
    fn strategies_are_thread_count_invariant() {
        // The executor merges per-chunk buffers in base order, so every
        // strategy must return byte-identical pair lists at any worker
        // count — this is the contract the determinism section of
        // docs/ARCHITECTURE.md documents.
        let glyphs = corpus();
        let baseline: Vec<Vec<Pair>> = {
            let _one = rayon::ThreadOverride::new(1);
            [Strategy::BruteForce, Strategy::PixelCountPrune, Strategy::BandedIndex]
                .iter()
                .map(|&s| find_pairs(&glyphs, 4, s))
                .collect()
        };
        for threads in [2usize, 5] {
            let _forced = rayon::ThreadOverride::new(threads);
            for (i, &s) in [Strategy::BruteForce, Strategy::PixelCountPrune, Strategy::BandedIndex]
                .iter()
                .enumerate()
            {
                assert_eq!(
                    find_pairs(&glyphs, 4, s),
                    baseline[i],
                    "{s:?} diverges at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn planted_pairs_are_found() {
        let glyphs = corpus();
        let pairs = find_pairs(&glyphs, 4, Strategy::BandedIndex);
        // Every triple contributes the (member0, member1) pair at Δ=2.
        let found: HashSet<(u32, u32)> = pairs.iter().map(|p| (p.a, p.b)).collect();
        for t in 0..40u32 {
            let a = 0x4000 + t * 3;
            let b = a + 1;
            assert!(found.contains(&(a, b)), "missing planted pair {a:X},{b:X}");
        }
        for p in &pairs {
            assert!(p.delta <= 4);
        }
    }

    #[test]
    fn theta_zero_finds_only_identical() {
        let base = stroke_glyph(1, Region::LETTER, 5);
        let glyphs = vec![(1u32, base), (2u32, base), (3u32, perturb(base, 9, 1))];
        let pairs = find_pairs(&glyphs, 0, Strategy::BruteForce);
        assert_eq!(pairs, vec![Pair { a: 1, b: 2, delta: 0 }]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(find_pairs(&[], 4, Strategy::BandedIndex).is_empty());
        let one = vec![(7u32, stroke_glyph(3, Region::LETTER, 4))];
        assert!(find_pairs(&one, 4, Strategy::BandedIndex).is_empty());
    }

    #[test]
    fn pair_ordering_is_canonical() {
        let base = stroke_glyph(11, Region::LETTER, 5);
        let glyphs = vec![(9u32, base), (3u32, base)];
        let pairs = find_pairs(&glyphs, 0, Strategy::PixelCountPrune);
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].a < pairs[0].b);
    }

    #[test]
    fn ssim_sweep_finds_identical_and_near_pairs() {
        let glyphs = corpus();
        let pairs = find_pairs_ssim(&glyphs, 0.97);
        assert!(!pairs.is_empty());
        // Identical glyphs (triple member 0 shares a base with nothing at
        // SSIM 1.0 except... each triple's members differ; the planted
        // Δ=2 pairs have SSIM close to 1 and must appear.
        let delta_pairs = find_pairs(&glyphs, 2, Strategy::BruteForce);
        for p in &delta_pairs {
            if p.delta == 0 {
                assert!(pairs.contains(p), "identical pair missing from SSIM sweep");
            }
        }
    }

    #[test]
    fn ssim_and_delta_databases_overlap_but_differ() {
        // The ablation claim: thresholded SSIM and thresholded Δ broadly
        // agree on near-identical glyphs but are not the same criterion.
        let glyphs = corpus();
        let by_delta: HashSet<(u32, u32)> =
            find_pairs(&glyphs, 4, Strategy::BruteForce).iter().map(|p| (p.a, p.b)).collect();
        let by_ssim: HashSet<(u32, u32)> =
            find_pairs_ssim(&glyphs, 0.95).iter().map(|p| (p.a, p.b)).collect();
        let overlap = by_delta.intersection(&by_ssim).count();
        assert!(overlap > 0);
        assert!(
            overlap * 2 >= by_delta.len().min(by_ssim.len()),
            "criteria should broadly agree: overlap {overlap}, delta {}, ssim {}",
            by_delta.len(),
            by_ssim.len()
        );
    }
}
