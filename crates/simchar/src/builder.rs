//! The SimChar construction pipeline (paper §3.3, Steps I–III).
//!
//! * **Step I** — render every character in the build repertoire (the
//!   IDNA2008 PVALID set intersected with the font's coverage) as a 32×32
//!   bitmap.
//! * **Step II** — find all pairs with pixel difference Δ ≤ θ (default
//!   θ = 4, validated by the paper's Experiment 1).
//! * **Step III** — eliminate *sparse* characters: glyphs with fewer than
//!   10 black pixels (punctuation-like, spacing and combining marks;
//!   paper Fig. 7).
//!
//! The build reports per-step wall times, reproducing Table 5.

use crate::db::SimCharDb;
use crate::pairs::{find_pairs, Pair, Strategy};
use rayon::prelude::*;
use sham_glyph::{Bitmap, GlyphSource};
use sham_unicode::{block_by_name, is_pvalid, repertoire, CodePoint};
use std::time::{Duration, Instant};

/// Default SimChar threshold θ (paper §3.3, validated in §4.1).
pub const DEFAULT_THETA: u32 = 4;

/// Step III ink threshold: glyphs with fewer black pixels are sparse.
pub const SPARSE_MIN_PIXELS: u32 = 10;

/// Which part of the PVALID repertoire to build over.
#[derive(Debug, Clone)]
pub enum Repertoire {
    /// Everything PVALID that the font covers (the paper's setting).
    Full,
    /// Only the listed blocks (fast unit-test builds, per-block studies).
    Blocks(Vec<&'static str>),
    /// An explicit code-point list.
    CodePoints(Vec<u32>),
}

/// Build configuration.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Pixel-difference threshold θ.
    pub theta: u32,
    /// Minimum ink for a glyph to be kept in Step III.
    pub sparse_min_pixels: u32,
    /// Pairwise strategy.
    pub strategy: Strategy,
    /// Repertoire selection.
    pub repertoire: Repertoire,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            theta: DEFAULT_THETA,
            sparse_min_pixels: SPARSE_MIN_PIXELS,
            strategy: Strategy::BandedIndex,
            repertoire: Repertoire::Full,
        }
    }
}

/// Wall-clock timings of the three build steps (Table 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildTimings {
    /// Step I: generating glyph images.
    pub render: Duration,
    /// Step II: computing Δ for candidate pairs.
    pub pairwise: Duration,
    /// Step III: eliminating sparse characters.
    pub sparse_elimination: Duration,
}

/// Outcome of a SimChar build.
#[derive(Debug, Clone)]
pub struct BuildResult {
    /// The resulting database.
    pub db: SimCharDb,
    /// Per-step timings (Table 5).
    pub timings: BuildTimings,
    /// Number of glyphs rendered in Step I.
    pub rendered: usize,
    /// Pairs found in Step II before sparse elimination.
    pub raw_pairs: usize,
    /// Characters eliminated as sparse in Step III (Fig. 7 examples).
    pub sparse_chars: Vec<u32>,
}

/// Collects the repertoire code points for a config.
pub fn repertoire_code_points(font: &impl GlyphSource, rep: &Repertoire) -> Vec<u32> {
    match rep {
        Repertoire::Full => repertoire::pvalid_code_points()
            .filter(|&cp| font.covers(cp))
            .map(|cp| cp.0)
            .collect(),
        Repertoire::Blocks(names) => {
            let mut out = Vec::new();
            for name in names {
                let block = block_by_name(name)
                    .unwrap_or_else(|| panic!("unknown block {name:?} in repertoire"));
                for v in block.start..=block.end {
                    if let Some(cp) = CodePoint::new(v) {
                        if is_pvalid(cp) && font.covers(cp) {
                            out.push(v);
                        }
                    }
                }
            }
            out
        }
        Repertoire::CodePoints(list) => list
            .iter()
            .copied()
            .filter(|&v| {
                CodePoint::new(v).is_some_and(|cp| is_pvalid(cp) && font.covers(cp))
            })
            .collect(),
    }
}

/// Runs the full three-step construction.
pub fn build(font: &(impl GlyphSource + Sync), config: &BuildConfig) -> BuildResult {
    // Step I: render.
    let t0 = Instant::now();
    let code_points = repertoire_code_points(font, &config.repertoire);
    // Rendering one glyph is cheap; keep chunks coarse so the pool's
    // bookkeeping stays negligible next to the raster work.
    let glyphs: Vec<(u32, Bitmap)> = code_points
        .par_iter()
        .with_min_len(64)
        .filter_map(|&v| font.glyph(CodePoint(v)).map(|g| (v, g)))
        .collect();
    let render = t0.elapsed();

    // Step II: pairwise Δ.
    let t1 = Instant::now();
    let raw: Vec<Pair> = find_pairs(&glyphs, config.theta, config.strategy);
    let pairwise = t1.elapsed();

    // Step III: sparse elimination.
    let t2 = Instant::now();
    let sparse: std::collections::HashSet<u32> = glyphs
        .iter()
        .filter(|(_, g)| g.popcount() < config.sparse_min_pixels)
        .map(|&(cp, _)| cp)
        .collect();
    let kept: Vec<Pair> = raw
        .iter()
        .copied()
        .filter(|p| !sparse.contains(&p.a) && !sparse.contains(&p.b))
        .collect();
    let sparse_elimination = t2.elapsed();

    let mut sparse_chars: Vec<u32> = sparse.into_iter().collect();
    sparse_chars.sort_unstable();

    BuildResult {
        db: SimCharDb::from_pairs(kept, config.theta),
        timings: BuildTimings { render, pairwise, sparse_elimination },
        rendered: glyphs.len(),
        raw_pairs: raw.len(),
        sparse_chars,
    }
}

/// Incrementally extends an existing build after a font/Unicode update
/// (paper §4.2: "we would need to update SimChar when the Unicode
/// standard adds a new set of glyphs … the frequency of updating SimChar
/// should be reasonably low; Unicode 12 added 553 characters").
///
/// Only the `new × (old ∪ new)` comparisons run — for a 553-character
/// Unicode release against a 52 K repertoire that is ~3% of a full
/// rebuild even before indexing. The result is identical to a fresh
/// [`build`] over the union repertoire (asserted in tests).
pub fn update_build(
    font: &(impl GlyphSource + Sync),
    previous: &BuildResult,
    previous_repertoire: &Repertoire,
    config: &BuildConfig,
) -> BuildResult {
    let t0 = Instant::now();
    let old_cps: std::collections::HashSet<u32> =
        repertoire_code_points(font, previous_repertoire).into_iter().collect();
    let union_cps = repertoire_code_points(font, &config.repertoire);
    let added: Vec<u32> =
        union_cps.iter().copied().filter(|v| !old_cps.contains(v)).collect();

    // Render the union (cheap) and mark which glyphs are new.
    let glyphs: Vec<(u32, Bitmap)> = union_cps
        .par_iter()
        .with_min_len(64)
        .filter_map(|&v| font.glyph(CodePoint(v)).map(|g| (v, g)))
        .collect();
    let render = t0.elapsed();

    let t1 = Instant::now();
    let added_set: std::collections::HashSet<u32> = added.iter().copied().collect();
    let new_glyphs: Vec<(u32, Bitmap)> = glyphs
        .iter()
        .filter(|(v, _)| added_set.contains(v))
        .copied()
        .collect();
    // new × everything: for each new glyph, compare against all glyphs.
    let added_ref = &added_set;
    let glyphs_ref = &glyphs;
    let mut fresh: Vec<Pair> = new_glyphs
        .par_iter()
        .flat_map_iter(move |&(cp_n, ref g_n)| {
            glyphs_ref.iter().filter_map(move |&(cp_o, ref g_o)| {
                if cp_o == cp_n || (added_ref.contains(&cp_o) && cp_o < cp_n) {
                    // Skip self and de-duplicate new×new (kept once).
                    return None;
                }
                let d = g_n.delta(g_o);
                (d <= config.theta).then(|| {
                    let (a, b) = if cp_n < cp_o { (cp_n, cp_o) } else { (cp_o, cp_n) };
                    Pair { a, b, delta: d as u8 }
                })
            })
        })
        .collect();
    fresh.sort();
    fresh.dedup();
    let pairwise = t1.elapsed();

    // Merge with the previous pairs and re-apply Step III over the union.
    let t2 = Instant::now();
    let sparse: std::collections::HashSet<u32> = glyphs
        .iter()
        .filter(|(_, g)| g.popcount() < config.sparse_min_pixels)
        .map(|&(cp, _)| cp)
        .collect();
    let mut all: Vec<Pair> = previous
        .db
        .pairs()
        .map(|(a, b, d)| Pair { a, b, delta: d })
        .chain(fresh)
        .filter(|p| !sparse.contains(&p.a) && !sparse.contains(&p.b))
        .collect();
    all.sort();
    all.dedup();
    let sparse_elimination = t2.elapsed();

    let mut sparse_chars: Vec<u32> = sparse.into_iter().collect();
    sparse_chars.sort_unstable();

    BuildResult {
        db: SimCharDb::from_pairs(all, config.theta),
        timings: BuildTimings { render, pairwise, sparse_elimination },
        rendered: glyphs.len(),
        raw_pairs: previous.raw_pairs,
        sparse_chars,
    }
}

/// Finds the repertoire characters at *exact* distance `delta` from the
/// glyph of `target` — the paper's Figure 6 ("characters under different
/// values of the threshold Δ" for the letter `e`).
pub fn neighbours_at(
    font: &(impl GlyphSource + Sync),
    rep: &Repertoire,
    target: char,
    delta: u32,
) -> Vec<u32> {
    let Some(target_glyph) = font.glyph(CodePoint::from(target)) else {
        return Vec::new();
    };
    let mut out: Vec<u32> = repertoire_code_points(font, rep)
        .par_iter()
        .filter(|&&v| v != target as u32)
        .filter(|&&v| {
            font.glyph(CodePoint(v))
                .is_some_and(|g| g.delta(&target_glyph) == delta)
        })
        .copied()
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_glyph::SynthUnifont;

    fn small_config(blocks: Vec<&'static str>) -> BuildConfig {
        BuildConfig { repertoire: Repertoire::Blocks(blocks), ..BuildConfig::default() }
    }

    #[test]
    fn latin_cyrillic_build_finds_classic_pairs() {
        let font = SynthUnifont::v12();
        let result = build(
            &font,
            &small_config(vec!["Basic Latin", "Cyrillic", "Greek and Coptic"]),
        );
        let db = &result.db;
        assert!(db.is_pair('o' as u32, 0x043E), "o / Cyrillic o");
        assert!(db.is_pair('a' as u32, 0x0430), "a / Cyrillic a");
        assert!(db.is_pair('o' as u32, 0x03BF), "o / omicron");
        assert!(db.is_pair(0x043E, 0x03BF), "Cyrillic o / omicron");
        assert!(!db.is_pair('a' as u32, 'b' as u32));
    }

    #[test]
    fn accented_latin_appears_within_threshold() {
        let font = SynthUnifont::v12();
        let result = build(&font, &small_config(vec!["Basic Latin", "Latin-1 Supplement"]));
        let db = &result.db;
        assert!(db.is_pair('e' as u32, 0xE9), "e / é");
        assert!(db.is_pair('o' as u32, 0xF3), "o / ó");
        assert!(db.is_pair('o' as u32, 0xF6), "ö is inside θ=4");
        assert!(!db.is_pair('o' as u32, 0xF5), "õ is outside θ=4");
    }

    #[test]
    fn uppercase_is_not_in_repertoire() {
        let font = SynthUnifont::v12();
        let cps = repertoire_code_points(&font, &Repertoire::Blocks(vec!["Basic Latin"]));
        assert!(cps.contains(&('a' as u32)));
        assert!(cps.contains(&('0' as u32)));
        assert!(!cps.contains(&('A' as u32)));
        assert!(!cps.contains(&('$' as u32)));
    }

    #[test]
    fn sparse_characters_are_eliminated() {
        let font = SynthUnifont::v12();
        // Combining Diacritical Marks render sparse and are PVALID, so
        // they reach Step III and must be dropped there.
        let result = build(
            &font,
            &small_config(vec!["Basic Latin", "Combining Diacritical Marks"]),
        );
        assert!(!result.sparse_chars.is_empty());
        for &cp in &result.sparse_chars {
            assert!(
                font.glyph(CodePoint(cp)).unwrap().popcount() < SPARSE_MIN_PIXELS
            );
        }
        // No pair in the final DB touches a sparse character.
        for &cp in &result.sparse_chars {
            assert!(result.db.homoglyphs_of(cp).is_empty());
        }
    }

    #[test]
    fn hangul_block_dominates_its_own_build() {
        let font = SynthUnifont::v12();
        let result = build(&font, &small_config(vec!["Hangul Syllables"]));
        // The jamo-composition geometry must produce thousands of pairs
        // (Table 4: Hangul is SimChar's largest block).
        assert!(result.db.pair_count() > 2_000, "pairs = {}", result.db.pair_count());
        assert!(result.db.char_count() > 4_000, "chars = {}", result.db.char_count());
    }

    #[test]
    fn theta_zero_build_is_subset_of_theta_four() {
        let font = SynthUnifont::v12();
        let blocks = vec!["Basic Latin", "Cyrillic"];
        let t0 = build(
            &font,
            &BuildConfig { theta: 0, ..small_config(blocks.clone()) },
        );
        let t4 = build(&font, &small_config(blocks));
        assert!(t0.db.pair_count() <= t4.db.pair_count());
        for (a, b, _) in t0.db.pairs() {
            assert!(t4.db.is_pair(a, b));
        }
    }

    #[test]
    fn neighbours_at_exact_distance() {
        let font = SynthUnifont::v12();
        let rep = Repertoire::Blocks(vec!["Basic Latin", "Cyrillic", "Greek and Coptic"]);
        let zero = neighbours_at(&font, &rep, 'o', 0);
        assert!(zero.contains(&0x043E));
        assert!(zero.contains(&0x03BF));
        // Armenian oh is at distance 1 but Armenian is outside this
        // repertoire; distance-0 sets never contain the target itself.
        assert!(!zero.contains(&('o' as u32)));
    }

    #[test]
    fn timings_are_populated() {
        let font = SynthUnifont::v12();
        let result = build(&font, &small_config(vec!["Basic Latin"]));
        assert!(result.rendered > 30);
        // Durations exist (may be sub-millisecond, just non-negative).
        let _ = result.timings.render + result.timings.pairwise;
    }

    #[test]
    fn incremental_update_equals_full_rebuild() {
        // Simulate a Unicode release: the repertoire grows from
        // Latin+Cyrillic to also include Greek and Armenian.
        let font = SynthUnifont::v12();
        let old_rep = Repertoire::Blocks(vec!["Basic Latin", "Cyrillic"]);
        let new_rep = Repertoire::Blocks(vec![
            "Basic Latin",
            "Cyrillic",
            "Greek and Coptic",
            "Armenian",
        ]);
        let old = build(&font, &BuildConfig { repertoire: old_rep.clone(), ..Default::default() });
        let incremental = update_build(
            &font,
            &old,
            &old_rep,
            &BuildConfig { repertoire: new_rep.clone(), ..Default::default() },
        );
        let full = build(&font, &BuildConfig { repertoire: new_rep, ..Default::default() });

        assert_eq!(incremental.db.pair_count(), full.db.pair_count());
        let inc: Vec<_> = incremental.db.pairs().collect();
        let fl: Vec<_> = full.db.pairs().collect();
        assert_eq!(inc, fl, "incremental update must reproduce the full build");
        // The new cross-repertoire pair must be present: ο (Greek) ↔ о.
        assert!(incremental.db.is_pair(0x03BF, 0x043E));
    }

    #[test]
    fn incremental_update_with_no_additions_is_identity() {
        let font = SynthUnifont::v12();
        let rep = Repertoire::Blocks(vec!["Basic Latin", "Cyrillic"]);
        let old = build(&font, &BuildConfig { repertoire: rep.clone(), ..Default::default() });
        let same = update_build(
            &font,
            &old,
            &rep,
            &BuildConfig { repertoire: rep.clone(), ..Default::default() },
        );
        assert_eq!(
            old.db.pairs().collect::<Vec<_>>(),
            same.db.pairs().collect::<Vec<_>>()
        );
    }
}
