//! The §5–§6 measurement study over a generated workload.
//!
//! Ingests the two corpus exports (zone file + flat list), extracts IDNs,
//! detects homographs under each database selection, and runs the active
//! analysis: NS/A resolution, port scans, passive-DNS ranking, site
//! classification, redirect analysis, blacklist checks and the §6.4
//! reverting analysis.

use crate::tables::{thousands, TextTable};
use sham_core::{revert_stem, Detection, Framework, Reverted};
use sham_confusables::UcDatabase;
use sham_dns::{
    table10_counts, HostScan, PassiveDns, SimProber, SimResolver,
};
use sham_langid::{identify, table7_rows};
use sham_punycode::DomainName;
use sham_simchar::{DbSelection, SimCharDb};
use sham_web::{
    classify, classify_redirect, observe, table12_counts, table13_counts, Category,
    FetchOutcome, RedirectKind,
};
use sham_workload::Workload;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

/// Corpus statistics for Table 6.
#[derive(Debug, Clone)]
pub struct CorpusStats {
    /// Names in the zone file, and how many are IDNs.
    pub zone: (usize, usize),
    /// Names in the flat list, and how many are IDNs.
    pub list: (usize, usize),
    /// Union, and IDNs in the union.
    pub union: (usize, usize),
}

/// Outcome of the §6.1 activity funnel.
#[derive(Debug, Clone)]
pub struct ActiveAnalysis {
    /// Detected homographs with NS records.
    pub with_ns: usize,
    /// Of those, how many lack A records.
    pub without_a: usize,
    /// Port-scan results for the A-record holders.
    pub scans: Vec<HostScan>,
    /// Hosts answering on TCP/80 or TCP/443 (the "active" set).
    pub active: Vec<String>,
}

/// The full study state after ingestion.
pub struct Study {
    /// The generated world.
    pub workload: Workload,
    /// Union corpus.
    pub domains: Vec<DomainName>,
    /// Table 6 statistics.
    pub corpus_stats: CorpusStats,
    /// IDN stems (unicode, full ACE name).
    pub idns: Vec<(String, String)>,
    /// The resolver over the zone.
    pub resolver: SimResolver,
    /// Detections under the union DB.
    pub detections: Vec<Detection>,
    /// Detection counts per DB selection (Table 8).
    pub detected_by: BTreeMap<&'static str, usize>,
    /// Wall-clock seconds of the union detection run (§4.2).
    pub detection_seconds: f64,
    /// Configured worker-pool size during the detection run. The
    /// executor may engage fewer workers when the corpus produces
    /// fewer shards than this.
    pub detection_threads: usize,
    /// Candidate-generation strategy of the detection run (the
    /// framework default, `CanonicalClosure`).
    pub detection_indexing: String,
    /// The shared detection index the study ran on — kept so follow-up
    /// analyses (reverting, ad-hoc queries) reuse the same build
    /// instead of re-deriving a `HomoglyphDb`.
    pub shared_index: std::sync::Arc<sham_core::DetectionIndex>,
}

impl Study {
    /// Ingests a workload and runs detection with the given SimChar DB.
    pub fn run(workload: Workload, simchar: SimCharDb, uc: UcDatabase) -> Study {
        // Step 1: ingest both sources.
        let (zone, zone_errors) = sham_dns::parse_lenient(&workload.zone_text, "com");
        debug_assert!(zone_errors.is_empty(), "workload zones are well-formed");
        let (list_names, _bad) = sham_dns::parse_domain_list(&workload.domain_list_text);

        let mut zone_names: Vec<DomainName> = zone
            .owner_names()
            .into_iter()
            .cloned()
            .collect();
        zone_names.sort();
        zone_names.dedup();

        let mut union_set: HashSet<DomainName> = zone_names.iter().cloned().collect();
        union_set.extend(list_names.iter().cloned());
        let mut domains: Vec<DomainName> = union_set.into_iter().collect();
        domains.sort();

        let idn_of = |names: &[DomainName]| names.iter().filter(|d| d.is_idn()).count();
        let corpus_stats = CorpusStats {
            zone: (zone_names.len(), idn_of(&zone_names)),
            list: (list_names.len(), {
                let mut uniq: Vec<&DomainName> = list_names.iter().collect();
                uniq.sort();
                uniq.dedup();
                uniq.iter().filter(|d| d.is_idn()).count()
            }),
            union: (domains.len(), idn_of(&domains)),
        };

        let resolver = SimResolver::new([zone]);

        // Steps 2–3: extract IDNs, detect under each selection.
        let fw = Framework::new(
            simchar,
            uc,
            workload.references.iter().cloned(),
            "com",
        );
        let idns = fw.extract_idns(&domains);

        let mut detected_by = BTreeMap::new();
        for (name, selection) in [
            ("UC", DbSelection::UcOnly),
            ("SimChar", DbSelection::SimCharOnly),
        ] {
            let hits = fw.detect_only_with(&idns, selection);
            let unique: HashSet<&String> = hits.iter().map(|d| &d.idn_ascii).collect();
            detected_by.insert(name, unique.len());
        }

        let t0 = Instant::now();
        let detections = fw.detect_only_with(&idns, DbSelection::Union);
        let detection_seconds = t0.elapsed().as_secs_f64();
        let detection_threads = rayon::current_num_threads();
        let detection_indexing = format!("{:?}", fw.indexing());
        let unique_union: HashSet<&String> = detections.iter().map(|d| &d.idn_ascii).collect();
        detected_by.insert("UC ∪ SimChar", unique_union.len());

        Study {
            workload,
            domains,
            corpus_stats,
            idns,
            resolver,
            detections,
            detected_by,
            detection_seconds,
            detection_threads,
            detection_indexing,
            shared_index: fw.shared_index(),
        }
    }

    /// The homoglyph database of the shared detection index — the
    /// exact build the detections came from, at zero rebuild cost.
    pub fn shared_db(&self) -> &sham_simchar::HomoglyphDb {
        self.shared_index.db()
    }

    /// Unique detected homograph domains (ACE form).
    pub fn detected_domains(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .detections
            .iter()
            .map(|d| d.idn_ascii.clone())
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        v.sort();
        v
    }

    /// Table 6: corpus sizes.
    pub fn table6(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 6: domain lists and IDN counts (paper: 140.9M/0.67%, 139.7M/0.73%, union 141.2M/0.67%)",
            &["Source", "# domains", "# IDNs", "IDN %"],
        );
        let pct = |n: usize, of: usize| format!("{:.2}%", 100.0 * n as f64 / of.max(1) as f64);
        let (zd, zi) = self.corpus_stats.zone;
        let (ld, li) = self.corpus_stats.list;
        let (ud, ui) = self.corpus_stats.union;
        t.row(&["zone file".into(), thousands(zd as u64), thousands(zi as u64), pct(zi, zd)]);
        t.row(&["domain list".into(), thousands(ld as u64), thousands(li as u64), pct(li, ld)]);
        t.row(&["Total (union)".into(), thousands(ud as u64), thousands(ui as u64), pct(ui, ud)]);
        t
    }

    /// Table 7: top languages among the IDNs.
    pub fn table7(&self, top: usize) -> TextTable {
        let rows = table7_rows(self.idns.iter().map(|(stem, _)| identify(stem).language));
        let mut t = TextTable::new(
            "Table 7: top languages used for IDNs (paper: Chinese 46.5%, Korean 10.6%, Japanese 9.3%, German 5.6%, Turkish 3.6%)",
            &["Rank", "Language", "Number", "Fraction"],
        );
        for (i, (lang, count, frac)) in rows.into_iter().take(top).enumerate() {
            t.row(&[
                (i + 1).to_string(),
                lang.name().to_string(),
                thousands(count as u64),
                format!("{:.1}%", frac * 100.0),
            ]);
        }
        t
    }

    /// Table 8: detected homographs per database selection.
    pub fn table8(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 8: detected IDN homographs per homoglyph DB (paper: UC 436, SimChar 3,110, union 3,280)",
            &["Homoglyph DB", "Number"],
        );
        for (name, count) in &self.detected_by {
            t.row(&[name.to_string(), thousands(*count as u64)]);
        }
        t
    }

    /// Table 9: most-targeted reference domains.
    pub fn table9(&self, top: usize) -> TextTable {
        let mut per_target: HashMap<&str, HashSet<&str>> = HashMap::new();
        for d in &self.detections {
            per_target
                .entry(&*d.reference)
                .or_default()
                .insert(d.idn_ascii.as_str());
        }
        let mut rows: Vec<(&str, usize)> =
            per_target.into_iter().map(|(t, set)| (t, set.len())).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mut t = TextTable::new(
            "Table 9: top targeted domains (paper: myetherwallet 170, google 114, amazon 75, facebook 72, allstate 68)",
            &["Rank", "Domain", "# homographs"],
        );
        for (i, (target, n)) in rows.into_iter().take(top).enumerate() {
            t.row(&[(i + 1).to_string(), format!("{target}.com"), n.to_string()]);
        }
        t
    }

    /// Table 10: port-scan outcomes of the funnel.
    pub fn table10(&self, analysis: &ActiveAnalysis) -> TextTable {
        let (o80, o443, both, any) = table10_counts(&analysis.scans);
        let mut t = TextTable::new(
            "Table 10: port scans of detected homographs (paper: 80→1,642, 443→700, both→695, unique 1,647)",
            &["Ports", "# domain names"],
        );
        t.row(&["TCP/80".into(), thousands(o80 as u64)]);
        t.row(&["TCP/443".into(), thousands(o443 as u64)]);
        t.row(&["TCP/80 & TCP/443".into(), thousands(both as u64)]);
        t.row(&["Total (unique)".into(), thousands(any as u64)]);
        t.row(&["— detected with NS records".into(), thousands(analysis.with_ns as u64)]);
        t.row(&["— of those, without A records".into(), thousands(analysis.without_a as u64)]);
        t
    }

    /// The §6.1 activity funnel: NS → A → port scan.
    pub fn active_analysis(&self) -> ActiveAnalysis {
        let detected = self.detected_domains();
        let mut with_ns = Vec::new();
        for ace in &detected {
            if let Ok(name) = DomainName::parse(ace) {
                if self.resolver.has_ns(&name) {
                    with_ns.push((ace.clone(), name));
                }
            }
        }
        let with_a: Vec<&(String, DomainName)> = with_ns
            .iter()
            .filter(|(_, name)| !self.resolver.a_records(name).is_empty())
            .collect();
        let without_a = with_ns.len() - with_a.len();

        // Build the simulated prober from ground truth and scan.
        let mut prober = SimProber::new();
        for (ace, assignment) in &self.workload.truth.assignments {
            if assignment.open_80 {
                prober.set(ace, 80, true);
            }
            if assignment.open_443 {
                prober.set(ace, 443, true);
            }
        }
        let hosts: Vec<String> = with_a.iter().map(|(ace, _)| ace.clone()).collect();
        let scans = sham_dns::scan(&prober, &hosts, &[80, 443], 8);

        let active: Vec<String> = scans
            .iter()
            .filter(|s| s.any_open())
            .map(|s| s.host.clone())
            .collect();
        ActiveAnalysis { with_ns: with_ns.len(), without_a, scans, active }
    }

    /// Table 11: top active homographs by passive-DNS resolutions.
    pub fn table11(&self, analysis: &ActiveAnalysis, top: usize) -> TextTable {
        let active: HashSet<&String> = analysis.active.iter().collect();
        let truth: Vec<(&str, u64)> = self
            .workload
            .truth
            .assignments
            .iter()
            .filter(|(ace, _)| active.contains(ace))
            .map(|(ace, a)| (ace.as_str(), a.resolutions))
            .collect();
        let pdns = PassiveDns::from_ground_truth(truth, 4, 0.05, 0xDB5);

        let mut t = TextTable::new(
            "Table 11: top active IDNs by passive-DNS resolutions (paper top: gmaıl, phishing, 615,447)",
            &["Domain (unicode)", "Category", "#resolutions", "MX", "Web link", "SNS"],
        );
        for (ace, observed) in pdns.top(top) {
            let Some(assignment) = self.workload.truth.assignments.get(&ace) else { continue };
            let unicode = DomainName::parse(&ace)
                .ok()
                .and_then(|d| d.to_unicode().ok())
                .unwrap_or_else(|| ace.clone());
            let category = self.categorise_active(&ace, assignment);
            t.row(&[
                unicode,
                category,
                thousands(observed),
                if assignment.has_mx { "yes" } else { "—" }.into(),
                if assignment.web_link { "yes" } else { "—" }.into(),
                if assignment.sns_link { "yes" } else { "—" }.into(),
            ]);
        }
        t
    }

    fn categorise_active(
        &self,
        ace: &str,
        assignment: &sham_workload::SiteAssignment,
    ) -> String {
        let blacklisted = self
            .workload
            .truth
            .blacklists
            .iter()
            .any(|b| b.contains(ace));
        let obs = observe(&assignment.profile, "ns.registrar.example");
        let cat = classify(&obs);
        match (blacklisted, cat) {
            (true, Category::Normal) => "Phishing".to_string(),
            (_, Category::Normal) => "Portal".to_string(),
            (_, Category::DomainParking) => "Parked".to_string(),
            (_, Category::ForSale) => "Sale".to_string(),
            (_, c) => c.name().to_string(),
        }
    }

    /// Tables 12 and 13: classification of active homographs and their
    /// redirects.
    pub fn table12_13(&self, analysis: &ActiveAnalysis) -> (TextTable, TextTable) {
        let active = &analysis.active;
        let mut categories = Vec::new();
        let mut redirect_kinds: Vec<RedirectKind> = Vec::new();
        for ace in active {
            let Some(assignment) = self.workload.truth.assignments.get(ace) else { continue };
            let obs = observe(&assignment.profile, "ns.registrar.example");
            let cat = classify(&obs);
            categories.push(cat);
            if let FetchOutcome::Redirected { final_domain } = &obs.fetch {
                // Which reference does this homograph imitate?
                let reference = self
                    .detections
                    .iter()
                    .find(|d| &d.idn_ascii == ace)
                    .map(|d| format!("{}.com", d.reference))
                    .unwrap_or_default();
                redirect_kinds.push(classify_redirect(
                    &reference,
                    final_domain,
                    &self.workload.truth.blacklists,
                ));
            }
        }
        let mut t12 = TextTable::new(
            "Table 12: classification of active homographs (paper: parking 348, sale 345, redirect 338, normal 281, empty 222, error 113 of 1,647)",
            &["Category", "Number"],
        );
        for (name, count) in table12_counts(&categories) {
            t12.row(&[name.to_string(), thousands(count as u64)]);
        }
        t12.row(&["Total".into(), thousands(categories.len() as u64)]);

        let mut t13 = TextTable::new(
            "Table 13: redirect breakdown (paper: brand protection 178, legitimate 125, malicious 35 of 338)",
            &["Category", "Number"],
        );
        for (name, count) in table13_counts(&redirect_kinds) {
            t13.row(&[name.to_string(), thousands(count as u64)]);
        }
        t13.row(&["Total".into(), thousands(redirect_kinds.len() as u64)]);
        (t12, t13)
    }

    /// Table 14: blacklisted homographs per feed, per DB selection.
    pub fn table14(&self) -> TextTable {
        // Per-selection detected sets.
        let mut per_selection: Vec<(&str, HashSet<String>)> = Vec::new();
        let union_set: HashSet<String> =
            self.detections.iter().map(|d| d.idn_ascii.clone()).collect();
        // UC / SimChar sets: re-derive from detection substitution sources.
        let mut uc_set = HashSet::new();
        let mut sim_set = HashSet::new();
        for d in &self.detections {
            let all_uc = d.substitutions.iter().all(|s| {
                matches!(
                    s.source,
                    Some(sham_simchar::PairSource::Uc) | Some(sham_simchar::PairSource::Both)
                )
            });
            let all_sim = d.substitutions.iter().all(|s| {
                matches!(
                    s.source,
                    Some(sham_simchar::PairSource::SimChar)
                        | Some(sham_simchar::PairSource::Both)
                )
            });
            if all_uc {
                uc_set.insert(d.idn_ascii.clone());
            }
            if all_sim {
                sim_set.insert(d.idn_ascii.clone());
            }
        }
        per_selection.push(("UC", uc_set));
        per_selection.push(("SimChar", sim_set));
        per_selection.push(("UC ∪ SimChar", union_set));

        let mut t = TextTable::new(
            "Table 14: blacklisted homographs (paper row UC∪SimChar: hpHosts 242, GSB 13, Symantec 8)",
            &["Homoglyph DB", "hpHosts", "GSB", "Symantec"],
        );
        for (name, set) in per_selection {
            let counts: Vec<String> = self
                .workload
                .truth
                .blacklists
                .iter()
                .map(|bl| set.iter().filter(|d| bl.contains(d)).count().to_string())
                .collect();
            t.row(&[name.to_string(), counts[0].clone(), counts[1].clone(), counts[2].clone()]);
        }
        t
    }

    /// §6.4: revert malicious homographs and count those whose original
    /// is outside the reference top-1k (paper: 91).
    pub fn revert_analysis(&self, db: &sham_simchar::HomoglyphDb) -> TextTable {
        let top1k: HashSet<&String> =
            self.workload.references.iter().take(1_000).collect();
        let blacklisted: Vec<String> = self
            .detected_domains()
            .into_iter()
            .filter(|d| {
                self.workload.truth.blacklists.iter().any(|bl| bl.contains(d))
            })
            .collect();

        let mut reverted_ok = 0usize;
        let mut outside_top1k = 0usize;
        for ace in &blacklisted {
            let Ok(name) = DomainName::parse(ace) else { continue };
            let Some(stem) = name.unicode_without_tld() else { continue };
            match revert_stem(db, &stem) {
                Reverted::Original(original) => {
                    reverted_ok += 1;
                    if !top1k.contains(&original) {
                        outside_top1k += 1;
                    }
                }
                Reverted::Partial(..) => {}
            }
        }
        let mut t = TextTable::new(
            "§6.4: reverting malicious IDNs to originals (paper: 91 outside the Alexa top-1k)",
            &["Metric", "Count"],
        );
        t.row(&["Blacklisted detected homographs".into(), blacklisted.len().to_string()]);
        t.row(&["Fully reverted to LDH".into(), reverted_ok.to_string()]);
        t.row(&["Original outside reference top-1k".into(), outside_top1k.to_string()]);
        t
    }

    /// §7.2: how many of the detected homographs would each browser
    /// display policy have degraded to Punycode — i.e. how many slip
    /// through in Unicode form? The paper argues the mixed-script rule
    /// leaves accent-only and whole-script homographs fully displayed.
    pub fn policy_analysis(&self) -> TextTable {
        use sham_core::{bypasses_policy, Policy};
        let detected = self.detected_domains();
        let mut bypass_legacy = 0usize;
        let mut bypass_mixed = 0usize;
        for ace in &detected {
            let Ok(name) = DomainName::parse(ace) else { continue };
            if bypasses_policy(&name, Policy::Legacy) {
                bypass_legacy += 1;
            }
            if bypasses_policy(&name, Policy::MixedScriptPunycode) {
                bypass_mixed += 1;
            }
        }
        let mut t = TextTable::new(
            "§7.2: detected homographs displayed in Unicode under each browser policy",
            &["Policy", "Displayed (bypasses)", "Degraded to Punycode"],
        );
        let total = detected.len();
        t.row(&[
            "Legacy (pre-2017)".into(),
            thousands(bypass_legacy as u64),
            thousands((total - bypass_legacy) as u64),
        ]);
        t.row(&[
            "Mixed-script rule".into(),
            thousands(bypass_mixed as u64),
            thousands((total - bypass_mixed) as u64),
        ]);
        t.row(&[
            "ShamFinder warning UI".into(),
            "0 (all flagged with context)".into(),
            "0".into(),
        ]);
        t
    }

    /// §4.2 timing report: per-reference detection cost and the
    /// extrapolation to the paper's corpus size.
    pub fn timing(&self) -> TextTable {
        let refs = self.workload.references.len().max(1);
        let per_ref = self.detection_seconds / refs as f64;
        let mut t = TextTable::new(
            "§4.2: detection timing (paper: 743.6 s for Alexa-10k over 141M names; 0.07 s/reference)",
            &["Metric", "Value"],
        );
        t.row(&["IDNs matched".into(), thousands(self.idns.len() as u64)]);
        t.row(&["References".into(), thousands(refs as u64)]);
        t.row(&["Worker pool (configured)".into(), self.detection_threads.to_string()]);
        t.row(&["Candidate index".into(), self.detection_indexing.clone()]);
        t.row(&["Wall time (s)".into(), format!("{:.3}", self.detection_seconds)]);
        t.row(&["Per reference (s)".into(), format!("{per_ref:.6}")]);
        // Scale-free comparison: cost per (reference × IDN) pair.
        let per_pair = self.detection_seconds / (refs as f64 * self.idns.len().max(1) as f64);
        t.row(&["Per ref×IDN pair (s)".into(), format!("{per_pair:.3e}")]);
        t
    }
}
