//! The human-perception experiments (paper §4.1, Figures 9–11), run over
//! *actual* glyph pairs from the SimChar build and the UC list.

use crate::chardb::CharDbContext;
use crate::tables::TextTable;
use sham_glyph::GlyphSource;
use sham_perception::{
    experiment1_deck, experiment2_deck, run, BoxStats, ExperimentConfig, ExperimentOutcome,
};
use sham_simchar::{neighbours_at, Repertoire};
use sham_unicode::{is_pvalid, CodePoint};

/// Samples up to `per_delta` real pairs (letter, neighbour) at each exact
/// Δ and reports how many exist.
pub fn real_pair_counts(ctx: &CharDbContext, max_delta: u32) -> Vec<(u32, usize)> {
    let mut out = Vec::new();
    for delta in 0..=max_delta {
        let mut count = 0usize;
        for letter in ['e', 'o', 'a', 'c', 'u'] {
            count += neighbours_at(&ctx.font, &Repertoire::Full, letter, delta).len();
        }
        out.push((delta, count));
    }
    out
}

/// Runs Experiment 1: confusability as a function of Δ (Figure 9).
pub fn experiment1(config: &ExperimentConfig) -> ExperimentOutcome {
    // The paper samples 20 pairs per Δ ∈ {0..8} plus 30 dummies; the
    // simulated raters judge the pair's true pixel distance.
    let deck = experiment1_deck(8, 20, 30);
    run(&deck, config)
}

/// Runs Experiment 2: Random vs SimChar vs UC (Figure 10), with the
/// SimChar deltas drawn from the real build and the UC deltas measured
/// from the real glyphs of UC ∩ IDNA pairs.
pub fn experiment2(ctx: &CharDbContext, config: &ExperimentConfig) -> ExperimentOutcome {
    // SimChar: the paper's protocol — 20 pairs at each Δ ∈ {0..4}
    // (§4.1: "100 pairs of homoglyphs detected with Δ ≤ 4").
    let mut per_delta: [Vec<u32>; 5] = Default::default();
    for letter in 'a'..='z' {
        for (_, d) in ctx.build.db.homoglyphs_of(letter as u32) {
            per_delta[usize::from(d).min(4)].push(u32::from(d));
        }
    }
    let mut simchar_deltas: Vec<u32> = Vec::new();
    for (delta, bucket) in per_delta.iter().enumerate() {
        let available = bucket.len().min(20);
        simchar_deltas.extend(std::iter::repeat_n(delta as u32, available.max(
            // Sparse buckets still contribute the paper's 20 samples: a
            // rater judges the same pair more than once, as on MTurk.
            if bucket.is_empty() { 0 } else { 20 },
        )));
    }
    // UC: the paper's protocol — 30 homoglyphs of the Basic Latin
    // lowercase letters listed in UC, measured with the same font.
    // Stride-sample across the list: UC mixes pixel-identical lookalikes
    // with semantic pairs whose glyphs differ widely (the Fig. 11
    // examples), and both must be represented.
    let uc_idna = ctx.uc.filter(|cp| is_pvalid(CodePoint(cp)));
    let measurable: Vec<(u32, u32)> = uc_idna
        .entries()
        .filter(|(_, t)| t.len() == 1 && (0x61..=0x7A).contains(&t[0]))
        .map(|(s, t)| (s, t[0]))
        .collect();
    let stride = (measurable.len() / 30).max(1);
    let mut uc_deltas: Vec<u32> = Vec::new();
    for (source, target) in measurable.iter().step_by(stride) {
        if uc_deltas.len() >= 30 {
            break;
        }
        let (Some(gs), Some(gt)) = (
            ctx.font.glyph(CodePoint(*source)),
            ctx.font.glyph(CodePoint(*target)),
        ) else {
            continue;
        };
        uc_deltas.push(gs.delta(&gt));
    }
    let deck = experiment2_deck(&simchar_deltas, &uc_deltas, 30);
    run(&deck, config)
}

/// Figure 11: the UC ∩ IDNA pairs most distinct under the pixel metric
/// (the ones human raters judged "very distinct" in the paper).
pub fn figure11(ctx: &CharDbContext, top: usize) -> TextTable {
    let uc_idna = ctx.uc.filter(|cp| is_pvalid(CodePoint(cp)));
    let mut measured: Vec<(u32, u32, u32)> = Vec::new(); // (source, target, delta)
    for (source, target) in uc_idna.entries() {
        if target.len() != 1 {
            continue;
        }
        let (Some(gs), Some(gt)) = (
            ctx.font.glyph(CodePoint(source)),
            ctx.font.glyph(CodePoint(target[0])),
        ) else {
            continue;
        };
        measured.push((source, target[0], gs.delta(&gt)));
    }
    measured.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    let mut t = TextTable::new(
        "Figure 11: least-confusable UC pairs (paper: U+118D8→u, U+028F→y, U+118DC→y)",
        &["Pair", "Δ"],
    );
    for &(s, tt, d) in measured.iter().take(top) {
        t.row(&[
            format!(
                "U+{s:04X} → {}",
                char::from_u32(tt).map(String::from).unwrap_or_default()
            ),
            d.to_string(),
        ]);
    }
    t
}

/// The §7.1 extension: the same homoglyphs judged in word context, with
/// the words drawn from the paper's own tables (google, myetherwallet).
/// Deltas come from the real SimChar build.
pub fn context_experiment(ctx: &CharDbContext) -> TextTable {
    use sham_perception::{run_word_experiment, WordStimulus};

    // The Δ of о→o (0), օ→o (1) and é→e (3) measured from the font.
    let delta_of = |a: char, b: char| -> u32 {
        let ga = ctx.font.glyph(CodePoint::from(a)).expect("glyph");
        let gb = ctx.font.glyph(CodePoint::from(b)).expect("glyph");
        ga.delta(&gb)
    };
    let d_acc = delta_of('e', 'é');
    let d_arm = delta_of('o', 'օ');

    let conditions = vec![
        (
            "é alone (2 chars)".to_string(),
            WordStimulus { word_len: 2, deltas: vec![d_acc] },
        ),
        (
            "é in facebook (8 chars)".to_string(),
            WordStimulus { word_len: 8, deltas: vec![d_acc] },
        ),
        (
            "é in myetherwallet (13 chars)".to_string(),
            WordStimulus { word_len: 13, deltas: vec![d_acc] },
        ),
        (
            "օ in google (6 chars)".to_string(),
            WordStimulus { word_len: 6, deltas: vec![d_arm] },
        ),
        (
            "օօ in google (6 chars)".to_string(),
            WordStimulus { word_len: 6, deltas: vec![d_arm, d_arm] },
        ),
    ];
    let outcome = run_word_experiment(&conditions, 200, 0xC0DE);
    let mut t = TextTable::new(
        "Extension (§7.1): word-context confusability — substitutions hide better in longer words",
        &["Condition", "n", "mean", "median"],
    );
    for (cond, stats) in outcome.by_condition {
        t.row(&[
            cond,
            stats.n.to_string(),
            format!("{:.2}", stats.mean),
            format!("{:.1}", stats.median),
        ]);
    }
    t
}

/// Renders an experiment outcome as a figure table.
pub fn render_outcome(title: &str, outcome: &ExperimentOutcome) -> TextTable {
    let mut t = TextTable::new(
        title,
        &["Condition", "n", "mean", "median", "Q1", "Q3"],
    );
    // Order delta conditions numerically, then the named conditions.
    let mut rows: Vec<(String, BoxStats)> = outcome.by_condition.clone();
    rows.sort_by_key(|(c, _)| {
        c.strip_prefix("delta=")
            .and_then(|d| d.parse::<u32>().ok())
            .map(|d| (0, d))
            .unwrap_or((1, 0))
    });
    for (cond, stats) in rows {
        t.row(&[
            cond,
            stats.n.to_string(),
            format!("{:.2}", stats.mean),
            format!("{:.1}", stats.median),
            format!("{:.1}", stats.q1),
            format!("{:.1}", stats.q3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn ctx() -> &'static CharDbContext {
        static CTX: OnceLock<CharDbContext> = OnceLock::new();
        CTX.get_or_init(CharDbContext::create)
    }

    #[test]
    fn experiment2_uses_real_deltas_and_orders_conditions() {
        let outcome = experiment2(ctx(), &ExperimentConfig::default());
        let get = |name: &str| {
            outcome
                .by_condition
                .iter()
                .find(|(c, _)| c == name)
                .map(|(_, s)| s.clone())
                .unwrap()
        };
        let sim = get("SimChar");
        let uc = get("UC");
        let random = get("Random");
        assert!(sim.mean > uc.mean, "SimChar {} !> UC {}", sim.mean, uc.mean);
        assert!(uc.mean > random.mean);
        assert_eq!(sim.median, 4.0);
    }

    #[test]
    fn figure11_least_confusable_pairs_are_warang_citi() {
        // The paper's Fig. 11 names three pairs, two of them Warang Citi
        // letters mapped to Latin; in this reproduction the same block
        // tops the distinctness ranking.
        let t = figure11(ctx(), 3);
        let rendered = t.render();
        assert!(rendered.contains("U+118C"), "{rendered}");
        // The paper's specific pairs surface in a slightly longer list.
        let wide = figure11(ctx(), 20).render();
        assert!(wide.contains("U+118D8") || wide.contains("U+118DC"), "{wide}");
        assert!(wide.contains("U+028F") || wide.contains("U+118DC"), "{wide}");
    }

    #[test]
    fn real_pairs_exist_across_deltas() {
        let counts = real_pair_counts(ctx(), 4);
        // Δ=0 twins exist (Cyrillic/Greek o's), and every Δ ≤ 4 has pairs.
        assert!(counts[0].1 >= 2, "{counts:?}");
        assert!(counts.iter().all(|&(_, n)| n > 0), "{counts:?}");
    }
}
