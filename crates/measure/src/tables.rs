//! Plain-text table rendering for the reproduction reports.

/// A simple left/right-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for &str cells.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table. The first column is left-aligned, the rest
    /// right-aligned (the usual numbers-on-the-right layout).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i].saturating_sub(cell.chars().count());
                if i == 0 {
                    out.push_str(cell);
                    out.push_str(&" ".repeat(pad));
                } else {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(cell);
                }
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
        ));
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Formats an integer with thousands separators (for paper-style counts).
pub fn thousands(n: u64) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Demo", &["Name", "Count"]);
        t.row_str(&["alpha", "12"]);
        t.row_str(&["b", "1234"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Title + header + separator + 2 rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[2].starts_with('-'));
        assert!(lines[3].starts_with("alpha"));
        assert!(lines[4].ends_with("1234"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("X", &["a", "b"]);
        t.row_str(&["only-one"]);
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(141_212_035), "141,212,035");
    }
}
