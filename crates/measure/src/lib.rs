//! End-to-end experiment reproduction for the ShamFinder paper.
//!
//! * [`chardb`] — Tables 1–5 and Figures 5–7 (the homoglyph databases
//!   themselves).
//! * [`study`] — Tables 6–14 and the §4.2/§6.4 analyses over a generated
//!   workload.
//! * [`humanstudy`] — Figures 9–11 (the perception experiments) over real
//!   glyph pairs.
//! * [`tables`] — plain-text table rendering.
//!
//! The `repro` binary regenerates any single experiment or all of them:
//!
//! ```text
//! cargo run --release -p sham-measure --bin repro -- all
//! cargo run --release -p sham-measure --bin repro -- table8 table9
//! cargo run --release -p sham-measure --bin repro -- --scale test table6
//! ```

pub mod chardb;
pub mod humanstudy;
pub mod study;
pub mod tables;

pub use chardb::CharDbContext;
pub use study::{ActiveAnalysis, CorpusStats, Study};
pub use tables::{thousands, TextTable};
