//! Character-database experiments: Tables 1–5 and Figures 5–7.
//!
//! These experiments characterise the homoglyph databases themselves —
//! repertoire sizes, per-letter and per-block profiles, construction
//! cost, and example glyphs — before any domain data enters the picture.

use crate::tables::{thousands, TextTable};
use sham_confusables::UcDatabase;
use sham_glyph::{Bitmap, GlyphSource, SynthUnifont};
use sham_simchar::{build, neighbours_at, BuildConfig, BuildResult, Repertoire};
use sham_unicode::{is_pvalid, repertoire, CodePoint};
use std::collections::BTreeSet;

/// A full character-database experiment context: one font, one UC
/// database, one full-repertoire SimChar build.
pub struct CharDbContext {
    /// The font used.
    pub font: SynthUnifont,
    /// The consortium list.
    pub uc: UcDatabase,
    /// The SimChar build over the full repertoire.
    pub build: BuildResult,
}

impl CharDbContext {
    /// Builds the full context (the expensive part is the SimChar build,
    /// ~1 s in release mode).
    pub fn create() -> Self {
        let font = SynthUnifont::v12();
        let uc = UcDatabase::embedded();
        let build = build(&font, &BuildConfig::default());
        CharDbContext { font, uc, build }
    }

    /// Table 1: character-set sizes across IDNA, UC and SimChar.
    pub fn table1(&self) -> TextTable {
        let stats = repertoire::repertoire_stats();
        let uc_chars = self.uc.char_set();
        let uc_idna = self.uc.filter(|cp| is_pvalid(CodePoint(cp)));
        let uc_idna_chars = uc_idna.char_set();
        let sim_chars: BTreeSet<u32> = self.build.db.chars().collect();
        let sim_uc: usize = self.build.db.chars_in_common(&uc_chars);

        // SimChar ∪ (UC ∩ IDNA) — the union the framework uses.
        let mut union_chars = sim_chars.clone();
        union_chars.extend(uc_idna_chars.iter().copied());
        let union_pairs = self.build.db.pair_count() + uc_idna.pair_count();

        let mut t = TextTable::new(
            "Table 1: characters and homoglyph pairs per set (paper values in brackets)",
            &["Set", "# characters", "# pairs"],
        );
        t.row(&[
            "IDNA [123,006]".into(),
            thousands(stats.pvalid as u64),
            "n/a".into(),
        ]);
        t.row(&[
            "UC [9,605 / 6,296]".into(),
            thousands(uc_chars.len() as u64),
            thousands(self.uc.pair_count() as u64),
        ]);
        t.row(&[
            "UC ∩ IDNA [980 / 627]".into(),
            thousands(uc_idna_chars.len() as u64),
            thousands(uc_idna.pair_count() as u64),
        ]);
        t.row(&[
            "SimChar [12,686 / 13,208]".into(),
            thousands(sim_chars.len() as u64),
            thousands(self.build.db.pair_count() as u64),
        ]);
        t.row(&[
            "SimChar ∩ UC [233 / 127]".into(),
            thousands(sim_uc as u64),
            "n/a".into(),
        ]);
        t.row(&[
            "SimChar ∪ (UC ∩ IDNA) [13,210 / 13,708]".into(),
            thousands(union_chars.len() as u64),
            thousands(union_pairs as u64),
        ]);
        t
    }

    /// Table 2: set sizes within the font's coverage.
    pub fn table2(&self) -> TextTable {
        let covered_idna = repertoire::pvalid_code_points()
            .filter(|&cp| self.font.covers(cp))
            .count();
        let uc_covered = self
            .uc
            .char_set()
            .iter()
            .filter(|&&cp| CodePoint::new(cp).is_some_and(|c| self.font.covers(c)))
            .count();
        let uc_pairs_covered = self
            .uc
            .entries()
            .filter(|(s, t)| {
                CodePoint::new(*s).is_some_and(|c| self.font.covers(c))
                    && t.iter().all(|&v| {
                        CodePoint::new(v).is_some_and(|c| self.font.covers(c))
                    })
            })
            .count();
        let mut t = TextTable::new(
            "Table 2: sets within SynthUnifont12 coverage (paper values in brackets)",
            &["Set", "# chars", "# pairs"],
        );
        t.row(&[
            "IDNA ∩ Unifont12 [52,457]".into(),
            thousands(covered_idna as u64),
            "n/a".into(),
        ]);
        t.row(&[
            "UC ∩ Unifont12 [5,080 / 3,696]".into(),
            thousands(uc_covered as u64),
            thousands(uc_pairs_covered as u64),
        ]);
        t.row(&[
            "SimChar ∩ Unifont12 [12,686 / 13,208]".into(),
            thousands(self.build.db.char_count() as u64),
            thousands(self.build.db.pair_count() as u64),
        ]);
        t
    }

    /// Table 3: homoglyphs per Basic Latin lowercase letter, SimChar vs
    /// UC ∩ IDNA.
    pub fn table3(&self) -> TextTable {
        let uc_idna = self.uc.filter(|cp| is_pvalid(CodePoint(cp)));
        let mut t = TextTable::new(
            "Table 3: homoglyphs of Latin lowercase letters (paper: SimChar 351 total, UC∩IDNA 141)",
            &["Letter", "SimChar", "UC ∩ IDNA"],
        );
        let mut sim_total = 0usize;
        let mut uc_total = 0usize;
        for (letter, sim_count) in self.build.db.latin_profile() {
            let uc_count = uc_idna.homoglyphs_of(letter as u32).len();
            sim_total += sim_count;
            uc_total += uc_count;
            if sim_count > 0 || uc_count > 0 {
                t.row(&[letter.to_string(), sim_count.to_string(), uc_count.to_string()]);
            }
        }
        t.row(&["TOTAL".into(), sim_total.to_string(), uc_total.to_string()]);
        t
    }

    /// Table 4: top-5 Unicode blocks in SimChar and UC ∩ IDNA.
    pub fn table4(&self) -> TextTable {
        let uc_idna = self.uc.filter(|cp| is_pvalid(CodePoint(cp)));
        let mut uc_blocks: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for cp in uc_idna.char_set() {
            if let Some(b) = sham_unicode::block_of(CodePoint(cp)) {
                *uc_blocks.entry(b.name).or_default() += 1;
            }
        }
        let mut uc_sorted: Vec<(&str, usize)> = uc_blocks.into_iter().collect();
        uc_sorted.sort_by_key(|e| std::cmp::Reverse(e.1));

        let sim_sorted = self.build.db.block_profile();
        let mut t = TextTable::new(
            "Table 4: top-5 blocks (paper: SimChar Hangul 8,787 / CJK 395 / CA 387 / Vai 134 / Arabic 107)",
            &["Rank", "SimChar block", "#", "UC∩IDNA block", "#"],
        );
        for i in 0..5 {
            let (sb, sc) = sim_sorted.get(i).copied().unwrap_or(("—", 0));
            let (ub, uc_c) = uc_sorted.get(i).copied().unwrap_or(("—", 0));
            t.row(&[
                (i + 1).to_string(),
                sb.to_string(),
                sc.to_string(),
                ub.to_string(),
                uc_c.to_string(),
            ]);
        }
        t
    }

    /// Table 5: SimChar construction wall times.
    pub fn table5(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 5: SimChar construction time (paper: 79.2 s render / 10.9 h pairwise / 18.0 s sparse on 15 cores)",
            &["Process", "Time"],
        );
        let tm = &self.build.timings;
        t.row(&["Generating images".into(), format!("{:?}", tm.render)]);
        t.row(&["Computing Δ for all the pairs".into(), format!("{:?}", tm.pairwise)]);
        t.row(&["Eliminating sparse characters".into(), format!("{:?}", tm.sparse_elimination)]);
        t.row(&["Rendered glyphs".into(), thousands(self.build.rendered as u64)]);
        t.row(&["Raw pairs".into(), thousands(self.build.raw_pairs as u64)]);
        t
    }

    /// §7.1 extension — font sensitivity: build SimChar with a second
    /// typeface and measure how much of the database survives the font
    /// change ("the choice of a font may affect the detected
    /// homoglyphs … we aim to evaluate other fonts in future work").
    pub fn font_sensitivity(&self) -> TextTable {
        let noto = SynthUnifont::noto();
        let noto_build = build(&noto, &BuildConfig::default());

        let uni_pairs: BTreeSet<(u32, u32)> =
            self.build.db.pairs().map(|(a, b, _)| (a, b)).collect();
        let noto_pairs: BTreeSet<(u32, u32)> =
            noto_build.db.pairs().map(|(a, b, _)| (a, b)).collect();
        let shared = uni_pairs.intersection(&noto_pairs).count();
        let union = uni_pairs.union(&noto_pairs).count();

        let mut t = TextTable::new(
            "Extension (§7.1): SimChar sensitivity to the font family",
            &["Metric", "Value"],
        );
        t.row(&["SynthUnifont12 pairs".into(), thousands(uni_pairs.len() as u64)]);
        t.row(&["SynthNoto12 pairs".into(), thousands(noto_pairs.len() as u64)]);
        t.row(&["Shared pairs".into(), thousands(shared as u64)]);
        t.row(&[
            "Jaccard overlap".into(),
            format!("{:.1}%", 100.0 * shared as f64 / union.max(1) as f64),
        ]);
        // The stable core: visual-class and diacritic pairs survive any
        // typeface; the procedural (per-font) tail churns.
        let stable = uni_pairs
            .iter()
            .filter(|&&(a, b)| a < 0x2000 || (0x61..=0x7A).contains(&a.min(b)))
            .filter(|p| noto_pairs.contains(p))
            .count();
        t.row(&["Shared Latin-anchored pairs".into(), thousands(stable as u64)]);
        t
    }

    /// Extension — closure-component diagnostics over SimChar ∪ UC.
    /// The union-find closure behind the default `CanonicalClosure`
    /// candidate index can glue long confusable chains into one
    /// component; that is sound (candidates are re-verified pairwise)
    /// but a pathologically glued database turns the candidate filter
    /// into a broad net and shifts cost into verification. This table
    /// makes the component-size distribution visible: count, max,
    /// mean, and a size histogram.
    pub fn component_diagnostics(&self) -> TextTable {
        use sham_simchar::FlatPairIndex;
        let flat = FlatPairIndex::build(&self.build.db, &self.uc);
        let sizes = flat.component_sizes();
        let chars = flat.char_count();
        let max = sizes.first().copied().unwrap_or(0);
        let mean = chars as f64 / sizes.len().max(1) as f64;

        let mut t = TextTable::new(
            "Extension: canonical-closure component-size distribution (SimChar ∪ UC)",
            &["Metric", "Value"],
        );
        t.row(&["Characters in pairs".into(), thousands(chars as u64)]);
        t.row(&["Pair edges".into(), thousands(flat.pair_count() as u64)]);
        t.row(&["Components".into(), thousands(sizes.len() as u64)]);
        t.row(&["Largest component".into(), thousands(u64::from(max))]);
        t.row(&["Mean component size".into(), format!("{mean:.2}")]);
        // Histogram over power-of-two-ish buckets; every component has
        // ≥ 2 members (a component is born from at least one edge).
        let buckets: &[(u32, u32, &str)] = &[
            (2, 2, "size 2"),
            (3, 4, "size 3–4"),
            (5, 8, "size 5–8"),
            (9, 16, "size 9–16"),
            (17, 32, "size 17–32"),
            (33, u32::MAX, "size 33+"),
        ];
        for &(lo, hi, label) in buckets {
            let n = sizes.iter().filter(|&&s| (lo..=hi).contains(&s)).count();
            t.row(&[format!("— {label}"), thousands(n as u64)]);
        }
        t
    }

    /// Figure 5: example glyph pairs as ASCII art.
    pub fn figure5(&self) -> String {
        let pairs: &[(u32, u32, &str)] = &[
            (0x10E7, 0x0079, "Georgian qar / y"),
            (0x0253, 0x0062, "b-with-hook / b"),
            (0x0430, 0x0061, "Cyrillic a / a"),
            (0x91CC, 0x573C, "CJK pair"),
            (0xBFC8, 0xBF58, "Hangul pair"),
            (0x0B32, 0x0B33, "Oriya la / lla"),
        ];
        let mut out = String::from("Figure 5: example glyph images (# = ink)\n\n");
        for &(a, b, label) in pairs {
            let (Some(ga), Some(gb)) = (
                self.font.glyph(CodePoint(a)),
                self.font.glyph(CodePoint(b)),
            ) else {
                continue;
            };
            out.push_str(&format!(
                "U+{a:04X} vs U+{b:04X} ({label}), Δ = {}\n",
                ga.delta(&gb)
            ));
            out.push_str(&Bitmap::ascii_art_pair(&ga, &gb));
            out.push('\n');
        }
        out
    }

    /// Figure 6: neighbours of `e` at Δ = 0..=6 (counts and examples).
    pub fn figure6(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 6: characters at exact pixel distance Δ from 'e' (θ = 4 cut-off)",
            &["Δ", "# chars", "examples"],
        );
        for delta in 0..=6u32 {
            let ns = neighbours_at(&self.font, &Repertoire::Full, 'e', delta);
            let examples: Vec<String> = ns
                .iter()
                .take(4)
                .map(|&v| {
                    format!("U+{v:04X}{}", char::from_u32(v).map(|c| format!(" {c}")).unwrap_or_default())
                })
                .collect();
            t.row(&[delta.to_string(), ns.len().to_string(), examples.join(", ")]);
        }
        t
    }

    /// Figure 7: sparse eliminated characters.
    pub fn figure7(&self) -> String {
        let mut out = String::from(
            "Figure 7: sparse characters eliminated in Step III (<10 px of ink)\n\n",
        );
        // The paper's four examples plus the first few from this build.
        let mut shown: Vec<u32> = vec![0x1BE7, 0x2DF5, 0xA953, 0xABEC];
        shown.extend(self.build.sparse_chars.iter().take(4).copied());
        shown.dedup();
        for cp in shown {
            if let Some(g) = self.font.glyph(CodePoint(cp)) {
                if g.popcount() < 10 {
                    out.push_str(&format!("U+{cp:04X} ({} px):\n{}\n", g.popcount(), g.ascii_art()));
                }
            }
        }
        out.push_str(&format!(
            "total sparse characters eliminated: {}\n",
            self.build.sparse_chars.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn ctx() -> &'static CharDbContext {
        static CTX: OnceLock<CharDbContext> = OnceLock::new();
        CTX.get_or_init(CharDbContext::create)
    }

    #[test]
    fn table1_shape_matches_paper() {
        let ctx = ctx();
        let stats = repertoire::repertoire_stats();
        // IDNA is ~10× UC; SimChar adds thousands of chars beyond UC∩IDNA.
        let uc_chars = ctx.uc.char_set().len();
        assert!(stats.pvalid > uc_chars * 10);
        let uc_idna = ctx.uc.filter(|cp| is_pvalid(CodePoint(cp))).char_set().len();
        assert!(uc_idna < uc_chars / 3);
        assert!(ctx.build.db.char_count() > uc_idna * 5);
        assert!(!ctx.table1().is_empty());
    }

    #[test]
    fn table4_top_block_is_hangul() {
        let profile = ctx().build.db.block_profile();
        assert_eq!(profile[0].0, "Hangul Syllables");
        assert!(profile[0].1 > 5_000);
        let top5: Vec<&str> = profile.iter().take(6).map(|&(n, _)| n).collect();
        assert!(top5.contains(&"Unified Canadian Aboriginal Syllabics"));
        assert!(top5.contains(&"Vai"));
    }

    #[test]
    fn table3_o_leads() {
        let profile = ctx().build.db.latin_profile();
        assert_eq!(profile[0].0, 'o');
        assert!(profile[0].1 >= 20, "o has {}", profile[0].1);
    }

    #[test]
    fn figure6_counts_grow_with_delta_band() {
        let t = ctx().figure6();
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn figure5_and_7_render() {
        let f5 = ctx().figure5();
        assert!(f5.contains("U+10E7"));
        assert!(f5.contains("Δ ="));
        let f7 = ctx().figure7();
        assert!(f7.contains("U+1BE7"));
    }
}
