//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--scale test|repro] [--out DIR] <experiment>...
//! repro all
//! ```
//!
//! Experiments: `table1..table14`, `fig5`, `fig6`, `fig7`, `fig9`,
//! `fig10`, `fig11`, `timing`, `revert`.

use sham_measure::{humanstudy, CharDbContext, Study};
use sham_perception::ExperimentConfig;
use sham_workload::{Workload, WorkloadConfig};
use std::io::Write as _;

struct Args {
    scale: String,
    out_dir: Option<String>,
    experiments: Vec<String>,
}

fn parse_args() -> Args {
    let mut scale = "repro".to_string();
    let mut out_dir = None;
    let mut experiments = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().unwrap_or_else(|| "repro".into()),
            "--out" => out_dir = args.next(),
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale test|repro] [--out DIR] <experiment>...\n\
                     experiments: table1..table14 fig5 fig6 fig7 fig9 fig10 fig11 timing revert policy context fonts components all"
                );
                std::process::exit(0);
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    Args { scale, out_dir, experiments }
}

const CHARDB_EXPERIMENTS: &[&str] =
    &["table1", "table2", "table3", "table4", "table5", "fig5", "fig6", "fig7", "fig9", "fig10", "fig11"];
const STUDY_EXPERIMENTS: &[&str] = &[
    "table6", "table7", "table8", "table9", "table10", "table11", "table12", "table13",
    "table14", "timing", "revert", "policy",
];

/// Extension experiments beyond the paper's tables.
const EXTENSION_EXPERIMENTS: &[&str] = &["context", "fonts", "components"];

fn main() {
    let args = parse_args();
    let wants = |name: &str| {
        args.experiments.iter().any(|e| e == name || e == "all")
    };
    let needs_chardb = CHARDB_EXPERIMENTS.iter().any(|e| wants(e))
        || EXTENSION_EXPERIMENTS.iter().any(|e| wants(e));
    let needs_study = STUDY_EXPERIMENTS.iter().any(|e| wants(e));

    let mut output = String::new();
    let mut emit = |s: String| {
        println!("{s}");
        output.push_str(&s);
        output.push('\n');
    };

    let ctx = if needs_chardb || needs_study {
        eprintln!("[repro] building SimChar over the full repertoire …");
        Some(CharDbContext::create())
    } else {
        None
    };

    if let Some(ctx) = &ctx {
        if wants("table1") {
            emit(ctx.table1().render());
        }
        if wants("table2") {
            emit(ctx.table2().render());
        }
        if wants("table3") {
            emit(ctx.table3().render());
        }
        if wants("table4") {
            emit(ctx.table4().render());
        }
        if wants("table5") {
            emit(ctx.table5().render());
        }
        if wants("fig5") {
            emit(ctx.figure5());
        }
        if wants("fig6") {
            emit(ctx.figure6().render());
        }
        if wants("fig7") {
            emit(ctx.figure7());
        }
        if wants("fig9") {
            let outcome = humanstudy::experiment1(&ExperimentConfig::default());
            emit(humanstudy::render_outcome(
                "Figure 9: confusability score vs Δ (paper: Δ=4 mean 3.57/median 4; Δ=5 mean 2.57/median 2)",
                &outcome,
            )
            .render());
            emit(format!(
                "removed raters: {}, effective responses: {}, implied pay: {:.2} USD/h\n",
                outcome.removed_raters, outcome.effective_responses, outcome.hourly_rate_usd
            ));
        }
        if wants("fig10") {
            let ctx_ref = ctx;
            let outcome = humanstudy::experiment2(ctx_ref, &ExperimentConfig::default());
            emit(humanstudy::render_outcome(
                "Figure 10: confusability of Random / SimChar / UC (paper: SimChar mean > 4 > UC mean; both medians 4)",
                &outcome,
            )
            .render());
        }
        if wants("fig11") {
            emit(humanstudy::figure11(ctx, 3).render());
        }
        if wants("context") {
            emit(humanstudy::context_experiment(ctx).render());
        }
        if wants("fonts") {
            emit(ctx.font_sensitivity().render());
        }
        if wants("components") {
            emit(ctx.component_diagnostics().render());
        }
    }

    if needs_study {
        let ctx = ctx.as_ref().expect("chardb context built above");
        let config = match args.scale.as_str() {
            "test" => WorkloadConfig::test(),
            _ => WorkloadConfig::repro(),
        };
        eprintln!(
            "[repro] generating workload ({} benign domains) …",
            config.benign_ascii + config.benign_idns
        );
        let workload = Workload::generate(config);
        eprintln!("[repro] running measurement study …");
        let study = Study::run(workload, ctx.build.db.clone(), ctx.uc.clone());

        if wants("table6") {
            emit(study.table6().render());
        }
        if wants("table7") {
            emit(study.table7(8).render());
        }
        if wants("table8") {
            emit(study.table8().render());
        }
        if wants("table9") {
            emit(study.table9(5).render());
        }
        let needs_active = ["table10", "table11", "table12", "table13"]
            .iter()
            .any(|e| wants(e));
        if needs_active {
            let analysis = study.active_analysis();
            if wants("table10") {
                emit(study.table10(&analysis).render());
            }
            if wants("table11") {
                emit(study.table11(&analysis, 10).render());
            }
            if wants("table12") || wants("table13") {
                let (t12, t13) = study.table12_13(&analysis);
                if wants("table12") {
                    emit(t12.render());
                }
                if wants("table13") {
                    emit(t13.render());
                }
            }
        }
        if wants("table14") {
            emit(study.table14().render());
        }
        if wants("revert") {
            // The study's shared index already holds the HomoglyphDb
            // the detections came from — no rebuild, no clone.
            emit(study.revert_analysis(study.shared_db()).render());
        }
        if wants("policy") {
            emit(study.policy_analysis().render());
        }
        if wants("timing") {
            emit(study.timing().render());
        }
    }

    if let Some(dir) = args.out_dir {
        let path = std::path::Path::new(&dir);
        std::fs::create_dir_all(path).expect("create output dir");
        let file = path.join("repro_output.txt");
        let mut f = std::fs::File::create(&file).expect("create output file");
        f.write_all(output.as_bytes()).expect("write output");
        eprintln!("[repro] wrote {}", file.display());
    }
}
