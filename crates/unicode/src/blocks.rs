//! Unicode block table.
//!
//! Block ranges are stable published values from the Unicode standard.
//! The table below covers the Basic Multilingual Plane blocks relevant to
//! IDN (every block the paper's Tables 4 and 7 touch) plus the
//! Supplementary Multilingual/Ideographic Plane blocks needed to account
//! for the IDNA2008 repertoire (CJK extensions, Warang Citi of Figure 11,
//! mathematical alphanumerics, Emoticons, ...).

use crate::CodePoint;
use serde::{Deserialize, Serialize};

/// Unicode plane a block belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Plane {
    /// Basic Multilingual Plane (U+0000..=U+FFFF).
    Bmp,
    /// Supplementary Multilingual Plane (U+10000..=U+1FFFF).
    Smp,
    /// Supplementary Ideographic Plane (U+20000..=U+2FFFF).
    Sip,
    /// Tertiary Ideographic Plane (U+30000..=U+3FFFF).
    Tip,
}

/// A contiguous, named range of code points.
///
/// Serializable but not deserializable: `name` borrows the static block
/// table, so a `Block` can only be *referenced* by serialized data, not
/// rebuilt from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Block {
    /// First code point of the block.
    pub start: u32,
    /// Last code point of the block (inclusive).
    pub end: u32,
    /// Published block name.
    pub name: &'static str,
}

impl Block {
    /// Number of code point slots in the block.
    pub fn len(&self) -> u32 {
        self.end - self.start + 1
    }

    /// Blocks are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when `cp` falls inside the block.
    pub fn contains(&self, cp: CodePoint) -> bool {
        (self.start..=self.end).contains(&cp.0)
    }

    /// Plane the block belongs to.
    pub fn plane(&self) -> Plane {
        match self.start {
            0x0000..=0xFFFF => Plane::Bmp,
            0x10000..=0x1FFFF => Plane::Smp,
            0x20000..=0x2FFFF => Plane::Sip,
            _ => Plane::Tip,
        }
    }
}

/// The block table, sorted by starting code point.
pub const BLOCKS: &[Block] = &[
    Block { start: 0x0000, end: 0x007F, name: "Basic Latin" },
    Block { start: 0x0080, end: 0x00FF, name: "Latin-1 Supplement" },
    Block { start: 0x0100, end: 0x017F, name: "Latin Extended-A" },
    Block { start: 0x0180, end: 0x024F, name: "Latin Extended-B" },
    Block { start: 0x0250, end: 0x02AF, name: "IPA Extensions" },
    Block { start: 0x02B0, end: 0x02FF, name: "Spacing Modifier Letters" },
    Block { start: 0x0300, end: 0x036F, name: "Combining Diacritical Marks" },
    Block { start: 0x0370, end: 0x03FF, name: "Greek and Coptic" },
    Block { start: 0x0400, end: 0x04FF, name: "Cyrillic" },
    Block { start: 0x0500, end: 0x052F, name: "Cyrillic Supplement" },
    Block { start: 0x0530, end: 0x058F, name: "Armenian" },
    Block { start: 0x0590, end: 0x05FF, name: "Hebrew" },
    Block { start: 0x0600, end: 0x06FF, name: "Arabic" },
    Block { start: 0x0700, end: 0x074F, name: "Syriac" },
    Block { start: 0x0750, end: 0x077F, name: "Arabic Supplement" },
    Block { start: 0x0780, end: 0x07BF, name: "Thaana" },
    Block { start: 0x07C0, end: 0x07FF, name: "NKo" },
    Block { start: 0x0800, end: 0x083F, name: "Samaritan" },
    Block { start: 0x0840, end: 0x085F, name: "Mandaic" },
    Block { start: 0x08A0, end: 0x08FF, name: "Arabic Extended-A" },
    Block { start: 0x0900, end: 0x097F, name: "Devanagari" },
    Block { start: 0x0980, end: 0x09FF, name: "Bengali" },
    Block { start: 0x0A00, end: 0x0A7F, name: "Gurmukhi" },
    Block { start: 0x0A80, end: 0x0AFF, name: "Gujarati" },
    Block { start: 0x0B00, end: 0x0B7F, name: "Oriya" },
    Block { start: 0x0B80, end: 0x0BFF, name: "Tamil" },
    Block { start: 0x0C00, end: 0x0C7F, name: "Telugu" },
    Block { start: 0x0C80, end: 0x0CFF, name: "Kannada" },
    Block { start: 0x0D00, end: 0x0D7F, name: "Malayalam" },
    Block { start: 0x0D80, end: 0x0DFF, name: "Sinhala" },
    Block { start: 0x0E00, end: 0x0E7F, name: "Thai" },
    Block { start: 0x0E80, end: 0x0EFF, name: "Lao" },
    Block { start: 0x0F00, end: 0x0FFF, name: "Tibetan" },
    Block { start: 0x1000, end: 0x109F, name: "Myanmar" },
    Block { start: 0x10A0, end: 0x10FF, name: "Georgian" },
    Block { start: 0x1100, end: 0x11FF, name: "Hangul Jamo" },
    Block { start: 0x1200, end: 0x137F, name: "Ethiopic" },
    Block { start: 0x1380, end: 0x139F, name: "Ethiopic Supplement" },
    Block { start: 0x13A0, end: 0x13FF, name: "Cherokee" },
    Block { start: 0x1400, end: 0x167F, name: "Unified Canadian Aboriginal Syllabics" },
    Block { start: 0x1680, end: 0x169F, name: "Ogham" },
    Block { start: 0x16A0, end: 0x16FF, name: "Runic" },
    Block { start: 0x1700, end: 0x171F, name: "Tagalog" },
    Block { start: 0x1720, end: 0x173F, name: "Hanunoo" },
    Block { start: 0x1740, end: 0x175F, name: "Buhid" },
    Block { start: 0x1760, end: 0x177F, name: "Tagbanwa" },
    Block { start: 0x1780, end: 0x17FF, name: "Khmer" },
    Block { start: 0x1800, end: 0x18AF, name: "Mongolian" },
    Block { start: 0x18B0, end: 0x18FF, name: "Unified Canadian Aboriginal Syllabics Extended" },
    Block { start: 0x1900, end: 0x194F, name: "Limbu" },
    Block { start: 0x1950, end: 0x197F, name: "Tai Le" },
    Block { start: 0x1980, end: 0x19DF, name: "New Tai Lue" },
    Block { start: 0x19E0, end: 0x19FF, name: "Khmer Symbols" },
    Block { start: 0x1A00, end: 0x1A1F, name: "Buginese" },
    Block { start: 0x1A20, end: 0x1AAF, name: "Tai Tham" },
    Block { start: 0x1AB0, end: 0x1AFF, name: "Combining Diacritical Marks Extended" },
    Block { start: 0x1B00, end: 0x1B7F, name: "Balinese" },
    Block { start: 0x1B80, end: 0x1BBF, name: "Sundanese" },
    Block { start: 0x1BC0, end: 0x1BFF, name: "Batak" },
    Block { start: 0x1C00, end: 0x1C4F, name: "Lepcha" },
    Block { start: 0x1C50, end: 0x1C7F, name: "Ol Chiki" },
    Block { start: 0x1C80, end: 0x1C8F, name: "Cyrillic Extended-C" },
    Block { start: 0x1C90, end: 0x1CBF, name: "Georgian Extended" },
    Block { start: 0x1CD0, end: 0x1CFF, name: "Vedic Extensions" },
    Block { start: 0x1D00, end: 0x1D7F, name: "Phonetic Extensions" },
    Block { start: 0x1D80, end: 0x1DBF, name: "Phonetic Extensions Supplement" },
    Block { start: 0x1DC0, end: 0x1DFF, name: "Combining Diacritical Marks Supplement" },
    Block { start: 0x1E00, end: 0x1EFF, name: "Latin Extended Additional" },
    Block { start: 0x1F00, end: 0x1FFF, name: "Greek Extended" },
    Block { start: 0x2000, end: 0x206F, name: "General Punctuation" },
    Block { start: 0x2070, end: 0x209F, name: "Superscripts and Subscripts" },
    Block { start: 0x20A0, end: 0x20CF, name: "Currency Symbols" },
    Block { start: 0x20D0, end: 0x20FF, name: "Combining Diacritical Marks for Symbols" },
    Block { start: 0x2100, end: 0x214F, name: "Letterlike Symbols" },
    Block { start: 0x2150, end: 0x218F, name: "Number Forms" },
    Block { start: 0x2190, end: 0x21FF, name: "Arrows" },
    Block { start: 0x2200, end: 0x22FF, name: "Mathematical Operators" },
    Block { start: 0x2300, end: 0x23FF, name: "Miscellaneous Technical" },
    Block { start: 0x2400, end: 0x243F, name: "Control Pictures" },
    Block { start: 0x2440, end: 0x245F, name: "Optical Character Recognition" },
    Block { start: 0x2460, end: 0x24FF, name: "Enclosed Alphanumerics" },
    Block { start: 0x2500, end: 0x257F, name: "Box Drawing" },
    Block { start: 0x2580, end: 0x259F, name: "Block Elements" },
    Block { start: 0x25A0, end: 0x25FF, name: "Geometric Shapes" },
    Block { start: 0x2600, end: 0x26FF, name: "Miscellaneous Symbols" },
    Block { start: 0x2700, end: 0x27BF, name: "Dingbats" },
    Block { start: 0x27C0, end: 0x27EF, name: "Miscellaneous Mathematical Symbols-A" },
    Block { start: 0x2800, end: 0x28FF, name: "Braille Patterns" },
    Block { start: 0x2C00, end: 0x2C5F, name: "Glagolitic" },
    Block { start: 0x2C60, end: 0x2C7F, name: "Latin Extended-C" },
    Block { start: 0x2C80, end: 0x2CFF, name: "Coptic" },
    Block { start: 0x2D00, end: 0x2D2F, name: "Georgian Supplement" },
    Block { start: 0x2D30, end: 0x2D7F, name: "Tifinagh" },
    Block { start: 0x2D80, end: 0x2DDF, name: "Ethiopic Extended" },
    Block { start: 0x2DE0, end: 0x2DFF, name: "Cyrillic Extended-A" },
    Block { start: 0x2E00, end: 0x2E7F, name: "Supplemental Punctuation" },
    Block { start: 0x2E80, end: 0x2EFF, name: "CJK Radicals Supplement" },
    Block { start: 0x2F00, end: 0x2FDF, name: "Kangxi Radicals" },
    Block { start: 0x3000, end: 0x303F, name: "CJK Symbols and Punctuation" },
    Block { start: 0x3040, end: 0x309F, name: "Hiragana" },
    Block { start: 0x30A0, end: 0x30FF, name: "Katakana" },
    Block { start: 0x3100, end: 0x312F, name: "Bopomofo" },
    Block { start: 0x3130, end: 0x318F, name: "Hangul Compatibility Jamo" },
    Block { start: 0x31A0, end: 0x31BF, name: "Bopomofo Extended" },
    Block { start: 0x31F0, end: 0x31FF, name: "Katakana Phonetic Extensions" },
    Block { start: 0x3200, end: 0x32FF, name: "Enclosed CJK Letters and Months" },
    Block { start: 0x3400, end: 0x4DBF, name: "CJK Unified Ideographs Extension A" },
    Block { start: 0x4E00, end: 0x9FFF, name: "CJK Unified Ideographs" },
    Block { start: 0xA000, end: 0xA48F, name: "Yi Syllables" },
    Block { start: 0xA490, end: 0xA4CF, name: "Yi Radicals" },
    Block { start: 0xA4D0, end: 0xA4FF, name: "Lisu" },
    Block { start: 0xA500, end: 0xA63F, name: "Vai" },
    Block { start: 0xA640, end: 0xA69F, name: "Cyrillic Extended-B" },
    Block { start: 0xA6A0, end: 0xA6FF, name: "Bamum" },
    Block { start: 0xA700, end: 0xA71F, name: "Modifier Tone Letters" },
    Block { start: 0xA720, end: 0xA7FF, name: "Latin Extended-D" },
    Block { start: 0xA800, end: 0xA82F, name: "Syloti Nagri" },
    Block { start: 0xA840, end: 0xA87F, name: "Phags-pa" },
    Block { start: 0xA880, end: 0xA8DF, name: "Saurashtra" },
    Block { start: 0xA900, end: 0xA92F, name: "Kayah Li" },
    Block { start: 0xA930, end: 0xA95F, name: "Rejang" },
    Block { start: 0xA960, end: 0xA97F, name: "Hangul Jamo Extended-A" },
    Block { start: 0xA980, end: 0xA9DF, name: "Javanese" },
    Block { start: 0xAA00, end: 0xAA5F, name: "Cham" },
    Block { start: 0xAA80, end: 0xAADF, name: "Tai Viet" },
    Block { start: 0xAB00, end: 0xAB2F, name: "Ethiopic Extended-A" },
    Block { start: 0xAB70, end: 0xABBF, name: "Cherokee Supplement" },
    Block { start: 0xABC0, end: 0xABFF, name: "Meetei Mayek" },
    Block { start: 0xAC00, end: 0xD7AF, name: "Hangul Syllables" },
    Block { start: 0xD7B0, end: 0xD7FF, name: "Hangul Jamo Extended-B" },
    Block { start: 0xF900, end: 0xFAFF, name: "CJK Compatibility Ideographs" },
    Block { start: 0xFB00, end: 0xFB4F, name: "Alphabetic Presentation Forms" },
    Block { start: 0xFB50, end: 0xFDFF, name: "Arabic Presentation Forms-A" },
    Block { start: 0xFE20, end: 0xFE2F, name: "Combining Half Marks" },
    Block { start: 0xFE70, end: 0xFEFF, name: "Arabic Presentation Forms-B" },
    Block { start: 0xFF00, end: 0xFFEF, name: "Halfwidth and Fullwidth Forms" },
    // --- Supplementary Multilingual Plane ---
    Block { start: 0x10000, end: 0x1007F, name: "Linear B Syllabary" },
    Block { start: 0x10280, end: 0x1029F, name: "Lycian" },
    Block { start: 0x102A0, end: 0x102DF, name: "Carian" },
    Block { start: 0x10300, end: 0x1032F, name: "Old Italic" },
    Block { start: 0x10330, end: 0x1034F, name: "Gothic" },
    Block { start: 0x10400, end: 0x1044F, name: "Deseret" },
    Block { start: 0x10450, end: 0x1047F, name: "Shavian" },
    Block { start: 0x10480, end: 0x104AF, name: "Osmanya" },
    Block { start: 0x104B0, end: 0x104FF, name: "Osage" },
    Block { start: 0x10800, end: 0x1083F, name: "Cypriot Syllabary" },
    Block { start: 0x10A00, end: 0x10A5F, name: "Kharoshthi" },
    Block { start: 0x11000, end: 0x1107F, name: "Brahmi" },
    Block { start: 0x11080, end: 0x110CF, name: "Kaithi" },
    Block { start: 0x11100, end: 0x1114F, name: "Chakma" },
    Block { start: 0x11600, end: 0x1165F, name: "Modi" },
    Block { start: 0x11800, end: 0x1184F, name: "Dogra" },
    Block { start: 0x118A0, end: 0x118FF, name: "Warang Citi" },
    Block { start: 0x11A00, end: 0x11A4F, name: "Zanabazar Square" },
    Block { start: 0x12000, end: 0x123FF, name: "Cuneiform" },
    Block { start: 0x13000, end: 0x1342F, name: "Egyptian Hieroglyphs" },
    Block { start: 0x14400, end: 0x1467F, name: "Anatolian Hieroglyphs" },
    Block { start: 0x16800, end: 0x16A3F, name: "Bamum Supplement" },
    Block { start: 0x16F00, end: 0x16F9F, name: "Miao" },
    Block { start: 0x17000, end: 0x187FF, name: "Tangut" },
    Block { start: 0x18800, end: 0x18AFF, name: "Tangut Components" },
    Block { start: 0x1B000, end: 0x1B0FF, name: "Kana Supplement" },
    Block { start: 0x1D400, end: 0x1D7FF, name: "Mathematical Alphanumeric Symbols" },
    Block { start: 0x1E800, end: 0x1E8DF, name: "Mende Kikakui" },
    Block { start: 0x1E900, end: 0x1E95F, name: "Adlam" },
    Block { start: 0x1F300, end: 0x1F5FF, name: "Miscellaneous Symbols and Pictographs" },
    Block { start: 0x1F600, end: 0x1F64F, name: "Emoticons" },
    // --- Supplementary Ideographic Plane ---
    Block { start: 0x20000, end: 0x2A6DF, name: "CJK Unified Ideographs Extension B" },
    Block { start: 0x2A700, end: 0x2B73F, name: "CJK Unified Ideographs Extension C" },
    Block { start: 0x2B740, end: 0x2B81F, name: "CJK Unified Ideographs Extension D" },
    Block { start: 0x2B820, end: 0x2CEAF, name: "CJK Unified Ideographs Extension E" },
    Block { start: 0x2CEB0, end: 0x2EBEF, name: "CJK Unified Ideographs Extension F" },
];

/// Returns the block containing `cp`, or `None` when `cp` falls in a gap
/// between blocks (an unassigned region of the code space).
pub fn block_of(cp: CodePoint) -> Option<&'static Block> {
    let idx = BLOCKS.partition_point(|b| b.end < cp.0);
    BLOCKS.get(idx).filter(|b| b.contains(cp))
}

/// Looks a block up by its published name.
pub fn block_by_name(name: &str) -> Option<&'static Block> {
    BLOCKS.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_disjoint() {
        for pair in BLOCKS.windows(2) {
            assert!(
                pair[0].end < pair[1].start,
                "blocks {} and {} overlap or are out of order",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn lookup_hits_expected_blocks() {
        let cases = [
            (0x0061, "Basic Latin"),
            (0x00E9, "Latin-1 Supplement"),
            (0x0430, "Cyrillic"),
            (0x0585, "Armenian"),
            (0x0B32, "Oriya"),
            (0x0ED0, "Lao"),
            (0x30A8, "Katakana"),
            (0x5DE5, "CJK Unified Ideographs"),
            (0xAC00, "Hangul Syllables"),
            (0xA500, "Vai"),
            (0x118D8, "Warang Citi"),
            (0x1F600, "Emoticons"),
            (0x20000, "CJK Unified Ideographs Extension B"),
        ];
        for (v, name) in cases {
            let cp = CodePoint::new(v).unwrap();
            assert_eq!(block_of(cp).map(|b| b.name), Some(name), "for {cp}");
        }
    }

    #[test]
    fn gaps_between_blocks_resolve_to_none() {
        // U+08000..=U+089F sits between Mandaic and Arabic Extended-A.
        assert!(block_of(CodePoint(0x0870)).is_none());
        // The surrogates / private use gap before CJK Compatibility.
        assert!(block_of(CodePoint(0xE000)).is_none());
    }

    #[test]
    fn block_by_name_round_trips() {
        for b in BLOCKS {
            assert_eq!(block_by_name(b.name).unwrap().start, b.start);
        }
    }

    #[test]
    fn planes_are_classified() {
        assert_eq!(block_by_name("Hangul Syllables").unwrap().plane(), Plane::Bmp);
        assert_eq!(block_by_name("Warang Citi").unwrap().plane(), Plane::Smp);
        assert_eq!(
            block_by_name("CJK Unified Ideographs Extension B").unwrap().plane(),
            Plane::Sip
        );
    }

    #[test]
    fn hangul_block_size_matches_standard() {
        // 11,184 slots; 11,172 assigned syllables in the real UCD.
        assert_eq!(block_by_name("Hangul Syllables").unwrap().len(), 0xD7AF - 0xAC00 + 1);
    }
}
