//! Script property (range-granular).
//!
//! Browser IDN display policies (Chrome's and Firefox's, modelled in
//! `sham-core`) hinge on whether the characters of a label come from a
//! single script, from scripts that are conventionally combined (e.g.
//! Han + Hiragana + Katakana in Japanese), or from a suspicious mixture
//! (e.g. Latin + Cyrillic). This module assigns a script to each code
//! point by block range — the same granularity the real Script.txt uses
//! for the vast majority of assignments.

use crate::{block_of, CodePoint};
use serde::{Deserialize, Serialize};

/// Writing system of a code point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Script {
    /// Shared characters: digits, hyphen, punctuation.
    Common,
    /// Combining marks inherit the script of their base character.
    Inherited,
    Latin,
    Greek,
    Cyrillic,
    Armenian,
    Hebrew,
    Arabic,
    Syriac,
    Thaana,
    Nko,
    Devanagari,
    Bengali,
    Gurmukhi,
    Gujarati,
    Oriya,
    Tamil,
    Telugu,
    Kannada,
    Malayalam,
    Sinhala,
    Thai,
    Lao,
    Tibetan,
    Myanmar,
    Georgian,
    Hangul,
    Ethiopic,
    Cherokee,
    CanadianAboriginal,
    Ogham,
    Runic,
    Khmer,
    Mongolian,
    Han,
    Hiragana,
    Katakana,
    Bopomofo,
    Yi,
    Vai,
    Lisu,
    Bamum,
    Adlam,
    Osage,
    Gothic,
    Deseret,
    WarangCiti,
    /// Any script this table does not model individually.
    Unknown,
}

impl Script {
    /// Human-readable name (matches the Unicode property value where the
    /// variant models a real script).
    pub fn name(self) -> &'static str {
        match self {
            Script::Common => "Common",
            Script::Inherited => "Inherited",
            Script::Latin => "Latin",
            Script::Greek => "Greek",
            Script::Cyrillic => "Cyrillic",
            Script::Armenian => "Armenian",
            Script::Hebrew => "Hebrew",
            Script::Arabic => "Arabic",
            Script::Syriac => "Syriac",
            Script::Thaana => "Thaana",
            Script::Nko => "NKo",
            Script::Devanagari => "Devanagari",
            Script::Bengali => "Bengali",
            Script::Gurmukhi => "Gurmukhi",
            Script::Gujarati => "Gujarati",
            Script::Oriya => "Oriya",
            Script::Tamil => "Tamil",
            Script::Telugu => "Telugu",
            Script::Kannada => "Kannada",
            Script::Malayalam => "Malayalam",
            Script::Sinhala => "Sinhala",
            Script::Thai => "Thai",
            Script::Lao => "Lao",
            Script::Tibetan => "Tibetan",
            Script::Myanmar => "Myanmar",
            Script::Georgian => "Georgian",
            Script::Hangul => "Hangul",
            Script::Ethiopic => "Ethiopic",
            Script::Cherokee => "Cherokee",
            Script::CanadianAboriginal => "Canadian_Aboriginal",
            Script::Ogham => "Ogham",
            Script::Runic => "Runic",
            Script::Khmer => "Khmer",
            Script::Mongolian => "Mongolian",
            Script::Han => "Han",
            Script::Hiragana => "Hiragana",
            Script::Katakana => "Katakana",
            Script::Bopomofo => "Bopomofo",
            Script::Yi => "Yi",
            Script::Vai => "Vai",
            Script::Lisu => "Lisu",
            Script::Bamum => "Bamum",
            Script::Adlam => "Adlam",
            Script::Osage => "Osage",
            Script::Gothic => "Gothic",
            Script::Deseret => "Deseret",
            Script::WarangCiti => "Warang_Citi",
            Script::Unknown => "Unknown",
        }
    }

    /// Scripts that the Chromium display policy treats as "CJK" and allows
    /// to mix with each other (and with Latin) without falling back to
    /// Punycode.
    pub fn is_cjk(self) -> bool {
        matches!(
            self,
            Script::Han | Script::Hiragana | Script::Katakana | Script::Hangul | Script::Bopomofo
        )
    }

    /// Scripts whose letters are routinely confusable with Latin and that
    /// browsers single out in their mixed-script rules.
    pub fn is_latin_lookalike_risk(self) -> bool {
        matches!(self, Script::Cyrillic | Script::Greek | Script::Armenian)
    }
}

/// Returns the script of `cp`.
pub fn script_of(cp: CodePoint) -> Script {
    // ASCII needs sub-block resolution: letters are Latin, the rest Common.
    if cp.0 < 0x80 {
        return if (0x41..=0x5A).contains(&cp.0) || (0x61..=0x7A).contains(&cp.0) {
            Script::Latin
        } else {
            Script::Common
        };
    }
    let Some(block) = block_of(cp) else { return Script::Unknown };
    match block.name {
        "Latin-1 Supplement" => {
            // Letters are Latin; the U+0080..=U+00BF controls/signs and the
            // multiplication/division signs are Common.
            if cp.0 >= 0xC0 && cp.0 != 0xD7 && cp.0 != 0xF7 {
                Script::Latin
            } else {
                Script::Common
            }
        }
        "Latin Extended-A" | "Latin Extended-B" | "IPA Extensions"
        | "Latin Extended Additional" | "Latin Extended-C" | "Latin Extended-D"
        | "Phonetic Extensions" | "Phonetic Extensions Supplement" => Script::Latin,
        "Spacing Modifier Letters" | "General Punctuation" | "Superscripts and Subscripts"
        | "Currency Symbols" | "Letterlike Symbols" | "Number Forms" | "Arrows"
        | "Mathematical Operators" | "Miscellaneous Technical" | "Control Pictures"
        | "Optical Character Recognition" | "Enclosed Alphanumerics" | "Box Drawing"
        | "Block Elements" | "Geometric Shapes" | "Miscellaneous Symbols" | "Dingbats"
        | "Miscellaneous Mathematical Symbols-A" | "Braille Patterns"
        | "Supplemental Punctuation" | "CJK Symbols and Punctuation"
        | "Enclosed CJK Letters and Months" | "Halfwidth and Fullwidth Forms"
        | "Mathematical Alphanumeric Symbols" | "Miscellaneous Symbols and Pictographs"
        | "Emoticons" | "Modifier Tone Letters" => Script::Common,
        "Combining Diacritical Marks" | "Combining Diacritical Marks Extended"
        | "Combining Diacritical Marks Supplement"
        | "Combining Diacritical Marks for Symbols" | "Combining Half Marks"
        | "Vedic Extensions" => Script::Inherited,
        "Greek and Coptic" | "Greek Extended" => Script::Greek,
        "Cyrillic" | "Cyrillic Supplement" | "Cyrillic Extended-A" | "Cyrillic Extended-B"
        | "Cyrillic Extended-C" => Script::Cyrillic,
        "Armenian" => Script::Armenian,
        "Hebrew" | "Alphabetic Presentation Forms" => Script::Hebrew,
        "Arabic" | "Arabic Supplement" | "Arabic Extended-A" | "Arabic Presentation Forms-A"
        | "Arabic Presentation Forms-B" => Script::Arabic,
        "Syriac" => Script::Syriac,
        "Thaana" => Script::Thaana,
        "NKo" => Script::Nko,
        "Devanagari" => Script::Devanagari,
        "Bengali" => Script::Bengali,
        "Gurmukhi" => Script::Gurmukhi,
        "Gujarati" => Script::Gujarati,
        "Oriya" => Script::Oriya,
        "Tamil" => Script::Tamil,
        "Telugu" => Script::Telugu,
        "Kannada" => Script::Kannada,
        "Malayalam" => Script::Malayalam,
        "Sinhala" => Script::Sinhala,
        "Thai" => Script::Thai,
        "Lao" => Script::Lao,
        "Tibetan" => Script::Tibetan,
        "Myanmar" => Script::Myanmar,
        "Georgian" | "Georgian Extended" | "Georgian Supplement" => Script::Georgian,
        "Hangul Jamo" | "Hangul Compatibility Jamo" | "Hangul Jamo Extended-A"
        | "Hangul Jamo Extended-B" | "Hangul Syllables" => Script::Hangul,
        "Ethiopic" | "Ethiopic Supplement" | "Ethiopic Extended" | "Ethiopic Extended-A" => {
            Script::Ethiopic
        }
        "Cherokee" | "Cherokee Supplement" => Script::Cherokee,
        "Unified Canadian Aboriginal Syllabics"
        | "Unified Canadian Aboriginal Syllabics Extended" => Script::CanadianAboriginal,
        "Ogham" => Script::Ogham,
        "Runic" => Script::Runic,
        "Khmer" | "Khmer Symbols" => Script::Khmer,
        "Mongolian" => Script::Mongolian,
        "CJK Radicals Supplement" | "Kangxi Radicals" | "CJK Unified Ideographs Extension A"
        | "CJK Unified Ideographs" | "CJK Compatibility Ideographs"
        | "CJK Unified Ideographs Extension B" | "CJK Unified Ideographs Extension C"
        | "CJK Unified Ideographs Extension D" | "CJK Unified Ideographs Extension E"
        | "CJK Unified Ideographs Extension F" => Script::Han,
        "Hiragana" => Script::Hiragana,
        "Katakana" | "Katakana Phonetic Extensions" | "Kana Supplement" => Script::Katakana,
        "Bopomofo" | "Bopomofo Extended" => Script::Bopomofo,
        "Yi Syllables" | "Yi Radicals" => Script::Yi,
        "Vai" => Script::Vai,
        "Lisu" => Script::Lisu,
        "Bamum" | "Bamum Supplement" => Script::Bamum,
        "Adlam" => Script::Adlam,
        "Osage" => Script::Osage,
        "Gothic" => Script::Gothic,
        "Deseret" => Script::Deseret,
        "Warang Citi" => Script::WarangCiti,
        _ => Script::Unknown,
    }
}

/// Returns the set of scripts used by a string, ignoring `Common` and
/// `Inherited` (the resolution rule display policies use).
pub fn scripts_in(text: &str) -> Vec<Script> {
    let mut out: Vec<Script> = Vec::new();
    for c in text.chars() {
        let s = script_of(CodePoint::from(c));
        if s == Script::Common || s == Script::Inherited {
            continue;
        }
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(c: char) -> Script {
        script_of(CodePoint::from(c))
    }

    #[test]
    fn ascii_letters_are_latin_digits_common() {
        assert_eq!(sc('a'), Script::Latin);
        assert_eq!(sc('Z'), Script::Latin);
        assert_eq!(sc('0'), Script::Common);
        assert_eq!(sc('-'), Script::Common);
        assert_eq!(sc('.'), Script::Common);
    }

    #[test]
    fn paper_examples_resolve() {
        assert_eq!(sc('а'), Script::Cyrillic); // U+0430
        assert_eq!(sc('օ'), Script::Armenian); // U+0585
        assert_eq!(sc('工'), Script::Han); // U+5DE5
        assert_eq!(sc('エ'), Script::Katakana); // U+30A8
        assert_eq!(sc('\u{0ED0}'), Script::Lao); // Lao digit zero
        assert_eq!(sc('\u{118D8}'), Script::WarangCiti); // Figure 11
    }

    #[test]
    fn accents_are_latin_marks_inherited() {
        assert_eq!(sc('é'), Script::Latin);
        assert_eq!(sc('\u{0301}'), Script::Inherited); // combining acute
        assert_eq!(sc('×'), Script::Common);
        assert_eq!(sc('÷'), Script::Common);
    }

    #[test]
    fn scripts_in_collects_unique_sorted() {
        let s = scripts_in("gооgle"); // Latin g,g,l,e + Cyrillic о,о
        assert_eq!(s, vec![Script::Latin, Script::Cyrillic]);
        assert_eq!(scripts_in("google-123"), vec![Script::Latin]);
        assert_eq!(scripts_in("123-."), Vec::<Script>::new());
    }

    #[test]
    fn cjk_classification() {
        assert!(Script::Han.is_cjk());
        assert!(Script::Katakana.is_cjk());
        assert!(Script::Hangul.is_cjk());
        assert!(!Script::Latin.is_cjk());
        assert!(Script::Cyrillic.is_latin_lookalike_risk());
        assert!(!Script::Han.is_latin_lookalike_risk());
    }
}
