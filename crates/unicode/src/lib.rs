//! Unicode character database substrate for the ShamFinder reproduction.
//!
//! The paper consumes four pieces of the Unicode 12.0.0 character database:
//!
//! * the **block** table (Table 4 groups homoglyphs by block),
//! * the **script** property (browser display policies are script based),
//! * coarse **general categories** (IDNA2008 derives permitted code points
//!   from categories),
//! * the **IDNA2008 derived property** (`PVALID` et al., RFC 5892), which
//!   defines the 123,006-character repertoire SimChar is built from.
//!
//! The real UCD data files are not available offline, so this crate embeds
//! the published block/script *ranges* (these are stable, well-known values)
//! and derives categories at range granularity. The result is a repertoire
//! with the same structure as Unicode 12 — the absolute counts are close to,
//! but not digit-exact with, the paper's (see `DESIGN.md` §3).
//!
//! # Example
//!
//! ```
//! use sham_unicode::{block_of, script_of, Script, idna};
//!
//! let cyr_a = sham_unicode::CodePoint::from('а'); // U+0430 CYRILLIC SMALL A
//! assert_eq!(block_of(cyr_a).unwrap().name, "Cyrillic");
//! assert_eq!(script_of(cyr_a), Script::Cyrillic);
//! assert!(idna::is_pvalid(cyr_a));
//! ```

pub mod blocks;
pub mod category;
pub mod idna;
pub mod repertoire;
pub mod scripts;

pub use blocks::{block_by_name, block_of, Block, Plane};
pub use category::{category, GeneralCategory};
pub use idna::{derived_property, is_pvalid, DerivedProperty};
pub use repertoire::{assigned_code_points, is_assigned};
pub use scripts::{script_of, scripts_in, Script};

use serde::{Deserialize, Serialize};

/// A Unicode code point (scalar value or unassigned slot).
///
/// Unlike [`char`], a `CodePoint` may designate unassigned values; it still
/// excludes the surrogate range. Display form is the conventional `U+XXXX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CodePoint(pub u32);

impl CodePoint {
    /// Largest valid Unicode code point.
    pub const MAX: u32 = 0x10FFFF;

    /// Creates a code point, returning `None` for surrogates or values
    /// beyond `U+10FFFF`.
    pub fn new(value: u32) -> Option<Self> {
        if value > Self::MAX || (0xD800..=0xDFFF).contains(&value) {
            None
        } else {
            Some(CodePoint(value))
        }
    }

    /// Raw scalar value.
    pub fn value(self) -> u32 {
        self.0
    }

    /// Converts to a Rust `char` when the value is a valid scalar.
    pub fn to_char(self) -> Option<char> {
        char::from_u32(self.0)
    }

    /// True for the printable ASCII range `U+0020..=U+007E`.
    pub fn is_ascii_printable(self) -> bool {
        (0x20..=0x7E).contains(&self.0)
    }

    /// True for ASCII lowercase letters `a..=z`.
    pub fn is_ascii_lowercase(self) -> bool {
        (0x61..=0x7A).contains(&self.0)
    }
}

impl From<char> for CodePoint {
    fn from(c: char) -> Self {
        CodePoint(c as u32)
    }
}

impl std::fmt::Display for CodePoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "U+{:04X}", self.0)
    }
}

/// True when `c` belongs to the LDH set (letters, digits, hyphen) that is
/// valid in traditional ASCII domain labels.
pub fn is_ldh(c: char) -> bool {
    c.is_ascii_lowercase() || c.is_ascii_uppercase() || c.is_ascii_digit() || c == '-'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_point_rejects_surrogates() {
        assert!(CodePoint::new(0xD800).is_none());
        assert!(CodePoint::new(0xDFFF).is_none());
        assert!(CodePoint::new(0xD7FF).is_some());
        assert!(CodePoint::new(0xE000).is_some());
    }

    #[test]
    fn code_point_rejects_out_of_range() {
        assert!(CodePoint::new(0x110000).is_none());
        assert!(CodePoint::new(0x10FFFF).is_some());
    }

    #[test]
    fn display_is_u_plus_hex() {
        assert_eq!(CodePoint(0x61).to_string(), "U+0061");
        assert_eq!(CodePoint(0x1F600).to_string(), "U+1F600");
    }

    #[test]
    fn from_char_round_trips() {
        for c in ['a', 'é', '工', 'エ', '\u{10330}'] {
            let cp = CodePoint::from(c);
            assert_eq!(cp.to_char(), Some(c));
        }
    }

    #[test]
    fn ldh_membership() {
        assert!(is_ldh('a'));
        assert!(is_ldh('Z'));
        assert!(is_ldh('0'));
        assert!(is_ldh('-'));
        assert!(!is_ldh('.'));
        assert!(!is_ldh('é'));
        assert!(!is_ldh('_'));
    }
}
