//! Coarse general-category model (range granular).
//!
//! IDNA2008 (RFC 5892) derives the `PVALID` property from general
//! categories: lowercase/other letters, marks and decimal digits are
//! permitted; uppercase letters (unstable under case folding), symbols and
//! punctuation are disallowed. This module reproduces that category
//! skeleton at block/range granularity. ASCII, Latin-1, Greek, Cyrillic,
//! Armenian and Georgian case ranges and per-script digit ranges are exact;
//! the bicameral Latin extension blocks use the standard's even/odd
//! upper/lower alternation, which is correct for the large majority of
//! those code points (documented approximation, see DESIGN.md §3).

use crate::{block_of, CodePoint};
use serde::{Deserialize, Serialize};

/// Simplified Unicode general category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GeneralCategory {
    /// `Lu` — uppercase letters.
    UppercaseLetter,
    /// `Ll` — lowercase letters.
    LowercaseLetter,
    /// `Lm` — modifier letters.
    ModifierLetter,
    /// `Lo` — letters without case (CJK, Kana, Hangul, most scripts).
    OtherLetter,
    /// `M*` — combining marks.
    Mark,
    /// `Nd` — decimal digits.
    DecimalNumber,
    /// `No`/`Nl` — other numeric forms.
    OtherNumber,
    /// `P*` — punctuation.
    Punctuation,
    /// `S*` — symbols.
    Symbol,
    /// `Z*` — separators.
    Separator,
    /// `Cc` — control codes.
    Control,
    /// `Cf` — format controls (ZWJ/ZWNJ live here).
    Format,
    /// Not assigned in this substrate's repertoire.
    Unassigned,
}

impl GeneralCategory {
    /// True for any letter category.
    pub fn is_letter(self) -> bool {
        matches!(
            self,
            GeneralCategory::UppercaseLetter
                | GeneralCategory::LowercaseLetter
                | GeneralCategory::ModifierLetter
                | GeneralCategory::OtherLetter
        )
    }

    /// True for combining marks.
    pub fn is_mark(self) -> bool {
        self == GeneralCategory::Mark
    }

    /// True for any number category.
    pub fn is_number(self) -> bool {
        matches!(self, GeneralCategory::DecimalNumber | GeneralCategory::OtherNumber)
    }
}

/// Decimal-digit ranges for the scripts this substrate models (exact
/// published values; each is a run of ten code points `0..9`).
const DIGIT_RANGES: &[(u32, &str)] = &[
    (0x0030, "ASCII"),
    (0x0660, "Arabic-Indic"),
    (0x06F0, "Extended Arabic-Indic"),
    (0x07C0, "NKo"),
    (0x0966, "Devanagari"),
    (0x09E6, "Bengali"),
    (0x0A66, "Gurmukhi"),
    (0x0AE6, "Gujarati"),
    (0x0B66, "Oriya"),
    (0x0BE6, "Tamil"),
    (0x0C66, "Telugu"),
    (0x0CE6, "Kannada"),
    (0x0D66, "Malayalam"),
    (0x0E50, "Thai"),
    (0x0ED0, "Lao"),
    (0x0F20, "Tibetan"),
    (0x1040, "Myanmar"),
    (0x17E0, "Khmer"),
    (0x1810, "Mongolian"),
    (0xA620, "Vai"),
    (0xFF10, "Fullwidth"),
    (0x104A0, "Osage"),
    (0x118E0, "Warang Citi"),
    (0x1E950, "Adlam"),
];

/// True when `cp` is one of the decimal digits modelled above.
fn is_decimal_digit(cp: u32) -> bool {
    DIGIT_RANGES.iter().any(|&(start, _)| (start..start + 10).contains(&cp))
}

/// Combining-mark ranges inside otherwise-letter blocks (exact published
/// values for the ranges the paper's Figure 7 exemplifies, plus the most
/// common Indic/SE-Asian dependent-vowel ranges).
const MARK_RANGES: &[(u32, u32)] = &[
    (0x0591, 0x05BD), // Hebrew points
    (0x0610, 0x061A), // Arabic signs
    (0x064B, 0x065F), // Arabic harakat
    (0x06D6, 0x06DC), // Arabic small high signs
    (0x0816, 0x0819), // Samaritan marks
    (0x08D3, 0x08FF), // Arabic Extended-A marks
    (0x0900, 0x0903), // Devanagari signs
    (0x093A, 0x094F), // Devanagari vowel signs
    (0x0981, 0x0983), // Bengali signs
    (0x09BC, 0x09CD), // Bengali vowel signs
    (0x0A01, 0x0A03), // Gurmukhi signs
    (0x0A3C, 0x0A4D),
    (0x0A81, 0x0A83),
    (0x0ABC, 0x0ACD),
    (0x0B01, 0x0B03), // Oriya signs
    (0x0B3C, 0x0B57),
    (0x0B82, 0x0B82),
    (0x0BBE, 0x0BCD),
    (0x0C00, 0x0C04),
    (0x0C3E, 0x0C56),
    (0x0C81, 0x0C83),
    (0x0CBC, 0x0CD6),
    (0x0D00, 0x0D03),
    (0x0D3B, 0x0D4D),
    (0x0D81, 0x0D83),
    (0x0DCA, 0x0DDF),
    (0x0E31, 0x0E31), // Thai mai han-akat
    (0x0E34, 0x0E3A), // Thai vowel signs
    (0x0E47, 0x0E4E), // Thai tone marks
    (0x0EB1, 0x0EB1),
    (0x0EB4, 0x0EBC),
    (0x0EC8, 0x0ECD),
    (0x0F35, 0x0F39), // Tibetan marks
    (0x0F71, 0x0F84),
    (0x102B, 0x103E), // Myanmar vowel signs
    (0x1056, 0x1059),
    (0x17B4, 0x17D3), // Khmer vowel/signs
    (0x1A17, 0x1A1B), // Buginese vowel signs
    (0x1B00, 0x1B04), // Balinese signs
    (0x1B34, 0x1B44),
    (0x1BE6, 0x1BF3), // Batak signs (Fig. 7: U+1BE7)
    (0x1C24, 0x1C37), // Lepcha signs
    (0x2DE0, 0x2DFF), // Cyrillic Extended-A (combining; Fig. 7: U+2DF5)
    (0xA802, 0xA802), // Syloti Nagri sign
    (0xA823, 0xA827),
    (0xA880, 0xA881), // Saurashtra signs
    (0xA8B4, 0xA8C5),
    (0xA926, 0xA92D), // Kayah Li vowels
    (0xA947, 0xA953), // Rejang vowel signs (Fig. 7: U+A953)
    (0xA980, 0xA983), // Javanese signs
    (0xA9B3, 0xA9C0),
    (0xAA29, 0xAA36), // Cham vowel signs
    (0xAA43, 0xAA4D),
    (0xABE3, 0xABEA), // Meetei Mayek vowel signs
    (0xABEC, 0xABED), // Meetei Mayek signs (Fig. 7: U+ABEC)
];

/// True when `cp` falls in one of the modelled combining-mark ranges.
fn is_mark_override(cp: u32) -> bool {
    MARK_RANGES.iter().any(|&(lo, hi)| (lo..=hi).contains(&cp))
}

/// Exact category for the ASCII range.
fn ascii_category(cp: u32) -> GeneralCategory {
    match cp {
        0x00..=0x1F | 0x7F => GeneralCategory::Control,
        0x20 => GeneralCategory::Separator,
        0x30..=0x39 => GeneralCategory::DecimalNumber,
        0x41..=0x5A => GeneralCategory::UppercaseLetter,
        0x61..=0x7A => GeneralCategory::LowercaseLetter,
        0x24 | 0x2B | 0x3C..=0x3E | 0x5E | 0x60 | 0x7C | 0x7E => GeneralCategory::Symbol,
        _ => GeneralCategory::Punctuation,
    }
}

/// Exact category for the Latin-1 Supplement block.
fn latin1_category(cp: u32) -> GeneralCategory {
    match cp {
        0x80..=0x9F => GeneralCategory::Control,
        0xA0 => GeneralCategory::Separator,
        0xAA | 0xBA => GeneralCategory::OtherLetter, // ª º
        0xB5 => GeneralCategory::LowercaseLetter,    // µ
        0xB2 | 0xB3 | 0xB9 | 0xBC..=0xBE => GeneralCategory::OtherNumber,
        0xD7 | 0xF7 | 0xA2..=0xA9 | 0xAC | 0xAE..=0xB1 | 0xB4 | 0xB8 => GeneralCategory::Symbol,
        0xC0..=0xD6 | 0xD8..=0xDE => GeneralCategory::UppercaseLetter,
        0xDF..=0xF6 | 0xF8..=0xFF => GeneralCategory::LowercaseLetter,
        _ => GeneralCategory::Punctuation,
    }
}

/// Case assignment for the bicameral European scripts.
fn cased_letter(cp: u32) -> Option<GeneralCategory> {
    use GeneralCategory::{LowercaseLetter as Lower, UppercaseLetter as Upper};
    let cat = match cp {
        // Latin Extended-A/B and Latin Extended Additional alternate
        // uppercase (even) / lowercase (odd) for the overwhelming majority
        // of their code points.
        // Latin Extended-A alternates case, but the pattern shifts by one
        // at U+0139 (Ĺ) and resumes at U+014A (Ŋ) — exact block structure.
        0x0139..=0x0148 => {
            if cp % 2 == 1 { Upper } else { Lower }
        }
        0x0138 | 0x0149 => Lower, // ĸ, ŉ
        0x0100..=0x0137 | 0x014A..=0x0177 | 0x01DE..=0x01EF | 0x01F4..=0x01F5
        | 0x01FA..=0x024F | 0x1E00..=0x1EFF => {
            if cp.is_multiple_of(2) {
                Upper
            } else {
                Lower
            }
        }
        0x0178..=0x017D => {
            // ŸŹźŻżŽ: odd=upper in this stretch (Ÿ=0178, Ź=0179, ź=017A...).
            if cp == 0x0178 || cp % 2 == 1 { Upper } else { Lower }
        }
        0x017E..=0x017F => Lower, // ž ſ
        // Latin letters without case: the click letters (Lo in the UCD).
        0x01BB | 0x01C0..=0x01C3 => return None,
        0x0180..=0x01DD => {
            // Mixed region of Latin Extended-B; approximate with parity.
            if cp.is_multiple_of(2) { Upper } else { Lower }
        }
        // Greek.
        0x0386 | 0x0388..=0x038F | 0x0391..=0x03A1 | 0x03A3..=0x03AB => Upper,
        0x03AC..=0x03CE | 0x03D0..=0x03D7 => Lower,
        // The 0x03F0.. region breaks the parity pattern (exact values).
        0x03F0..=0x03F3 | 0x03F5 | 0x03F8 | 0x03FB | 0x03FC => Lower,
        0x03F4 | 0x03F6 | 0x03F7 | 0x03F9 | 0x03FA | 0x03FD..=0x03FF => Upper,
        0x03D8..=0x03EF => {
            if cp.is_multiple_of(2) { Upper } else { Lower }
        }
        // Cyrillic.
        0x0400..=0x042F => Upper,
        0x0430..=0x045F => Lower,
        0x0460..=0x052F => {
            if cp.is_multiple_of(2) { Upper } else { Lower }
        }
        // Armenian.
        0x0531..=0x0556 => Upper,
        0x0561..=0x0587 => Lower,
        // Georgian Asomtavruli (historic uppercase) and Mkhedruli.
        0x10A0..=0x10C5 => Upper,
        0x10D0..=0x10FA => Lower,
        // Greek Extended: lower halves of each 16-run are lowercase.
        0x1F00..=0x1FFF => {
            if (cp & 0x8) == 0 { Lower } else { Upper }
        }
        // Fullwidth forms.
        0xFF21..=0xFF3A => Upper,
        0xFF41..=0xFF5A => Lower,
        // Deseret and Osage are bicameral in halves.
        0x10400..=0x10427 => Upper,
        0x10428..=0x1044F => Lower,
        0x104B0..=0x104D3 => Upper,
        0x104D8..=0x104FB => Lower,
        // Adlam.
        0x1E900..=0x1E921 => Upper,
        0x1E922..=0x1E943 => Lower,
        _ => return None,
    };
    Some(cat)
}

/// Returns the (simplified) general category of `cp`.
pub fn category(cp: CodePoint) -> GeneralCategory {
    let v = cp.0;
    if v < 0x80 {
        return ascii_category(v);
    }
    if v < 0x100 {
        return latin1_category(v);
    }
    if is_decimal_digit(v) {
        return GeneralCategory::DecimalNumber;
    }
    if is_mark_override(v) {
        return GeneralCategory::Mark;
    }
    // ZWNJ / ZWJ are format controls with their own IDNA context rules.
    if v == 0x200C || v == 0x200D {
        return GeneralCategory::Format;
    }
    if let Some(cased) = cased_letter(v) {
        return cased;
    }
    let Some(block) = block_of(cp) else {
        return GeneralCategory::Unassigned;
    };
    match block.name {
        "Combining Diacritical Marks"
        | "Combining Diacritical Marks Extended"
        | "Combining Diacritical Marks Supplement"
        | "Combining Diacritical Marks for Symbols"
        | "Combining Half Marks"
        | "Vedic Extensions" => GeneralCategory::Mark,
        "Spacing Modifier Letters" | "Modifier Tone Letters" => GeneralCategory::ModifierLetter,
        "General Punctuation" | "Supplemental Punctuation" | "CJK Symbols and Punctuation" => {
            GeneralCategory::Punctuation
        }
        "Superscripts and Subscripts" | "Number Forms" | "Enclosed Alphanumerics"
        | "Enclosed CJK Letters and Months" => GeneralCategory::OtherNumber,
        "Currency Symbols" | "Letterlike Symbols" | "Arrows" | "Mathematical Operators"
        | "Miscellaneous Technical" | "Control Pictures" | "Optical Character Recognition"
        | "Box Drawing" | "Block Elements" | "Geometric Shapes" | "Miscellaneous Symbols"
        | "Dingbats" | "Miscellaneous Mathematical Symbols-A" | "Braille Patterns"
        | "Miscellaneous Symbols and Pictographs" | "Emoticons" => GeneralCategory::Symbol,
        "Kangxi Radicals" | "CJK Radicals Supplement" => GeneralCategory::Symbol,
        // Every remaining modelled block is a letter repertoire. Bicameral
        // cases were peeled off above, so what is left is `Lo`.
        _ => GeneralCategory::OtherLetter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat(c: char) -> GeneralCategory {
        category(CodePoint::from(c))
    }

    #[test]
    fn ascii_categories_are_exact() {
        assert_eq!(cat('a'), GeneralCategory::LowercaseLetter);
        assert_eq!(cat('A'), GeneralCategory::UppercaseLetter);
        assert_eq!(cat('5'), GeneralCategory::DecimalNumber);
        assert_eq!(cat('-'), GeneralCategory::Punctuation);
        assert_eq!(cat('$'), GeneralCategory::Symbol);
        assert_eq!(cat(' '), GeneralCategory::Separator);
        assert_eq!(cat('\u{7}'), GeneralCategory::Control);
    }

    #[test]
    fn latin1_case_split() {
        assert_eq!(cat('é'), GeneralCategory::LowercaseLetter);
        assert_eq!(cat('É'), GeneralCategory::UppercaseLetter);
        assert_eq!(cat('ß'), GeneralCategory::LowercaseLetter);
        assert_eq!(cat('×'), GeneralCategory::Symbol);
        assert_eq!(cat('÷'), GeneralCategory::Symbol);
        assert_eq!(cat('½'), GeneralCategory::OtherNumber);
    }

    #[test]
    fn cyrillic_and_greek_case_split() {
        assert_eq!(cat('а'), GeneralCategory::LowercaseLetter); // U+0430
        assert_eq!(cat('А'), GeneralCategory::UppercaseLetter); // U+0410
        assert_eq!(cat('ο'), GeneralCategory::LowercaseLetter); // U+03BF
        assert_eq!(cat('Ω'), GeneralCategory::UppercaseLetter); // U+03A9
        assert_eq!(cat('օ'), GeneralCategory::LowercaseLetter); // Armenian U+0585
        assert_eq!(cat('Օ'), GeneralCategory::UppercaseLetter); // Armenian U+0555
    }

    #[test]
    fn uncased_scripts_are_other_letters() {
        assert_eq!(cat('工'), GeneralCategory::OtherLetter);
        assert_eq!(cat('エ'), GeneralCategory::OtherLetter);
        assert_eq!(cat('\u{AC00}'), GeneralCategory::OtherLetter); // 가
        assert_eq!(cat('\u{0B32}'), GeneralCategory::OtherLetter); // Oriya la
        assert_eq!(cat('\u{A500}'), GeneralCategory::OtherLetter); // Vai
    }

    #[test]
    fn digits_across_scripts() {
        assert_eq!(cat('\u{0ED0}'), GeneralCategory::DecimalNumber); // Lao zero
        assert_eq!(cat('\u{0966}'), GeneralCategory::DecimalNumber); // Devanagari zero
        assert_eq!(cat('\u{06F5}'), GeneralCategory::DecimalNumber);
        assert_eq!(cat('\u{FF10}'), GeneralCategory::DecimalNumber);
    }

    #[test]
    fn marks_and_format_controls() {
        assert_eq!(cat('\u{0301}'), GeneralCategory::Mark);
        assert_eq!(cat('\u{200C}'), GeneralCategory::Format); // ZWNJ
        assert_eq!(cat('\u{200D}'), GeneralCategory::Format); // ZWJ
        assert_eq!(cat('\u{2014}'), GeneralCategory::Punctuation); // em dash
    }

    #[test]
    fn unassigned_gap() {
        assert_eq!(category(CodePoint(0xE123)), GeneralCategory::Unassigned);
    }

    #[test]
    fn figure7_sparse_characters_are_marks() {
        // The paper's Figure 7 examples of eliminated sparse characters.
        for v in [0x1BE7u32, 0x2DF5, 0xA953, 0xABEC] {
            assert_eq!(category(CodePoint(v)), GeneralCategory::Mark, "U+{v:04X}");
        }
        // Thai and Khmer dependent vowels likewise.
        assert_eq!(category(CodePoint(0x0E34)), GeneralCategory::Mark);
        assert_eq!(category(CodePoint(0x17B6)), GeneralCategory::Mark);
    }

    #[test]
    fn helpers() {
        assert!(cat('a').is_letter());
        assert!(cat('\u{0301}').is_mark());
        assert!(cat('7').is_number());
        assert!(!cat('$').is_letter());
    }
}
