//! IDNA2008 derived property (simplified RFC 5892 derivation).
//!
//! The paper builds SimChar from the 123,006 code points the IDNA2008
//! draft (`draft-faltstrom-unicode12-00`) marks `PVALID`. RFC 5892 derives
//! that property from general categories plus exception and context lists.
//! We reproduce the derivation over this substrate's category model:
//!
//! 1. exceptions (a small explicit list, including U+00DF ß, U+0640 ـ, …),
//! 2. `Lo`/`Ll`/`Lm`/`M*`/`Nd` → `PVALID`,
//! 3. uppercase letters → `DISALLOWED` (unstable under case folding),
//! 4. ZWNJ/ZWJ → `CONTEXTJ`; a handful of `CONTEXTO` points,
//! 5. everything else assigned → `DISALLOWED`; gaps → `UNASSIGNED`.
//!
//! The hyphen `U+002D` and ASCII digits/letters are `PVALID` per the LDH
//! rule.

use crate::{category, CodePoint, GeneralCategory};
use serde::{Deserialize, Serialize};

/// RFC 5892 derived property values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DerivedProperty {
    /// Permitted for general use in IDNs.
    Pvalid,
    /// Permitted only in specific join contexts (ZWNJ/ZWJ).
    ContextJ,
    /// Permitted only in specific other contexts (e.g. middle dot).
    ContextO,
    /// Never permitted.
    Disallowed,
    /// Not assigned in the repertoire.
    Unassigned,
}

/// Explicit exception list (RFC 5892 §2.6, abbreviated to the entries that
/// matter for homograph analysis).
const EXCEPTIONS: &[(u32, DerivedProperty)] = &[
    (0x00DF, DerivedProperty::Pvalid),     // LATIN SMALL LETTER SHARP S
    (0x03C2, DerivedProperty::Pvalid),     // GREEK SMALL LETTER FINAL SIGMA
    (0x06FD, DerivedProperty::Pvalid),     // ARABIC SIGN SINDHI AMPERSAND
    (0x06FE, DerivedProperty::Pvalid),     // ARABIC SIGN SINDHI POSTPOSITION MEN
    (0x0F0B, DerivedProperty::Pvalid),     // TIBETAN MARK INTERSYLLABIC TSHEG
    (0x3007, DerivedProperty::Pvalid),     // IDEOGRAPHIC NUMBER ZERO
    (0x00B7, DerivedProperty::ContextO),   // MIDDLE DOT (Catalan l·l)
    (0x0375, DerivedProperty::ContextO),   // GREEK LOWER NUMERAL SIGN
    (0x05F3, DerivedProperty::ContextO),   // HEBREW PUNCTUATION GERESH
    (0x05F4, DerivedProperty::ContextO),   // HEBREW PUNCTUATION GERSHAYIM
    (0x30FB, DerivedProperty::ContextO),   // KATAKANA MIDDLE DOT
    (0x0640, DerivedProperty::Disallowed), // ARABIC TATWEEL
    (0x07FA, DerivedProperty::Disallowed), // NKO LAJANYALAN
    (0x302E, DerivedProperty::Disallowed), // HANGUL SINGLE DOT TONE MARK
    (0x302F, DerivedProperty::Disallowed), // HANGUL DOUBLE DOT TONE MARK
    (0x3031, DerivedProperty::Disallowed), // VERTICAL KANA REPEAT MARK
    (0x303B, DerivedProperty::Disallowed), // VERTICAL IDEOGRAPHIC ITERATION MARK
];

/// Blocks whose letters are unstable under NFKC (compatibility
/// decompositions) and therefore DISALLOWED by RFC 5892 rule G, whatever
/// their general category: styled maths letters, fullwidth forms,
/// presentation forms, enclosed forms and compatibility ideographs/jamo.
const NFKC_UNSTABLE_BLOCKS: &[&str] = &[
    "Halfwidth and Fullwidth Forms",
    "Mathematical Alphanumeric Symbols",
    "Alphabetic Presentation Forms",
    "Arabic Presentation Forms-A",
    "Arabic Presentation Forms-B",
    "Enclosed Alphanumerics",
    "Enclosed CJK Letters and Months",
    "CJK Compatibility Ideographs",
    "Hangul Compatibility Jamo",
    "Number Forms",
    "Letterlike Symbols",
    "Superscripts and Subscripts",
    "Kangxi Radicals",
    "CJK Radicals Supplement",
];

/// Computes the IDNA2008 derived property of `cp`.
pub fn derived_property(cp: CodePoint) -> DerivedProperty {
    if let Some(&(_, prop)) = EXCEPTIONS.iter().find(|&&(v, _)| v == cp.0) {
        return prop;
    }
    if let Some(block) = crate::block_of(cp) {
        if NFKC_UNSTABLE_BLOCKS.contains(&block.name) {
            return DerivedProperty::Disallowed;
        }
    }
    // LDH: lowercase ASCII letters, digits and hyphen are PVALID; the
    // protocol never sees uppercase ASCII (case-mapped before lookup).
    match cp.0 {
        0x2D | 0x30..=0x39 | 0x61..=0x7A => return DerivedProperty::Pvalid,
        0x00..=0x2C | 0x2E | 0x2F | 0x3A..=0x60 | 0x7B..=0x7F => {
            return DerivedProperty::Disallowed
        }
        0x200C | 0x200D => return DerivedProperty::ContextJ,
        _ => {}
    }
    match category(cp) {
        GeneralCategory::LowercaseLetter
        | GeneralCategory::OtherLetter
        | GeneralCategory::ModifierLetter
        | GeneralCategory::Mark
        | GeneralCategory::DecimalNumber => DerivedProperty::Pvalid,
        GeneralCategory::Unassigned => DerivedProperty::Unassigned,
        _ => DerivedProperty::Disallowed,
    }
}

/// True when `cp` may appear in an IDN label (`PVALID`).
///
/// Context-dependent code points (`CONTEXTJ`/`CONTEXTO`) are excluded: the
/// paper's repertoire counts only `PROTOCOL VALID` points.
pub fn is_pvalid(cp: CodePoint) -> bool {
    derived_property(cp) == DerivedProperty::Pvalid
}

/// True when every character of `label` is PVALID (or an LDH character),
/// i.e. the label could be registered under an inclusion-based policy that
/// permits all PVALID points.
pub fn label_is_registrable(label: &str) -> bool {
    !label.is_empty()
        && label.chars().all(|c| is_pvalid(CodePoint::from(c)))
        && !label.starts_with('-')
        && !label.ends_with('-')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prop(c: char) -> DerivedProperty {
        derived_property(CodePoint::from(c))
    }

    #[test]
    fn ldh_rule() {
        assert_eq!(prop('a'), DerivedProperty::Pvalid);
        assert_eq!(prop('z'), DerivedProperty::Pvalid);
        assert_eq!(prop('0'), DerivedProperty::Pvalid);
        assert_eq!(prop('-'), DerivedProperty::Pvalid);
        assert_eq!(prop('A'), DerivedProperty::Disallowed);
        assert_eq!(prop('.'), DerivedProperty::Disallowed);
        assert_eq!(prop('_'), DerivedProperty::Disallowed);
    }

    #[test]
    fn homoglyph_sources_are_pvalid() {
        // The characters the paper's attacks are built from must be PVALID.
        for c in ['а', 'о', 'с', 'е', 'р', 'օ', 'ο', 'é', 'è', '工', 'エ', '\u{0ED0}'] {
            assert_eq!(prop(c), DerivedProperty::Pvalid, "{c:?}");
        }
    }

    #[test]
    fn uppercase_disallowed() {
        for c in ['A', 'É', 'Ω', 'А', 'Օ'] {
            assert_eq!(prop(c), DerivedProperty::Disallowed, "{c:?}");
        }
    }

    #[test]
    fn symbols_and_punctuation_disallowed() {
        for c in ['$', '€', '→', '∑', '☺', '。', '·'] {
            assert_ne!(prop(c), DerivedProperty::Pvalid, "{c:?}");
        }
    }

    #[test]
    fn exceptions_apply() {
        assert_eq!(prop('ß'), DerivedProperty::Pvalid);
        assert_eq!(prop('ς'), DerivedProperty::Pvalid);
        assert_eq!(prop('\u{0640}'), DerivedProperty::Disallowed); // tatweel
        assert_eq!(prop('\u{00B7}'), DerivedProperty::ContextO);
    }

    #[test]
    fn joiners_are_contextj() {
        assert_eq!(prop('\u{200C}'), DerivedProperty::ContextJ);
        assert_eq!(prop('\u{200D}'), DerivedProperty::ContextJ);
    }

    #[test]
    fn unassigned_gap_is_unassigned() {
        assert_eq!(derived_property(CodePoint(0xE123)), DerivedProperty::Unassigned);
    }

    #[test]
    fn nfkc_unstable_blocks_disallowed() {
        // Styled/compatibility letters may not be registered even though
        // they are letters: they decompose under NFKC.
        assert_eq!(derived_property(CodePoint(0x1D41A)), DerivedProperty::Disallowed); // 𝐚
        assert_eq!(derived_property(CodePoint(0xFF41)), DerivedProperty::Disallowed); // ａ
        assert_eq!(derived_property(CodePoint(0x2170)), DerivedProperty::Disallowed); // ⅰ
        assert_eq!(derived_property(CodePoint(0x3131)), DerivedProperty::Disallowed); // compat jamo
    }

    #[test]
    fn registrable_labels() {
        assert!(label_is_registrable("google"));
        assert!(label_is_registrable("gооgle")); // Cyrillic o's
        assert!(label_is_registrable("工業大学"));
        assert!(!label_is_registrable("Google")); // uppercase
        assert!(!label_is_registrable("-abc"));
        assert!(!label_is_registrable("abc-"));
        assert!(!label_is_registrable(""));
        assert!(!label_is_registrable("a_b"));
    }
}
