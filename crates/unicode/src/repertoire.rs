//! Iteration over the assigned repertoire of this substrate.
//!
//! The repertoire is the union of all code points inside the block table
//! (blocks model assigned ranges; the gaps between blocks model unassigned
//! code space). Unicode 12.0.0 assigns 137,928 characters; this substrate's
//! repertoire is the same order of magnitude — `repro table1` reports the
//! exact figure next to the paper's.

use crate::{blocks::BLOCKS, derived_property, CodePoint, DerivedProperty};

/// True when `cp` is assigned in this substrate (falls inside a block).
pub fn is_assigned(cp: CodePoint) -> bool {
    crate::block_of(cp).is_some()
}

/// Iterates every assigned code point in ascending order.
pub fn assigned_code_points() -> impl Iterator<Item = CodePoint> {
    BLOCKS
        .iter()
        .flat_map(|b| b.start..=b.end)
        .filter_map(CodePoint::new)
}

/// Iterates every `PVALID` (IDN-permitted) code point in ascending order.
///
/// This is the repertoire SimChar is built from (paper §3.2: 123,006
/// characters in the IDNA2008 draft).
pub fn pvalid_code_points() -> impl Iterator<Item = CodePoint> {
    assigned_code_points().filter(|&cp| derived_property(cp) == DerivedProperty::Pvalid)
}

/// Summary counts of the repertoire, mirroring the quantities of the
/// paper's Table 1 left column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepertoireStats {
    /// Total assigned code points (paper: 137,928 in Unicode 12.0.0).
    pub assigned: usize,
    /// PVALID code points (paper: 123,006 in the IDNA2008 draft).
    pub pvalid: usize,
}

/// Computes repertoire statistics.
pub fn repertoire_stats() -> RepertoireStats {
    let mut assigned = 0usize;
    let mut pvalid = 0usize;
    for cp in assigned_code_points() {
        assigned += 1;
        if derived_property(cp) == DerivedProperty::Pvalid {
            pvalid += 1;
        }
    }
    RepertoireStats { assigned, pvalid }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigned_iterator_is_sorted_and_unique() {
        let mut prev = None;
        for cp in assigned_code_points().take(100_000) {
            if let Some(p) = prev {
                assert!(cp.0 > p, "not strictly ascending at {cp}");
            }
            prev = Some(cp.0);
        }
    }

    #[test]
    fn surrogates_never_appear() {
        assert!(assigned_code_points().all(|cp| !(0xD800..=0xDFFF).contains(&cp.0)));
    }

    #[test]
    fn repertoire_magnitude_matches_unicode12_structure() {
        let stats = repertoire_stats();
        // Unicode 12: 137,928 assigned; IDNA2008: 123,006 PVALID. Our
        // substrate is range-granular so the figures differ, but they must
        // be the same order of magnitude and preserve pvalid < assigned.
        assert!(stats.assigned > 100_000, "assigned = {}", stats.assigned);
        assert!(stats.assigned < 250_000, "assigned = {}", stats.assigned);
        assert!(stats.pvalid > 90_000, "pvalid = {}", stats.pvalid);
        assert!(stats.pvalid < stats.assigned);
        // The PVALID share in Unicode 12 is ~89%; accept a broad band.
        let share = stats.pvalid as f64 / stats.assigned as f64;
        assert!(share > 0.70 && share < 0.99, "share = {share}");
    }

    #[test]
    fn pvalid_iterator_agrees_with_predicate() {
        for cp in pvalid_code_points().take(5_000) {
            assert!(crate::is_pvalid(cp));
        }
    }
}
