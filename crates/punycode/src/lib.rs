//! Punycode (RFC 3492) and IDNA ACE-label handling.
//!
//! IDNs travel on the wire as LDH strings: a Unicode label is transcoded
//! with the Bootstring algorithm of RFC 3492 and prefixed with the ACE
//! marker `xn--` (paper §2.1). This crate provides
//!
//! * [`bootstring`] — the raw Punycode encoder/decoder, implemented from
//!   the RFC with full overflow checking,
//! * [`ace`] — per-label `ToASCII`/`ToUnicode` with the `xn--` prefix,
//! * [`domain`] — a [`DomainName`] type: label splitting, validation,
//!   IDN detection and conversion between the Unicode and ACE forms.
//!
//! # Example
//!
//! ```
//! use sham_punycode::{ace, domain::DomainName};
//!
//! // The paper's running example: facébook.com.
//! let ascii = ace::to_ascii("facébook").unwrap();
//! assert_eq!(ascii, "xn--facbook-dya");
//! assert_eq!(ace::to_unicode(&ascii).unwrap(), "facébook");
//!
//! let d: DomainName = "xn--facbook-dya.com".parse().unwrap();
//! assert!(d.is_idn());
//! assert_eq!(d.to_unicode().unwrap(), "facébook.com");
//! ```

pub mod ace;
pub mod bootstring;
pub mod domain;

pub use ace::{to_ascii, to_unicode};
pub use bootstring::{decode, encode};
pub use domain::DomainName;

use std::fmt;

/// Errors from Punycode/IDNA processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PunycodeError {
    /// A delta overflowed the 32-bit arithmetic mandated by RFC 3492 §6.4.
    Overflow,
    /// The encoded form contains a character outside the Punycode alphabet.
    InvalidDigit(char),
    /// The input to encoding contains a non-basic code point where only
    /// basic (ASCII) code points are allowed.
    NonBasic(char),
    /// Decoding produced a code point outside the Unicode scalar range.
    InvalidCodePoint(u32),
    /// The label is empty.
    EmptyLabel,
    /// The label exceeds 63 octets in ACE form (RFC 5890 §2.3.1).
    LabelTooLong(usize),
    /// The full domain name exceeds 253 octets.
    NameTooLong(usize),
    /// An `xn--` label did not decode to any non-ASCII character, or its
    /// round-trip re-encoding disagrees (a "fake" ACE label).
    NotAcePrefixed,
}

impl fmt::Display for PunycodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PunycodeError::Overflow => write!(f, "punycode delta overflow"),
            PunycodeError::InvalidDigit(c) => write!(f, "invalid punycode digit {c:?}"),
            PunycodeError::NonBasic(c) => write!(f, "non-basic code point {c:?} in basic string"),
            PunycodeError::InvalidCodePoint(v) => write!(f, "invalid code point U+{v:X}"),
            PunycodeError::EmptyLabel => write!(f, "empty label"),
            PunycodeError::LabelTooLong(n) => write!(f, "label is {n} octets (max 63)"),
            PunycodeError::NameTooLong(n) => write!(f, "name is {n} octets (max 253)"),
            PunycodeError::NotAcePrefixed => write!(f, "not a valid ACE (xn--) label"),
        }
    }
}

impl std::error::Error for PunycodeError {}
