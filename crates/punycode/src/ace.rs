//! ACE (ASCII-Compatible Encoding) label conversion.
//!
//! A Unicode label becomes an ACE label by Punycode-encoding it and
//! prepending `xn--` (RFC 5890). Pure-ASCII labels pass through unchanged
//! (lowercased, since DNS is case-insensitive).

use crate::{bootstring, PunycodeError};

/// The ACE prefix marking an encoded label.
pub const ACE_PREFIX: &str = "xn--";

/// Maximum length of a DNS label in octets.
pub const MAX_LABEL_OCTETS: usize = 63;

/// True when the label (in either form) is an IDN label, i.e. carries the
/// ACE prefix or contains non-ASCII characters.
pub fn is_idn_label(label: &str) -> bool {
    label.starts_with(ACE_PREFIX) || !label.is_ascii()
}

/// Converts a single Unicode label to its ACE form.
///
/// ASCII labels are lowercased and returned as-is; non-ASCII labels are
/// lowercased (simple case folding), Punycode encoded and `xn--` prefixed.
/// The result is checked against the 63-octet DNS label limit.
pub fn to_ascii(label: &str) -> Result<String, PunycodeError> {
    if label.is_empty() {
        return Err(PunycodeError::EmptyLabel);
    }
    let folded: String = label.chars().flat_map(|c| c.to_lowercase()).collect();
    let out = if folded.is_ascii() {
        folded
    } else {
        let mut s = String::from(ACE_PREFIX);
        s.push_str(&bootstring::encode(&folded)?);
        s
    };
    if out.len() > MAX_LABEL_OCTETS {
        return Err(PunycodeError::LabelTooLong(out.len()));
    }
    Ok(out)
}

/// Converts a single label to its Unicode form.
///
/// Labels without the ACE prefix are returned unchanged. Prefixed labels
/// are decoded; a prefixed label that decodes to pure ASCII or fails to
/// round-trip is rejected (RFC 5891's "check hyphens / check ACE" spirit:
/// such labels are spoofing vectors themselves).
pub fn to_unicode(label: &str) -> Result<String, PunycodeError> {
    if label.is_empty() {
        return Err(PunycodeError::EmptyLabel);
    }
    let lower = label.to_ascii_lowercase();
    let Some(encoded) = lower.strip_prefix(ACE_PREFIX) else {
        return Ok(lower);
    };
    let decoded = bootstring::decode(encoded)?;
    if decoded.is_ascii() {
        return Err(PunycodeError::NotAcePrefixed);
    }
    // Round-trip check: re-encoding must reproduce the input exactly,
    // otherwise the ACE form is not canonical.
    let reencoded = bootstring::encode(&decoded)?;
    if reencoded != encoded {
        return Err(PunycodeError::NotAcePrefixed);
    }
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_label_passes_through_lowercased() {
        assert_eq!(to_ascii("Google").unwrap(), "google");
        assert_eq!(to_unicode("GOOGLE").unwrap(), "google");
    }

    #[test]
    fn idn_label_round_trip() {
        let ace = to_ascii("münchen").unwrap();
        assert!(ace.starts_with(ACE_PREFIX));
        assert_eq!(to_unicode(&ace).unwrap(), "münchen");
    }

    #[test]
    fn paper_alibaba_example() {
        assert_eq!(to_ascii("阿里巴巴").unwrap(), "xn--tsta8290bfzd");
        assert_eq!(to_unicode("xn--tsta8290bfzd").unwrap(), "阿里巴巴");
    }

    #[test]
    fn uppercase_unicode_is_folded() {
        assert_eq!(to_ascii("MÜNCHEN").unwrap(), to_ascii("münchen").unwrap());
    }

    #[test]
    fn fake_ace_label_rejected() {
        // Decodes to ASCII only — not a legitimate IDN label.
        assert_eq!(to_unicode("xn--abc-"), Err(PunycodeError::NotAcePrefixed));
    }

    #[test]
    fn non_canonical_ace_rejected() {
        // Mixed-case digits decode but re-encode differently... actually
        // digits are case-folded first, so craft a non-shortest form by
        // corrupting a known-good encoding's trailing digit.
        let good = to_ascii("bücher").unwrap(); // xn--bcher-kva
        let mut bad = good.clone();
        bad.pop();
        bad.push('b'); // xn--bcher-kvb decodes to a different char; must round-trip or fail
        if let Ok(s) = to_unicode(&bad) {
            assert_ne!(s, "bücher");
        }
    }

    #[test]
    fn empty_labels_rejected() {
        assert_eq!(to_ascii(""), Err(PunycodeError::EmptyLabel));
        assert_eq!(to_unicode(""), Err(PunycodeError::EmptyLabel));
    }

    #[test]
    fn long_label_rejected() {
        let long = "ü".repeat(80);
        assert!(matches!(to_ascii(&long), Err(PunycodeError::LabelTooLong(_))));
    }

    #[test]
    fn is_idn_label_detection() {
        assert!(is_idn_label("xn--bcher-kva"));
        assert!(is_idn_label("bücher"));
        assert!(!is_idn_label("books"));
    }
}
