//! Domain-name type shared by the whole workspace.
//!
//! A [`DomainName`] is a validated, lowercased, dot-separated sequence of
//! labels in wire (ACE) form. The framework's Step 2 — extracting IDNs
//! from a zone by looking for the `xn--` prefix (paper §3.1) — and the
//! TLD-stripping used by Algorithm 1 both live here.

use crate::{ace, PunycodeError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Maximum total length of a domain name in octets (RFC 1035 presentation
/// form without the trailing dot).
pub const MAX_NAME_OCTETS: usize = 253;

/// A validated domain name held in ACE (wire) form.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainName {
    ascii: String,
}

impl DomainName {
    /// Parses a domain name given in either Unicode or ACE form.
    ///
    /// Labels are individually converted with [`ace::to_ascii`]; the result
    /// is validated against DNS length limits. A single trailing dot
    /// (root) is accepted and dropped.
    pub fn parse(input: &str) -> Result<Self, PunycodeError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() {
            return Err(PunycodeError::EmptyLabel);
        }
        let mut labels = Vec::new();
        for raw in trimmed.split('.') {
            labels.push(ace::to_ascii(raw)?);
        }
        let ascii = labels.join(".");
        if ascii.len() > MAX_NAME_OCTETS {
            return Err(PunycodeError::NameTooLong(ascii.len()));
        }
        Ok(DomainName { ascii })
    }

    /// The full name in ACE form (`xn--…` labels, lowercase).
    pub fn as_ascii(&self) -> &str {
        &self.ascii
    }

    /// Iterates the labels in ACE form, left to right.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.ascii.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// The rightmost label (the TLD), e.g. `com`.
    pub fn tld(&self) -> &str {
        self.labels().last().expect("validated names have >= 1 label")
    }

    /// Everything left of the TLD, or `None` for a bare TLD.
    ///
    /// Algorithm 1 operates on names with "the TLD part removed"; this is
    /// that projection, still in ACE form.
    pub fn without_tld(&self) -> Option<&str> {
        self.ascii.rfind('.').map(|pos| &self.ascii[..pos])
    }

    /// The registrable second-level label (the label left of the TLD),
    /// e.g. `google` for `www.google.com`.
    pub fn sld(&self) -> Option<&str> {
        let labels: Vec<&str> = self.labels().collect();
        if labels.len() >= 2 {
            Some(labels[labels.len() - 2])
        } else {
            None
        }
    }

    /// True when any label carries the ACE prefix — the framework's IDN
    /// extraction predicate (paper Step 2).
    pub fn is_idn(&self) -> bool {
        self.labels().any(|l| l.starts_with(ace::ACE_PREFIX))
    }

    /// Converts every label to its Unicode form.
    pub fn to_unicode(&self) -> Result<String, PunycodeError> {
        let mut out = Vec::new();
        for label in self.labels() {
            out.push(ace::to_unicode(label)?);
        }
        Ok(out.join("."))
    }

    /// Unicode form of the name with the TLD removed — the exact string
    /// Algorithm 1 compares. Falls back to the ACE form for labels that
    /// fail to decode (defensive: zone files contain garbage `xn--` labels).
    pub fn unicode_without_tld(&self) -> Option<String> {
        let stem = self.without_tld()?;
        let mut out = Vec::new();
        for label in stem.split('.') {
            out.push(ace::to_unicode(label).unwrap_or_else(|_| label.to_string()));
        }
        Some(out.join("."))
    }
}

impl FromStr for DomainName {
    type Err = PunycodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.ascii)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_ascii_name() {
        let d = DomainName::parse("WWW.Google.COM").unwrap();
        assert_eq!(d.as_ascii(), "www.google.com");
        assert_eq!(d.tld(), "com");
        assert_eq!(d.sld(), Some("google"));
        assert_eq!(d.without_tld(), Some("www.google"));
        assert!(!d.is_idn());
    }

    #[test]
    fn parse_unicode_name_encodes_labels() {
        let d = DomainName::parse("阿里巴巴.com").unwrap();
        assert_eq!(d.as_ascii(), "xn--tsta8290bfzd.com");
        assert!(d.is_idn());
        assert_eq!(d.to_unicode().unwrap(), "阿里巴巴.com");
    }

    #[test]
    fn parse_ace_name_detects_idn() {
        let d = DomainName::parse("xn--facbook-dya.com").unwrap();
        assert!(d.is_idn());
        assert_eq!(d.unicode_without_tld().unwrap(), "facébook");
    }

    #[test]
    fn trailing_root_dot_accepted() {
        let d = DomainName::parse("example.com.").unwrap();
        assert_eq!(d.as_ascii(), "example.com");
    }

    #[test]
    fn empty_and_dotted_rejected() {
        assert!(DomainName::parse("").is_err());
        assert!(DomainName::parse(".").is_err());
        assert!(DomainName::parse("a..b").is_err());
    }

    #[test]
    fn bare_tld_has_no_stem() {
        let d = DomainName::parse("com").unwrap();
        assert_eq!(d.without_tld(), None);
        assert_eq!(d.sld(), None);
    }

    #[test]
    fn name_length_limit() {
        let label = "a".repeat(60);
        let long = format!("{label}.{label}.{label}.{label}.{label}");
        assert!(matches!(
            DomainName::parse(&long),
            Err(PunycodeError::NameTooLong(_))
        ));
    }

    #[test]
    fn garbage_ace_label_survives_unicode_projection() {
        // "xn--zzzzz" may not decode; unicode_without_tld must not panic.
        let d = DomainName::parse("xn--a.com");
        if let Ok(d) = d {
            let _ = d.unicode_without_tld();
        }
    }
}
