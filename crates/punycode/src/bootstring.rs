//! The Bootstring algorithm with the Punycode parameters (RFC 3492).
//!
//! Bootstring represents a sequence of Unicode code points as a sequence of
//! "basic" (ASCII) code points: the basic code points of the input are
//! copied literally, then each non-basic code point is encoded as a
//! generalized-variable-length-integer *delta* that tells the decoder where
//! to insert it. Punycode instantiates Bootstring with:
//!
//! ```text
//! base = 36, tmin = 1, tmax = 26, skew = 38, damp = 700,
//! initial_bias = 72, initial_n = 0x80, delimiter = '-'
//! ```
//!
//! All arithmetic is checked; inputs that would overflow the RFC's 32-bit
//! model are rejected with [`PunycodeError::Overflow`] rather than wrapping.

use crate::PunycodeError;

const BASE: u32 = 36;
const TMIN: u32 = 1;
const TMAX: u32 = 26;
const SKEW: u32 = 38;
const DAMP: u32 = 700;
const INITIAL_BIAS: u32 = 72;
const INITIAL_N: u32 = 0x80;
const DELIMITER: char = '-';

/// Maps a digit value `0..36` to its lowercase basic code point
/// (`a..z` = 0..25, `0..9` = 26..35).
fn encode_digit(d: u32) -> char {
    debug_assert!(d < BASE);
    if d < 26 {
        (b'a' + d as u8) as char
    } else {
        (b'0' + (d - 26) as u8) as char
    }
}

/// Maps a basic code point to its digit value, case-insensitively.
fn decode_digit(c: char) -> Result<u32, PunycodeError> {
    match c {
        'a'..='z' => Ok(c as u32 - 'a' as u32),
        'A'..='Z' => Ok(c as u32 - 'A' as u32),
        '0'..='9' => Ok(c as u32 - '0' as u32 + 26),
        _ => Err(PunycodeError::InvalidDigit(c)),
    }
}

/// Bias adaptation (RFC 3492 §3.4).
fn adapt(mut delta: u32, num_points: u32, first_time: bool) -> u32 {
    delta /= if first_time { DAMP } else { 2 };
    delta += delta / num_points;
    let mut k = 0;
    while delta > ((BASE - TMIN) * TMAX) / 2 {
        delta /= BASE - TMIN;
        k += BASE;
    }
    k + (((BASE - TMIN + 1) * delta) / (delta + SKEW))
}

/// Encodes `input` to its Punycode form (RFC 3492 §6.3).
///
/// The output contains only basic code points. Inputs consisting solely of
/// basic code points are valid and produce `input + "-"`; ACE-level logic
/// (deciding whether to encode at all) lives in [`crate::ace`].
pub fn encode(input: &str) -> Result<String, PunycodeError> {
    let code_points: Vec<u32> = input.chars().map(|c| c as u32).collect();
    let mut output = String::with_capacity(input.len());

    // Copy basic code points, then the delimiter (if any basics were copied).
    for &cp in &code_points {
        if cp < INITIAL_N {
            output.push(char::from_u32(cp).expect("basic code point"));
        }
    }
    let basic_count = output.chars().count() as u32;
    if basic_count > 0 {
        output.push(DELIMITER);
    }

    let mut n = INITIAL_N;
    let mut delta: u32 = 0;
    let mut bias = INITIAL_BIAS;
    let mut handled = basic_count; // code points encoded/copied so far

    while (handled as usize) < code_points.len() {
        // Find the smallest un-handled code point >= n.
        let m = code_points
            .iter()
            .copied()
            .filter(|&cp| cp >= n)
            .min()
            .expect("at least one remaining code point");

        let width = handled
            .checked_add(1)
            .ok_or(PunycodeError::Overflow)?;
        delta = delta
            .checked_add(
                (m - n)
                    .checked_mul(width)
                    .ok_or(PunycodeError::Overflow)?,
            )
            .ok_or(PunycodeError::Overflow)?;
        n = m;

        for &cp in &code_points {
            if cp < n {
                delta = delta.checked_add(1).ok_or(PunycodeError::Overflow)?;
            }
            if cp == n {
                // Encode delta as a variable-length integer.
                let mut q = delta;
                let mut k = BASE;
                loop {
                    let t = if k <= bias {
                        TMIN
                    } else if k >= bias + TMAX {
                        TMAX
                    } else {
                        k - bias
                    };
                    if q < t {
                        break;
                    }
                    output.push(encode_digit(t + (q - t) % (BASE - t)));
                    q = (q - t) / (BASE - t);
                    k += BASE;
                }
                output.push(encode_digit(q));
                bias = adapt(delta, handled + 1, handled == basic_count);
                delta = 0;
                handled += 1;
            }
        }
        delta = delta.checked_add(1).ok_or(PunycodeError::Overflow)?;
        n = n.checked_add(1).ok_or(PunycodeError::Overflow)?;
    }

    Ok(output)
}

/// Decodes a Punycode string back to Unicode (RFC 3492 §6.2).
pub fn decode(input: &str) -> Result<String, PunycodeError> {
    // Split at the last delimiter: everything before is literal basic
    // code points; everything after is the extended part.
    let (basic_part, extended) = match input.rfind(DELIMITER) {
        Some(pos) => (&input[..pos], &input[pos + 1..]),
        None => ("", input),
    };

    let mut output: Vec<u32> = Vec::with_capacity(input.len());
    for c in basic_part.chars() {
        if !c.is_ascii() {
            return Err(PunycodeError::NonBasic(c));
        }
        output.push(c as u32);
    }

    let mut n = INITIAL_N;
    let mut i: u32 = 0;
    let mut bias = INITIAL_BIAS;

    let mut chars = extended.chars().peekable();
    while chars.peek().is_some() {
        let old_i = i;
        let mut w: u32 = 1;
        let mut k = BASE;
        loop {
            let c = chars.next().ok_or(PunycodeError::Overflow)?;
            let digit = decode_digit(c)?;
            i = i
                .checked_add(digit.checked_mul(w).ok_or(PunycodeError::Overflow)?)
                .ok_or(PunycodeError::Overflow)?;
            let t = if k <= bias {
                TMIN
            } else if k >= bias + TMAX {
                TMAX
            } else {
                k - bias
            };
            if digit < t {
                break;
            }
            w = w.checked_mul(BASE - t).ok_or(PunycodeError::Overflow)?;
            k += BASE;
        }

        let len_plus_one = (output.len() as u32)
            .checked_add(1)
            .ok_or(PunycodeError::Overflow)?;
        bias = adapt(i - old_i, len_plus_one, old_i == 0);
        n = n
            .checked_add(i / len_plus_one)
            .ok_or(PunycodeError::Overflow)?;
        i %= len_plus_one;

        if char::from_u32(n).is_none() || (0xD800..=0xDFFF).contains(&n) {
            return Err(PunycodeError::InvalidCodePoint(n));
        }
        output.insert(i as usize, n);
        i += 1;
    }

    output
        .into_iter()
        .map(|v| char::from_u32(v).ok_or(PunycodeError::InvalidCodePoint(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Vectors from RFC 3492 §7.1 and from the paper itself.
    #[test]
    fn rfc3492_sample_strings() {
        // (A) Arabic (Egyptian).
        let arabic: String = [
            0x0644u32, 0x064A, 0x0647, 0x0645, 0x0627, 0x0628, 0x062A, 0x0643, 0x0644, 0x0645,
            0x0648, 0x0634, 0x0639, 0x0631, 0x0628, 0x064A, 0x061F,
        ]
        .iter()
        .map(|&v| char::from_u32(v).unwrap())
        .collect();
        assert_eq!(encode(&arabic).unwrap(), "egbpdaj6bu4bxfgehfvwxn");
        assert_eq!(decode("egbpdaj6bu4bxfgehfvwxn").unwrap(), arabic);

        // (B) Chinese (simplified).
        let chinese: String = [
            0x4ED6u32, 0x4EEC, 0x4E3A, 0x4EC0, 0x4E48, 0x4E0D, 0x8BF4, 0x4E2D, 0x6587,
        ]
        .iter()
        .map(|&v| char::from_u32(v).unwrap())
        .collect();
        assert_eq!(encode(&chinese).unwrap(), "ihqwcrb4cv8a8dqg056pqjye");
        assert_eq!(decode("ihqwcrb4cv8a8dqg056pqjye").unwrap(), chinese);

        // (I) Russian (Cyrillic).
        let russian: String = [
            0x043Fu32, 0x043E, 0x0447, 0x0435, 0x043C, 0x0443, 0x0436, 0x0435, 0x043E, 0x043D,
            0x0438, 0x043D, 0x0435, 0x0433, 0x043E, 0x0432, 0x043E, 0x0440, 0x044F, 0x0442, 0x043F,
            0x043E, 0x0440, 0x0443, 0x0441, 0x0441, 0x043A, 0x0438,
        ]
        .iter()
        .map(|&v| char::from_u32(v).unwrap())
        .collect();
        assert_eq!(encode(&russian).unwrap(), "b1abfaaepdrnnbgefbadotcwatmq2g4l");
    }

    #[test]
    fn paper_examples() {
        // §2.1: "阿里巴巴" ⇒ "tsta8290bfzd".
        assert_eq!(encode("阿里巴巴").unwrap(), "tsta8290bfzd");
        assert_eq!(decode("tsta8290bfzd").unwrap(), "阿里巴巴");
        // §2.2: "facébook" ⇒ "facbook-dya".
        assert_eq!(encode("facébook").unwrap(), "facbook-dya");
        assert_eq!(decode("facbook-dya").unwrap(), "facébook");
    }

    #[test]
    fn well_known_labels() {
        assert_eq!(encode("bücher").unwrap(), "bcher-kva");
        assert_eq!(decode("bcher-kva").unwrap(), "bücher");
    }

    #[test]
    fn all_basic_input_gets_trailing_delimiter() {
        assert_eq!(encode("abc").unwrap(), "abc-");
        assert_eq!(decode("abc-").unwrap(), "abc");
    }

    #[test]
    fn empty_input() {
        assert_eq!(encode("").unwrap(), "");
        assert_eq!(decode("").unwrap(), "");
    }

    #[test]
    fn decode_rejects_invalid_digit() {
        assert!(matches!(decode("ab!c"), Err(PunycodeError::InvalidDigit('!'))));
    }

    #[test]
    fn decode_rejects_truncated_extended_part() {
        // A dangling variable-length integer must not panic.
        let err = decode("abc-99999999").unwrap_err();
        assert!(matches!(
            err,
            PunycodeError::Overflow | PunycodeError::InvalidCodePoint(_)
        ));
    }

    #[test]
    fn decode_rejects_surrogate_targets() {
        // Force a code point into the surrogate range via a large delta.
        let res = decode("0000000000");
        assert!(res.is_err());
    }

    #[test]
    fn decode_is_case_insensitive_in_digits() {
        // Digit values are case-insensitive; literal basic code points keep
        // their case. The inserted ü is always lowercase.
        assert_eq!(decode("BCHER-KVA").unwrap(), "BüCHER");
        assert_eq!(decode("bcher-KVA").unwrap(), "bücher");
    }

    #[test]
    fn delta_ordering_is_stable() {
        // Mixed basic and non-basic with repeated insertions.
        let s = "éxémplé-aé";
        let enc = encode(s).unwrap();
        assert_eq!(decode(&enc).unwrap(), s);
    }

    #[test]
    fn supplementary_plane_round_trip() {
        let s = "a\u{10330}b\u{1F600}"; // Gothic letter + emoticon
        let enc = encode(s).unwrap();
        assert!(enc.is_ascii());
        assert_eq!(decode(&enc).unwrap(), s);
    }
}
