//! Procedural per-script glyph synthesis.
//!
//! Every code point outside the ASCII font, the diacritic compositor and
//! the visual-class table is rendered procedurally, as a pure function of
//! the code point. The generators are built so that the paper's block-level
//! phenomena *emerge from structure* rather than from hard-coded pairs
//! (DESIGN.md §3):
//!
//! * **Hangul syllables** are composed from initial/medial/final jamo
//!   sub-bitmaps. Several jamo are near-twins (differing by 2–4 pixels),
//!   so syllables sharing the other two components collide at small Δ —
//!   this is why Hangul dominates SimChar in the paper's Table 4.
//! * **CJK ideographs** are composed from a radical and a phonetic
//!   component; a small, deterministic fraction of characters render as
//!   "twins" of a nearby anchor character, giving the moderate CJK pair
//!   count of Table 4.
//! * **Other letter scripts** use seeded stroke glyphs with a per-block
//!   twin rate (high for Canadian Aboriginal syllabics and Vai, low
//!   elsewhere) mirroring the real geometry of those scripts.
//! * **Combining marks** render with fewer than 10 pixels of ink and are
//!   therefore swept out by Step III of the SimChar build (paper Fig. 7).

use crate::bitmap::Bitmap;
use crate::prng::{mix, SplitMix64};

/// A rectangular drawing region (inclusive bounds).
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// Leftmost column.
    pub x0: usize,
    /// Topmost row.
    pub y0: usize,
    /// Rightmost column.
    pub x1: usize,
    /// Bottom row.
    pub y1: usize,
}

impl Region {
    /// Full letter canvas with a margin.
    pub const LETTER: Region = Region { x0: 4, y0: 3, x1: 28, y1: 29 };

    fn width(&self) -> usize {
        self.x1 - self.x0 + 1
    }

    fn height(&self) -> usize {
        self.y1 - self.y0 + 1
    }
}

/// Draws a 1-pixel line from `(x0, y0)` to `(x1, y1)` (Bresenham).
pub fn draw_line(bmp: &mut Bitmap, x0: i32, y0: i32, x1: i32, y1: i32) {
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (x0, y0);
    loop {
        if x >= 0 && y >= 0 {
            bmp.set(x as usize, y as usize, true);
        }
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Renders a stroke glyph: `strokes` seeded line segments inside `region`.
/// The same seed always yields the same glyph.
pub fn stroke_glyph(seed: u64, region: Region, strokes: usize) -> Bitmap {
    let mut rng = SplitMix64::new(seed);
    let mut bmp = Bitmap::empty();
    let w = region.width() as u64;
    let h = region.height() as u64;
    for _ in 0..strokes {
        let x0 = region.x0 as u64 + rng.below(w);
        let y0 = region.y0 as u64 + rng.below(h);
        // Bias towards axis-aligned and full-length strokes so glyphs look
        // letter-like rather than like noise.
        let (x1, y1) = match rng.below(4) {
            0 => (x0, region.y0 as u64 + rng.below(h)),          // vertical
            1 => (region.x0 as u64 + rng.below(w), y0),          // horizontal
            _ => (
                region.x0 as u64 + rng.below(w),
                region.y0 as u64 + rng.below(h),
            ),
        };
        draw_line(&mut bmp, x0 as i32, y0 as i32, x1 as i32, y1 as i32);
    }
    bmp
}

/// Toggles exactly `n` distinct pixels of `bmp`, deterministically from
/// `seed`, inside the letter area. The result differs from the input by
/// exactly `n` in the Δ metric.
pub fn perturb(mut bmp: Bitmap, seed: u64, n: u32) -> Bitmap {
    let mut rng = SplitMix64::new(seed);
    let mut flipped: Vec<(usize, usize)> = Vec::with_capacity(n as usize);
    while (flipped.len() as u32) < n {
        let x = 3 + rng.below(26) as usize;
        let y = 3 + rng.below(26) as usize;
        if flipped.contains(&(x, y)) {
            continue;
        }
        bmp.toggle(x, y);
        flipped.push((x, y));
    }
    bmp
}

// ---------------------------------------------------------------------------
// Hangul
// ---------------------------------------------------------------------------

/// Number of initial jamo (choseong).
pub const HANGUL_INITIALS: u32 = 19;
/// Number of medial jamo (jungseong).
pub const HANGUL_MEDIALS: u32 = 21;
/// Number of final jamo slots (jongseong), including "none".
pub const HANGUL_FINALS: u32 = 28;
/// First Hangul syllable.
pub const HANGUL_BASE: u32 = 0xAC00;
/// Last Hangul syllable (11,172 syllables).
pub const HANGUL_LAST: u32 = 0xD7A3;

/// Base-shape id and twin perturbation for each initial jamo. Entries
/// sharing a base id with a small mod are the "near-twin" jamo that give
/// rise to Hangul homoglyph pairs.
#[rustfmt::skip]
const INITIAL_SHAPE: [(u8, u8); 19] = [
    (0, 0), (1, 0), (1, 3),  // ㄱ ㄲ: twins
    (2, 0), (3, 0), (3, 3),  // ㄷ ㄸ: twins
    (4, 0), (5, 0), (5, 2),  // ㅂ ㅃ: twins
    (6, 0), (6, 3),          // ㅅ ㅆ: twins
    (7, 0), (8, 0), (9, 0),
    (10, 0), (11, 0), (12, 0), (13, 0), (14, 0),
];

/// Base-shape id and twin perturbation for each medial jamo.
#[rustfmt::skip]
const MEDIAL_SHAPE: [(u8, u8); 21] = [
    (0, 0), (0, 3),          // ㅏ ㅐ: twins
    (1, 0), (1, 3),          // ㅑ ㅒ: twins
    (2, 0), (2, 4),          // ㅓ ㅔ: twins
    (3, 0), (4, 0), (5, 0), (6, 0),
    (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 0), (12, 0), (13, 0), (14, 0),
    (15, 0), (16, 0), (17, 0),
];

/// Base-shape id and twin perturbation for each final jamo slot
/// (slot 0 = no final, rendered empty).
#[rustfmt::skip]
const FINAL_SHAPE: [(u8, u8); 28] = [
    (255, 0),                // none
    (0, 0), (0, 2),          // ㄱ ㄲ: twins
    (1, 0), (2, 0), (2, 3),  // ㄵ-family twins
    (3, 0), (3, 3),          // twins
    (4, 0), (5, 0), (5, 4),  // twins
    (6, 0), (7, 0), (8, 0),
    (9, 0), (9, 3),          // twins
    (10, 0), (11, 0), (11, 2), // twins
    (12, 0), (13, 0), (14, 0),
    (15, 0), (15, 3),        // twins
    (16, 0), (17, 0), (18, 0), (19, 0),
];

fn jamo_bitmap(kind: u64, shape: (u8, u8), region: Region, salt: u64) -> Bitmap {
    if shape.0 == 255 {
        return Bitmap::empty();
    }
    let base = stroke_glyph(mix(0x4A4D_4F00 + kind, u64::from(shape.0)) ^ salt, region, 4);
    if shape.1 == 0 {
        base
    } else {
        perturb(base, mix(0x7457_494E + kind, u64::from(shape.0) << 8 | u64::from(shape.1)), u32::from(shape.1))
    }
}

/// Decomposes a Hangul syllable into (initial, medial, final) indices.
pub fn hangul_decompose(cp: u32) -> Option<(u32, u32, u32)> {
    if !(HANGUL_BASE..=HANGUL_LAST).contains(&cp) {
        return None;
    }
    let s = cp - HANGUL_BASE;
    Some((s / (21 * 28), (s % (21 * 28)) / 28, s % 28))
}

/// Renders a Hangul syllable by composing its jamo. `salt` selects the
/// font family's jamo shapes (0 = the Unifont-like default).
pub fn hangul_syllable_styled(cp: u32, salt: u64) -> Option<Bitmap> {
    let (i, m, f) = hangul_decompose(cp)?;
    let mut bmp = Bitmap::empty();
    let initial =
        jamo_bitmap(1, INITIAL_SHAPE[i as usize], Region { x0: 3, y0: 3, x1: 14, y1: 14 }, salt);
    let medial =
        jamo_bitmap(2, MEDIAL_SHAPE[m as usize], Region { x0: 17, y0: 2, x1: 29, y1: 17 }, salt);
    let final_ =
        jamo_bitmap(3, FINAL_SHAPE[f as usize], Region { x0: 5, y0: 20, x1: 27, y1: 29 }, salt);
    bmp.union_with(&initial);
    bmp.union_with(&medial);
    bmp.union_with(&final_);
    Some(bmp)
}

/// Renders a Hangul syllable with the default (Unifont-like) style.
pub fn hangul_syllable(cp: u32) -> Option<Bitmap> {
    hangul_syllable_styled(cp, 0)
}

// ---------------------------------------------------------------------------
// CJK and generic twin-row synthesis
// ---------------------------------------------------------------------------

/// Twin behaviour of a block: out of `granularity` consecutive code
/// points, each non-anchor point becomes a twin of the row anchor with
/// probability `rate_percent`; twins differ from the anchor glyph by
/// 1..=`max_mod` pixels.
#[derive(Debug, Clone, Copy)]
pub struct TwinParams {
    /// Row size in code points.
    pub granularity: u32,
    /// Per-mille (0..=1000) chance a code point twins its row anchor.
    pub rate_permille: u64,
    /// Largest per-twin pixel perturbation (keep ≤ 2 so twin/twin pairs
    /// stay within Δ ≤ 4).
    pub max_mod: u32,
}

impl TwinParams {
    /// No twinning at all.
    pub const NONE: TwinParams = TwinParams { granularity: 32, rate_permille: 0, max_mod: 2 };
}

/// Renders a composed CJK-style ideograph for the anchor seed `seed`:
/// a radical in one half, a phonetic component in the other.
fn compose_ideograph(seed: u64) -> Bitmap {
    let mut rng = SplitMix64::new(mix(0x434A_4B00, seed));
    let mut bmp = Bitmap::empty();
    let horizontal_split = rng.below(2) == 0;
    let radical = rng.below(150);
    let component = rng.next_u64();
    let (r1, r2) = if horizontal_split {
        (
            Region { x0: 3, y0: 3, x1: 14, y1: 28 },
            Region { x0: 17, y0: 3, x1: 29, y1: 28 },
        )
    } else {
        (
            Region { x0: 3, y0: 2, x1: 28, y1: 14 },
            Region { x0: 3, y0: 17, x1: 28, y1: 29 },
        )
    };
    bmp.union_with(&stroke_glyph(mix(0x5241_4400, radical), r1, 5));
    bmp.union_with(&stroke_glyph(mix(0x434F_4D50, component), r2, 5));
    bmp
}

/// Renders a code point in a block governed by twin-row parameters.
/// `style` namespaces the glyph space per script so equal offsets in
/// different blocks do not collide.
pub fn twin_row_glyph(cp: u32, style: u64, params: TwinParams, ideographic: bool) -> Bitmap {
    let row_anchor = cp - (cp % params.granularity);
    let render = |anchor: u64| -> Bitmap {
        if ideographic {
            compose_ideograph(mix(style, anchor))
        } else {
            let strokes = 4 + (mix(style, anchor) % 3) as usize;
            stroke_glyph(mix(style.wrapping_add(0x4C45_5454), anchor), Region::LETTER, strokes)
        }
    };
    if cp != row_anchor && params.rate_permille > 0 {
        let mut rng = SplitMix64::new(mix(style ^ 0x5457_494E, u64::from(cp)));
        if rng.below(1000) < params.rate_permille {
            let mods = 1 + rng.below(u64::from(params.max_mod)) as u32;
            return perturb(render(u64::from(row_anchor)), mix(0x504F_4B45, u64::from(cp)), mods);
        }
    }
    render(u64::from(cp))
}

/// Renders a combining mark / sparse sign: 2..=9 pixels, below the Step III
/// threshold of 10, so it is eliminated from SimChar (paper Fig. 7).
pub fn sparse_mark(cp: u32) -> Bitmap {
    let mut rng = SplitMix64::new(mix(0x4D41_524B, u64::from(cp)));
    let n = 2 + (cp % 8); // 2..=9 pixels
    let mut bmp = Bitmap::empty();
    let cx = 12 + rng.below(8) as i32;
    let cy = 10 + rng.below(12) as i32;
    let mut placed = 0;
    while placed < n {
        let x = cx + rng.below(5) as i32 - 2;
        let y = cy + rng.below(5) as i32 - 2;
        if x >= 0 && y >= 0 && !bmp.get(x as usize, y as usize) {
            bmp.set(x as usize, y as usize, true);
            placed += 1;
        }
    }
    bmp
}

/// Renders a non-ASCII decimal digit (those not covered by a visual
/// class): a compact seeded glyph in a digit-shaped box.
pub fn digit_glyph(cp: u32) -> Bitmap {
    stroke_glyph(
        mix(0x4449_4749, u64::from(cp)),
        Region { x0: 8, y0: 5, x1: 23, y1: 27 },
        4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_endpoints_inked() {
        let mut b = Bitmap::empty();
        draw_line(&mut b, 0, 0, 10, 5);
        assert!(b.get(0, 0));
        assert!(b.get(10, 5));
    }

    #[test]
    fn stroke_glyph_is_deterministic_and_inky() {
        let a = stroke_glyph(42, Region::LETTER, 5);
        let b = stroke_glyph(42, Region::LETTER, 5);
        assert_eq!(a, b);
        assert!(a.popcount() >= 15, "only {} px", a.popcount());
        let c = stroke_glyph(43, Region::LETTER, 5);
        assert!(a.delta(&c) > 8);
    }

    #[test]
    fn perturb_changes_exactly_n_pixels() {
        let base = stroke_glyph(7, Region::LETTER, 5);
        for n in 1..=6 {
            let p = perturb(base, 1000 + u64::from(n), n);
            assert_eq!(base.delta(&p), n, "n = {n}");
        }
    }

    #[test]
    fn hangul_decompose_round_trips() {
        assert_eq!(hangul_decompose(0xAC00), Some((0, 0, 0))); // 가
        assert_eq!(hangul_decompose(0xD7A3), Some((18, 20, 27)));
        assert_eq!(hangul_decompose(0xABFF), None);
        assert_eq!(hangul_decompose(0xD7A4), None);
        // 한 = U+D55C: initial 18 (ㅎ), medial 0 (ㅏ), final 4 (ㄴ).
        let (i, m, f) = hangul_decompose(0xD55C).unwrap();
        assert_eq!((i, m, f), (18, 0, 4));
    }

    #[test]
    fn hangul_twin_finals_collide_others_do_not() {
        // Syllables sharing initial+medial, with twin finals (slots 1, 2).
        let a = hangul_syllable(0xAC00 + 1).unwrap();
        let b = hangul_syllable(0xAC00 + 2).unwrap();
        let d = a.delta(&b);
        assert!(d > 0 && d <= 4, "twin finals delta = {d}");

        // Non-twin finals (slots 1 and 3) must be far apart.
        let c = hangul_syllable(0xAC00 + 3).unwrap();
        assert!(a.delta(&c) > 4, "non-twin delta = {}", a.delta(&c));

        // Medials 0 and 1 are designed twins; medial 2 has a different
        // base shape and must be far from medial 0.
        let twin_medial = hangul_syllable(0xAC00 + 28).unwrap();
        let d = hangul_syllable(0xAC00).unwrap().delta(&twin_medial);
        assert!(d > 0 && d <= 4, "twin medial delta = {d}");
        let far_medial = hangul_syllable(0xAC00 + 2 * 28).unwrap();
        assert!(hangul_syllable(0xAC00).unwrap().delta(&far_medial) > 4);
    }

    #[test]
    fn hangul_glyphs_are_not_sparse() {
        for cp in [0xAC00u32, 0xB77C, 0xD55C, 0xD7A3] {
            let g = hangul_syllable(cp).unwrap();
            assert!(g.popcount() >= 10, "U+{cp:04X} has {} px", g.popcount());
        }
    }

    #[test]
    fn twin_row_glyphs_follow_rate() {
        let high = TwinParams { granularity: 16, rate_permille: 1000, max_mod: 2 };
        let anchor = twin_row_glyph(0x4E00, 9, high, true);
        let twin = twin_row_glyph(0x4E01, 9, high, true);
        let d = anchor.delta(&twin);
        assert!((1..=2).contains(&d), "delta = {d}");

        let off = TwinParams::NONE;
        let a = twin_row_glyph(0x4E00, 9, off, true);
        let b = twin_row_glyph(0x4E01, 9, off, true);
        assert!(a.delta(&b) > 4);
    }

    #[test]
    fn twin_pairs_within_threshold_even_twin_to_twin() {
        let p = TwinParams { granularity: 16, rate_permille: 1000, max_mod: 2 };
        let t1 = twin_row_glyph(0xA501, 5, p, false);
        let t2 = twin_row_glyph(0xA502, 5, p, false);
        // Each differs from the anchor by ≤ 2, so from each other by ≤ 4.
        assert!(t1.delta(&t2) <= 4);
    }

    #[test]
    fn sparse_marks_are_below_step3_threshold() {
        for cp in [0x1BE7u32, 0x2DF5, 0xA953, 0xABEC, 0x0301] {
            let g = sparse_mark(cp);
            assert!(g.popcount() < 10, "U+{cp:04X} has {} px", g.popcount());
            assert!(g.popcount() >= 2);
        }
    }

    #[test]
    fn digit_glyphs_have_enough_ink() {
        for cp in [0x0966u32, 0x09E6, 0x0E50] {
            assert!(digit_glyph(cp).popcount() >= 10);
        }
    }

    #[test]
    fn ideograph_halves_both_painted() {
        let g = compose_ideograph(1234);
        // Both halves of the canvas should contain ink.
        let left: u32 = (0..32).map(|y| (0..16).map(|x| u32::from(g.get(x, y))).sum::<u32>()).sum();
        let right: u32 = (0..32).map(|y| (16..32).map(|x| u32::from(g.get(x, y))).sum::<u32>()).sum();
        assert!(left > 0 && right > 0);
    }
}
