//! Visual equivalence classes: the curated cross-script homoglyph seed.
//!
//! Real fonts render the Cyrillic `о` and the Latin `o` with the *same*
//! outline — that is a property of the font, not of any confusables list.
//! SynthUnifont models it with visual classes: each member code point
//! renders as the glyph of an anchor shape plus a deterministic
//! perturbation of `dist` pixels. `dist = 0` members are pixel-identical
//! to the anchor; `dist <= 4` members fall inside the paper's SimChar
//! threshold; larger distances model characters that a human may link
//! semantically but that a pixel metric (and a careful human, per the
//! paper's Figure 11) tells apart.
//!
//! The table is curated from well-known homoglyph relationships (the same
//! knowledge the TR39 confusables file encodes) plus the specific examples
//! the paper prints in Figures 2, 5, 6, 11 and 12.

/// A member of a visual class.
#[derive(Debug, Clone, Copy)]
pub struct ClassMember {
    /// Code point that renders like the class anchor.
    pub code_point: u32,
    /// Pixel perturbation distance from the anchor glyph.
    pub dist: u8,
}

/// A visual class: an anchor (usually an ASCII letter) and the code points
/// that render like it.
#[derive(Debug, Clone, Copy)]
pub struct VisualClass {
    /// Anchor character. For intra-script classes with no ASCII anchor the
    /// anchor is the first member and renders procedurally.
    pub anchor: char,
    /// Members, excluding the anchor itself.
    pub members: &'static [ClassMember],
}

macro_rules! members {
    ($(($cp:expr, $d:expr)),* $(,)?) => {
        &[ $( ClassMember { code_point: $cp, dist: $d } ),* ]
    };
}

/// The visual class table.
#[rustfmt::skip]
pub const CLASSES: &[VisualClass] = &[
    VisualClass { anchor: 'a', members: members![
        (0x0430, 0), // CYRILLIC SMALL A
        (0x0251, 2), // LATIN SMALL ALPHA
        (0x03B1, 5), // GREEK SMALL ALPHA (distinct tail)
    ]},
    VisualClass { anchor: 'b', members: members![
        (0x0253, 2), // LATIN SMALL B WITH HOOK (paper Fig. 5)
        (0x0184, 5), // LATIN SMALL TONE SIX
        (0x042C, 7), // CYRILLIC CAPITAL SOFT SIGN (UC-style semantic pair)
    ]},
    VisualClass { anchor: 'c', members: members![
        (0x0441, 0), // CYRILLIC SMALL ES
        (0x03F2, 0), // GREEK LUNATE SIGMA
        (0x1D04, 1), // LATIN LETTER SMALL CAPITAL C
        (0x217D, 1), // SMALL ROMAN NUMERAL 100 (not PVALID)
    ]},
    VisualClass { anchor: 'd', members: members![
        (0x0501, 0), // CYRILLIC SMALL KOMI DE
        (0x0257, 2), // LATIN SMALL D WITH HOOK
        (0x0256, 3), // LATIN SMALL D WITH TAIL
        (0x217E, 1), // SMALL ROMAN NUMERAL 500 (not PVALID)
    ]},
    VisualClass { anchor: 'e', members: members![
        (0x0435, 0), // CYRILLIC SMALL IE
        (0x04BD, 3), // CYRILLIC SMALL ABKHASIAN CHE
        (0x0247, 4), // LATIN SMALL E WITH STROKE
        (0x212E, 6), // ESTIMATED SYMBOL (not PVALID)
    ]},
    VisualClass { anchor: 'f', members: members![
        (0x03DD, 3), // GREEK SMALL DIGAMMA
        (0x0192, 3), // LATIN SMALL F WITH HOOK
        (0x0584, 6), // ARMENIAN SMALL KEH (semantic only)
    ]},
    VisualClass { anchor: 'g', members: members![
        (0x0261, 0), // LATIN SMALL SCRIPT G
        (0x0581, 3), // ARMENIAN SMALL CO
        (0x018D, 4), // LATIN SMALL TURNED DELTA
    ]},
    VisualClass { anchor: 'h', members: members![
        (0x04BB, 0), // CYRILLIC SMALL SHHA
        (0x0570, 1), // ARMENIAN SMALL HO
        (0x13C2, 6), // CHEROKEE NAH (capital-form, distinct)
    ]},
    VisualClass { anchor: 'i', members: members![
        (0x0456, 0), // CYRILLIC SMALL BYELORUSSIAN-UKRAINIAN I
        (0x03B9, 2), // GREEK SMALL IOTA
        (0x0269, 2), // LATIN SMALL IOTA
        (0x0131, 2), // LATIN SMALL DOTLESS I (the gmaıl attack of Table 11)
        (0x2170, 1), // SMALL ROMAN NUMERAL ONE (not PVALID)
    ]},
    VisualClass { anchor: 'j', members: members![
        (0x0458, 0), // CYRILLIC SMALL JE
        (0x03F3, 0), // GREEK LETTER YOT
    ]},
    VisualClass { anchor: 'k', members: members![
        (0x043A, 2), // CYRILLIC SMALL KA
        (0x03BA, 2), // GREEK SMALL KAPPA
        (0x049B, 4), // CYRILLIC SMALL KA WITH DESCENDER
    ]},
    VisualClass { anchor: 'l', members: members![
        (0x04CF, 0), // CYRILLIC SMALL PALOCHKA
        (0x01C0, 0), // LATIN LETTER DENTAL CLICK
        (0x0627, 2), // ARABIC LETTER ALEF
        (0x0661, 3), // ARABIC-INDIC DIGIT ONE
        (0x06F1, 3), // EXTENDED ARABIC-INDIC DIGIT ONE
        (0x05D5, 4), // HEBREW LETTER VAV
        (0x2113, 6), // SCRIPT SMALL L (not PVALID)
    ]},
    VisualClass { anchor: 'm', members: members![
        (0x0271, 2), // LATIN SMALL M WITH HOOK
        (0x043C, 6), // CYRILLIC SMALL EM (capital-form lowercase)
        (0x217F, 1), // SMALL ROMAN NUMERAL 1000 (not PVALID)
    ]},
    VisualClass { anchor: 'n', members: members![
        (0x0578, 1), // ARMENIAN SMALL VO
        (0x057C, 2), // ARMENIAN SMALL RA
        (0x0273, 2), // LATIN SMALL N WITH RETROFLEX HOOK
        (0x043F, 5), // CYRILLIC SMALL PE (semantic)
    ]},
    VisualClass { anchor: 'o', members: members![
        (0x043E, 0), // CYRILLIC SMALL O
        (0x03BF, 0), // GREEK SMALL OMICRON
        (0x0585, 1), // ARMENIAN SMALL OH (paper Fig. 2)
        (0x0BE6, 1), // TAMIL DIGIT ZERO
        (0x0966, 1), // DEVANAGARI DIGIT ZERO
        (0x0A66, 1), // GURMUKHI DIGIT ZERO
        (0x0AE6, 1), // GUJARATI DIGIT ZERO
        (0x0B66, 1), // ORIYA DIGIT ZERO
        (0x101D, 1), // MYANMAR LETTER WA
        (0x0665, 2), // ARABIC-INDIC DIGIT FIVE
        (0x0ED0, 2), // LAO DIGIT ZERO (paper Fig. 12)
        (0x0C66, 2), // TELUGU DIGIT ZERO
        (0x0CE6, 2), // KANNADA DIGIT ZERO
        (0x0D66, 2), // MALAYALAM DIGIT ZERO
        (0x0E50, 3), // THAI DIGIT ZERO
        (0x06F5, 3), // EXTENDED ARABIC-INDIC DIGIT FIVE
        (0x3007, 3), // IDEOGRAPHIC NUMBER ZERO
        (0x04E7, 5), // CYRILLIC SMALL O WITH DIAERESIS
        (0x05E1, 5), // HEBREW LETTER SAMEKH
        (0x0D20, 5), // MALAYALAM LETTER TTHA
    ]},
    VisualClass { anchor: 'p', members: members![
        (0x0440, 0), // CYRILLIC SMALL ER
        (0x03C1, 2), // GREEK SMALL RHO
        (0x0580, 2), // ARMENIAN SMALL REH
        (0x2374, 5), // APL FUNCTIONAL SYMBOL RHO (not PVALID)
    ]},
    VisualClass { anchor: 'q', members: members![
        (0x051B, 0), // CYRILLIC SMALL QA
        (0x0563, 2), // ARMENIAN SMALL GIM
        (0x0566, 3), // ARMENIAN SMALL ZA
    ]},
    VisualClass { anchor: 'r', members: members![
        (0x0433, 2), // CYRILLIC SMALL GHE
        (0x027C, 1), // LATIN SMALL R WITH LONG LEG
        (0x0453, 4), // CYRILLIC SMALL GJE
        (0x0280, 4), // LATIN LETTER SMALL CAPITAL R
    ]},
    VisualClass { anchor: 's', members: members![
        (0x0455, 0), // CYRILLIC SMALL DZE
        (0x0282, 2), // LATIN SMALL S WITH HOOK
        (0x01BD, 4), // LATIN SMALL TONE FIVE
        (0x0586, 6), // ARMENIAN SMALL FEH (semantic)
    ]},
    VisualClass { anchor: 't', members: members![
        (0x03C4, 3), // GREEK SMALL TAU
        (0x0442, 5), // CYRILLIC SMALL TE (capital-form lowercase)
        (0x057F, 4), // ARMENIAN SMALL TIWN
    ]},
    VisualClass { anchor: 'u', members: members![
        (0x057D, 0), // ARMENIAN SMALL SEH
        (0x03C5, 1), // GREEK SMALL UPSILON
        (0x028B, 2), // LATIN SMALL V WITH HOOK
        (0x0446, 5), // CYRILLIC SMALL TSE
        (0x118D8, 8), // WARANG CITI SMALL PU (paper Fig. 11: UC pair judged distinct)
    ]},
    VisualClass { anchor: 'v', members: members![
        (0x03BD, 1), // GREEK SMALL NU
        (0x0475, 1), // CYRILLIC SMALL IZHITSA
        (0x05D8, 6), // HEBREW LETTER TET (semantic)
        (0x2174, 1), // SMALL ROMAN NUMERAL FIVE (not PVALID)
    ]},
    VisualClass { anchor: 'w', members: members![
        (0x051D, 0), // CYRILLIC SMALL WE
        (0x0461, 1), // CYRILLIC SMALL OMEGA
        (0x0561, 3), // ARMENIAN SMALL AYB
        (0x03C9, 4), // GREEK SMALL OMEGA
        (0x0448, 5), // CYRILLIC SMALL SHA
        (0x028D, 3), // LATIN SMALL TURNED W
    ]},
    VisualClass { anchor: 'x', members: members![
        (0x0445, 0), // CYRILLIC SMALL HA
        (0x03C7, 2), // GREEK SMALL CHI
        (0x04B3, 3), // CYRILLIC SMALL HA WITH DESCENDER
        (0x2179, 1), // SMALL ROMAN NUMERAL TEN (not PVALID)
    ]},
    VisualClass { anchor: 'y', members: members![
        (0x0443, 0), // CYRILLIC SMALL U
        (0x04AF, 1), // CYRILLIC SMALL STRAIGHT U
        (0x10E7, 2), // GEORGIAN LETTER QAR (paper Fig. 5)
        (0x0263, 3), // LATIN SMALL GAMMA
        (0x03B3, 4), // GREEK SMALL GAMMA
        (0x028F, 7), // LATIN SMALL CAPITAL Y (paper Fig. 11: judged distinct)
        (0x118DC, 9), // WARANG CITI SMALL HAR (paper Fig. 11: judged distinct)
    ]},
    VisualClass { anchor: 'z', members: members![
        (0x0290, 2), // LATIN SMALL Z WITH RETROFLEX HOOK
        (0x01B6, 2), // LATIN SMALL Z WITH STROKE
        (0x0396, 6), // GREEK CAPITAL ZETA (not PVALID)
    ]},
    // Digit anchors.
    VisualClass { anchor: '3', members: members![
        (0x0437, 1), // CYRILLIC SMALL ZE
        (0x04E1, 2), // CYRILLIC SMALL ABKHASIAN DZE
    ]},
    VisualClass { anchor: '6', members: members![
        (0x0431, 4), // CYRILLIC SMALL BE
    ]},
    VisualClass { anchor: '8', members: members![
        (0x0222, 4), // LATIN CAPITAL OU
    ]},
    // Intra-script classes printed in the paper's figures. The anchor is
    // the first member; it renders procedurally and the others follow it.
    VisualClass { anchor: '\u{5DE5}', members: members![
        (0x30A8, 1), // KATAKANA E — 工/エ example of §2.2
        (0x30A6, 9), // KATAKANA U (same block, distinct)
    ]},
    VisualClass { anchor: '\u{91CC}', members: members![
        (0x573C, 2), // paper Fig. 5 CJK pair
    ]},
    VisualClass { anchor: '\u{BFC8}', members: members![
        (0xBF58, 2), // paper Fig. 5 Hangul pair
    ]},
    VisualClass { anchor: '\u{0B32}', members: members![
        (0x0B33, 3), // paper Fig. 5 Oriya pair ଲ/ଳ
    ]},
    VisualClass { anchor: '\u{4E8C}', members: members![
        (0x30CB, 2), // KATAKANA NI vs CJK TWO
    ]},
    VisualClass { anchor: '\u{529B}', members: members![
        (0x30AB, 3), // KATAKANA KA vs CJK POWER
    ]},
];

/// Finds the class and member entry for a code point, if any.
pub fn lookup(cp: u32) -> Option<(&'static VisualClass, ClassMember)> {
    for class in CLASSES {
        if class.anchor as u32 == cp {
            return Some((class, ClassMember { code_point: cp, dist: 0 }));
        }
        for &m in class.members {
            if m.code_point == cp {
                return Some((class, m));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lookup_finds_members_and_anchors() {
        let (class, m) = lookup(0x0430).unwrap(); // Cyrillic a
        assert_eq!(class.anchor, 'a');
        assert_eq!(m.dist, 0);

        let (class, m) = lookup('o' as u32).unwrap();
        assert_eq!(class.anchor, 'o');
        assert_eq!(m.dist, 0);

        assert!(lookup(0x4E00).is_none());
    }

    #[test]
    fn paper_figure_examples_present() {
        assert_eq!(lookup(0x0585).unwrap().0.anchor, 'o'); // Fig. 2
        assert_eq!(lookup(0x0ED0).unwrap().0.anchor, 'o'); // Fig. 12
        assert_eq!(lookup(0x30A8).unwrap().0.anchor, '工'); // §2.2
        assert_eq!(lookup(0x10E7).unwrap().0.anchor, 'y'); // Fig. 5
        assert_eq!(lookup(0x118D8).unwrap().0.anchor, 'u'); // Fig. 11
        assert_eq!(lookup(0x118DC).unwrap().0.anchor, 'y'); // Fig. 11
        assert_eq!(lookup(0x0B33).unwrap().0.anchor, '\u{0B32}'); // Fig. 5
    }

    #[test]
    fn figure11_pairs_are_outside_simchar_threshold() {
        // The paper's least-confusable UC pairs must have dist > 4 so the
        // pixel metric excludes them from SimChar.
        for cp in [0x118D8u32, 0x118DC, 0x028F] {
            assert!(lookup(cp).unwrap().1.dist > 4, "U+{cp:04X}");
        }
    }

    #[test]
    fn no_code_point_in_two_classes() {
        let mut seen = HashSet::new();
        for class in CLASSES {
            assert!(seen.insert(class.anchor as u32), "anchor {:?} duplicated", class.anchor);
            for m in class.members {
                assert!(seen.insert(m.code_point), "U+{:04X} duplicated", m.code_point);
            }
        }
    }

    #[test]
    fn o_class_is_largest_latin_class() {
        // Table 3: 'o' is the most vulnerable letter.
        let o_len = lookup('o' as u32).unwrap().0.members.len();
        for c in 'a'..='z' {
            if c == 'o' {
                continue;
            }
            if let Some((class, _)) = lookup(c as u32) {
                assert!(class.members.len() <= o_len, "{c} class larger than o");
            }
        }
    }

    #[test]
    fn dist_zero_members_exist_for_core_spoof_letters() {
        // The classic phishing letters must have at least one perfect twin.
        for c in ['a', 'c', 'e', 'o', 'p', 's', 'x', 'y'] {
            let (class, _) = lookup(c as u32).unwrap();
            assert!(
                class.members.iter().any(|m| m.dist == 0),
                "{c} has no dist-0 member"
            );
        }
    }
}
