//! Bitmap glyph substrate for the ShamFinder reproduction.
//!
//! The paper renders every IDNA-permitted character with GNU Unifont and
//! compares 32×32 binary images by pixel difference (Δ). That font is not
//! available offline, so this crate provides **SynthUnifont**: a fully
//! deterministic, procedural bitmap font with the same *structure* — see
//! `DESIGN.md` §3 for the substitution argument and [`font`] for the
//! dispatch rules.
//!
//! The crate also implements the paper's image metrics (Δ, MSE, PSNR) plus
//! SSIM for the ablation benches.
//!
//! # Example
//!
//! ```
//! use sham_glyph::{GlyphSource, SynthUnifont, metrics};
//! use sham_unicode::CodePoint;
//!
//! let font = SynthUnifont::v12();
//! let latin_o = font.glyph(CodePoint::from('o')).unwrap();
//! let cyr_o = font.glyph(CodePoint::from('о')).unwrap(); // U+043E
//! assert_eq!(metrics::delta(&latin_o, &cyr_o), 0); // pixel-identical
//! ```

pub mod banner;
pub mod bitmap;
pub mod diacritics;
pub mod font;
pub mod font8x8;
pub mod metrics;
pub mod prng;
pub mod scriptgen;
pub mod visual;

pub use banner::{render as render_banner, Banner};
pub use bitmap::{Bitmap, SIZE};
pub use font::{FontVersion, GlyphSource, SynthUnifont};
pub use metrics::{delta, mse, psnr, ssim};
