//! Diacritic composition for accented Latin letters.
//!
//! SimChar's most important finding for Latin targets (paper Table 3) is
//! that *accented* variants dominate the homoglyphs of letters like `o`
//! and `e`: at 32×32, an acute or a dot above changes only a few pixels.
//! SynthUnifont therefore renders `é` as the `e` base glyph plus an accent
//! drawn at fine resolution. Accent ink sizes are chosen so that the small
//! marks (acute, grave, dot, macron, cedilla, …) fall at Δ ≤ 4 — inside
//! the paper's threshold — while bulkier marks (diaeresis, ring, tilde,
//! circumflex) fall outside, giving the same in/out split the paper's
//! Figure 6 illustrates.

use crate::bitmap::Bitmap;

/// Diacritical marks the composer can draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Accent {
    Acute,
    Grave,
    Circumflex,
    Tilde,
    Diaeresis,
    RingAbove,
    Macron,
    Breve,
    DotAbove,
    DoubleAcute,
    Caron,
    Cedilla,
    Ogonek,
    DotBelow,
    Stroke,
    HookAbove,
    Horn,
}

impl Accent {
    /// Approximate ink cost in pixels (the Δ an accent contributes when
    /// added to an unaccented base glyph). Small marks (acute, dots,
    /// diaeresis, macron, cedilla, …) cost ≤ 4 pixels and land inside the
    /// paper's θ = 4 — which is how SimChar ends up listing the accented
    /// variants that dominate Table 3 (and why the paper's Table 11 could
    /// flag `döviz`). Bulkier marks (circumflex, tilde, ring, caron, …)
    /// stay outside.
    pub fn ink(self) -> u32 {
        match self {
            Accent::Acute | Accent::Grave => 3,
            Accent::DotAbove | Accent::Macron | Accent::Cedilla | Accent::Ogonek
            | Accent::DotBelow | Accent::HookAbove | Accent::Diaeresis => 4,
            Accent::Stroke => 4,
            Accent::Breve | Accent::Circumflex | Accent::Caron | Accent::Horn
            | Accent::Tilde => 5,
            Accent::DoubleAcute | Accent::RingAbove => 6,
        }
    }
}

/// Where the base letter sits on the 32×32 canvas: the 8×8 base glyph is
/// upscaled ×3 to 24×24 and placed at this offset, leaving headroom for
/// marks above (rows 0..4) and below (rows 29..31).
pub const BASE_OFFSET_X: usize = 4;
/// See [`BASE_OFFSET_X`].
pub const BASE_OFFSET_Y: usize = 5;
/// Upscale factor for the 8×8 base font.
pub const BASE_SCALE: usize = 3;

/// Draws `accent` onto `bmp`. `cx` is the horizontal centre of the letter
/// (usually 14–16). Above-marks land in rows 0..=4, below-marks in rows
/// 29..=31, overlay marks strike through the letter body.
pub fn draw_accent(bmp: &mut Bitmap, accent: Accent, cx: usize) {
    let ink = |bmp: &mut Bitmap, pts: &[(i32, i32)]| {
        for &(dx, dy) in pts {
            let x = cx as i32 + dx;
            let y = dy;
            if x >= 0 && y >= 0 {
                bmp.set(x as usize, y as usize, true);
            }
        }
    };
    match accent {
        Accent::Acute => ink(bmp, &[(0, 3), (1, 2), (2, 1)]),
        Accent::Grave => ink(bmp, &[(0, 3), (-1, 2), (-2, 1)]),
        Accent::Circumflex => ink(bmp, &[(-2, 3), (-1, 2), (0, 1), (1, 2), (2, 3)]),
        Accent::Tilde => ink(bmp, &[(-3, 3), (-2, 2), (-1, 2), (0, 3), (1, 2)]),
        Accent::Diaeresis => ink(bmp, &[(-3, 2), (-2, 2), (2, 2), (3, 2)]),
        Accent::RingAbove => {
            ink(bmp, &[(-1, 0), (0, 0), (-2, 1), (1, 1), (-1, 3), (0, 3)])
        }
        Accent::Macron => ink(bmp, &[(-2, 2), (-1, 2), (0, 2), (1, 2)]),
        Accent::Breve => ink(bmp, &[(-2, 1), (-2, 2), (-1, 3), (0, 3), (1, 2)]),
        Accent::DotAbove => ink(bmp, &[(-1, 1), (0, 1), (-1, 2), (0, 2)]),
        Accent::DoubleAcute => ink(bmp, &[(-2, 3), (-1, 2), (0, 1), (1, 3), (2, 2), (3, 1)]),
        Accent::Caron => ink(bmp, &[(-2, 1), (-1, 2), (0, 3), (1, 2), (2, 1)]),
        Accent::HookAbove => ink(bmp, &[(0, 0), (1, 1), (1, 2), (0, 3)]),
        // Below-marks: rows 29..=31.
        Accent::Cedilla => ink(bmp, &[(0, 29), (1, 30), (0, 31), (-1, 31)]),
        Accent::Ogonek => ink(bmp, &[(1, 29), (0, 30), (1, 31), (2, 31)]),
        Accent::DotBelow => ink(bmp, &[(-1, 29), (0, 29), (-1, 30), (0, 30)]),
        // Overlay marks: strike through the letter body. Drawn as a short
        // diagonal near the centre; some pixels may already be ink, so the
        // effective Δ is at most 4.
        Accent::Stroke => ink(bmp, &[(-3, 15), (-2, 14), (2, 13), (3, 12)]),
        Accent::Horn => ink(bmp, &[(4, 8), (5, 7), (5, 6), (4, 5), (5, 9)]),
    }
}

/// A decomposition entry: an accented code point, its ASCII base letter,
/// and the accents to draw.
#[derive(Debug, Clone, Copy)]
pub struct Decomposition {
    /// The accented code point.
    pub code_point: u32,
    /// ASCII base letter whose glyph is reused.
    pub base: char,
    /// Accent drawn above/below/through the base.
    pub accent: Accent,
}

/// Exact decomposition table for Latin-1 Supplement letters.
#[rustfmt::skip]
pub const LATIN1: &[Decomposition] = &[
    // Uppercase.
    Decomposition { code_point: 0x00C0, base: 'A', accent: Accent::Grave },
    Decomposition { code_point: 0x00C1, base: 'A', accent: Accent::Acute },
    Decomposition { code_point: 0x00C2, base: 'A', accent: Accent::Circumflex },
    Decomposition { code_point: 0x00C3, base: 'A', accent: Accent::Tilde },
    Decomposition { code_point: 0x00C4, base: 'A', accent: Accent::Diaeresis },
    Decomposition { code_point: 0x00C5, base: 'A', accent: Accent::RingAbove },
    Decomposition { code_point: 0x00C7, base: 'C', accent: Accent::Cedilla },
    Decomposition { code_point: 0x00C8, base: 'E', accent: Accent::Grave },
    Decomposition { code_point: 0x00C9, base: 'E', accent: Accent::Acute },
    Decomposition { code_point: 0x00CA, base: 'E', accent: Accent::Circumflex },
    Decomposition { code_point: 0x00CB, base: 'E', accent: Accent::Diaeresis },
    Decomposition { code_point: 0x00CC, base: 'I', accent: Accent::Grave },
    Decomposition { code_point: 0x00CD, base: 'I', accent: Accent::Acute },
    Decomposition { code_point: 0x00CE, base: 'I', accent: Accent::Circumflex },
    Decomposition { code_point: 0x00CF, base: 'I', accent: Accent::Diaeresis },
    Decomposition { code_point: 0x00D1, base: 'N', accent: Accent::Tilde },
    Decomposition { code_point: 0x00D2, base: 'O', accent: Accent::Grave },
    Decomposition { code_point: 0x00D3, base: 'O', accent: Accent::Acute },
    Decomposition { code_point: 0x00D4, base: 'O', accent: Accent::Circumflex },
    Decomposition { code_point: 0x00D5, base: 'O', accent: Accent::Tilde },
    Decomposition { code_point: 0x00D6, base: 'O', accent: Accent::Diaeresis },
    Decomposition { code_point: 0x00D8, base: 'O', accent: Accent::Stroke },
    Decomposition { code_point: 0x00D9, base: 'U', accent: Accent::Grave },
    Decomposition { code_point: 0x00DA, base: 'U', accent: Accent::Acute },
    Decomposition { code_point: 0x00DB, base: 'U', accent: Accent::Circumflex },
    Decomposition { code_point: 0x00DC, base: 'U', accent: Accent::Diaeresis },
    Decomposition { code_point: 0x00DD, base: 'Y', accent: Accent::Acute },
    // Lowercase (the PVALID half that matters for SimChar).
    Decomposition { code_point: 0x00E0, base: 'a', accent: Accent::Grave },
    Decomposition { code_point: 0x00E1, base: 'a', accent: Accent::Acute },
    Decomposition { code_point: 0x00E2, base: 'a', accent: Accent::Circumflex },
    Decomposition { code_point: 0x00E3, base: 'a', accent: Accent::Tilde },
    Decomposition { code_point: 0x00E4, base: 'a', accent: Accent::Diaeresis },
    Decomposition { code_point: 0x00E5, base: 'a', accent: Accent::RingAbove },
    Decomposition { code_point: 0x00E7, base: 'c', accent: Accent::Cedilla },
    Decomposition { code_point: 0x00E8, base: 'e', accent: Accent::Grave },
    Decomposition { code_point: 0x00E9, base: 'e', accent: Accent::Acute },
    Decomposition { code_point: 0x00EA, base: 'e', accent: Accent::Circumflex },
    Decomposition { code_point: 0x00EB, base: 'e', accent: Accent::Diaeresis },
    Decomposition { code_point: 0x00EC, base: 'i', accent: Accent::Grave },
    Decomposition { code_point: 0x00ED, base: 'i', accent: Accent::Acute },
    Decomposition { code_point: 0x00EE, base: 'i', accent: Accent::Circumflex },
    Decomposition { code_point: 0x00EF, base: 'i', accent: Accent::Diaeresis },
    Decomposition { code_point: 0x00F1, base: 'n', accent: Accent::Tilde },
    Decomposition { code_point: 0x00F2, base: 'o', accent: Accent::Grave },
    Decomposition { code_point: 0x00F3, base: 'o', accent: Accent::Acute },
    Decomposition { code_point: 0x00F4, base: 'o', accent: Accent::Circumflex },
    Decomposition { code_point: 0x00F5, base: 'o', accent: Accent::Tilde },
    Decomposition { code_point: 0x00F6, base: 'o', accent: Accent::Diaeresis },
    Decomposition { code_point: 0x00F8, base: 'o', accent: Accent::Stroke },
    Decomposition { code_point: 0x00F9, base: 'u', accent: Accent::Grave },
    Decomposition { code_point: 0x00FA, base: 'u', accent: Accent::Acute },
    Decomposition { code_point: 0x00FB, base: 'u', accent: Accent::Circumflex },
    Decomposition { code_point: 0x00FC, base: 'u', accent: Accent::Diaeresis },
    Decomposition { code_point: 0x00FD, base: 'y', accent: Accent::Acute },
    Decomposition { code_point: 0x00FF, base: 'y', accent: Accent::Diaeresis },
];

/// Latin Extended-A: each entry covers an (uppercase, lowercase) pair at
/// consecutive code points — `(first_code_point, base_upper, base_lower,
/// accent)`. This is the published decomposition of the block.
#[rustfmt::skip]
const EXT_A_PAIRS: &[(u32, char, Accent)] = &[
    (0x0100, 'a', Accent::Macron), (0x0102, 'a', Accent::Breve), (0x0104, 'a', Accent::Ogonek),
    (0x0106, 'c', Accent::Acute), (0x0108, 'c', Accent::Circumflex), (0x010A, 'c', Accent::DotAbove),
    (0x010C, 'c', Accent::Caron), (0x010E, 'd', Accent::Caron), (0x0110, 'd', Accent::Stroke),
    (0x0112, 'e', Accent::Macron), (0x0114, 'e', Accent::Breve), (0x0116, 'e', Accent::DotAbove),
    (0x0118, 'e', Accent::Ogonek), (0x011A, 'e', Accent::Caron), (0x011C, 'g', Accent::Circumflex),
    (0x011E, 'g', Accent::Breve), (0x0120, 'g', Accent::DotAbove), (0x0122, 'g', Accent::Cedilla),
    (0x0124, 'h', Accent::Circumflex), (0x0126, 'h', Accent::Stroke), (0x0128, 'i', Accent::Tilde),
    (0x012A, 'i', Accent::Macron), (0x012C, 'i', Accent::Breve), (0x012E, 'i', Accent::Ogonek),
    (0x0134, 'j', Accent::Circumflex), (0x0136, 'k', Accent::Cedilla),
    (0x0139, 'l', Accent::Acute), (0x013B, 'l', Accent::Cedilla), (0x013D, 'l', Accent::Caron),
    (0x0141, 'l', Accent::Stroke), (0x0143, 'n', Accent::Acute), (0x0145, 'n', Accent::Cedilla),
    (0x0147, 'n', Accent::Caron), (0x014C, 'o', Accent::Macron), (0x014E, 'o', Accent::Breve),
    (0x0150, 'o', Accent::DoubleAcute), (0x0154, 'r', Accent::Acute), (0x0156, 'r', Accent::Cedilla),
    (0x0158, 'r', Accent::Caron), (0x015A, 's', Accent::Acute), (0x015C, 's', Accent::Circumflex),
    (0x015E, 's', Accent::Cedilla), (0x0160, 's', Accent::Caron), (0x0162, 't', Accent::Cedilla),
    (0x0164, 't', Accent::Caron), (0x0166, 't', Accent::Stroke), (0x0168, 'u', Accent::Tilde),
    (0x016A, 'u', Accent::Macron), (0x016C, 'u', Accent::Breve), (0x016E, 'u', Accent::RingAbove),
    (0x0170, 'u', Accent::DoubleAcute), (0x0172, 'u', Accent::Ogonek), (0x0174, 'w', Accent::Circumflex),
    (0x0176, 'y', Accent::Circumflex), (0x0179, 'z', Accent::Acute), (0x017B, 'z', Accent::DotAbove),
    (0x017D, 'z', Accent::Caron),
];

/// Vietnamese-range bases in Latin Extended Additional (real block
/// structure: runs of a/e/i/o/u/y with stacked accents).
const VIETNAMESE_RUNS: &[(u32, u32, char)] = &[
    (0x1EA0, 0x1EB7, 'a'),
    (0x1EB8, 0x1EC7, 'e'),
    (0x1EC8, 0x1ECB, 'i'),
    (0x1ECC, 0x1EE3, 'o'),
    (0x1EE4, 0x1EF1, 'u'),
    (0x1EF2, 0x1EF9, 'y'),
];

/// Accent cycle used for the approximated parts of Latin Extended
/// Additional (see DESIGN.md §3 on approximations).
const EXT_ADDITIONAL_ACCENTS: &[Accent] = &[
    Accent::DotBelow,
    Accent::Acute,
    Accent::Grave,
    Accent::HookAbove,
    Accent::Tilde,
    Accent::Macron,
    Accent::DotAbove,
    Accent::Breve,
];

/// Looks up the decomposition of `cp`, if this module models it.
pub fn decompose(cp: u32) -> Option<Decomposition> {
    if let Some(&d) = LATIN1.iter().find(|d| d.code_point == cp) {
        return Some(d);
    }
    // Latin Extended-A pairs: even offset = uppercase, odd = lowercase.
    if (0x0100..=0x017E).contains(&cp) {
        for &(start, base, accent) in EXT_A_PAIRS {
            if cp == start {
                return Some(Decomposition {
                    code_point: cp,
                    base: base.to_ascii_uppercase(),
                    accent,
                });
            }
            if cp == start + 1 {
                return Some(Decomposition { code_point: cp, base, accent });
            }
        }
        return None;
    }
    // Latin Extended Additional.
    if (0x1E00..=0x1EFF).contains(&cp) {
        let lower_base = VIETNAMESE_RUNS
            .iter()
            .find(|&&(lo, hi, _)| (lo..=hi).contains(&cp))
            .map(|&(_, _, b)| b)
            .or_else(|| {
                // 0x1E00..0x1E9F: bases advance roughly every 6 points
                // through the consonant alphabet (approximation).
                const BASES: &[char] = &[
                    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'k', 'l', 'm', 'n', 'o', 'p',
                    'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z',
                ];
                if cp < 0x1EA0 {
                    Some(BASES[((cp - 0x1E00) / 6) as usize % BASES.len()])
                } else {
                    None
                }
            })?;
        let accent = EXT_ADDITIONAL_ACCENTS[(cp % EXT_ADDITIONAL_ACCENTS.len() as u32) as usize];
        // Even code points in this block are uppercase, odd lowercase —
        // true for 0x1E00..0x1E95 and for the Vietnamese range.
        let base = if cp.is_multiple_of(2) { lower_base.to_ascii_uppercase() } else { lower_base };
        return Some(Decomposition { code_point: cp, base, accent });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::Bitmap;

    #[test]
    fn latin1_lookups() {
        let d = decompose(0xE9).unwrap(); // é
        assert_eq!(d.base, 'e');
        assert_eq!(d.accent, Accent::Acute);
        let d = decompose(0xE7).unwrap(); // ç
        assert_eq!(d.base, 'c');
        assert_eq!(d.accent, Accent::Cedilla);
        assert!(decompose(0xE6).is_none()); // æ has no single base
        assert!(decompose(0xDF).is_none()); // ß
    }

    #[test]
    fn ext_a_case_pairing() {
        let upper = decompose(0x0100).unwrap(); // Ā
        let lower = decompose(0x0101).unwrap(); // ā
        assert_eq!(upper.base, 'A');
        assert_eq!(lower.base, 'a');
        assert_eq!(upper.accent, Accent::Macron);
        assert_eq!(lower.accent, Accent::Macron);
        // š
        let s_caron = decompose(0x0161).unwrap();
        assert_eq!(s_caron.base, 's');
        assert_eq!(s_caron.accent, Accent::Caron);
    }

    #[test]
    fn vietnamese_runs_have_right_bases() {
        assert_eq!(decompose(0x1EA1).unwrap().base, 'a'); // ạ
        assert_eq!(decompose(0x1EC9).unwrap().base, 'i'); // ỉ
        assert_eq!(decompose(0x1ED3).unwrap().base, 'o');
        assert_eq!(decompose(0x1EF3).unwrap().base, 'y');
    }

    #[test]
    fn accent_ink_cost_matches_drawn_pixels() {
        // Drawn on an empty canvas, above-marks must cost exactly ink().
        for accent in [
            Accent::Acute,
            Accent::Grave,
            Accent::Circumflex,
            Accent::Tilde,
            Accent::Diaeresis,
            Accent::RingAbove,
            Accent::Macron,
            Accent::Breve,
            Accent::DotAbove,
            Accent::DoubleAcute,
            Accent::Caron,
            Accent::Cedilla,
            Accent::Ogonek,
            Accent::DotBelow,
            Accent::HookAbove,
        ] {
            let mut b = Bitmap::empty();
            draw_accent(&mut b, accent, 15);
            assert_eq!(b.popcount(), accent.ink(), "{accent:?}");
        }
    }

    #[test]
    fn small_accents_fall_within_threshold() {
        // The Δ ≤ 4 split that drives Table 3.
        assert!(Accent::Acute.ink() <= 4);
        assert!(Accent::DotAbove.ink() <= 4);
        assert!(Accent::Macron.ink() <= 4);
        assert!(Accent::Cedilla.ink() <= 4);
        assert!(Accent::Diaeresis.ink() <= 4); // ö/ä/ü are SimChar pairs
        assert!(Accent::Tilde.ink() > 4);
        assert!(Accent::Circumflex.ink() > 4);
        assert!(Accent::RingAbove.ink() > 4);
    }

    #[test]
    fn above_marks_stay_in_headroom() {
        for accent in [Accent::Acute, Accent::Circumflex, Accent::Diaeresis, Accent::RingAbove] {
            let mut b = Bitmap::empty();
            draw_accent(&mut b, accent, 15);
            for y in 5..29 {
                for x in 0..32 {
                    assert!(!b.get(x, y), "{accent:?} leaked into letter area at ({x},{y})");
                }
            }
        }
    }
}
