//! Fixed 32×32 binary bitmap — the glyph representation of the paper.
//!
//! The paper renders every character as a 32×32 black-and-white image
//! (§3.3 Step I) and compares images by counting differing pixels. A
//! bitmap is stored as one `u32` per row, so the Δ metric is 32 XORs and
//! popcounts.

use serde::{Deserialize, Serialize};

/// Side length of every glyph bitmap.
pub const SIZE: usize = 32;

/// A 32×32 binary image. Bit `x` of `rows[y]` is the pixel at column `x`,
/// row `y`; 1 = black (ink), 0 = white.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bitmap {
    rows: [u32; SIZE],
}

impl Default for Bitmap {
    fn default() -> Self {
        Bitmap::empty()
    }
}

impl Bitmap {
    /// The all-white bitmap.
    pub const fn empty() -> Self {
        Bitmap { rows: [0; SIZE] }
    }

    /// Builds a bitmap from raw row data.
    pub const fn from_rows(rows: [u32; SIZE]) -> Self {
        Bitmap { rows }
    }

    /// Raw row data.
    pub fn rows(&self) -> &[u32; SIZE] {
        &self.rows
    }

    /// Reads pixel `(x, y)`. Out-of-range coordinates read as white.
    pub fn get(&self, x: usize, y: usize) -> bool {
        if x >= SIZE || y >= SIZE {
            return false;
        }
        (self.rows[y] >> x) & 1 == 1
    }

    /// Sets pixel `(x, y)` to `ink`. Out-of-range coordinates are ignored,
    /// so shape-drawing code may overhang the canvas safely.
    pub fn set(&mut self, x: usize, y: usize, ink: bool) {
        if x >= SIZE || y >= SIZE {
            return;
        }
        if ink {
            self.rows[y] |= 1 << x;
        } else {
            self.rows[y] &= !(1 << x);
        }
    }

    /// Flips pixel `(x, y)`, returning the new value.
    pub fn toggle(&mut self, x: usize, y: usize) -> bool {
        if x >= SIZE || y >= SIZE {
            return false;
        }
        self.rows[y] ^= 1 << x;
        self.get(x, y)
    }

    /// Number of black pixels. Step III of the SimChar construction
    /// eliminates "sparse" glyphs with fewer than 10 black pixels.
    pub fn popcount(&self) -> u32 {
        self.rows.iter().map(|r| r.count_ones()).sum()
    }

    /// Pixel-difference metric Δ between two bitmaps (paper §3.3):
    /// the number of positions where the images disagree.
    pub fn delta(&self, other: &Bitmap) -> u32 {
        self.rows
            .iter()
            .zip(other.rows.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Δ with a cap: `Some(delta)` when `delta(self, other) <= cap`,
    /// `None` otherwise — bailing out of the row scan as soon as the
    /// running XOR popcount exceeds `cap`. In a Step II sweep almost
    /// every compared pair blows far past θ within the first few rows,
    /// so the capped form touches a fraction of the 32 rows the full
    /// metric always walks.
    pub fn delta_capped(&self, other: &Bitmap, cap: u32) -> Option<u32> {
        let mut d = 0u32;
        for (a, b) in self.rows.iter().zip(other.rows.iter()) {
            d += (a ^ b).count_ones();
            if d > cap {
                return None;
            }
        }
        Some(d)
    }

    /// Merges another bitmap into this one (ink union).
    pub fn union_with(&mut self, other: &Bitmap) {
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            *a |= b;
        }
    }

    /// Draws `other` offset by `(dx, dy)` pixels (may be negative);
    /// pixels falling outside the canvas are clipped.
    pub fn blit(&mut self, other: &Bitmap, dx: i32, dy: i32) {
        for y in 0..SIZE {
            let ty = y as i32 + dy;
            if !(0..SIZE as i32).contains(&ty) {
                continue;
            }
            let row = other.rows[y];
            let shifted = if dx >= 0 {
                (row as u64) << dx
            } else {
                (row as u64) >> (-dx)
            };
            self.rows[ty as usize] |= (shifted & 0xFFFF_FFFF) as u32;
        }
    }

    /// Nearest-neighbour upscale of an 8×8 source (stored in the top-left
    /// corner) by an integer factor, placed at `(ox, oy)`.
    pub fn upscale_8x8(src: &[u8; 8], factor: usize, ox: usize, oy: usize) -> Bitmap {
        let mut out = Bitmap::empty();
        for (sy, byte) in src.iter().enumerate() {
            for sx in 0..8 {
                if (byte >> sx) & 1 == 1 {
                    for fy in 0..factor {
                        for fx in 0..factor {
                            out.set(ox + sx * factor + fx, oy + sy * factor + fy, true);
                        }
                    }
                }
            }
        }
        out
    }

    /// Splits the bitmap into `n` horizontal bands and hashes each band's
    /// exact content. If `delta(a, b) <= n - 1`, the pigeonhole principle
    /// guarantees at least one band with zero differing pixels, i.e. one
    /// equal hash — the exact-candidate property the banded pair index in
    /// `sham-simchar` relies on.
    pub fn band_signatures(&self, n: usize) -> Vec<u64> {
        assert!((1..=SIZE).contains(&n));
        let mut out = Vec::with_capacity(n);
        let base = SIZE / n;
        let extra = SIZE % n;
        let mut row = 0usize;
        for band in 0..n {
            let height = base + usize::from(band < extra);
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for _ in 0..height {
                h ^= self.rows[row] as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
                // Mix the row index so an empty band in a different
                // position hashes differently.
                h ^= row as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
                row += 1;
            }
            out.push(h);
        }
        debug_assert_eq!(row, SIZE);
        out
    }

    /// Renders the bitmap as ASCII art, `#` for ink (Figures 5–7 output).
    pub fn ascii_art(&self) -> String {
        let mut s = String::with_capacity(SIZE * (SIZE + 1));
        for y in 0..SIZE {
            for x in 0..SIZE {
                s.push(if self.get(x, y) { '#' } else { '.' });
            }
            s.push('\n');
        }
        s
    }

    /// Renders two bitmaps side by side with a gutter (for figure output).
    pub fn ascii_art_pair(a: &Bitmap, b: &Bitmap) -> String {
        let mut s = String::new();
        for y in 0..SIZE {
            for x in 0..SIZE {
                s.push(if a.get(x, y) { '#' } else { '.' });
            }
            s.push_str("   ");
            for x in 0..SIZE {
                s.push(if b.get(x, y) { '#' } else { '.' });
            }
            s.push('\n');
        }
        s
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bitmap({} px)", self.popcount())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut b = Bitmap::empty();
        assert!(!b.get(5, 7));
        b.set(5, 7, true);
        assert!(b.get(5, 7));
        b.set(5, 7, false);
        assert!(!b.get(5, 7));
    }

    #[test]
    fn out_of_range_is_clipped() {
        let mut b = Bitmap::empty();
        b.set(32, 0, true);
        b.set(0, 32, true);
        assert_eq!(b.popcount(), 0);
        assert!(!b.get(100, 100));
    }

    #[test]
    fn popcount_counts_ink() {
        let mut b = Bitmap::empty();
        for i in 0..10 {
            b.set(i, i, true);
        }
        assert_eq!(b.popcount(), 10);
    }

    #[test]
    fn delta_is_symmetric_and_zero_on_identity() {
        let mut a = Bitmap::empty();
        let mut b = Bitmap::empty();
        a.set(1, 1, true);
        a.set(2, 2, true);
        b.set(2, 2, true);
        b.set(3, 3, true);
        assert_eq!(a.delta(&a), 0);
        assert_eq!(a.delta(&b), b.delta(&a));
        assert_eq!(a.delta(&b), 2);
    }

    #[test]
    fn delta_equals_popcount_against_empty() {
        let mut a = Bitmap::empty();
        for i in 0..17 {
            a.set(i % 32, (i * 7) % 32, true);
        }
        assert_eq!(a.delta(&Bitmap::empty()), a.popcount());
    }

    #[test]
    fn delta_capped_agrees_with_delta_under_the_cap() {
        let mut a = Bitmap::empty();
        let mut b = Bitmap::empty();
        for i in 0..12 {
            a.set(i, (i * 5) % 32, true);
            if i % 2 == 0 {
                b.set(i, (i * 5) % 32, true);
            }
        }
        let full = a.delta(&b);
        assert_eq!(a.delta_capped(&b, full), Some(full));
        assert_eq!(a.delta_capped(&b, full + 3), Some(full));
        assert_eq!(a.delta_capped(&b, full - 1), None);
        assert_eq!(a.delta_capped(&a, 0), Some(0));
    }

    #[test]
    fn delta_capped_exits_early_on_distant_pairs() {
        // All differences in row 0: the cap must trip on the first row.
        let mut a = Bitmap::empty();
        for x in 0..20 {
            a.set(x, 0, true);
        }
        assert_eq!(a.delta_capped(&Bitmap::empty(), 4), None);
        assert_eq!(a.delta_capped(&Bitmap::empty(), 20), Some(20));
    }

    #[test]
    fn toggle_flips() {
        let mut b = Bitmap::empty();
        assert!(b.toggle(4, 4));
        assert!(!b.toggle(4, 4));
    }

    #[test]
    fn blit_with_offsets_clips() {
        let mut src = Bitmap::empty();
        src.set(0, 0, true);
        src.set(31, 31, true);
        let mut dst = Bitmap::empty();
        dst.blit(&src, 1, 1);
        assert!(dst.get(1, 1));
        assert_eq!(dst.popcount(), 1); // (31,31) clipped off

        let mut dst2 = Bitmap::empty();
        dst2.blit(&src, -1, -1);
        assert!(dst2.get(30, 30));
        assert_eq!(dst2.popcount(), 1);
    }

    #[test]
    fn upscale_preserves_area_scaling() {
        let mut src = [0u8; 8];
        src[0] = 0b0000_0011; // two pixels
        let up = Bitmap::upscale_8x8(&src, 3, 0, 0);
        assert_eq!(up.popcount(), 2 * 9);
        assert!(up.get(0, 0) && up.get(2, 2) && up.get(3, 0) && up.get(5, 2));
        assert!(!up.get(6, 0));
    }

    #[test]
    fn band_signature_pigeonhole_property() {
        // If delta <= bands-1, at least one band hash must match.
        let mut a = Bitmap::empty();
        for i in 0..40 {
            a.set((i * 3) % 32, (i * 11) % 32, true);
        }
        let mut b = a;
        // Flip 4 pixels.
        for i in 0..4 {
            b.toggle(i, i * 5 + 1);
        }
        assert!(a.delta(&b) <= 4);
        let sa = a.band_signatures(5);
        let sb = b.band_signatures(5);
        assert!(sa.iter().zip(&sb).any(|(x, y)| x == y));
    }

    #[test]
    fn band_signatures_distinguish_band_position() {
        let mut a = Bitmap::empty();
        a.set(0, 0, true);
        let mut b = Bitmap::empty();
        b.set(0, 31, true);
        let sa = a.band_signatures(5);
        let sb = b.band_signatures(5);
        assert_ne!(sa[0], sb[0]);
        assert_ne!(sa[4], sb[4]);
    }

    #[test]
    fn ascii_art_dimensions() {
        let art = Bitmap::empty().ascii_art();
        assert_eq!(art.lines().count(), 32);
        assert!(art.lines().all(|l| l.chars().count() == 32));
    }

    #[test]
    fn union_with_is_ink_or() {
        let mut a = Bitmap::empty();
        a.set(0, 0, true);
        let mut b = Bitmap::empty();
        b.set(1, 1, true);
        a.union_with(&b);
        assert!(a.get(0, 0) && a.get(1, 1));
        assert_eq!(a.popcount(), 2);
    }
}
