//! Image-similarity metrics over binary glyph bitmaps.
//!
//! The paper's primary metric is the raw pixel difference Δ, chosen over
//! perceptual metrics because the goal is detecting *identical-looking*
//! glyphs, not grading degradation (§3.3). For the paper's side
//! discussion — and for the `delta_vs_ssim` ablation bench — this module
//! also implements MSE, PSNR and a full windowed SSIM.

use crate::bitmap::{Bitmap, SIZE};

/// Pixel-difference metric Δ (paper §3.3).
pub fn delta(a: &Bitmap, b: &Bitmap) -> u32 {
    a.delta(b)
}

/// Mean squared error. For binary images `MSE = Δ / N²` (paper §3.3).
pub fn mse(a: &Bitmap, b: &Bitmap) -> f64 {
    f64::from(a.delta(b)) / ((SIZE * SIZE) as f64)
}

/// Peak signal-to-noise ratio in dB:
/// `PSNR = 20·log10(N) − 10·log10(Δ)` (paper §3.3).
///
/// Returns `f64::INFINITY` for identical images (Δ = 0).
pub fn psnr(a: &Bitmap, b: &Bitmap) -> f64 {
    let d = a.delta(b);
    if d == 0 {
        return f64::INFINITY;
    }
    20.0 * (SIZE as f64).log10() - 10.0 * f64::from(d).log10()
}

/// Structural similarity index, computed over sliding 8×8 windows with
/// stride 4 and averaged, with the standard stabilisation constants for a
/// dynamic range of 1.0.
///
/// SSIM is in `[-1, 1]`; 1 means identical.
pub fn ssim(a: &Bitmap, b: &Bitmap) -> f64 {
    const WIN: usize = 8;
    const STRIDE: usize = 4;
    const C1: f64 = 0.01 * 0.01; // (K1·L)², L = 1
    const C2: f64 = 0.03 * 0.03;

    let mut total = 0.0;
    let mut windows = 0usize;
    let mut wy = 0;
    while wy + WIN <= SIZE {
        let mut wx = 0;
        while wx + WIN <= SIZE {
            let n = (WIN * WIN) as f64;
            let mut sum_a = 0.0;
            let mut sum_b = 0.0;
            for y in wy..wy + WIN {
                for x in wx..wx + WIN {
                    sum_a += f64::from(u8::from(a.get(x, y)));
                    sum_b += f64::from(u8::from(b.get(x, y)));
                }
            }
            let mu_a = sum_a / n;
            let mu_b = sum_b / n;
            let mut var_a = 0.0;
            let mut var_b = 0.0;
            let mut cov = 0.0;
            for y in wy..wy + WIN {
                for x in wx..wx + WIN {
                    let pa = f64::from(u8::from(a.get(x, y))) - mu_a;
                    let pb = f64::from(u8::from(b.get(x, y))) - mu_b;
                    var_a += pa * pa;
                    var_b += pb * pb;
                    cov += pa * pb;
                }
            }
            var_a /= n - 1.0;
            var_b /= n - 1.0;
            cov /= n - 1.0;

            let s = ((2.0 * mu_a * mu_b + C1) * (2.0 * cov + C2))
                / ((mu_a * mu_a + mu_b * mu_b + C1) * (var_a + var_b + C2));
            total += s;
            windows += 1;
            wx += STRIDE;
        }
        wy += STRIDE;
    }
    total / windows as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes() -> Bitmap {
        let mut b = Bitmap::empty();
        for y in 0..SIZE {
            for x in 0..SIZE {
                if (x / 2) % 2 == 0 {
                    b.set(x, y, true);
                }
            }
        }
        b
    }

    #[test]
    fn mse_matches_delta_over_n_squared() {
        let a = stripes();
        let mut b = a;
        b.toggle(0, 0);
        b.toggle(5, 5);
        assert_eq!(a.delta(&b), 2);
        let expected = 2.0 / 1024.0;
        assert!((mse(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn psnr_formula_agrees_with_paper() {
        let a = stripes();
        let mut b = a;
        for i in 0..4 {
            b.toggle(i, 0);
        }
        // PSNR = 20·log10(32) − 10·log10(4) ≈ 30.103 − 6.021 = 24.082 dB.
        let p = psnr(&a, &b);
        assert!((p - 24.0824).abs() < 1e-3, "psnr = {p}");
    }

    #[test]
    fn psnr_of_identity_is_infinite() {
        let a = stripes();
        assert!(psnr(&a, &a).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_delta() {
        let a = stripes();
        let mut b1 = a;
        b1.toggle(0, 0);
        let mut b4 = a;
        for i in 0..4 {
            b4.toggle(i, 1);
        }
        assert!(psnr(&a, &b1) > psnr(&a, &b4));
    }

    #[test]
    fn ssim_identity_is_one() {
        let a = stripes();
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ssim_orders_similarity() {
        let a = stripes();
        let mut slight = a;
        slight.toggle(3, 3);
        let inverse = {
            let mut inv = Bitmap::empty();
            for y in 0..SIZE {
                for x in 0..SIZE {
                    inv.set(x, y, !a.get(x, y));
                }
            }
            inv
        };
        let s_slight = ssim(&a, &slight);
        let s_inverse = ssim(&a, &inverse);
        assert!(s_slight > 0.9, "slight = {s_slight}");
        assert!(s_inverse < s_slight, "inverse = {s_inverse}");
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = stripes();
        let mut b = a;
        b.toggle(1, 2);
        b.toggle(9, 9);
        assert!((ssim(&a, &b) - ssim(&b, &a)).abs() < 1e-12);
    }
}
