//! Text-banner rendering: draw a whole string with the glyph font.
//!
//! The paper's argument rests on *visual* indistinguishability — a
//! homograph and its target render identically in an address bar. This
//! module renders a string as one wide bitmap banner (each character cell
//! 32×32, packed side by side with trimmed advance), so examples and
//! documentation can show the address-bar view and diff two banners
//! pixel by pixel.

use crate::bitmap::{Bitmap, SIZE};
use crate::font::GlyphSource;
use sham_unicode::CodePoint;

/// A rendered text banner: `height` rows of arbitrary width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Banner {
    width: usize,
    rows: Vec<Vec<bool>>,
}

impl Banner {
    /// Banner height in pixels (one glyph cell).
    pub const HEIGHT: usize = SIZE;

    /// Pixel at `(x, y)`; out of range reads white.
    pub fn get(&self, x: usize, y: usize) -> bool {
        self.rows.get(y).and_then(|r| r.get(x)).copied().unwrap_or(false)
    }

    /// Banner width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of differing pixels between two banners (padded with white
    /// to the wider one) — the string-level Δ.
    pub fn delta(&self, other: &Banner) -> u32 {
        let width = self.width.max(other.width);
        let mut d = 0u32;
        for y in 0..Self::HEIGHT {
            for x in 0..width {
                if self.get(x, y) != other.get(x, y) {
                    d += 1;
                }
            }
        }
        d
    }

    /// ASCII-art rendering, cropped vertically to the inked band.
    pub fn ascii_art(&self) -> String {
        let first = (0..Self::HEIGHT)
            .find(|&y| (0..self.width).any(|x| self.get(x, y)))
            .unwrap_or(0);
        let last = (0..Self::HEIGHT)
            .rev()
            .find(|&y| (0..self.width).any(|x| self.get(x, y)))
            .unwrap_or(Self::HEIGHT - 1);
        let mut s = String::new();
        for y in first..=last {
            for x in 0..self.width {
                s.push(if self.get(x, y) { '█' } else { ' ' });
            }
            s.push('\n');
        }
        s
    }
}

/// Horizontal extent (min, max inclusive) of a glyph's ink, or `None`
/// for blank glyphs.
fn ink_extent(glyph: &Bitmap) -> Option<(usize, usize)> {
    let mut min = SIZE;
    let mut max = 0usize;
    for y in 0..SIZE {
        for x in 0..SIZE {
            if glyph.get(x, y) {
                min = min.min(x);
                max = max.max(x);
            }
        }
    }
    (min <= max).then_some((min, max))
}

/// Renders `text` with `font`. Characters the font lacks render as a
/// narrow replacement box; spaces advance half a cell.
pub fn render(font: &impl GlyphSource, text: &str) -> Banner {
    let mut rows = vec![Vec::new(); SIZE];
    let gap = 2usize;
    for c in text.chars() {
        if c == ' ' {
            for row in rows.iter_mut() {
                row.extend(std::iter::repeat_n(false, SIZE / 2));
            }
            continue;
        }
        let glyph = font.glyph(CodePoint::from(c));
        match glyph.as_ref().and_then(|g| ink_extent(g).map(|e| (g, e))) {
            Some((g, (min, max))) => {
                for (y, row) in rows.iter_mut().enumerate() {
                    for x in min..=max {
                        row.push(g.get(x, y));
                    }
                    row.extend(std::iter::repeat_n(false, gap));
                }
            }
            None => {
                // Replacement box for uncovered characters.
                for (y, row) in rows.iter_mut().enumerate() {
                    for x in 0..10 {
                        let edge = y == 8 || y == 24 || x == 0 || x == 9;
                        row.push(edge && (8..=24).contains(&y));
                    }
                    row.extend(std::iter::repeat_n(false, gap));
                }
            }
        }
    }
    let width = rows.iter().map(Vec::len).max().unwrap_or(0);
    for row in rows.iter_mut() {
        row.resize(width, false);
    }
    Banner { width, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::font::SynthUnifont;

    #[test]
    fn renders_nonempty_banner() {
        let font = SynthUnifont::v12();
        let b = render(&font, "google");
        assert!(b.width() > 60);
        assert!(b.ascii_art().contains('█'));
    }

    #[test]
    fn identical_lookalike_strings_render_identically() {
        let font = SynthUnifont::v12();
        // Cyrillic о is a dist-0 twin of Latin o: the banners match
        // pixel for pixel — the whole point of the attack.
        let real = render(&font, "google");
        let spoof = render(&font, "gооgle");
        assert_eq!(real.delta(&spoof), 0);
    }

    #[test]
    fn accented_lookalike_differs_by_accent_ink_only() {
        let font = SynthUnifont::v12();
        let real = render(&font, "facebook");
        let spoof = render(&font, "facébook");
        let d = real.delta(&spoof);
        assert!((1..=4).contains(&d), "banner delta = {d}");
    }

    #[test]
    fn different_strings_differ_a_lot() {
        let font = SynthUnifont::v12();
        let a = render(&font, "google");
        let b = render(&font, "amazon");
        assert!(a.delta(&b) > 100);
    }

    #[test]
    fn spaces_and_missing_glyphs_are_handled() {
        let font = SynthUnifont::v12();
        let b = render(&font, "a b");
        assert!(b.width() > 0);
        // Control characters are uncovered → replacement box, no panic.
        let c = render(&font, "a\u{7}b");
        assert!(c.width() > 0);
    }
}
