//! SynthUnifont — the GNU-Unifont substitute (DESIGN.md §3).
//!
//! A [`SynthUnifont`] renders any covered code point to a 32×32 bitmap by
//! dispatching, in order, to: the visual-class table, the embedded ASCII
//! font, the Latin diacritic compositor, the Hangul jamo composer, the
//! sparse-mark generator, the digit generator, and finally the per-block
//! twin-row stroke synthesiser. Coverage mirrors Unifont 12: the whole
//! Basic Multilingual Plane plus a selection of SMP scripts — and *not*
//! the ideographic plane, which is how the paper ends up with 52,457 of
//! the 123,006 IDNA characters having glyphs (Table 2).

use crate::bitmap::Bitmap;
use crate::diacritics::{self, BASE_OFFSET_X, BASE_OFFSET_Y, BASE_SCALE};
use crate::font8x8;
use crate::prng::mix;
use crate::scriptgen::{self, TwinParams};
use crate::visual;
use sham_unicode::{block_of, category, script_of, CodePoint, GeneralCategory, Plane, Script};

/// A source of glyph bitmaps.
pub trait GlyphSource {
    /// Renders the glyph for `cp`, or `None` when the font has no glyph.
    fn glyph(&self, cp: CodePoint) -> Option<Bitmap>;

    /// True when the font has a glyph for `cp`.
    fn covers(&self, cp: CodePoint) -> bool {
        self.glyph(cp).is_some()
    }

    /// Identifier used in reports (e.g. `SynthUnifont12`).
    fn name(&self) -> String;
}

/// Font version, mirroring Unifont releases. Version 12 covers a few SMP
/// blocks that version 11 lacks, which drives the paper's point (§4.2)
/// that SimChar needs re-building only when the font/Unicode version
/// changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FontVersion {
    /// Unifont 11-equivalent coverage.
    V11,
    /// Unifont 12-equivalent coverage (the paper's choice).
    V12,
}

/// The procedural bitmap font. Cheap to construct; glyph rendering is a
/// pure function so the type is `Copy` and thread-safe.
///
/// `family_salt` selects the font family: 0 renders the Unifont-like
/// default; any other value renders the same structural rules (ASCII
/// letterforms, diacritic composition, visual classes, jamo/ideograph
/// composition) with different procedural stroke shapes — a second
/// typeface, for the paper's §7.1 "Font Type" sensitivity study.
#[derive(Debug, Clone, Copy)]
pub struct SynthUnifont {
    version: FontVersion,
    family_salt: u64,
}

/// SMP blocks covered by version 12.
const SMP_COVERED_V12: &[&str] = &[
    "Linear B Syllabary",
    "Gothic",
    "Deseret",
    "Shavian",
    "Osmanya",
    "Osage",
    "Cypriot Syllabary",
    "Warang Citi",
    "Kana Supplement",
    "Mathematical Alphanumeric Symbols",
    "Adlam",
    "Emoticons",
];

/// Blocks that version 11 does not cover (added "later").
const NOT_IN_V11: &[&str] = &[
    "Osage",
    "Adlam",
    "Georgian Extended",
    "Cyrillic Extended-C",
    "Dogra",
];

impl SynthUnifont {
    /// The paper's font: Unifont 12-equivalent.
    pub fn v12() -> Self {
        SynthUnifont { version: FontVersion::V12, family_salt: 0 }
    }

    /// The previous release, for update-cost experiments.
    pub fn v11() -> Self {
        SynthUnifont { version: FontVersion::V11, family_salt: 0 }
    }

    /// A second typeface ("SynthNoto"): same coverage and structural
    /// rules, different procedural letterforms. Used by the `fonts`
    /// sensitivity study (paper §7.1: "it would be straightforward to
    /// extend our evaluation to other font families").
    pub fn noto() -> Self {
        SynthUnifont { version: FontVersion::V12, family_salt: 0x4E4F_544F }
    }

    /// Font version.
    pub fn version(&self) -> FontVersion {
        self.version
    }

    fn block_covered(&self, name: &str, plane: Plane) -> bool {
        let in_v12 = match plane {
            Plane::Bmp => true,
            Plane::Smp => SMP_COVERED_V12.contains(&name),
            Plane::Sip | Plane::Tip => false,
        };
        match self.version {
            FontVersion::V12 => in_v12,
            FontVersion::V11 => in_v12 && !NOT_IN_V11.contains(&name),
        }
    }

    /// Per-block twin parameters: the geometry knob that reproduces the
    /// paper's Table 4 block profile (see module docs of
    /// [`crate::scriptgen`]).
    fn twin_params(block: &str) -> TwinParams {
        match block {
            "Unified Canadian Aboriginal Syllabics"
            | "Unified Canadian Aboriginal Syllabics Extended" => {
                TwinParams { granularity: 16, rate_permille: 500, max_mod: 2 }
            }
            "Vai" => TwinParams { granularity: 16, rate_permille: 350, max_mod: 2 },
            "Arabic" | "Arabic Supplement" | "Arabic Extended-A" => {
                TwinParams { granularity: 16, rate_permille: 400, max_mod: 2 }
            }
            "CJK Unified Ideographs"
            | "CJK Unified Ideographs Extension A"
            | "CJK Compatibility Ideographs" => {
                TwinParams { granularity: 32, rate_permille: 8, max_mod: 2 }
            }
            "Hangul Jamo" | "Hangul Compatibility Jamo" | "Hangul Jamo Extended-A"
            | "Hangul Jamo Extended-B" => {
                TwinParams { granularity: 16, rate_permille: 50, max_mod: 2 }
            }
            "Thai" | "Lao" | "Myanmar" | "Khmer" => {
                TwinParams { granularity: 16, rate_permille: 30, max_mod: 2 }
            }
            "Devanagari" | "Bengali" | "Gurmukhi" | "Gujarati" | "Oriya" | "Tamil" | "Telugu"
            | "Kannada" | "Malayalam" | "Sinhala" => {
                TwinParams { granularity: 16, rate_permille: 20, max_mod: 2 }
            }
            "Ethiopic" | "Yi Syllables" | "Cherokee" | "Hebrew" => {
                TwinParams { granularity: 16, rate_permille: 20, max_mod: 2 }
            }
            _ => TwinParams { granularity: 16, rate_permille: 5, max_mod: 2 },
        }
    }

    /// Renders the ASCII base glyph (upscaled into the letter area).
    fn ascii_glyph(c: char) -> Option<Bitmap> {
        let g = font8x8::glyph8(c)?;
        Some(Bitmap::upscale_8x8(&g, BASE_SCALE, BASE_OFFSET_X, BASE_OFFSET_Y))
    }

    /// Renders `cp` ignoring the visual-class table (used for class
    /// anchors to avoid recursion).
    fn render_base(&self, cp: CodePoint) -> Option<Bitmap> {
        let v = cp.0;
        // ASCII.
        if let Some(c) = cp.to_char() {
            if c.is_ascii() {
                return Self::ascii_glyph(c);
            }
        }
        // Latin diacritic compositions.
        if let Some(d) = diacritics::decompose(v) {
            let mut bmp = Self::ascii_glyph(d.base)?;
            diacritics::draw_accent(&mut bmp, d.accent, 15);
            return Some(bmp);
        }
        // Hangul syllables.
        if let Some(bmp) = scriptgen::hangul_syllable_styled(v, self.family_salt) {
            return Some(bmp);
        }
        let block = block_of(cp)?;
        let style = mix(0x424C_4F43, fxhash_str(block.name)) ^ self.family_salt;
        match category(cp) {
            GeneralCategory::Mark => Some(scriptgen::sparse_mark(v)),
            GeneralCategory::DecimalNumber => Some(scriptgen::digit_glyph(v)),
            GeneralCategory::Control | GeneralCategory::Format | GeneralCategory::Separator => {
                None
            }
            GeneralCategory::Unassigned => None,
            cat if cat.is_letter() => {
                let ideographic = script_of(cp) == Script::Han;
                Some(scriptgen::twin_row_glyph(v, style, Self::twin_params(block.name), ideographic))
            }
            // Symbols, punctuation and other numbers get dense distinct
            // glyphs (they exist in the font but are DISALLOWED for IDN).
            _ => Some(scriptgen::twin_row_glyph(v, style ^ 0x53, TwinParams::NONE, false)),
        }
    }
}

/// FNV-1a over a block name: a stable per-block style seed.
fn fxhash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl GlyphSource for SynthUnifont {
    fn glyph(&self, cp: CodePoint) -> Option<Bitmap> {
        if !self.covers(cp) {
            return None;
        }
        // Visual classes first: members render as their anchor ± dist px.
        if let Some((class, member)) = visual::lookup(cp.0) {
            let anchor = CodePoint::from(class.anchor);
            let base = self.render_base(anchor)?;
            return Some(if member.dist == 0 {
                base
            } else {
                scriptgen::perturb(base, mix(0x434C_4153, u64::from(cp.0)), u32::from(member.dist))
            });
        }
        self.render_base(cp)
    }

    fn covers(&self, cp: CodePoint) -> bool {
        if cp.0 < 0x20 {
            return false;
        }
        if cp.0 < 0x80 {
            return true;
        }
        match block_of(cp) {
            Some(b) => {
                self.block_covered(b.name, b.plane())
                    && !matches!(
                        category(cp),
                        GeneralCategory::Control
                            | GeneralCategory::Format
                            | GeneralCategory::Separator
                            | GeneralCategory::Unassigned
                    )
            }
            None => false,
        }
    }

    fn name(&self) -> String {
        let family = if self.family_salt == 0 { "SynthUnifont" } else { "SynthNoto" };
        match self.version {
            FontVersion::V11 => format!("{family}11"),
            FontVersion::V12 => format!("{family}12"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn font() -> SynthUnifont {
        SynthUnifont::v12()
    }

    fn g(c: char) -> Bitmap {
        font().glyph(CodePoint::from(c)).unwrap()
    }

    #[test]
    fn ascii_renders() {
        for c in "abcdefghijklmnopqrstuvwxyz0123456789-".chars() {
            let bmp = g(c);
            assert!(bmp.popcount() >= 10, "{c} too sparse: {}", bmp.popcount());
        }
    }

    #[test]
    fn dist0_class_members_render_identically() {
        assert_eq!(g('a'), g('а')); // Cyrillic a
        assert_eq!(g('o'), g('о')); // Cyrillic o
        assert_eq!(g('o'), g('ο')); // Greek omicron
        assert_eq!(g('c'), g('с'));
        assert_eq!(g('e'), g('е'));
        assert_eq!(g('p'), g('р'));
    }

    #[test]
    fn small_dist_members_are_within_threshold() {
        // Paper Fig. 2: Armenian o (U+0585) ↔ Latin o.
        let d = g('o').delta(&g('օ'));
        assert!((1..=4).contains(&d), "delta = {d}");
        // Paper Fig. 12: Lao digit zero ↔ Latin o.
        let d = g('o').delta(&g('\u{0ED0}'));
        assert!((1..=4).contains(&d), "delta = {d}");
        // Paper §2.2: 工 ↔ エ.
        let d = g('工').delta(&g('エ'));
        assert!((1..=4).contains(&d), "delta = {d}");
    }

    #[test]
    fn figure11_members_are_outside_threshold() {
        let d = g('u').delta(&font().glyph(CodePoint(0x118D8)).unwrap());
        assert!(d > 4, "U+118D8 delta = {d}");
        let d = g('y').delta(&font().glyph(CodePoint(0x118DC)).unwrap());
        assert!(d > 4, "U+118DC delta = {d}");
    }

    #[test]
    fn accents_move_delta_as_designed() {
        // é = e + acute (3 px) — a SimChar homoglyph.
        assert_eq!(g('e').delta(&g('é')), 3);
        // ö = o + diaeresis (4 px) — just inside the threshold.
        assert_eq!(g('o').delta(&g('ö')), 4);
        // õ = o + tilde (5 px) — just outside.
        assert_eq!(g('o').delta(&g('õ')), 5);
        // Accented pairs with the same base differ only in the accents;
        // acute and grave share their lowest pixel, so Δ = 3 + 3 − 2.
        assert_eq!(g('é').delta(&g('è')), 4);
    }

    #[test]
    fn distinct_ascii_letters_are_far_apart() {
        let letters: Vec<char> = ('a'..='z').collect();
        for (i, &a) in letters.iter().enumerate() {
            for &b in &letters[i + 1..] {
                let d = g(a).delta(&g(b));
                assert!(d > 4, "{a} vs {b} delta = {d}");
            }
        }
    }

    #[test]
    fn coverage_rules() {
        let f = font();
        assert!(f.covers(CodePoint::from('a')));
        assert!(f.covers(CodePoint::from('工')));
        assert!(f.covers(CodePoint::from('가')));
        assert!(f.covers(CodePoint(0x118D8))); // Warang Citi (SMP, covered)
        assert!(!f.covers(CodePoint(0x20000))); // CJK Ext B (SIP, not covered)
        assert!(!f.covers(CodePoint(0x200C))); // ZWNJ: no visible glyph
        assert!(!f.covers(CodePoint(0xE000))); // unassigned gap
    }

    #[test]
    fn v11_lacks_recent_blocks() {
        let old = SynthUnifont::v11();
        let new = SynthUnifont::v12();
        let adlam = CodePoint(0x1E922);
        assert!(!old.covers(adlam));
        assert!(new.covers(adlam));
        // Shared blocks render identically across versions (glyphs are
        // stable; releases only add coverage).
        let cp = CodePoint::from('가');
        assert_eq!(old.glyph(cp), new.glyph(cp));
    }

    #[test]
    fn rendering_is_deterministic() {
        let f1 = font();
        let f2 = font();
        for v in [0x61u32, 0x4E8D, 0xAC01, 0xA505, 0x0E01, 0x0431] {
            let cp = CodePoint(v);
            assert_eq!(f1.glyph(cp), f2.glyph(cp), "U+{v:04X}");
        }
    }

    #[test]
    fn noto_family_differs_procedurally_but_shares_structure() {
        let uni = SynthUnifont::v12();
        let noto = SynthUnifont::noto();
        assert_eq!(noto.name(), "SynthNoto12");
        // ASCII and visual classes are structural: identical across
        // families (the attack does not depend on typeface).
        assert_eq!(uni.glyph(CodePoint::from('a')), noto.glyph(CodePoint::from('a')));
        assert_eq!(uni.glyph(CodePoint::from('а')), noto.glyph(CodePoint::from('а')));
        // Procedural glyphs differ between families.
        let cp = CodePoint::from('가');
        assert_ne!(uni.glyph(cp), noto.glyph(cp));
        let cp = CodePoint(0x0E01); // Thai letter
        assert_ne!(uni.glyph(cp), noto.glyph(cp));
        // But each family is internally deterministic.
        assert_eq!(noto.glyph(cp), SynthUnifont::noto().glyph(cp));
    }

    #[test]
    fn marks_render_sparse() {
        let f = font();
        let m = f.glyph(CodePoint(0x0301)).unwrap();
        assert!(m.popcount() < 10);
    }

    #[test]
    fn letters_render_dense() {
        let f = font();
        for v in [0x4E8Du32, 0xAC01, 0xA505, 0x0E01, 0x05D0, 0x0631] {
            let bmp = f.glyph(CodePoint(v)).unwrap();
            assert!(bmp.popcount() >= 10, "U+{v:04X}: {} px", bmp.popcount());
        }
    }
}
