//! Tiny deterministic PRNG (SplitMix64) for procedural glyph synthesis.
//!
//! Glyph generation must be a pure function of (code point, font version):
//! the same character must render identically across runs, machines and
//! threads, or SimChar builds would not be reproducible. SplitMix64 is
//! small, fast, and has no external dependencies.

/// SplitMix64 stream seeded from an arbitrary 64-bit value.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is negligible for glyph synthesis.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// Stateless 64-bit mix of two values — used to derive stable per-character
/// seeds from (code point, purpose tag) without constructing a stream.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut r1 = SplitMix64::new(1);
        let mut r2 = SplitMix64::new(2);
        assert_ne!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SplitMix64::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(11);
        assert!((0..50).all(|_| !r.chance(0)));
        assert!((0..50).all(|_| r.chance(100)));
    }

    #[test]
    fn mix_is_stable_and_sensitive() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_ne!(mix(0, 0), mix(0, 1));
    }
}
