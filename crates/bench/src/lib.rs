//! Shared fixtures for the criterion benches.
//!
//! Bench inputs are deterministic and sized so each bench completes in
//! seconds while still measuring the intended code path (the full-scale
//! numbers live in `repro`, which times the real runs — see
//! EXPERIMENTS.md).

use sham_glyph::{Bitmap, GlyphSource, SynthUnifont};
use sham_simchar::{builder::repertoire_code_points, Repertoire};
use sham_unicode::CodePoint;
use std::time::Instant;

/// Renders the PVALID glyphs of the given blocks.
pub fn glyphs_for(blocks: Vec<&'static str>) -> Vec<(u32, Bitmap)> {
    let font = SynthUnifont::v12();
    repertoire_code_points(&font, &Repertoire::Blocks(blocks))
        .into_iter()
        .filter_map(|v| font.glyph(CodePoint(v)).map(|g| (v, g)))
        .collect()
}

/// A medium corpus: Latin + Cyrillic + Greek + Armenian (~700 glyphs).
pub fn medium_glyph_corpus() -> Vec<(u32, Bitmap)> {
    glyphs_for(vec![
        "Basic Latin",
        "Latin-1 Supplement",
        "Latin Extended-A",
        "Cyrillic",
        "Greek and Coptic",
        "Armenian",
    ])
}

/// A large corpus including Hangul (~12k glyphs) — the block that
/// dominates the paper's pairwise cost.
pub fn large_glyph_corpus() -> Vec<(u32, Bitmap)> {
    glyphs_for(vec![
        "Basic Latin",
        "Latin-1 Supplement",
        "Cyrillic",
        "Hangul Syllables",
    ])
}

/// Deterministic IDN stems for detection benches: `count` lookalikes of
/// reference stems (every one detectable) mixed 1:1 with benign IDNs.
pub fn detection_corpus(count: usize) -> (Vec<String>, Vec<(String, String)>) {
    let references: Vec<String> = sham_workload::reference_list(10_000);
    let mut idns = Vec::with_capacity(count);
    for i in 0..count {
        let stem = if i % 2 == 0 {
            // A lookalike of a reference.
            let target = &references[(i / 2) % 500];
            let len = target.chars().count().max(1);
            target
                .chars()
                .enumerate()
                .map(|(pos, c)| {
                    if pos == i % len {
                        match c {
                            'a' => 'а',
                            'e' => 'е',
                            'o' => 'о',
                            'c' => 'с',
                            'p' => 'р',
                            other => other,
                        }
                    } else {
                        c
                    }
                })
                .collect::<String>()
        } else {
            // Benign IDN noise.
            format!("münchen-shop-{i}")
        };
        let ace = sham_punycode::ace::to_ascii(&stem)
            .map(|l| format!("{l}.com"))
            .unwrap_or_else(|_| format!("{stem}.com"));
        idns.push((stem, ace));
    }
    (references, idns)
}

/// Path of the perf-trajectory snapshot at the workspace root.
pub fn snapshot_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_detection.json")
}

/// Samples per snapshot measurement: 1 in dry-run mode, 5 otherwise.
/// Dry-run detection is criterion's, so the sample gating and the
/// snapshot gating can never disagree about what a dry run is.
pub fn snapshot_samples() -> usize {
    if criterion::dry_run_mode() { 1 } else { 5 }
}

/// Shared scaffolding for the perf-snapshot benches: measures each
/// named config at 1 worker thread and (when the run is configured for
/// more — `SHAM_THREADS` or the machine's available parallelism) at
/// that count — `measure(name)` runs with the thread override already
/// set — then merges the ops/sec entries into `section` of
/// `BENCH_detection.json`. In `--test` dry-run mode the sweep still
/// executes (smoking the measured code path) but the snapshot file is
/// left untouched, so single-sample noise never replaces committed
/// trajectory numbers.
///
/// The machine's hardware thread count is recorded *per run*
/// (`hardware_threads/threads_{top}`), keyed like the measurements, so
/// a 1-thread smoke and a 2-thread smoke stop clobbering each other's
/// context — the old single `hardware_threads` scalar did exactly
/// that, making committed sections lie about which machine measured
/// them.
pub fn snapshot_thread_sweep(
    section: &str,
    configs: &[&str],
    mut measure: impl FnMut(&str) -> f64,
) {
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Honour SHAM_THREADS (and any ambient override): a CI smoke at
    // SHAM_THREADS=2 must actually measure the 2-thread pooled path,
    // even on single-core runners where `hardware` alone would say 1.
    let top = rayon::current_num_threads().max(1);
    let threads_list: Vec<usize> = if top > 1 { vec![1, top] } else { vec![1] };
    let mut entries =
        vec![(format!("hardware_threads/threads_{top}"), hardware as f64)];
    for &name in configs {
        for &threads in &threads_list {
            rayon::set_thread_override(Some(threads));
            let ops = measure(name);
            entries.push((format!("{name}/threads_{threads}_ops_per_sec"), ops));
        }
    }
    rayon::set_thread_override(None);
    if criterion::dry_run_mode() {
        println!(
            "snapshot: dry run — leaving {} untouched",
            snapshot_path().display()
        );
    } else {
        record_snapshot(section, &entries);
        println!(
            "snapshot: wrote {section} section of {}",
            snapshot_path().display()
        );
    }
}

/// Times `f` (after one warm-up call) and returns ops/sec for a unit of
/// `elements` items, using the median of `samples` runs.
pub fn measure_ops_per_sec(elements: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2].max(1e-12);
    elements as f64 / median
}

/// Merges one bench's section into `BENCH_detection.json` at the
/// workspace root, preserving the sections other benches wrote — the
/// file accumulates the perf trajectory (ops/sec at 1 thread vs N
/// threads) across bench runs and PRs.
///
/// Within a section, entries merge *by key* into whatever the section
/// already holds: a run that measured only `threads_2` updates those
/// keys and leaves the committed `threads_1` numbers in place, instead
/// of replacing the whole section (which is how per-thread runs used
/// to erase each other). The legacy un-keyed `hardware_threads` scalar
/// is dropped on the way — its per-run replacement
/// (`hardware_threads/threads_{n}`) is one of the merged entries.
pub fn record_snapshot(section: &str, entries: &[(String, f64)]) {
    use serde::Value;
    let path = snapshot_path();
    let mut root: Vec<(String, Value)> = match std::fs::read_to_string(&path) {
        Err(_) => Vec::new(), // first run: no snapshot yet
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(Value::Map(entries)) => entries,
            _ => {
                eprintln!(
                    "warning: {} is not a JSON object — rewriting it with only \
                     the {section} section (other sections are lost)",
                    path.display()
                );
                Vec::new()
            }
        },
    };
    let mut merged: Vec<(String, Value)> =
        match root.iter().find(|(k, _)| k == section) {
            Some((_, Value::Map(existing))) => existing
                .iter()
                .filter(|(k, _)| k != "hardware_threads")
                .cloned()
                .collect(),
            _ => Vec::new(),
        };
    for (k, ops) in entries {
        let rounded = Value::F64((ops * 10.0).round() / 10.0);
        match merged.iter_mut().find(|(key, _)| key == k) {
            Some(slot) => slot.1 = rounded,
            None => merged.push((k.clone(), rounded)),
        }
    }
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    let section_value = Value::Map(merged);
    match root.iter_mut().find(|(k, _)| k == section) {
        Some(slot) => slot.1 = section_value,
        None => root.push((section.to_string(), section_value)),
    }
    root.sort_by(|a, b| a.0.cmp(&b.0));
    let text = serde_json::to_string(&Value::Map(root)).unwrap_or_default();
    if let Err(e) = std::fs::write(&path, text + "\n") {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_nonempty_and_deterministic() {
        let a = medium_glyph_corpus();
        let b = medium_glyph_corpus();
        assert!(a.len() > 300, "{}", a.len());
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn detection_corpus_has_expected_size() {
        let (refs, idns) = detection_corpus(100);
        assert_eq!(refs.len(), 10_000);
        assert_eq!(idns.len(), 100);
        assert!(idns.iter().all(|(_, ace)| ace.ends_with(".com")));
    }
}
