//! Shared fixtures for the criterion benches.
//!
//! Bench inputs are deterministic and sized so each bench completes in
//! seconds while still measuring the intended code path (the full-scale
//! numbers live in `repro`, which times the real runs — see
//! EXPERIMENTS.md).

use sham_glyph::{Bitmap, GlyphSource, SynthUnifont};
use sham_simchar::{builder::repertoire_code_points, Repertoire};
use sham_unicode::CodePoint;

/// Renders the PVALID glyphs of the given blocks.
pub fn glyphs_for(blocks: Vec<&'static str>) -> Vec<(u32, Bitmap)> {
    let font = SynthUnifont::v12();
    repertoire_code_points(&font, &Repertoire::Blocks(blocks))
        .into_iter()
        .filter_map(|v| font.glyph(CodePoint(v)).map(|g| (v, g)))
        .collect()
}

/// A medium corpus: Latin + Cyrillic + Greek + Armenian (~700 glyphs).
pub fn medium_glyph_corpus() -> Vec<(u32, Bitmap)> {
    glyphs_for(vec![
        "Basic Latin",
        "Latin-1 Supplement",
        "Latin Extended-A",
        "Cyrillic",
        "Greek and Coptic",
        "Armenian",
    ])
}

/// A large corpus including Hangul (~12k glyphs) — the block that
/// dominates the paper's pairwise cost.
pub fn large_glyph_corpus() -> Vec<(u32, Bitmap)> {
    glyphs_for(vec![
        "Basic Latin",
        "Latin-1 Supplement",
        "Cyrillic",
        "Hangul Syllables",
    ])
}

/// Deterministic IDN stems for detection benches: `count` lookalikes of
/// reference stems (every one detectable) mixed 1:1 with benign IDNs.
pub fn detection_corpus(count: usize) -> (Vec<String>, Vec<(String, String)>) {
    let references: Vec<String> = sham_workload::reference_list(10_000);
    let mut idns = Vec::with_capacity(count);
    for i in 0..count {
        let stem = if i % 2 == 0 {
            // A lookalike of a reference.
            let target = &references[(i / 2) % 500];
            let len = target.chars().count().max(1);
            target
                .chars()
                .enumerate()
                .map(|(pos, c)| {
                    if pos == i % len {
                        match c {
                            'a' => 'а',
                            'e' => 'е',
                            'o' => 'о',
                            'c' => 'с',
                            'p' => 'р',
                            other => other,
                        }
                    } else {
                        c
                    }
                })
                .collect::<String>()
        } else {
            // Benign IDN noise.
            format!("münchen-shop-{i}")
        };
        let ace = sham_punycode::ace::to_ascii(&stem)
            .map(|l| format!("{l}.com"))
            .unwrap_or_else(|_| format!("{stem}.com"));
        idns.push((stem, ace));
    }
    (references, idns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_nonempty_and_deterministic() {
        let a = medium_glyph_corpus();
        let b = medium_glyph_corpus();
        assert!(a.len() > 300, "{}", a.len());
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn detection_corpus_has_expected_size() {
        let (refs, idns) = detection_corpus(100);
        assert_eq!(refs.len(), 10_000);
        assert_eq!(idns.len(), 100);
        assert!(idns.iter().all(|(_, ace)| ace.ends_with(".com")));
    }
}
