//! Table 5 — SimChar construction cost, step by step.
//!
//! The paper reports 79.2 s to render, 10.9 h for the pairwise Δ sweep and
//! 18 s for sparse elimination on its 52K-glyph repertoire (15 cores,
//! brute force). This bench measures the same three steps on block-scoped
//! repertoires; `repro table5` reports the full-repertoire wall times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sham_bench::glyphs_for;
use sham_glyph::{GlyphSource, SynthUnifont};
use sham_simchar::{build, find_pairs, BuildConfig, Repertoire, Strategy};
use sham_unicode::CodePoint;

fn bench_steps(c: &mut Criterion) {
    let font = SynthUnifont::v12();
    let mut group = c.benchmark_group("t5_simchar_build");
    group.sample_size(10);

    // Step I: rendering.
    let blocks = vec!["Basic Latin", "Latin-1 Supplement", "Cyrillic", "Greek and Coptic"];
    let cps: Vec<u32> = sham_simchar::builder::repertoire_code_points(
        &font,
        &Repertoire::Blocks(blocks.clone()),
    );
    group.bench_function("step1_render_latin_cyrillic", |b| {
        b.iter(|| {
            let rendered: Vec<_> = cps
                .iter()
                .filter_map(|&v| font.glyph(CodePoint(v)))
                .collect();
            std::hint::black_box(rendered.len())
        })
    });

    // Step II: pairwise Δ (banded index) on a medium corpus.
    let glyphs = glyphs_for(blocks.clone());
    group.bench_function("step2_pairwise_medium", |b| {
        b.iter(|| {
            std::hint::black_box(find_pairs(&glyphs, 4, Strategy::BandedIndex).len())
        })
    });

    // Step III: sparse elimination.
    group.bench_function("step3_sparse_filter", |b| {
        b.iter(|| {
            let sparse = glyphs.iter().filter(|(_, g)| g.popcount() < 10).count();
            std::hint::black_box(sparse)
        })
    });

    // Whole builds at increasing repertoire sizes.
    for (name, blocks) in [
        ("latin+cyrillic", vec!["Basic Latin", "Latin-1 Supplement", "Cyrillic"]),
        ("plus_greek_armenian", vec![
            "Basic Latin",
            "Latin-1 Supplement",
            "Cyrillic",
            "Greek and Coptic",
            "Armenian",
        ]),
        ("vai_and_canadian", vec!["Vai", "Unified Canadian Aboriginal Syllabics"]),
    ] {
        group.bench_with_input(
            BenchmarkId::new("full_build", name),
            &blocks,
            |b, blocks| {
                b.iter(|| {
                    let result = build(
                        &font,
                        &BuildConfig {
                            repertoire: Repertoire::Blocks(blocks.clone()),
                            ..BuildConfig::default()
                        },
                    );
                    std::hint::black_box(result.db.pair_count())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
