//! Pool telemetry overhead — proof that the counters are (close enough
//! to) free.
//!
//! The executor's telemetry (see `vendor/rayon`) is relaxed atomics
//! bumped on job-level transitions: submit, dequeue, body enter/leave,
//! park/unpark. The design claim is that this is unmeasurable on the
//! hot paths: the 1-thread inline path executes no telemetry
//! instruction at all, and the pooled path pays a handful of relaxed
//! increments *per job* (not per chunk, not per item). This bench
//! prices exactly that claim:
//!
//! * `dispatch_on` / `dispatch_off` — the same small-work parallel
//!   collect (8 192 elements, tiny per-element work, so dispatch
//!   overhead dominates) with counters live vs suspended
//!   (`rayon::set_telemetry_suspended`, a bench-only switch). The
//!   acceptance criterion is the pair staying within noise of each
//!   other (≤ 2%); at 1 thread both are the inline path and identical
//!   by construction.
//! * `stats_read` — `rayon::pool_stats()` snapshots per second: the
//!   ledger/server read path (each snapshot is ~10 relaxed loads plus
//!   the pool-size lock).
//! * `occupancy_read` — `rayon::busy_workers()` reads per second: the
//!   adaptive scheduler's per-batch probe (one atomic load when no
//!   override forces it).
//!
//! The snapshot section `pool_telemetry` lands in
//! `BENCH_detection.json` next to `streaming_ingest`, so the overhead
//! pair is tracked per-PR.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rayon::prelude::*;
use sham_bench::{measure_ops_per_sec, snapshot_samples, snapshot_thread_sweep};

const DISPATCH_ELEMENTS: usize = 8_192;
/// Dispatch passes per snapshot sample: one pass is ~20 µs, far below
/// timer/scheduler noise — a sample times the whole loop.
const PASSES_PER_SAMPLE: usize = 512;
const READS_PER_PASS: usize = 100_000;

/// One dispatch-dominated parallel pass: tiny per-element work over a
/// fixed base, `with_min_len(64)` so the chunk count (and thus the job
/// count) stays stable across thread counts.
fn dispatch_pass(base: &[u64]) -> u64 {
    base.par_iter()
        .with_min_len(64)
        .map(|&x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (x >> 7))
        .collect::<Vec<u64>>()
        .iter()
        .fold(0u64, |acc, &x| acc ^ x)
}

fn bench_pool_telemetry(c: &mut Criterion) {
    let base: Vec<u64> = (0..DISPATCH_ELEMENTS as u64).collect();

    let mut group = c.benchmark_group("pool_telemetry");
    group.sample_size(10);
    group.throughput(Throughput::Elements(DISPATCH_ELEMENTS as u64));
    group.bench_function("dispatch_on", |b| {
        b.iter(|| std::hint::black_box(dispatch_pass(&base)))
    });
    group.bench_function("dispatch_off", |b| {
        rayon::set_telemetry_suspended(true);
        b.iter(|| std::hint::black_box(dispatch_pass(&base)));
        rayon::set_telemetry_suspended(false);
    });
    group.bench_function("stats_read", |b| {
        b.iter(|| std::hint::black_box(rayon::pool_stats()))
    });
    group.bench_function("occupancy_read", |b| {
        b.iter(|| std::hint::black_box(rayon::busy_workers()))
    });
    group.finish();

    snapshot_thread_sweep(
        "pool_telemetry",
        &["dispatch_on", "dispatch_off", "stats_read", "occupancy_read"],
        |name| {
            // Suspend the counters for the whole off-measurement
            // (warm-up included); the pool is quiescent at the toggle
            // points, so the submitted/dequeued identities stay exact.
            let suspended = name == "dispatch_off";
            if suspended {
                rayon::set_telemetry_suspended(true);
            }
            let ops = match name {
                "dispatch_on" | "dispatch_off" => measure_ops_per_sec(
                    DISPATCH_ELEMENTS * PASSES_PER_SAMPLE,
                    snapshot_samples(),
                    || {
                        for _ in 0..PASSES_PER_SAMPLE {
                            std::hint::black_box(dispatch_pass(&base));
                        }
                    },
                ),
                "stats_read" => {
                    measure_ops_per_sec(READS_PER_PASS, snapshot_samples(), || {
                        for _ in 0..READS_PER_PASS {
                            std::hint::black_box(rayon::pool_stats());
                        }
                    })
                }
                _ => measure_ops_per_sec(READS_PER_PASS, snapshot_samples(), || {
                    for _ in 0..READS_PER_PASS {
                        std::hint::black_box(rayon::busy_workers());
                    }
                }),
            };
            if suspended {
                rayon::set_telemetry_suspended(false);
            }
            ops
        },
    );
}

criterion_group!(benches, bench_pool_telemetry);
criterion_main!(benches);
