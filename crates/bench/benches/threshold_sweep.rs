//! Ablation — the θ threshold (Figure 9's companion).
//!
//! Larger θ admits more pairs but (per the paper's Experiment 1) past
//! θ = 4 the added pairs are not actually confusable. This bench measures
//! how build cost and database size scale with θ; `repro fig9` produces
//! the human-score side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sham_glyph::SynthUnifont;
use sham_simchar::{build, BuildConfig, Repertoire};

fn bench_thresholds(c: &mut Criterion) {
    let font = SynthUnifont::v12();
    let blocks = vec![
        "Basic Latin",
        "Latin-1 Supplement",
        "Latin Extended-A",
        "Cyrillic",
        "Greek and Coptic",
        "Armenian",
    ];

    let mut group = c.benchmark_group("threshold_sweep");
    group.sample_size(10);
    for theta in [0u32, 2, 4, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(theta), &theta, |b, &theta| {
            b.iter(|| {
                let result = build(
                    &font,
                    &BuildConfig {
                        theta,
                        repertoire: Repertoire::Blocks(blocks.clone()),
                        ..BuildConfig::default()
                    },
                );
                std::hint::black_box((result.db.pair_count(), result.db.char_count()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thresholds);
criterion_main!(benches);
