//! Substrate cost — language identification over IDN stems (Table 7 runs
//! it on every registered IDN).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sham_langid::identify;

fn bench_langid(c: &mut Criterion) {
    let stems: Vec<String> = [
        "阿里巴巴",
        "한국어도메인",
        "東京タワーさくら",
        "münchen-bücher",
        "şehir-alışveriş",
        "café-élysée",
        "привет-мир",
        "gооgle",
        "plain-ascii-name",
        "ไทยแลนด์",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut group = c.benchmark_group("langid");
    group.throughput(Throughput::Elements(stems.len() as u64));
    group.bench_function("identify_batch", |b| {
        b.iter(|| {
            for s in &stems {
                std::hint::black_box(identify(s).language);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_langid);
criterion_main!(benches);
