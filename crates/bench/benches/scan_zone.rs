//! End-to-end batch zone scanning: file on disk → detections, through
//! the full `ZoneScanner` pipeline (reader thread, recycled chunk
//! buffers, SWAR line split, streaming parse, dedup, router batches,
//! pooled detection).
//!
//! Two fixtures, both written by `sham_workload::write_synthetic_zone`
//! into the temp dir:
//!
//! * an 8 MB zone for the criterion group (interactive, dry-run safe);
//! * a ≥100 MB zone (120 MB) for the perf snapshot — the whole-TLD-dump
//!   scale the pipeline is sized for. Generated (and deleted) only on
//!   real snapshot runs; `--test` dry runs reuse the small fixture.
//!
//! The snapshot section `scan_zone` lands in `BENCH_detection.json`
//! with both rates of record:
//!
//! * `scan_zone_end_to_end/threads_{n}_ops_per_sec` — records/sec;
//! * `scan_zone_mb/threads_{n}_ops_per_sec` — MB/sec over the same
//!   passes (derived from the measured record rate and the fixture's
//!   exact bytes-per-record, so the two numbers can never disagree
//!   about which run they describe).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sham_bench::{measure_ops_per_sec, snapshot_samples, snapshot_thread_sweep};
use sham_core::{DetectionIndex, ScanConfig, SessionRouter, ZoneScanner};
use sham_workload::{reference_list, write_synthetic_zone, ZoneGenConfig, ZoneGenStats};
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Detection index over the same reference stems the generator plants
/// lookalikes of, so every pass exercises real detections.
fn shared_index() -> Arc<DetectionIndex> {
    let font = sham_glyph::SynthUnifont::v12();
    let result = sham_simchar::build(
        &font,
        &sham_simchar::BuildConfig {
            repertoire: sham_simchar::Repertoire::Blocks(vec!["Basic Latin", "Cyrillic"]),
            ..sham_simchar::BuildConfig::default()
        },
    );
    DetectionIndex::shared(
        sham_simchar::HomoglyphDb::new(result.db, sham_confusables::UcDatabase::embedded()),
        reference_list(500),
    )
}

/// Writes one fixture zone of `target_bytes` to `path`, streaming.
fn generate(path: &Path, target_bytes: u64) -> ZoneGenStats {
    let cfg = ZoneGenConfig {
        target_bytes,
        homograph_permille: 5,
        malformed_permille: 2,
        seed: 0xBE2C_5CA4,
        ..ZoneGenConfig::default()
    };
    let file = std::fs::File::create(path).expect("create bench fixture");
    let mut out = std::io::BufWriter::new(file);
    write_synthetic_zone(&mut out, &cfg).expect("write bench fixture")
}

/// One full pass: open, scan, detect, close the books.
fn scan_pass(index: &Arc<DetectionIndex>, path: &Path) -> usize {
    let mut scanner = ZoneScanner::new(
        SessionRouter::new(Arc::clone(index)),
        ScanConfig::default(),
    );
    scanner.scan_file("com", path).expect("bench fixture scans");
    let report = scanner.finish();
    report
        .verify_accounting()
        .expect("bench pass must keep the books closed");
    report.detection_count()
}

fn bench_scan_zone(c: &mut Criterion) {
    let dry = criterion::dry_run_mode();
    let dir = std::env::temp_dir();
    let index = shared_index();

    let small_path = dir.join("shamfinder_bench_small.zone");
    let small = generate(&small_path, 8 << 20);

    let mut group = c.benchmark_group("scan_zone");
    group.sample_size(10);
    group.throughput(Throughput::Elements(small.records));
    group.bench_function("scan_8mb_end_to_end", |b| {
        b.iter(|| std::hint::black_box(scan_pass(&index, &small_path)))
    });
    group.finish();

    // The snapshot fixture: the acceptance-scale ≥100 MB dump on real
    // runs; the small one on dry runs (which never write the snapshot).
    let (big_path, big): (PathBuf, ZoneGenStats) = if dry {
        (small_path.clone(), small)
    } else {
        let path = dir.join("shamfinder_bench_120mb.zone");
        let stats = generate(&path, 120 << 20);
        (path, stats)
    };

    // records/sec measured; MB/sec derived from the same passes via the
    // fixture's exact bytes-per-record ratio (no second scan).
    let record_rates: RefCell<HashMap<usize, f64>> = RefCell::new(HashMap::new());
    snapshot_thread_sweep(
        "scan_zone",
        &["scan_zone_end_to_end", "scan_zone_mb"],
        |name| {
            let threads = rayon::current_num_threads().max(1);
            match name {
                "scan_zone_end_to_end" => {
                    let rate =
                        measure_ops_per_sec(big.records as usize, snapshot_samples(), || {
                            std::hint::black_box(scan_pass(&index, &big_path));
                        });
                    record_rates.borrow_mut().insert(threads, rate);
                    rate
                }
                _ => {
                    let bytes_per_record = big.bytes as f64 / big.records.max(1) as f64;
                    record_rates.borrow().get(&threads).copied().unwrap_or(0.0)
                        * bytes_per_record
                        / 1e6
                }
            }
        },
    );

    if !dry {
        let _ = std::fs::remove_file(&big_path);
    }
    let _ = std::fs::remove_file(&small_path);
}

criterion_group!(benches, bench_scan_zone);
criterion_main!(benches);
