//! Streaming ingest overhead — the price of batch-at-a-time detection,
//! with and without the persistent worker pool.
//!
//! Production ingest feeds the detector zone-diff batches (64–1024
//! names at a time) through a `DetectorSession` — or, for an
//! interleaved multi-TLD feed, a `SessionRouter` fanning out to one
//! session per TLD — instead of one corpus slice through
//! `Detector::detect`. All paths run the same executor, so the
//! possible regressions are per-batch overhead (scratch reuse, the
//! inline single-shard path, report accumulation), per-domain routing
//! overhead, and — at 2+ threads — the per-batch cost of dispatching
//! shards to the pool, which the persistent pool amortises to a
//! channel send instead of a thread spawn. This bench measures
//! IDNs/sec over the shared 20k-IDN × 10k-reference corpus:
//!
//! * `push_64` — a session fed 64-IDN batches (the acceptance-criterion
//!   granularity; 313 batches per pass; single-shard, so it stays on
//!   the inline path at any thread count).
//! * `push_1024` — a session fed 1024-IDN batches (zone-diff sized).
//! * `one_shot` — the batch `CanonicalClosure` path on the same
//!   detector, as the baseline the streaming numbers are judged
//!   against (within 10%).
//! * `push_1024_pool2` / `one_shot_pool2` — the same two shapes forced
//!   to 2 worker threads, so every batch fans its shards out through
//!   the persistent pool (~8 pool dispatches per 1024-IDN batch); the
//!   pooled small-batch entries the PR-5 executor refactor is judged
//!   by.
//! * `router_3tld` — the 20k corpus as an interleaved 3-TLD
//!   `DomainName` feed routed through a `SessionRouter` (1024-per-lane
//!   batches): per-domain demux + TLD filtering + per-lane sessions on
//!   top of detection.
//! * `ingest_clean` / `ingest_faulty` — the same interleaved feed
//!   through the full `IngestService` front-end (connector thread,
//!   bounded queues, drainer): `clean` prices the queue/thread
//!   machinery against `router_3tld`; `faulty` adds a seeded 10‰
//!   corrupt/stall/disconnect schedule (zero-delay retry policy, so
//!   the cost measured is the recovery machinery, not sleeping).
//!
//! The snapshot section `streaming_ingest` lands in
//! `BENCH_detection.json` next to `detection_throughput`'s
//! `canonical_closure`, so batch-vs-streaming overhead is tracked
//! per-PR.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sham_bench::{
    detection_corpus, measure_ops_per_sec, snapshot_samples, snapshot_thread_sweep,
};
use sham_confusables::UcDatabase;
use sham_core::{Detector, DetectorSession, Indexing, SessionRouter};
use sham_glyph::SynthUnifont;
use sham_punycode::DomainName;
use sham_simchar::{build, BuildConfig, DbSelection, HomoglyphDb, Repertoire};
use std::sync::Arc;

fn simchar_db() -> sham_simchar::SimCharDb {
    let font = SynthUnifont::v12();
    build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Latin Extended-A",
                "Cyrillic",
                "Greek and Coptic",
            ]),
            ..BuildConfig::default()
        },
    )
    .db
}

/// One full streamed pass over the corpus in `batch`-sized pushes.
fn stream_pass(
    detector: &Detector,
    idns: &[(String, String)],
    batch: usize,
) -> usize {
    let mut session = DetectorSession::new(Arc::clone(detector.index()), "com");
    for chunk in idns.chunks(batch) {
        session.push_idns(chunk);
    }
    session.into_report().detections.len()
}

/// The same corpus spread over `.com`/`.net`/`.org` as a parsed
/// `DomainName` feed — the router's input shape.
fn multi_tld_corpus(idns: &[(String, String)]) -> Vec<DomainName> {
    const TLDS: &[&str] = &["com", "net", "org"];
    idns.iter()
        .enumerate()
        .map(|(i, (_, ace))| {
            let stem = ace.strip_suffix(".com").expect("bench corpus is .com");
            DomainName::parse(&format!("{stem}.{}", TLDS[i % TLDS.len()]))
                .expect("re-homed bench name parses")
        })
        .collect()
}

/// One routed pass: the interleaved feed demuxed into per-TLD lanes.
fn router_pass(detector: &Detector, feed: &[DomainName]) -> usize {
    let mut router =
        SessionRouter::new(Arc::clone(detector.index())).with_batch_capacity(1_024);
    router.push_domains(feed);
    router.into_report().detection_count()
}

/// One full ingest-service pass: connector thread + bounded queues +
/// drainer over the interleaved feed, under `schedule`.
fn ingest_pass(
    detector: &Detector,
    events: &[sham_workload::ZoneEvent],
    schedule: &sham_workload::FaultSchedule,
) -> usize {
    let service = sham_core::IngestService::new(
        Arc::clone(detector.index()),
        sham_core::IngestConfig {
            queue_capacity: 2_048,
            batch_capacity: 1_024,
            // Zero-delay backoff: measure recovery work, not sleeps.
            retry: sham_core::RetryPolicy {
                base: std::time::Duration::ZERO,
                ..sham_core::RetryPolicy::default()
            },
            ..sham_core::IngestConfig::default()
        },
    );
    let feed = sham_workload::FaultyZoneFeed::new(
        "bench",
        events.to_vec(),
        schedule.clone(),
        sham_workload::FeedStats::shared(),
    );
    let report = service.run(vec![Box::new(feed)]);
    report.router.detection_count()
}

fn bench_streaming(c: &mut Criterion) {
    let idn_count = 20_000usize;
    let (references, idns) = detection_corpus(idn_count);
    let db = HomoglyphDb::new(simchar_db(), UcDatabase::embedded());
    let detector = Detector::new(db, references);
    let feed = multi_tld_corpus(&idns);

    let mut group = c.benchmark_group("streaming_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(idn_count as u64));
    for batch in [64usize, 1_024] {
        group.bench_function(format!("push_{batch}"), |b| {
            b.iter(|| std::hint::black_box(stream_pass(&detector, &idns, batch)))
        });
    }
    group.bench_function("push_1024_pool2", |b| {
        let _pool = rayon::ThreadOverride::new(2);
        b.iter(|| std::hint::black_box(stream_pass(&detector, &idns, 1_024)))
    });
    group.bench_function("one_shot_pool2", |b| {
        let _pool = rayon::ThreadOverride::new(2);
        b.iter(|| {
            std::hint::black_box(
                detector
                    .detect(&idns, DbSelection::Union, Indexing::CanonicalClosure)
                    .len(),
            )
        })
    });
    group.bench_function("one_shot", |b| {
        b.iter(|| {
            std::hint::black_box(
                detector
                    .detect(&idns, DbSelection::Union, Indexing::CanonicalClosure)
                    .len(),
            )
        })
    });
    group.bench_function("router_3tld", |b| {
        b.iter(|| std::hint::black_box(router_pass(&detector, &feed)))
    });
    let ingest_events: Vec<sham_workload::ZoneEvent> = feed
        .iter()
        .map(|name| sham_workload::ZoneEvent::Registered(name.clone()))
        .collect();
    let clean = sham_workload::FaultSchedule::none();
    let faulty =
        sham_workload::FaultSchedule::seeded(0xBE7C4, ingest_events.len() as u64, 10);
    group.bench_function("ingest_clean", |b| {
        b.iter(|| std::hint::black_box(ingest_pass(&detector, &ingest_events, &clean)))
    });
    group.bench_function("ingest_faulty", |b| {
        b.iter(|| std::hint::black_box(ingest_pass(&detector, &ingest_events, &faulty)))
    });
    group.finish();

    snapshot_thread_sweep(
        "streaming_ingest",
        &[
            "push_64",
            "push_1024",
            "one_shot",
            "push_1024_pool2",
            "one_shot_pool2",
            "router_3tld",
            "ingest_clean",
            "ingest_faulty",
        ],
        |name| {
            // The pool2 configs force 2 workers for the *whole*
            // measurement (warm-up included), whatever the sweep's
            // thread override is: the pool spawns once and every
            // sampled pass reuses it — the amortisation being measured.
            let _pool = matches!(name, "push_1024_pool2" | "one_shot_pool2")
                .then(|| rayon::ThreadOverride::new(2));
            measure_ops_per_sec(idn_count, snapshot_samples(), || match name {
                "push_64" => {
                    std::hint::black_box(stream_pass(&detector, &idns, 64));
                }
                "push_1024" | "push_1024_pool2" => {
                    std::hint::black_box(stream_pass(&detector, &idns, 1_024));
                }
                "router_3tld" => {
                    std::hint::black_box(router_pass(&detector, &feed));
                }
                "ingest_clean" => {
                    std::hint::black_box(ingest_pass(&detector, &ingest_events, &clean));
                }
                "ingest_faulty" => {
                    std::hint::black_box(ingest_pass(&detector, &ingest_events, &faulty));
                }
                _ => {
                    std::hint::black_box(
                        detector
                            .detect(&idns, DbSelection::Union, Indexing::CanonicalClosure)
                            .len(),
                    );
                }
            })
        },
    );
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
