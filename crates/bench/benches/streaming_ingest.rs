//! Streaming ingest overhead — the price of batch-at-a-time detection.
//!
//! Production ingest feeds the detector zone-diff batches (64–1024
//! names at a time) through a `DetectorSession` instead of one corpus
//! slice through `Detector::detect`. Both run the same executor, so
//! the only possible regression is per-batch overhead: scratch reuse,
//! the inline single-shard path, report accumulation. This bench
//! measures IDNs/sec over the shared 20k-IDN × 10k-reference corpus:
//!
//! * `push_64` — a session fed 64-IDN batches (the acceptance-criterion
//!   granularity; 313 batches per pass).
//! * `push_1024` — a session fed 1024-IDN batches (zone-diff sized).
//! * `one_shot` — the batch `CanonicalClosure` path on the same
//!   detector, as the baseline the streaming numbers are judged
//!   against (within 10%).
//!
//! The snapshot section `streaming_ingest` lands in
//! `BENCH_detection.json` next to `detection_throughput`'s
//! `canonical_closure`, so batch-vs-streaming overhead is tracked
//! per-PR.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sham_bench::{
    detection_corpus, measure_ops_per_sec, snapshot_samples, snapshot_thread_sweep,
};
use sham_confusables::UcDatabase;
use sham_core::{Detector, DetectorSession, Indexing};
use sham_glyph::SynthUnifont;
use sham_simchar::{build, BuildConfig, DbSelection, HomoglyphDb, Repertoire};
use std::sync::Arc;

fn simchar_db() -> sham_simchar::SimCharDb {
    let font = SynthUnifont::v12();
    build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Latin Extended-A",
                "Cyrillic",
                "Greek and Coptic",
            ]),
            ..BuildConfig::default()
        },
    )
    .db
}

/// One full streamed pass over the corpus in `batch`-sized pushes.
fn stream_pass(
    detector: &Detector,
    idns: &[(String, String)],
    batch: usize,
) -> usize {
    let mut session = DetectorSession::new(Arc::clone(detector.index()), "com");
    for chunk in idns.chunks(batch) {
        session.push_idns(chunk);
    }
    session.into_report().detections.len()
}

fn bench_streaming(c: &mut Criterion) {
    let idn_count = 20_000usize;
    let (references, idns) = detection_corpus(idn_count);
    let db = HomoglyphDb::new(simchar_db(), UcDatabase::embedded());
    let detector = Detector::new(db, references);

    let mut group = c.benchmark_group("streaming_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(idn_count as u64));
    for batch in [64usize, 1_024] {
        group.bench_function(format!("push_{batch}"), |b| {
            b.iter(|| std::hint::black_box(stream_pass(&detector, &idns, batch)))
        });
    }
    group.bench_function("one_shot", |b| {
        b.iter(|| {
            std::hint::black_box(
                detector
                    .detect(&idns, DbSelection::Union, Indexing::CanonicalClosure)
                    .len(),
            )
        })
    });
    group.finish();

    snapshot_thread_sweep(
        "streaming_ingest",
        &["push_64", "push_1024", "one_shot"],
        |name| {
            measure_ops_per_sec(idn_count, snapshot_samples(), || match name {
                "push_64" => {
                    std::hint::black_box(stream_pass(&detector, &idns, 64));
                }
                "push_1024" => {
                    std::hint::black_box(stream_pass(&detector, &idns, 1_024));
                }
                _ => {
                    std::hint::black_box(
                        detector
                            .detect(&idns, DbSelection::Union, Indexing::CanonicalClosure)
                            .len(),
                    );
                }
            })
        },
    );
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
