//! Substrate cost — Punycode encode/decode and full-name parsing.
//!
//! Step 2 of the framework decodes every `xn--` label in a 141 M-name
//! zone, so the codec sits on the ingest hot path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sham_punycode::{ace, bootstring, DomainName};

fn inputs() -> Vec<String> {
    vec![
        "bücher".to_string(),
        "münchen".to_string(),
        "gооgle".to_string(),
        "阿里巴巴".to_string(),
        "한국어도메인".to_string(),
        "ドメイン名例".to_string(),
        "facébook".to_string(),
        "пример".to_string(),
    ]
}

fn bench_punycode(c: &mut Criterion) {
    let unicode = inputs();
    let encoded: Vec<String> =
        unicode.iter().map(|s| bootstring::encode(s).unwrap()).collect();
    let full_names: Vec<String> = unicode
        .iter()
        .map(|s| format!("{}.com", ace::to_ascii(s).unwrap()))
        .collect();

    let mut group = c.benchmark_group("punycode");
    group.throughput(Throughput::Elements(unicode.len() as u64));

    group.bench_function("encode", |b| {
        b.iter(|| {
            for s in &unicode {
                std::hint::black_box(bootstring::encode(s).unwrap());
            }
        })
    });
    group.bench_function("decode", |b| {
        b.iter(|| {
            for s in &encoded {
                std::hint::black_box(bootstring::decode(s).unwrap());
            }
        })
    });
    group.bench_function("domain_parse_and_unicode", |b| {
        b.iter(|| {
            for s in &full_names {
                let d = DomainName::parse(s).unwrap();
                std::hint::black_box(d.unicode_without_tld());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_punycode);
criterion_main!(benches);
