//! Ablation — Algorithm 1 candidate-generation strategies.
//!
//! Naive all-pairs matching (the paper notes the |N|·|M|·|L| complexity),
//! the paper's length bucketing, and the canonical-closure index this
//! reproduction adds (union-find component hashing — exact even for
//! non-transitive pair sets, and the framework default). All three
//! produce identical detections (asserted in unit and property tests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sham_bench::detection_corpus;
use sham_confusables::UcDatabase;
use sham_core::{Detector, Indexing};
use sham_glyph::SynthUnifont;
use sham_simchar::{build, BuildConfig, DbSelection, HomoglyphDb, Repertoire};

fn bench_variants(c: &mut Criterion) {
    let font = SynthUnifont::v12();
    let simchar = build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Cyrillic",
            ]),
            ..BuildConfig::default()
        },
    )
    .db;
    let (references, idns) = detection_corpus(2_000);
    let db = HomoglyphDb::new(simchar, UcDatabase::embedded());
    let detector = Detector::new(db, references);

    let mut group = c.benchmark_group("detection_variants");
    group.sample_size(10);
    for (name, indexing) in [
        ("naive", Indexing::Naive),
        ("length_bucket", Indexing::LengthBucket),
        ("canonical_closure", Indexing::CanonicalClosure),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &indexing, |b, &ix| {
            b.iter(|| {
                std::hint::black_box(
                    detector.detect(&idns, DbSelection::Union, ix).len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
