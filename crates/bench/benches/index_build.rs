//! Detector-construction cost — the price of the fast default path.
//!
//! `CanonicalClosure` detection is fast because everything expensive
//! happens once at construction: interning the pair universe into the
//! two-level page table, union-finding the component closure, laying
//! the CSR adjacency out, and closure-hashing the reference list. This
//! bench times those builds so a regression in index construction is as
//! visible in `BENCH_detection.json` as a regression in query
//! throughput:
//!
//! * `flat_index` — `FlatPairIndex::build` alone (interner + union-find
//!   + CSR over SimChar ∪ UC).
//! * `flat_index_load` — `FlatPairIndex::read_from` on a serialized
//!   snapshot (the serve-path alternative to building: checksum +
//!   linear array copy, no union-find).
//! * `detector` — the full `HomoglyphDb::new` + `Detector::new` path,
//!   including the closure-hash index over the 10k-reference list.
//! * `refset_build` — the reference-list half alone: arena interning,
//!   closure hashing and the two sorted candidate runs over 10k stems.
//! * `detector_10k_refs_mount` — the v3 cold start:
//!   `DetectionIndex::from_snapshot` mounting pair index *and*
//!   reference set from serialized bytes (checksum + pointer fixups,
//!   no rebuild) — the zero-rebuild alternative to `detector_10k_refs`.
//!
//! Snapshot entries are builds/sec (per worker-thread count, matching
//! the other sections' layout; construction itself is single-threaded).

use criterion::{criterion_group, criterion_main, Criterion};
use sham_bench::{
    detection_corpus, measure_ops_per_sec, snapshot_samples, snapshot_thread_sweep,
};
use sham_confusables::UcDatabase;
use sham_core::{DetectionIndex, Detector, ReferenceSet};
use sham_glyph::SynthUnifont;
use sham_simchar::{build, BuildConfig, FlatPairIndex, HomoglyphDb, Repertoire};

fn simchar_db() -> sham_simchar::SimCharDb {
    let font = SynthUnifont::v12();
    build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Latin Extended-A",
                "Cyrillic",
                "Greek and Coptic",
            ]),
            ..BuildConfig::default()
        },
    )
    .db
}

fn bench_index_build(c: &mut Criterion) {
    // The component databases are Arc-shared exactly as a worker fleet
    // shares them: each mount pays two refcount bumps, not two deep
    // copies.
    let simchar = std::sync::Arc::new(simchar_db());
    let uc = std::sync::Arc::new(UcDatabase::embedded());
    let (references, _) = detection_corpus(0);

    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);

    group.bench_function("flat_index", |b| {
        b.iter(|| std::hint::black_box(FlatPairIndex::build(&simchar, &uc).char_count()))
    });
    let snapshot = serialized_index(&simchar, &uc);
    group.bench_function("flat_index_load", |b| {
        b.iter(|| {
            std::hint::black_box(
                FlatPairIndex::read_from(&mut snapshot.as_slice())
                    .expect("snapshot loads")
                    .char_count(),
            )
        })
    });
    group.bench_function("detector_10k_refs", |b| {
        b.iter(|| {
            let db = HomoglyphDb::new(simchar.clone(), uc.clone());
            std::hint::black_box(
                Detector::new(db, references.iter().cloned()).reference_count(),
            )
        })
    });
    let db = HomoglyphDb::new(simchar.clone(), uc.clone());
    group.bench_function("refset_build", |b| {
        b.iter(|| {
            std::hint::black_box(
                ReferenceSet::build(&db, references.iter().cloned()).live_count(),
            )
        })
    });
    let full = serialized_full_index(db, &references);
    group.bench_function("detector_10k_refs_mount", |b| {
        b.iter(|| {
            std::hint::black_box(
                DetectionIndex::from_snapshot_bytes(&full, simchar.clone(), uc.clone())
                    .expect("full snapshot mounts")
                    .reference_count(),
            )
        })
    });
    group.finish();

    write_snapshot(&simchar, &uc, &references);
}

/// Merges builds/sec into the `index_build` section of
/// `BENCH_detection.json`.
fn write_snapshot(
    simchar: &std::sync::Arc<sham_simchar::SimCharDb>,
    uc: &std::sync::Arc<UcDatabase>,
    references: &[String],
) {
    let serialized = serialized_index(simchar, uc);
    let db = HomoglyphDb::new(simchar.clone(), uc.clone());
    let full = serialized_full_index(db.clone(), references);
    snapshot_thread_sweep(
        "index_build",
        &[
            "flat_index",
            "flat_index_load",
            "detector_10k_refs",
            "refset_build",
            "detector_10k_refs_mount",
        ],
        |name| {
            measure_ops_per_sec(1, snapshot_samples(), || match name {
                "flat_index" => {
                    std::hint::black_box(FlatPairIndex::build(simchar, uc).char_count());
                }
                "flat_index_load" => {
                    std::hint::black_box(
                        FlatPairIndex::read_from(&mut serialized.as_slice())
                            .expect("snapshot loads")
                            .char_count(),
                    );
                }
                "refset_build" => {
                    std::hint::black_box(
                        ReferenceSet::build(&db, references.iter().cloned()).live_count(),
                    );
                }
                "detector_10k_refs_mount" => {
                    std::hint::black_box(
                        DetectionIndex::from_snapshot_bytes(
                            &full,
                            simchar.clone(),
                            uc.clone(),
                        )
                        .expect("full snapshot mounts")
                        .reference_count(),
                    );
                }
                _ => {
                    let db = HomoglyphDb::new(simchar.clone(), uc.clone());
                    std::hint::black_box(
                        Detector::new(db, references.iter().cloned()).reference_count(),
                    );
                }
            })
        },
    );
}

/// One serialized snapshot of the built index, reused by every load
/// measurement.
fn serialized_index(simchar: &sham_simchar::SimCharDb, uc: &UcDatabase) -> Vec<u8> {
    let mut bytes = Vec::new();
    FlatPairIndex::build(simchar, uc)
        .write_to(&mut bytes)
        .expect("serialize index");
    bytes
}

/// One serialized v3 full-index snapshot (pair index + 10k-reference
/// section), reused by every mount measurement.
fn serialized_full_index(db: HomoglyphDb, references: &[String]) -> Vec<u8> {
    let index = DetectionIndex::new(db, references.iter().cloned());
    let mut bytes = Vec::new();
    index.write_snapshot(&mut bytes).expect("serialize full index");
    bytes
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
