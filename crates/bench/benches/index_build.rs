//! Detector-construction cost — the price of the fast default path.
//!
//! `CanonicalClosure` detection is fast because everything expensive
//! happens once at construction: interning the pair universe into the
//! two-level page table, union-finding the component closure, laying
//! the CSR adjacency out, and closure-hashing the reference list. This
//! bench times those builds so a regression in index construction is as
//! visible in `BENCH_detection.json` as a regression in query
//! throughput:
//!
//! * `flat_index` — `FlatPairIndex::build` alone (interner + union-find
//!   + CSR over SimChar ∪ UC).
//! * `flat_index_load` — `FlatPairIndex::read_from` on a serialized
//!   snapshot (the serve-path alternative to building: checksum +
//!   linear array copy, no union-find).
//! * `detector` — the full `HomoglyphDb::new` + `Detector::new` path,
//!   including the closure-hash index over the 10k-reference list.
//!
//! Snapshot entries are builds/sec (per worker-thread count, matching
//! the other sections' layout; construction itself is single-threaded).

use criterion::{criterion_group, criterion_main, Criterion};
use sham_bench::{
    detection_corpus, measure_ops_per_sec, snapshot_samples, snapshot_thread_sweep,
};
use sham_confusables::UcDatabase;
use sham_core::Detector;
use sham_glyph::SynthUnifont;
use sham_simchar::{build, BuildConfig, FlatPairIndex, HomoglyphDb, Repertoire};

fn simchar_db() -> sham_simchar::SimCharDb {
    let font = SynthUnifont::v12();
    build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Latin Extended-A",
                "Cyrillic",
                "Greek and Coptic",
            ]),
            ..BuildConfig::default()
        },
    )
    .db
}

fn bench_index_build(c: &mut Criterion) {
    let simchar = simchar_db();
    let uc = UcDatabase::embedded();
    let (references, _) = detection_corpus(0);

    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);

    group.bench_function("flat_index", |b| {
        b.iter(|| std::hint::black_box(FlatPairIndex::build(&simchar, &uc).char_count()))
    });
    let snapshot = serialized_index(&simchar, &uc);
    group.bench_function("flat_index_load", |b| {
        b.iter(|| {
            std::hint::black_box(
                FlatPairIndex::read_from(&mut snapshot.as_slice())
                    .expect("snapshot loads")
                    .char_count(),
            )
        })
    });
    group.bench_function("detector_10k_refs", |b| {
        b.iter(|| {
            let db = HomoglyphDb::new(simchar.clone(), uc.clone());
            std::hint::black_box(
                Detector::new(db, references.iter().cloned()).references().len(),
            )
        })
    });
    group.finish();

    write_snapshot(&simchar, &uc, &references);
}

/// Merges builds/sec into the `index_build` section of
/// `BENCH_detection.json`.
fn write_snapshot(
    simchar: &sham_simchar::SimCharDb,
    uc: &UcDatabase,
    references: &[String],
) {
    let serialized = serialized_index(simchar, uc);
    snapshot_thread_sweep(
        "index_build",
        &["flat_index", "flat_index_load", "detector_10k_refs"],
        |name| {
            measure_ops_per_sec(1, snapshot_samples(), || match name {
                "flat_index" => {
                    std::hint::black_box(FlatPairIndex::build(simchar, uc).char_count());
                }
                "flat_index_load" => {
                    std::hint::black_box(
                        FlatPairIndex::read_from(&mut serialized.as_slice())
                            .expect("snapshot loads")
                            .char_count(),
                    );
                }
                _ => {
                    let db = HomoglyphDb::new(simchar.clone(), uc.clone());
                    std::hint::black_box(
                        Detector::new(db, references.iter().cloned()).references().len(),
                    );
                }
            })
        },
    );
}

/// One serialized snapshot of the built index, reused by every load
/// measurement.
fn serialized_index(simchar: &sham_simchar::SimCharDb, uc: &UcDatabase) -> Vec<u8> {
    let mut bytes = Vec::new();
    FlatPairIndex::build(simchar, uc)
        .write_to(&mut bytes)
        .expect("serialize index");
    bytes
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
