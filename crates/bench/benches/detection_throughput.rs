//! §4.2 — homograph detection throughput.
//!
//! The paper scans 955 K IDNs against the Alexa top-10k in 743.6 s, i.e.
//! 0.07 s per reference domain. This bench measures the same matching
//! loop (length-bucketed Algorithm 1) per batch of IDNs against the full
//! 10k reference list, at several corpus sizes.
//!
//! Besides the criterion timings it writes the `detection_throughput`
//! section of `BENCH_detection.json` at the workspace root: IDNs/sec on
//! the 10k-reference corpus for `LengthBucket` (ablation baseline) and
//! `CanonicalClosure` (the default path) at 1 worker thread vs all
//! available threads, so the perf trajectory of the parallel executor
//! is tracked from PR to PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sham_bench::{
    detection_corpus, measure_ops_per_sec, snapshot_samples, snapshot_thread_sweep,
};
use sham_confusables::UcDatabase;
use sham_core::{Detector, Indexing};
use sham_glyph::SynthUnifont;
use sham_simchar::{build, BuildConfig, DbSelection, HomoglyphDb, Repertoire};

fn simchar_db() -> sham_simchar::SimCharDb {
    let font = SynthUnifont::v12();
    build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Latin Extended-A",
                "Cyrillic",
                "Greek and Coptic",
            ]),
            ..BuildConfig::default()
        },
    )
    .db
}

fn bench_detection(c: &mut Criterion) {
    let simchar = simchar_db();

    let mut group = c.benchmark_group("detection_throughput");
    group.sample_size(10);

    for idn_count in [1_000usize, 5_000, 20_000] {
        let (references, idns) = detection_corpus(idn_count);
        let db = HomoglyphDb::new(simchar.clone(), UcDatabase::embedded());
        let detector = Detector::new(db, references);
        group.throughput(Throughput::Elements(idn_count as u64));
        group.bench_with_input(
            BenchmarkId::new("alexa10k_refs", idn_count),
            &idns,
            |b, idns| {
                b.iter(|| {
                    std::hint::black_box(
                        detector
                            .detect(idns, DbSelection::Union, Indexing::LengthBucket)
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();

    write_snapshot(&simchar);
}

/// Measures IDNs/sec on the 10k-reference corpus for the two indexed
/// strategies and merges the numbers into `BENCH_detection.json`.
fn write_snapshot(simchar: &sham_simchar::SimCharDb) {
    let idn_count = 10_000usize;
    let (references, idns) = detection_corpus(idn_count);
    let db = HomoglyphDb::new(simchar.clone(), UcDatabase::embedded());
    let detector = Detector::new(db, references);

    snapshot_thread_sweep(
        "detection_throughput",
        &["length_bucket", "canonical_closure"],
        |name| {
            let indexing = match name {
                "length_bucket" => Indexing::LengthBucket,
                _ => Indexing::CanonicalClosure,
            };
            measure_ops_per_sec(idn_count, snapshot_samples(), || {
                std::hint::black_box(
                    detector.detect(&idns, DbSelection::Union, indexing).len(),
                );
            })
        },
    );
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
