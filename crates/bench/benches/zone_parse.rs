//! Substrate cost — zone-file parsing throughput (the Step 1 ingest of a
//! 141 M-record zone dominates the paper's data pipeline wall time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sham_dns::{parse, parse_domain_list, parse_lenient};
use std::fmt::Write as _;

fn synth_zone(records: usize) -> String {
    let mut s = String::from("$ORIGIN com.\n$TTL 172800\n");
    for i in 0..records {
        let _ = writeln!(s, "name{i} IN NS ns{}.hosting{}.example.", i % 2 + 1, i % 97);
        if i % 3 == 0 {
            let _ = writeln!(s, "name{i} IN A 198.51.{}.{}", (i / 250) % 256, i % 250 + 1);
        }
    }
    s
}

fn synth_list(names: usize) -> String {
    let mut s = String::new();
    for i in 0..names {
        let _ = writeln!(s, "name{i}.com");
        if i % 11 == 0 {
            let _ = writeln!(s, "xn--nme{i}-koa.com");
        }
    }
    s
}

fn bench_zone(c: &mut Criterion) {
    let mut group = c.benchmark_group("zone_parse");
    group.sample_size(10);

    for records in [10_000usize, 50_000] {
        let text = synth_zone(records);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::new("strict", records), &text, |b, text| {
            b.iter(|| std::hint::black_box(parse(text, "com").unwrap().records.len()))
        });
        group.bench_with_input(BenchmarkId::new("lenient", records), &text, |b, text| {
            b.iter(|| std::hint::black_box(parse_lenient(text, "com").0.records.len()))
        });
    }

    let list = synth_list(50_000);
    group.throughput(Throughput::Bytes(list.len() as u64));
    group.bench_function("domain_list_50k", |b| {
        b.iter(|| std::hint::black_box(parse_domain_list(&list).0.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_zone);
criterion_main!(benches);
