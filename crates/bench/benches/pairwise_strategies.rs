//! Ablation — pairwise comparison strategies (DESIGN.md §5).
//!
//! The paper brute-forces all ~1.4 B glyph pairs (10.9 h on 15 cores).
//! This bench compares that baseline against the two exact accelerations
//! on identical inputs: ink-count window pruning and the banded-signature
//! index. All three return identical pair sets (asserted in the simchar
//! unit tests); only the cost differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sham_bench::{
    glyphs_for, measure_ops_per_sec, medium_glyph_corpus, snapshot_samples,
    snapshot_thread_sweep,
};
use sham_simchar::{find_pairs, Strategy};

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairwise_strategies");
    group.sample_size(10);

    let medium = medium_glyph_corpus();
    for (name, strategy) in [
        ("brute_force", Strategy::BruteForce),
        ("pixel_count_prune", Strategy::PixelCountPrune),
        ("banded_index", Strategy::BandedIndex),
    ] {
        group.bench_with_input(
            BenchmarkId::new("medium", name),
            &strategy,
            |b, &strategy| {
                b.iter(|| std::hint::black_box(find_pairs(&medium, 4, strategy).len()))
            },
        );
    }

    // The Hangul-dominated corpus is where the accelerations matter: the
    // brute-force quadratic blows up while the index stays tractable.
    let hangul = glyphs_for(vec!["Hangul Syllables"]);
    for (name, strategy) in [
        ("pixel_count_prune", Strategy::PixelCountPrune),
        ("banded_index", Strategy::BandedIndex),
    ] {
        group.bench_with_input(
            BenchmarkId::new("hangul_11k", name),
            &strategy,
            |b, &strategy| {
                b.iter(|| std::hint::black_box(find_pairs(&hangul, 4, strategy).len()))
            },
        );
    }
    group.finish();

    write_snapshot(&medium);
}

/// Measures glyphs/sec of each strategy over the medium corpus and
/// merges the numbers into the `pairwise_strategies` section of
/// `BENCH_detection.json`.
fn write_snapshot(medium: &[(u32, sham_glyph::Bitmap)]) {
    snapshot_thread_sweep(
        "pairwise_strategies",
        &["brute_force", "pixel_count_prune", "banded_index"],
        |name| {
            let strategy = match name {
                "brute_force" => Strategy::BruteForce,
                "pixel_count_prune" => Strategy::PixelCountPrune,
                _ => Strategy::BandedIndex,
            };
            measure_ops_per_sec(medium.len(), snapshot_samples(), || {
                std::hint::black_box(find_pairs(medium, 4, strategy).len());
            })
        },
    );
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
