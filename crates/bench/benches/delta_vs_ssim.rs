//! Ablation — Δ vs MSE/PSNR vs SSIM (paper §3.3).
//!
//! The paper argues for the raw pixel difference over perceptual metrics.
//! This bench quantifies the cost side of that argument: Δ is a handful
//! of XOR/popcounts; SSIM is two orders of magnitude more work per pair,
//! which matters when Step II compares ~10⁹ pairs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sham_bench::medium_glyph_corpus;
use sham_glyph::metrics::{delta, mse, psnr, ssim};

fn bench_metrics(c: &mut Criterion) {
    let glyphs = medium_glyph_corpus();
    let pairs: Vec<_> = glyphs
        .iter()
        .zip(glyphs.iter().skip(1))
        .take(256)
        .map(|((_, a), (_, b))| (*a, *b))
        .collect();

    let mut group = c.benchmark_group("delta_vs_ssim");
    group.throughput(Throughput::Elements(pairs.len() as u64));

    group.bench_function("delta", |b| {
        b.iter(|| {
            let total: u64 = pairs.iter().map(|(x, y)| u64::from(delta(x, y))).sum();
            std::hint::black_box(total)
        })
    });
    group.bench_function("mse", |b| {
        b.iter(|| {
            let total: f64 = pairs.iter().map(|(x, y)| mse(x, y)).sum();
            std::hint::black_box(total)
        })
    });
    group.bench_function("psnr", |b| {
        b.iter(|| {
            let total: f64 = pairs
                .iter()
                .map(|(x, y)| {
                    let p = psnr(x, y);
                    if p.is_finite() { p } else { 0.0 }
                })
                .sum();
            std::hint::black_box(total)
        })
    });
    group.bench_function("ssim", |b| {
        b.iter(|| {
            let total: f64 = pairs.iter().map(|(x, y)| ssim(x, y)).sum();
            std::hint::black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
