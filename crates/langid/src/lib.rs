//! Language identification for IDN labels (paper §5.2, Table 7).
//!
//! The paper runs LangID over the Unicode form of every registered IDN to
//! ask which languages drive IDN adoption (answer: Chinese, Korean and
//! Japanese dominate, with German and Turkish the largest Latin-script
//! contributors). This substrate classifies a label by a script histogram
//! plus per-language diacritic markers — exactly the evidence an IDN
//! label offers (an IDN label is non-ASCII by definition, so markers are
//! always present).

use serde::{Deserialize, Serialize};
use sham_unicode::{script_of, CodePoint, Script};

/// Languages the classifier distinguishes (the paper's Table 7 rows plus
/// the other languages its corpus contains).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Language {
    Chinese,
    Japanese,
    Korean,
    German,
    Turkish,
    French,
    Spanish,
    Vietnamese,
    Russian,
    Arabic,
    Hebrew,
    Greek,
    Thai,
    English,
    Other,
}

impl Language {
    /// Display name (matching the paper's Table 7 spellings where they
    /// appear there).
    pub fn name(self) -> &'static str {
        match self {
            Language::Chinese => "Chinese",
            Language::Japanese => "Japanese",
            Language::Korean => "Korean",
            Language::German => "German",
            Language::Turkish => "Turkish",
            Language::French => "French",
            Language::Spanish => "Spanish",
            Language::Vietnamese => "Vietnamese",
            Language::Russian => "Russian",
            Language::Arabic => "Arabic",
            Language::Hebrew => "Hebrew",
            Language::Greek => "Greek",
            Language::Thai => "Thai",
            Language::English => "English",
            Language::Other => "Other",
        }
    }
}

/// A classification with supporting evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Identification {
    /// Most plausible language.
    pub language: Language,
    /// Fraction of characters supporting the call (0.0–1.0).
    pub confidence: f64,
}

/// Latin-script diacritic markers per language. Vietnamese has the most
/// distinctive repertoire, so it carries the highest weight; `ç` is
/// shared between French and Turkish and is weighted weakly.
fn latin_marker_score(c: char) -> Option<(Language, u32)> {
    let v = c as u32;
    if (0x1EA0..=0x1EF9).contains(&v) || matches!(c, 'ơ' | 'ư' | 'đ' | 'ă') {
        return Some((Language::Vietnamese, 3));
    }
    // Turkish-specific letters are decisive: they outweigh any number of
    // shared umlauts in domain-sized text (e.g. "düğün" is Turkish).
    if matches!(c, 'ğ' | 'ş' | 'ı' | 'İ') {
        return Some((Language::Turkish, 5));
    }
    if matches!(c, 'ß') {
        return Some((Language::German, 3));
    }
    if matches!(c, 'ä' | 'ö' | 'ü') {
        return Some((Language::German, 2));
    }
    if matches!(c, 'é' | 'è' | 'ê' | 'ë' | 'à' | 'â' | 'î' | 'ï' | 'ô' | 'û' | 'ù' | 'œ') {
        return Some((Language::French, 2));
    }
    if matches!(c, 'ñ' | 'á' | 'í' | 'ó' | 'ú') {
        return Some((Language::Spanish, 2));
    }
    // ç is shared between Turkish and French; Turkish uses it more
    // densely in domain-sized text, so lean Turkish at low weight.
    if c == 'ç' {
        return Some((Language::Turkish, 1));
    }
    None
}

/// Identifies the most plausible language of a label.
///
/// Separators and ASCII digits are ignored: they carry no language
/// signal, and IDN labels frequently end in numeric disambiguators.
pub fn identify(text: &str) -> Identification {
    let chars: Vec<char> = text
        .chars()
        .filter(|c| *c != '.' && *c != '-' && !c.is_ascii_digit())
        .collect();
    if chars.is_empty() {
        return Identification { language: Language::Other, confidence: 0.0 };
    }
    let total = chars.len() as f64;

    // Script histogram.
    let mut han = 0usize;
    let mut kana = 0usize;
    let mut hangul = 0usize;
    let mut latin = 0usize;
    let mut script_votes: std::collections::BTreeMap<Language, usize> = Default::default();
    for &c in &chars {
        match script_of(CodePoint::from(c)) {
            Script::Han => han += 1,
            Script::Hiragana | Script::Katakana => kana += 1,
            Script::Hangul => hangul += 1,
            Script::Latin => latin += 1,
            Script::Cyrillic => *script_votes.entry(Language::Russian).or_default() += 1,
            Script::Arabic => *script_votes.entry(Language::Arabic).or_default() += 1,
            Script::Hebrew => *script_votes.entry(Language::Hebrew).or_default() += 1,
            Script::Greek => *script_votes.entry(Language::Greek).or_default() += 1,
            Script::Thai => *script_votes.entry(Language::Thai).or_default() += 1,
            _ => {}
        }
    }

    // CJK resolution: any kana ⇒ Japanese (Japanese text mixes Han and
    // kana); Hangul ⇒ Korean; Han-only ⇒ Chinese.
    if kana > 0 && kana + han >= chars.len() / 2 {
        return Identification {
            language: Language::Japanese,
            confidence: (kana + han) as f64 / total,
        };
    }
    if hangul > 0 {
        return Identification { language: Language::Korean, confidence: hangul as f64 / total };
    }
    if han > 0 && han >= chars.len() / 2 {
        return Identification { language: Language::Chinese, confidence: han as f64 / total };
    }

    // Non-Latin alphabetic scripts.
    if let Some((&lang, &votes)) = script_votes.iter().max_by_key(|&(_, &v)| v) {
        if votes * 2 >= chars.len() {
            return Identification { language: lang, confidence: votes as f64 / total };
        }
    }

    // Latin: diacritic markers decide.
    if latin > 0 {
        let mut scores: std::collections::BTreeMap<Language, u32> = Default::default();
        for &c in &chars {
            if let Some((lang, w)) = latin_marker_score(c) {
                *scores.entry(lang).or_default() += w;
            }
        }
        if let Some((&lang, &score)) = scores.iter().max_by_key(|&(_, &s)| s) {
            if score > 0 {
                let marked = chars.iter().filter(|&&c| latin_marker_score(c).is_some()).count();
                return Identification {
                    language: lang,
                    confidence: (marked as f64 / total).min(1.0),
                };
            }
        }
        // Plain ASCII label.
        return Identification { language: Language::English, confidence: 0.5 };
    }

    Identification { language: Language::Other, confidence: 0.0 }
}

/// Aggregates identifications into Table 7 rows:
/// `(language, count, fraction)` sorted by count descending.
pub fn table7_rows(labels: impl IntoIterator<Item = Language>) -> Vec<(Language, usize, f64)> {
    let mut counts: std::collections::BTreeMap<Language, usize> = Default::default();
    let mut total = 0usize;
    for l in labels {
        *counts.entry(l).or_default() += 1;
        total += 1;
    }
    let mut rows: Vec<(Language, usize, f64)> = counts
        .into_iter()
        .map(|(l, c)| (l, c, c as f64 / total.max(1) as f64))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lang(s: &str) -> Language {
        identify(s).language
    }

    #[test]
    fn cjk_resolution() {
        assert_eq!(lang("阿里巴巴"), Language::Chinese);
        assert_eq!(lang("工業大学"), Language::Chinese); // Han-only
        assert_eq!(lang("さくら"), Language::Japanese);
        assert_eq!(lang("東京タワー"), Language::Japanese); // Han + Katakana
        assert_eq!(lang("한국어"), Language::Korean);
    }

    #[test]
    fn latin_diacritic_languages() {
        assert_eq!(lang("münchen"), Language::German);
        assert_eq!(lang("straße"), Language::German);
        assert_eq!(lang("türkiye-şehir"), Language::Turkish);
        assert_eq!(lang("ığdır"), Language::Turkish);
        assert_eq!(lang("café-élysée"), Language::French);
        assert_eq!(lang("españa-señor"), Language::Spanish);
        assert_eq!(lang("việtnam"), Language::Vietnamese);
    }

    #[test]
    fn other_scripts() {
        assert_eq!(lang("привет"), Language::Russian);
        assert_eq!(lang("שלום"), Language::Hebrew);
        assert_eq!(lang("ελληνικά"), Language::Greek);
        assert_eq!(lang("ไทยแลนด์"), Language::Thai);
    }

    #[test]
    fn ascii_is_english_and_empty_is_other() {
        assert_eq!(lang("example"), Language::English);
        assert_eq!(identify("").language, Language::Other);
        assert_eq!(identify("---").language, Language::Other);
    }

    #[test]
    fn confidence_reflects_evidence() {
        let strong = identify("한국어");
        assert!(strong.confidence > 0.9);
        let weak = identify("abcdefgü");
        assert!(weak.confidence < 0.5);
    }

    #[test]
    fn dots_and_hyphens_ignored() {
        assert_eq!(lang("mün-chen.shop"), Language::German);
    }

    #[test]
    fn table7_aggregation() {
        let rows = table7_rows(vec![
            Language::Chinese,
            Language::Chinese,
            Language::Korean,
            Language::German,
        ]);
        assert_eq!(rows[0], (Language::Chinese, 2, 0.5));
        assert_eq!(rows[1].1, 1);
    }

    #[test]
    fn deterministic() {
        for s in ["阿里巴巴", "münchen", "한국어"] {
            assert_eq!(identify(s), identify(s));
        }
    }
}
