//! Likert-scale statistics and boxplot summaries (Figures 9 and 10).

use serde::{Deserialize, Serialize};

/// Five-level confusability score (paper §4.1):
/// 1 = very distinct … 5 = very confusing.
pub type Score = u8;

/// Boxplot summary in the paper's figure configuration: median notch,
/// mean dashes, quartile box, 1.5·IQR whiskers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Number of responses.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (Q2).
    pub median: f64,
    /// First quartile.
    pub q1: f64,
    /// Third quartile.
    pub q3: f64,
    /// Lower whisker (smallest value ≥ Q1 − 1.5·IQR).
    pub whisker_low: f64,
    /// Upper whisker (largest value ≤ Q3 + 1.5·IQR).
    pub whisker_high: f64,
}

/// Linear-interpolation quantile over a sorted slice.
fn quantile(sorted: &[Score], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return f64::from(sorted[0]);
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    f64::from(sorted[lo]) * (1.0 - frac) + f64::from(sorted[hi]) * frac
}

impl BoxStats {
    /// Computes the summary of a score sample. Returns `None` for empty
    /// samples.
    pub fn compute(scores: &[Score]) -> Option<BoxStats> {
        if scores.is_empty() {
            return None;
        }
        let mut sorted = scores.to_vec();
        sorted.sort_unstable();
        let mean = sorted.iter().map(|&s| f64::from(s)).sum::<f64>() / sorted.len() as f64;
        let median = quantile(&sorted, 0.5);
        let q1 = quantile(&sorted, 0.25);
        let q3 = quantile(&sorted, 0.75);
        let iqr = q3 - q1;
        let low_fence = q1 - 1.5 * iqr;
        let high_fence = q3 + 1.5 * iqr;
        let whisker_low = sorted
            .iter()
            .map(|&s| f64::from(s))
            .find(|&v| v >= low_fence)
            .unwrap_or(f64::from(sorted[0]));
        let whisker_high = sorted
            .iter()
            .rev()
            .map(|&s| f64::from(s))
            .find(|&v| v <= high_fence)
            .unwrap_or(f64::from(*sorted.last().expect("non-empty")));
        Some(BoxStats { n: sorted.len(), mean, median, q1, q3, whisker_low, whisker_high })
    }

    /// One-line rendering for figure output.
    pub fn render_row(&self, label: &str) -> String {
        format!(
            "{label:>10}  n={:<5} mean={:.2} median={:.1} Q1={:.1} Q3={:.1} whiskers=[{:.1}, {:.1}]",
            self.n, self.mean, self.median, self.q1, self.q3, self.whisker_low, self.whisker_high
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(BoxStats::compute(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = BoxStats::compute(&[4]).unwrap();
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.q1, 4.0);
        assert_eq!(s.whisker_high, 4.0);
    }

    #[test]
    fn known_quartiles() {
        let s = BoxStats::compute(&[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn whiskers_respect_fences() {
        // One extreme outlier among tight values.
        let mut scores = vec![3u8; 50];
        scores.push(5);
        let s = BoxStats::compute(&scores).unwrap();
        // IQR = 0 ⇒ fences at 3.0; the 5 is an outlier beyond the whisker.
        assert_eq!(s.whisker_high, 3.0);
    }

    #[test]
    fn mean_and_median_diverge_on_skew() {
        let s = BoxStats::compute(&[1, 1, 1, 1, 5]).unwrap();
        assert_eq!(s.median, 1.0);
        assert!(s.mean > 1.5);
    }

    #[test]
    fn render_contains_values() {
        let s = BoxStats::compute(&[2, 3, 4]).unwrap();
        let row = s.render_row("Δ=4");
        assert!(row.contains("mean=3.00"));
        assert!(row.contains("n=3"));
    }
}
