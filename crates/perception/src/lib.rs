//! Human-perception study simulator (paper §4.1).
//!
//! The paper validates SimChar's θ = 4 threshold and compares SimChar's
//! and UC's confusability with MTurk crowd studies. Crowd workers are not
//! available offline, so this crate substitutes a calibrated psychometric
//! model (DESIGN.md §3): raters with individual bias and noise, a
//! careless-rater subpopulation, the paper's catch-trial filters applied
//! literally, and Likert/boxplot statistics for Figures 9–10.
//!
//! * [`model`] — the rater model and latent confusability curve.
//! * [`experiment`] — the deck/run/filter/aggregate harness.
//! * [`stats`] — boxplot summaries.
//! * [`context`] — the §7.1 word-context extension: substitution
//!   visibility diluted by surrounding characters.

pub mod context;
pub mod experiment;
pub mod model;
pub mod stats;

pub use experiment::{
    experiment1_deck, experiment2_deck, run, DeckItem, ExperimentConfig, ExperimentOutcome,
};
pub use context::{run_word_experiment, ContextOutcome, WordStimulus};
pub use model::{latent_mean, Rater, Stimulus};
pub use stats::{BoxStats, Score};
