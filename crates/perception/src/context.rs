//! Context-aware confusability — the paper's §7.1 future-work item.
//!
//! The paper evaluates homoglyphs one character at a time and notes that
//! "as homoglyphs are generally abused in a word or even in a sentence,
//! we may also need to study the confusability of homoglyphs by using
//! words … because this context may affect the user's perception." This
//! module implements that extension: a word-level stimulus model in
//! which a substitution's visibility is *diluted* by the surrounding
//! characters — a single `օ` hides better inside `myetherwallet` than
//! inside `oo`.

use crate::model::{latent_mean, Stimulus};
use crate::stats::{BoxStats, Score};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A word-level stimulus: the reference word shown next to a homograph
/// with the given per-substitution pixel deltas.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WordStimulus {
    /// Character length of the word.
    pub word_len: usize,
    /// Pixel Δ of each substituted position.
    pub deltas: Vec<u32>,
}

impl WordStimulus {
    /// Effective per-character visibility of the substitutions: total
    /// changed ink spread over the word. A single Δ=4 substitution in a
    /// 4-letter word is as visible as Δ=4 on its own; the same
    /// substitution in a 13-letter word is diluted ~3×.
    pub fn effective_delta(&self) -> f64 {
        if self.deltas.is_empty() {
            return 0.0;
        }
        let total: u32 = self.deltas.iter().sum();
        let dilution = (self.word_len as f64 / 4.0).max(1.0);
        f64::from(total) / dilution
    }

    /// Latent word-level confusability on the 1–5 scale: interpolate the
    /// single-character latent curve at the effective delta.
    pub fn latent_mean(&self) -> f64 {
        let eff = self.effective_delta();
        let lo = eff.floor() as u32;
        let hi = lo + 1;
        let frac = eff - f64::from(lo);
        let at = |d: u32| latent_mean(Stimulus::Pair { delta: d.min(8) });
        at(lo) * (1.0 - frac) + at(hi) * frac
    }
}

/// Aggregate outcome of the word-context experiment.
#[derive(Debug, Clone)]
pub struct ContextOutcome {
    /// Per-condition statistics, keyed by condition label.
    pub by_condition: Vec<(String, BoxStats)>,
}

/// Runs the word-context experiment: each `(label, stimulus)` judged by
/// `raters` simulated participants with the usual bias/noise model.
pub fn run_word_experiment(
    conditions: &[(String, WordStimulus)],
    raters: usize,
    seed: u64,
) -> ContextOutcome {
    let mut by_condition = Vec::new();
    for (label, stimulus) in conditions {
        let mut scores: Vec<Score> = Vec::with_capacity(raters);
        for rater in 0..raters {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (rater as u64).wrapping_mul(0x9E37_79B9));
            let bias: f64 = rng.gen_range(-0.4..0.4);
            let noise: f64 = rng.gen_range(-0.8..0.8);
            let score = (stimulus.latent_mean() + bias + noise).round().clamp(1.0, 5.0);
            scores.push(score as Score);
        }
        if let Some(stats) = BoxStats::compute(&scores) {
            by_condition.push((label.clone(), stats));
        }
    }
    ContextOutcome { by_condition }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stim(word_len: usize, deltas: &[u32]) -> WordStimulus {
        WordStimulus { word_len, deltas: deltas.to_vec() }
    }

    #[test]
    fn longer_words_dilute_substitutions() {
        // The same Δ=4 homoglyph is judged more confusable (harder to
        // spot) inside a longer word.
        let short = stim(4, &[4]);
        let long = stim(13, &[4]);
        assert!(long.latent_mean() > short.latent_mean());
        assert!(long.effective_delta() < short.effective_delta());
    }

    #[test]
    fn more_substitutions_reduce_confusability() {
        // Two substitutions in the same word are easier to notice.
        let one = stim(6, &[3]);
        let two = stim(6, &[3, 3]);
        assert!(two.latent_mean() < one.latent_mean());
    }

    #[test]
    fn perfect_twins_stay_perfect_in_any_context() {
        let s = stim(10, &[0]);
        assert_eq!(s.effective_delta(), 0.0);
        assert!(s.latent_mean() > 4.7);
    }

    #[test]
    fn word_experiment_orders_conditions() {
        let conditions = vec![
            ("single-char".to_string(), stim(4, &[4])),
            ("in-myetherwallet".to_string(), stim(13, &[4])),
            ("double-sub".to_string(), stim(6, &[4, 4])),
        ];
        let outcome = run_word_experiment(&conditions, 120, 42);
        let get = |name: &str| {
            outcome
                .by_condition
                .iter()
                .find(|(c, _)| c == name)
                .map(|(_, s)| s.mean)
                .unwrap()
        };
        assert!(get("in-myetherwallet") > get("single-char"));
        assert!(get("double-sub") < get("single-char"));
    }

    #[test]
    fn deterministic() {
        let conditions = vec![("x".to_string(), stim(8, &[2]))];
        let a = run_word_experiment(&conditions, 50, 7);
        let b = run_word_experiment(&conditions, 50, 7);
        assert_eq!(a.by_condition[0].1.mean, b.by_condition[0].1.mean);
    }
}
