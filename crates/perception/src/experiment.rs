//! The MTurk experiment harness (paper §4.1).
//!
//! Reproduces the paper's protocol: assignments show one pair each;
//! participants must pass recruitment criteria; dummy pairs and Δ = 0
//! pairs act as catch trials; participants failing either filter have
//! *all* their responses removed; remaining responses aggregate into
//! per-condition boxplots (Figures 9 and 10).

use crate::model::{Rater, Stimulus};
use crate::stats::{BoxStats, Score};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A labelled stimulus in the task deck.
#[derive(Debug, Clone, PartialEq)]
pub struct DeckItem {
    /// Condition label used for aggregation (e.g. `delta=4`, `SimChar`,
    /// `UC`, `Random`).
    pub condition: String,
    /// What the participant sees.
    pub stimulus: Stimulus,
}

/// One recorded response.
#[derive(Debug, Clone)]
pub struct ResponseRecord {
    /// Responding rater.
    pub rater: usize,
    /// Deck index answered.
    pub item: usize,
    /// Likert score given.
    pub score: Score,
}

/// Experiment configuration mirroring the paper's setup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of recruited participants (before filtering).
    pub raters: usize,
    /// Population rate of careless raters, per mille.
    pub careless_permille: u32,
    /// Reward per assignment in US cents (the paper pays 5¢).
    pub reward_cents: u32,
    /// Seconds a typical assignment takes (the paper measured ~15 s).
    pub seconds_per_assignment: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            raters: 30,
            careless_permille: 150,
            reward_cents: 5,
            seconds_per_assignment: 15,
            seed: 0x5EED,
        }
    }
}

/// Experiment outcome.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Per-condition score statistics after filtering.
    pub by_condition: Vec<(String, BoxStats)>,
    /// Raters removed by the quality filters.
    pub removed_raters: usize,
    /// Responses that survived filtering.
    pub effective_responses: usize,
    /// Total payout in US cents (all responses are paid, filtered or not).
    pub total_reward_cents: u64,
    /// Implied hourly compensation in USD (paper: ≈ 12 USD/h).
    pub hourly_rate_usd: f64,
}

/// Runs the experiment: every rater judges every deck item.
pub fn run(deck: &[DeckItem], config: &ExperimentConfig) -> ExperimentOutcome {
    let mut responses: Vec<ResponseRecord> = Vec::with_capacity(deck.len() * config.raters);
    for rater_id in 0..config.raters {
        let mut rater = Rater::new(rater_id, config.seed, config.careless_permille);
        for (item_idx, item) in deck.iter().enumerate() {
            let score = rater.judge(item.stimulus);
            responses.push(ResponseRecord { rater: rater_id, item: item_idx, score });
        }
    }

    // Quality filters (paper §4.1): a rater is unreliable if they judged
    // any dummy as confusing (score ≥ 4) or any Δ = 0 pair as distinct
    // (score ≤ 2). All of an unreliable rater's responses are removed.
    let mut unreliable: Vec<bool> = vec![false; config.raters];
    for r in &responses {
        match deck[r.item].stimulus {
            Stimulus::Dummy if r.score >= 4 => unreliable[r.rater] = true,
            Stimulus::Pair { delta: 0 } if r.score <= 2 => unreliable[r.rater] = true,
            _ => {}
        }
    }

    let kept: Vec<&ResponseRecord> =
        responses.iter().filter(|r| !unreliable[r.rater]).collect();

    let mut per_condition: HashMap<&str, Vec<Score>> = HashMap::new();
    for r in &kept {
        per_condition
            .entry(deck[r.item].condition.as_str())
            .or_default()
            .push(r.score);
    }
    let mut by_condition: Vec<(String, BoxStats)> = per_condition
        .into_iter()
        .filter_map(|(cond, scores)| {
            BoxStats::compute(&scores).map(|s| (cond.to_string(), s))
        })
        .collect();
    by_condition.sort_by(|a, b| a.0.cmp(&b.0));

    let total_assignments = responses.len() as u64;
    let total_reward_cents = total_assignments * u64::from(config.reward_cents);
    let hourly_rate_usd = if config.seconds_per_assignment == 0 {
        0.0
    } else {
        f64::from(config.reward_cents) / 100.0 * 3600.0
            / f64::from(config.seconds_per_assignment)
    };

    ExperimentOutcome {
        by_condition,
        removed_raters: unreliable.iter().filter(|&&u| u).count(),
        effective_responses: kept.len(),
        total_reward_cents,
        hourly_rate_usd,
    }
}

/// Builds the paper's Experiment 1 deck: `pairs_per_delta` pairs for each
/// Δ in `0..=max_delta` plus `dummies` catch trials.
pub fn experiment1_deck(max_delta: u32, pairs_per_delta: usize, dummies: usize) -> Vec<DeckItem> {
    let mut deck = Vec::new();
    for delta in 0..=max_delta {
        for _ in 0..pairs_per_delta {
            deck.push(DeckItem {
                condition: format!("delta={delta}"),
                stimulus: Stimulus::Pair { delta },
            });
        }
    }
    for _ in 0..dummies {
        deck.push(DeckItem { condition: "Random".to_string(), stimulus: Stimulus::Dummy });
    }
    deck
}

/// Builds the Experiment 2 deck from actual pair Δ values sampled from
/// the SimChar build (`simchar_deltas`, all ≤ θ) and the UC list
/// (`uc_deltas`, measured with the same font — UC contains semantic pairs
/// with large pixel distance, which is what drags its scores below
/// SimChar's in Figure 10).
pub fn experiment2_deck(
    simchar_deltas: &[u32],
    uc_deltas: &[u32],
    dummies: usize,
) -> Vec<DeckItem> {
    let mut deck = Vec::new();
    for &d in simchar_deltas {
        deck.push(DeckItem {
            condition: "SimChar".to_string(),
            stimulus: Stimulus::Pair { delta: d },
        });
    }
    for &d in uc_deltas {
        deck.push(DeckItem { condition: "UC".to_string(), stimulus: Stimulus::Pair { delta: d } });
    }
    for _ in 0..dummies {
        deck.push(DeckItem { condition: "Random".to_string(), stimulus: Stimulus::Dummy });
    }
    deck
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_for<'a>(outcome: &'a ExperimentOutcome, cond: &str) -> &'a BoxStats {
        &outcome
            .by_condition
            .iter()
            .find(|(c, _)| c == cond)
            .unwrap_or_else(|| panic!("missing condition {cond}"))
            .1
    }

    #[test]
    fn experiment1_reproduces_figure9_shape() {
        let deck = experiment1_deck(8, 20, 30);
        let outcome = run(&deck, &ExperimentConfig::default());
        let at4 = stats_for(&outcome, "delta=4");
        let at5 = stats_for(&outcome, "delta=5");
        // Paper: Δ=4 → mean 3.57 / median 4; Δ=5 → mean 2.57 / median 2-3.
        assert!((at4.mean - 3.6).abs() < 0.35, "Δ=4 mean {}", at4.mean);
        assert_eq!(at4.median, 4.0);
        assert!((at5.mean - 2.6).abs() < 0.35, "Δ=5 mean {}", at5.mean);
        assert!(at5.median <= 3.0);
        // Monotone decrease of means across Δ.
        let means: Vec<f64> =
            (0..=8).map(|d| stats_for(&outcome, &format!("delta={d}")).mean).collect();
        for w in means.windows(2) {
            assert!(w[0] >= w[1] - 0.15, "means not decreasing: {means:?}");
        }
    }

    #[test]
    fn experiment2_reproduces_figure10_shape() {
        // SimChar pairs live at Δ ≤ 4; UC mixes small and large distances.
        let simchar: Vec<u32> = (0..100).map(|i| i % 5).collect();
        let uc: Vec<u32> = (0..30).map(|i| if i % 3 == 0 { 7 } else { i % 5 }).collect();
        let deck = experiment2_deck(&simchar, &uc, 30);
        let outcome = run(&deck, &ExperimentConfig::default());
        let sim = stats_for(&outcome, "SimChar");
        let uc_s = stats_for(&outcome, "UC");
        let rand = stats_for(&outcome, "Random");
        assert!(sim.mean > 4.0, "SimChar mean {}", sim.mean);
        assert!(uc_s.mean < sim.mean, "UC {} !< SimChar {}", uc_s.mean, sim.mean);
        assert_eq!(sim.median, 4.0);
        assert!(rand.mean < 2.0, "Random mean {}", rand.mean);
    }

    #[test]
    fn quality_filters_remove_careless_raters() {
        let deck = experiment1_deck(4, 10, 20);
        let strict = run(
            &deck,
            &ExperimentConfig { careless_permille: 400, ..ExperimentConfig::default() },
        );
        assert!(strict.removed_raters > 0);
        // Careless raters answer uniformly, so with 20 dummies they are
        // caught with overwhelming probability.
        let clean = run(
            &deck,
            &ExperimentConfig { careless_permille: 0, ..ExperimentConfig::default() },
        );
        assert!(clean.removed_raters <= clean.effective_responses);
        assert!(strict.effective_responses < deck.len() * 30);
    }

    #[test]
    fn reward_accounting_matches_paper() {
        let deck = experiment1_deck(0, 1, 0);
        let outcome = run(&deck, &ExperimentConfig::default());
        // 5¢ per 15 s ⇒ 12 USD/h, inside the paper's 7–12 USD/h band.
        assert!((outcome.hourly_rate_usd - 12.0).abs() < 1e-9);
        assert_eq!(outcome.total_reward_cents, 30 * 5);
    }

    #[test]
    fn deterministic_outcomes() {
        let deck = experiment1_deck(2, 5, 5);
        let a = run(&deck, &ExperimentConfig::default());
        let b = run(&deck, &ExperimentConfig::default());
        assert_eq!(a.effective_responses, b.effective_responses);
        for ((ca, sa), (cb, sb)) in a.by_condition.iter().zip(&b.by_condition) {
            assert_eq!(ca, cb);
            assert_eq!(sa.mean, sb.mean);
        }
    }
}
