//! Psychometric rater model (DESIGN.md §3 substitution for MTurk).
//!
//! Calibrated so the simulated crowd reproduces the paper's §4.1
//! findings: pairs at Δ = 4 score mean ≈ 3.6 / median 4 ("confusing"),
//! pairs at Δ = 5 drop to mean ≈ 2.6 / median 2 ("distinct") — the cliff
//! that justifies θ = 4 — and random pairs concentrate at "very
//! distinct".

use crate::stats::Score;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a participant is shown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stimulus {
    /// A candidate homoglyph pair with its true pixel difference.
    Pair {
        /// Pixel difference Δ of the two glyphs.
        delta: u32,
    },
    /// A dummy pair of two entirely unrelated characters (catch trial).
    Dummy,
}

/// Latent mean confusability for a stimulus, on the 1–5 scale.
///
/// Piecewise calibration with the paper's cliff between Δ = 4 and Δ = 5.
pub fn latent_mean(stimulus: Stimulus) -> f64 {
    match stimulus {
        Stimulus::Pair { delta } => match delta {
            0 => 4.85,
            1 => 4.60,
            2 => 4.30,
            3 => 3.95,
            4 => 3.60,
            5 => 2.55,
            6 => 2.10,
            7 => 1.75,
            _ => 1.50,
        },
        Stimulus::Dummy => 1.25,
    }
}

/// A simulated crowd worker.
#[derive(Debug, Clone)]
pub struct Rater {
    /// Stable identifier.
    pub id: usize,
    /// Systematic bias added to every judgement (lenient/strict raters).
    pub bias: f64,
    /// A careless rater answers uniformly at random — the behaviour the
    /// paper's catch trials are designed to detect.
    pub careless: bool,
    rng: StdRng,
}

impl Rater {
    /// Creates a rater. `careless_permille` is the population rate of
    /// careless raters (the paper filters them out post hoc).
    pub fn new(id: usize, seed: u64, careless_permille: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9));
        let careless = rng.gen_range(0..1000u32) < careless_permille;
        let bias = rng.gen_range(-0.4..0.4);
        Rater { id, bias, careless, rng }
    }

    /// Produces a Likert judgement for a stimulus.
    pub fn judge(&mut self, stimulus: Stimulus) -> Score {
        if self.careless {
            return self.rng.gen_range(1..=5);
        }
        let mu = latent_mean(stimulus) + self.bias;
        let noise: f64 = self.rng.gen_range(-0.8..0.8);
        (mu + noise).round().clamp(1.0, 5.0) as Score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latent_mean_is_monotone_in_delta() {
        let mut prev = f64::INFINITY;
        for d in 0..=8 {
            let m = latent_mean(Stimulus::Pair { delta: d });
            assert!(m < prev, "not monotone at delta {d}");
            prev = m;
        }
        assert!(latent_mean(Stimulus::Dummy) < latent_mean(Stimulus::Pair { delta: 8 }));
    }

    #[test]
    fn paper_cliff_between_4_and_5() {
        let at4 = latent_mean(Stimulus::Pair { delta: 4 });
        let at5 = latent_mean(Stimulus::Pair { delta: 5 });
        assert!(at4 > 3.4 && at4 < 3.8, "Δ=4 mean {at4}");
        assert!(at5 > 2.3 && at5 < 2.8, "Δ=5 mean {at5}");
        assert!(at4 - at5 > 0.8, "cliff too small");
    }

    #[test]
    fn honest_raters_track_latent_mean() {
        let mut r = Rater::new(1, 42, 0);
        assert!(!r.careless);
        let scores: Vec<Score> =
            (0..500).map(|_| r.judge(Stimulus::Pair { delta: 0 })).collect();
        let mean = scores.iter().map(|&s| f64::from(s)).sum::<f64>() / 500.0;
        assert!(mean > 4.2, "mean = {mean}");
        let dummy: Vec<Score> = (0..500).map(|_| r.judge(Stimulus::Dummy)).collect();
        let dmean = dummy.iter().map(|&s| f64::from(s)).sum::<f64>() / 500.0;
        assert!(dmean < 2.2, "dummy mean = {dmean}");
    }

    #[test]
    fn careless_rate_controls_population() {
        let careless = (0..300)
            .filter(|&i| Rater::new(i, 7, 300).careless)
            .count();
        assert!(careless > 50 && careless < 150, "careless = {careless}");
        assert!((0..300).all(|i| !Rater::new(i, 7, 0).careless));
    }

    #[test]
    fn judgements_are_deterministic_per_seed() {
        let run = |seed| {
            let mut r = Rater::new(3, seed, 0);
            (0..10).map(|d| r.judge(Stimulus::Pair { delta: d % 9 })).collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
