//! Simulated DNS resolver over in-memory zones.
//!
//! The paper's active-analysis phase (§6.1) checks, for every detected
//! homograph, whether NS records exist, whether A records exist, and only
//! then port-scans. The study here runs against generated zones, so the
//! resolver is a lookup structure over [`crate::zone::Zone`] contents with
//! CNAME chasing — behaviourally the part of a resolver those checks need.

use crate::records::{RecordData, RecordType, ResourceRecord};
use crate::zone::Zone;
use sham_punycode::DomainName;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Maximum CNAME chain length before giving up (loop guard).
const MAX_CNAME_DEPTH: usize = 8;

/// Outcome of a lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// Records found.
    Records(Vec<RecordData>),
    /// The name exists but has no records of the requested type.
    NoData,
    /// The name does not exist at all.
    NxDomain,
}

impl LookupResult {
    /// True when at least one record was returned.
    pub fn is_positive(&self) -> bool {
        matches!(self, LookupResult::Records(_))
    }
}

/// An in-memory resolver.
#[derive(Debug, Default)]
pub struct SimResolver {
    by_name: HashMap<DomainName, Vec<ResourceRecord>>,
}

impl SimResolver {
    /// Builds a resolver from zones.
    pub fn new(zones: impl IntoIterator<Item = Zone>) -> Self {
        let mut by_name: HashMap<DomainName, Vec<ResourceRecord>> = HashMap::new();
        for zone in zones {
            for r in zone.records {
                by_name.entry(r.name.clone()).or_default().push(r);
            }
        }
        SimResolver { by_name }
    }

    /// Number of distinct names with records.
    pub fn name_count(&self) -> usize {
        self.by_name.len()
    }

    /// Looks up `rtype` records for `name`, chasing CNAMEs.
    pub fn lookup(&self, name: &DomainName, rtype: RecordType) -> LookupResult {
        let mut current = name.clone();
        for _ in 0..MAX_CNAME_DEPTH {
            let Some(records) = self.by_name.get(&current) else {
                return LookupResult::NxDomain;
            };
            let matching: Vec<RecordData> = records
                .iter()
                .filter(|r| r.data.record_type() == rtype)
                .map(|r| r.data.clone())
                .collect();
            if !matching.is_empty() {
                return LookupResult::Records(matching);
            }
            // Chase a CNAME if present (and the query was not for CNAME).
            let cname = records.iter().find_map(|r| match &r.data {
                RecordData::Cname(target) if rtype != RecordType::Cname => Some(target.clone()),
                _ => None,
            });
            match cname {
                Some(target) => current = target,
                None => return LookupResult::NoData,
            }
        }
        LookupResult::NoData
    }

    /// True when the name has NS records — the paper's liveness gate
    /// before deeper probing.
    pub fn has_ns(&self, name: &DomainName) -> bool {
        self.lookup(name, RecordType::Ns).is_positive()
    }

    /// The NS target host names for a domain.
    pub fn ns_hosts(&self, name: &DomainName) -> Vec<DomainName> {
        match self.lookup(name, RecordType::Ns) {
            LookupResult::Records(rs) => rs
                .into_iter()
                .filter_map(|d| match d {
                    RecordData::Ns(h) => Some(h),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// A records (following CNAME) for a domain.
    pub fn a_records(&self, name: &DomainName) -> Vec<Ipv4Addr> {
        match self.lookup(name, RecordType::A) {
            LookupResult::Records(rs) => rs
                .into_iter()
                .filter_map(|d| match d {
                    RecordData::A(ip) => Some(ip),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// True when the name has an MX record (Table 11's MX column).
    pub fn has_mx(&self, name: &DomainName) -> bool {
        self.lookup(name, RecordType::Mx).is_positive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::parse;

    fn resolver() -> SimResolver {
        let zone = parse(
            "$ORIGIN com.\n\
             alive IN NS ns1.hosting.example.\n\
             alive IN A 192.0.2.5\n\
             alive IN MX 10 mail.alive.com.\n\
             parked IN NS ns.parkingcrew.example.\n\
             www.alive IN CNAME alive.com.\n\
             deep IN CNAME www.alive.com.\n\
             loopy IN CNAME loopy2.com.\n\
             loopy2 IN CNAME loopy.com.\n",
            "com",
        )
        .unwrap();
        SimResolver::new([zone])
    }

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn direct_lookup() {
        let r = resolver();
        assert!(r.has_ns(&name("alive.com")));
        assert_eq!(r.a_records(&name("alive.com")), vec![Ipv4Addr::new(192, 0, 2, 5)]);
        assert!(r.has_mx(&name("alive.com")));
        assert!(!r.has_mx(&name("parked.com")));
    }

    #[test]
    fn nxdomain_vs_nodata() {
        let r = resolver();
        assert_eq!(r.lookup(&name("missing.com"), RecordType::A), LookupResult::NxDomain);
        assert_eq!(r.lookup(&name("parked.com"), RecordType::A), LookupResult::NoData);
    }

    #[test]
    fn cname_chain_is_followed() {
        let r = resolver();
        assert_eq!(r.a_records(&name("www.alive.com")), vec![Ipv4Addr::new(192, 0, 2, 5)]);
        // Two-level chain.
        assert_eq!(r.a_records(&name("deep.com")), vec![Ipv4Addr::new(192, 0, 2, 5)]);
    }

    #[test]
    fn cname_loop_terminates() {
        let r = resolver();
        assert_eq!(r.lookup(&name("loopy.com"), RecordType::A), LookupResult::NoData);
    }

    #[test]
    fn ns_hosts_extraction() {
        let r = resolver();
        let hosts = r.ns_hosts(&name("parked.com"));
        assert_eq!(hosts.len(), 1);
        assert_eq!(hosts[0].as_ascii(), "ns.parkingcrew.example");
    }
}
