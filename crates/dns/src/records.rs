//! DNS resource-record model (the subset the measurement study needs).

use serde::{Deserialize, Serialize};
use sham_punycode::DomainName;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Record types supported by the zone parser and resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum RecordType {
    A,
    Aaaa,
    Ns,
    Mx,
    Cname,
    Txt,
}

impl RecordType {
    /// Presentation-format name.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordType::A => "A",
            RecordType::Aaaa => "AAAA",
            RecordType::Ns => "NS",
            RecordType::Mx => "MX",
            RecordType::Cname => "CNAME",
            RecordType::Txt => "TXT",
        }
    }

    /// Parses a presentation-format type name (case-insensitive,
    /// allocation-free — this runs once per line in the zone scanner).
    pub fn parse(s: &str) -> Option<Self> {
        const NAMES: [(&str, RecordType); 6] = [
            ("A", RecordType::A),
            ("AAAA", RecordType::Aaaa),
            ("NS", RecordType::Ns),
            ("MX", RecordType::Mx),
            ("CNAME", RecordType::Cname),
            ("TXT", RecordType::Txt),
        ];
        NAMES
            .iter()
            .find(|(name, _)| s.eq_ignore_ascii_case(name))
            .map(|&(_, t)| t)
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Typed record data.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Authoritative name server.
    Ns(DomainName),
    /// Mail exchanger with preference.
    Mx {
        /// MX preference value.
        preference: u16,
        /// Exchange host.
        exchange: DomainName,
    },
    /// Canonical name alias.
    Cname(DomainName),
    /// Free-form text.
    Txt(String),
}

impl RecordData {
    /// The record type of this data.
    pub fn record_type(&self) -> RecordType {
        match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Aaaa(_) => RecordType::Aaaa,
            RecordData::Ns(_) => RecordType::Ns,
            RecordData::Mx { .. } => RecordType::Mx,
            RecordData::Cname(_) => RecordType::Cname,
            RecordData::Txt(_) => RecordType::Txt,
        }
    }

    /// Presentation-format RDATA.
    pub fn rdata_string(&self) -> String {
        match self {
            RecordData::A(ip) => ip.to_string(),
            RecordData::Aaaa(ip) => ip.to_string(),
            RecordData::Ns(d) => format!("{d}."),
            RecordData::Mx { preference, exchange } => format!("{preference} {exchange}."),
            RecordData::Cname(d) => format!("{d}."),
            RecordData::Txt(t) => format!("\"{t}\""),
        }
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: DomainName,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Typed RDATA.
    pub data: RecordData,
}

impl fmt::Display for ResourceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.\t{}\tIN\t{}\t{}",
            self.name,
            self.ttl,
            self.data.record_type(),
            self.data.rdata_string()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_type_round_trip() {
        for t in [
            RecordType::A,
            RecordType::Aaaa,
            RecordType::Ns,
            RecordType::Mx,
            RecordType::Cname,
            RecordType::Txt,
        ] {
            assert_eq!(RecordType::parse(t.as_str()), Some(t));
        }
        assert_eq!(RecordType::parse("SOA"), None);
        assert_eq!(RecordType::parse("a"), Some(RecordType::A));
    }

    #[test]
    fn rdata_presentation() {
        let ns = RecordData::Ns(DomainName::parse("ns1.example.com").unwrap());
        assert_eq!(ns.rdata_string(), "ns1.example.com.");
        let mx = RecordData::Mx {
            preference: 10,
            exchange: DomainName::parse("mail.example.com").unwrap(),
        };
        assert_eq!(mx.rdata_string(), "10 mail.example.com.");
        let a = RecordData::A(Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(a.rdata_string(), "192.0.2.1");
    }

    #[test]
    fn display_is_master_file_shaped() {
        let rr = ResourceRecord {
            name: DomainName::parse("example.com").unwrap(),
            ttl: 3600,
            data: RecordData::A(Ipv4Addr::new(198, 51, 100, 7)),
        };
        assert_eq!(rr.to_string(), "example.com.\t3600\tIN\tA\t198.51.100.7");
    }
}
