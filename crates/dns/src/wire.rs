//! DNS wire-format message codec (RFC 1035 §4) and a loopback UDP
//! resolver pair.
//!
//! The measurement study's NS/A/MX checks (§6.1) are lookups a resolver
//! performs on the wire. The zone-level simulation answers most of the
//! reproduction's needs, but a substrate claiming DNS support should
//! speak the actual protocol: this module encodes and decodes DNS
//! messages — header, question and answer sections, including name
//! compression on decode — and provides a minimal UDP server/client pair
//! used by the integration tests to run real lookups against the
//! [`crate::resolver::SimResolver`].

use crate::records::{RecordData, RecordType};
use crate::resolver::{LookupResult, SimResolver};
use bytes::{Buf, BufMut, BytesMut};
use sham_punycode::DomainName;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Wire-level record type codes (RFC 1035 §3.2.2).
pub fn type_code(rtype: RecordType) -> u16 {
    match rtype {
        RecordType::A => 1,
        RecordType::Ns => 2,
        RecordType::Cname => 5,
        RecordType::Mx => 15,
        RecordType::Txt => 16,
        RecordType::Aaaa => 28,
    }
}

/// Inverse of [`type_code`].
pub fn type_from_code(code: u16) -> Option<RecordType> {
    match code {
        1 => Some(RecordType::A),
        2 => Some(RecordType::Ns),
        5 => Some(RecordType::Cname),
        15 => Some(RecordType::Mx),
        16 => Some(RecordType::Txt),
        28 => Some(RecordType::Aaaa),
        _ => None,
    }
}

/// Response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
}

impl Rcode {
    fn to_bits(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
        }
    }

    fn from_bits(bits: u8) -> Rcode {
        match bits & 0xF {
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            _ => Rcode::NoError,
        }
    }
}

/// A DNS question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name.
    pub name: DomainName,
    /// Queried type.
    pub rtype: RecordType,
}

/// A decoded answer record (name, type, TTL, RDATA in presentation form
/// where structured decoding is not needed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireAnswer {
    /// Owner name.
    pub name: DomainName,
    /// Record type.
    pub rtype: RecordType,
    /// TTL seconds.
    pub ttl: u32,
    /// Decoded RDATA.
    pub data: RecordData,
}

/// A DNS message (the subset the resolver exchange needs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Transaction id.
    pub id: u16,
    /// True for responses.
    pub response: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<WireAnswer>,
}

impl Message {
    /// Builds a query message.
    pub fn query(id: u16, name: DomainName, rtype: RecordType) -> Message {
        Message {
            id,
            response: false,
            rcode: Rcode::NoError,
            questions: vec![Question { name, rtype }],
            answers: Vec::new(),
        }
    }
}

/// Wire decode/encode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Message shorter than its structure claims.
    Truncated,
    /// A domain name failed validation.
    BadName(String),
    /// A compression pointer loops or points forward.
    BadPointer,
    /// A label exceeds 63 octets.
    LabelTooLong,
    /// Unsupported record type code in a context that needs decoding.
    UnsupportedType(u16),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadName(n) => write!(f, "bad name {n:?}"),
            WireError::BadPointer => write!(f, "bad compression pointer"),
            WireError::LabelTooLong => write!(f, "label exceeds 63 octets"),
            WireError::UnsupportedType(t) => write!(f, "unsupported rrtype {t}"),
        }
    }
}

impl std::error::Error for WireError {}

fn put_name(buf: &mut BytesMut, name: &DomainName) {
    for label in name.labels() {
        debug_assert!(label.len() <= 63);
        buf.put_u8(label.len() as u8);
        buf.put_slice(label.as_bytes());
    }
    buf.put_u8(0);
}

/// Encodes a message (no compression on encode — legal and simpler).
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(512);
    buf.put_u16(msg.id);
    let mut flags: u16 = 0;
    if msg.response {
        flags |= 0x8000;
        flags |= 0x0400; // AA
    } else {
        flags |= 0x0100; // RD
    }
    flags |= u16::from(msg.rcode.to_bits());
    buf.put_u16(flags);
    buf.put_u16(msg.questions.len() as u16);
    buf.put_u16(msg.answers.len() as u16);
    buf.put_u16(0); // NS count
    buf.put_u16(0); // AR count

    for q in &msg.questions {
        put_name(&mut buf, &q.name);
        buf.put_u16(type_code(q.rtype));
        buf.put_u16(1); // IN
    }
    for a in &msg.answers {
        put_name(&mut buf, &a.name);
        buf.put_u16(type_code(a.rtype));
        buf.put_u16(1);
        buf.put_u32(a.ttl);
        let mut rdata = BytesMut::new();
        match &a.data {
            RecordData::A(ip) => rdata.put_slice(&ip.octets()),
            RecordData::Aaaa(ip) => rdata.put_slice(&ip.octets()),
            RecordData::Ns(d) | RecordData::Cname(d) => put_name(&mut rdata, d),
            RecordData::Mx { preference, exchange } => {
                rdata.put_u16(*preference);
                put_name(&mut rdata, exchange);
            }
            RecordData::Txt(t) => {
                let bytes = t.as_bytes();
                let take = bytes.len().min(255);
                rdata.put_u8(take as u8);
                rdata.put_slice(&bytes[..take]);
            }
        }
        buf.put_u16(rdata.len() as u16);
        buf.put_slice(&rdata);
    }
    buf.to_vec()
}

/// Reads a (possibly compressed) name starting at `pos`; returns the name
/// and the position just past it in the original (uncompressed) stream.
fn read_name(data: &[u8], mut pos: usize) -> Result<(DomainName, usize), WireError> {
    let mut labels: Vec<String> = Vec::new();
    let mut jumped = false;
    let mut after = pos;
    let mut hops = 0;
    loop {
        let &len = data.get(pos).ok_or(WireError::Truncated)?;
        if len & 0xC0 == 0xC0 {
            // Compression pointer.
            let second = *data.get(pos + 1).ok_or(WireError::Truncated)? as usize;
            let target = ((len as usize & 0x3F) << 8) | second;
            if !jumped {
                after = pos + 2;
                jumped = true;
            }
            if target >= pos {
                return Err(WireError::BadPointer);
            }
            pos = target;
            hops += 1;
            if hops > 32 {
                return Err(WireError::BadPointer);
            }
            continue;
        }
        if len == 0 {
            if !jumped {
                after = pos + 1;
            }
            break;
        }
        if len > 63 {
            return Err(WireError::LabelTooLong);
        }
        let start = pos + 1;
        let end = start + len as usize;
        let raw = data.get(start..end).ok_or(WireError::Truncated)?;
        labels.push(String::from_utf8_lossy(raw).into_owned());
        pos = end;
    }
    if labels.is_empty() {
        return Err(WireError::BadName("<root>".into()));
    }
    let joined = labels.join(".");
    let name = DomainName::parse(&joined).map_err(|e| WireError::BadName(format!("{joined}: {e}")))?;
    Ok((name, after))
}

/// Decodes a message.
pub fn decode(data: &[u8]) -> Result<Message, WireError> {
    if data.len() < 12 {
        return Err(WireError::Truncated);
    }
    let mut header = &data[..12];
    let id = header.get_u16();
    let flags = header.get_u16();
    let qd = header.get_u16() as usize;
    let an = header.get_u16() as usize;
    let _ns = header.get_u16();
    let _ar = header.get_u16();

    let mut pos = 12usize;
    let mut questions = Vec::with_capacity(qd);
    for _ in 0..qd {
        let (name, after) = read_name(data, pos)?;
        let mut fixed = data.get(after..after + 4).ok_or(WireError::Truncated)?;
        let code = fixed.get_u16();
        let _class = fixed.get_u16();
        let rtype = type_from_code(code).ok_or(WireError::UnsupportedType(code))?;
        questions.push(Question { name, rtype });
        pos = after + 4;
    }

    let mut answers = Vec::with_capacity(an);
    for _ in 0..an {
        let (name, after) = read_name(data, pos)?;
        let mut fixed = data.get(after..after + 10).ok_or(WireError::Truncated)?;
        let code = fixed.get_u16();
        let _class = fixed.get_u16();
        let ttl = fixed.get_u32();
        let rdlen = fixed.get_u16() as usize;
        let rdata_start = after + 10;
        let rdata = data
            .get(rdata_start..rdata_start + rdlen)
            .ok_or(WireError::Truncated)?;
        let rtype = type_from_code(code).ok_or(WireError::UnsupportedType(code))?;
        let record = match rtype {
            RecordType::A => {
                if rdata.len() != 4 {
                    return Err(WireError::Truncated);
                }
                RecordData::A(std::net::Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3]))
            }
            RecordType::Aaaa => {
                let octets: [u8; 16] =
                    rdata.try_into().map_err(|_| WireError::Truncated)?;
                RecordData::Aaaa(std::net::Ipv6Addr::from(octets))
            }
            RecordType::Ns => RecordData::Ns(read_name(data, rdata_start)?.0),
            RecordType::Cname => RecordData::Cname(read_name(data, rdata_start)?.0),
            RecordType::Mx => {
                if rdata.len() < 3 {
                    return Err(WireError::Truncated);
                }
                let preference = u16::from_be_bytes([rdata[0], rdata[1]]);
                RecordData::Mx {
                    preference,
                    exchange: read_name(data, rdata_start + 2)?.0,
                }
            }
            RecordType::Txt => {
                let len = *rdata.first().ok_or(WireError::Truncated)? as usize;
                let text = rdata.get(1..1 + len).ok_or(WireError::Truncated)?;
                RecordData::Txt(String::from_utf8_lossy(text).into_owned())
            }
        };
        answers.push(WireAnswer { name, rtype, ttl, data: record });
        pos = rdata_start + rdlen;
    }

    Ok(Message {
        id,
        response: flags & 0x8000 != 0,
        rcode: Rcode::from_bits((flags & 0xF) as u8),
        questions,
        answers,
    })
}

/// A UDP DNS server answering from a [`SimResolver`]. Runs on a loopback
/// socket in a background thread; used by integration tests to exercise
/// the full wire path.
pub struct UdpDnsServer {
    addr: SocketAddr,
}

impl UdpDnsServer {
    /// Spawns the server on an ephemeral loopback port.
    pub fn spawn(resolver: SimResolver) -> std::io::Result<UdpDnsServer> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        let addr = socket.local_addr()?;
        std::thread::spawn(move || {
            let mut buf = [0u8; 1500];
            while let Ok((len, peer)) = socket.recv_from(&mut buf) {
                let reply = match decode(&buf[..len]) {
                    Ok(query) => answer(&resolver, &query),
                    Err(_) => continue,
                };
                let _ = socket.send_to(&encode(&reply), peer);
            }
        });
        Ok(UdpDnsServer { addr })
    }

    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Builds the response for a query against the resolver.
pub fn answer(resolver: &SimResolver, query: &Message) -> Message {
    let mut response = Message {
        id: query.id,
        response: true,
        rcode: Rcode::NoError,
        questions: query.questions.clone(),
        answers: Vec::new(),
    };
    let Some(q) = query.questions.first() else {
        response.rcode = Rcode::FormErr;
        return response;
    };
    match resolver.lookup(&q.name, q.rtype) {
        LookupResult::Records(records) => {
            for data in records {
                response.answers.push(WireAnswer {
                    name: q.name.clone(),
                    rtype: data.record_type(),
                    ttl: 300,
                    data,
                });
            }
        }
        LookupResult::NoData => {}
        LookupResult::NxDomain => response.rcode = Rcode::NxDomain,
    }
    response
}

/// A blocking UDP stub resolver client.
pub fn udp_query(
    server: SocketAddr,
    name: &DomainName,
    rtype: RecordType,
    timeout: Duration,
) -> std::io::Result<Message> {
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    socket.set_read_timeout(Some(timeout))?;
    let id = (std::process::id() as u16) ^ name.as_ascii().len() as u16 ^ 0x5A5A;
    let query = Message::query(id, name.clone(), rtype);
    socket.send_to(&encode(&query), server)?;
    let mut buf = [0u8; 1500];
    let (len, _) = socket.recv_from(&mut buf)?;
    decode(&buf[..len]).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::parse;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn query_round_trip() {
        let q = Message::query(0x1234, name("xn--ggle-55da.com"), RecordType::Ns);
        let bytes = encode(&q);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn response_with_all_record_types_round_trips() {
        let answers = vec![
            WireAnswer {
                name: name("a.com"),
                rtype: RecordType::A,
                ttl: 60,
                data: RecordData::A(Ipv4Addr::new(192, 0, 2, 7)),
            },
            WireAnswer {
                name: name("a.com"),
                rtype: RecordType::Ns,
                ttl: 60,
                data: RecordData::Ns(name("ns1.host.example")),
            },
            WireAnswer {
                name: name("a.com"),
                rtype: RecordType::Mx,
                ttl: 60,
                data: RecordData::Mx { preference: 10, exchange: name("mx.a.com") },
            },
            WireAnswer {
                name: name("a.com"),
                rtype: RecordType::Txt,
                ttl: 60,
                data: RecordData::Txt("hello".into()),
            },
        ];
        let msg = Message {
            id: 7,
            response: true,
            rcode: Rcode::NoError,
            questions: vec![Question { name: name("a.com"), rtype: RecordType::A }],
            answers,
        };
        let back = decode(&encode(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn decode_handles_compression_pointers() {
        // Hand-built message: question for a.com, answer NS with the
        // owner name as a pointer back to the question name.
        let mut buf = BytesMut::new();
        buf.put_u16(1); // id
        buf.put_u16(0x8400); // response + AA
        buf.put_u16(1); // qd
        buf.put_u16(1); // an
        buf.put_u16(0);
        buf.put_u16(0);
        // question name at offset 12: "a" "com"
        buf.put_u8(1);
        buf.put_slice(b"a");
        buf.put_u8(3);
        buf.put_slice(b"com");
        buf.put_u8(0);
        buf.put_u16(2); // NS
        buf.put_u16(1);
        // answer: pointer to offset 12
        buf.put_u8(0xC0);
        buf.put_u8(12);
        buf.put_u16(2); // NS
        buf.put_u16(1);
        buf.put_u32(300);
        // rdata: ns1.<pointer to "com" at offset 14>
        let rdata_len_pos = buf.len();
        buf.put_u16(0); // placeholder
        let rdata_start = buf.len();
        buf.put_u8(3);
        buf.put_slice(b"ns1");
        buf.put_u8(0xC0);
        buf.put_u8(14);
        let rdata_len = (buf.len() - rdata_start) as u16;
        buf[rdata_len_pos..rdata_len_pos + 2].copy_from_slice(&rdata_len.to_be_bytes());

        let msg = decode(&buf).unwrap();
        assert_eq!(msg.answers.len(), 1);
        assert_eq!(msg.answers[0].name.as_ascii(), "a.com");
        match &msg.answers[0].data {
            RecordData::Ns(ns) => assert_eq!(ns.as_ascii(), "ns1.com"),
            other => panic!("expected NS, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_forward_and_looping_pointers() {
        let mut buf = BytesMut::new();
        buf.put_u16(1);
        buf.put_u16(0x0100);
        buf.put_u16(1);
        buf.put_u16(0);
        buf.put_u16(0);
        buf.put_u16(0);
        // Pointer to itself at offset 12.
        buf.put_u8(0xC0);
        buf.put_u8(12);
        buf.put_u16(1);
        buf.put_u16(1);
        assert_eq!(decode(&buf), Err(WireError::BadPointer));
    }

    #[test]
    fn decode_rejects_truncation() {
        let q = Message::query(9, name("abc.com"), RecordType::A);
        let bytes = encode(&q);
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn udp_server_answers_real_queries() {
        let zone = parse(
            "$ORIGIN com.\n\
             alive IN NS ns1.host.example.\n\
             alive IN A 192.0.2.5\n\
             alive IN MX 10 mail.alive.com.\n",
            "com",
        )
        .unwrap();
        let server = UdpDnsServer::spawn(SimResolver::new([zone])).unwrap();

        let resp = udp_query(
            server.addr(),
            &name("alive.com"),
            RecordType::A,
            Duration::from_millis(800),
        )
        .unwrap();
        assert!(resp.response);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(
            resp.answers[0].data,
            RecordData::A(Ipv4Addr::new(192, 0, 2, 5))
        );

        // NXDOMAIN for a missing name.
        let resp = udp_query(
            server.addr(),
            &name("missing.com"),
            RecordType::A,
            Duration::from_millis(800),
        )
        .unwrap();
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert!(resp.answers.is_empty());

        // NoData for a type the name lacks.
        let resp = udp_query(
            server.addr(),
            &name("alive.com"),
            RecordType::Aaaa,
            Duration::from_millis(800),
        )
        .unwrap();
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
    }
}
