//! DNS master-file (zone file) parser and serializer.
//!
//! The measurement's Step 1 ingests the `.com` zone file (paper §5.2,
//! Verisign's published zone). This module implements the subset of
//! RFC 1035 master-file syntax such zone dumps use: `$ORIGIN` and `$TTL`
//! directives, `;` comments, `@` for the origin, relative and absolute
//! owner names, optional TTL/class fields, and the record types of
//! [`crate::records`].
//!
//! [`parse`] is strict (first error wins); [`parse_lenient`] skips bad
//! lines and reports them — zone dumps in the wild contain garbage, and
//! the failure-injection tests exercise exactly that.

use crate::records::{RecordData, RecordType, ResourceRecord};
use sham_punycode::DomainName;
use std::fmt::Write as _;

/// A parsed zone: an origin plus its records.
#[derive(Debug, Clone, Default)]
pub struct Zone {
    /// Zone origin (e.g. `com`).
    pub origin: String,
    /// Default TTL applied where records omit one.
    pub default_ttl: u32,
    /// All records in file order.
    pub records: Vec<ResourceRecord>,
}

impl Zone {
    /// Iterates the distinct owner names, in first-appearance order.
    pub fn owner_names(&self) -> Vec<&DomainName> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for r in &self.records {
            if seen.insert(&r.name) {
                out.push(&r.name);
            }
        }
        out
    }

    /// Serialises back to master-file text.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "$ORIGIN {}.", self.origin);
        let _ = writeln!(s, "$TTL {}", self.default_ttl);
        for r in &self.records {
            let _ = writeln!(s, "{r}");
        }
        s
    }
}

/// A line-level parse problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ZoneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zone line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ZoneError {}

fn err(line: usize, message: impl Into<String>) -> ZoneError {
    ZoneError { line, message: message.into() }
}

/// Resolves an owner-name token against the origin.
fn resolve_name(token: &str, origin: &str, line: usize) -> Result<DomainName, ZoneError> {
    let full = if token == "@" {
        origin.to_string()
    } else if let Some(absolute) = token.strip_suffix('.') {
        absolute.to_string()
    } else if origin.is_empty() {
        token.to_string()
    } else {
        format!("{token}.{origin}")
    };
    DomainName::parse(&full).map_err(|e| err(line, format!("bad name {token:?}: {e}")))
}

struct LineParser {
    origin: String,
    default_ttl: u32,
    last_owner: Option<DomainName>,
    /// The raw owner token `last_owner` was resolved from, under the
    /// current origin (reused buffer). A record line whose owner token
    /// matches byte-for-byte skips name resolution entirely — zone
    /// dumps list each delegation as a run of records for one owner,
    /// so this is the per-line hot path. Cleared when `$ORIGIN`
    /// changes (the same token would resolve differently).
    last_owner_token: String,
}

impl LineParser {
    fn new(fallback_origin: &str) -> Self {
        LineParser {
            origin: fallback_origin.to_string(),
            default_ttl: 86_400,
            last_owner: None,
            last_owner_token: String::new(),
        }
    }

    /// Parses one data line (comments/blank already stripped). Returns
    /// `Ok(None)` for directives.
    fn parse_line(&mut self, line: &str, no: usize) -> Result<Option<ResourceRecord>, ZoneError> {
        match self.scan_line(line, no, true)? {
            None => Ok(None),
            Some((_, ttl, data)) => Ok(Some(ResourceRecord {
                name: self
                    .last_owner
                    .clone()
                    .expect("scan_line resolves an owner for every record line"),
                ttl,
                data: data.expect("want_data builds record data"),
            })),
        }
    }

    /// The shared line machine behind [`LineParser::parse_line`] and
    /// the allocation-conscious scan path: validates the line exactly
    /// like a full parse (same accept/reject decisions, same error
    /// messages) and tracks the owner state, but materialises
    /// [`RecordData`] only when `want_data` is set. Returns `None` for
    /// directives and `Some((owner_changed, ttl, data))` for records;
    /// the resolved owner is left in `self.last_owner`.
    fn scan_line(
        &mut self,
        line: &str,
        no: usize,
        want_data: bool,
    ) -> Result<Option<(bool, u32, Option<RecordData>)>, ZoneError> {
        if let Some(rest) = line.strip_prefix("$ORIGIN") {
            let token = rest.trim().trim_end_matches('.');
            if token.is_empty() {
                return Err(err(no, "$ORIGIN requires a name"));
            }
            if token != self.origin {
                self.origin.clear();
                self.origin.push_str(token);
                // The cached owner token resolved against the old
                // origin; the same token now names a different owner.
                self.last_owner_token.clear();
            }
            return Ok(None);
        }
        if let Some(rest) = line.strip_prefix("$TTL") {
            self.default_ttl = rest
                .trim()
                .parse()
                .map_err(|e| err(no, format!("bad $TTL: {e}")))?;
            return Ok(None);
        }

        let starts_with_space = line.starts_with(' ') || line.starts_with('\t');
        let mut tokens = line.split_whitespace().peekable();

        // Owner: blank-led lines reuse the previous owner; a repeated
        // owner token reuses the previous resolution without
        // allocating (the dominant case — records arrive in
        // per-owner runs).
        let owner_changed = if starts_with_space {
            if self.last_owner.is_none() {
                return Err(err(no, "continuation line with no previous owner"));
            }
            false
        } else {
            let tok = tokens.next().ok_or_else(|| err(no, "empty record line"))?;
            if self.last_owner.is_some() && tok == self.last_owner_token {
                false
            } else {
                let owner = resolve_name(tok, &self.origin, no)?;
                self.last_owner = Some(owner);
                self.last_owner_token.clear();
                self.last_owner_token.push_str(tok);
                true
            }
        };

        // Optional TTL and class.
        let mut ttl = self.default_ttl;
        if let Some(tok) = tokens.peek() {
            if let Ok(v) = tok.parse::<u32>() {
                ttl = v;
                tokens.next();
            }
        }
        if tokens.peek().is_some_and(|t| t.eq_ignore_ascii_case("IN")) {
            tokens.next();
        }

        let type_tok = tokens.next().ok_or_else(|| err(no, "missing record type"))?;
        let rtype = RecordType::parse(type_tok)
            .ok_or_else(|| err(no, format!("unsupported record type {type_tok:?}")))?;

        let data = match rtype {
            RecordType::A => {
                let ip = tokens.next().ok_or_else(|| err(no, "A record missing address"))?;
                let addr: std::net::Ipv4Addr =
                    ip.parse().map_err(|e| err(no, format!("bad IPv4: {e}")))?;
                want_data.then_some(RecordData::A(addr))
            }
            RecordType::Aaaa => {
                let ip = tokens.next().ok_or_else(|| err(no, "AAAA record missing address"))?;
                let addr: std::net::Ipv6Addr =
                    ip.parse().map_err(|e| err(no, format!("bad IPv6: {e}")))?;
                want_data.then_some(RecordData::Aaaa(addr))
            }
            RecordType::Ns => {
                let t = tokens.next().ok_or_else(|| err(no, "NS record missing target"))?;
                let target = resolve_name(t, &self.origin, no)?;
                want_data.then_some(RecordData::Ns(target))
            }
            RecordType::Cname => {
                let t = tokens.next().ok_or_else(|| err(no, "CNAME missing target"))?;
                let target = resolve_name(t, &self.origin, no)?;
                want_data.then_some(RecordData::Cname(target))
            }
            RecordType::Mx => {
                let pref = tokens
                    .next()
                    .ok_or_else(|| err(no, "MX missing preference"))?
                    .parse()
                    .map_err(|e| err(no, format!("bad MX preference: {e}")))?;
                let t = tokens.next().ok_or_else(|| err(no, "MX missing exchange"))?;
                let exchange = resolve_name(t, &self.origin, no)?;
                want_data.then_some(RecordData::Mx { preference: pref, exchange })
            }
            // TXT payloads cannot fail validation; the scan path skips
            // the join entirely (no per-line String).
            RecordType::Txt => want_data.then(|| {
                let rest: Vec<&str> = tokens.collect();
                let joined = rest.join(" ");
                RecordData::Txt(joined.trim_matches('"').to_string())
            }),
        };
        Ok(Some((owner_changed, ttl, data)))
    }
}

/// What one scanned line contained, from [`ZoneStreamParser::scan_line`].
///
/// `Record` borrows the parser's resolved owner instead of cloning it —
/// the batch scan pipeline decides *whether* it wants the owner (dedup,
/// blacklist) before paying for an owned copy.
#[derive(Debug, PartialEq, Eq)]
pub enum ZoneScan<'a> {
    /// A well-formed record line. `new_owner` is false when the line
    /// reused the previous owner (continuation line or repeated owner
    /// token) — the consecutive-owner dedup signal, for free.
    Record {
        /// The record's owner name, borrowed from the parser state.
        owner: &'a DomainName,
        /// False when this line's owner is the same as the previous
        /// record line's.
        new_owner: bool,
    },
    /// A directive, comment, or blank line — nothing to detect on.
    Skip,
}

fn strip_comment(line: &str) -> &str {
    // A ';' inside a quoted TXT string is data, not a comment.
    let mut in_quotes = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            ';' if !in_quotes => return &line[..idx],
            _ => {}
        }
    }
    line
}

/// Incremental master-file parser: feed it one raw line at a time (in
/// any chunking a network read delivers) and collect records as they
/// complete.
///
/// This is the streaming face of [`parse`]/[`parse_lenient`]: the same
/// line-level machine ($ORIGIN/$TTL state, previous-owner
/// continuation, comment stripping), detached from any borrowed input
/// buffer so a connector can hold it across reads. A malformed line
/// yields `Err` for *that line only* — the parser state stays valid
/// and the next line parses normally, which is what lets an ingest
/// connector quarantine bad records instead of dying.
///
/// ```
/// use sham_dns::zone::ZoneStreamParser;
///
/// let mut parser = ZoneStreamParser::new("com");
/// assert!(parser.push_line("$ORIGIN com.").unwrap().is_none());
/// let rr = parser.push_line("google IN NS ns1.google.com.").unwrap().unwrap();
/// assert_eq!(rr.name.as_ascii(), "google.com");
/// assert!(parser.push_line("broken IN A nope").is_err());
/// // The error poisoned nothing: parsing continues.
/// assert!(parser.push_line("mail IN A 192.0.2.1").unwrap().is_some());
/// ```
pub struct ZoneStreamParser {
    inner: LineParser,
    line_no: usize,
}

impl ZoneStreamParser {
    /// A fresh parser resolving relative names against
    /// `fallback_origin` until a `$ORIGIN` directive overrides it.
    pub fn new(fallback_origin: &str) -> Self {
        ZoneStreamParser { inner: LineParser::new(fallback_origin), line_no: 0 }
    }

    /// Consumes one raw line (comments and surrounding blank space
    /// included). Returns `Ok(Some(record))` for a data line,
    /// `Ok(None)` for directives, comments and blanks, and `Err` for a
    /// malformed line — after which the parser remains usable.
    pub fn push_line(&mut self, raw: &str) -> Result<Option<ResourceRecord>, ZoneError> {
        self.line_no += 1;
        let line = strip_comment(raw);
        if line.trim().is_empty() {
            return Ok(None);
        }
        self.inner.parse_line(line, self.line_no)
    }

    /// Consumes one raw line like [`push_line`](Self::push_line) but
    /// without materialising a [`ResourceRecord`]: the owner comes back
    /// borrowed and record data (addresses, TXT payloads) is validated
    /// but never allocated. Accept/reject decisions and error messages
    /// are identical to `push_line` — the batch scanner and the strict
    /// parser classify every line the same way.
    ///
    /// On the dominant zone-dump shape (runs of records per owner) a
    /// well-formed `A` line allocates nothing at all.
    pub fn scan_line(&mut self, raw: &str) -> Result<ZoneScan<'_>, ZoneError> {
        self.line_no += 1;
        let line = strip_comment(raw);
        if line.trim().is_empty() {
            return Ok(ZoneScan::Skip);
        }
        match self.inner.scan_line(line, self.line_no, false)? {
            None => Ok(ZoneScan::Skip),
            Some((new_owner, _ttl, _data)) => Ok(ZoneScan::Record {
                owner: self
                    .inner
                    .last_owner
                    .as_ref()
                    .expect("scan_line resolves an owner for every record line"),
                new_owner,
            }),
        }
    }

    /// Lines consumed so far (1-based line number of the last push).
    pub fn lines_seen(&self) -> usize {
        self.line_no
    }

    /// The current origin (tracks `$ORIGIN` directives).
    pub fn origin(&self) -> &str {
        &self.inner.origin
    }

    /// The current default TTL (tracks `$TTL` directives).
    pub fn default_ttl(&self) -> u32 {
        self.inner.default_ttl
    }
}

/// Strict parse: the first malformed line aborts.
pub fn parse(text: &str, fallback_origin: &str) -> Result<Zone, ZoneError> {
    let mut parser = ZoneStreamParser::new(fallback_origin);
    let mut records = Vec::new();
    for raw in text.lines() {
        if let Some(rr) = parser.push_line(raw)? {
            records.push(rr);
        }
    }
    Ok(Zone {
        origin: parser.inner.origin,
        default_ttl: parser.inner.default_ttl,
        records,
    })
}

/// Lenient parse: malformed lines are collected, good lines kept.
pub fn parse_lenient(text: &str, fallback_origin: &str) -> (Zone, Vec<ZoneError>) {
    let mut parser = ZoneStreamParser::new(fallback_origin);
    let mut records = Vec::new();
    let mut errors = Vec::new();
    for raw in text.lines() {
        match parser.push_line(raw) {
            Ok(Some(rr)) => records.push(rr),
            Ok(None) => {}
            Err(e) => errors.push(e),
        }
    }
    (
        Zone {
            origin: parser.inner.origin,
            default_ttl: parser.inner.default_ttl,
            records,
        },
        errors,
    )
}

/// Parses a plain domain list (one name per line, `#` comments) — the
/// `domainlists.io`-style complement of Table 6.
pub fn parse_domain_list(text: &str) -> (Vec<DomainName>, usize) {
    let mut out = Vec::new();
    let mut bad = 0usize;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        match DomainName::parse(line) {
            Ok(d) => out.push(d),
            Err(_) => bad += 1,
        }
    }
    (out, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
$ORIGIN com.
$TTL 172800
; delegation records
google\tIN\tNS\tns1.google.com.
google\tIN\tNS\tns2.google.com.
xn--ggle-55da 3600 IN NS ns1.parking.example.
www.google IN A 192.0.2.10
mail IN MX 10 mx.mail.com.
alias IN CNAME www.google.com.
note IN TXT \"hello; world\"
";

    #[test]
    fn parses_sample_zone() {
        let zone = parse(SAMPLE, "com").unwrap();
        assert_eq!(zone.origin, "com");
        assert_eq!(zone.default_ttl, 172_800);
        assert_eq!(zone.records.len(), 7);
        assert_eq!(zone.records[0].name.as_ascii(), "google.com");
        assert_eq!(zone.records[2].ttl, 3600);
        assert_eq!(zone.records[2].name.as_ascii(), "xn--ggle-55da.com");
    }

    #[test]
    fn relative_and_absolute_names() {
        let zone = parse(SAMPLE, "com").unwrap();
        match &zone.records[0].data {
            RecordData::Ns(ns) => assert_eq!(ns.as_ascii(), "ns1.google.com"),
            other => panic!("expected NS, got {other:?}"),
        }
        match &zone.records[4].data {
            RecordData::Mx { preference, exchange } => {
                assert_eq!(*preference, 10);
                assert_eq!(exchange.as_ascii(), "mx.mail.com");
            }
            other => panic!("expected MX, got {other:?}"),
        }
    }

    #[test]
    fn quoted_semicolon_is_not_a_comment() {
        let zone = parse(SAMPLE, "com").unwrap();
        match &zone.records[6].data {
            RecordData::Txt(t) => assert_eq!(t, "hello; world"),
            other => panic!("expected TXT, got {other:?}"),
        }
    }

    #[test]
    fn at_sign_is_origin() {
        let zone = parse("$ORIGIN example.com.\n@ IN A 192.0.2.1\n", "").unwrap();
        assert_eq!(zone.records[0].name.as_ascii(), "example.com");
    }

    #[test]
    fn continuation_lines_reuse_owner() {
        let text = "$ORIGIN com.\ngoogle IN NS ns1.google.com.\n\tIN NS ns2.google.com.\n";
        let zone = parse(text, "com").unwrap();
        assert_eq!(zone.records.len(), 2);
        assert_eq!(zone.records[1].name.as_ascii(), "google.com");
    }

    #[test]
    fn strict_parse_reports_line_numbers() {
        let text = "$ORIGIN com.\ngood IN A 192.0.2.1\nbad IN A not-an-ip\n";
        let e = parse(text, "com").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bad IPv4"));
    }

    #[test]
    fn lenient_parse_skips_garbage() {
        let text = "$ORIGIN com.\n\
                    good IN A 192.0.2.1\n\
                    broken IN A nope\n\
                    alsogood IN NS ns.x.com.\n\
                    ???\n";
        let (zone, errors) = parse_lenient(text, "com");
        assert_eq!(zone.records.len(), 2);
        assert_eq!(errors.len(), 2);
    }

    #[test]
    fn round_trip_through_text() {
        let zone = parse(SAMPLE, "com").unwrap();
        let text = zone.to_text();
        let again = parse(&text, "com").unwrap();
        assert_eq!(zone.records, again.records);
    }

    #[test]
    fn domain_list_parsing() {
        let (names, bad) = parse_domain_list(
            "google.com\n# comment\nxn--ggle-55da.com\n..bad..\nexample.com # trailing\n",
        );
        assert_eq!(names.len(), 3);
        assert_eq!(bad, 1);
    }

    #[test]
    fn stream_parser_matches_batch_parse_and_survives_errors() {
        let noisy = "$ORIGIN com.\n\
                     good IN A 192.0.2.1\n\
                     broken IN A nope\n\
                     alsogood IN NS ns.x.com.\n";
        let (zone, errors) = parse_lenient(noisy, "com");
        let mut parser = ZoneStreamParser::new("com");
        let mut records = Vec::new();
        let mut failures = Vec::new();
        for raw in noisy.lines() {
            match parser.push_line(raw) {
                Ok(Some(rr)) => records.push(rr),
                Ok(None) => {}
                Err(e) => failures.push(e),
            }
        }
        assert_eq!(records, zone.records);
        assert_eq!(failures, errors);
        assert_eq!(parser.origin(), "com");
        assert_eq!(parser.lines_seen(), 4);
    }

    #[test]
    fn unsupported_type_is_an_error() {
        let e = parse("$ORIGIN com.\nx IN SOA whatever\n", "com").unwrap_err();
        assert!(e.message.contains("unsupported record type"));
    }

    #[test]
    fn scan_line_classifies_like_push_line() {
        let noisy = "$ORIGIN com.\n\
                     $TTL 3600\n\
                     ; comment\n\
                     good IN A 192.0.2.1\n\
                     good IN NS ns1.good.com.\n\
                     \tIN NS ns2.good.com.\n\
                     broken IN A nope\n\
                     ??? garbage line\n\
                     other IN MX 10 mx.other.com.\n\
                     note IN TXT \"x; y\"\n\
                     bad IN MX ten mx.bad.com.\n";
        let mut pusher = ZoneStreamParser::new("com");
        let mut scanner = ZoneStreamParser::new("com");
        for raw in noisy.lines() {
            let pushed = pusher.push_line(raw);
            let scanned = scanner.scan_line(raw);
            match (pushed, scanned) {
                (Ok(Some(rr)), Ok(ZoneScan::Record { owner, .. })) => {
                    assert_eq!(&rr.name, owner, "owner mismatch on {raw:?}");
                }
                (Ok(None), Ok(ZoneScan::Skip)) => {}
                (Err(a), Err(b)) => assert_eq!(a, b, "error mismatch on {raw:?}"),
                (p, s) => panic!("classification diverged on {raw:?}: push={p:?} scan={s:?}"),
            }
        }
        assert_eq!(pusher.lines_seen(), scanner.lines_seen());
    }

    #[test]
    fn scan_line_flags_owner_runs() {
        let mut p = ZoneStreamParser::new("com");
        let new_owner = |r: Result<ZoneScan<'_>, ZoneError>| match r.unwrap() {
            ZoneScan::Record { new_owner, .. } => new_owner,
            ZoneScan::Skip => panic!("expected a record"),
        };
        assert!(new_owner(p.scan_line("alpha IN A 192.0.2.1")));
        // Repeated owner token and continuation line: same owner.
        assert!(!new_owner(p.scan_line("alpha IN NS ns1.alpha.com.")));
        assert!(!new_owner(p.scan_line("\tIN NS ns2.alpha.com.")));
        assert!(new_owner(p.scan_line("beta IN A 192.0.2.2")));
        // Back to a previously seen owner: the cache only remembers the
        // immediately preceding token, so this counts as new again.
        assert!(new_owner(p.scan_line("alpha IN A 192.0.2.3")));
    }

    #[test]
    fn owner_token_cache_respects_origin_change() {
        let text = "$ORIGIN com.\n\
                    shop IN A 192.0.2.1\n\
                    $ORIGIN net.\n\
                    shop IN A 192.0.2.2\n";
        let zone = parse(text, "com").unwrap();
        assert_eq!(zone.records[0].name.as_ascii(), "shop.com");
        assert_eq!(zone.records[1].name.as_ascii(), "shop.net");
    }

    #[test]
    fn owner_cache_not_poisoned_by_bad_owner() {
        let mut p = ZoneStreamParser::new("com");
        assert!(p.push_line("good IN A 192.0.2.1").unwrap().is_some());
        // A malformed owner errors without clobbering the cached owner.
        assert!(p.push_line("..bad.. IN A 192.0.2.2").is_err());
        let rr = p.push_line("\tIN A 192.0.2.3").unwrap().unwrap();
        assert_eq!(rr.name.as_ascii(), "good.com");
    }
}
