//! Passive-DNS model (paper §6.2, Table 11).
//!
//! The paper queries Farsight DNSDB — a sensor network of cooperating
//! cache resolvers — for cumulative resolution counts of the detected
//! homographs, noting that passive DNS sees a *sample* of global lookups.
//! This module models exactly that: a set of sensors, each observing an
//! independent binomial sample of a domain's true lookup volume.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A simulated passive-DNS aggregation service.
#[derive(Debug, Clone, Default)]
pub struct PassiveDns {
    counts: HashMap<String, u64>,
}

impl PassiveDns {
    /// Empty database.
    pub fn new() -> Self {
        PassiveDns::default()
    }

    /// Records `n` observed resolutions of `name`.
    pub fn observe(&mut self, name: &str, n: u64) {
        *self.counts.entry(name.to_string()).or_default() += n;
    }

    /// Builds the database by sampling ground-truth lookup volumes:
    /// each of `sensors` sensors sees each lookup independently with
    /// probability `coverage` (0.0–1.0). Deterministic given `seed`.
    ///
    /// The observed count is therefore below the true count in
    /// expectation by the factor `sensors × coverage` — reproducing the
    /// paper's caveat that "actual numbers of DNS lookups over the entire
    /// Internet should be much larger".
    pub fn from_ground_truth<'a>(
        truth: impl IntoIterator<Item = (&'a str, u64)>,
        sensors: usize,
        coverage: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&coverage));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = PassiveDns::new();
        for (name, true_count) in truth {
            let mut seen = 0u64;
            for _ in 0..sensors {
                // Binomial(true_count, coverage) via normal approximation
                // for large counts, exact sampling for small ones.
                seen += sample_binomial(&mut rng, true_count, coverage);
            }
            if seen > 0 {
                db.observe(name, seen);
            }
        }
        db
    }

    /// Cumulative observed resolutions for a name.
    pub fn resolutions(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Number of names with at least one observation.
    pub fn name_count(&self) -> usize {
        self.counts.len()
    }

    /// The `k` most-resolved names, descending (Table 11's ranking).
    pub fn top(&self, k: usize) -> Vec<(String, u64)> {
        let mut all: Vec<(String, u64)> =
            self.counts.iter().map(|(n, &c)| (n.clone(), c)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

fn sample_binomial(rng: &mut StdRng, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        (0..n).filter(|_| rng.gen_bool(p)).count() as u64
    } else {
        // Normal approximation, clamped to [0, n].
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        // Box–Muller from two uniforms.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + sd * z).round().clamp(0.0, n as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_accumulates() {
        let mut db = PassiveDns::new();
        db.observe("a.com", 10);
        db.observe("a.com", 5);
        assert_eq!(db.resolutions("a.com"), 15);
        assert_eq!(db.resolutions("b.com"), 0);
    }

    #[test]
    fn top_ranks_descending() {
        let mut db = PassiveDns::new();
        db.observe("small.com", 10);
        db.observe("big.com", 1000);
        db.observe("mid.com", 100);
        let top = db.top(2);
        assert_eq!(top[0].0, "big.com");
        assert_eq!(top[1].0, "mid.com");
    }

    #[test]
    fn sampling_undercounts_truth() {
        let truth = [("popular.com", 100_000u64), ("rare.com", 10)];
        let db = PassiveDns::from_ground_truth(
            truth.iter().map(|&(n, c)| (n, c)),
            4,
            0.05,
            42,
        );
        let observed = db.resolutions("popular.com");
        // Expected ≈ 100_000 × 4 × 0.05 = 20_000; far below the truth.
        assert!(observed > 10_000 && observed < 30_000, "observed = {observed}");
        assert!(observed < 100_000);
    }

    #[test]
    fn sampling_is_deterministic() {
        let truth = [("x.com", 5000u64)];
        let a = PassiveDns::from_ground_truth(truth.iter().map(|&(n, c)| (n, c)), 3, 0.1, 7);
        let b = PassiveDns::from_ground_truth(truth.iter().map(|&(n, c)| (n, c)), 3, 0.1, 7);
        assert_eq!(a.resolutions("x.com"), b.resolutions("x.com"));
    }

    #[test]
    fn ranking_preserved_under_sampling() {
        // Zipf-ish truth: sampling must preserve the order of well
        // separated counts (what Table 11 relies on).
        let truth: Vec<(String, u64)> =
            (1..=20u64).map(|i| (format!("d{i}.com"), 1_000_000 / i)).collect();
        let db = PassiveDns::from_ground_truth(
            truth.iter().map(|(n, c)| (n.as_str(), *c)),
            5,
            0.02,
            99,
        );
        let top = db.top(3);
        assert_eq!(top[0].0, "d1.com");
        assert_eq!(top[1].0, "d2.com");
        assert_eq!(top[2].0, "d3.com");
    }

    #[test]
    fn zero_coverage_sees_nothing() {
        let db = PassiveDns::from_ground_truth([("a.com", 100u64)], 3, 0.0, 1);
        assert_eq!(db.name_count(), 0);
    }
}
