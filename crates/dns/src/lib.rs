//! DNS substrate for the ShamFinder measurement study.
//!
//! The paper's pipeline consumes the `.com` zone file, resolves NS/A/MX
//! records for detected homographs, port-scans the live ones and ranks
//! them by passive-DNS resolution volume. This crate provides those
//! pieces over synthetic data (plus a real TCP prober for tests):
//!
//! * [`records`] / [`zone`] — master-file parsing and serialization with
//!   strict and lenient modes.
//! * [`resolver`] — an in-memory resolver with CNAME chasing.
//! * [`portscan`] — trait-based port probing: a real `std::net` connect
//!   scanner and a deterministic simulated back-end, plus a threaded
//!   scan driver.
//! * [`passive`] — a passive-DNS sensor model with binomial sampling.
//! * [`wire`] — the RFC 1035 wire-format codec (with name-compression
//!   decoding) plus a loopback UDP server/stub-client pair.

pub mod passive;
pub mod wire;
pub mod portscan;
pub mod records;
pub mod resolver;
pub mod zone;

pub use passive::PassiveDns;
pub use portscan::{scan, table10_counts, HostScan, PortProber, ProbeOutcome, SimProber, TcpProber};
pub use records::{RecordData, RecordType, ResourceRecord};
pub use resolver::{LookupResult, SimResolver};
pub use wire::{udp_query, Message, Question, Rcode, UdpDnsServer, WireAnswer, WireError};
pub use zone::{parse, parse_domain_list, parse_lenient, Zone, ZoneError, ZoneStreamParser};
