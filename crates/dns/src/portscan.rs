//! Port scanning (paper §6.1, Table 10).
//!
//! After NS/A liveness filtering, the paper probes TCP/80 and TCP/443 on
//! every detected homograph. The prober is a trait with two back-ends:
//!
//! * [`TcpProber`] — a real connect-scan over `std::net` with a timeout,
//!   used in integration tests against in-process listeners (and usable
//!   against real targets where that is appropriate);
//! * [`SimProber`] — a deterministic table of open ports, fed by the
//!   workload generator for the large-scale study.
//!
//! [`scan`] fans a batch of probes out over a worker pool
//! (`std::thread::scope`) — the probes are network-bound, so this
//! mirrors how a real scanner would behave, per the guides' advice to
//! keep blocking I/O on threads.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Result of probing one (host, port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeOutcome {
    /// TCP handshake completed.
    Open,
    /// Connection refused.
    Closed,
    /// No response within the timeout.
    Timeout,
}

impl ProbeOutcome {
    /// True when the service answered.
    pub fn is_open(self) -> bool {
        self == ProbeOutcome::Open
    }
}

/// A port prober back-end.
pub trait PortProber: Sync {
    /// Probes `host:port`. `host` is a domain name or address literal.
    fn probe(&self, host: &str, port: u16) -> ProbeOutcome;
}

/// Real TCP connect scanner.
#[derive(Debug, Clone)]
pub struct TcpProber {
    /// Connect timeout per probe.
    pub timeout: Duration,
    /// Optional host→address override (a /etc/hosts analogue so tests can
    /// point names at loopback listeners).
    pub hosts_override: HashMap<String, SocketAddr>,
}

impl Default for TcpProber {
    fn default() -> Self {
        TcpProber { timeout: Duration::from_millis(500), hosts_override: HashMap::new() }
    }
}

impl PortProber for TcpProber {
    fn probe(&self, host: &str, port: u16) -> ProbeOutcome {
        let addr: SocketAddr = match self.hosts_override.get(host) {
            Some(&a) => SocketAddr::new(a.ip(), port),
            None => match format!("{host}:{port}").parse() {
                Ok(a) => a,
                // Names without an override would need live DNS; treat as
                // unreachable rather than leaking traffic in tests.
                Err(_) => return ProbeOutcome::Timeout,
            },
        };
        match TcpStream::connect_timeout(&addr, self.timeout) {
            Ok(_) => ProbeOutcome::Open,
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => ProbeOutcome::Closed,
            Err(_) => ProbeOutcome::Timeout,
        }
    }
}

/// Deterministic prober over a static open-port table.
#[derive(Debug, Clone, Default)]
pub struct SimProber {
    open: HashMap<(String, u16), bool>,
}

impl SimProber {
    /// Creates an empty table (everything reads as `Closed`).
    pub fn new() -> Self {
        SimProber::default()
    }

    /// Declares `host:port` open (`true`) or timing out (`false`:
    /// filtered host — distinguishes Closed from Timeout in reports).
    pub fn set(&mut self, host: &str, port: u16, responsive: bool) {
        self.open.insert((host.to_string(), port), responsive);
    }
}

impl PortProber for SimProber {
    fn probe(&self, host: &str, port: u16) -> ProbeOutcome {
        match self.open.get(&(host.to_string(), port)) {
            Some(true) => ProbeOutcome::Open,
            Some(false) => ProbeOutcome::Timeout,
            None => ProbeOutcome::Closed,
        }
    }
}

/// Scan report for one host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostScan {
    /// The probed host.
    pub host: String,
    /// Per-port outcomes in the order requested.
    pub ports: Vec<(u16, ProbeOutcome)>,
}

impl HostScan {
    /// True when `port` answered.
    pub fn open(&self, port: u16) -> bool {
        self.ports.iter().any(|&(p, o)| p == port && o.is_open())
    }

    /// True when any probed port answered (the paper's "active" notion).
    pub fn any_open(&self) -> bool {
        self.ports.iter().any(|&(_, o)| o.is_open())
    }
}

/// Scans `hosts` × `ports` with `workers` threads.
pub fn scan(
    prober: &dyn PortProber,
    hosts: &[String],
    ports: &[u16],
    workers: usize,
) -> Vec<HostScan> {
    assert!(workers > 0, "at least one worker required");
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<HostScan>>> =
        hosts.iter().map(|_| std::sync::Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..workers.min(hosts.len().max(1)) {
            s.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= hosts.len() {
                    break;
                }
                let host = &hosts[idx];
                let outcomes: Vec<(u16, ProbeOutcome)> =
                    ports.iter().map(|&p| (p, prober.probe(host, p))).collect();
                *results[idx].lock().expect("scan worker poisoned a slot") =
                    Some(HostScan { host: host.clone(), ports: outcomes });
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("scan worker poisoned a slot")
                .expect("every host scanned")
        })
        .collect()
}

/// Aggregates scans into the paper's Table 10 rows:
/// `(open80, open443, open_both, unique_active)`.
pub fn table10_counts(scans: &[HostScan]) -> (usize, usize, usize, usize) {
    let open80 = scans.iter().filter(|s| s.open(80)).count();
    let open443 = scans.iter().filter(|s| s.open(443)).count();
    let both = scans.iter().filter(|s| s.open(80) && s.open(443)).count();
    let any = scans.iter().filter(|s| s.any_open()).count();
    (open80, open443, both, any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn sim_prober_reads_table() {
        let mut p = SimProber::new();
        p.set("a.com", 80, true);
        p.set("a.com", 443, true);
        p.set("b.com", 80, true);
        p.set("c.com", 80, false);
        assert_eq!(p.probe("a.com", 80), ProbeOutcome::Open);
        assert_eq!(p.probe("b.com", 443), ProbeOutcome::Closed);
        assert_eq!(p.probe("c.com", 80), ProbeOutcome::Timeout);
    }

    #[test]
    fn scan_and_table10_shape() {
        let mut p = SimProber::new();
        p.set("a.com", 80, true);
        p.set("a.com", 443, true);
        p.set("b.com", 80, true);
        p.set("d.com", 443, true);
        let hosts: Vec<String> =
            ["a.com", "b.com", "c.com", "d.com"].iter().map(|s| s.to_string()).collect();
        let scans = scan(&p, &hosts, &[80, 443], 3);
        assert_eq!(scans.len(), 4);
        // Results preserve host order despite the thread pool.
        assert_eq!(scans[0].host, "a.com");
        let (o80, o443, both, any) = table10_counts(&scans);
        assert_eq!((o80, o443, both, any), (2, 2, 1, 3));
    }

    #[test]
    fn tcp_prober_against_local_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Keep accepting in the background so connects complete.
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                drop(stream);
            }
        });

        let mut prober = TcpProber::default();
        prober.hosts_override.insert("test.local".to_string(), addr);
        assert_eq!(prober.probe("test.local", addr.port()), ProbeOutcome::Open);

        // A port nothing listens on: connection refused on loopback.
        let closed = TcpProber::default().probe("127.0.0.1", 1);
        assert!(matches!(closed, ProbeOutcome::Closed | ProbeOutcome::Timeout));
    }

    #[test]
    fn empty_host_list() {
        let p = SimProber::new();
        assert!(scan(&p, &[], &[80], 4).is_empty());
    }
}
