//! Pins the allocation behaviour of the zone-scan hot path.
//!
//! The batch pipeline (`shamfinder scan-zone`) calls
//! `ZoneStreamParser::scan_line` once per line over multi-GB files; the
//! whole point of the scan API is that the dominant line shape — a
//! well-formed record in a run of records for one owner — allocates
//! nothing. This test counts allocations through a wrapping global
//! allocator and fails if that guarantee regresses.

use sham_dns::zone::{ZoneScan, ZoneStreamParser};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

std::thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

/// Counts alloc/realloc calls per thread so concurrently running tests
/// in this binary cannot pollute each other's counts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

#[test]
fn same_owner_record_run_is_allocation_free() {
    let mut parser = ZoneStreamParser::new("com");
    // Warm the owner cache: the first line for an owner resolves and
    // stores the name (that one may allocate).
    match parser.scan_line("steady IN A 192.0.2.1").unwrap() {
        ZoneScan::Record { new_owner, .. } => assert!(new_owner),
        ZoneScan::Skip => panic!("expected a record"),
    }

    let lines = [
        "steady IN A 192.0.2.2",
        "steady 3600 IN A 192.0.2.3",
        "\tIN A 192.0.2.4",
        "steady IN AAAA 2001:db8::1",
    ];
    let before = allocs_on_this_thread();
    for _ in 0..10_000 {
        for raw in lines {
            match parser.scan_line(raw).unwrap() {
                ZoneScan::Record { new_owner, .. } => assert!(!new_owner),
                ZoneScan::Skip => panic!("expected a record"),
            }
        }
    }
    let delta = allocs_on_this_thread() - before;
    assert_eq!(
        delta, 0,
        "scan_line allocated {delta} times over 40k same-owner record lines"
    );
}

#[test]
fn owner_changes_allocate_a_bounded_amount() {
    // Alternating owners defeat the cache, so each line resolves a
    // name: allocations must stay proportional to lines (a handful per
    // resolve), never superlinear.
    let mut parser = ZoneStreamParser::new("com");
    parser.scan_line("a IN A 192.0.2.1").unwrap();
    let before = allocs_on_this_thread();
    let rounds = 1_000u64;
    for _ in 0..rounds {
        parser.scan_line("alpha IN A 192.0.2.1").unwrap();
        parser.scan_line("beta IN A 192.0.2.2").unwrap();
    }
    let delta = allocs_on_this_thread() - before;
    let per_line = delta as f64 / (rounds as f64 * 2.0);
    assert!(
        per_line <= 8.0,
        "owner-changing scan lines average {per_line:.1} allocations each"
    );
}
