//! Active-site classification (paper §6.2(2), Table 12).
//!
//! The paper classifies every reachable homograph into six categories
//! using NS records (domain-parking provider list), screenshots and HTTP
//! responses. The classifier here consumes [`Observation`]s — NS evidence
//! plus fetch outcome — and applies the same decision order: parking NS
//! first, then redirect, then page-content heuristics.

use crate::site::{FetchOutcome, Observation};
use serde::{Deserialize, Serialize};

/// Table 12 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Parked at a monetisation provider.
    DomainParking,
    /// Offered for sale.
    ForSale,
    /// Redirects to a different domain.
    Redirect,
    /// Displays a legitimate-looking page.
    Normal,
    /// Displays nothing.
    Empty,
    /// Screenshot/fetch failed.
    Error,
}

impl Category {
    /// Display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            Category::DomainParking => "Domain parking",
            Category::ForSale => "For sale",
            Category::Redirect => "Redirect",
            Category::Normal => "Normal",
            Category::Empty => "Empty",
            Category::Error => "Error",
        }
    }

    /// All categories in the paper's row order.
    pub fn all() -> [Category; 6] {
        [
            Category::DomainParking,
            Category::ForSale,
            Category::Redirect,
            Category::Normal,
            Category::Empty,
            Category::Error,
        ]
    }
}

/// NS host suffixes of domain-parking providers. The paper compiled 17
/// NS records from prior work (Vissers et al., DomainChroma) plus manual
/// additions; these are the well-known providers of that era.
pub const PARKING_NS: [&str; 17] = [
    "parkingcrew.net",
    "sedoparking.com",
    "bodis.com",
    "parklogic.com",
    "above.com",
    "dan.com",
    "afternic.com",
    "uniregistrymarket.link",
    "parked.com",
    "cashparking.com",
    "domainapps.com",
    "dsredirection.com",
    "fastpark.net",
    "namedrive.com",
    "parkpage.foundationapi.com",
    "smartname.com",
    "voodoo.com",
];

/// True when an NS host belongs to a known parking provider.
pub fn is_parking_ns(ns_host: &str) -> bool {
    let h = ns_host.to_ascii_lowercase();
    PARKING_NS
        .iter()
        .any(|suffix| h.ends_with(suffix) || h == suffix.trim_start_matches("ns."))
}

/// Phrases that mark a for-sale lander.
const FOR_SALE_MARKERS: [&str; 4] =
    ["for sale", "buy now", "make an offer", "domain auction"];

/// Phrases that mark a parking lander (used when NS evidence is absent).
const PARKING_MARKERS: [&str; 3] = ["sponsored listings", "related links", "related searches"];

/// Classifies one observation.
pub fn classify(obs: &Observation) -> Category {
    // NS evidence dominates: the paper classifies by parking-NS first.
    if obs.ns_hosts.iter().any(|h| is_parking_ns(h)) {
        return Category::DomainParking;
    }
    match &obs.fetch {
        FetchOutcome::Redirected { .. } => Category::Redirect,
        FetchOutcome::EmptyBody => Category::Empty,
        FetchOutcome::Failed => Category::Error,
        FetchOutcome::Page { body } => {
            let lower = body.to_ascii_lowercase();
            if FOR_SALE_MARKERS.iter().any(|m| lower.contains(m)) {
                Category::ForSale
            } else if PARKING_MARKERS.iter().any(|m| lower.contains(m)) {
                Category::DomainParking
            } else if lower.trim().is_empty() {
                Category::Empty
            } else {
                Category::Normal
            }
        }
    }
}

/// Aggregates classifications into Table 12 rows, in paper order.
pub fn table12_counts(categories: &[Category]) -> Vec<(&'static str, usize)> {
    Category::all()
        .into_iter()
        .map(|c| (c.name(), categories.iter().filter(|&&x| x == c).count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{observe, SiteProfile};

    #[test]
    fn parking_ns_dominates_content() {
        let obs = Observation {
            ns_hosts: vec!["ns1.parkingcrew.net".into()],
            fetch: FetchOutcome::Page { body: "totally normal page".into() },
        };
        assert_eq!(classify(&obs), Category::DomainParking);
    }

    #[test]
    fn classify_matches_ground_truth_profiles() {
        for profile in [
            SiteProfile::Parked { ns_provider: "ns2.sedoparking.com".into() },
            SiteProfile::ForSale,
            SiteProfile::Redirect { target: "brand.com".into() },
            SiteProfile::Normal,
            SiteProfile::Empty,
            SiteProfile::Error,
        ] {
            let obs = observe(&profile, "ns.registrar.example");
            assert_eq!(
                classify(&obs),
                profile.expected_category(),
                "profile {profile:?}"
            );
        }
    }

    #[test]
    fn for_sale_markers_detected() {
        let obs = Observation {
            ns_hosts: vec!["ns.generic.com".into()],
            fetch: FetchOutcome::Page { body: "This domain is FOR SALE today".into() },
        };
        assert_eq!(classify(&obs), Category::ForSale);
    }

    #[test]
    fn parking_markers_without_parking_ns() {
        let obs = Observation {
            ns_hosts: vec!["ns.generic.com".into()],
            fetch: FetchOutcome::Page { body: "Related Links and Sponsored Listings".into() },
        };
        assert_eq!(classify(&obs), Category::DomainParking);
    }

    #[test]
    fn table12_counts_cover_all_rows() {
        let cats = vec![
            Category::DomainParking,
            Category::DomainParking,
            Category::Redirect,
            Category::Error,
        ];
        let rows = table12_counts(&cats);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0], ("Domain parking", 2));
        assert_eq!(rows[2], ("Redirect", 1));
        assert_eq!(rows[3], ("Normal", 0));
    }

    #[test]
    fn parking_ns_suffix_matching() {
        assert!(is_parking_ns("ns1.parkingcrew.net"));
        assert!(is_parking_ns("NS2.BODIS.COM"));
        assert!(!is_parking_ns("ns1.google.com"));
    }
}
