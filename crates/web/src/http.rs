//! Minimal HTTP/1.1 client and test server over `std::net`.
//!
//! The paper crawls every active homograph with a headless browser and
//! classifies the responses (§6.2). The large-scale study here runs
//! against simulated site profiles, but the crawling code path is real:
//! this module implements a small blocking HTTP client (GET, status,
//! headers, body, redirect following) and a threaded test server, so the
//! integration tests exercise genuine sockets end to end.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 301, …).
    pub status: u16,
    /// Lower-cased header map (last value wins).
    pub headers: HashMap<String, String>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// The `Location` header, if present.
    pub fn location(&self) -> Option<&str> {
        self.headers.get("location").map(String::as_str)
    }

    /// True for 3xx statuses.
    pub fn is_redirect(&self) -> bool {
        (300..400).contains(&self.status)
    }
}

/// Client-side fetch errors.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Response violated the protocol framing.
    Malformed(String),
    /// Redirect chain exceeded the limit.
    TooManyRedirects,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "http io error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed response: {m}"),
            HttpError::TooManyRedirects => write!(f, "too many redirects"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Blocking HTTP client.
#[derive(Debug, Clone)]
pub struct Client {
    /// Read/connect timeout.
    pub timeout: Duration,
    /// Maximum redirects [`Client::get_following`] will chase.
    pub max_redirects: usize,
    /// Hostname → address overrides (tests point names at loopback).
    pub hosts_override: HashMap<String, SocketAddr>,
}

impl Default for Client {
    fn default() -> Self {
        Client {
            timeout: Duration::from_millis(1000),
            max_redirects: 5,
            hosts_override: HashMap::new(),
        }
    }
}

impl Client {
    /// Issues `GET path` to `host` (port 80 unless overridden).
    pub fn get(&self, host: &str, path: &str) -> Result<Response, HttpError> {
        let addr = match self.hosts_override.get(host) {
            Some(&a) => a,
            None => format!("{host}:80")
                .parse()
                .map_err(|_| HttpError::Malformed(format!("unresolvable host {host:?}")))?,
        };
        let mut stream = TcpStream::connect_timeout(&addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: {host}\r\nUser-Agent: shamfinder-crawler/0.1\r\nConnection: close\r\n\r\n"
        )?;
        read_response(&mut stream)
    }

    /// Issues a GET and follows redirects (up to `max_redirects`),
    /// returning the final response and the chain of visited
    /// `(host, path)` hops.
    pub fn get_following(
        &self,
        host: &str,
        path: &str,
    ) -> Result<(Response, Vec<(String, String)>), HttpError> {
        let mut chain = vec![(host.to_string(), path.to_string())];
        let mut current_host = host.to_string();
        let mut current_path = path.to_string();
        for _ in 0..=self.max_redirects {
            let resp = self.get(&current_host, &current_path)?;
            if !resp.is_redirect() {
                return Ok((resp, chain));
            }
            let Some(loc) = resp.location() else {
                return Ok((resp, chain));
            };
            let (h, p) = split_location(loc, &current_host);
            current_host = h;
            current_path = p;
            chain.push((current_host.clone(), current_path.clone()));
        }
        Err(HttpError::TooManyRedirects)
    }
}

/// Splits a Location header into (host, path), resolving relative paths
/// against the current host.
fn split_location(loc: &str, current_host: &str) -> (String, String) {
    let stripped = loc
        .strip_prefix("http://")
        .or_else(|| loc.strip_prefix("https://"));
    match stripped {
        Some(rest) => match rest.find('/') {
            Some(pos) => (rest[..pos].to_string(), rest[pos..].to_string()),
            None => (rest.to_string(), "/".to_string()),
        },
        None => (current_host.to_string(), loc.to_string()),
    }
}

fn read_response(stream: &mut TcpStream) -> Result<Response, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad status line {status_line:?}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed("missing status code".to_string()))?;

    let mut headers = HashMap::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(HttpError::Malformed("truncated headers".to_string()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }

    let mut body = Vec::new();
    if let Some(len) = headers.get("content-length").and_then(|v| v.parse::<usize>().ok()) {
        body.resize(len, 0);
        reader.read_exact(&mut body).map_err(HttpError::Io)?;
    } else {
        reader.read_to_end(&mut body)?;
    }
    Ok(Response { status, headers, body })
}

/// A canned response the test server returns for a path.
#[derive(Debug, Clone)]
pub struct Route {
    /// Status code to return.
    pub status: u16,
    /// Extra headers (e.g. `Location`).
    pub headers: Vec<(String, String)>,
    /// Body text.
    pub body: String,
}

impl Route {
    /// 200 OK with a body.
    pub fn ok(body: &str) -> Route {
        Route { status: 200, headers: Vec::new(), body: body.to_string() }
    }

    /// 301 redirect to a URL.
    pub fn redirect(to: &str) -> Route {
        Route {
            status: 301,
            headers: vec![("Location".to_string(), to.to_string())],
            body: String::new(),
        }
    }
}

/// A tiny threaded HTTP server for tests. Dropping the handle stops
/// accepting (the listener thread exits on the next connection attempt or
/// is left to die with the process — fine for test scope).
pub struct TestServer {
    addr: SocketAddr,
}

impl TestServer {
    /// Spawns a server on an ephemeral loopback port.
    pub fn spawn(routes: HashMap<String, Route>) -> std::io::Result<TestServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let routes = Arc::new(routes);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let routes = Arc::clone(&routes);
                std::thread::spawn(move || handle_connection(stream, &routes));
            }
        });
        Ok(TestServer { addr })
    }

    /// The server's loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

fn handle_connection(mut stream: TcpStream, routes: &HashMap<String, Route>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1000)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/").to_string();
    // Drain headers.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim().is_empty() => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let route = routes.get(&path).cloned().unwrap_or(Route {
        status: 404,
        headers: Vec::new(),
        body: "not found".to_string(),
    });
    let mut out = format!("HTTP/1.1 {} X\r\nContent-Length: {}\r\n", route.status, route.body.len());
    for (k, v) in &route.headers {
        out.push_str(&format!("{k}: {v}\r\n"));
    }
    out.push_str("\r\n");
    out.push_str(&route.body);
    let _ = stream.write_all(out.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_for(server: &TestServer, host: &str) -> Client {
        let mut c = Client::default();
        c.hosts_override.insert(host.to_string(), server.addr());
        c
    }

    #[test]
    fn get_fetches_body_and_status() {
        let mut routes = HashMap::new();
        routes.insert("/".to_string(), Route::ok("hello world"));
        let server = TestServer::spawn(routes).unwrap();
        let client = client_for(&server, "site.test");
        let resp = client.get("site.test", "/").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hello world");
    }

    #[test]
    fn missing_route_is_404() {
        let server = TestServer::spawn(HashMap::new()).unwrap();
        let client = client_for(&server, "site.test");
        let resp = client.get("site.test", "/nope").unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn redirects_are_followed_with_chain() {
        let mut routes = HashMap::new();
        routes.insert("/".to_string(), Route::redirect("/step2"));
        routes.insert("/step2".to_string(), Route::redirect("http://site.test/final"));
        routes.insert("/final".to_string(), Route::ok("arrived"));
        let server = TestServer::spawn(routes).unwrap();
        let client = client_for(&server, "site.test");
        let (resp, chain) = client.get_following("site.test", "/").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"arrived");
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[2].1, "/final");
    }

    #[test]
    fn redirect_loop_errors_out() {
        let mut routes = HashMap::new();
        routes.insert("/".to_string(), Route::redirect("/"));
        let server = TestServer::spawn(routes).unwrap();
        let client = client_for(&server, "site.test");
        match client.get_following("site.test", "/") {
            Err(HttpError::TooManyRedirects) => {}
            other => panic!("expected TooManyRedirects, got {other:?}"),
        }
    }

    #[test]
    fn unresolvable_host_is_an_error() {
        let client = Client::default();
        assert!(client.get("no-such-host.invalid", "/").is_err());
    }

    #[test]
    fn split_location_variants() {
        assert_eq!(
            split_location("http://a.com/x", "b.com"),
            ("a.com".to_string(), "/x".to_string())
        );
        assert_eq!(
            split_location("https://a.com", "b.com"),
            ("a.com".to_string(), "/".to_string())
        );
        assert_eq!(
            split_location("/relative", "b.com"),
            ("b.com".to_string(), "/relative".to_string())
        );
    }
}
