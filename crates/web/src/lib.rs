//! Web substrate for the ShamFinder measurement study.
//!
//! The paper's §6.2 pipeline — crawl the active homographs, classify them
//! by NS evidence and page content, break redirects down by intent, check
//! blacklists — implemented as:
//!
//! * [`http`] — a real blocking HTTP/1.1 client with redirect following
//!   plus a threaded test server (exercised over genuine sockets);
//! * [`site`] — ground-truth site profiles and the crawl observations
//!   they produce;
//! * [`classify`](mod@classify) — the six-category classifier of Table 12 with the
//!   parking-provider NS list;
//! * [`redirect`] — the Table 13 redirect-intent classifier;
//! * [`blacklist`] — hosts-file-format feeds (Table 14).

pub mod blacklist;
pub mod classify;
pub mod http;
pub mod redirect;
pub mod site;

pub use blacklist::{check_all, Blacklist};
pub use classify::{classify, is_parking_ns, table12_counts, Category, PARKING_NS};
pub use http::{Client, HttpError, Response, Route, TestServer};
pub use redirect::{classify_redirect, table13_counts, RedirectKind};
pub use site::{observe, FetchOutcome, Observation, SiteProfile};
