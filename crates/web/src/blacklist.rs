//! Blacklist feeds (paper §6.3, Table 14).
//!
//! The paper checks detected homographs against three feeds: hpHosts (a
//! large community hosts-file database), Google Safe Browsing and
//! Symantec DeepSight (small, expert-curated). This module implements the
//! hosts-file format hpHosts distributes and a generic named feed type;
//! the synthetic feeds themselves are planted by `sham-workload` with the
//! paper's relative sizes.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};
use std::sync::OnceLock;

/// A named blacklist of domain names.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Blacklist {
    /// Feed name (e.g. `hpHosts`).
    pub name: String,
    entries: BTreeSet<String>,
    /// FNV-1a hashes of every entry, built lazily on the first
    /// [`contains_suffix`](Self::contains_suffix) call and invalidated
    /// by mutation. Derived state — never serialised (deserialisation
    /// leaves it empty and the next lookup rebuilds it).
    #[serde(skip)]
    suffix_index: OnceLock<HashSet<u64>>,
}

/// FNV-1a 64-bit over lowercased ASCII: cheap enough to run per
/// label-suffix of every scanned domain, and entries are verified
/// against the real set on a hash hit, so collisions cost a probe,
/// never a wrong answer.
fn fnv1a_lower(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b.to_ascii_lowercase() as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Blacklist {
    /// Empty feed.
    pub fn new(name: &str) -> Self {
        Blacklist {
            name: name.to_string(),
            entries: BTreeSet::new(),
            suffix_index: OnceLock::new(),
        }
    }

    /// Adds a domain (stored lowercased).
    pub fn add(&mut self, domain: &str) {
        self.entries.insert(domain.to_ascii_lowercase());
        self.suffix_index = OnceLock::new();
    }

    /// True when the exact domain is listed.
    pub fn contains(&self, domain: &str) -> bool {
        self.entries.contains(&domain.to_ascii_lowercase())
    }

    /// True when the domain itself **or any parent suffix** is listed:
    /// `a.b.evil.com` matches an entry `evil.com`. This is the hosts-file
    /// convention (listing an apex blocks the whole subtree) and the
    /// filter the zone scanner runs per candidate domain.
    ///
    /// Each label-suffix of `domain` is probed against a hashed entry
    /// index (built lazily, O(entries) once); a hash hit is confirmed
    /// against the real entry set, so the answer is exact. Cost per call
    /// is O(labels), independent of feed size — no linear iteration.
    pub fn contains_suffix(&self, domain: &str) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        // The index hashes case-insensitively, but the confirming set
        // lookup needs lowercase text: only pay for it on mixed-case
        // input (zone scan owners are already lowercase ACE).
        let lowered: String;
        let domain = if domain.bytes().any(|b| b.is_ascii_uppercase()) {
            lowered = domain.to_ascii_lowercase();
            &lowered
        } else {
            domain
        };
        let index = self
            .suffix_index
            .get_or_init(|| self.entries.iter().map(|e| fnv1a_lower(e)).collect());
        let mut suffix = domain;
        loop {
            if index.contains(&fnv1a_lower(suffix)) && self.entries.contains(suffix) {
                return true;
            }
            match suffix.find('.') {
                Some(dot) => suffix = &suffix[dot + 1..],
                None => return false,
            }
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the feed is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(String::as_str)
    }

    /// Parses the hosts-file format hpHosts ships:
    /// `127.0.0.1<ws>domain` lines, `#` comments. Unparseable lines are
    /// counted, not fatal (the real feed contains junk).
    pub fn from_hosts_file(name: &str, text: &str) -> (Blacklist, usize) {
        let mut bl = Blacklist::new(name);
        let mut bad = 0usize;
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            match (fields.next(), fields.next()) {
                (Some(addr), Some(domain))
                    if (addr == "127.0.0.1" || addr == "0.0.0.0")
                        && domain.contains('.') =>
                {
                    bl.add(domain);
                }
                _ => bad += 1,
            }
        }
        (bl, bad)
    }

    /// Serialises to the hosts-file format.
    pub fn to_hosts_file(&self) -> String {
        let mut s = format!("# {} — {} entries\n", self.name, self.len());
        for d in &self.entries {
            s.push_str("127.0.0.1\t");
            s.push_str(d);
            s.push('\n');
        }
        s
    }
}

/// Checks a domain against several feeds, returning the names of feeds
/// that list it.
pub fn check_all<'a>(feeds: &'a [Blacklist], domain: &str) -> Vec<&'a str> {
    feeds
        .iter()
        .filter(|f| f.contains(domain))
        .map(|f| f.name.as_str())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_contains_case_insensitive() {
        let mut bl = Blacklist::new("test");
        bl.add("Evil.COM");
        assert!(bl.contains("evil.com"));
        assert!(bl.contains("EVIL.com"));
        assert!(!bl.contains("good.com"));
    }

    #[test]
    fn hosts_file_round_trip() {
        let text = "# header\n127.0.0.1\tbad.com\n0.0.0.0  worse.com\n\ngarbage line\n";
        let (bl, bad) = Blacklist::from_hosts_file("hpHosts", text);
        assert_eq!(bl.len(), 2);
        assert_eq!(bad, 1);
        assert!(bl.contains("bad.com"));
        assert!(bl.contains("worse.com"));

        let (again, bad2) = Blacklist::from_hosts_file("hpHosts", &bl.to_hosts_file());
        assert_eq!(again.len(), 2);
        assert_eq!(bad2, 0);
    }

    #[test]
    fn check_all_reports_feed_names() {
        let mut a = Blacklist::new("hpHosts");
        a.add("x.com");
        let mut b = Blacklist::new("GSB");
        b.add("x.com");
        let c = Blacklist::new("Symantec");
        let feeds = vec![a, b, c];
        assert_eq!(check_all(&feeds, "x.com"), vec!["hpHosts", "GSB"]);
        assert!(check_all(&feeds, "y.com").is_empty());
    }

    #[test]
    fn suffix_match_exact_parent_and_non_match() {
        let mut bl = Blacklist::new("test");
        bl.add("evil.com");
        bl.add("bad.example.net");

        // Exact match.
        assert!(bl.contains_suffix("evil.com"));
        // Parent-suffix match at any depth.
        assert!(bl.contains_suffix("login.evil.com"));
        assert!(bl.contains_suffix("a.b.c.evil.com"));
        assert!(bl.contains_suffix("deep.bad.example.net"));
        // Non-matches: substring ≠ label suffix.
        assert!(!bl.contains_suffix("evil.com.org"));
        assert!(!bl.contains_suffix("notevil.com"));
        assert!(!bl.contains_suffix("com"));
        assert!(!bl.contains_suffix("example.net"));
        assert!(!bl.contains_suffix("good.com"));
    }

    #[test]
    fn suffix_match_is_case_insensitive() {
        let mut bl = Blacklist::new("test");
        bl.add("Evil.COM");
        assert!(bl.contains_suffix("WWW.EVIL.COM"));
        assert!(bl.contains_suffix("www.evil.com"));
    }

    #[test]
    fn suffix_index_survives_mutation_and_serde() {
        let mut bl = Blacklist::new("test");
        bl.add("first.com");
        // Build the index, then mutate: the next lookup must see the
        // new entry (mutation invalidates the lazy index).
        assert!(bl.contains_suffix("x.first.com"));
        bl.add("second.net");
        assert!(bl.contains_suffix("x.second.net"));

        // Round-trip through serde: the index field is skipped and
        // rebuilds lazily on the deserialised value.
        let json = serde_json::to_string(&bl).unwrap();
        let back: Blacklist = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back.contains_suffix("x.first.com"));
        assert!(back.contains_suffix("deep.second.net"));
        assert!(!back.contains_suffix("third.org"));
    }

    #[test]
    fn empty_feed_matches_nothing() {
        let bl = Blacklist::new("empty");
        assert!(!bl.contains_suffix("anything.com"));
    }

    #[test]
    fn rejects_nonsense_addresses() {
        let (bl, bad) = Blacklist::from_hosts_file("t", "10.0.0.1 private.com\n");
        assert_eq!(bl.len(), 0);
        assert_eq!(bad, 1);
    }
}
