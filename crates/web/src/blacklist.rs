//! Blacklist feeds (paper §6.3, Table 14).
//!
//! The paper checks detected homographs against three feeds: hpHosts (a
//! large community hosts-file database), Google Safe Browsing and
//! Symantec DeepSight (small, expert-curated). This module implements the
//! hosts-file format hpHosts distributes and a generic named feed type;
//! the synthetic feeds themselves are planted by `sham-workload` with the
//! paper's relative sizes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A named blacklist of domain names.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Blacklist {
    /// Feed name (e.g. `hpHosts`).
    pub name: String,
    entries: BTreeSet<String>,
}

impl Blacklist {
    /// Empty feed.
    pub fn new(name: &str) -> Self {
        Blacklist { name: name.to_string(), entries: BTreeSet::new() }
    }

    /// Adds a domain (stored lowercased).
    pub fn add(&mut self, domain: &str) {
        self.entries.insert(domain.to_ascii_lowercase());
    }

    /// True when the exact domain is listed.
    pub fn contains(&self, domain: &str) -> bool {
        self.entries.contains(&domain.to_ascii_lowercase())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the feed is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(String::as_str)
    }

    /// Parses the hosts-file format hpHosts ships:
    /// `127.0.0.1<ws>domain` lines, `#` comments. Unparseable lines are
    /// counted, not fatal (the real feed contains junk).
    pub fn from_hosts_file(name: &str, text: &str) -> (Blacklist, usize) {
        let mut bl = Blacklist::new(name);
        let mut bad = 0usize;
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            match (fields.next(), fields.next()) {
                (Some(addr), Some(domain))
                    if (addr == "127.0.0.1" || addr == "0.0.0.0")
                        && domain.contains('.') =>
                {
                    bl.add(domain);
                }
                _ => bad += 1,
            }
        }
        (bl, bad)
    }

    /// Serialises to the hosts-file format.
    pub fn to_hosts_file(&self) -> String {
        let mut s = format!("# {} — {} entries\n", self.name, self.len());
        for d in &self.entries {
            s.push_str("127.0.0.1\t");
            s.push_str(d);
            s.push('\n');
        }
        s
    }
}

/// Checks a domain against several feeds, returning the names of feeds
/// that list it.
pub fn check_all<'a>(feeds: &'a [Blacklist], domain: &str) -> Vec<&'a str> {
    feeds
        .iter()
        .filter(|f| f.contains(domain))
        .map(|f| f.name.as_str())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_contains_case_insensitive() {
        let mut bl = Blacklist::new("test");
        bl.add("Evil.COM");
        assert!(bl.contains("evil.com"));
        assert!(bl.contains("EVIL.com"));
        assert!(!bl.contains("good.com"));
    }

    #[test]
    fn hosts_file_round_trip() {
        let text = "# header\n127.0.0.1\tbad.com\n0.0.0.0  worse.com\n\ngarbage line\n";
        let (bl, bad) = Blacklist::from_hosts_file("hpHosts", text);
        assert_eq!(bl.len(), 2);
        assert_eq!(bad, 1);
        assert!(bl.contains("bad.com"));
        assert!(bl.contains("worse.com"));

        let (again, bad2) = Blacklist::from_hosts_file("hpHosts", &bl.to_hosts_file());
        assert_eq!(again.len(), 2);
        assert_eq!(bad2, 0);
    }

    #[test]
    fn check_all_reports_feed_names() {
        let mut a = Blacklist::new("hpHosts");
        a.add("x.com");
        let mut b = Blacklist::new("GSB");
        b.add("x.com");
        let c = Blacklist::new("Symantec");
        let feeds = vec![a, b, c];
        assert_eq!(check_all(&feeds, "x.com"), vec!["hpHosts", "GSB"]);
        assert!(check_all(&feeds, "y.com").is_empty());
    }

    #[test]
    fn rejects_nonsense_addresses() {
        let (bl, bad) = Blacklist::from_hosts_file("t", "10.0.0.1 private.com\n");
        assert_eq!(bl.len(), 0);
        assert_eq!(bad, 1);
    }
}
