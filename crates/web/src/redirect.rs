//! Redirect analysis (paper §6.2, Table 13).
//!
//! Homographs that redirect split three ways: *brand protection* (the
//! brand owner registered its own lookalikes and points them home),
//! *legitimate website* (an unrelated but benign destination) and
//! *malicious website* (a destination flagged by VirusTotal / manual
//! inspection — here, the blacklist feeds).

use crate::blacklist::Blacklist;
use serde::{Deserialize, Serialize};

/// Table 13 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RedirectKind {
    /// Redirects to the brand the homograph imitates.
    BrandProtection,
    /// Redirects to an unrelated, unflagged site.
    Legitimate,
    /// Redirects to a blacklisted site.
    Malicious,
}

impl RedirectKind {
    /// Display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            RedirectKind::BrandProtection => "Brand protection",
            RedirectKind::Legitimate => "Legitimate website",
            RedirectKind::Malicious => "Malicious website",
        }
    }
}

/// Strips a leading `www.` for comparison.
fn registrable(domain: &str) -> &str {
    domain.strip_prefix("www.").unwrap_or(domain)
}

/// Classifies one redirect: the homograph imitates `reference_domain`
/// (full name, e.g. `google.com`) and lands on `target_domain`.
pub fn classify_redirect(
    reference_domain: &str,
    target_domain: &str,
    feeds: &[Blacklist],
) -> RedirectKind {
    let target = registrable(target_domain).to_ascii_lowercase();
    if feeds.iter().any(|f| f.contains(&target)) {
        return RedirectKind::Malicious;
    }
    if target == registrable(reference_domain).to_ascii_lowercase() {
        RedirectKind::BrandProtection
    } else {
        RedirectKind::Legitimate
    }
}

/// Aggregates into Table 13 rows in paper order.
pub fn table13_counts(kinds: &[RedirectKind]) -> Vec<(&'static str, usize)> {
    [
        RedirectKind::BrandProtection,
        RedirectKind::Legitimate,
        RedirectKind::Malicious,
    ]
    .into_iter()
    .map(|k| (k.name(), kinds.iter().filter(|&&x| x == k).count()))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feeds() -> Vec<Blacklist> {
        let mut bl = Blacklist::new("hpHosts");
        bl.add("evil-lander.com");
        vec![bl]
    }

    #[test]
    fn brand_protection_detected() {
        assert_eq!(
            classify_redirect("google.com", "google.com", &feeds()),
            RedirectKind::BrandProtection
        );
        assert_eq!(
            classify_redirect("google.com", "www.google.com", &feeds()),
            RedirectKind::BrandProtection
        );
    }

    #[test]
    fn malicious_overrides_everything() {
        assert_eq!(
            classify_redirect("google.com", "evil-lander.com", &feeds()),
            RedirectKind::Malicious
        );
    }

    #[test]
    fn unrelated_target_is_legitimate() {
        assert_eq!(
            classify_redirect("google.com", "some-blog.com", &feeds()),
            RedirectKind::Legitimate
        );
    }

    #[test]
    fn table13_rows_in_order() {
        let kinds = vec![
            RedirectKind::BrandProtection,
            RedirectKind::BrandProtection,
            RedirectKind::Malicious,
        ];
        let rows = table13_counts(&kinds);
        assert_eq!(rows[0], ("Brand protection", 2));
        assert_eq!(rows[1], ("Legitimate website", 0));
        assert_eq!(rows[2], ("Malicious website", 1));
    }
}
