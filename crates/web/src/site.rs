//! Ground-truth site profiles.
//!
//! The workload generator assigns each registered homograph a behaviour
//! profile; the crawler/classifier then observes it through DNS and HTTP.
//! The profile vocabulary is exactly the paper's Table 12 categories plus
//! the redirect sub-kinds of Table 13.

use serde::{Deserialize, Serialize};

/// What a site actually is (ground truth).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteProfile {
    /// Monetised parking page behind a parking provider's NS.
    Parked {
        /// Parking provider NS host (e.g. `ns1.parkingcrew.net`).
        ns_provider: String,
    },
    /// "This domain is for sale" lander.
    ForSale,
    /// Redirects to another domain.
    Redirect {
        /// Redirect target domain.
        target: String,
    },
    /// A working website with real content.
    Normal,
    /// Responds with an empty page.
    Empty,
    /// Unreachable / times out / resets.
    Error,
}

impl SiteProfile {
    /// The Table 12 category name the profile should classify as.
    pub fn expected_category(&self) -> super::classify::Category {
        use super::classify::Category;
        match self {
            SiteProfile::Parked { .. } => Category::DomainParking,
            SiteProfile::ForSale => Category::ForSale,
            SiteProfile::Redirect { .. } => Category::Redirect,
            SiteProfile::Normal => Category::Normal,
            SiteProfile::Empty => Category::Empty,
            SiteProfile::Error => Category::Error,
        }
    }
}

/// A crawl observation of one site: what the classifier gets to see.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// NS host names from the resolver.
    pub ns_hosts: Vec<String>,
    /// HTTP fetch outcome.
    pub fetch: FetchOutcome,
}

/// The HTTP layer of an observation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FetchOutcome {
    /// A 2xx page with body text.
    Page {
        /// Response body (what a screenshot would show).
        body: String,
    },
    /// A redirect chain ending at another domain.
    Redirected {
        /// Final domain reached.
        final_domain: String,
    },
    /// 2xx with an empty body.
    EmptyBody,
    /// Timeout / connection failure / repeated 5xx.
    Failed,
}

/// Renders the observation a crawler would make of a ground-truth
/// profile. This is the simulation's "headless browser": profile in,
/// DNS + HTTP evidence out.
pub fn observe(profile: &SiteProfile, default_ns: &str) -> Observation {
    match profile {
        SiteProfile::Parked { ns_provider } => Observation {
            ns_hosts: vec![ns_provider.clone()],
            fetch: FetchOutcome::Page {
                body: "Related Links | Sponsored Listings | Privacy Policy".to_string(),
            },
        },
        SiteProfile::ForSale => Observation {
            ns_hosts: vec![default_ns.to_string()],
            fetch: FetchOutcome::Page {
                body: "This premium domain is for sale! Buy now — make an offer.".to_string(),
            },
        },
        SiteProfile::Redirect { target } => Observation {
            ns_hosts: vec![default_ns.to_string()],
            fetch: FetchOutcome::Redirected { final_domain: target.clone() },
        },
        SiteProfile::Normal => Observation {
            ns_hosts: vec![default_ns.to_string()],
            fetch: FetchOutcome::Page {
                body: "Welcome to our website. Products, news and contact information."
                    .to_string(),
            },
        },
        SiteProfile::Empty => Observation {
            ns_hosts: vec![default_ns.to_string()],
            fetch: FetchOutcome::EmptyBody,
        },
        SiteProfile::Error => Observation {
            ns_hosts: vec![default_ns.to_string()],
            fetch: FetchOutcome::Failed,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_parked_exposes_provider_ns() {
        let obs = observe(
            &SiteProfile::Parked { ns_provider: "ns1.parkingcrew.net".into() },
            "ns.registrar.com",
        );
        assert_eq!(obs.ns_hosts, vec!["ns1.parkingcrew.net"]);
        assert!(matches!(obs.fetch, FetchOutcome::Page { .. }));
    }

    #[test]
    fn observe_redirect_carries_target() {
        let obs = observe(
            &SiteProfile::Redirect { target: "google.com".into() },
            "ns.registrar.com",
        );
        assert_eq!(
            obs.fetch,
            FetchOutcome::Redirected { final_domain: "google.com".into() }
        );
    }

    #[test]
    fn every_profile_observable() {
        for p in [
            SiteProfile::Parked { ns_provider: "ns1.bodis.com".into() },
            SiteProfile::ForSale,
            SiteProfile::Redirect { target: "x.com".into() },
            SiteProfile::Normal,
            SiteProfile::Empty,
            SiteProfile::Error,
        ] {
            let obs = observe(&p, "ns.default.com");
            assert!(!obs.ns_hosts.is_empty());
            let _ = p.expected_category();
        }
    }
}
