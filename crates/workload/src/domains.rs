//! Reference list and benign corpus generation.
//!
//! * The **reference list** plays Alexa Top Sites (paper §5.1): brand
//!   stems at the top, generated word stems below, with the paper's
//!   mid-rank attack targets (`allstate`, `myetherwallet`) planted past
//!   rank 5,000.
//! * The **benign corpus** plays the registered `.com` population: bulk
//!   ASCII registrations plus benign IDNs whose language mix follows the
//!   paper's Table 7.

use crate::dictionary as dict;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sham_langid::Language;

/// Builds the reference ranking (Alexa-like), `size` stems long.
/// Deterministic; brands first, generated two-word stems after, and the
/// paper's mid-rank brands inserted at ranks ≈ 5,100 and ≈ 7,400.
pub fn reference_list(size: usize) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(size);
    out.extend(dict::BRANDS.iter().map(|s| s.to_string()));
    let mut i = 0usize;
    'fill: for w1 in dict::WORDS {
        for w2 in dict::WORDS {
            if out.len() >= size {
                break 'fill;
            }
            if w1 != w2 {
                // Skip a deterministic fraction so the list is not a plain
                // cartesian prefix (keeps lengths diverse).
                i += 1;
                if i.is_multiple_of(7) {
                    continue;
                }
                out.push(format!("{w1}{w2}"));
            }
        }
    }
    out.truncate(size);
    // Plant the paper's mid-rank targets (§6.1: allstate ranked 5,148 and
    // myetherwallet 7,400 among .com domains). At small scales they fall
    // to the bottom of the list — still present, still unpopular.
    let brand_count = dict::MID_RANK_BRANDS.len();
    for (idx, brand) in dict::MID_RANK_BRANDS.iter().enumerate() {
        // Clamp to distinct tail positions so that, at small scales, each
        // insertion's pop() evicts a generated stem and never an earlier
        // mid-rank brand.
        let rank = (5_100 + idx * 760).min(out.len().saturating_sub(brand_count - idx));
        out.insert(rank, brand.to_string());
        out.pop();
    }
    out.dedup();
    out
}

/// Zipf-like popularity weight for a rank (1-based).
pub fn popularity_weight(rank: usize) -> f64 {
    1.0 / (rank as f64).powf(0.9)
}

/// Language plan for benign IDNs: Table 7's measured shares for the top
/// five rows (Chinese 46.5%, Korean 10.6%, Japanese 9.3%, German 5.6%,
/// Turkish 3.6%), with the paper's 24.4% "everything else" spread over
/// the remaining languages. Shares sum to 1.0.
pub const LANGUAGE_MIX: &[(Language, f64)] = &[
    (Language::Chinese, 0.465),
    (Language::Korean, 0.106),
    (Language::Japanese, 0.093),
    (Language::German, 0.056),
    (Language::Turkish, 0.036),
    (Language::French, 0.035),
    (Language::Spanish, 0.040),
    (Language::Russian, 0.060),
    (Language::Vietnamese, 0.025),
    (Language::Arabic, 0.040),
    (Language::Thai, 0.025),
    (Language::Hebrew, 0.019),
];

/// Draws a language from the mix.
fn draw_language(rng: &mut StdRng) -> Language {
    let total: f64 = LANGUAGE_MIX.iter().map(|&(_, s)| s).sum();
    let roll: f64 = rng.gen_range(0.0..total);
    let mut acc = 0.0;
    for &(lang, share) in LANGUAGE_MIX {
        acc += share;
        if roll < acc {
            return lang;
        }
    }
    Language::Chinese
}

/// Generates one benign IDN stem in the given language.
pub fn benign_idn_stem(lang: Language, rng: &mut StdRng) -> String {
    let pick = |words: &[&str], rng: &mut StdRng| -> String {
        words[rng.gen_range(0..words.len())].to_string()
    };
    match lang {
        Language::Chinese => {
            // 2–4 common-range Han characters.
            let len = rng.gen_range(2..=4);
            (0..len)
                .map(|_| char::from_u32(0x4E00 + rng.gen_range(0..0x3000u32)).unwrap())
                .collect()
        }
        Language::Korean => {
            let len = rng.gen_range(2..=4);
            (0..len)
                .map(|_| char::from_u32(0xAC00 + rng.gen_range(0..11_172u32)).unwrap())
                .collect()
        }
        Language::Japanese => {
            let kana = pick(dict::KANA_FRAGMENTS, rng);
            if rng.gen_bool(0.5) {
                format!("{}{kana}", pick(dict::JA_HAN_FRAGMENTS, rng))
            } else {
                kana
            }
        }
        Language::German => {
            let w = pick(dict::GERMAN_WORDS, rng);
            if rng.gen_bool(0.4) {
                format!("{w}-{}", pick(dict::WORDS, rng))
            } else {
                w
            }
        }
        Language::Turkish => pick(dict::TURKISH_WORDS, rng),
        Language::French => pick(dict::FRENCH_WORDS, rng),
        Language::Spanish => pick(dict::SPANISH_WORDS, rng),
        Language::Russian => pick(dict::RUSSIAN_WORDS, rng),
        Language::Vietnamese => pick(dict::VIETNAMESE_WORDS, rng),
        Language::Arabic => pick(dict::ARABIC_WORDS, rng),
        Language::Thai => pick(dict::THAI_WORDS, rng),
        Language::Hebrew => pick(dict::HEBREW_WORDS, rng),
        _ => pick(dict::WORDS, rng),
    }
}

/// Generates the benign corpus: `ascii_count` ASCII stems and
/// `idn_count` benign IDN stems (Unicode form, unique via numeric
/// disambiguation when the fragment pools run out).
pub fn benign_corpus(ascii_count: usize, idn_count: usize, seed: u64) -> (Vec<String>, Vec<String>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let words = dict::WORDS;

    let mut ascii = Vec::with_capacity(ascii_count);
    let mut counter = 0usize;
    while ascii.len() < ascii_count {
        let w1 = words[counter % words.len()];
        let w2 = words[(counter / words.len() + counter % 13) % words.len()];
        let stem = match counter / (words.len() * words.len()) {
            0 => format!("{w1}-{w2}"),
            n => format!("{w1}-{w2}-{n}"),
        };
        ascii.push(stem);
        counter += 1;
    }

    let mut idns = Vec::with_capacity(idn_count);
    let mut seen = std::collections::HashSet::new();
    while idns.len() < idn_count {
        let lang = draw_language(&mut rng);
        let mut stem = benign_idn_stem(lang, &mut rng);
        if !seen.insert(stem.clone()) {
            // Disambiguate collisions with a numeric suffix; the suffix
            // keeps the label an IDN (the non-ASCII part remains).
            stem = format!("{stem}{}", rng.gen_range(0..100_000));
            if !seen.insert(stem.clone()) {
                continue;
            }
        }
        idns.push(stem);
    }
    (ascii, idns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_langid::{identify, table7_rows};

    #[test]
    fn reference_list_has_brands_on_top() {
        let refs = reference_list(10_000);
        assert_eq!(refs[0], "google");
        assert!(refs.len() >= 9_990);
        assert!(refs.contains(&"myetherwallet".to_string()));
        assert!(refs.contains(&"allstate".to_string()));
        // Mid-rank targets are NOT in the top-1000.
        let top1k: Vec<&String> = refs.iter().take(1000).collect();
        assert!(!top1k.iter().any(|s| *s == "myetherwallet"));
    }

    #[test]
    fn reference_list_is_deterministic_and_unique() {
        let a = reference_list(5_000);
        let b = reference_list(5_000);
        assert_eq!(a, b);
        let set: std::collections::HashSet<&String> = a.iter().collect();
        assert_eq!(set.len(), a.len());
    }

    #[test]
    fn popularity_weight_decreases() {
        assert!(popularity_weight(1) > popularity_weight(2));
        assert!(popularity_weight(10) > popularity_weight(1000));
    }

    #[test]
    fn benign_corpus_sizes_and_uniqueness() {
        let (ascii, idns) = benign_corpus(5_000, 1_000, 7);
        assert_eq!(ascii.len(), 5_000);
        assert_eq!(idns.len(), 1_000);
        let set: std::collections::HashSet<&String> = idns.iter().collect();
        assert_eq!(set.len(), idns.len());
        assert!(idns.iter().all(|s| !s.is_ascii()), "every IDN stem is non-ASCII");
    }

    #[test]
    fn language_mix_reaches_table7_shape() {
        let (_, idns) = benign_corpus(0, 4_000, 99);
        let rows = table7_rows(idns.iter().map(|s| identify(s).language));
        assert_eq!(rows[0].0, Language::Chinese);
        let chinese_share = rows[0].2;
        assert!(
            (chinese_share - 0.465).abs() < 0.06,
            "chinese share {chinese_share}"
        );
        // Korean and Japanese occupy the next two slots, in order.
        assert_eq!(rows[1].0, Language::Korean);
        assert_eq!(rows[2].0, Language::Japanese);
    }

    #[test]
    fn mix_shares_sum_to_one() {
        let total: f64 = LANGUAGE_MIX.iter().map(|&(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }
}
