//! Deterministic fault injection for the ingest front-end.
//!
//! Every failure mode `sham_core::ingest` claims to survive —
//! corrupted records, feed stalls, mid-stream disconnects, forced
//! worker panics — is produced here on a *seeded schedule*, so the
//! fault-injection tests and the CI smoke replay byte-identical
//! failure sequences run after run. The harness has three pieces:
//!
//! * [`FaultSchedule`] — a map from event position to [`Fault`], plus
//!   `(lane, flush-ordinal)` coordinates for forced worker panics;
//!   built explicitly or sampled with [`FaultSchedule::seeded`].
//! * [`FaultyZoneFeed`] — a [`FeedSource`] replaying a
//!   [`ZoneEvent`] stream (e.g. from [`crate::stream`]) through the
//!   schedule: a `Corrupt` position swallows the record and delivers
//!   [`FeedItem::Malformed`]; `Stall`/`Disconnect` positions fail the
//!   pull once and deliver the event on the post-backoff retry, so no
//!   event is lost to a transient. With [`FaultSchedule::none`] the
//!   feed is a transparent replay — the bit-identity tests lean on
//!   that.
//! * [`FaultyReader`] — the same idea one layer down, for the
//!   byte-stream feeds: a `Read` adapter that fails or corrupts
//!   whole read calls by ordinal.
//!
//! Shared [`FeedStats`] counters record what was actually injected
//! and delivered, so a test can hold the ground truth after the feed
//! has been boxed and consumed by the service.

use crate::stream::ZoneEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sham_core::ingest::{FeedError, FeedItem, FeedSource, IngestEvent};
use std::collections::BTreeMap;
use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The record at this position arrives unparseable (quarantine
    /// path). On a churn event the fault downgrades to clean delivery
    /// — only records can corrupt.
    Corrupt,
    /// The pull at this position times out once (retry path).
    Stall,
    /// The transport drops at this position once (retry path).
    Disconnect,
}

/// A deterministic fault plan: event-position faults plus forced lane
/// panics at exact `(tld, flush ordinal)` coordinates.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    /// Event position (0-based) → fault.
    pub faults: BTreeMap<u64, Fault>,
    /// `(tld, per-lane flush ordinal)` pairs at which the installed
    /// flush hook panics (see [`lane_panic_hook`]).
    pub lane_panics: Vec<(String, u64)>,
}

impl FaultSchedule {
    /// The empty schedule: a transparent replay.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Adds one fault at an event position (builder-style).
    pub fn with_fault(mut self, position: u64, fault: Fault) -> Self {
        self.faults.insert(position, fault);
        self
    }

    /// Adds one forced lane panic (builder-style).
    pub fn with_lane_panic(mut self, tld: impl Into<String>, flush_ordinal: u64) -> Self {
        self.lane_panics.push((tld.into(), flush_ordinal));
        self
    }

    /// Samples a schedule over `events` positions: each position
    /// faults with probability `fault_permille`/1000, the kind drawn
    /// uniformly. Same seed, same schedule — always.
    pub fn seeded(seed: u64, events: u64, fault_permille: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = BTreeMap::new();
        for position in 0..events {
            if rng.gen_range(0u32..1_000) < fault_permille {
                let fault = match rng.gen_range(0u32..3) {
                    0 => Fault::Corrupt,
                    1 => Fault::Stall,
                    _ => Fault::Disconnect,
                };
                faults.insert(position, fault);
            }
        }
        FaultSchedule { faults, lane_panics: Vec::new() }
    }

    /// The fault scheduled at `position`, if any.
    pub fn fault_at(&self, position: u64) -> Option<Fault> {
        self.faults.get(&position).copied()
    }
}

/// Ground-truth counters for what a faulty feed actually did, shared
/// (via `Arc`) between the test and the boxed feed the service
/// consumed.
#[derive(Debug, Default)]
pub struct FeedStats {
    /// Registration events delivered (corrupted ones excluded).
    pub registrations: AtomicU64,
    /// Churn events delivered.
    pub churns: AtomicU64,
    /// Records swallowed by `Corrupt` faults (delivered as malformed).
    pub corrupted: AtomicU64,
    /// `Stall` faults injected.
    pub stalls: AtomicU64,
    /// `Disconnect` faults injected.
    pub disconnects: AtomicU64,
}

impl FeedStats {
    /// A fresh shared counter set.
    pub fn shared() -> Arc<FeedStats> {
        Arc::new(FeedStats::default())
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Converts a workload [`ZoneEvent`] into the core's [`IngestEvent`].
pub fn ingest_event(event: ZoneEvent) -> IngestEvent {
    match event {
        ZoneEvent::Registered(name) => IngestEvent::Registered(name),
        ZoneEvent::ReferenceChurn { added, removed } => {
            IngestEvent::ReferenceChurn { added, removed }
        }
    }
}

/// A replay [`FeedSource`] over a pre-generated event stream, filtered
/// through a [`FaultSchedule`]. Stalls and disconnects fail the pull
/// *once* and resume (the event is delivered on retry); corruption
/// swallows the record and delivers it malformed.
pub struct FaultyZoneFeed {
    name: String,
    events: Vec<ZoneEvent>,
    schedule: FaultSchedule,
    position: usize,
    /// Whether the fault at the current position already fired (a
    /// retried pull must deliver, not fail forever).
    injected: bool,
    stats: Arc<FeedStats>,
}

impl FaultyZoneFeed {
    /// A feed named `name` replaying `events` through `schedule`,
    /// reporting into `stats`.
    pub fn new(
        name: impl Into<String>,
        events: Vec<ZoneEvent>,
        schedule: FaultSchedule,
        stats: Arc<FeedStats>,
    ) -> Self {
        FaultyZoneFeed {
            name: name.into(),
            events,
            schedule,
            position: 0,
            injected: false,
            stats,
        }
    }
}

impl FeedSource for FaultyZoneFeed {
    fn name(&self) -> &str {
        &self.name
    }

    fn next(&mut self) -> Result<Option<FeedItem>, FeedError> {
        if self.position >= self.events.len() {
            return Ok(None);
        }
        let position = self.position as u64;
        if !self.injected {
            match self.schedule.fault_at(position) {
                Some(Fault::Stall) => {
                    self.injected = true;
                    FeedStats::bump(&self.stats.stalls);
                    return Err(FeedError::Stall);
                }
                Some(Fault::Disconnect) => {
                    self.injected = true;
                    FeedStats::bump(&self.stats.disconnects);
                    return Err(FeedError::Disconnect(format!(
                        "scheduled disconnect at event {position}"
                    )));
                }
                _ => {}
            }
        }
        self.injected = false;
        let event = self.events[self.position].clone();
        self.position += 1;
        if let (Some(Fault::Corrupt), ZoneEvent::Registered(name)) =
            (self.schedule.fault_at(position), &event)
        {
            FeedStats::bump(&self.stats.corrupted);
            return Ok(Some(FeedItem::Malformed(format!(
                "corrupted record at event {position} ({})",
                name.as_ascii()
            ))));
        }
        match &event {
            ZoneEvent::Registered(_) => FeedStats::bump(&self.stats.registrations),
            ZoneEvent::ReferenceChurn { .. } => FeedStats::bump(&self.stats.churns),
        }
        Ok(Some(FeedItem::Event(ingest_event(event))))
    }
}

/// The flush hook implementing a schedule's forced lane panics:
/// install it via `IngestService::with_flush_hook` and it panics at
/// exactly the scheduled `(tld, flush ordinal)` coordinates — before
/// the batch reaches the router, so the drainer's poison-and-retry
/// keeps accounting exact.
pub fn lane_panic_hook(
    schedule: &FaultSchedule,
) -> impl Fn(&str, u64) + Send + Sync + 'static {
    let coordinates = schedule.lane_panics.clone();
    move |tld: &str, ordinal: u64| {
        if coordinates.iter().any(|(t, o)| t == tld && *o == ordinal) {
            panic!("scheduled worker panic: lane .{tld} flush #{ordinal}");
        }
    }
}

/// A `Read` adapter injecting transport faults by read-call ordinal:
/// `Stall` → `WouldBlock` once, `Disconnect` → `ConnectionReset`
/// once, `Corrupt` → the read succeeds but every byte is flipped.
/// Drives the byte-stream feeds (`ZoneTextFeed`, `WireMessageFeed`)
/// through the same taxonomy the replay feed exercises.
pub struct FaultyReader<R> {
    inner: R,
    schedule: FaultSchedule,
    reads: u64,
    injected: bool,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner`, faulting reads per `schedule` (positions are
    /// 0-based read-call ordinals).
    pub fn new(inner: R, schedule: FaultSchedule) -> Self {
        FaultyReader { inner, schedule, reads: 0, injected: false }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let ordinal = self.reads;
        if !self.injected {
            match self.schedule.fault_at(ordinal) {
                Some(Fault::Stall) => {
                    self.injected = true;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WouldBlock,
                        format!("scheduled stall at read {ordinal}"),
                    ));
                }
                Some(Fault::Disconnect) => {
                    self.injected = true;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionReset,
                        format!("scheduled disconnect at read {ordinal}"),
                    ));
                }
                _ => {}
            }
        }
        self.injected = false;
        self.reads += 1;
        let n = self.inner.read(buf)?;
        if matches!(self.schedule.fault_at(ordinal), Some(Fault::Corrupt)) {
            for byte in &mut buf[..n] {
                *byte = !*byte;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_punycode::DomainName;

    fn reg(s: &str) -> ZoneEvent {
        ZoneEvent::Registered(DomainName::parse(s).expect("test domain literal must parse"))
    }

    /// Drains a feed, retrying errors immediately (the connector's
    /// job, minus the backoff).
    fn drain(feed: &mut FaultyZoneFeed) -> (Vec<FeedItem>, Vec<FeedError>) {
        let mut items = Vec::new();
        let mut errors = Vec::new();
        loop {
            match feed.next() {
                Ok(Some(item)) => items.push(item),
                Ok(None) => return (items, errors),
                Err(e) => errors.push(e),
            }
        }
    }

    #[test]
    fn transparent_replay_with_empty_schedule() {
        let events = vec![reg("a.com"), reg("b.net"), reg("c.com")];
        let stats = FeedStats::shared();
        let mut feed = FaultyZoneFeed::new(
            "replay",
            events.clone(),
            FaultSchedule::none(),
            Arc::clone(&stats),
        );
        let (items, errors) = drain(&mut feed);
        assert!(errors.is_empty());
        assert_eq!(items.len(), events.len());
        assert_eq!(stats.registrations.load(Ordering::Relaxed), 3);
        assert!(matches!(feed.next(), Ok(None)));
    }

    #[test]
    fn stall_and_disconnect_fail_once_then_deliver() {
        let events = vec![reg("a.com"), reg("b.com"), reg("c.com")];
        let schedule = FaultSchedule::none()
            .with_fault(0, Fault::Stall)
            .with_fault(2, Fault::Disconnect);
        let stats = FeedStats::shared();
        let mut feed = FaultyZoneFeed::new("faulty", events, schedule, Arc::clone(&stats));
        let (items, errors) = drain(&mut feed);
        // Both faulted events still arrive: resume semantics.
        assert_eq!(items.len(), 3);
        assert_eq!(errors.len(), 2);
        assert!(matches!(errors[0], FeedError::Stall));
        assert!(matches!(errors[1], FeedError::Disconnect(_)));
        assert_eq!(stats.registrations.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn corruption_swallows_the_record() {
        let events = vec![reg("a.com"), reg("bad.com"), reg("c.com")];
        let schedule = FaultSchedule::none().with_fault(1, Fault::Corrupt);
        let stats = FeedStats::shared();
        let mut feed = FaultyZoneFeed::new("faulty", events, schedule, Arc::clone(&stats));
        let (items, errors) = drain(&mut feed);
        assert!(errors.is_empty());
        assert_eq!(items.len(), 3);
        assert!(matches!(&items[1], FeedItem::Malformed(why) if why.contains("bad.com")));
        assert_eq!(stats.registrations.load(Ordering::Relaxed), 2);
        assert_eq!(stats.corrupted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn seeded_schedules_are_reproducible_and_scaled() {
        let a = FaultSchedule::seeded(42, 10_000, 10);
        let b = FaultSchedule::seeded(42, 10_000, 10);
        assert_eq!(a.faults, b.faults);
        // 1% of 10k with generous slack.
        assert!((40..=220).contains(&a.faults.len()), "{}", a.faults.len());
        let c = FaultSchedule::seeded(43, 10_000, 10);
        assert_ne!(a.faults, c.faults, "different seeds, different plans");
    }

    #[test]
    fn faulty_reader_faults_by_read_ordinal() {
        let data = b"hello world, this is a zone feed".to_vec();
        let schedule = FaultSchedule::none()
            .with_fault(0, Fault::Stall)
            .with_fault(1, Fault::Corrupt);
        let mut reader = FaultyReader::new(&data[..], schedule);
        let mut buf = [0u8; 8];
        let first = reader.read(&mut buf);
        assert_eq!(first.unwrap_err().kind(), std::io::ErrorKind::WouldBlock);
        // Retry succeeds (ordinal 0 is spent)…
        let n = reader.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], &data[..n]);
        // …and ordinal 1 delivers flipped bytes.
        let n = reader.read(&mut buf).unwrap();
        let flipped: Vec<u8> = data[8..8 + n].iter().map(|b| !b).collect();
        assert_eq!(&buf[..n], &flipped[..]);
    }

    #[test]
    fn lane_panic_hook_fires_only_at_its_coordinates() {
        let schedule = FaultSchedule::none().with_lane_panic("com", 2);
        let hook = lane_panic_hook(&schedule);
        hook("com", 1);
        hook("net", 2);
        let panicked =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook("com", 2)));
        assert!(panicked.is_err());
    }
}
