//! The attacker/registrant model: who registers IDN homographs, of what,
//! and with which substitutions.
//!
//! Substitution classes mirror how a homograph evades or succumbs to each
//! database (the mechanism behind the paper's Table 8, where SimChar
//! detects ≈ 8× more homographs than UC):
//!
//! * [`SubClass::SimCharOnly`] — accented Latin variants. The consortium
//!   list does not treat accents as confusables, but at bitmap resolution
//!   they are; the paper finds these dominate real registrations.
//! * [`SubClass::Both`] — classic cross-script lookalikes (Cyrillic
//!   `а`/`о`/`с` …) listed by UC *and* visually identical.
//! * [`SubClass::UcOnly`] — semantic confusables whose glyphs differ by
//!   more than θ pixels (the paper's Fig. 11 pairs).
//! * [`SubClass::Undetectable`] — bulky accents outside both databases
//!   (registered in the wild, invisible to all detectors — a limitation
//!   the paper accepts).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sham_punycode::ace;

/// Detectability class of a substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubClass {
    /// Detected by SimChar, missed by UC.
    SimCharOnly,
    /// Detected by both databases.
    Both,
    /// Detected by UC, missed by SimChar.
    UcOnly,
    /// Missed by both.
    Undetectable,
}

/// Homoglyph substitutes for `letter` in the given class. Returns an
/// empty slice when the class offers nothing for that letter.
pub fn substitutes(letter: char, class: SubClass) -> &'static [char] {
    match class {
        SubClass::SimCharOnly => match letter {
            'a' => &['á', 'à', 'ā', 'ą', 'ạ', 'ä'],
            'c' => &['ç', 'ć', 'ċ'],
            'd' => &['đ'],
            'e' => &['é', 'è', 'ē', 'ė', 'ę', 'ẹ', 'ë'],
            'g' => &['ġ', 'ģ'],
            'h' => &['ħ'],
            'i' => &['í', 'ì', 'ī', 'į', 'ị', 'ï'],
            'k' => &['ķ'],
            'l' => &['ĺ', 'ļ', 'ł'],
            'n' => &['ń', 'ņ'],
            'o' => &['ó', 'ò', 'ō', 'ø', 'ọ', 'ö'],
            'r' => &['ŕ', 'ŗ'],
            's' => &['ś', 'ş'],
            't' => &['ţ', 'ŧ'],
            'u' => &['ú', 'ù', 'ū', 'ų', 'ụ', 'ü'],
            'y' => &['ý', 'ỵ', 'ÿ'],
            'z' => &['ź', 'ż'],
            _ => &[],
        },
        SubClass::Both => match letter {
            'a' => &['а'],                      // U+0430
            'c' => &['с', 'ϲ'],                 // U+0441, U+03F2
            'd' => &['ԁ', 'ɗ'],                 // U+0501, U+0257
            'e' => &['е'],                      // U+0435
            'g' => &['ɡ'],                      // U+0261
            'h' => &['һ', 'հ'],                 // U+04BB, U+0570
            'i' => &['і', 'ι', 'ı'],            // U+0456, U+03B9, U+0131
            'j' => &['ј', 'ϳ'],                 // U+0458, U+03F3
            'k' => &['к', 'κ'],                 // U+043A, U+03BA
            'l' => &['ӏ', 'ǀ'],                 // U+04CF, U+01C0
            'n' => &['ո'],                      // U+0578
            'o' => &['о', 'ο', 'օ', '๐', '໐', '०'], // Cyrillic/Greek/Armenian/Thai/Lao/Devanagari
            'p' => &['р', 'ρ'],                 // U+0440, U+03C1
            'q' => &['ԛ'],                      // U+051B
            'r' => &['г'],                      // U+0433
            's' => &['ѕ'],                      // U+0455
            'u' => &['ս', 'υ'],                 // U+057D, U+03C5
            'v' => &['ν', 'ѵ'],                 // U+03BD, U+0475
            'w' => &['ԝ', 'ѡ', 'ա'],            // U+051D, U+0461, U+0561
            'x' => &['х', 'χ'],                 // U+0445, U+03C7
            'y' => &['у', 'ү', 'ყ'],            // U+0443, U+04AF, U+10E7
            'z' => &['ʐ'],                      // U+0290
            _ => &[],
        },
        SubClass::UcOnly => match letter {
            'a' => &['α'],            // U+03B1 (Δ = 5 in SynthUnifont)
            'o' => &['ס'],            // U+05E1
            't' => &['т'],            // U+0442
            'u' => &['\u{118D8}'],    // Warang Citi pu (paper Fig. 11)
            'y' => &['ʏ', '\u{118DC}'], // U+028F, Warang Citi har (Fig. 11)
            _ => &[],
        },
        SubClass::Undetectable => match letter {
            'a' => &['â', 'ã', 'å'],
            'c' => &['č'],
            'e' => &['ê', 'ě'],
            'i' => &['î', 'ĩ'],
            'n' => &['ñ'],
            'o' => &['ô', 'õ', 'ő'],
            's' => &['š'],
            'u' => &['û', 'ů', 'ű'],
            'w' => &['ŵ'],
            'y' => &['ŷ'],
            'z' => &['ž'],
            _ => &[],
        },
    }
}

/// A registered homograph with its ground truth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlantedHomograph {
    /// Unicode stem, e.g. `gооgle`.
    pub unicode_stem: String,
    /// Full registered name in ACE form, e.g. `xn--ggle-55da.com`.
    pub ace: String,
    /// The imitated reference stem.
    pub target: String,
    /// Class of every substitution (single class per homograph).
    pub class: SubClass,
    /// Number of substituted positions.
    pub substitutions: usize,
}

impl PlantedHomograph {
    /// Ground truth: should a UC-only detector find this?
    pub fn uc_detectable(&self) -> bool {
        matches!(self.class, SubClass::Both | SubClass::UcOnly)
    }

    /// Ground truth: should a SimChar-only detector find this?
    pub fn simchar_detectable(&self) -> bool {
        matches!(self.class, SubClass::Both | SubClass::SimCharOnly)
    }

    /// Ground truth: should the union find this?
    pub fn union_detectable(&self) -> bool {
        self.class != SubClass::Undetectable
    }
}

/// Per-target registration counts: the paper's Table 9 head plus a
/// Zipf-distributed tail over the rest of the reference list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HomographPlan {
    /// Explicit (target, count) pairs — Table 9's top-5 by default.
    pub hot_targets: Vec<(String, usize)>,
    /// Homographs spread over the remaining references.
    pub tail_total: usize,
    /// Class mix in per-mille: (SimChar-only, Both, UC-only). Remainder
    /// is unused; `undetectable_extra_permille` plants *additional*
    /// undetectable registrations on top.
    pub class_mix_permille: (u32, u32, u32),
    /// Extra undetectable registrations, per-mille of the detectable
    /// total.
    pub undetectable_extra_permille: u32,
}

impl HomographPlan {
    /// The paper-scale plan: 3,280 union-detectable homographs with
    /// Table 9's head counts and Table 8's class arithmetic
    /// (UC = 436, SimChar = 3,110, union = 3,280).
    pub fn paper() -> Self {
        HomographPlan {
            hot_targets: vec![
                ("myetherwallet".to_string(), 170),
                ("google".to_string(), 114),
                ("amazon".to_string(), 75),
                ("facebook".to_string(), 72),
                ("allstate".to_string(), 68),
            ],
            tail_total: 3_280 - 499,
            // s = union−UC = 2,844; u = union−SimChar = 170; b = 266.
            class_mix_permille: (867, 81, 52),
            undetectable_extra_permille: 60,
        }
    }

    /// A proportionally scaled plan (`permille` of the paper scale).
    pub fn scaled(permille: u32) -> Self {
        let p = |n: usize| (n * permille as usize).div_ceil(1000);
        let paper = Self::paper();
        HomographPlan {
            hot_targets: paper
                .hot_targets
                .into_iter()
                .map(|(t, n)| (t, p(n)))
                .collect(),
            tail_total: p(paper.tail_total),
            class_mix_permille: paper.class_mix_permille,
            undetectable_extra_permille: paper.undetectable_extra_permille,
        }
    }

    /// Total detectable homographs the plan asks for.
    pub fn detectable_total(&self) -> usize {
        self.hot_targets.iter().map(|&(_, n)| n).sum::<usize>() + self.tail_total
    }
}

fn draw_class(rng: &mut StdRng, mix: (u32, u32, u32)) -> SubClass {
    let roll = rng.gen_range(0..1000u32);
    if roll < mix.0 {
        SubClass::SimCharOnly
    } else if roll < mix.0 + mix.1 {
        SubClass::Both
    } else if roll < mix.0 + mix.1 + mix.2 {
        SubClass::UcOnly
    } else {
        SubClass::SimCharOnly
    }
}

/// Generates one homograph of `target` in `class`, or `None` when the
/// target offers no substitutable letter for the class.
fn make_homograph(
    target: &str,
    class: SubClass,
    rng: &mut StdRng,
) -> Option<(String, usize)> {
    let chars: Vec<char> = target.chars().collect();
    let candidates: Vec<usize> = chars
        .iter()
        .enumerate()
        .filter(|(_, &c)| !substitutes(c, class).is_empty())
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    // 1 substitution usually, sometimes 2 (multi-char spoofs like gооgle).
    let sub_count = if candidates.len() >= 2 && rng.gen_bool(0.25) { 2 } else { 1 };
    let mut stem = chars.clone();
    let mut chosen = candidates.clone();
    for _ in 0..(candidates.len() - sub_count) {
        chosen.remove(rng.gen_range(0..chosen.len()));
    }
    for &pos in &chosen {
        let subs = substitutes(chars[pos], class);
        stem[pos] = subs[rng.gen_range(0..subs.len())];
    }
    Some((stem.into_iter().collect(), sub_count))
}

/// Plants homographs per the plan. Duplicate stems are retried and, when
/// the substitution space is exhausted, skipped — exactly like an
/// attacker finding a name already registered.
pub fn plant(references: &[String], plan: &HomographPlan, seed: u64) -> Vec<PlantedHomograph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();

    let register = |target: &str, class: SubClass, rng: &mut StdRng,
                        out: &mut Vec<PlantedHomograph>,
                        seen: &mut std::collections::HashSet<String>| {
        for _attempt in 0..12 {
            let Some((stem, subs)) = make_homograph(target, class, rng) else { return false };
            if !seen.insert(stem.clone()) {
                continue;
            }
            let Ok(ace_label) = ace::to_ascii(&stem) else { continue };
            out.push(PlantedHomograph {
                unicode_stem: stem,
                ace: format!("{ace_label}.com"),
                target: target.to_string(),
                class,
                substitutions: subs,
            });
            return true;
        }
        false
    };

    // Head: the Table 9 hot targets.
    for (target, count) in &plan.hot_targets {
        let mut planted = 0usize;
        let mut guard = 0usize;
        while planted < *count && guard < count * 30 {
            guard += 1;
            let class = draw_class(&mut rng, plan.class_mix_permille);
            if register(target, class, &mut rng, &mut out, &mut seen) {
                planted += 1;
            }
        }
    }

    // Tail: popularity-weighted sampling over the other references.
    let hot: std::collections::HashSet<&str> =
        plan.hot_targets.iter().map(|(t, _)| t.as_str()).collect();
    let tail_refs: Vec<(usize, &String)> = references
        .iter()
        .enumerate()
        .filter(|(_, r)| !hot.contains(r.as_str()))
        .collect();
    // Flattened popularity: the +50 offset keeps the remaining top-rank
    // references from out-drawing the Table 9 hot targets, matching the
    // paper's long, thin tail of per-target counts.
    let weights: Vec<f64> = tail_refs
        .iter()
        .map(|&(rank, _)| crate::domains::popularity_weight(rank + 50))
        .collect();
    let total_weight: f64 = weights.iter().sum();

    let mut planted = 0usize;
    let mut guard = 0usize;
    while planted < plan.tail_total && guard < plan.tail_total * 30 {
        guard += 1;
        // Weighted pick.
        let mut roll = rng.gen_range(0.0..total_weight);
        let mut idx = 0usize;
        for (i, w) in weights.iter().enumerate() {
            if roll < *w {
                idx = i;
                break;
            }
            roll -= w;
        }
        let target = tail_refs[idx].1;
        let class = draw_class(&mut rng, plan.class_mix_permille);
        if register(target, class, &mut rng, &mut out, &mut seen) {
            planted += 1;
        }
    }

    // Extra undetectable registrations.
    let extra =
        out.len() * plan.undetectable_extra_permille as usize / 1000;
    let mut planted = 0usize;
    let mut guard = 0usize;
    while planted < extra && guard < extra * 30 + 10 {
        guard += 1;
        let idx = rng.gen_range(0..references.len().min(2000));
        let target = references[idx].clone();
        if register(&target, SubClass::Undetectable, &mut rng, &mut out, &mut seen) {
            planted += 1;
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::reference_list;

    #[test]
    fn substitutes_are_registrable_idn_chars() {
        use sham_unicode::{is_pvalid, CodePoint};
        for c in 'a'..='z' {
            for class in [
                SubClass::SimCharOnly,
                SubClass::Both,
                SubClass::UcOnly,
                SubClass::Undetectable,
            ] {
                for &s in substitutes(c, class) {
                    assert!(is_pvalid(CodePoint::from(s)), "{s:?} ({c}, {class:?})");
                    assert!(!s.is_ascii());
                }
            }
        }
    }

    #[test]
    fn plan_arithmetic_matches_table8() {
        let plan = HomographPlan::paper();
        assert_eq!(plan.detectable_total(), 3_280);
        let (s, b, u) = plan.class_mix_permille;
        // UC share = b + u ≈ 436/3280 = 133‰; SimChar = s + b ≈ 948‰.
        assert_eq!(b + u, 133);
        assert_eq!(s + b, 948);
    }

    #[test]
    fn planting_hits_requested_counts() {
        let refs = reference_list(2_000);
        let plan = HomographPlan::scaled(100); // 10% of paper scale
        let planted = plant(&refs, &plan, 42);
        let detectable = planted.iter().filter(|h| h.union_detectable()).count();
        let requested = plan.detectable_total();
        assert!(
            detectable >= requested * 95 / 100,
            "planted {detectable} of {requested}"
        );
        // Stems are unique.
        let set: std::collections::HashSet<&String> =
            planted.iter().map(|h| &h.unicode_stem).collect();
        assert_eq!(set.len(), planted.len());
    }

    #[test]
    fn hot_targets_dominate() {
        let refs = reference_list(2_000);
        let planted = plant(&refs, &HomographPlan::scaled(250), 7);
        let count_for = |t: &str| planted.iter().filter(|h| h.target == t).count();
        let mye = count_for("myetherwallet");
        let goo = count_for("google");
        assert!(mye > goo, "myetherwallet {mye} !> google {goo}");
        // Every other single target attracts fewer than myetherwallet.
        let mut by_target: std::collections::HashMap<&str, usize> = Default::default();
        for h in &planted {
            *by_target.entry(h.target.as_str()).or_default() += 1;
        }
        let max_other = by_target
            .iter()
            .filter(|(t, _)| **t != "myetherwallet")
            .map(|(_, &c)| c)
            .max()
            .unwrap_or(0);
        assert!(mye >= max_other);
    }

    #[test]
    fn class_mix_shape_matches_table8() {
        let refs = reference_list(2_000);
        let planted = plant(&refs, &HomographPlan::scaled(500), 11);
        let detectable: Vec<&PlantedHomograph> =
            planted.iter().filter(|h| h.union_detectable()).collect();
        let n = detectable.len() as f64;
        let uc = detectable.iter().filter(|h| h.uc_detectable()).count() as f64;
        let sim = detectable.iter().filter(|h| h.simchar_detectable()).count() as f64;
        // Paper: UC finds ~13%, SimChar ~95% of the union.
        assert!((uc / n - 0.133).abs() < 0.05, "uc share {}", uc / n);
        assert!((sim / n - 0.948).abs() < 0.04, "simchar share {}", sim / n);
    }

    #[test]
    fn stems_differ_from_targets_and_encode() {
        let refs = reference_list(500);
        let planted = plant(&refs, &HomographPlan::scaled(50), 3);
        for h in &planted {
            assert_ne!(h.unicode_stem, h.target);
            assert_eq!(
                h.unicode_stem.chars().count(),
                h.target.chars().count(),
                "length must be preserved for Algorithm 1"
            );
            assert!(h.ace.starts_with("xn--"));
            assert!(h.ace.ends_with(".com"));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let refs = reference_list(300);
        let a = plant(&refs, &HomographPlan::scaled(20), 5);
        let b = plant(&refs, &HomographPlan::scaled(20), 5);
        assert_eq!(a, b);
    }
}
