//! Deterministic synthetic workload generation (DESIGN.md §3).
//!
//! The paper measures the real `.com` zone (141 M domains, 955 K IDNs,
//! Alexa references, Farsight passive DNS, three blacklists). None of
//! that data is available offline, so this crate generates a world with
//! the same joint structure at a configurable scale:
//!
//! * an Alexa-like reference ranking with the paper's attack targets at
//!   their published ranks ([`domains`]),
//! * a benign corpus whose IDN language mix follows Table 7,
//! * an attacker/registrant model planting homographs with the class mix
//!   that yields Table 8's UC/SimChar/union arithmetic ([`attacker`]),
//! * the §6 activity funnel, Table 12/13 categories, Table 14 blacklists
//!   and Table 11 high-traffic stars ([`webgen`]),
//! * two overlapping corpus exports — a zone file and a flat domain list
//!   (Table 6) — in their real file formats,
//! * a zone-diff event stream over the corpus — registrations
//!   interleaved with reference-list churn — for driving the
//!   incremental `DetectorSession` ingest path ([`stream`]),
//! * a deterministic fault-injection harness — seeded schedules of
//!   corrupt records, stalls, disconnects and forced lane panics —
//!   for exercising the `sham_core::ingest` robustness layers
//!   ([`faults`]).

pub mod attacker;
pub mod dictionary;
pub mod domains;
pub mod faults;
pub mod stream;
pub mod webgen;
pub mod zonegen;

pub use attacker::{plant, substitutes, HomographPlan, PlantedHomograph, SubClass};
pub use domains::{benign_corpus, popularity_weight, reference_list, LANGUAGE_MIX};
pub use faults::{
    ingest_event, lane_panic_hook, Fault, FaultSchedule, FaultyReader, FaultyZoneFeed,
    FeedStats,
};
pub use stream::{
    event_stream, multi_tld_event_stream, union_corpus, MultiTldConfig, StreamConfig, ZoneEvent,
};
pub use webgen::{
    assign, domain_list_text, plant_resolution_stars, zone_text, FunnelPlan, GroundTruth,
    SiteAssignment,
};
pub use zonegen::{write_synthetic_zone, ZoneGenConfig, ZoneGenStats};

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Scale and seed knobs for a full world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Benign ASCII registrations.
    pub benign_ascii: usize,
    /// Benign IDN registrations (language mix of Table 7).
    pub benign_idns: usize,
    /// Reference-list length (the paper uses the Alexa top-10K).
    pub reference_size: usize,
    /// Homograph plan scale, per-mille of the paper's 3,280.
    pub homograph_permille: u32,
    /// Master seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The default reproduction scale: ~1 M domains (1/140 of the real
    /// zone) with the homograph population kept at paper scale so the
    /// §6 tables have paper-magnitude counts. Benign IDNs are raised
    /// above the pro-rata share to dilute the homograph
    /// over-representation in the Table 7 language mix (see
    /// EXPERIMENTS.md for both tradeoffs).
    pub fn repro() -> Self {
        WorkloadConfig {
            benign_ascii: 960_000,
            benign_idns: 30_000,
            reference_size: 10_000,
            homograph_permille: 1_000,
            seed: 0x5AC4_11FE,
        }
    }

    /// A small world for tests: ~20 K domains, 10% homograph scale.
    pub fn test() -> Self {
        WorkloadConfig {
            benign_ascii: 18_000,
            benign_idns: 1_500,
            reference_size: 2_000,
            homograph_permille: 100,
            seed: 0x7E57,
        }
    }
}

/// A generated world.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Configuration used.
    pub config: WorkloadConfig,
    /// Alexa-like reference stems in rank order.
    pub references: Vec<String>,
    /// Reference stem → 1-based rank.
    pub reference_ranks: HashMap<String, usize>,
    /// Benign ASCII stems.
    pub benign_ascii: Vec<String>,
    /// Benign IDN stems (Unicode form).
    pub benign_idns: Vec<String>,
    /// Ground truth for homographs, sites and blacklists.
    pub truth: GroundTruth,
    /// The zone-file export (source 1 of Table 6).
    pub zone_text: String,
    /// The flat-list export (source 2 of Table 6).
    pub domain_list_text: String,
}

impl Workload {
    /// Generates the full world for a config.
    pub fn generate(config: WorkloadConfig) -> Workload {
        let references = reference_list(config.reference_size);
        let reference_ranks: HashMap<String, usize> = references
            .iter()
            .enumerate()
            .map(|(i, r)| (r.clone(), i + 1))
            .collect();

        let (mut benign_ascii, benign_idns) =
            benign_corpus(config.benign_ascii, config.benign_idns, config.seed ^ 0xB1);
        // Popular reference domains are registered too, of course.
        benign_ascii.extend(references.iter().take(2_000).cloned());

        let plan = HomographPlan::scaled(config.homograph_permille);
        let homographs = plant(&references, &plan, config.seed ^ 0xA7);
        let mut truth = assign(
            homographs,
            &reference_ranks,
            &FunnelPlan::default(),
            config.seed ^ 0xF0,
        );
        plant_resolution_stars(&mut truth);

        // Benign IDNs join the corpus as ACE names via the list/zone
        // renderers below; encode them once here.
        let mut all_benign: Vec<String> = benign_ascii.clone();
        for stem in &benign_idns {
            if let Ok(label) = sham_punycode::ace::to_ascii(stem) {
                all_benign.push(label);
            }
        }

        // Table 6 overlap: the zone carries ~98.9% of benign domains, the
        // list ~98.7%, overlapping heavily.
        let zone_text = zone_text(&all_benign, &truth, 989, config.seed ^ 0x20);
        let domain_list_text =
            domain_list_text(&all_benign, &truth, 987, config.seed ^ 0x21);

        Workload {
            config,
            references,
            reference_ranks,
            benign_ascii,
            benign_idns,
            truth,
            zone_text,
            domain_list_text,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_world_generates_consistently() {
        let w = Workload::generate(WorkloadConfig::test());
        assert!(w.references.len() >= 1_990);
        assert!(!w.truth.homographs.is_empty());
        assert!(w.zone_text.contains("$ORIGIN com."));
        assert!(w.domain_list_text.contains(".com"));

        let w2 = Workload::generate(WorkloadConfig::test());
        assert_eq!(w.truth.homographs, w2.truth.homographs);
    }

    #[test]
    fn corpus_parses_and_has_expected_idn_share() {
        let w = Workload::generate(WorkloadConfig::test());
        let (zone, errors) = sham_dns::parse_lenient(&w.zone_text, "com");
        assert!(errors.is_empty());
        let (list, bad) = sham_dns::parse_domain_list(&w.domain_list_text);
        assert_eq!(bad, 0);

        // Union of the two sources.
        let mut union: std::collections::HashSet<String> = zone
            .owner_names()
            .iter()
            .map(|d| d.as_ascii().to_string())
            .collect();
        union.extend(list.iter().map(|d| d.as_ascii().to_string()));

        let idns = union.iter().filter(|d| d.starts_with("xn--")).count();
        let share = idns as f64 / union.len() as f64;
        // test() plants 1,500 benign IDNs + ~360 homographs over ~20K:
        // around 8–10%; the repro() scale lands at the paper's 0.67%.
        assert!(share > 0.05 && share < 0.15, "idn share {share}");
    }
}
